package spq

// Tests for the concurrent serving layer (snapshot reads, admission
// counters, query cache) and the load/query input-validation fixes.

import (
	"fmt"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestValidateQueryNonFiniteRadius(t *testing.T) {
	e := loadPaperExample(t, Config{Storage: StorageMemory})
	cases := []struct {
		name   string
		q      Query
		wantOK bool
	}{
		{"nan radius", Query{K: 1, Radius: math.NaN(), Keywords: []string{"italian"}}, false},
		{"+inf radius", Query{K: 1, Radius: math.Inf(1), Keywords: []string{"italian"}}, false},
		{"-inf radius", Query{K: 1, Radius: math.Inf(-1), Keywords: []string{"italian"}}, false},
		{"negative radius", Query{K: 1, Radius: -1, Keywords: []string{"italian"}}, false},
		{"zero radius", Query{K: 1, Radius: 0, Keywords: []string{"italian"}}, true},
		{"finite radius", Query{K: 1, Radius: 1.5, Keywords: []string{"italian"}}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := e.Query(tc.q)
			if tc.wantOK && err != nil {
				t.Fatalf("valid query rejected: %v", err)
			}
			if !tc.wantOK && err == nil {
				t.Fatalf("invalid query %+v accepted", tc.q)
			}
		})
	}
}

func TestAddRejectsNonFiniteCoordinates(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	cases := []struct {
		name string
		x, y float64
	}{
		{"nan x", nan, 1},
		{"nan y", 1, nan},
		{"+inf x", inf, 1},
		{"-inf y", 1, -inf},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := NewEngine(Config{Storage: StorageMemory})
			err := e.AddData(DataObject{ID: 7, X: tc.x, Y: tc.y})
			if err == nil {
				t.Fatal("non-finite data coordinate accepted")
			}
			if !strings.Contains(err.Error(), "7") {
				t.Errorf("error does not name the offending id: %v", err)
			}
			err = e.AddFeature(Feature{ID: 8, X: tc.x, Y: tc.y, Keywords: []string{"a"}})
			if err == nil {
				t.Fatal("non-finite feature coordinate accepted")
			}
			if !strings.Contains(err.Error(), "8") {
				t.Errorf("error does not name the offending id: %v", err)
			}
			if nd, nf := e.Len(); nd != 0 || nf != 0 {
				t.Errorf("rejected objects were loaded: Len = %d, %d", nd, nf)
			}
		})
	}

	// A batch with one bad object loads nothing.
	e := NewEngine(Config{Storage: StorageMemory})
	err := e.AddData(
		DataObject{ID: 1, X: 0, Y: 0},
		DataObject{ID: 2, X: nan, Y: 0},
		DataObject{ID: 3, X: 1, Y: 1},
	)
	if err == nil {
		t.Fatal("batch with NaN coordinate accepted")
	}
	if nd, _ := e.Len(); nd != 0 {
		t.Errorf("partial batch loaded: %d data objects", nd)
	}
}

func TestLoadLinesValidation(t *testing.T) {
	e := NewEngine(Config{Storage: StorageMemory})
	err := e.LoadLines(strings.NewReader("D\t1\t0.5\t0.5\nD\t2\tNaN\t0.5\n"))
	if err == nil {
		t.Fatal("NaN coordinate line accepted")
	}
	if !strings.Contains(err.Error(), "line 2") || !strings.Contains(err.Error(), "2") {
		t.Errorf("error does not locate the bad record: %v", err)
	}

	e = NewEngine(Config{Storage: StorageMemory})
	err = e.LoadLines(strings.NewReader("D\t1\t0.5\t0.5\nD\t1\t0.6\t0.6\n"))
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate id line: err = %v, want duplicate-id error", err)
	}
}

func TestDuplicateIDsRejected(t *testing.T) {
	e := NewEngine(Config{Storage: StorageMemory})
	// Same call.
	err := e.AddData(DataObject{ID: 1, X: 0, Y: 0}, DataObject{ID: 1, X: 1, Y: 1})
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("same-batch duplicate: err = %v", err)
	}
	if nd, _ := e.Len(); nd != 0 {
		t.Fatalf("rejected batch partially loaded: %d", nd)
	}
	// Separate calls.
	if err := e.AddData(DataObject{ID: 1, X: 0, Y: 0}); err != nil {
		t.Fatal(err)
	}
	err = e.AddData(DataObject{ID: 1, X: 2, Y: 2})
	if err == nil || !strings.Contains(err.Error(), "duplicate") || !strings.Contains(err.Error(), "1") {
		t.Fatalf("cross-call duplicate: err = %v", err)
	}
	// Features have their own namespace: a feature may reuse a data id,
	// but not another feature's.
	if err := e.AddFeature(Feature{ID: 1, X: 0.1, Y: 0.1, Keywords: []string{"a"}}); err != nil {
		t.Fatalf("feature id equal to a data id rejected: %v", err)
	}
	err = e.AddFeature(Feature{ID: 1, X: 0.2, Y: 0.2, Keywords: []string{"b"}})
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate feature id: err = %v", err)
	}
	// LoadSynthetic twice overlaps generated ids and must fail too.
	e2 := NewEngine(Config{Storage: StorageMemory})
	if err := e2.LoadSynthetic("uniform", 100); err != nil {
		t.Fatal(err)
	}
	if err := e2.LoadSynthetic("uniform", 100); err == nil {
		t.Error("second LoadSynthetic with overlapping ids accepted")
	}
}

// Property: across all algorithms and storage modes, a top-k list never
// contains the same data object twice. Before the duplicate-id rejection,
// loading an id twice produced exactly that corruption.
func TestNoDuplicateResultsAcrossAlgorithmsAndStorages(t *testing.T) {
	for _, storage := range []Storage{StorageDFS, StorageMemory, StorageDFSBinary} {
		e := NewEngine(Config{Storage: storage, Nodes: 4, BlockSize: 8 << 10, Seed: 11})
		if err := e.LoadSynthetic("uniform", 600); err != nil {
			t.Fatal(err)
		}
		// The engine now rejects the duplicate load outright...
		if err := e.AddData(DataObject{ID: 0, X: 0.5, Y: 0.5}); err == nil {
			t.Fatalf("storage %d: duplicate data id accepted", storage)
		}
		kws := e.FrequentKeywords(2)
		for _, alg := range Algorithms() {
			// ...and the served top-k holds each id at most once.
			res, err := e.Query(Query{K: 50, Radius: 0.15, Keywords: kws},
				WithAlgorithm(alg), WithGrid(6), WithoutCache())
			if err != nil {
				t.Fatalf("storage %d %v: %v", storage, alg, err)
			}
			seen := make(map[uint64]bool, len(res))
			for _, r := range res {
				if seen[r.ID] {
					t.Errorf("storage %d %v: id %d appears twice in top-k", storage, alg, r.ID)
				}
				seen[r.ID] = true
			}
		}
	}
}

// servingWorkload builds a sealed engine and a slice of distinct queries.
func servingWorkload(t *testing.T, cfg Config, n int) (*Engine, []Query) {
	t.Helper()
	e := NewEngine(cfg)
	if err := e.LoadSynthetic("uniform", 2000); err != nil {
		t.Fatal(err)
	}
	if err := e.Seal(); err != nil {
		t.Fatal(err)
	}
	kws := e.FrequentKeywords(16)
	if len(kws) < 5 {
		t.Fatalf("only %d keywords", len(kws))
	}
	queries := make([]Query, n)
	for i := range queries {
		queries[i] = Query{
			K:      5,
			Radius: 0.05,
			Keywords: []string{
				kws[i%len(kws)],
				kws[(i*3+1)%(len(kws)-1)],
			},
		}
	}
	return e, queries
}

// TestConcurrentQueriesMatchSerial is the serving-correctness test: N
// goroutines hammer one engine with a mixed workload and every query's
// results must equal the serial execution's, with the cache off and on.
// Run under -race this also proves the snapshot read path race-clean.
func TestConcurrentQueriesMatchSerial(t *testing.T) {
	for _, cacheOn := range []bool{false, true} {
		name := "cache-off"
		cfg := Config{Storage: StorageMemory, QueryCache: -1}
		if cacheOn {
			name = "cache-on"
			cfg = Config{Storage: StorageMemory}
		}
		t.Run(name, func(t *testing.T) {
			const nq, goroutines, rounds = 12, 8, 3
			e, queries := servingWorkload(t, cfg, nq)

			serial := make([][]Result, nq)
			for i, q := range queries {
				res, err := e.Query(q, WithAutoPlan(), WithoutCache())
				if err != nil {
					t.Fatal(err)
				}
				serial[i] = res
			}

			var wg sync.WaitGroup
			errs := make([]error, goroutines)
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for r := 0; r < rounds; r++ {
						i := (g + r*goroutines) % nq
						res, err := e.Query(queries[i], WithAutoPlan())
						if err != nil {
							errs[g] = err
							return
						}
						if !reflect.DeepEqual(res, serial[i]) {
							errs[g] = fmt.Errorf("query %d: concurrent results %v != serial %v", i, res, serial[i])
							return
						}
					}
				}(g)
			}
			wg.Wait()
			for g, err := range errs {
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
				}
			}
			stats := e.CacheStats()
			if cacheOn && stats.Hits == 0 {
				t.Error("repeated concurrent workload produced no cache hits")
			}
			if !cacheOn && (stats.Hits != 0 || stats.Misses != 0) {
				t.Errorf("disabled cache recorded traffic: %+v", stats)
			}
		})
	}
}

func TestQueryCacheSemantics(t *testing.T) {
	e := loadPaperExample(t, Config{Storage: StorageMemory})
	q := Query{K: 2, Radius: 1.5, Keywords: []string{"italian"}}

	first, err := e.QueryReport(q, WithGrid(4))
	if err != nil {
		t.Fatal(err)
	}
	if first.Counters[CounterCacheMiss] != 1 || first.Counters[CounterCacheHit] != 0 {
		t.Errorf("first execution counters: hit=%d miss=%d",
			first.Counters[CounterCacheHit], first.Counters[CounterCacheMiss])
	}
	second, err := e.QueryReport(q, WithGrid(4))
	if err != nil {
		t.Fatal(err)
	}
	if second.Counters[CounterCacheHit] != 1 {
		t.Errorf("repeat execution not served from cache: %v", second.Counters)
	}
	if !reflect.DeepEqual(first.Results, second.Results) {
		t.Errorf("cached results differ: %v vs %v", first.Results, second.Results)
	}
	// Mutating a served report must not corrupt the cache.
	second.Results[0].Score = -1
	third, err := e.QueryReport(q, WithGrid(4))
	if err != nil {
		t.Fatal(err)
	}
	if third.Results[0].Score == -1 {
		t.Error("caller mutation leaked into the cache")
	}

	// Keyword order and duplicates canonicalize to the same entry.
	if _, err := e.QueryReport(Query{K: 2, Radius: 1.5, Keywords: []string{"italian", "italian"}}, WithGrid(4)); err != nil {
		t.Fatal(err)
	}
	// A different option set is a different entry.
	other, err := e.QueryReport(q, WithGrid(5))
	if err != nil {
		t.Fatal(err)
	}
	if other.Counters[CounterCacheHit] != 0 {
		t.Error("different grid served from the same cache entry")
	}
	// WithoutCache bypasses both lookup and store.
	before := e.CacheStats()
	bypass, err := e.QueryReport(q, WithGrid(4), WithoutCache())
	if err != nil {
		t.Fatal(err)
	}
	if bypass.Counters[CounterCacheHit] != 0 || bypass.Counters[CounterCacheMiss] != 0 {
		t.Errorf("WithoutCache touched the cache: %v", bypass.Counters)
	}
	if after := e.CacheStats(); after.Hits != before.Hits || after.Misses != before.Misses {
		t.Errorf("WithoutCache changed cache stats: %+v -> %+v", before, after)
	}
}

// TestQueryCacheKeyNoCollision pins the length-prefixed keyword
// encoding: keyword sets that concatenate identically must not share a
// cache entry.
func TestQueryCacheKeyNoCollision(t *testing.T) {
	cfg := queryConfig{}
	a := cacheKey(1, Query{K: 1, Radius: 1, Keywords: []string{"a\x00b"}}, &cfg)
	b := cacheKey(1, Query{K: 1, Radius: 1, Keywords: []string{"a", "b"}}, &cfg)
	if a == b {
		t.Fatalf("distinct keyword sets share cache key %q", a)
	}
}

func TestQueryCacheLRUEviction(t *testing.T) {
	e := loadPaperExample(t, Config{Storage: StorageMemory, QueryCache: 2})
	qa := Query{K: 1, Radius: 1.5, Keywords: []string{"italian"}}
	qb := Query{K: 1, Radius: 1.5, Keywords: []string{"chinese"}}
	qc := Query{K: 1, Radius: 1.5, Keywords: []string{"greek"}}
	for _, q := range []Query{qa, qb, qc} { // qc evicts qa
		if _, err := e.Query(q, WithGrid(4)); err != nil {
			t.Fatal(err)
		}
	}
	if s := e.CacheStats(); s.Entries != 2 {
		t.Fatalf("entries = %d, want 2", s.Entries)
	}
	rep, err := e.QueryReport(qa, WithGrid(4))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Counters[CounterCacheHit] != 0 {
		t.Error("evicted entry served as a hit")
	}
	// Re-executing qa cached it again, evicting qb; qc stayed resident.
	rep, err = e.QueryReport(qc, WithGrid(4))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Counters[CounterCacheHit] != 1 {
		t.Error("resident entry not served as a hit")
	}
}

// TestSchedCountersSurfaceInReport checks the admission-control counters
// are visible through the public report.
func TestSchedCountersSurfaceInReport(t *testing.T) {
	e := loadPaperExample(t, Config{Storage: StorageMemory})
	rep, err := e.QueryReport(Query{K: 1, Radius: 1.5, Keywords: []string{"italian"}}, WithGrid(4))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Counters["spq.sched.admitted"] == 0 {
		t.Errorf("spq.sched.admitted missing from report counters: %v", rep.Counters)
	}
}
