package spq

// Generational ingestion. A sealed engine is no longer write-once:
// AddData/AddFeature/LoadLines/LoadSynthetic on a sealed engine append
// into an in-memory delta (LSM-style), queries merge the sealed base with
// the delta, and Compact — explicit or automatic via Config.CompactAfter —
// re-seals base+delta into a new storage generation. Every committed
// append batch and every compaction bumps the engine's generation, which
// keys the query cache: a report computed against an older generation can
// never be served to a query running against a newer one.

import (
	"sync"

	"spq/internal/data"
	"spq/internal/mapreduce"
	"spq/internal/text"
)

// Per-report delta counters, present whenever the engine was serving a
// non-empty delta (records appended after the last seal or compaction)
// when the query executed; documented next to the spq.plan.* and
// spq.sched.* counters in the README.
const (
	// CounterDeltaRecords is the number of delta records visible to the
	// query before any pruning.
	CounterDeltaRecords = "spq.delta.records"
	// CounterDeltaRecordsSelected is the number of delta records the job
	// actually read (equal to CounterDeltaRecords unless the planner
	// pruned delta cells).
	CounterDeltaRecordsSelected = "spq.delta.records.selected"
	// CounterDeltaCellsPruned is the number of delta cells the planner
	// proved irrelevant (planned queries only).
	CounterDeltaCellsPruned = "spq.delta.cells.pruned"
)

// DefaultCompactAfter is the default automatic-compaction threshold, in
// delta records; see Config.CompactAfter.
const DefaultCompactAfter = 1 << 16

// DeltaStats describes the in-memory delta's participation in one query
// execution.
type DeltaStats struct {
	// Generation is the storage generation the query was served from. It
	// increases on every seal, committed append batch and compaction.
	Generation uint64
	// Records is the number of delta records visible to the query (0 when
	// the engine had no uncompacted appends, or under WithoutDelta).
	Records int64
	// Cells and CellsPruned count the delta's seal-grid cells and how many
	// the planner skipped. Only planned queries (WithAutoPlan) partition
	// the delta; both are 0 otherwise.
	Cells       int
	CellsPruned int
	// RecordsSelected is the number of delta records the job read after
	// pruning (equal to Records for unplanned queries).
	RecordsSelected int64
}

// deltaState is the immutable query-side view of the records appended
// after the snapshot's base generation sealed. objs is a fixed-length
// prefix of the engine's append-order delta slice: the engine only ever
// appends past every published length (under e.mu), and the atomic
// snapshot publication orders those writes before any reader's loads, so
// queries iterate objs without locks or copies.
type deltaState struct {
	objs []data.Object

	// view is the planner-facing partitioned form, built lazily — at most
	// once per snapshot — the first time a planned query needs per-cell
	// pruning. Unplanned queries never pay for it.
	once sync.Once
	view *deltaView
}

// deltaView is the delta partitioned over the base manifest's seal grid,
// with per-cell statistics mirroring the manifest's: the on-the-fly
// equivalent of a seal, minus the storage writes. Cell names are synthetic
// ("delta-d0012") and resolve through layout into sub-slices of ordered.
type deltaView struct {
	ordered      []data.Object
	layout       map[string]memRange
	dataCells    []data.CellStats
	featureCells []data.CellStats
}

// buildView partitions the delta over the manifest's seal grid, once.
func (d *deltaState) buildView(m *data.Manifest, dict *text.Dict) *deltaView {
	d.once.Do(func() {
		parts := data.PartitionObjects(m.Grid.Grid(), d.objs)
		dataCells, featureCells, ordered := parts.CellView("delta", dict)
		d.view = &deltaView{
			ordered:      ordered,
			layout:       cellLayout(dataCells, featureCells),
			dataCells:    dataCells,
			featureCells: featureCells,
		}
	})
	return d.view
}

// cellLayout maps each cell name to its index range in the cell-ordered
// object layout (data cells first, then feature cells — the order CellView
// and SealMemory lay objects out in). Shared by the sealed memory layout
// and the delta view, whose ranges memoryChunks consumes interchangeably.
func cellLayout(dataCells, featureCells []data.CellStats) map[string]memRange {
	layout := make(map[string]memRange, len(dataCells)+len(featureCells))
	off := 0
	for _, cs := range dataCells {
		layout[cs.File] = memRange{lo: off, hi: off + cs.Records}
		off += cs.Records
	}
	for _, cs := range featureCells {
		layout[cs.File] = memRange{lo: off, hi: off + cs.Records}
		off += cs.Records
	}
	return layout
}

// memoryChunks builds an in-memory source over the selected partitions of
// a cell-ordered object layout. Partitions are contiguous sub-slices;
// adjacent selections are merged and then re-split into roughly target
// chunks, so no object is ever copied and an unpruned selection still gets
// a handful of big splits rather than one per cell. Shared by the sealed
// memory-mode layout and the delta view.
func memoryChunks(objs []data.Object, layout map[string]memRange, files []string, target int) *mapreduce.MemorySource[data.Object] {
	var runs []memRange
	total := 0
	for _, f := range files {
		r, ok := layout[f]
		if !ok {
			continue
		}
		total += r.hi - r.lo
		if n := len(runs); n > 0 && runs[n-1].hi == r.lo {
			runs[n-1].hi = r.hi
		} else {
			runs = append(runs, r)
		}
	}
	src := &mapreduce.MemorySource[data.Object]{}
	if total == 0 {
		return src
	}
	if target < 1 {
		target = 1
	}
	chunkSize := (total + target - 1) / target
	for _, r := range runs {
		for lo := r.lo; lo < r.hi; lo += chunkSize {
			hi := lo + chunkSize
			if hi > r.hi {
				hi = r.hi
			}
			src.Chunks = append(src.Chunks, objs[lo:hi])
		}
	}
	return src
}
