package spq

import (
	"fmt"
	"math/rand"
	"testing"
)

// resultsEqual compares two result lists element-wise. Scores must be
// bitwise identical: pruning only removes provably-zero-scoring input, so
// the surviving computation is exactly the same.
func resultsEqual(a, b []Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// scoreSeqEqual compares only the ranked score sequences.
func scoreSeqEqual(a, b []Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Score != b[i].Score {
			return false
		}
	}
	return true
}

// TestPlannedQueriesMatchUnplannedProperty is the planner's correctness
// property: for random datasets (uniform and clustered), random queries
// (including out-of-vocabulary keywords), every algorithm and every
// storage mode, the pruned path returns results identical to the unpruned
// path.
func TestPlannedQueriesMatchUnplannedProperty(t *testing.T) {
	storages := map[string]Storage{
		"dfs":    StorageDFS,
		"memory": StorageMemory,
		"binary": StorageDFSBinary,
	}
	for _, family := range []string{"uniform", "clustered"} {
		for sname, storage := range storages {
			t.Run(family+"/"+sname, func(t *testing.T) {
				e := NewEngine(Config{Storage: storage, Nodes: 4, BlockSize: 4 << 10, Seed: 9})
				if err := e.LoadSynthetic(family, 600); err != nil {
					t.Fatal(err)
				}
				kws := e.FrequentKeywords(6)
				rng := rand.New(rand.NewSource(17))
				queries := []Query{
					{K: 1, Radius: 0.02, Keywords: kws[:1]},
					{K: 3, Radius: 0.05, Keywords: kws[1:3]},
					{K: 10, Radius: 0.15, Keywords: kws[3:6]},
					{K: 5, Radius: 0.08, Keywords: []string{kws[0], "zzz-out-of-vocabulary"}},
					{K: 4, Radius: 0, Keywords: kws[:2]},
					{K: 2, Radius: 0.03, Keywords: []string{"zzz-no-such-keyword"}},
					{K: 6, Radius: float64(rng.Intn(20)+1) / 100, Keywords: kws[rng.Intn(3) : rng.Intn(3)+2]},
				}
				for qi, q := range queries {
					for _, alg := range Algorithms() {
						// At a fixed query grid, pruning must be invisible:
						// byte-identical results.
						plain, err := e.Query(q, WithAlgorithm(alg), WithSealGrid(8), WithGrid(9))
						if err != nil {
							t.Fatalf("q%d %v unplanned: %v", qi, alg, err)
						}
						planned, err := e.Query(q, WithAlgorithm(alg), WithSealGrid(8), WithGrid(9), WithAutoPlan())
						if err != nil {
							t.Fatalf("q%d %v planned: %v", qi, alg, err)
						}
						if !resultsEqual(plain, planned) {
							t.Errorf("q%d %v: planned results differ\nunplanned: %+v\nplanned:   %+v",
								qi, alg, plain, planned)
						}
						// With a planner-chosen grid, the score sequence is
						// still identical; only k-ties at the threshold may
						// resolve to different ids, exactly as they do
						// between two hand-picked grid sizes (the paper's
						// per-cell top-k keeps the first k tied objects of
						// each cell).
						auto, err := e.Query(q, WithAlgorithm(alg), WithSealGrid(8), WithAutoPlan())
						if err != nil {
							t.Fatalf("q%d %v auto-grid: %v", qi, alg, err)
						}
						if !scoreSeqEqual(plain, auto) {
							t.Errorf("q%d %v: auto-grid scores differ\nunplanned: %+v\nplanned:   %+v",
								qi, alg, plain, auto)
						}
					}
					// The scoring-mode extensions prune identically: every
					// mode restricts contributions to features within r.
					for _, mode := range []ScoringMode{ScoreInfluence, ScoreNearest} {
						mq := q
						mq.Mode = mode
						plain, err := e.Query(mq, WithAlgorithm(PSPQ), WithSealGrid(8), WithGrid(9))
						if err != nil {
							t.Fatalf("q%d %v unplanned: %v", qi, mode, err)
						}
						planned, err := e.Query(mq, WithAlgorithm(PSPQ), WithSealGrid(8), WithGrid(9), WithAutoPlan())
						if err != nil {
							t.Fatalf("q%d %v planned: %v", qi, mode, err)
						}
						if !resultsEqual(plain, planned) {
							t.Errorf("q%d mode %v: planned results differ\nunplanned: %+v\nplanned:   %+v",
								qi, mode, plain, planned)
						}
					}
				}
			})
		}
	}
}

// loadClusteredCorpus fills an engine with a spatially and textually
// clustered corpus: nClusters Gaussian clusters, each with its own keyword
// vocabulary ("c<i>-kw<j>") plus a shared one — the regime where a
// rare-keyword query touches one corner of the space and write-time
// partitioning pays off.
func loadClusteredCorpus(t *testing.T, e *Engine, n, nClusters int) {
	t.Helper()
	rng := rand.New(rand.NewSource(23))
	centers := make([][2]float64, nClusters)
	for i := range centers {
		centers[i] = [2]float64{0.1 + 0.8*rng.Float64(), 0.1 + 0.8*rng.Float64()}
	}
	var dataObjs []DataObject
	var feats []Feature
	for i := 0; i < n; i++ {
		ci := (i / 2) % nClusters // both kinds populate every cluster
		x := centers[ci][0] + rng.NormFloat64()*0.03
		y := centers[ci][1] + rng.NormFloat64()*0.03
		if i%2 == 0 {
			dataObjs = append(dataObjs, DataObject{ID: uint64(i + 1), X: x, Y: y})
		} else {
			feats = append(feats, Feature{ID: uint64(i + 1), X: x, Y: y, Keywords: []string{
				fmt.Sprintf("c%d-kw%d", ci, rng.Intn(64)),
				fmt.Sprintf("c%d-kw%d", ci, rng.Intn(64)),
				fmt.Sprintf("common%d", rng.Intn(10)),
			}})
		}
	}
	if err := e.AddData(dataObjs...); err != nil {
		t.Fatal(err)
	}
	if err := e.AddFeature(feats...); err != nil {
		t.Fatal(err)
	}
}

// TestPlannerReadsFractionOnSelectiveQuery is the serving-throughput
// acceptance bar: on a clustered 100k-object corpus, a selective query (a
// rare keyword occurring in one cluster, small radius) must read at least
// 4x fewer input records under the planner than without it, returning
// identical results.
func TestPlannerReadsFractionOnSelectiveQuery(t *testing.T) {
	e := NewEngine(Config{Storage: StorageMemory})
	loadClusteredCorpus(t, e, 100000, 16)

	q := Query{K: 10, Radius: 0.02, Keywords: []string{"c3-kw7"}}
	plain, err := e.QueryReport(q, WithAlgorithm(ESPQSco))
	if err != nil {
		t.Fatal(err)
	}
	planned, err := e.QueryReport(q, WithAlgorithm(ESPQSco), WithAutoPlan())
	if err != nil {
		t.Fatal(err)
	}
	if !resultsEqual(plain.Results, planned.Results) {
		t.Fatalf("planned results differ:\nunplanned: %+v\nplanned:   %+v", plain.Results, planned.Results)
	}
	if len(planned.Results) == 0 {
		t.Fatal("selective query returned nothing; corpus construction is off")
	}

	read, readPlanned := plain.Counters["map.records.in"], planned.Counters["map.records.in"]
	if read != 100000 {
		t.Fatalf("unplanned records read = %d, want 100000", read)
	}
	if readPlanned*4 > read {
		t.Errorf("planned path read %d of %d records; want >=4x reduction", readPlanned, read)
	}

	if planned.Plan == nil {
		t.Fatal("planned report has no Plan stats")
	}
	if planned.Plan.RecordsSelected != readPlanned {
		t.Errorf("Plan.RecordsSelected = %d, job read %d", planned.Plan.RecordsSelected, readPlanned)
	}
	if skipped := planned.Counters["spq.plan.records.skipped"]; skipped != read-readPlanned {
		t.Errorf("records-skipped counter = %d, want %d", skipped, read-readPlanned)
	}
	if planned.Plan.DataCellsPruned == 0 || planned.Plan.FeatureCellsPruned == 0 {
		t.Errorf("no cell pruning recorded: %+v", planned.Plan)
	}
	t.Logf("selective query: %d -> %d records read (%.1fx), grid %d, %d reducers",
		read, readPlanned, float64(read)/float64(readPlanned), planned.Plan.GridN, planned.Plan.NumReducers)
}

// TestAutoPlanProvablyEmptyQuerySkipsJob checks the planner's
// short-circuit: a query whose keyword occurs nowhere needs no MapReduce
// job at all, and still reports its pruning.
func TestAutoPlanProvablyEmptyQuerySkipsJob(t *testing.T) {
	e := loadPaperExample(t, Config{Storage: StorageMemory})
	rep, err := e.QueryReport(Query{K: 3, Radius: 1.5, Keywords: []string{"nope-xyzzy"}}, WithAutoPlan())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 0 {
		t.Errorf("results = %+v, want none", rep.Results)
	}
	if rep.Plan == nil || rep.Plan.RecordsSelected >= rep.Plan.RecordsTotal {
		t.Errorf("plan stats = %+v, want pruning recorded", rep.Plan)
	}
	if rep.Counters["map.records.in"] != 0 {
		t.Errorf("a job ran: map.records.in = %d", rep.Counters["map.records.in"])
	}
	// The short-circuit must validate like the executed path.
	if _, err := e.QueryReport(Query{K: 1, Radius: 1, Keywords: []string{"nope-xyzzy"}, Mode: ScoreNearest},
		WithAutoPlan(), WithAlgorithm(ESPQSco)); err == nil {
		t.Error("unsupported algorithm/mode combination accepted on the empty-plan path")
	}
}

// TestWithSealGridControlsManifest checks the seal-grid override and the
// manifest the engine exposes.
func TestWithSealGridControlsManifest(t *testing.T) {
	e := loadPaperExample(t, Config{})
	if e.Manifest() != nil {
		t.Fatal("manifest exists before seal")
	}
	if _, err := e.Query(Query{K: 1, Radius: 1.5, Keywords: []string{"italian"}}, WithSealGrid(5)); err != nil {
		t.Fatal(err)
	}
	man := e.Manifest()
	if man == nil {
		t.Fatal("no manifest after seal")
	}
	if man.Grid.N != 5 {
		t.Errorf("seal grid = %d, want 5 (WithSealGrid)", man.Grid.N)
	}
	if man.TotalRecords() != 13 {
		t.Errorf("manifest records = %d, want 13", man.TotalRecords())
	}
	// Write-once: a later query cannot re-partition.
	if _, err := e.Query(Query{K: 1, Radius: 1.5, Keywords: []string{"italian"}}, WithSealGrid(9)); err != nil {
		t.Fatal(err)
	}
	if e.Manifest().Grid.N != 5 {
		t.Error("WithSealGrid re-partitioned a sealed engine")
	}
	// Invalid seal grid values are rejected before sealing.
	e2 := loadPaperExample(t, Config{})
	if _, err := e2.Query(Query{K: 1, Radius: 1, Keywords: []string{"italian"}}, WithSealGrid(-2)); err == nil {
		t.Error("negative seal grid accepted")
	}
}
