// Package spq is a library for parallel and distributed processing of
// spatial preference queries using keywords, reproducing the EDBT 2017
// paper by Doulkeridis, Vlachou, Mpestas and Mamoulis.
//
// Given a set of data objects (locations to be ranked), a set of feature
// objects (locations annotated with keywords), and a query q(k, r, W),
// the library returns the top-k data objects ranked by the best Jaccard
// similarity between W and the keywords of any feature object within
// distance r:
//
//	τ(p) = max{ Jaccard(W, f.Keywords) : dist(p, f) ≤ r }
//
// Processing runs as a single MapReduce job on an in-process simulated
// cluster (a DFS with replicated blocks plus parallel map/reduce worker
// slots). Three algorithms are available: PSPQ (grid partitioning with
// feature duplication), ESPQLen and ESPQSco (early termination; ESPQSco
// is the paper's — and this library's — best performer and the default).
//
// # Quick start
//
//	eng := spq.NewEngine(spq.Config{})
//	eng.AddData(spq.DataObject{ID: 1, X: 4.6, Y: 4.8})
//	eng.AddFeature(spq.Feature{ID: 101, X: 3.8, Y: 5.5, Keywords: []string{"italian"}})
//	res, err := eng.Query(spq.Query{K: 1, Radius: 1.5, Keywords: []string{"italian"}})
package spq

import (
	"fmt"
	"math"

	"spq/internal/core"
	"spq/internal/data"
	"spq/internal/geo"
	"spq/internal/text"
)

// Algorithm selects the query processing algorithm.
type Algorithm = core.Algorithm

// The three algorithms of the paper.
const (
	// PSPQ is the grid-partitioned parallel algorithm without early
	// termination (Section 4).
	PSPQ = core.PSPQ
	// ESPQLen terminates early by scanning features in increasing
	// keyword-list length (Section 5.1).
	ESPQLen = core.ESPQLen
	// ESPQSco terminates early by scanning features in decreasing score
	// (Section 5.2). Default and consistently fastest.
	ESPQSco = core.ESPQSco
)

// Algorithms returns all algorithms in the paper's presentation order.
func Algorithms() []Algorithm { return core.Algorithms() }

// ScoringMode selects how in-range features contribute to a data object's
// score.
type ScoringMode = core.ScoringMode

// The scoring modes: the paper's range scoring (default) plus the
// influence and nearest-neighbor extensions from the spatial preference
// query literature. ScoreNearest is only supported by PSPQ — it is not
// monotone in the textual score, so early termination is unsound for it.
const (
	ScoreRange     = core.ScoreRange
	ScoreInfluence = core.ScoreInfluence
	ScoreNearest   = core.ScoreNearest
)

// DataObject is a spatial object to be ranked by queries.
type DataObject struct {
	ID   uint64
	X, Y float64
}

// Feature is a spatio-textual object that scores nearby data objects.
type Feature struct {
	ID       uint64
	X, Y     float64
	Keywords []string
}

// Query is a spatial preference query using keywords. The json tags are
// its canonical wire form, shared by the serving daemon (cmd/spqd), its
// clients and the load harness (cmd/spqload); see QueryRequest.
type Query struct {
	// K is the number of data objects to return.
	K int `json:"k"`
	// Radius is the neighborhood distance threshold r: only feature
	// objects within this distance of a data object influence its score.
	Radius float64 `json:"radius"`
	// Keywords is the query keyword set W.
	Keywords []string `json:"keywords"`
	// Mode selects the scoring variant; the zero value is the paper's
	// range mode (best Jaccard score within the radius).
	Mode ScoringMode `json:"mode,omitempty"`
}

// Result is one ranked data object. A query returns at most K results;
// data objects with no relevant feature in range score 0 and are omitted.
// The json tags are its canonical wire form (see QueryResponse).
type Result struct {
	ID    uint64  `json:"id"`
	X     float64 `json:"x"`
	Y     float64 `json:"y"`
	Score float64 `json:"score"`
}

// Report is the full outcome of a query: ranked results plus execution
// metrics of the underlying MapReduce job.
type Report struct {
	Algorithm Algorithm
	Results   []Result
	// Counters are the job counters (see package documentation for names):
	// feature duplication, early terminations, records shuffled, etc. For
	// planned queries (WithAutoPlan) they additionally carry the
	// "spq.plan.*" counters: cells pruned and input records skipped.
	Counters map[string]int64
	// Plan describes what the query planner did; nil unless the query ran
	// with WithAutoPlan.
	Plan *PlanStats
	// Delta describes the in-memory delta's participation: the storage
	// generation served, how many appended-but-not-yet-compacted records
	// were visible, and — for planned queries — how many delta cells were
	// pruned. The spq.delta.* entries of Counters carry the same numbers.
	Delta *DeltaStats
	// MapMillis and ReduceMillis are the phase durations.
	MapMillis    float64
	ReduceMillis float64
	// TotalMillis is the end-to-end job duration.
	TotalMillis float64

	// effective records the settings the query actually ran with, resolved
	// from the defaults and the QueryOptions; see Options.
	effective EffectiveOptions
}

// EffectiveOptions are the resolved execution settings of one query: the
// defaults overlaid with every QueryOption the caller passed. The serving
// daemon echoes them back to clients, so a caller can see what a query
// actually ran with without reverse-engineering the option list.
type EffectiveOptions struct {
	// Algorithm is the processing algorithm the query ran.
	Algorithm Algorithm `json:"algorithm"`
	// AutoPlan reports whether the query planner was enabled.
	AutoPlan bool `json:"auto_plan"`
	// Cache reports whether this execution participated in the query cache
	// (an engine with the cache disabled reports false even without
	// WithCache(false)).
	Cache bool `json:"cache"`
	// Delta reports whether appended-but-uncompacted records were visible.
	Delta bool `json:"delta"`
	// GridN is the query-time grid edge requested by WithGrid; 0 when the
	// default or a planner-chosen grid applied (Plan.GridN has the final
	// value for planned queries).
	GridN int `json:"grid_n,omitempty"`
	// Reducers is the reduce-task override from WithReducers; 0 = default.
	Reducers int `json:"reducers,omitempty"`
	// SpillEvery is the map-side spill threshold from WithSpill; 0 = off.
	SpillEvery int `json:"spill_every,omitempty"`
	// SealGridN is the seal-grid override from WithSealGrid; 0 = default.
	SealGridN int `json:"seal_grid_n,omitempty"`
}

// Options returns the effective execution settings the query ran with.
// Reports served from the query cache return the settings of the original
// execution, which — by cache-key construction — resolve identically.
func (r *Report) Options() EffectiveOptions { return r.effective }

// PlanStats describes one planned query execution: how much of the sealed,
// partitioned storage the planner proved irrelevant, and the execution
// parameters it chose.
type PlanStats struct {
	// SealGridN is the seal grid edge the storage was partitioned over.
	SealGridN int
	// DataCells and FeatureCells count the non-empty sealed cells of each
	// dataset; the *Pruned counts say how many the planner skipped
	// (feature cells by keyword disjointness, data cells with no
	// surviving feature cell within the query radius, and feature cells
	// left without a reachable data cell).
	DataCells          int
	FeatureCells       int
	DataCellsPruned    int
	FeatureCellsPruned int
	// Blocks counts the column-block zone maps the planner considered
	// (SPQ2 columnar storage; 0 on storage without block metadata) and
	// BlocksPruned how many it proved irrelevant — pruning inside
	// surviving cells as well as across whole pruned cells. The
	// "spq.plan.blocks.scanned" and "spq.plan.blocks.pruned" counters
	// carry the same numbers.
	Blocks       int
	BlocksPruned int
	// RecordsTotal and RecordsSelected count stored input records before
	// and after pruning: the job reads only RecordsSelected of them.
	RecordsTotal    int64
	RecordsSelected int64
	// GridN and NumReducers are the execution parameters the job ran
	// with (planner-chosen unless overridden by WithGrid/WithReducers).
	GridN       int
	NumReducers int
}

// QueryOption customizes one query execution.
type QueryOption func(*queryConfig)

type queryConfig struct {
	alg         core.Algorithm
	gridN       int
	gridSet     bool
	reducers    int
	spillEvery  int
	bounds      *geo.Rect
	autoPlan    bool
	sealGridN   int
	sealGridSet bool
	noCache     bool
	noDelta     bool
}

// WithAlgorithm selects the processing algorithm (default ESPQSco).
func WithAlgorithm(a Algorithm) QueryOption {
	return func(c *queryConfig) { c.alg = a }
}

// WithGrid sets the query-time grid to n x n cells (default 16x16, or
// planner-chosen under WithAutoPlan). More cells mean more parallelism and
// cheaper reduce tasks at the cost of more feature duplication (Section
// 6.3 of the paper).
func WithGrid(n int) QueryOption {
	return func(c *queryConfig) { c.gridN = n; c.gridSet = true }
}

// WithAutoPlan enables the query planner: the sealed storage manifest is
// pruned against the query before the MapReduce job starts — feature
// cells whose keyword summary is disjoint from the query keywords are
// skipped, data cells with no surviving feature cell within the radius are
// skipped (their objects provably score 0) — and the query-time grid size
// and reducer count are chosen from the surviving cell statistics instead
// of the defaults. Results are identical to the unplanned path; selective
// queries read a fraction of the input. Report.Plan records the outcome.
// WithGrid and WithReducers still override the planner's choices.
func WithAutoPlan() QueryOption {
	return func(c *queryConfig) { c.autoPlan = true }
}

// WithSealGrid sets the seal grid to n x n cells for the implicit Seal
// performed by the first query (default Config.SealGridN). It is ignored
// if the engine is already sealed; compactions re-use the grid edge the
// base generation was sealed with.
func WithSealGrid(n int) QueryOption {
	return func(c *queryConfig) { c.sealGridN = n; c.sealGridSet = true }
}

// WithCache controls this execution's participation in the engine's query
// cache. WithCache(false) bypasses it entirely: the query neither reads a
// cached report nor stores its own — use it when the actual execution
// matters (benchmarking, or reading fresh job counters for a query that
// may already be cached). WithCache(true) restores the default, so a later
// option can override an earlier one.
func WithCache(enabled bool) QueryOption {
	return func(c *queryConfig) { c.noCache = !enabled }
}

// WithDelta controls the visibility of appended-but-uncompacted records.
// WithDelta(false) restricts this query to the sealed base generation,
// ignoring records appended since the last seal or compaction — useful for
// repeatable reads while a writer is streaming appends, or to isolate the
// delta's contribution to results and timings. Such executions are cached
// separately from delta-inclusive ones. WithDelta(true) restores the
// default.
func WithDelta(enabled bool) QueryOption {
	return func(c *queryConfig) { c.noDelta = !enabled }
}

// WithoutCache bypasses the engine's query cache for this execution.
//
// Deprecated: use WithCache(false), which also composes with a later
// WithCache(true).
func WithoutCache() QueryOption { return WithCache(false) }

// WithoutDelta restricts this query to the sealed base generation.
//
// Deprecated: use WithDelta(false), which also composes with a later
// WithDelta(true).
func WithoutDelta() QueryOption { return WithDelta(false) }

// WithReducers overrides the number of reduce tasks (default: one per grid
// cell, the paper's configuration).
func WithReducers(r int) QueryOption {
	return func(c *queryConfig) { c.reducers = r }
}

// WithSpill bounds the number of intermediate records a map task buffers
// in memory before spilling sorted runs to disk. Zero (default) keeps the
// shuffle fully in memory.
func WithSpill(records int) QueryOption {
	return func(c *queryConfig) { c.spillEvery = records }
}

// WithBounds overrides the data-space bounding rectangle used to lay out
// the grid. By default the engine uses the bounding box of the loaded
// objects.
func WithBounds(minX, minY, maxX, maxY float64) QueryOption {
	return func(c *queryConfig) {
		c.bounds = &geo.Rect{MinX: minX, MinY: minY, MaxX: maxX, MaxY: maxY}
	}
}

func toResults(items []core.ResultItem) []Result {
	out := make([]Result, len(items))
	for i, it := range items {
		out[i] = Result{ID: it.ID, X: it.Loc.X, Y: it.Loc.Y, Score: it.Score}
	}
	return out
}

func toFeatureObject(f Feature, dict *text.Dict) data.Object {
	return data.Object{
		Kind:     data.FeatureObject,
		ID:       f.ID,
		Loc:      geo.Point{X: f.X, Y: f.Y},
		Keywords: dict.InternAll(f.Keywords),
	}
}

// validateQuery rejects malformed queries at the API boundary, before any
// snapshot, cache or job work. Every rejection wraps ErrInvalidQuery and
// names the offending field, so serving layers map it to a 400 and clients
// see what to fix.
func validateQuery(q Query) error {
	if q.K <= 0 {
		return fmt.Errorf("%w: field K = %d, must be positive", ErrInvalidQuery, q.K)
	}
	if math.IsNaN(q.Radius) || math.IsInf(q.Radius, 0) {
		// `q.Radius < 0` is false for NaN, so without this check a NaN
		// radius used to slip through and silently return wrong results
		// (every distance comparison against NaN is false); +Inf put every
		// feature in range of every object. Reject both with a clear error.
		return fmt.Errorf("%w: field Radius = %g, must be finite", ErrInvalidQuery, q.Radius)
	}
	if q.Radius < 0 {
		return fmt.Errorf("%w: field Radius = %g, must be non-negative", ErrInvalidQuery, q.Radius)
	}
	if len(q.Keywords) == 0 {
		return fmt.Errorf("%w: field Keywords is empty", ErrInvalidQuery)
	}
	return nil
}

// effectiveOptions resolves one parsed option set into the introspection
// form attached to reports (Report.Options). cacheEnabled is whether the
// engine's query cache exists at all.
func (c *queryConfig) effectiveOptions(cacheEnabled bool) EffectiveOptions {
	return EffectiveOptions{
		Algorithm:  c.alg,
		AutoPlan:   c.autoPlan,
		Cache:      cacheEnabled && !c.noCache,
		Delta:      !c.noDelta,
		GridN:      c.gridN,
		Reducers:   c.reducers,
		SpillEvery: c.spillEvery,
		SealGridN:  c.sealGridN,
	}
}
