package spq

import (
	"errors"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// chaosSeeds returns the fault-plan seeds the chaos property tests sweep.
// CI widens the sweep through SPQ_CHAOS_SEEDS (comma-separated); every
// seed replays deterministically, so a failing seed is a complete repro.
func chaosSeeds(t *testing.T) []int64 {
	t.Helper()
	env := os.Getenv("SPQ_CHAOS_SEEDS")
	if env == "" {
		if testing.Short() {
			return []int64{1}
		}
		return []int64{1, 2}
	}
	var seeds []int64
	for _, f := range strings.Split(env, ",") {
		s, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
		if err != nil {
			t.Fatalf("SPQ_CHAOS_SEEDS: %v", err)
		}
		seeds = append(seeds, s)
	}
	return seeds
}

// chaosEngine builds a sealed DFS-backed engine over the clustered
// synthetic dataset.
func chaosEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e := NewEngine(cfg)
	if err := e.LoadSynthetic("clustered", 500); err != nil {
		t.Fatal(err)
	}
	if err := e.Seal(); err != nil {
		t.Fatal(err)
	}
	return e
}

// diffResults returns a description of the first difference between two
// result lists (ids and scores, in order), or "" when identical.
func diffResults(got, want []Result) string {
	if len(got) != len(want) {
		return fmt.Sprintf("%d results, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].ID != want[i].ID || math.Abs(got[i].Score-want[i].Score) > 1e-12 {
			return fmt.Sprintf("result[%d] = %d/%g, want %d/%g",
				i, got[i].ID, got[i].Score, want[i].ID, want[i].Score)
		}
	}
	return ""
}

// sameResults requires identical ids and scores in identical order.
func sameResults(t *testing.T, ctx string, got, want []Result) {
	t.Helper()
	if d := diffResults(got, want); d != "" {
		t.Fatalf("%s: %s", ctx, d)
	}
}

// The chaos identity property: under any seeded fault schedule that leaves
// at least one healthy replica per block (transient read errors, one
// corrupted replica of every Nth block, nodes crashing and reviving
// mid-run), every algorithm on every DFS-backed storage format returns
// byte-identical results to a fault-free engine over the same data.
func TestChaosResultIdentityUnderFaults(t *testing.T) {
	formats := []struct {
		name string
		set  func(*Config)
	}{
		{"text", func(c *Config) { c.Storage = StorageDFS }},
		{"spq1", func(c *Config) { c.Storage = StorageDFSBinary; c.Segment = SegmentRecord }},
		{"spq2", func(c *Config) { c.Storage = StorageDFSBinary; c.Segment = SegmentColumnar }},
		{"spq3", func(c *Config) { c.Storage = StorageDFSBinary; c.Segment = SegmentCompressed }},
	}
	seeds := chaosSeeds(t)
	for _, f := range formats {
		f := f
		t.Run(f.name, func(t *testing.T) {
			base := Config{
				Nodes: 6, BlockSize: 2 << 10, Seed: 5,
				QueryCache: -1, MaxAttempts: 5, RetryBackoff: -1,
			}
			f.set(&base)
			clean := chaosEngine(t, base)
			q := Query{K: 10, Radius: 0.08, Keywords: clean.FrequentKeywords(2)}
			want := make(map[Algorithm][]Result)
			for _, alg := range Algorithms() {
				res, err := clean.Query(q, WithAlgorithm(alg), WithGrid(8))
				if err != nil {
					t.Fatalf("clean %v: %v", alg, err)
				}
				want[alg] = res
			}
			for _, seed := range seeds {
				cfg := base
				cfg.Faults = &FaultPlan{
					Seed:              seed,
					TransientReadProb: 0.1,
					CorruptEveryN:     4,
					// One node down at a time: with replication 3 every
					// block keeps at least one healthy replica.
					Crashes: []CrashEvent{
						{AtRead: 5, Node: 1},
						{AtRead: 40, Node: 1, Revive: true},
						{AtRead: 80, Node: 2},
						{AtRead: 160, Node: 2, Revive: true},
					},
				}
				faulty := chaosEngine(t, cfg)
				for _, alg := range Algorithms() {
					rep, err := faulty.QueryReport(q, WithAlgorithm(alg), WithGrid(8))
					if err != nil {
						t.Fatalf("seed %d %v: %v", seed, alg, err)
					}
					sameResults(t, f.name+" under faults", rep.Results, want[alg])
				}
				if fs := faulty.FaultStats(); fs.CorruptionsInjected == 0 {
					t.Errorf("seed %d: fault plan injected no corruption", seed)
				}
			}
		})
	}
}

// A task may fail transiently on every attempt but its last and the query
// must still complete with exact results, with the retries and the
// injected faults visible on the report.
func TestChaosTaskRetriesThenCompletes(t *testing.T) {
	base := Config{
		Storage: StorageDFS, Nodes: 4, BlockSize: 4 << 10, Seed: 7,
		QueryCache: -1, MapSlots: 1, ReduceSlots: 1,
		MaxAttempts: 3, RetryBackoff: -1,
	}
	clean := chaosEngine(t, base)
	q := Query{K: 5, Radius: 0.1, Keywords: clean.FrequentKeywords(2)}
	want, err := clean.Query(q, WithGrid(6))
	if err != nil {
		t.Fatal(err)
	}

	cfg := base
	// Budget of 6 failed replica reads: with replication 3 the first map
	// task's first block read fails whole (3 replicas), its retry fails
	// again (3 more), and the third attempt reads a healed cluster. The
	// task burns MaxAttempts-1 failures and must still complete.
	cfg.Faults = &FaultPlan{FailFirstReads: 6}
	faulty := chaosEngine(t, cfg)
	rep, err := faulty.QueryReport(q, WithGrid(6))
	if err != nil {
		t.Fatalf("query with exhausted-minus-one retry budget failed: %v", err)
	}
	sameResults(t, "after retries", rep.Results, want)
	if got := rep.Counters[CounterRetryMap]; got != 2 {
		t.Errorf("%s = %d, want 2", CounterRetryMap, got)
	}
	if got := rep.Counters[CounterFaultTransient]; got != 6 {
		t.Errorf("%s = %d, want 6", CounterFaultTransient, got)
	}
}

// Self-healing drill: after a node dies, Repair re-replicates its blocks
// onto the survivors, so a later loss of every original replica holder
// still serves exact results from the repaired copies. Genuine total loss
// fails with the typed sentinels — never a silently wrong top-k.
func TestChaosRepairSurvivesNodeLoss(t *testing.T) {
	e := chaosEngine(t, Config{
		Storage: StorageDFS, Nodes: 4, BlockSize: 2 << 10, Seed: 3,
		QueryCache: -1, RetryBackoff: -1,
	})
	q := Query{K: 5, Radius: 0.1, Keywords: e.FrequentKeywords(2)}
	want, err := e.Query(q, WithGrid(6))
	if err != nil {
		t.Fatal(err)
	}

	// One node down: reads fail over, results unchanged.
	if err := e.KillNode(0); err != nil {
		t.Fatal(err)
	}
	rep, err := e.QueryReport(q, WithGrid(6))
	if err != nil {
		t.Fatalf("query with one dead node: %v", err)
	}
	sameResults(t, "one node dead", rep.Results, want)
	if rep.Counters[CounterFaultFailover] == 0 {
		t.Error("no failover reads counted with a dead node")
	}

	// Repair re-replicates node 0's blocks across the three survivors, so
	// every block now has a live replica on each of nodes 1, 2 and 3.
	st := e.Repair()
	if st.ReplicasAdded == 0 {
		t.Fatalf("repair added no replicas after node loss: %+v", st)
	}
	if err := e.KillNode(1); err != nil {
		t.Fatal(err)
	}
	if err := e.KillNode(2); err != nil {
		t.Fatal(err)
	}
	res, err := e.Query(q, WithGrid(6))
	if err != nil {
		t.Fatalf("query with only the repaired node alive: %v", err)
	}
	sameResults(t, "post-repair single survivor", res, want)

	// Total loss: typed error, no results.
	if err := e.KillNode(3); err != nil {
		t.Fatal(err)
	}
	res, err = e.Query(q, WithGrid(6))
	if err == nil {
		t.Fatalf("query with no live nodes returned %d results", len(res))
	}
	if !errors.Is(err, ErrDataUnavailable) {
		t.Errorf("total loss error is not ErrDataUnavailable: %v", err)
	}
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Errorf("total loss error is not ErrRetriesExhausted: %v", err)
	}

	// One revival is enough: the repaired node holds every block.
	if err := e.ReviveNode(3); err != nil {
		t.Fatal(err)
	}
	res, err = e.Query(q, WithGrid(6))
	if err != nil {
		t.Fatalf("query after revival: %v", err)
	}
	sameResults(t, "after revival", res, want)
}

// Nodes dying and reviving under live concurrent queries (plus concurrent
// repair passes) must never corrupt a result: with at most one node down
// at a time every query succeeds and returns exactly the reference top-k.
// Run under -race in CI.
func TestChaosKillReviveDuringConcurrentQueries(t *testing.T) {
	e := chaosEngine(t, Config{
		Storage: StorageDFS, Nodes: 6, BlockSize: 2 << 10, Seed: 11,
		QueryCache: -1, MaxAttempts: 5, RetryBackoff: -1,
	})
	q := Query{K: 5, Radius: 0.1, Keywords: e.FrequentKeywords(2)}
	want, err := e.Query(q, WithGrid(6))
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var chaos sync.WaitGroup
	chaos.Add(1)
	go func() {
		defer chaos.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			n := i % e.NumNodes()
			if err := e.KillNode(n); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(500 * time.Microsecond)
			if i%3 == 0 {
				e.Repair()
			}
			if err := e.ReviveNode(n); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	const workers, perWorker = 4, 5
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				alg := Algorithms()[(w+i)%len(Algorithms())]
				res, err := e.Query(q, WithAlgorithm(alg), WithGrid(6))
				if err != nil {
					t.Errorf("worker %d query %d (%v): %v", w, i, alg, err)
					return
				}
				if d := diffResults(res, want); d != "" {
					t.Errorf("worker %d query %d (%v): %s", w, i, alg, d)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	chaos.Wait()
}
