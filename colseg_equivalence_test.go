package spq

import (
	"testing"
)

// TestColumnarMatchesRecordStorageProperty is the storage-format
// correctness property: the same corpus sealed as SPQ3 compressed
// segments (the binary default), as SPQ2 plain columnar segments, and as
// legacy SPQ1 record files returns byte-identical results for every
// algorithm, planned and unplanned. The format changes how bytes reach
// the map phase — compressed or plain column blocks fetched by zone-map
// offset versus records streamed through sync markers — and nothing
// else. For SPQ3 this also covers the posting-list pushdown: planned
// queries skip irrelevant feature records via the block dictionary
// instead of testing them one by one, and the results must not move.
func TestColumnarMatchesRecordStorageProperty(t *testing.T) {
	build := func(seg SegmentFormat) *Engine {
		e := NewEngine(Config{Storage: StorageDFSBinary, Segment: seg, Nodes: 4, BlockSize: 4 << 10, Seed: 9})
		loadClusteredCorpus(t, e, 4000, 8)
		if err := e.Seal(); err != nil {
			t.Fatal(err)
		}
		return e
	}
	spq3 := build(SegmentCompressed)
	spq2 := build(SegmentColumnar)
	spq1 := build(SegmentRecord)
	if f := spq3.Manifest().Format; f != "spq3" {
		t.Fatalf("compressed engine sealed as %q", f)
	}
	if f := spq2.Manifest().Format; f != "spq2" {
		t.Fatalf("columnar engine sealed as %q", f)
	}
	if f := spq1.Manifest().Format; f != "seq" {
		t.Fatalf("record engine sealed as %q", f)
	}

	queries := []Query{
		{K: 5, Radius: 0.03, Keywords: []string{"c2-kw9", "common3"}},
		{K: 10, Radius: 0.1, Keywords: []string{"common1"}},
		{K: 3, Radius: 0.01, Keywords: []string{"c5-kw1"}},
		{K: 7, Radius: 0, Keywords: []string{"common7", "c0-kw3"}},
		{K: 2, Radius: 0.05, Keywords: []string{"zzz-out-of-vocabulary"}},
	}
	for qi, q := range queries {
		for _, alg := range Algorithms() {
			for _, planned := range []bool{false, true} {
				opts := []QueryOption{WithAlgorithm(alg), WithGrid(9), WithoutCache()}
				if planned {
					opts = append(opts, WithAutoPlan())
				}
				want, err := spq1.Query(q, opts...)
				if err != nil {
					t.Fatalf("q%d %v planned=%v spq1: %v", qi, alg, planned, err)
				}
				got2, err := spq2.Query(q, opts...)
				if err != nil {
					t.Fatalf("q%d %v planned=%v spq2: %v", qi, alg, planned, err)
				}
				if !resultsEqual(want, got2) {
					t.Errorf("q%d %v planned=%v: spq2 differs\nspq1: %+v\nspq2: %+v",
						qi, alg, planned, want, got2)
				}
				got3, err := spq3.Query(q, opts...)
				if err != nil {
					t.Fatalf("q%d %v planned=%v spq3: %v", qi, alg, planned, err)
				}
				if !resultsEqual(want, got3) {
					t.Errorf("q%d %v planned=%v: spq3 differs\nspq1: %+v\nspq3: %+v",
						qi, alg, planned, want, got3)
				}
			}
		}
	}
}

// TestColumnarBlockPruningAndCache checks the two things only SPQ2 can do:
// prune inside cells (spq.plan.blocks.pruned > 0 on a selective query) and
// serve repeats from the decoded-segment cache.
func TestColumnarBlockPruningAndCache(t *testing.T) {
	e := NewEngine(Config{Storage: StorageDFSBinary, Nodes: 4, Seed: 7})
	loadClusteredCorpus(t, e, 30000, 8)
	if err := e.Seal(); err != nil {
		t.Fatal(err)
	}

	q := Query{K: 5, Radius: 0.02, Keywords: []string{"c1-kw5"}}
	rep, err := e.QueryReport(q, WithAutoPlan(), WithoutCache())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Plan == nil || rep.Plan.Blocks == 0 {
		t.Fatalf("no block zone maps considered: %+v", rep.Plan)
	}
	if rep.Plan.BlocksPruned == 0 {
		t.Fatalf("selective query pruned no blocks: %+v", rep.Plan)
	}
	if got := rep.Counters["spq.plan.blocks.pruned"]; got != int64(rep.Plan.BlocksPruned) {
		t.Errorf("blocks.pruned counter = %d, Plan says %d", got, rep.Plan.BlocksPruned)
	}
	if got := rep.Counters["spq.plan.blocks.scanned"]; got != int64(rep.Plan.Blocks-rep.Plan.BlocksPruned) {
		t.Errorf("blocks.scanned counter = %d, Plan says %d", got, rep.Plan.Blocks-rep.Plan.BlocksPruned)
	}
	// Block pruning is sharper than cell pruning, and the job itself reads
	// only the selected FEATURE records: the selected data blocks feed the
	// per-grid data view instead of the shuffle, so the map input is a
	// strict subset of the plan's selection.
	read := rep.Counters["map.records.in"]
	if read == 0 || read >= rep.Plan.RecordsSelected {
		t.Errorf("job read %d records, want a non-empty strict subset of the %d selected (features only)",
			read, rep.Plan.RecordsSelected)
	}

	// Repeat: every block the repeat touches — surviving feature blocks
	// through the job, data blocks only if the view were rebuilt — is a
	// segment-cache hit, and nothing is ever decoded twice.
	before := e.SegmentCacheStats()
	if before.Misses == 0 || before.Hits != 0 {
		t.Fatalf("cold segment cache stats: %+v", before)
	}
	rep2, err := e.QueryReport(q, WithAutoPlan(), WithoutCache())
	if err != nil {
		t.Fatal(err)
	}
	if !resultsEqual(rep.Results, rep2.Results) {
		t.Fatal("cached-block repeat changed results")
	}
	after := e.SegmentCacheStats()
	if after.Hits == 0 {
		t.Error("repeat decoded every block again: no segment-cache hits")
	}
	if after.Misses != before.Misses {
		t.Errorf("repeat re-decoded blocks: misses %d -> %d", before.Misses, after.Misses)
	}

	// A compaction bumps the generation: old entries become unreachable.
	if err := e.AddData(DataObject{ID: 1 << 40, X: 0.5, Y: 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.QueryReport(q, WithAutoPlan(), WithoutCache()); err != nil {
		t.Fatal(err)
	}
	final := e.SegmentCacheStats()
	if final.Misses == after.Misses {
		t.Error("post-compaction query served stale-generation blocks")
	}
}

// TestSegmentCacheDisabled: a negative Config.SegmentCache turns the
// decoded-segment cache off without affecting results.
func TestSegmentCacheDisabled(t *testing.T) {
	e := NewEngine(Config{Storage: StorageDFSBinary, SegmentCache: -1})
	loadClusteredCorpus(t, e, 500, 4)
	q := Query{K: 3, Radius: 0.05, Keywords: []string{"common2"}}
	res, err := e.Query(q, WithAutoPlan())
	if err != nil {
		t.Fatal(err)
	}
	if st := e.SegmentCacheStats(); st.Hits != 0 || st.Misses != 0 || st.Entries != 0 {
		t.Fatalf("disabled cache has stats %+v", st)
	}
	ref := NewEngine(Config{Storage: StorageDFSBinary})
	loadClusteredCorpus(t, ref, 500, 4)
	want, err := ref.Query(q, WithAutoPlan())
	if err != nil {
		t.Fatal(err)
	}
	if !resultsEqual(res, want) {
		t.Fatal("cache-disabled engine returned different results")
	}
}
