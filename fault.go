package spq

import (
	"fmt"

	"spq/internal/dfs"
	"spq/internal/mapreduce"
)

// FaultPlan configures deterministic, seeded fault injection on the
// engine's simulated DFS (Config.Faults): transient replica-read errors
// with a fixed probability, persistent bit-flip corruption of chosen
// replicas at write time, and node crash/revive schedules keyed on the
// global block-read count. Every decision is a pure function of the plan's
// seed and the read sequence, so a failure run replays exactly from its
// seed. See the internal/dfs documentation of the fields.
type FaultPlan = dfs.FaultPlan

// CrashEvent schedules one DataNode crash or revival inside a FaultPlan.
type CrashEvent = dfs.CrashEvent

// FaultStats is a snapshot of the DFS's cumulative fault, failover and
// repair activity (see Engine.FaultStats).
type FaultStats = dfs.FaultStats

// RepairStats summarizes one Engine.Repair pass.
type RepairStats = dfs.RepairStats

// Typed failure sentinels. Query errors wrap these, so callers can
// distinguish genuine data loss from an exhausted retry budget with
// errors.Is; a query never silently returns a wrong or partial top-k.
var (
	// ErrDataUnavailable marks reads that found no usable replica of some
	// block: every copy is on a dead node, missing, or quarantined after a
	// checksum mismatch. The error text names the file and the per-cause
	// replica counts.
	ErrDataUnavailable = dfs.ErrNoLiveReplica
	// ErrRetriesExhausted marks task failures that persisted through the
	// full Config.MaxAttempts retry budget.
	ErrRetriesExhausted = mapreduce.ErrTooManyFailures
)

// Fault, retry and repair counters (Report.Counters). The spq.fault.* and
// spq.dfs.repair.* values are per-query deltas of the DFS-wide activity
// that happened while the query ran; they are only present when non-zero.
// The spq.retry.* counters are emitted by the MapReduce layer and count
// this query's own task re-executions and backoff time.
const (
	// CounterFaultTransient counts injected transient replica-read errors.
	CounterFaultTransient = "spq.fault.read.transient"
	// CounterFaultCorrupt counts checksum mismatches detected on read.
	CounterFaultCorrupt = "spq.fault.read.corrupt"
	// CounterFaultQuarantined counts replicas fenced off after a mismatch.
	CounterFaultQuarantined = "spq.fault.replica.quarantined"
	// CounterFaultFailover counts block reads that succeeded only after
	// skipping at least one unusable replica.
	CounterFaultFailover = "spq.fault.read.failover"
	// CounterRepairBlocks counts blocks re-replicated by Repair or read
	// repair; the .added/.dropped pair counts replica copies created and
	// bad copies deleted.
	CounterRepairBlocks          = "spq.dfs.repair.blocks"
	CounterRepairReplicasAdded   = "spq.dfs.repair.replicas.added"
	CounterRepairReplicasDropped = "spq.dfs.repair.replicas.dropped"
	// CounterRetryMap / CounterRetryReduce count task re-executions per
	// phase; CounterRetryBackoffMicros is the total time the phases slept
	// in capped exponential backoff between attempts.
	CounterRetryMap           = "spq.retry.map"
	CounterRetryReduce        = "spq.retry.reduce"
	CounterRetryBackoffMicros = "spq.retry.backoff_us"
)

// NumNodes returns the number of simulated DFS DataNodes.
func (e *Engine) NumNodes() int { return e.fs.NumNodes() }

// KillNode marks DataNode i dead: its block replicas become unreadable
// until ReviveNode. Reads fail over to surviving replicas; Repair
// re-replicates from them. Chaos tests use this to exercise the failure
// paths deterministically.
func (e *Engine) KillNode(i int) error {
	if i < 0 || i >= e.fs.NumNodes() {
		return fmt.Errorf("spq: kill node %d: cluster has %d nodes", i, e.fs.NumNodes())
	}
	e.fs.KillNode(i)
	return nil
}

// ReviveNode marks DataNode i alive again; replicas it held become
// readable (and checksum-verified) once more.
func (e *Engine) ReviveNode(i int) error {
	if i < 0 || i >= e.fs.NumNodes() {
		return fmt.Errorf("spq: revive node %d: cluster has %d nodes", i, e.fs.NumNodes())
	}
	e.fs.ReviveNode(i)
	return nil
}

// Repair runs a DFS repair pass: every block's live replicas are
// checksum-verified, corrupt copies are quarantined and deleted, and
// under-replicated blocks (after node deaths or quarantines) are
// re-replicated from a healthy copy until the replication factor is
// restored on live nodes. Call it after KillNode/ReviveNode churn; reads
// additionally run an inline read repair whenever they detect corruption.
func (e *Engine) Repair() RepairStats { return e.fs.Repair() }

// FaultStats snapshots the cumulative fault, failover and repair activity
// of the engine's DFS since creation. Subtract two snapshots (FaultStats.Sub)
// for a window delta; per-query deltas are also surfaced as spq.fault.* /
// spq.dfs.repair.* counters on each Report.
func (e *Engine) FaultStats() FaultStats { return e.fs.FaultStats() }

// addFaultCounters merges the non-zero fields of a FaultStats delta into a
// report counter map, allocating it when needed.
func addFaultCounters(m map[string]int64, d FaultStats) map[string]int64 {
	add := func(name string, v int64) {
		if v == 0 {
			return
		}
		if m == nil {
			m = make(map[string]int64, 4)
		}
		m[name] += v
	}
	add(CounterFaultTransient, d.TransientReadErrors)
	add(CounterFaultCorrupt, d.CorruptionsDetected)
	add(CounterFaultQuarantined, d.ReplicasQuarantined)
	add(CounterFaultFailover, d.FailoverReads)
	add(CounterRepairBlocks, d.RepairedBlocks)
	add(CounterRepairReplicasAdded, d.RepairReplicasAdded)
	add(CounterRepairReplicasDropped, d.RepairReplicasDropped)
	return m
}
