package spq

import (
	"fmt"
	"strings"
	"testing"
)

// TestLoadLinesLongLine is the regression test for the scanner token cap:
// a feature line whose keyword list exceeds the old hard 1 MiB limit used
// to fail the whole batch with bufio's bare "token too long". Lines up to
// MaxLineBytes must load.
func TestLoadLinesLongLine(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("D\t1\t0.5\t0.5\n")
	sb.WriteString("F\t2\t0.4\t0.6\t")
	// ~2 MiB of distinct keywords on one line (each "kw<nnnnnn>," is ~10
	// bytes), comfortably past the old 1 MiB cap.
	nkw := 250000
	for i := 0; i < nkw; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "kw%06d", i)
	}
	sb.WriteByte('\n')
	if len(sb.String()) < 2<<20 {
		t.Fatalf("test line only %d bytes, want > 2 MiB", sb.Len())
	}

	e := NewEngine(Config{Storage: StorageMemory})
	if err := e.LoadLines(strings.NewReader(sb.String())); err != nil {
		t.Fatalf("LoadLines rejected a %d-byte line: %v", sb.Len(), err)
	}
	nData, nFeats := e.Len()
	if nData != 1 || nFeats != 1 {
		t.Fatalf("loaded %d data / %d features, want 1/1", nData, nFeats)
	}
	// The giant keyword list round-tripped: querying one of its keywords
	// scores the data object.
	res, err := e.Query(Query{K: 1, Radius: 0.5, Keywords: []string{"kw123456"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].ID != 1 {
		t.Fatalf("query over the long-line feature returned %+v", res)
	}
}
