module spq

go 1.23
