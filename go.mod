module spq

go 1.24
