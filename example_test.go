package spq_test

import (
	"fmt"
	"log"

	"spq"
)

// Example reproduces the paper's worked example (Example 1): the best
// hotel with an Italian restaurant within 1.5 distance units.
func Example() {
	eng := spq.NewEngine(spq.Config{})
	eng.AddData(
		spq.DataObject{ID: 1, X: 4.6, Y: 4.8},
		spq.DataObject{ID: 4, X: 1.8, Y: 1.8},
		spq.DataObject{ID: 5, X: 1.9, Y: 9.0},
	)
	eng.AddFeature(
		spq.Feature{ID: 101, X: 2.8, Y: 1.2, Keywords: []string{"italian", "gourmet"}},
		spq.Feature{ID: 104, X: 3.8, Y: 5.5, Keywords: []string{"italian"}},
		spq.Feature{ID: 107, X: 3.0, Y: 8.1, Keywords: []string{"italian", "spaghetti"}},
	)
	results, err := eng.Query(
		spq.Query{K: 3, Radius: 1.5, Keywords: []string{"italian"}},
		spq.WithGrid(4), spq.WithBounds(0, 0, 10, 10),
	)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Printf("p%d: %.2f\n", r.ID, r.Score)
	}
	// Output:
	// p1: 1.00
	// p4: 0.50
	// p5: 0.50
}

// ExampleEngine_QueryReport inspects the execution profile of a query:
// which algorithm ran, and how much work the early-termination mechanism
// saved.
func ExampleEngine_QueryReport() {
	eng := spq.NewEngine(spq.Config{Storage: spq.StorageMemory})
	eng.AddData(spq.DataObject{ID: 1, X: 0.5, Y: 0.5})
	eng.AddFeature(
		spq.Feature{ID: 2, X: 0.52, Y: 0.5, Keywords: []string{"cafe"}},
		spq.Feature{ID: 3, X: 0.48, Y: 0.5, Keywords: []string{"cafe", "wifi"}},
	)
	rep, err := eng.QueryReport(
		spq.Query{K: 1, Radius: 0.1, Keywords: []string{"cafe"}},
		spq.WithAlgorithm(spq.ESPQSco), spq.WithGrid(2),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep.Algorithm, len(rep.Results), rep.Results[0].Score)
	// Output: eSPQsco 1 1
}

// ExampleWithAlgorithm compares the three algorithms of the paper on the
// same query; they always return identical rankings.
func ExampleWithAlgorithm() {
	eng := spq.NewEngine(spq.Config{Storage: spq.StorageMemory})
	eng.AddData(spq.DataObject{ID: 10, X: 1, Y: 1}, spq.DataObject{ID: 20, X: 9, Y: 9})
	eng.AddFeature(
		spq.Feature{ID: 1, X: 1.1, Y: 1, Keywords: []string{"park"}},
		spq.Feature{ID: 2, X: 9.1, Y: 9, Keywords: []string{"park", "lake", "trail"}},
	)
	for _, alg := range spq.Algorithms() {
		res, err := eng.Query(
			spq.Query{K: 1, Radius: 0.5, Keywords: []string{"park"}},
			spq.WithAlgorithm(alg), spq.WithGrid(4),
		)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%v -> object %d (%.2f)\n", alg, res[0].ID, res[0].Score)
	}
	// Output:
	// pSPQ -> object 10 (1.00)
	// eSPQlen -> object 10 (1.00)
	// eSPQsco -> object 10 (1.00)
}

// ExampleQuery_mode shows the influence scoring extension: distance
// discounts the textual score, so a nearby partial match can beat a
// distant perfect one.
func ExampleQuery_mode() {
	eng := spq.NewEngine(spq.Config{Storage: spq.StorageMemory})
	eng.AddData(spq.DataObject{ID: 1, X: 0, Y: 0})
	eng.AddFeature(
		spq.Feature{ID: 2, X: 0.95, Y: 0, Keywords: []string{"sushi"}},          // perfect, far
		spq.Feature{ID: 3, X: 0.05, Y: 0, Keywords: []string{"sushi", "ramen"}}, // half, near
	)
	q := spq.Query{K: 1, Radius: 1, Keywords: []string{"sushi"}, Mode: spq.ScoreInfluence}
	res, err := eng.Query(q, spq.WithAlgorithm(spq.PSPQ), spq.WithGrid(2))
	if err != nil {
		log.Fatal(err)
	}
	// Near half-match: 0.5·2^(−0.05) ≈ 0.483 beats far perfect match
	// 1.0·2^(−0.95) ≈ 0.518: the far perfect match still wins here.
	fmt.Printf("%.3f\n", res[0].Score)
	// Output: 0.518
}
