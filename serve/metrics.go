package serve

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Serving metrics: request outcomes, a fixed-bucket latency histogram for
// tail quantiles, and the aggregated spq.* job counters of every executed
// query. Everything is cheap enough to update on the request path (one
// mutex, no allocation) and is exposed through /metrics (Prometheus-style
// text) and /stats (JSON).

// latencyBounds are the histogram bucket upper bounds in seconds,
// exponential from 100µs to 30s. Quantiles interpolate linearly inside a
// bucket, which is plenty for p50/p95/p99 reporting.
var latencyBounds = []float64{
	0.0001, 0.0002, 0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05,
	0.1, 0.2, 0.5, 1, 2, 5, 10, 30,
}

// Outcome labels of spqd_requests_total.
const (
	outcomeOK       = "ok"
	outcomeInvalid  = "invalid"
	outcomeShed     = "shed"
	outcomeCanceled = "canceled"
	outcomeError    = "error"
)

type metrics struct {
	mu       sync.Mutex
	outcomes map[string]int64
	// buckets[i] counts served requests with latency <= latencyBounds[i];
	// the implicit last bucket is +Inf. sum/count mirror a Prometheus
	// histogram.
	buckets []int64
	sum     float64
	count   int64
	// counters aggregates the spq.* job counters across served queries.
	counters map[string]int64
	// connsShed counts binary connections refused at accept time by the
	// MaxBinaryConns cap.
	connsShed int64
}

func newMetrics() *metrics {
	return &metrics{
		outcomes: make(map[string]int64),
		buckets:  make([]int64, len(latencyBounds)+1),
		counters: make(map[string]int64),
	}
}

// observe records one finished request: its outcome and — for served
// requests — the end-to-end latency and the query's job counters.
func (m *metrics) observe(outcome string, d time.Duration, counters map[string]int64) {
	secs := d.Seconds()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.outcomes[outcome]++
	if outcome == outcomeOK {
		i := sort.SearchFloat64s(latencyBounds, secs)
		m.buckets[i]++
		m.sum += secs
		m.count++
	}
	for k, v := range counters {
		m.counters[k] += v
	}
}

// connShed records one binary connection refused by the connection cap.
func (m *metrics) connShed() {
	m.mu.Lock()
	m.connsShed++
	m.mu.Unlock()
}

// quantile returns the q-quantile (0 < q < 1) of the served-latency
// histogram in seconds, interpolated within its bucket; 0 with no data.
func (m *metrics) quantileLocked(q float64) float64 {
	if m.count == 0 {
		return 0
	}
	rank := q * float64(m.count)
	var cum int64
	for i, c := range m.buckets {
		if c == 0 {
			continue
		}
		if float64(cum+c) >= rank {
			lo := 0.0
			if i > 0 {
				lo = latencyBounds[i-1]
			}
			hi := 2 * lo
			if i < len(latencyBounds) {
				hi = latencyBounds[i]
			}
			frac := (rank - float64(cum)) / float64(c)
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	return latencyBounds[len(latencyBounds)-1]
}

// Stats is the JSON snapshot served by /stats.
type Stats struct {
	Served   int64 `json:"served"`
	Invalid  int64 `json:"invalid"`
	Shed     int64 `json:"shed"`
	Canceled int64 `json:"canceled"`
	Errors   int64 `json:"errors"`
	// P50/P95/P99/Mean are served-request latencies in milliseconds.
	P50Millis  float64 `json:"p50_ms"`
	P95Millis  float64 `json:"p95_ms"`
	P99Millis  float64 `json:"p99_ms"`
	MeanMillis float64 `json:"mean_ms"`
	// Inflight and Queued snapshot the admission gate.
	Inflight int `json:"inflight"`
	Queued   int `json:"queued"`
	// BinaryConns is the number of currently open binary-protocol
	// connections; ConnsShed counts connections refused at accept time by
	// the MaxBinaryConns cap.
	BinaryConns int   `json:"binary_conns"`
	ConnsShed   int64 `json:"conns_shed"`
	// Generation is the engine's current storage generation.
	Generation uint64 `json:"generation"`
	// Counters are the aggregated spq.* job counters of served queries.
	Counters map[string]int64 `json:"counters,omitempty"`
}

// snapshot builds the /stats view.
func (m *metrics) snapshot(withCounters bool) Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Stats{
		Served:    m.outcomes[outcomeOK],
		Invalid:   m.outcomes[outcomeInvalid],
		Shed:      m.outcomes[outcomeShed],
		Canceled:  m.outcomes[outcomeCanceled],
		Errors:    m.outcomes[outcomeError],
		P50Millis: m.quantileLocked(0.50) * 1e3,
		P95Millis: m.quantileLocked(0.95) * 1e3,
		P99Millis: m.quantileLocked(0.99) * 1e3,
		ConnsShed: m.connsShed,
	}
	if m.count > 0 {
		s.MeanMillis = m.sum / float64(m.count) * 1e3
	}
	if withCounters {
		s.Counters = make(map[string]int64, len(m.counters))
		for k, v := range m.counters {
			s.Counters[k] = v
		}
	}
	return s
}

// render writes the Prometheus-style text exposition: request outcomes,
// the latency histogram, gate gauges, and every aggregated spq.* counter
// as spq_counter{name="..."}.
func (m *metrics) render(b *strings.Builder, inflight, queued, conns int, generation uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	outcomes := make([]string, 0, len(m.outcomes))
	for o := range m.outcomes {
		outcomes = append(outcomes, o)
	}
	sort.Strings(outcomes)
	b.WriteString("# TYPE spqd_requests_total counter\n")
	for _, o := range outcomes {
		fmt.Fprintf(b, "spqd_requests_total{outcome=%q} %d\n", o, m.outcomes[o])
	}
	b.WriteString("# TYPE spqd_request_seconds histogram\n")
	var cum int64
	for i, bound := range latencyBounds {
		cum += m.buckets[i]
		fmt.Fprintf(b, "spqd_request_seconds_bucket{le=\"%g\"} %d\n", bound, cum)
	}
	cum += m.buckets[len(latencyBounds)]
	fmt.Fprintf(b, "spqd_request_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(b, "spqd_request_seconds_sum %g\n", m.sum)
	fmt.Fprintf(b, "spqd_request_seconds_count %d\n", m.count)
	fmt.Fprintf(b, "# TYPE spqd_inflight gauge\nspqd_inflight %d\n", inflight)
	fmt.Fprintf(b, "# TYPE spqd_queue_depth gauge\nspqd_queue_depth %d\n", queued)
	fmt.Fprintf(b, "# TYPE spqd_binary_conns gauge\nspqd_binary_conns %d\n", conns)
	fmt.Fprintf(b, "# TYPE spqd_conns_shed_total counter\nspqd_conns_shed_total %d\n", m.connsShed)
	fmt.Fprintf(b, "# TYPE spqd_generation gauge\nspqd_generation %d\n", generation)
	names := make([]string, 0, len(m.counters))
	for k := range m.counters {
		names = append(names, k)
	}
	sort.Strings(names)
	b.WriteString("# TYPE spq_counter counter\n")
	for _, k := range names {
		fmt.Fprintf(b, "spq_counter{name=%q} %d\n", k, m.counters[k])
	}
}
