package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"spq"
	"spq/internal/mapreduce"
)

// exchangeFrame runs one binary-protocol round trip on conn.
func exchangeFrame(t *testing.T, conn net.Conn, req spq.QueryRequest) *spq.QueryResponse {
	t.Helper()
	payload, err := json.Marshal(&req)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(conn, payload); err != nil {
		t.Fatal(err)
	}
	frame, err := readFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	var resp spq.QueryResponse
	if err := json.Unmarshal(frame, &resp); err != nil {
		t.Fatal(err)
	}
	return &resp
}

// Connections beyond MaxBinaryConns are shed at accept time with a typed
// overloaded frame, metered in /stats; closing a connection frees the
// slot.
func TestServerBinaryConnBackpressure(t *testing.T) {
	eng := &fakeEngine{}
	s := New(eng, Config{MaxBinaryConns: 2})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.ServeBinary(l)                 //nolint:errcheck // exits on Drain
	defer s.Drain(context.Background()) //nolint:errcheck // teardown

	dial := func() net.Conn {
		t.Helper()
		conn, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		return conn
	}

	// Two conns fill the cap; a round trip each proves they are admitted.
	c1, c2 := dial(), dial()
	defer c1.Close()
	defer c2.Close()
	for _, c := range []net.Conn{c1, c2} {
		if resp := exchangeFrame(t, c, validReq()); resp.Code != "" {
			t.Fatalf("admitted conn refused: %s (%s)", resp.Error, resp.Code)
		}
	}

	// The third is shed with a typed close: one overloaded frame, then EOF.
	c3 := dial()
	defer c3.Close()
	frame, err := readFrame(c3)
	if err != nil {
		t.Fatalf("shed conn got no shed frame: %v", err)
	}
	var resp spq.QueryResponse
	if err := json.Unmarshal(frame, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Code != spq.CodeOverloaded {
		t.Fatalf("shed frame code %q, want %q", resp.Code, spq.CodeOverloaded)
	}
	if _, err := readFrame(c3); err == nil {
		t.Fatal("shed conn stayed open after the shed frame")
	}

	st := s.Stats()
	if st.ConnsShed != 1 {
		t.Errorf("ConnsShed = %d, want 1", st.ConnsShed)
	}
	if st.BinaryConns != 2 {
		t.Errorf("BinaryConns = %d, want 2", st.BinaryConns)
	}

	// Releasing a slot re-admits new connections.
	c1.Close()
	deadline := time.Now().Add(2 * time.Second)
	for s.binaryConns() >= 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	c4 := dial()
	defer c4.Close()
	if resp := exchangeFrame(t, c4, validReq()); resp.Code != "" {
		t.Fatalf("conn after slot release refused: %s (%s)", resp.Error, resp.Code)
	}
}

// TestServerChurnUnderServing is the membership race test of the serving
// layer: HTTP queries hammer a distributed engine while one of its
// workers is repeatedly drained and rejoined. Every 200 must carry
// results byte-identical to the in-process reference (zero mismatches),
// and afterwards the admission gate must be fully released. Run with
// -race in CI.
func TestServerChurnUnderServing(t *testing.T) {
	base := spq.Config{
		Storage: spq.StorageDFSBinary, Nodes: 4, BlockSize: 8 << 10,
		MapSlots: 4, ReduceSlots: 2, Seed: 42, QueryCache: -1,
	}
	build := func(cfg spq.Config) *spq.Engine {
		t.Helper()
		e := spq.NewEngine(cfg)
		if err := e.LoadSynthetic("clustered", 1000); err != nil {
			t.Fatal(err)
		}
		if err := e.Seal(); err != nil {
			t.Fatal(err)
		}
		return e
	}
	ref := build(base)

	cfg := base
	addrs := make([]string, 2)
	for i := range addrs {
		w, err := mapreduce.StartWorker("127.0.0.1:0", 2)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(w.Stop)
		addrs[i] = w.Addr()
	}
	cfg.Workers = addrs
	eng := build(cfg)
	defer eng.Close()

	queries := engineQueries(t, ref, 6)
	want := make([][]byte, len(queries))
	for i, q := range queries {
		res, err := ref.QueryContext(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		want[i], _ = json.Marshal(res)
	}

	s := New(eng, Config{MaxInflight: 4, MaxQueue: 32})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Churner: drain worker-2, let traffic run on worker-1, rejoin, repeat.
	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := eng.DrainWorker("worker-2"); err != nil {
				t.Errorf("drain: %v", err)
				return
			}
			time.Sleep(2 * time.Millisecond)
			if _, err := eng.AddWorker(addrs[1], "worker-2"); err != nil {
				t.Errorf("rejoin: %v", err)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				qi := (c + i) % len(queries)
				resp, code := postQuery(t, ts.URL, spq.QueryRequest{Query: queries[qi]})
				switch code {
				case http.StatusOK:
					got, _ := json.Marshal(resp.Results)
					if !bytes.Equal(got, want[qi]) {
						t.Errorf("q%d diverged under churn:\n got %s\nwant %s", qi, got, want[qi])
					}
				case http.StatusTooManyRequests:
					// acceptable under load
				default:
					t.Errorf("q%d got %d (%s %s)", qi, code, resp.Code, resp.Error)
				}
			}
		}(c)
	}
	wg.Wait()
	close(stop)
	churn.Wait()

	// No wedged admission slots: the gate must return to fully idle and
	// still admit a fresh request.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		st := s.Stats()
		if st.Inflight == 0 && st.Queued == 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := s.Stats()
	if st.Inflight != 0 || st.Queued != 0 {
		t.Fatalf("gate wedged after churn: inflight=%d queued=%d", st.Inflight, st.Queued)
	}
	if st.Served == 0 {
		t.Fatal("no queries served under churn")
	}
	if st.Errors > 0 {
		t.Fatalf("%d internal errors while serving under churn", st.Errors)
	}
	if resp, code := postQuery(t, ts.URL, spq.QueryRequest{Query: queries[0]}); code != http.StatusOK {
		t.Fatalf("post-churn query got %d (%s %s)", code, resp.Code, resp.Error)
	}
}
