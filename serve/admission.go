package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"spq"
)

// Serving-side admission control. The engine's slot pools (PR 3) already
// arbitrate map/reduce tasks between admitted queries; the serving gate
// sits one layer above and bounds how many queries are admitted at all.
// Beyond MaxInflight concurrent queries, requests wait in a bounded queue;
// beyond the queue bound — or once a queued request's deadline would
// expire before it could run — the request is shed with ErrOverloaded
// instead of queue-collapsing, which is what keeps p99 bounded at 2x
// capacity: the clients that are served see slot-pool latency, the rest
// see a fast 429 they can back off on.

// gate is a counting semaphore of MaxInflight admissions with a bounded
// FIFO-ish waiting room (Go's runtime does not guarantee FIFO wakeup on a
// contended channel, but waiters are bounded and deadline-evicted, which
// is what matters for tail latency).
type gate struct {
	slots    chan struct{}
	maxQueue int

	mu     sync.Mutex
	queued int
}

func newGate(maxInflight, maxQueue int) *gate {
	if maxInflight < 1 {
		maxInflight = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &gate{slots: make(chan struct{}, maxInflight), maxQueue: maxQueue}
}

// enter admits one request, blocking in the waiting room while the gate is
// full. It sheds with ErrOverloaded when the room is full or ctx is done
// first (a queued request whose deadline expired was evicted, not served).
// A nil return means the caller holds an admission and must leave().
func (g *gate) enter(ctx context.Context) error {
	select {
	case g.slots <- struct{}{}:
		return nil
	default:
	}
	g.mu.Lock()
	if g.queued >= g.maxQueue {
		g.mu.Unlock()
		return fmt.Errorf("%w: admission queue full (%d waiting)", spq.ErrOverloaded, g.maxQueue)
	}
	g.queued++
	g.mu.Unlock()
	defer func() {
		g.mu.Lock()
		g.queued--
		g.mu.Unlock()
	}()
	select {
	case g.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		if ctx.Err() == context.DeadlineExceeded {
			// Deadline-based eviction: the request would have timed out
			// inside the engine anyway; shedding it now costs nothing and
			// frees the queue position.
			return fmt.Errorf("%w: deadline expired while queued", spq.ErrOverloaded)
		}
		return fmt.Errorf("%w: %w", spq.ErrCanceled, ctx.Err())
	}
}

// leave returns an admission.
func (g *gate) leave() { <-g.slots }

// inflight returns the number of admitted (running) requests.
func (g *gate) inflight() int { return len(g.slots) }

// queueDepth returns the number of requests in the waiting room.
func (g *gate) queueDepth() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.queued
}

// QuotaConfig bounds per-tenant query admission with a token bucket:
// sustained RatePerSec queries per second per tenant, with bursts up to
// Burst. The zero value disables quotas.
type QuotaConfig struct {
	// RatePerSec is each tenant's sustained admission rate; <= 0 disables
	// quota enforcement entirely.
	RatePerSec float64
	// Burst is the bucket capacity (default: max(RatePerSec, 1)).
	Burst float64
}

// quotaTable holds one token bucket per tenant, refilled lazily on use.
type quotaTable struct {
	rate  float64
	burst float64
	now   func() time.Time // injectable for tests

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newQuotaTable(cfg QuotaConfig) *quotaTable {
	if cfg.RatePerSec <= 0 {
		return nil
	}
	burst := cfg.Burst
	if burst <= 0 {
		burst = max(cfg.RatePerSec, 1)
	}
	return &quotaTable{
		rate:    cfg.RatePerSec,
		burst:   burst,
		now:     time.Now,
		buckets: make(map[string]*bucket),
	}
}

// allow consumes one token from the tenant's bucket, reporting whether it
// had one. Unknown tenants start with a full bucket.
func (t *quotaTable) allow(tenant string) bool {
	if t == nil {
		return true
	}
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	b, ok := t.buckets[tenant]
	if !ok {
		b = &bucket{tokens: t.burst, last: now}
		t.buckets[tenant] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = min(t.burst, b.tokens+dt*t.rate)
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
