package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spq"
)

// ---- admission gate ----

func TestGateShedsWhenQueueFull(t *testing.T) {
	g := newGate(1, 1)
	if err := g.enter(context.Background()); err != nil {
		t.Fatal(err)
	}
	queued := make(chan error, 1)
	go func() { queued <- g.enter(context.Background()) }()
	for i := 0; g.queueDepth() == 0; i++ {
		if i > 1000 {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	// Queue full: the next request is shed immediately.
	if err := g.enter(context.Background()); !errors.Is(err, spq.ErrOverloaded) {
		t.Fatalf("enter with full queue returned %v, want ErrOverloaded", err)
	}
	g.leave()
	if err := <-queued; err != nil {
		t.Fatalf("queued request not admitted after leave: %v", err)
	}
	g.leave()
}

func TestGateDeadlineEviction(t *testing.T) {
	g := newGate(1, 4)
	if err := g.enter(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer g.leave()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	err := g.enter(ctx)
	if !errors.Is(err, spq.ErrOverloaded) {
		t.Fatalf("deadline-evicted enter returned %v, want ErrOverloaded", err)
	}

	cctx, ccancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		ccancel()
	}()
	err = g.enter(cctx)
	if !errors.Is(err, spq.ErrCanceled) {
		t.Fatalf("canceled enter returned %v, want ErrCanceled", err)
	}
	if g.queueDepth() != 0 {
		t.Fatalf("queue depth %d after evictions, want 0", g.queueDepth())
	}
}

// ---- quotas ----

func TestQuotaTable(t *testing.T) {
	qt := newQuotaTable(QuotaConfig{RatePerSec: 1, Burst: 2})
	now := time.Unix(1000, 0)
	qt.now = func() time.Time { return now }

	for i := 0; i < 2; i++ {
		if !qt.allow("a") {
			t.Fatalf("burst request %d denied", i)
		}
	}
	if qt.allow("a") {
		t.Fatal("request beyond burst allowed")
	}
	if !qt.allow("b") {
		t.Fatal("independent tenant denied")
	}
	now = now.Add(1500 * time.Millisecond) // refills 1.5 tokens
	if !qt.allow("a") {
		t.Fatal("request after refill denied")
	}
	if qt.allow("a") {
		t.Fatal("half-refilled bucket allowed a second request")
	}
	var nilTable *quotaTable
	if !nilTable.allow("anyone") {
		t.Fatal("disabled quota table denied a request")
	}
}

// ---- fake engine for deterministic admission tests ----

// fakeEngine is a controllable Engine: each query blocks until release is
// closed (when set), honoring ctx cancellation like the real engine.
type fakeEngine struct {
	release chan struct{}
	queries atomic.Int64
}

func (f *fakeEngine) QueryReportContext(ctx context.Context, q spq.Query, opts ...spq.QueryOption) (*spq.Report, error) {
	f.queries.Add(1)
	if f.release != nil {
		select {
		case <-f.release:
		case <-ctx.Done():
			return nil, fmt.Errorf("%w: %w", spq.ErrCanceled, context.Cause(ctx))
		}
	}
	return &spq.Report{Results: []spq.Result{{ID: 1, Score: 0.5}}}, nil
}

func (f *fakeEngine) Generation() uint64         { return 7 }
func (f *fakeEngine) CacheStats() spq.CacheStats { return spq.CacheStats{} }

func postQuery(t *testing.T, url string, req spq.QueryRequest) (*spq.QueryResponse, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out spq.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return &out, resp.StatusCode
}

func validReq() spq.QueryRequest {
	return spq.QueryRequest{Query: spq.Query{K: 3, Radius: 0.1, Keywords: []string{"pizza"}}}
}

// TestServerShedsAtCapacity: with MaxInflight=1 and MaxQueue=1, a third
// concurrent request is shed with 429 instead of queueing unboundedly, and
// the admitted ones complete once the engine unblocks.
func TestServerShedsAtCapacity(t *testing.T) {
	eng := &fakeEngine{release: make(chan struct{})}
	s := New(eng, Config{MaxInflight: 1, MaxQueue: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	codes := make([]int, 2)
	for i := range codes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, codes[i] = postQuery(t, ts.URL, validReq())
		}(i)
	}
	// Wait until one request is in flight and one is queued.
	for i := 0; s.gate.inflight() != 1 || s.gate.queueDepth() != 1; i++ {
		if i > 5000 {
			t.Fatalf("inflight=%d queued=%d, want 1/1", s.gate.inflight(), s.gate.queueDepth())
		}
		time.Sleep(time.Millisecond)
	}
	resp, code := postQuery(t, ts.URL, validReq())
	if code != http.StatusTooManyRequests {
		t.Fatalf("overflow request got %d, want 429", code)
	}
	if resp.Code != spq.CodeOverloaded {
		t.Fatalf("overflow request code %q, want %q", resp.Code, spq.CodeOverloaded)
	}
	close(eng.release)
	wg.Wait()
	for i, c := range codes {
		if c != http.StatusOK {
			t.Fatalf("admitted request %d got %d, want 200", i, c)
		}
	}
	st := s.Stats()
	if st.Served != 2 || st.Shed != 1 {
		t.Fatalf("stats served=%d shed=%d, want 2/1", st.Served, st.Shed)
	}
}

// TestServerQuota429: a tenant over its quota is shed with 429 while other
// tenants keep being served — and the admission gate is not consumed, so
// the pool cannot be wedged by a quota-abusing tenant.
func TestServerQuota429(t *testing.T) {
	eng := &fakeEngine{}
	s := New(eng, Config{MaxInflight: 4, Quota: QuotaConfig{RatePerSec: 0.001, Burst: 1}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := validReq()
	req.Tenant = "greedy"
	if _, code := postQuery(t, ts.URL, req); code != http.StatusOK {
		t.Fatalf("first request got %d, want 200", code)
	}
	for i := 0; i < 3; i++ {
		resp, code := postQuery(t, ts.URL, req)
		if code != http.StatusTooManyRequests || resp.Code != spq.CodeOverloaded {
			t.Fatalf("over-quota request got %d/%q, want 429/overloaded", code, resp.Code)
		}
	}
	if s.gate.inflight() != 0 || s.gate.queueDepth() != 0 {
		t.Fatalf("quota sheds consumed the gate: inflight=%d queued=%d", s.gate.inflight(), s.gate.queueDepth())
	}
	other := validReq()
	other.Tenant = "patient"
	if _, code := postQuery(t, ts.URL, other); code != http.StatusOK {
		t.Fatalf("other tenant got %d, want 200", code)
	}
}

// TestServerCancellationFreesSlot: a client that disconnects mid-query
// releases its admission slot; the next request is served.
func TestServerCancellationFreesSlot(t *testing.T) {
	eng := &fakeEngine{release: make(chan struct{})}
	s := New(eng, Config{MaxInflight: 1, MaxQueue: 0})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(validReq())
	ctx, cancel := context.WithCancel(context.Background())
	hreq, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := http.DefaultClient.Do(hreq)
		errCh <- err
	}()
	for i := 0; s.gate.inflight() != 1; i++ {
		if i > 5000 {
			t.Fatal("request never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errCh; err == nil {
		t.Fatal("canceled request returned no client error")
	}
	// The slot must come back without the engine ever unblocking release.
	for i := 0; s.gate.inflight() != 0; i++ {
		if i > 5000 {
			t.Fatal("canceled query never released its admission slot")
		}
		time.Sleep(time.Millisecond)
	}
	close(eng.release)
	if _, code := postQuery(t, ts.URL, validReq()); code != http.StatusOK {
		t.Fatalf("request after cancellation got %d, want 200", code)
	}
}

// TestServerErrorMapping checks the HTTP side of the error taxonomy.
func TestServerErrorMapping(t *testing.T) {
	eng := &fakeEngine{}
	s := New(eng, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Invalid query: K <= 0.
	bad := spq.QueryRequest{Query: spq.Query{K: 0, Radius: 0.1, Keywords: []string{"x"}}}
	bad.Algorithm = "nope"
	if resp, code := postQuery(t, ts.URL, bad); code != http.StatusBadRequest || resp.Code != spq.CodeInvalidQuery {
		t.Fatalf("unknown algorithm got %d/%q, want 400/invalid_query", code, resp.Code)
	}

	// Malformed body.
	resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body got %d, want 400", resp.StatusCode)
	}

	// Wrong method.
	resp, err = http.Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /query got %d, want 405", resp.StatusCode)
	}
}

// TestServerDrain: draining flips /healthz, refuses new queries with 503,
// and waits for in-flight queries to finish.
func TestServerDrain(t *testing.T) {
	eng := &fakeEngine{release: make(chan struct{})}
	s := New(eng, Config{MaxInflight: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	inflight := make(chan int, 1)
	go func() {
		_, code := postQuery(t, ts.URL, validReq())
		inflight <- code
	}()
	for i := 0; s.gate.inflight() != 1; i++ {
		if i > 5000 {
			t.Fatal("request never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()
	for i := 0; !s.draining.Load(); i++ {
		if i > 5000 {
			t.Fatal("drain flag never set")
		}
		time.Sleep(time.Millisecond)
	}
	resp, code := postQuery(t, ts.URL, validReq())
	if code != http.StatusServiceUnavailable || resp.Code != spq.CodeClosed {
		t.Fatalf("query during drain got %d/%q, want 503/closed", code, resp.Code)
	}
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain got %d, want 503", hr.StatusCode)
	}
	select {
	case err := <-drained:
		t.Fatalf("drain returned %v before in-flight query finished", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(eng.release)
	if code := <-inflight; code != http.StatusOK {
		t.Fatalf("in-flight query during drain got %d, want 200", code)
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain returned %v", err)
	}
}

// TestDrainDeadline: a drain whose context expires returns the context
// error instead of hanging on a stuck query.
func TestDrainDeadline(t *testing.T) {
	eng := &fakeEngine{release: make(chan struct{})}
	s := New(eng, Config{MaxInflight: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer close(eng.release) // unblock the stuck query before ts.Close waits on it
	go func() {              // stuck on purpose; released by the deferred close
		body, _ := json.Marshal(validReq())
		resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
		if err == nil {
			resp.Body.Close()
		}
	}()
	for i := 0; s.gate.inflight() != 1; i++ {
		if i > 5000 {
			t.Fatal("request never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain returned %v, want DeadlineExceeded", err)
	}
}

// ---- real-engine integration ----

func testEngine(t *testing.T) *spq.Engine {
	t.Helper()
	e := spq.NewEngine(spq.Config{Storage: spq.StorageMemory, Seed: 42})
	if err := e.LoadSynthetic("uniform", 1500); err != nil {
		t.Fatal(err)
	}
	if err := e.Seal(); err != nil {
		t.Fatal(err)
	}
	return e
}

func engineQueries(t *testing.T, e *spq.Engine, n int) []spq.Query {
	t.Helper()
	kws := e.FrequentKeywords(12)
	if len(kws) < 4 {
		t.Fatalf("only %d frequent keywords", len(kws))
	}
	qs := make([]spq.Query, n)
	for i := range qs {
		qs[i] = spq.Query{
			K:        4,
			Radius:   0.05,
			Keywords: []string{kws[i%len(kws)], kws[(i*3+1)%len(kws)]},
		}
	}
	return qs
}

// TestServerBinaryRoundTrip: the binary protocol returns byte-identical
// result payloads to an in-process query.
func TestServerBinaryRoundTrip(t *testing.T) {
	e := testEngine(t)
	defer e.Close()
	s := New(e, Config{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.ServeBinary(l) //nolint:errcheck // exits on Drain

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	for _, q := range engineQueries(t, e, 6) {
		req := spq.QueryRequest{Query: q}
		payload, err := json.Marshal(&req)
		if err != nil {
			t.Fatal(err)
		}
		if err := writeFrame(conn, payload); err != nil {
			t.Fatal(err)
		}
		frame, err := readFrame(conn)
		if err != nil {
			t.Fatal(err)
		}
		var resp spq.QueryResponse
		if err := json.Unmarshal(frame, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Code != "" {
			t.Fatalf("binary query failed: %s (%s)", resp.Error, resp.Code)
		}
		want, err := e.QueryContext(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		wantJSON, _ := json.Marshal(want)
		gotJSON, _ := json.Marshal(resp.Results)
		if !bytes.Equal(wantJSON, gotJSON) {
			t.Fatalf("binary results diverge from in-process:\n got %s\nwant %s", gotJSON, wantJSON)
		}
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestServerConcurrentWithCompact is the race test of the serving layer:
// HTTP queries hammer the server while the engine takes delta appends and
// compacts between generations. Every response must be a 200 with results
// or a taxonomy-coded failure — no torn reads, no wedged gate. Run with
// -race in CI.
func TestServerConcurrentWithCompact(t *testing.T) {
	e := testEngine(t)
	defer e.Close()
	s := New(e, Config{MaxInflight: 4, MaxQueue: 16})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	queries := engineQueries(t, e, 8)

	stop := make(chan struct{})
	var mut sync.WaitGroup
	mut.Add(1)
	go func() {
		defer mut.Done()
		id := uint64(1 << 20)
		for round := 0; ; round++ {
			select {
			case <-stop:
				return
			default:
			}
			id++
			if err := e.AddData(spq.DataObject{ID: id, X: 0.5, Y: 0.5}); err != nil {
				t.Error(err)
				return
			}
			if round%8 == 7 {
				if err := e.Compact(); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				resp, code := postQuery(t, ts.URL, spq.QueryRequest{Query: queries[(w+i)%len(queries)]})
				switch code {
				case http.StatusOK:
					if resp.Generation == 0 {
						t.Errorf("200 response without generation")
					}
				case http.StatusTooManyRequests:
					// acceptable under load
				default:
					t.Errorf("query got %d (%s %s)", code, resp.Code, resp.Error)
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	mut.Wait()

	st := s.Stats()
	if st.Served == 0 {
		t.Fatal("no queries served")
	}
	if st.Errors > 0 {
		t.Fatalf("%d internal errors during concurrent serving", st.Errors)
	}
}

// TestMetricsEndpoints: /metrics renders the Prometheus families and
// /stats the JSON snapshot after traffic.
func TestMetricsEndpoints(t *testing.T) {
	eng := &fakeEngine{}
	s := New(eng, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if _, code := postQuery(t, ts.URL, validReq()); code != http.StatusOK {
		t.Fatalf("query got %d", code)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := new(bytes.Buffer)
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	text := body.String()
	for _, want := range []string{
		`spqd_requests_total{outcome="ok"} 1`,
		"spqd_request_seconds_count 1",
		"spqd_generation 7",
		"spqd_inflight 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q:\n%s", want, text)
		}
	}

	sr, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(sr.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	sr.Body.Close()
	if st.Served != 1 || st.Generation != 7 {
		t.Fatalf("stats served=%d gen=%d, want 1/7", st.Served, st.Generation)
	}
}
