// Package serve wraps an spq engine in a network serving layer with
// tail-latency discipline: an HTTP/JSON front end plus a length-prefixed
// binary endpoint for bench clients, bounded admission with deadline-based
// queue eviction, per-tenant token-bucket quotas with 429 load shedding,
// graceful drain across storage generations, and a /metrics endpoint
// exposing the engine's spq.* counters. cmd/spqd is the daemon binary;
// cmd/spqload is the matching open-loop load harness.
package serve

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"spq"
)

// Engine is the query surface the server needs. *spq.Engine implements it;
// tests substitute wrappers (e.g. a blocking querier) to drive the
// admission machinery deterministically.
type Engine interface {
	QueryReportContext(ctx context.Context, q spq.Query, opts ...spq.QueryOption) (*spq.Report, error)
	Generation() uint64
	CacheStats() spq.CacheStats
}

// Config parameterizes a Server.
type Config struct {
	// MaxInflight bounds concurrently executing queries (default
	// 2×GOMAXPROCS). The engine's slot pools arbitrate map/reduce tasks
	// between them; this bound keeps the pools' queues — and therefore
	// tail latency — short.
	MaxInflight int
	// MaxQueue bounds requests waiting for admission (default
	// 4×MaxInflight). Requests beyond it are shed with 429 immediately:
	// under overload the queue must stay bounded or p99 collapses.
	MaxQueue int
	// DefaultTimeout bounds each request's total time — queueing included
	// — when the request carries no timeout_ms (default 10s; negative
	// disables). A queued request whose deadline expires is evicted and
	// shed rather than admitted to time out inside the engine.
	DefaultTimeout time.Duration
	// Quota configures per-tenant token buckets; the zero value disables
	// quota enforcement.
	Quota QuotaConfig
	// MaxBinaryConns bounds concurrently open binary-protocol connections
	// (default 8×MaxInflight; negative disables the cap). A connection
	// beyond the cap is shed at accept time with a typed overloaded frame
	// and closed — connection-level backpressure, so a client herd cannot
	// pin unbounded goroutines and sockets while the request gate is the
	// actual bottleneck. Shed connections are metered in /stats.
	MaxBinaryConns int
}

func (c Config) withDefaults() Config {
	if c.MaxInflight <= 0 {
		c.MaxInflight = 2 * runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 4 * c.MaxInflight
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
	if c.DefaultTimeout == 0 {
		c.DefaultTimeout = 10 * time.Second
	}
	if c.MaxBinaryConns == 0 {
		c.MaxBinaryConns = 8 * c.MaxInflight
	}
	if c.MaxBinaryConns < 0 {
		c.MaxBinaryConns = 0 // unlimited
	}
	return c
}

// maxFrame bounds one binary-protocol frame (a JSON query request or
// response); larger frames indicate a broken or hostile client.
const maxFrame = 4 << 20

// Server is the serving layer over one engine.
type Server struct {
	eng     Engine
	cfg     Config
	gate    *gate
	quotas  *quotaTable
	metrics *metrics
	mux     *http.ServeMux

	draining atomic.Bool

	// lifeMu guards the in-flight request count against Drain: beginReq's
	// admit-or-refuse decision and Drain's zero-check are atomic with
	// respect to each other, and idle closes exactly once, when draining
	// has started and the count reaches zero.
	lifeMu sync.Mutex
	nreq   int
	idle   chan struct{}

	mu        sync.Mutex
	listeners []net.Listener
	conns     map[net.Conn]struct{}
}

// New builds a server over eng.
func New(eng Engine, cfg Config) *Server {
	s := &Server{
		eng:     eng,
		cfg:     cfg.withDefaults(),
		metrics: newMetrics(),
		conns:   make(map[net.Conn]struct{}),
		idle:    make(chan struct{}),
	}
	s.gate = newGate(s.cfg.MaxInflight, s.cfg.MaxQueue)
	s.quotas = newQuotaTable(s.cfg.Quota)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /query", s.handleQuery)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// Handler returns the HTTP front end: POST /query, GET /metrics, /stats,
// /healthz.
func (s *Server) Handler() http.Handler { return s.mux }

// Stats snapshots the serving metrics.
func (s *Server) Stats() Stats {
	st := s.metrics.snapshot(true)
	st.Inflight = s.gate.inflight()
	st.Queued = s.gate.queueDepth()
	st.BinaryConns = s.binaryConns()
	st.Generation = s.eng.Generation()
	return st
}

// binaryConns returns the number of currently open binary connections.
func (s *Server) binaryConns() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// do runs one query request through quota, admission and the engine,
// returning the wire response and its HTTP status. tenantFallback is used
// when the request body names no tenant (the X-SPQ-Tenant header).
func (s *Server) do(ctx context.Context, req *spq.QueryRequest, tenantFallback string, wantCounters bool) (*spq.QueryResponse, int) {
	start := time.Now()
	if err := s.beginReq(); err != nil {
		return s.fail(start, err)
	}
	defer s.endReq()
	tenant := req.Tenant
	if tenant == "" {
		tenant = tenantFallback
	}
	if !s.quotas.allow(tenant) {
		return s.fail(start, fmt.Errorf("%w: quota exhausted for tenant %q", spq.ErrOverloaded, tenant))
	}
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMillis > 0 {
		timeout = time.Duration(req.TimeoutMillis) * time.Millisecond
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	opts, err := req.Options()
	if err != nil {
		return s.fail(start, err)
	}
	if err := s.gate.enter(ctx); err != nil {
		return s.fail(start, err)
	}
	defer s.gate.leave()
	rep, err := s.eng.QueryReportContext(ctx, req.Query, opts...)
	if err != nil {
		return s.fail(start, err)
	}
	eff := rep.Options()
	resp := &spq.QueryResponse{
		Results:     rep.Results,
		Generation:  s.eng.Generation(),
		TotalMillis: rep.TotalMillis,
		Options:     &eff,
	}
	if resp.Results == nil {
		resp.Results = []spq.Result{}
	}
	if rep.Delta != nil {
		resp.Generation = rep.Delta.Generation
	}
	if wantCounters {
		resp.Counters = rep.Counters
	}
	s.metrics.observe(outcomeOK, time.Since(start), rep.Counters)
	return resp, http.StatusOK
}

// beginReq registers one in-flight request, refusing it once Drain has
// started. endReq must be called iff beginReq returned nil.
func (s *Server) beginReq() error {
	s.lifeMu.Lock()
	defer s.lifeMu.Unlock()
	if s.draining.Load() {
		return fmt.Errorf("%w: server draining", spq.ErrClosed)
	}
	s.nreq++
	return nil
}

func (s *Server) endReq() {
	s.lifeMu.Lock()
	s.nreq--
	if s.nreq == 0 && s.draining.Load() {
		s.closeIdleLocked()
	}
	s.lifeMu.Unlock()
}

// closeIdleLocked closes idle exactly once; callers hold lifeMu.
func (s *Server) closeIdleLocked() {
	select {
	case <-s.idle:
	default:
		close(s.idle)
	}
}

// fail records a failed request and builds its error response.
func (s *Server) fail(start time.Time, err error) (*spq.QueryResponse, int) {
	status := httpStatus(err)
	s.metrics.observe(outcomeFor(err), time.Since(start), nil)
	return &spq.QueryResponse{Error: err.Error(), Code: spq.ErrorCode(err)}, status
}

// statusClientClosed is nginx's convention for "client closed request";
// Go has no named constant for it. A client that canceled rarely sees the
// status, but logs and metrics do.
const statusClientClosed = 499

// httpStatus maps the error taxonomy of the spq package onto HTTP status
// codes, 1:1.
func httpStatus(err error) int {
	switch {
	case errors.Is(err, spq.ErrInvalidQuery):
		return http.StatusBadRequest
	case errors.Is(err, spq.ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, spq.ErrCanceled):
		if errors.Is(err, context.DeadlineExceeded) {
			return http.StatusGatewayTimeout
		}
		return statusClientClosed
	case errors.Is(err, spq.ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// outcomeFor buckets an error for the request-outcome metrics.
func outcomeFor(err error) string {
	switch {
	case errors.Is(err, spq.ErrInvalidQuery):
		return outcomeInvalid
	case errors.Is(err, spq.ErrOverloaded):
		return outcomeShed
	case errors.Is(err, spq.ErrCanceled):
		return outcomeCanceled
	default:
		return outcomeError
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req spq.QueryRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, maxFrame)).Decode(&req); err != nil {
		resp := &spq.QueryResponse{
			Error: fmt.Sprintf("spq: invalid query: malformed request body: %v", err),
			Code:  spq.CodeInvalidQuery,
		}
		s.metrics.observe(outcomeInvalid, 0, nil)
		writeJSON(w, http.StatusBadRequest, resp)
		return
	}
	wantCounters := r.URL.Query().Get("counters") == "1"
	resp, status := s.do(r.Context(), &req, r.Header.Get("X-SPQ-Tenant"), wantCounters)
	writeJSON(w, status, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	s.metrics.render(&b, s.gate.inflight(), s.gate.queueDepth(), s.binaryConns(), s.eng.Generation())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	io.WriteString(w, b.String()) //nolint:errcheck // best-effort response
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	io.WriteString(w, "ok\n") //nolint:errcheck // best-effort response
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // best-effort response
}

// ServeBinary serves the length-prefixed binary protocol on l until the
// listener closes (Drain closes it): each frame is a 4-byte big-endian
// length followed by a JSON spq.QueryRequest, answered by a frame of the
// same shape carrying the spq.QueryResponse. One connection processes
// requests sequentially; bench clients open several. The JSON payloads are
// byte-identical to the HTTP endpoint's, so a client can switch transports
// without re-encoding.
func (s *Server) ServeBinary(l net.Listener) error {
	s.mu.Lock()
	s.listeners = append(s.listeners, l)
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.cfg.MaxBinaryConns > 0 && len(s.conns) >= s.cfg.MaxBinaryConns {
			s.mu.Unlock()
			go s.shedConn(conn)
			continue
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// shedConn refuses a binary connection over the MaxBinaryConns cap: the
// client gets one typed overloaded frame (so it can distinguish
// backpressure from a crash and back off) and the socket closes. Off the
// accept loop so a stalled client write can't block further accepts.
func (s *Server) shedConn(conn net.Conn) {
	defer conn.Close()
	s.metrics.connShed()
	resp := &spq.QueryResponse{
		Error: fmt.Sprintf("%v: binary connection limit (%d) reached", spq.ErrOverloaded, s.cfg.MaxBinaryConns),
		Code:  spq.CodeOverloaded,
	}
	out, err := json.Marshal(resp)
	if err != nil {
		return
	}
	conn.SetWriteDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck // best-effort shed notice
	writeFrame(conn, out)                                  //nolint:errcheck // best-effort shed notice
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		payload, err := readFrame(conn)
		if err != nil {
			return // EOF, torn connection, or oversized frame
		}
		var req spq.QueryRequest
		var resp *spq.QueryResponse
		var status int
		if err := json.Unmarshal(payload, &req); err != nil {
			resp = &spq.QueryResponse{
				Error: fmt.Sprintf("spq: invalid query: malformed frame: %v", err),
				Code:  spq.CodeInvalidQuery,
			}
			s.metrics.observe(outcomeInvalid, 0, nil)
		} else {
			resp, status = s.do(context.Background(), &req, "", false)
			_ = status // the binary protocol carries the code in-band
		}
		out, err := json.Marshal(resp)
		if err != nil {
			return
		}
		if err := writeFrame(conn, out); err != nil {
			return
		}
		if s.draining.Load() {
			return
		}
	}
}

func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxFrame {
		return nil, fmt.Errorf("serve: frame length %d out of range", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

func writeFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// Drain gracefully shuts the serving layer down: new requests are refused
// with 503 (and /healthz flips, so load balancers stop routing here),
// binary listeners stop accepting, in-flight requests — including any
// running across an Engine.Compact generation change — run to completion,
// and idle binary connections are closed. It returns nil once everything
// in flight has finished, or ctx.Err() if the drain deadline expires
// first (in-flight queries then keep running; the caller decides whether
// to Close the engine under them). Drain does not close the engine.
func (s *Server) Drain(ctx context.Context) error {
	s.lifeMu.Lock()
	s.draining.Store(true)
	if s.nreq == 0 {
		s.closeIdleLocked()
	}
	s.lifeMu.Unlock()
	s.mu.Lock()
	for _, l := range s.listeners {
		l.Close() //nolint:errcheck // already-closed listeners are fine
	}
	s.listeners = nil
	s.mu.Unlock()
	select {
	case <-s.idle:
	case <-ctx.Done():
		return ctx.Err()
	}
	// In-flight work is done; disconnect idle binary clients.
	s.mu.Lock()
	for conn := range s.conns {
		conn.Close() //nolint:errcheck // teardown
	}
	s.mu.Unlock()
	return nil
}
