package spq

import (
	"container/list"
	"fmt"
	"maps"
	"math"
	"sort"
	"strings"
	"sync"
)

// Query result cache. A storage generation is immutable once published,
// so a query's report is fully determined by (storage generation,
// canonicalized query, execution options): repeated queries — the common
// case under serving traffic — can skip the MapReduce job entirely.
// Entries are keyed on the generation, which every committed append batch
// and every compaction bumps, so a mutation invalidates every cached
// report without any explicit flush: a query can never be served a report
// computed against an older generation than the snapshot it runs on.

// Per-report cache counters. A report served from the cache carries
// CounterCacheHit = 1 (its other counters and timings are those of the
// original execution); a report that ran carries CounterCacheMiss = 1.
const (
	CounterCacheHit  = "spq.cache.hit"
	CounterCacheMiss = "spq.cache.miss"
)

// DefaultQueryCacheSize is the default capacity (in cached reports) of the
// engine's query cache; see Config.QueryCache.
const DefaultQueryCacheSize = 256

// CacheStats is the cumulative outcome of the engine's query cache.
type CacheStats struct {
	// Hits and Misses count cache lookups since the engine was created.
	// Queries run with WithoutCache never look up and count as neither.
	Hits, Misses int64
	// Entries is the number of reports currently cached.
	Entries int
}

// queryCache is a mutex-guarded LRU over canonical query keys. Lookups and
// insertions are O(1); the cache stores canonical reports and hands out
// defensive copies, so callers may freely mutate what they receive.
type queryCache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used
	entries map[string]*list.Element
	hits    int64
	misses  int64
}

type cacheEntry struct {
	key string
	rep *Report
}

func newQueryCache(capacity int) *queryCache {
	return &queryCache{
		cap:     capacity,
		ll:      list.New(),
		entries: make(map[string]*list.Element, capacity),
	}
}

// get returns a copy of the cached report for key, marked as a hit.
func (c *queryCache) get(key string) (*Report, bool) {
	c.mu.Lock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		c.mu.Unlock()
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	rep := el.Value.(*cacheEntry).rep
	c.mu.Unlock()
	out := copyReport(rep)
	if out.Counters == nil {
		out.Counters = make(map[string]int64, 1)
	}
	out.Counters[CounterCacheHit] = 1
	return out, true
}

// put stores a copy of the report under key, evicting the least recently
// used entry when full. Concurrent executions of the same query may both
// put; the last one wins, which is harmless because their reports carry
// identical results.
func (c *queryCache) put(key string, rep *Report) {
	stored := copyReport(rep)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).rep = stored
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, rep: stored})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// stats snapshots the cumulative hit/miss counts and current size.
func (c *queryCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Entries: c.ll.Len()}
}

// copyReport deep-copies the parts of a report a caller could mutate.
func copyReport(r *Report) *Report {
	cp := *r
	if r.Results != nil {
		cp.Results = append([]Result(nil), r.Results...)
	}
	if r.Counters != nil {
		cp.Counters = maps.Clone(r.Counters)
	}
	if r.Plan != nil {
		p := *r.Plan
		cp.Plan = &p
	}
	if r.Delta != nil {
		d := *r.Delta
		cp.Delta = &d
	}
	return &cp
}

// cacheKey canonicalizes one query execution. Everything that can change
// the report given a fixed storage generation participates: the query
// itself (keywords sorted and de-duplicated, radius by exact bit pattern),
// the algorithm, and every execution option that alters the job or the
// plan — including WithoutDelta, since base-only and base+delta reads of
// the same generation may differ. The generation prefixes the key, so
// appends and compactions invalidate by construction.
func cacheKey(gen uint64, q Query, cfg *queryConfig) string {
	var b strings.Builder
	fmt.Fprintf(&b, "g%d|a%d|k%d|r%x|m%d|G%d|R%d|S%d|P%t|D%t|",
		gen, cfg.alg, q.K, math.Float64bits(q.Radius), q.Mode,
		cfg.gridN, cfg.reducers, cfg.spillEvery, cfg.autoPlan, cfg.noDelta)
	if cfg.bounds != nil {
		fmt.Fprintf(&b, "B%x,%x,%x,%x|",
			math.Float64bits(cfg.bounds.MinX), math.Float64bits(cfg.bounds.MinY),
			math.Float64bits(cfg.bounds.MaxX), math.Float64bits(cfg.bounds.MaxY))
	}
	kws := append([]string(nil), q.Keywords...)
	sort.Strings(kws)
	for i, kw := range kws {
		if i > 0 && kw == kws[i-1] {
			continue // duplicates don't change the keyword set
		}
		// Length-prefixed: a bare separator would let distinct sets like
		// {"a\x00b"} and {"a","b"} collide on one key and serve the wrong
		// cached report.
		fmt.Fprintf(&b, "%d:%s", len(kw), kw)
	}
	return b.String()
}
