package spq

// Benchmarks regenerating the paper's evaluation (Section 7). Each
// BenchmarkFig* runs the corresponding figure panel of the experiment
// harness at a reduced scale suitable for `go test -bench`; the full-scale
// sweeps (with the paper's exact parameter grids) are produced by
// `go run ./cmd/spqbench`.
//
// BenchmarkAblation* cover the design choices called out in DESIGN.md:
// Map-side keyword pruning and the spill-to-disk external sort.

import (
	"testing"

	"spq/internal/bench"
	"spq/internal/core"
	"spq/internal/data"
	"spq/internal/mapreduce"
)

// benchHarnessCfg keeps -bench runs quick while preserving enough density
// for early termination to engage.
var benchHarnessCfg = bench.Config{
	SizeReal:      20000,
	SizeSynthetic: 20000,
	ScaleUnit:     50,
	Quick:         true,
}

func benchFigure(b *testing.B, id string) {
	h := bench.New(benchHarnessCfg)
	// Warm the dataset cache so generation cost is excluded.
	if _, err := h.Run(id); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Run(id); err != nil {
			b.Fatal(err)
		}
	}
}

// Figure 5: Flickr surrogate.
func BenchmarkFig5aGridSize(b *testing.B) { benchFigure(b, "5a") }
func BenchmarkFig5bKeywords(b *testing.B) { benchFigure(b, "5b") }
func BenchmarkFig5cRadius(b *testing.B)   { benchFigure(b, "5c") }
func BenchmarkFig5dTopK(b *testing.B)     { benchFigure(b, "5d") }

// Figure 6: Twitter surrogate.
func BenchmarkFig6aGridSize(b *testing.B) { benchFigure(b, "6a") }
func BenchmarkFig6bKeywords(b *testing.B) { benchFigure(b, "6b") }
func BenchmarkFig6cRadius(b *testing.B)   { benchFigure(b, "6c") }
func BenchmarkFig6dTopK(b *testing.B)     { benchFigure(b, "6d") }

// Figure 7: Uniform.
func BenchmarkFig7aGridSize(b *testing.B) { benchFigure(b, "7a") }
func BenchmarkFig7bKeywords(b *testing.B) { benchFigure(b, "7b") }
func BenchmarkFig7cRadius(b *testing.B)   { benchFigure(b, "7c") }
func BenchmarkFig7dTopK(b *testing.B)     { benchFigure(b, "7d") }

// Figure 8: scalability with dataset size.
func BenchmarkFig8Scalability(b *testing.B) { benchFigure(b, "8") }

// Figure 9: Clustered (pSPQ omitted, as in the paper).
func BenchmarkFig9aGridSize(b *testing.B) { benchFigure(b, "9a") }
func BenchmarkFig9bKeywords(b *testing.B) { benchFigure(b, "9b") }
func BenchmarkFig9cRadius(b *testing.B)   { benchFigure(b, "9c") }
func BenchmarkFig9dTopK(b *testing.B)     { benchFigure(b, "9d") }

// Section 6.2: duplication factor, measured vs model.
func BenchmarkDuplicationFactor(b *testing.B) { benchFigure(b, "df") }

// benchWorkload builds one in-memory workload shared by the per-algorithm
// and ablation benchmarks.
func benchWorkload() (*data.Dataset, core.Query) {
	ds := data.Generate(data.UniformSpec(20000))
	q := core.Query{
		K:        10,
		Radius:   0.10 / 8, // 10% of the cell edge of an 8x8 grid
		Keywords: ds.RandomQueryKeywords(3, 42),
	}
	return ds, q
}

func benchAlgorithm(b *testing.B, alg core.Algorithm, opts core.Options) {
	ds, q := benchWorkload()
	cluster := mapreduce.NewCluster(nil, 4, 4)
	opts.Cluster = cluster
	opts.Bounds = ds.Bounds()
	if opts.GridN == 0 {
		opts.GridN = 8
	}
	src := mapreduce.NewMemorySource(ds.Objects(), 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(alg, src, q, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// Per-algorithm benchmarks on the same dense workload: the ordering
// eSPQsco < eSPQlen < pSPQ is the paper's headline result.
func BenchmarkAlgorithmPSPQ(b *testing.B)    { benchAlgorithm(b, core.PSPQ, core.Options{}) }
func BenchmarkAlgorithmESPQLen(b *testing.B) { benchAlgorithm(b, core.ESPQLen, core.Options{}) }
func BenchmarkAlgorithmESPQSco(b *testing.B) { benchAlgorithm(b, core.ESPQSco, core.Options{}) }

// Ablation: pSPQ with the Map-side keyword prune disabled — every feature
// object is shuffled and examined, quantifying the value of Algorithm 1
// line 9.
func BenchmarkAblationNoPrune(b *testing.B) {
	benchAlgorithm(b, core.PSPQ, core.Options{DisableKeywordPrune: true})
}

// Ablation: spill-to-disk external sort versus the default in-memory
// shuffle, on eSPQsco.
func BenchmarkAblationSpill(b *testing.B) {
	benchAlgorithm(b, core.ESPQSco, core.Options{SpillEvery: 4096})
}

// Ablation: grid resolution — the Section 6.3 trade-off between
// duplication (coarse grids) and parallelism (fine grids).
func BenchmarkAblationGrid4(b *testing.B)  { benchAlgorithm(b, core.ESPQSco, core.Options{GridN: 4}) }
func BenchmarkAblationGrid16(b *testing.B) { benchAlgorithm(b, core.ESPQSco, core.Options{GridN: 16}) }
func BenchmarkAblationGrid32(b *testing.B) { benchAlgorithm(b, core.ESPQSco, core.Options{GridN: 32}) }

// End-to-end benchmark through the public API and the DFS storage path,
// including input splits, locality scheduling and line parsing.
func BenchmarkPublicAPIQueryDFS(b *testing.B) {
	e := NewEngine(Config{Seed: 1})
	if err := e.LoadSynthetic("uniform", 20000); err != nil {
		b.Fatal(err)
	}
	kws := e.FrequentKeywords(3)
	if err := e.Seal(); err != nil {
		b.Fatal(err)
	}
	q := Query{K: 10, Radius: 0.01, Keywords: kws}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Query(q, WithGrid(8)); err != nil {
			b.Fatal(err)
		}
	}
}

// Centralized baselines vs the distributed algorithms on the same
// workload: at laptop scale the centralized plans win (no shuffle); the
// paper's point is that they stop being an option at cluster scale.
func BenchmarkCentralizedNaive(b *testing.B) {
	ds, q := benchWorkload()
	objs := ds.Objects()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.NaiveCentralized(objs, q)
	}
}

func BenchmarkCentralizedGrid(b *testing.B) {
	ds, q := benchWorkload()
	objs := ds.Objects()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.GridCentralized(objs, q, ds.Bounds(), 32)
	}
}

func BenchmarkCentralizedRTree(b *testing.B) {
	ds, q := benchWorkload()
	objs := ds.Objects()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.RTreeCentralized(objs, q)
	}
}

func BenchmarkCentralizedInvertedIndex(b *testing.B) {
	ds, q := benchWorkload()
	objs := ds.Objects()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.InvertedIndexCentralized(objs, q)
	}
}

// Scoring-mode extensions under the default algorithm configuration.
func BenchmarkModeInfluenceESPQSco(b *testing.B) {
	ds, q := benchWorkload()
	q.Mode = core.ScoreInfluence
	cluster := mapreduce.NewCluster(nil, 4, 4)
	src := mapreduce.NewMemorySource(ds.Objects(), 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(core.ESPQSco, src, q, core.Options{
			Cluster: cluster, Bounds: ds.Bounds(), GridN: 8,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkModeNearestPSPQ(b *testing.B) {
	ds, q := benchWorkload()
	q.Mode = core.ScoreNearest
	cluster := mapreduce.NewCluster(nil, 4, 4)
	src := mapreduce.NewMemorySource(ds.Objects(), 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(core.PSPQ, src, q, core.Options{
			Cluster: cluster, Bounds: ds.Bounds(), GridN: 8,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: cost-based (LPT) reducer balancing vs round-robin on skewed
// data with few reducers — the §7.2.4 scenario.
func benchBalance(b *testing.B, balance bool) {
	ds := data.Generate(data.ClusteredSpec(20000))
	q := core.Query{K: 10, Radius: 0.10 / 8, Keywords: ds.RandomQueryKeywords(3, 42)}
	cluster := mapreduce.NewCluster(nil, 4, 4)
	src := mapreduce.NewMemorySource(ds.Objects(), 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(core.ESPQSco, src, q, core.Options{
			Cluster: cluster, Bounds: ds.Bounds(), GridN: 8,
			NumReducers: 4, LoadBalance: balance,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationRoundRobinReducers(b *testing.B) { benchBalance(b, false) }
func BenchmarkAblationBalancedReducers(b *testing.B)   { benchBalance(b, true) }
