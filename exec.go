package spq

import (
	"spq/internal/dfs"
	"spq/internal/mapreduce"
)

// Distributed-execution counters (Report.Counters). They are emitted by
// the RPC executor when the engine runs with Config.Workers, and they are
// only present when non-zero — an in-process engine's reports never carry
// them. Per-worker task counts appear under CounterExecTasksPrefix + the
// worker name ("worker-1", "worker-2", ... in attachment order).
const (
	// CounterExecTasksPrefix prefixes the per-worker count of tasks that
	// completed successfully on that worker.
	CounterExecTasksPrefix = mapreduce.CounterExecTasksPrefix
	// CounterExecReexec counts task attempts re-dispatched to a different
	// worker after their primary worker was lost mid-job.
	CounterExecReexec = mapreduce.CounterExecReexec
	// CounterExecRPCBytes meters the payload bytes remote tasks moved
	// across the master boundary: input fetches, shuffle writes and reads,
	// and dictionary pulls.
	CounterExecRPCBytes = mapreduce.CounterExecRPCBytes
	// CounterExecWorkersLost counts worker-loss transitions observed while
	// the query's job ran (a heartbeat or call failure, or an injected
	// FaultPlan.WorkerKills event).
	CounterExecWorkersLost = mapreduce.CounterExecWorkersLost
	// CounterExecFallbackLocal counts jobs a distributed engine ran
	// in-process anyway because they were not remotable (in-memory
	// sources, fault-injected lanes, or a job without a wire form).
	CounterExecFallbackLocal = mapreduce.CounterExecFallbackLocal
)

// WorkerKillEvent schedules the loss of one named worker inside a
// FaultPlan: the master severs the worker's connection right before its
// AfterTasks-th task dispatch, so in-flight and subsequent calls to it
// fail exactly like a machine loss and the executor re-routes the work.
// The DFS itself ignores these events; they are interpreted by the
// execution layer.
type WorkerKillEvent = dfs.WorkerKillEvent
