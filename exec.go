package spq

import (
	"spq/internal/dfs"
	"spq/internal/mapreduce"
)

// Distributed-execution counters (Report.Counters). They are emitted by
// the RPC executor when the engine runs with Config.Workers, and they are
// only present when non-zero — an in-process engine's reports never carry
// them. Per-worker task counts appear under CounterExecTasksPrefix + the
// worker name ("worker-1", "worker-2", ... in attachment order).
const (
	// CounterExecTasksPrefix prefixes the per-worker count of tasks that
	// completed successfully on that worker.
	CounterExecTasksPrefix = mapreduce.CounterExecTasksPrefix
	// CounterExecReexec counts task attempts re-dispatched to a different
	// worker after their primary worker was lost mid-job.
	CounterExecReexec = mapreduce.CounterExecReexec
	// CounterExecRPCBytes meters the payload bytes remote tasks moved
	// across the master boundary: input fetches, shuffle writes and reads,
	// and dictionary pulls.
	CounterExecRPCBytes = mapreduce.CounterExecRPCBytes
	// CounterExecWorkersLost counts worker-loss transitions observed while
	// the query's job ran (a heartbeat or call failure, or an injected
	// FaultPlan.WorkerKills event).
	CounterExecWorkersLost = mapreduce.CounterExecWorkersLost
	// CounterExecFallbackLocal counts jobs a distributed engine ran
	// in-process anyway because they were not remotable (in-memory
	// sources, fault-injected lanes, or a job without a wire form).
	CounterExecFallbackLocal = mapreduce.CounterExecFallbackLocal
)

// Speculative-execution and membership counters. Like the rest of the
// spq.exec.* family they only appear on reports produced by a distributed
// engine, and only when non-zero.
const (
	// CounterExecSpecLaunched counts speculative backup attempts launched
	// against suspected straggler tasks (runtime exceeded the configured
	// multiple of the phase's median task duration).
	CounterExecSpecLaunched = mapreduce.CounterExecSpecLaunched
	// CounterExecSpecWon counts backups that finished before their primary;
	// the backup's result was used and the primary was canceled.
	CounterExecSpecWon = mapreduce.CounterExecSpecWon
	// CounterExecSpecWasted counts backups overtaken by their primary; the
	// backup was canceled and its work discarded.
	CounterExecSpecWasted = mapreduce.CounterExecSpecWasted
	// CounterExecWorkersQuarantined counts workers removed from dispatch
	// after consecutive per-call timeouts — slow-loss, a subset of
	// CounterExecWorkersLost distinct from heartbeat/transport death.
	CounterExecWorkersQuarantined = mapreduce.CounterExecWorkersQuarantined
	// CounterExecWorkersJoined counts workers that joined the engine while
	// the query's job was dispatching (FaultPlan.WorkerJoins or a live
	// Engine.AddWorker/worker Join).
	CounterExecWorkersJoined = mapreduce.CounterExecWorkersJoined
	// CounterExecWorkersDrained counts workers gracefully drained while the
	// query's job was dispatching.
	CounterExecWorkersDrained = mapreduce.CounterExecWorkersDrained
)

// SpeculationConfig tunes straggler detection for distributed engines; see
// Config.Speculation. The zero value of each field selects a default
// (multiple 3, minimum 3 completed samples, 25ms delay floor).
type SpeculationConfig = mapreduce.SpeculationConfig

// WorkerKillEvent schedules the loss of one named worker inside a
// FaultPlan: the master severs the worker's connection right before its
// AfterTasks-th task dispatch, so in-flight and subsequent calls to it
// fail exactly like a machine loss and the executor re-routes the work.
// The DFS itself ignores these events; they are interpreted by the
// execution layer.
type WorkerKillEvent = dfs.WorkerKillEvent

// WorkerJoinEvent schedules a worker joining the engine mid-run: right
// before the plan's AfterTasks-th task dispatch (counted across all
// workers), the executor attaches the worker at Addr under Name and new
// phases pick up its lanes. Interpreted by the execution layer.
type WorkerJoinEvent = dfs.WorkerJoinEvent

// WorkerDrainEvent schedules a graceful drain of one named worker: the
// worker stops receiving new tasks immediately, finishes its in-flight
// attempts, and detaches. Interpreted by the execution layer.
type WorkerDrainEvent = dfs.WorkerDrainEvent

// WorkerSlowdownEvent makes one named worker a straggler: every task
// dispatch to it after the AfterTasks-th stalls for Delay before the call
// is issued, tripping speculative execution without killing the worker.
// Interpreted by the execution layer.
type WorkerSlowdownEvent = dfs.WorkerSlowdownEvent
