package spq

import (
	"fmt"
	"testing"

	"spq/internal/mapreduce"
)

// The distributed tests run the engine against real worker RPC servers on
// loopback TCP: every job is shipped as a task-descriptor stream exactly
// as it would be to worker processes on other machines.

// distWorkers starts n loopback worker nodes and returns their addresses.
func distWorkers(t *testing.T, n, slots int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		w, err := mapreduce.StartWorker("127.0.0.1:0", slots)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(w.Stop)
		addrs[i] = w.Addr()
	}
	return addrs
}

// distEngine builds a sealed engine over the clustered synthetic dataset.
func distEngine(t *testing.T, cfg Config, size int) *Engine {
	t.Helper()
	e := NewEngine(cfg)
	if err := e.LoadSynthetic("clustered", size); err != nil {
		t.Fatal(err)
	}
	if err := e.Seal(); err != nil {
		t.Fatal(err)
	}
	if len(cfg.Workers) > 0 {
		t.Cleanup(func() { e.Close() })
	}
	return e
}

// distQueries builds a small mix of distinct queries over the reference
// engine's most frequent keywords.
func distQueries(kws []string, n int) []Query {
	qs := make([]Query, n)
	for i := range qs {
		qs[i] = Query{
			K:        8,
			Radius:   0.03,
			Keywords: []string{kws[i%len(kws)], kws[(i+3)%len(kws)]},
		}
	}
	return qs
}

// Conformance: for every storage format, every algorithm, and 1/2/4
// workers, a distributed engine must return results byte-identical to the
// in-process reference — and must actually ship the jobs rather than fall
// back to local execution.
func TestDistributedConformance(t *testing.T) {
	storages := []struct {
		name string
		cfg  Config
	}{
		{"text", Config{Storage: StorageDFS}},
		{"binary", Config{Storage: StorageDFSBinary, Segment: SegmentRecord}},
		{"columnar", Config{Storage: StorageDFSBinary}},
	}
	algs := []struct {
		name string
		alg  Algorithm
	}{{"pspq", PSPQ}, {"espq-len", ESPQLen}, {"espq-sco", ESPQSco}}
	workerCounts := []int{1, 2, 4}
	if testing.Short() {
		workerCounts = []int{2}
	}
	const size = 1200

	for _, st := range storages {
		t.Run(st.name, func(t *testing.T) {
			base := st.cfg
			base.Nodes = 4
			base.BlockSize = 8 << 10
			base.MapSlots, base.ReduceSlots = 4, 2
			ref := distEngine(t, base, size)
			kws := ref.FrequentKeywords(16)
			if len(kws) < 4 {
				t.Fatalf("only %d frequent keywords", len(kws))
			}
			queries := distQueries(kws, 6)

			var want [][]Result
			for _, a := range algs {
				for qi, q := range queries {
					res, err := ref.Query(q, WithAlgorithm(a.alg))
					if err != nil {
						t.Fatalf("reference %s q%d: %v", a.name, qi, err)
					}
					want = append(want, res)
				}
			}

			for _, wc := range workerCounts {
				t.Run(fmt.Sprintf("workers-%d", wc), func(t *testing.T) {
					cfg := base
					cfg.Workers = distWorkers(t, wc, 2)
					eng := distEngine(t, cfg, size)
					if !eng.Distributed() || len(eng.Workers()) != wc {
						t.Fatalf("Distributed()=%v Workers()=%v, want %d workers",
							eng.Distributed(), eng.Workers(), wc)
					}
					i := 0
					for _, a := range algs {
						for qi, q := range queries {
							rep, err := eng.QueryReport(q, WithAlgorithm(a.alg), WithoutCache())
							if err != nil {
								t.Fatalf("%s q%d: %v", a.name, qi, err)
							}
							if d := diffResults(rep.Results, want[i]); d != "" {
								t.Errorf("%s q%d with %d workers: %s", a.name, qi, wc, d)
							}
							if rep.Counters[CounterExecFallbackLocal] != 0 {
								t.Errorf("%s q%d fell back to local execution", a.name, qi)
							}
							tasks := int64(0)
							for _, w := range eng.Workers() {
								tasks += rep.Counters[CounterExecTasksPrefix+w]
							}
							if tasks == 0 {
								t.Errorf("%s q%d: no per-worker task counters", a.name, qi)
							}
							i++
						}
					}
				})
			}
		})
	}
}

// A planned (WithAutoPlan) columnar query must ship its pruned block
// selection and still match the in-process planner exactly.
func TestDistributedAutoPlan(t *testing.T) {
	base := Config{Storage: StorageDFSBinary, Nodes: 4, BlockSize: 8 << 10, MapSlots: 4, ReduceSlots: 2}
	ref := distEngine(t, base, 1500)
	kws := ref.FrequentKeywords(8)
	cfg := base
	cfg.Workers = distWorkers(t, 2, 2)
	eng := distEngine(t, cfg, 1500)

	for qi, q := range distQueries(kws, 4) {
		want, err := ref.Query(q, WithAutoPlan())
		if err != nil {
			t.Fatal(err)
		}
		rep, err := eng.QueryReport(q, WithAutoPlan(), WithoutCache())
		if err != nil {
			t.Fatal(err)
		}
		if d := diffResults(rep.Results, want); d != "" {
			t.Errorf("planned q%d: %s", qi, d)
		}
		if rep.Counters[CounterExecFallbackLocal] != 0 && rep.Plan != nil {
			t.Errorf("planned q%d fell back to local execution", qi)
		}
	}
}

// A distributed engine whose sources cannot serialize (in-memory storage)
// must transparently run jobs in-process, metered as local fallbacks, with
// identical results.
func TestDistributedMemoryFallback(t *testing.T) {
	base := Config{Storage: StorageMemory, MapSlots: 4, ReduceSlots: 2}
	ref := distEngine(t, base, 800)
	kws := ref.FrequentKeywords(8)
	cfg := base
	cfg.Workers = distWorkers(t, 2, 2)
	eng := distEngine(t, cfg, 800)

	q := distQueries(kws, 1)[0]
	want, err := ref.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.QueryReport(q)
	if err != nil {
		t.Fatal(err)
	}
	if d := diffResults(rep.Results, want); d != "" {
		t.Errorf("memory-storage distributed query: %s", d)
	}
	if rep.Counters[CounterExecFallbackLocal] == 0 {
		t.Error("memory-source job not metered as a local fallback")
	}
}

// Unreachable workers must surface as a query error, not a hang or a
// silent local run.
func TestDistributedAttachError(t *testing.T) {
	eng := NewEngine(Config{Storage: StorageDFS, Workers: []string{"127.0.0.1:1"}})
	if err := eng.LoadSynthetic("uniform", 100); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Query(Query{K: 1, Radius: 0.1, Keywords: []string{"k"}}); err == nil {
		t.Fatal("query succeeded with unreachable workers")
	}
}

// Worker-kill chaos: losing workers mid-workload (seeded fault plan) must
// not change any result — lost tasks are re-executed on survivors and the
// losses and re-executions are metered.
func TestDistributedWorkerKill(t *testing.T) {
	for _, seed := range chaosSeeds(t) {
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			base := Config{
				Storage: StorageDFSBinary, Nodes: 4, BlockSize: 8 << 10,
				MapSlots: 4, ReduceSlots: 2,
				QueryCache:  -1,
				MaxAttempts: 5,
			}
			ref := distEngine(t, base, 1200)
			kws := ref.FrequentKeywords(16)
			queries := distQueries(kws, 6)

			cfg := base
			cfg.Workers = distWorkers(t, 3, 2)
			// The seed shifts when each worker dies; every schedule must
			// yield identical results.
			cfg.Faults = &FaultPlan{
				Seed: seed,
				WorkerKills: []WorkerKillEvent{
					{Worker: "worker-1", AfterTasks: 1 + int(seed%4)},
					{Worker: "worker-2", AfterTasks: 4 + int(seed%7)},
				},
			}
			eng := distEngine(t, cfg, 1200)

			var reexec, lost int64
			for qi, q := range queries {
				want, err := ref.Query(q, WithoutCache())
				if err != nil {
					t.Fatal(err)
				}
				rep, err := eng.QueryReport(q, WithoutCache())
				if err != nil {
					t.Fatalf("q%d under worker kills: %v", qi, err)
				}
				if d := diffResults(rep.Results, want); d != "" {
					t.Errorf("q%d under worker kills: %s", qi, d)
				}
				reexec += rep.Counters[CounterExecReexec]
				lost += rep.Counters[CounterExecWorkersLost]
			}
			if lost == 0 {
				t.Error("no worker losses metered despite a kill plan")
			}
			if reexec == 0 {
				t.Error("no re-executions metered despite losing workers mid-workload")
			}
		})
	}
}
