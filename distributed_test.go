package spq

import (
	"fmt"
	"testing"
	"time"

	"spq/internal/mapreduce"
)

// The distributed tests run the engine against real worker RPC servers on
// loopback TCP: every job is shipped as a task-descriptor stream exactly
// as it would be to worker processes on other machines.

// distWorkers starts n loopback worker nodes and returns their addresses.
func distWorkers(t *testing.T, n, slots int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		w, err := mapreduce.StartWorker("127.0.0.1:0", slots)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(w.Stop)
		addrs[i] = w.Addr()
	}
	return addrs
}

// distEngine builds a sealed engine over the clustered synthetic dataset.
func distEngine(t *testing.T, cfg Config, size int) *Engine {
	t.Helper()
	e := NewEngine(cfg)
	if err := e.LoadSynthetic("clustered", size); err != nil {
		t.Fatal(err)
	}
	if err := e.Seal(); err != nil {
		t.Fatal(err)
	}
	if len(cfg.Workers) > 0 {
		t.Cleanup(func() { e.Close() })
	}
	return e
}

// distQueries builds a small mix of distinct queries over the reference
// engine's most frequent keywords.
func distQueries(kws []string, n int) []Query {
	qs := make([]Query, n)
	for i := range qs {
		qs[i] = Query{
			K:        8,
			Radius:   0.03,
			Keywords: []string{kws[i%len(kws)], kws[(i+3)%len(kws)]},
		}
	}
	return qs
}

// Conformance: for every storage format, every algorithm, and 1/2/4
// workers, a distributed engine must return results byte-identical to the
// in-process reference — and must actually ship the jobs rather than fall
// back to local execution.
func TestDistributedConformance(t *testing.T) {
	storages := []struct {
		name string
		cfg  Config
	}{
		{"text", Config{Storage: StorageDFS}},
		{"binary", Config{Storage: StorageDFSBinary, Segment: SegmentRecord}},
		{"columnar", Config{Storage: StorageDFSBinary}},
	}
	algs := []struct {
		name string
		alg  Algorithm
	}{{"pspq", PSPQ}, {"espq-len", ESPQLen}, {"espq-sco", ESPQSco}}
	workerCounts := []int{1, 2, 4}
	if testing.Short() {
		workerCounts = []int{2}
	}
	const size = 1200

	for _, st := range storages {
		t.Run(st.name, func(t *testing.T) {
			base := st.cfg
			base.Nodes = 4
			base.BlockSize = 8 << 10
			base.MapSlots, base.ReduceSlots = 4, 2
			ref := distEngine(t, base, size)
			kws := ref.FrequentKeywords(16)
			if len(kws) < 4 {
				t.Fatalf("only %d frequent keywords", len(kws))
			}
			queries := distQueries(kws, 6)

			var want [][]Result
			for _, a := range algs {
				for qi, q := range queries {
					res, err := ref.Query(q, WithAlgorithm(a.alg))
					if err != nil {
						t.Fatalf("reference %s q%d: %v", a.name, qi, err)
					}
					want = append(want, res)
				}
			}

			for _, wc := range workerCounts {
				t.Run(fmt.Sprintf("workers-%d", wc), func(t *testing.T) {
					cfg := base
					cfg.Workers = distWorkers(t, wc, 2)
					eng := distEngine(t, cfg, size)
					if !eng.Distributed() || len(eng.Workers()) != wc {
						t.Fatalf("Distributed()=%v Workers()=%v, want %d workers",
							eng.Distributed(), eng.Workers(), wc)
					}
					i := 0
					for _, a := range algs {
						for qi, q := range queries {
							rep, err := eng.QueryReport(q, WithAlgorithm(a.alg), WithoutCache())
							if err != nil {
								t.Fatalf("%s q%d: %v", a.name, qi, err)
							}
							if d := diffResults(rep.Results, want[i]); d != "" {
								t.Errorf("%s q%d with %d workers: %s", a.name, qi, wc, d)
							}
							if rep.Counters[CounterExecFallbackLocal] != 0 {
								t.Errorf("%s q%d fell back to local execution", a.name, qi)
							}
							tasks := int64(0)
							for _, w := range eng.Workers() {
								tasks += rep.Counters[CounterExecTasksPrefix+w]
							}
							if tasks == 0 {
								t.Errorf("%s q%d: no per-worker task counters", a.name, qi)
							}
							i++
						}
					}
				})
			}
		})
	}
}

// A planned (WithAutoPlan) columnar query must ship its pruned block
// selection and still match the in-process planner exactly.
func TestDistributedAutoPlan(t *testing.T) {
	base := Config{Storage: StorageDFSBinary, Nodes: 4, BlockSize: 8 << 10, MapSlots: 4, ReduceSlots: 2}
	ref := distEngine(t, base, 1500)
	kws := ref.FrequentKeywords(8)
	cfg := base
	cfg.Workers = distWorkers(t, 2, 2)
	eng := distEngine(t, cfg, 1500)

	for qi, q := range distQueries(kws, 4) {
		want, err := ref.Query(q, WithAutoPlan())
		if err != nil {
			t.Fatal(err)
		}
		rep, err := eng.QueryReport(q, WithAutoPlan(), WithoutCache())
		if err != nil {
			t.Fatal(err)
		}
		if d := diffResults(rep.Results, want); d != "" {
			t.Errorf("planned q%d: %s", qi, d)
		}
		if rep.Counters[CounterExecFallbackLocal] != 0 && rep.Plan != nil {
			t.Errorf("planned q%d fell back to local execution", qi)
		}
	}
}

// A distributed engine whose sources cannot serialize (in-memory storage)
// must transparently run jobs in-process, metered as local fallbacks, with
// identical results.
func TestDistributedMemoryFallback(t *testing.T) {
	base := Config{Storage: StorageMemory, MapSlots: 4, ReduceSlots: 2}
	ref := distEngine(t, base, 800)
	kws := ref.FrequentKeywords(8)
	cfg := base
	cfg.Workers = distWorkers(t, 2, 2)
	eng := distEngine(t, cfg, 800)

	q := distQueries(kws, 1)[0]
	want, err := ref.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.QueryReport(q)
	if err != nil {
		t.Fatal(err)
	}
	if d := diffResults(rep.Results, want); d != "" {
		t.Errorf("memory-storage distributed query: %s", d)
	}
	if rep.Counters[CounterExecFallbackLocal] == 0 {
		t.Error("memory-source job not metered as a local fallback")
	}
}

// Unreachable workers must surface as a query error, not a hang or a
// silent local run.
func TestDistributedAttachError(t *testing.T) {
	eng := NewEngine(Config{Storage: StorageDFS, Workers: []string{"127.0.0.1:1"}})
	if err := eng.LoadSynthetic("uniform", 100); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Query(Query{K: 1, Radius: 0.1, Keywords: []string{"k"}}); err == nil {
		t.Fatal("query succeeded with unreachable workers")
	}
}

// Distributed columnar queries must account the workers' segment reads:
// the spq.seg.bytes.{read,decoded} totals include the per-worker deltas
// that rode the task results home, and the per-worker breakdown
// (suffixed counters) attributes them.
func TestDistributedSegCounters(t *testing.T) {
	base := Config{Storage: StorageDFSBinary, Nodes: 4, BlockSize: 8 << 10, MapSlots: 4, ReduceSlots: 2, QueryCache: -1}
	ref := distEngine(t, base, 1200)
	kws := ref.FrequentKeywords(8)
	cfg := base
	cfg.Workers = distWorkers(t, 2, 2)
	eng := distEngine(t, cfg, 1200)

	q := distQueries(kws, 1)[0]
	rep, err := eng.QueryReport(q, WithoutCache())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Counters[CounterExecFallbackLocal] != 0 {
		t.Fatal("columnar query fell back to local execution")
	}
	if rep.Counters[CounterSegBytesRead] == 0 || rep.Counters[CounterSegBytesDecoded] == 0 {
		t.Fatalf("distributed columnar query lost its segment I/O counters: read=%d decoded=%d",
			rep.Counters[CounterSegBytesRead], rep.Counters[CounterSegBytesDecoded])
	}
	var workerRead, workerDecoded int64
	for _, w := range eng.Workers() {
		workerRead += rep.Counters[CounterSegBytesRead+"."+w]
		workerDecoded += rep.Counters[CounterSegBytesDecoded+"."+w]
	}
	if workerRead == 0 || workerDecoded == 0 {
		t.Errorf("no per-worker segment I/O attribution: read=%d decoded=%d", workerRead, workerDecoded)
	}
	if workerRead > rep.Counters[CounterSegBytesRead] || workerDecoded > rep.Counters[CounterSegBytesDecoded] {
		t.Errorf("per-worker segment I/O (%d/%d) exceeds the query totals (%d/%d)",
			workerRead, workerDecoded, rep.Counters[CounterSegBytesRead], rep.Counters[CounterSegBytesDecoded])
	}
}

// Full-churn chaos property: under a seeded schedule of kills, joins,
// graceful drains and straggler slowdowns that always leaves at least one
// live worker, every algorithm × storage format must return results
// byte-identical to the undisturbed in-process reference. The slowdown
// must trip speculative execution (spec.won > 0), the scheduled join and
// drain must be metered, and a worker added mid-engine through the public
// API must be observed executing tasks via its per-worker attribution
// counter.
func TestDistributedChurn(t *testing.T) {
	storages := []struct {
		name string
		cfg  Config
	}{
		{"text", Config{Storage: StorageDFS}},
		{"binary", Config{Storage: StorageDFSBinary, Segment: SegmentRecord}},
		{"columnar", Config{Storage: StorageDFSBinary}},
	}
	algs := []struct {
		name string
		alg  Algorithm
	}{{"pspq", PSPQ}, {"espq-len", ESPQLen}, {"espq-sco", ESPQSco}}
	const size = 1200

	for _, st := range storages {
		t.Run(st.name, func(t *testing.T) {
			base := st.cfg
			base.Nodes = 4
			base.BlockSize = 8 << 10
			base.MapSlots, base.ReduceSlots = 4, 2
			base.QueryCache = -1
			base.MaxAttempts = 5
			ref := distEngine(t, base, size)
			kws := ref.FrequentKeywords(16)
			queries := distQueries(kws, 4)

			var want [][]Result
			for _, a := range algs {
				for _, q := range queries {
					res, err := ref.Query(q, WithAlgorithm(a.alg))
					if err != nil {
						t.Fatal(err)
					}
					want = append(want, res)
				}
			}

			for _, seed := range chaosSeeds(t) {
				t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
					// The joiner process is up before the engine exists; the
					// churn schedule attaches it mid-run.
					joiner, err := mapreduce.StartWorker("127.0.0.1:0", 2)
					if err != nil {
						t.Fatal(err)
					}
					t.Cleanup(joiner.Stop)

					cfg := base
					cfg.Workers = distWorkers(t, 3, 2)
					cfg.Speculation = &SpeculationConfig{
						Multiple: 2, MinTasks: 2, MinDelay: 5 * time.Millisecond,
					}
					// worker-3 straggles but stays alive (speculation must
					// win, not rerouting); worker-1 dies; worker-2 drains
					// gracefully; the joiner arrives in between. At least
					// worker-3 and the joiner always survive.
					cfg.Faults = &FaultPlan{
						Seed: seed,
						WorkerKills: []WorkerKillEvent{
							{Worker: "worker-1", AfterTasks: 3 + int(seed%5)},
						},
						WorkerJoins: []WorkerJoinEvent{
							{Addr: joiner.Addr(), Name: "joiner", AfterTasks: 2 + int(seed%3)},
						},
						WorkerDrains: []WorkerDrainEvent{
							{Worker: "worker-2", AfterTasks: 8 + int(seed%6)},
						},
						WorkerSlowdowns: []WorkerSlowdownEvent{
							{Worker: "worker-3", AfterTasks: 1, Delay: 100 * time.Millisecond},
						},
					}
					eng := distEngine(t, cfg, size)

					churn := make(map[string]int64)
					i := 0
					for _, a := range algs {
						for qi, q := range queries {
							rep, err := eng.QueryReport(q, WithAlgorithm(a.alg), WithoutCache())
							if err != nil {
								t.Fatalf("%s q%d under churn: %v", a.name, qi, err)
							}
							if d := diffResults(rep.Results, want[i]); d != "" {
								t.Errorf("%s q%d under churn: %s", a.name, qi, d)
							}
							for k, v := range rep.Counters {
								churn[k] += v
							}
							i++
						}
					}
					if churn[CounterExecWorkersJoined] == 0 {
						t.Error("scheduled join not metered")
					}
					if churn[CounterExecWorkersDrained] == 0 {
						t.Error("scheduled drain not metered")
					}
					if churn[CounterExecWorkersLost] == 0 {
						t.Error("scheduled kill not metered as a loss")
					}
					if churn[CounterExecSpecLaunched] == 0 {
						t.Error("straggling worker launched no speculative backups")
					}
					if churn[CounterExecSpecWon] == 0 {
						t.Error("no speculative backup won against a 100ms straggler")
					}
					if churn[CounterExecTasksPrefix+"joiner"] == 0 {
						t.Error("chaos-joined worker executed no tasks")
					}

					// Mid-engine membership through the public API: a fresh
					// worker added now must serve the next query.
					late, err := mapreduce.StartWorker("127.0.0.1:0", 2)
					if err != nil {
						t.Fatal(err)
					}
					t.Cleanup(late.Stop)
					name, err := eng.AddWorker(late.Addr(), "late")
					if err != nil {
						t.Fatal(err)
					}
					rep, err := eng.QueryReport(queries[0], WithAlgorithm(algs[0].alg), WithoutCache())
					if err != nil {
						t.Fatal(err)
					}
					if d := diffResults(rep.Results, want[0]); d != "" {
						t.Errorf("post-AddWorker query: %s", d)
					}
					if rep.Counters[CounterExecTasksPrefix+name] == 0 {
						t.Errorf("worker %q added mid-engine executed no tasks", name)
					}
				})
			}
		})
	}
}

// Worker-kill chaos: losing workers mid-workload (seeded fault plan) must
// not change any result — lost tasks are re-executed on survivors and the
// losses and re-executions are metered.
func TestDistributedWorkerKill(t *testing.T) {
	for _, seed := range chaosSeeds(t) {
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			base := Config{
				Storage: StorageDFSBinary, Nodes: 4, BlockSize: 8 << 10,
				MapSlots: 4, ReduceSlots: 2,
				QueryCache:  -1,
				MaxAttempts: 5,
			}
			ref := distEngine(t, base, 1200)
			kws := ref.FrequentKeywords(16)
			queries := distQueries(kws, 6)

			cfg := base
			cfg.Workers = distWorkers(t, 3, 2)
			// The seed shifts when each worker dies; every schedule must
			// yield identical results.
			cfg.Faults = &FaultPlan{
				Seed: seed,
				WorkerKills: []WorkerKillEvent{
					{Worker: "worker-1", AfterTasks: 1 + int(seed%4)},
					{Worker: "worker-2", AfterTasks: 4 + int(seed%7)},
				},
			}
			eng := distEngine(t, cfg, 1200)

			var reexec, lost int64
			for qi, q := range queries {
				want, err := ref.Query(q, WithoutCache())
				if err != nil {
					t.Fatal(err)
				}
				rep, err := eng.QueryReport(q, WithoutCache())
				if err != nil {
					t.Fatalf("q%d under worker kills: %v", qi, err)
				}
				if d := diffResults(rep.Results, want); d != "" {
					t.Errorf("q%d under worker kills: %s", qi, d)
				}
				reexec += rep.Counters[CounterExecReexec]
				lost += rep.Counters[CounterExecWorkersLost]
			}
			if lost == 0 {
				t.Error("no worker losses metered despite a kill plan")
			}
			if reexec == 0 {
				t.Error("no re-executions metered despite losing workers mid-workload")
			}
		})
	}
}
