package spq

import (
	"context"
	"errors"
	"fmt"
)

// Typed query-error taxonomy. Every error returned by QueryContext /
// QueryReportContext wraps exactly one of these sentinels (or one of the
// failure sentinels in fault.go — ErrDataUnavailable, ErrRetriesExhausted),
// so callers branch with errors.Is instead of string matching. The serve
// package maps them 1:1 onto HTTP status codes:
//
//	ErrInvalidQuery      → 400 Bad Request
//	ErrOverloaded        → 429 Too Many Requests
//	ErrCanceled          → 499 (client closed) or 504 (deadline)
//	ErrClosed            → 503 Service Unavailable
//	ErrDataUnavailable,
//	ErrRetriesExhausted  → 500 Internal Server Error
var (
	// ErrInvalidQuery marks a query rejected at the API boundary before any
	// execution: K <= 0, no keywords, a non-finite radius, or an invalid
	// execution option. The error text names the offending field.
	ErrInvalidQuery = errors.New("spq: invalid query")
	// ErrOverloaded marks a query shed by admission control: the serving
	// queue was full, the request's deadline would expire while queued, or
	// its tenant exhausted its quota. The work was never started; retrying
	// after backoff is safe.
	ErrOverloaded = errors.New("spq: overloaded")
	// ErrCanceled marks a query abandoned through its context — canceled by
	// the caller or past its deadline. The underlying map/reduce tasks stop
	// promptly and their admission slots are released. The context's own
	// error (context.Canceled or context.DeadlineExceeded) is wrapped too,
	// so errors.Is distinguishes the two causes.
	ErrCanceled = errors.New("spq: query canceled")
	// ErrClosed marks a query submitted after Engine.Close.
	ErrClosed = errors.New("spq: engine closed")
)

// canceledErr wraps a context's termination as the taxonomy's ErrCanceled
// while preserving the context error for errors.Is(err, context.Canceled)
// / context.DeadlineExceeded checks.
func canceledErr(ctx context.Context) error {
	return fmt.Errorf("%w: %w", ErrCanceled, context.Cause(ctx))
}
