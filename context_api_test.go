package spq

// Tests for the context-aware query API: QueryContext cancellation, the
// error taxonomy at the engine boundary, idempotent Close, the
// WithCache/WithDelta option redesign, and Report.Options introspection.

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func contextTestEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e := NewEngine(cfg)
	if err := e.LoadSynthetic("uniform", 1200); err != nil {
		t.Fatal(err)
	}
	if err := e.Seal(); err != nil {
		t.Fatal(err)
	}
	return e
}

func contextTestQuery(t *testing.T, e *Engine) Query {
	t.Helper()
	kws := e.FrequentKeywords(4)
	if len(kws) < 2 {
		t.Fatalf("only %d frequent keywords", len(kws))
	}
	return Query{K: 5, Radius: 0.05, Keywords: kws[:2]}
}

// TestQueryContextPreCanceled: an already-canceled context fails fast with
// ErrCanceled (carrying the context cause), before any job runs.
func TestQueryContextPreCanceled(t *testing.T) {
	e := contextTestEngine(t, Config{Storage: StorageMemory, Seed: 3})
	defer e.Close()
	q := contextTestQuery(t, e)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.QueryContext(ctx, q)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("pre-canceled QueryContext returned %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not carry context.Canceled", err)
	}

	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Minute))
	defer dcancel()
	_, err = e.QueryContext(dctx, q)
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired-deadline QueryContext returned %v, want ErrCanceled+DeadlineExceeded", err)
	}

	// The engine still serves after canceled queries.
	if _, err := e.Query(q); err != nil {
		t.Fatalf("engine broken after canceled queries: %v", err)
	}
}

// TestQueryContextCancelMidFlight: canceling while queries run never
// wedges the engine — every admission slot the canceled queries held is
// released and a full round of follow-up queries completes. (The
// counter-verified "no further task starts" assertion lives at the
// mapreduce layer in TestRunContextCancelStopsTaskStarts.)
func TestQueryContextCancelMidFlight(t *testing.T) {
	e := contextTestEngine(t, Config{Storage: StorageMemory, Seed: 5, MapSlots: 2, ReduceSlots: 2, QueryCache: -1})
	defer e.Close()
	q := contextTestQuery(t, e)

	const rounds = 6
	for i := 0; i < rounds; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() {
			_, err := e.QueryContext(ctx, q)
			done <- err
		}()
		time.Sleep(time.Duration(i) * 2 * time.Millisecond) // vary the cancel point
		cancel()
		err := <-done
		if err != nil && !errors.Is(err, ErrCanceled) {
			t.Fatalf("round %d: QueryContext returned %v, want nil or ErrCanceled", i, err)
		}
	}
	// All slots must be back: concurrent queries at full width succeed.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := e.QueryContext(context.Background(), q); err != nil {
				t.Errorf("post-cancel query failed: %v", err)
			}
		}()
	}
	wg.Wait()
}

// TestCloseIdempotent: Close twice is fine, Close during in-flight queries
// drains them, and queries after Close fail with ErrClosed.
func TestCloseIdempotent(t *testing.T) {
	e := contextTestEngine(t, Config{Storage: StorageMemory, Seed: 7})
	q := contextTestQuery(t, e)

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Started before Close: must either complete or—if it lost the
			// race to beginQuery—fail with ErrClosed. Never a torn state.
			if _, err := e.Query(q); err != nil && !errors.Is(err, ErrClosed) {
				t.Errorf("in-flight query during Close: %v", err)
			}
		}()
	}
	var closeWg sync.WaitGroup
	for i := 0; i < 2; i++ {
		closeWg.Add(1)
		go func() {
			defer closeWg.Done()
			if err := e.Close(); err != nil {
				t.Errorf("Close: %v", err)
			}
		}()
	}
	closeWg.Wait()
	wg.Wait()

	if err := e.Close(); err != nil {
		t.Fatalf("repeated Close returned %v", err)
	}
	_, err := e.QueryContext(context.Background(), q)
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("query after Close returned %v, want ErrClosed", err)
	}
}

// TestInvalidQueryTaxonomy: boundary validation wraps ErrInvalidQuery and
// names the offending field.
func TestInvalidQueryTaxonomy(t *testing.T) {
	e := contextTestEngine(t, Config{Storage: StorageMemory, Seed: 9})
	defer e.Close()

	cases := []struct {
		name  string
		q     Query
		field string
	}{
		{"zero k", Query{K: 0, Radius: 0.1, Keywords: []string{"x"}}, "K"},
		{"negative k", Query{K: -2, Radius: 0.1, Keywords: []string{"x"}}, "K"},
		{"negative radius", Query{K: 1, Radius: -1, Keywords: []string{"x"}}, "Radius"},
		{"no keywords", Query{K: 1, Radius: 0.1}, "Keywords"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := e.Query(tc.q)
			if !errors.Is(err, ErrInvalidQuery) {
				t.Fatalf("got %v, want ErrInvalidQuery", err)
			}
			if !strings.Contains(err.Error(), tc.field) {
				t.Errorf("error %q does not name field %s", err, tc.field)
			}
			if ErrorCode(err) != CodeInvalidQuery {
				t.Errorf("ErrorCode(%v) = %q", err, ErrorCode(err))
			}
		})
	}
}

// TestWithCacheDeltaRedesign: the boolean options are equivalent to the
// deprecated WithoutCache/WithoutDelta, and Report.Options reflects what
// actually applied.
func TestWithCacheDeltaRedesign(t *testing.T) {
	e := contextTestEngine(t, Config{Storage: StorageMemory, Seed: 11})
	defer e.Close()
	q := contextTestQuery(t, e)

	base, err := e.QueryReport(q, WithoutCache())
	if err != nil {
		t.Fatal(err)
	}
	viaBool, err := e.QueryReport(q, WithCache(false))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base.Results, viaBool.Results) {
		t.Fatal("WithCache(false) results differ from WithoutCache()")
	}
	if opt := viaBool.Options(); opt.Cache {
		t.Fatal("WithCache(false) report claims cache participation")
	}
	if opt := base.Options(); opt.Cache {
		t.Fatal("WithoutCache() report claims cache participation")
	}

	delta1, err := e.QueryReport(q, WithoutDelta(), WithoutCache())
	if err != nil {
		t.Fatal(err)
	}
	delta2, err := e.QueryReport(q, WithDelta(false), WithCache(false))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(delta1.Results, delta2.Results) {
		t.Fatal("WithDelta(false) results differ from WithoutDelta()")
	}
	if opt := delta2.Options(); opt.Delta {
		t.Fatal("WithDelta(false) report claims delta visibility")
	}

	// Defaults: cache and delta participate.
	rep, err := e.QueryReport(q)
	if err != nil {
		t.Fatal(err)
	}
	if opt := rep.Options(); !opt.Cache || !opt.Delta {
		t.Fatalf("default options = %+v, want cache and delta on", opt)
	}
}

// TestReportOptionsIntrospection: Options echoes the resolved settings,
// including on cache hits.
func TestReportOptionsIntrospection(t *testing.T) {
	e := contextTestEngine(t, Config{Storage: StorageMemory, Seed: 13})
	defer e.Close()
	q := contextTestQuery(t, e)

	rep, err := e.QueryReport(q, WithAlgorithm(ESPQLen), WithAutoPlan(), WithReducers(3))
	if err != nil {
		t.Fatal(err)
	}
	opt := rep.Options()
	if opt.Algorithm != ESPQLen || !opt.AutoPlan || opt.Reducers != 3 {
		t.Fatalf("options = %+v, want eSPQlen/autoplan/3 reducers", opt)
	}

	// Same query again: a cache hit must carry the same effective options.
	hit, err := e.QueryReport(q, WithAlgorithm(ESPQLen), WithAutoPlan(), WithReducers(3))
	if err != nil {
		t.Fatal(err)
	}
	if got := hit.Options(); got != opt {
		t.Fatalf("cache-hit options %+v != original %+v", got, opt)
	}
	if e.CacheStats().Hits == 0 {
		t.Fatal("second identical query did not hit the cache")
	}

	// An engine with the cache disabled reports Cache=false even by default.
	ne := contextTestEngine(t, Config{Storage: StorageMemory, Seed: 13, QueryCache: -1})
	defer ne.Close()
	rep2, err := ne.QueryReport(contextTestQuery(t, ne))
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Options().Cache {
		t.Fatal("cache-disabled engine reports cache participation")
	}
}
