package spq

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"spq/internal/data"
)

// MaxLineBytes is the longest input line LoadLines accepts, in bytes. A
// feature line's length is dominated by its keyword list, which real
// corpora can grow to megabytes (a heavily-tagged object serializes every
// tag on one line); the previous hard 1 MiB scanner cap silently failed
// the whole batch with an unhelpful "token too long". The cap exists only
// to bound memory against pathological input — a missing newline in a
// multi-gigabyte file — and a line exceeding it fails the load with an
// error naming the limit.
const MaxLineBytes = 64 << 20

// LoadLines reads objects in the library's text format, one per line:
//
//	D <id> <x> <y>                 — data object (tab-separated)
//	F <id> <x> <y> <kw1,kw2,...>   — feature object
//
// This is the same format cmd/spqgen emits and the engine's DFS stores.
// Lines may be up to MaxLineBytes long.
//
// Records are validated as they stream in — finite coordinates, unique
// ids per dataset (see AddData) — and a bad record fails the load with an
// error naming the line and the offending object. The whole batch is
// buffered and committed only after the last line validates, so a failed
// call leaves the engine unchanged. On a sealed engine the batch appends
// into the in-memory delta and becomes visible to queries atomically when
// the call returns (see AddData).
func (e *Engine) LoadLines(r io.Reader) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	sc := bufio.NewScanner(r)
	// Start small and let the scanner grow up to the documented cap: most
	// lines are tens of bytes, and pre-allocating the worst case per load
	// call would cost 64 MiB on every tiny batch.
	sc.Buffer(make([]byte, 0, 64<<10), MaxLineBytes)
	var objs []data.Object
	// Per-batch duplicate tracking, one namespace per dataset (see
	// AddData): nothing is loaded until every line has validated.
	seen := map[data.Kind]map[uint64]struct{}{
		data.DataObject:    make(map[uint64]struct{}),
		data.FeatureObject: make(map[uint64]struct{}),
	}
	n := 0
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		n++
		o, err := data.ParseLine(line, e.dict)
		if err != nil {
			return fmt.Errorf("spq: line %d: %w", n, err)
		}
		if err := e.checkLocked(o.Kind, o.ID, o.Loc.X, o.Loc.Y, seen[o.Kind]); err != nil {
			return fmt.Errorf("spq: line %d: %w", n, err)
		}
		objs = append(objs, o)
	}
	if err := sc.Err(); err != nil {
		if err == bufio.ErrTooLong {
			return fmt.Errorf("spq: line %d: longer than MaxLineBytes (%d): %w", n+1, MaxLineBytes, err)
		}
		return err
	}
	for _, o := range objs {
		e.addLocked(o)
	}
	return e.commitLocked()
}

// LoadFile reads a text-format object file from the local file system.
func (e *Engine) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("spq: %w", err)
	}
	defer f.Close()
	if err := e.LoadLines(bufio.NewReader(f)); err != nil {
		return fmt.Errorf("spq: %s: %w", path, err)
	}
	return nil
}
