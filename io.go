package spq

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"spq/internal/data"
)

// LoadLines reads objects in the library's text format, one per line:
//
//	D <id> <x> <y>                 — data object (tab-separated)
//	F <id> <x> <y> <kw1,kw2,...>   — feature object
//
// This is the same format cmd/spqgen emits and the engine's DFS stores.
//
// Records are validated as they stream in — finite coordinates, unique
// ids per dataset (see AddData) — and a bad record fails the load with an
// error naming the line and the offending object. The whole batch is
// buffered and committed only after the last line validates, so a failed
// call leaves the engine unchanged. On a sealed engine the batch appends
// into the in-memory delta and becomes visible to queries atomically when
// the call returns (see AddData).
func (e *Engine) LoadLines(r io.Reader) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	var objs []data.Object
	// Per-batch duplicate tracking, one namespace per dataset (see
	// AddData): nothing is loaded until every line has validated.
	seen := map[data.Kind]map[uint64]struct{}{
		data.DataObject:    make(map[uint64]struct{}),
		data.FeatureObject: make(map[uint64]struct{}),
	}
	n := 0
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		n++
		o, err := data.ParseLine(line, e.dict)
		if err != nil {
			return fmt.Errorf("spq: line %d: %w", n, err)
		}
		if err := e.checkLocked(o.Kind, o.ID, o.Loc.X, o.Loc.Y, seen[o.Kind]); err != nil {
			return fmt.Errorf("spq: line %d: %w", n, err)
		}
		objs = append(objs, o)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for _, o := range objs {
		e.addLocked(o)
	}
	return e.commitLocked()
}

// LoadFile reads a text-format object file from the local file system.
func (e *Engine) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("spq: %w", err)
	}
	defer f.Close()
	if err := e.LoadLines(bufio.NewReader(f)); err != nil {
		return fmt.Errorf("spq: %s: %w", path, err)
	}
	return nil
}
