package spq

import (
	"fmt"
	"sync"

	"spq/internal/core"
	"spq/internal/data"
	"spq/internal/dfs"
	"spq/internal/geo"
	"spq/internal/mapreduce"
	"spq/internal/text"
)

// Storage selects where the engine keeps its datasets.
type Storage int

// Storage modes.
const (
	// StorageDFS stores objects as text files in the simulated distributed
	// file system; queries read them through block-aligned input splits
	// with locality-aware scheduling. This is the full reproduction of the
	// paper's Hadoop/HDFS stack and the default.
	StorageDFS Storage = iota
	// StorageMemory keeps objects in memory and feeds them to MapReduce
	// through an in-memory source. Faster, and sufficient when only the
	// algorithms (not the storage substrate) matter.
	StorageMemory
	// StorageDFSBinary stores objects in the SequenceFile-like binary
	// format (length-prefixed records with sync markers) instead of text
	// lines. Splittable like text, but parsing is a binary decode instead
	// of string splitting — the classic Hadoop optimization.
	StorageDFSBinary
)

// Config parameterizes an Engine.
type Config struct {
	// Nodes is the number of DFS DataNodes (default 16, the paper's
	// cluster size).
	Nodes int
	// MapSlots and ReduceSlots bound task concurrency (default 8 each).
	MapSlots    int
	ReduceSlots int
	// BlockSize is the DFS block size in bytes (default 256 KiB).
	BlockSize int
	// Replication is the DFS replication factor (default 3).
	Replication int
	// Storage selects DFS-backed (default) or in-memory datasets.
	Storage Storage
	// Seed drives DFS block placement.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Nodes <= 0 {
		c.Nodes = 16
	}
	if c.MapSlots <= 0 {
		c.MapSlots = 8
	}
	if c.ReduceSlots <= 0 {
		c.ReduceSlots = 8
	}
	return c
}

// Engine owns a simulated cluster (DFS + worker slots), a keyword
// dictionary, and the loaded datasets. It is safe for concurrent queries
// once sealed; loading methods must not race with queries.
type Engine struct {
	cfg     Config
	fs      *dfs.FileSystem
	cluster *mapreduce.Cluster
	dict    *text.Dict

	mu       sync.Mutex
	objects  []data.Object
	bounds   geo.Rect
	sealed   bool
	fileSeq  int
	curFiles []string
}

// NewEngine creates an engine with the given configuration.
func NewEngine(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	fs := dfs.New(dfs.Config{
		NumNodes:    cfg.Nodes,
		BlockSize:   cfg.BlockSize,
		Replication: cfg.Replication,
		Seed:        cfg.Seed,
	})
	return &Engine{
		cfg:     cfg,
		fs:      fs,
		cluster: mapreduce.NewCluster(fs, cfg.MapSlots, cfg.ReduceSlots),
		dict:    text.NewDict(),
		bounds:  geo.Rect{MinX: 1, MaxX: -1}, // empty
	}
}

// AddData loads data objects (the objects ranked and returned by queries).
func (e *Engine) AddData(objs ...DataObject) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.sealed {
		return fmt.Errorf("spq: engine already sealed; datasets are write-once")
	}
	for _, o := range objs {
		p := geo.Point{X: o.X, Y: o.Y}
		e.objects = append(e.objects, data.Object{Kind: data.DataObject, ID: o.ID, Loc: p})
		e.growBounds(p)
	}
	return nil
}

// AddFeature loads feature objects (the keyword-annotated objects that
// score data objects).
func (e *Engine) AddFeature(feats ...Feature) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.sealed {
		return fmt.Errorf("spq: engine already sealed; datasets are write-once")
	}
	for _, f := range feats {
		e.objects = append(e.objects, toFeatureObject(f, e.dict))
		e.growBounds(geo.Point{X: f.X, Y: f.Y})
	}
	return nil
}

func (e *Engine) growBounds(p geo.Point) {
	e.bounds = e.bounds.Union(geo.Rect{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y})
}

// Len returns the number of loaded data and feature objects.
func (e *Engine) Len() (dataObjects, features int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, o := range e.objects {
		if o.Kind == data.DataObject {
			dataObjects++
		} else {
			features++
		}
	}
	return dataObjects, features
}

// Bounds returns the bounding box of the loaded objects.
func (e *Engine) Bounds() (minX, minY, maxX, maxY float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.bounds.MinX, e.bounds.MinY, e.bounds.MaxX, e.bounds.MaxY
}

// Seal publishes the loaded datasets to storage (write-once, like HDFS).
// Query seals implicitly; calling Seal explicitly lets the caller observe
// storage errors early. Loading after Seal fails.
func (e *Engine) Seal() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.sealLocked()
}

func (e *Engine) sealLocked() error {
	if e.sealed {
		return nil
	}
	if len(e.objects) == 0 {
		return fmt.Errorf("spq: no objects loaded")
	}
	switch e.cfg.Storage {
	case StorageDFS:
		name := fmt.Sprintf("spq-objects-%d.txt", e.fileSeq)
		e.fileSeq++
		w, err := e.fs.Writer(name)
		if err != nil {
			return fmt.Errorf("spq: seal: %w", err)
		}
		for _, o := range e.objects {
			if err := data.EncodeLine(w, o, e.dict); err != nil {
				return fmt.Errorf("spq: seal: %w", err)
			}
		}
		if err := w.Close(); err != nil {
			return fmt.Errorf("spq: seal: %w", err)
		}
		e.curFiles = []string{name}
	case StorageDFSBinary:
		name := fmt.Sprintf("spq-objects-%d.seq", e.fileSeq)
		e.fileSeq++
		w, err := e.fs.Writer(name)
		if err != nil {
			return fmt.Errorf("spq: seal: %w", err)
		}
		sw := data.NewSeqWriter(w, name)
		for _, o := range e.objects {
			if err := sw.Append(o); err != nil {
				return fmt.Errorf("spq: seal: %w", err)
			}
		}
		if err := sw.Close(); err != nil {
			return fmt.Errorf("spq: seal: %w", err)
		}
		e.curFiles = []string{name}
	}
	e.sealed = true
	return nil
}

// source returns the MapReduce input source for the sealed datasets.
func (e *Engine) source() mapreduce.Source[data.Object] {
	switch e.cfg.Storage {
	case StorageDFS:
		return mapreduce.NewTextInput(e.fs, func(line []byte) (data.Object, error) {
			return data.ParseLine(line, e.dict)
		}, e.curFiles...)
	case StorageDFSBinary:
		return data.NewSeqInput(e.fs, e.curFiles...)
	default:
		return mapreduce.NewMemorySource(e.objects, e.cfg.MapSlots*2)
	}
}

// Query runs a spatial preference query and returns the ranked results.
func (e *Engine) Query(q Query, opts ...QueryOption) ([]Result, error) {
	rep, err := e.QueryReport(q, opts...)
	if err != nil {
		return nil, err
	}
	return rep.Results, nil
}

// QueryReport runs a query and additionally returns the execution metrics
// of the underlying MapReduce job.
func (e *Engine) QueryReport(q Query, opts ...QueryOption) (*Report, error) {
	if err := validateQuery(q); err != nil {
		return nil, err
	}
	cfg := queryConfig{alg: core.ESPQSco, gridN: 16}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.gridN <= 0 {
		return nil, fmt.Errorf("spq: grid size %d, must be positive", cfg.gridN)
	}

	e.mu.Lock()
	if err := e.sealLocked(); err != nil {
		e.mu.Unlock()
		return nil, err
	}
	bounds := e.bounds
	if cfg.bounds != nil {
		bounds = *cfg.bounds
	}
	src := e.source()
	e.mu.Unlock()

	// A degenerate bounding box (single point or a line of objects) still
	// needs a two-dimensional grid; pad it.
	if bounds.Width() == 0 || bounds.Height() == 0 {
		pad := q.Radius
		if pad == 0 {
			pad = 1
		}
		bounds = bounds.Expand(pad)
	}

	cq := core.Query{K: q.K, Radius: q.Radius, Keywords: e.dict.InternAll(q.Keywords), Mode: q.Mode}
	rep, err := core.Run(cfg.alg, src, cq, core.Options{
		Cluster:     e.cluster,
		Bounds:      bounds,
		GridN:       cfg.gridN,
		NumReducers: cfg.reducers,
		SpillEvery:  cfg.spillEvery,
	})
	if err != nil {
		return nil, err
	}
	return &Report{
		Algorithm:    rep.Algorithm,
		Results:      toResults(rep.Results),
		Counters:     rep.Counters,
		MapMillis:    float64(rep.Stats.MapDuration.Microseconds()) / 1000,
		ReduceMillis: float64(rep.Stats.ReduceDuration.Microseconds()) / 1000,
		TotalMillis:  float64(rep.Stats.Duration.Microseconds()) / 1000,
	}, nil
}
