package spq

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"spq/internal/core"
	"spq/internal/data"
	"spq/internal/dfs"
	"spq/internal/geo"
	"spq/internal/grid"
	"spq/internal/mapreduce"
	"spq/internal/plan"
	"spq/internal/text"
)

// Storage selects where the engine keeps its datasets.
type Storage int

// Storage modes.
const (
	// StorageDFS stores objects as text files in the simulated distributed
	// file system; queries read them through block-aligned input splits
	// with locality-aware scheduling. This is the full reproduction of the
	// paper's Hadoop/HDFS stack and the default.
	StorageDFS Storage = iota
	// StorageMemory keeps objects in memory and feeds them to MapReduce
	// through an in-memory source. Faster, and sufficient when only the
	// algorithms (not the storage substrate) matter.
	StorageMemory
	// StorageDFSBinary stores objects in a binary format instead of text
	// lines. By default this is the SPQ3 compressed columnar segment
	// format: each sealed cell is written as density-sized column blocks
	// with per-block zone maps (bounding box, record count, keyword bloom)
	// in the manifest, so the query planner prunes inside cells and the
	// reader decodes only surviving blocks — straight into dense,
	// cache-shared column buffers. Config.Segment selects the uncompressed
	// SPQ2 columnar format or the legacy SPQ1 record format
	// (length-prefixed records with sync markers) instead; both stay fully
	// readable and return identical query results.
	StorageDFSBinary
)

// SegmentFormat selects the record layout of binary sealed storage
// (StorageDFSBinary).
type SegmentFormat int

// The binary segment formats.
const (
	// SegmentCompressed is the SPQ3 compressed columnar format: per-cell
	// segments of column blocks (delta-varint ids, xor-delta bit-packed
	// coordinates, dictionary-coded keyword postings) sized adaptively
	// from cell density, with block-level zone maps in the manifest. The
	// default.
	SegmentCompressed SegmentFormat = iota
	// SegmentRecord is the legacy SPQ1 record format, modeled after
	// Hadoop's SequenceFile. Kept for compatibility; reads decode record
	// at a time and prune only at whole-cell granularity.
	SegmentRecord
	// SegmentColumnar is the SPQ2 uncompressed columnar format: raw
	// struct-of-arrays column blocks of ~2K records each. Shares the
	// zone-map pruning and segment-cache stack with SPQ3.
	SegmentColumnar
)

// Per-query segment I/O counters, emitted by columnar storage modes
// (see Report.Counters). Together they quantify the storage cost of a
// query: selected is the plan's compressed footprint, read what actually
// hit storage (cache hits read nothing), decoded the in-memory size
// produced from those reads.
const (
	// CounterSegBytesRead is the compressed frame bytes this query
	// fetched from storage for its columnar block reads. On a distributed
	// engine it totals the master's and every worker's reads; the
	// per-worker share additionally appears under the same name with a
	// "."+worker suffix.
	CounterSegBytesRead = data.CounterSegBytesRead
	// CounterSegBytesDecoded is the decoded in-memory size of the blocks
	// produced from those reads (master + workers on a distributed
	// engine, with the same per-worker breakdown).
	CounterSegBytesDecoded = data.CounterSegBytesDecoded
	// CounterSegBytesSelected is the stored (compressed) size of every
	// block the query selected, independent of segment-cache warmth —
	// the deterministic quantity for comparing segment formats.
	CounterSegBytesSelected = "spq.seg.bytes.selected"
)

// DefaultSealGridN is the default seal grid edge: Seal partitions the
// datasets into DefaultSealGridN² per-cell files (plus a manifest) unless
// Config.SealGridN or WithSealGrid overrides it.
const DefaultSealGridN = 32

// Config parameterizes an Engine.
type Config struct {
	// Nodes is the number of DFS DataNodes (default 16, the paper's
	// cluster size).
	Nodes int
	// MapSlots and ReduceSlots bound task concurrency (default 8 each).
	MapSlots    int
	ReduceSlots int
	// BlockSize is the DFS block size in bytes (default 256 KiB).
	BlockSize int
	// Replication is the DFS replication factor (default 3).
	Replication int
	// Storage selects DFS-backed (default) or in-memory datasets.
	Storage Storage
	// SealGridN is the edge size of the seal grid: Seal writes the
	// datasets as per-cell files over a SealGridN x SealGridN grid with a
	// manifest of per-cell statistics, which is what the query planner
	// (WithAutoPlan) prunes against. Default DefaultSealGridN.
	SealGridN int
	// QueryCache bounds the engine's query result cache, in cached
	// reports. Repeated queries against an unchanged storage generation
	// are served from the cache without re-running the MapReduce job;
	// entries are keyed on the generation — bumped by every seal, append
	// batch and compaction — and evicted LRU. Zero selects
	// DefaultQueryCacheSize; a negative value disables caching entirely.
	QueryCache int
	// Segment selects the record layout of binary sealed storage
	// (StorageDFSBinary): the SPQ3 compressed columnar format (default),
	// the SPQ2 uncompressed columnar format, or the legacy SPQ1 record
	// format. Ignored by the other storage modes.
	Segment SegmentFormat
	// SegmentCache bounds the engine's decoded-segment cache, in bytes of
	// decoded columns. Columnar reads check it before touching storage: a
	// hot block — clustered query traffic revisiting the same cells —
	// skips both the ranged read and the decode. Entries are keyed on
	// (generation, cell file, block), so compactions invalidate by
	// construction, mirroring the query cache. Zero selects
	// data.DefaultBlockCacheBytes; a negative value disables the cache.
	// Only columnar storage uses it.
	SegmentCache int
	// CompactAfter bounds the in-memory delta of a sealed engine, in
	// records: once an append batch leaves at least CompactAfter records
	// in the delta, the engine compacts automatically — re-sealing
	// base+delta into a new storage generation (see Compact). Zero selects
	// DefaultCompactAfter; a negative value disables automatic compaction
	// (Compact can still be called explicitly).
	CompactAfter int
	// MaxAttempts bounds how many times each map/reduce task is executed
	// before its job fails: a task may fail up to MaxAttempts-1 times (on
	// injected faults, unreadable replicas, ...) and still complete. Zero
	// selects DefaultMaxAttempts; negative disables retries (one attempt).
	MaxAttempts int
	// RetryBackoff is the base delay of the capped exponential backoff
	// between task attempts (doubled per failure, capped at 100ms). Zero
	// selects a small default; negative disables backoff entirely.
	RetryBackoff time.Duration
	// Faults optionally injects deterministic, seeded faults into the DFS:
	// transient read errors, replica corruption and node crash schedules.
	// Nil (the default) runs a healthy cluster. See FaultPlan.
	Faults *FaultPlan
	// Seed drives DFS block placement.
	Seed int64
	// Workers lists the listen addresses of worker processes (cmd/spqworker,
	// or in-process mapreduce.StartWorker servers). When non-empty the
	// engine starts an RPC master, attaches the workers and runs every
	// remotable query job on them: the master ships self-describing task
	// descriptors, workers read inputs and write shuffle intermediates
	// through the master's DFS, and lost workers have their tasks
	// re-executed on surviving ones. Jobs that cannot ship — in-memory
	// storage, delta-merged sources — transparently fall back to local
	// execution (spq.exec.fallback.local). Empty (the default) runs
	// everything in-process. Engines with workers should be Closed.
	//
	// The worker set is elastic: AddWorker attaches more (or rejoins
	// crashed ones) while the engine serves, and DrainWorker detaches one
	// gracefully.
	Workers []string
	// Speculation enables speculative straggler execution on distributed
	// engines: a task attempt running longer than a multiple of its
	// phase's median completion time gets a backup attempt on a different
	// worker, first result wins, loser is canceled (metered as
	// spq.exec.spec.{launched,won,wasted}). Nil (the default) disables
	// speculation. Ignored by in-process engines.
	Speculation *SpeculationConfig
}

// DefaultMaxAttempts is the per-task execution budget used when
// Config.MaxAttempts is zero: one initial attempt plus up to two retries.
const DefaultMaxAttempts = 3

func (c Config) withDefaults() Config {
	if c.Nodes <= 0 {
		c.Nodes = 16
	}
	if c.MapSlots <= 0 {
		c.MapSlots = 8
	}
	if c.ReduceSlots <= 0 {
		c.ReduceSlots = 8
	}
	if c.SealGridN <= 0 {
		c.SealGridN = DefaultSealGridN
	}
	if c.QueryCache == 0 {
		c.QueryCache = DefaultQueryCacheSize
	}
	if c.CompactAfter == 0 {
		c.CompactAfter = DefaultCompactAfter
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = DefaultMaxAttempts
	} else if c.MaxAttempts < 0 {
		c.MaxAttempts = 1
	}
	return c
}

// memRange is the half-open index range of one sealed partition inside
// the memory-mode object layout.
type memRange struct{ lo, hi int }

// snapshot is the immutable read-path view of the engine's storage: the
// sealed base generation plus — under generational ingestion — the
// in-memory delta of records appended since. A new snapshot is published
// atomically by every seal, committed append batch and compaction; queries
// load it without taking the engine mutex, so N concurrent queries proceed
// lock-free over the shared state, and a query in flight across a
// compaction simply finishes on the snapshot it started with.
type snapshot struct {
	// gen is the storage generation the snapshot belongs to. It keys the
	// query cache: any mutation bumps it, making every older cached report
	// unreachable without an explicit flush.
	gen      uint64
	manifest *data.Manifest
	bounds   geo.Rect
	// Memory-mode layout: the cell-ordered object slice and the name to
	// index-range mapping of its partitions. Nil under DFS storage.
	sealedObjs []data.Object
	memLayout  map[string]memRange
	// delta is the view of records appended after the base sealed; nil
	// when the delta is empty.
	delta *deltaState
}

// Engine owns a simulated cluster (DFS + worker slots), a keyword
// dictionary, and the loaded datasets. Once sealed it is safe for full
// concurrency: any number of goroutines may query while others append
// (appends serialize among themselves on the engine mutex; queries never
// take it).
type Engine struct {
	cfg     Config
	fs      *dfs.FileSystem
	cluster *mapreduce.Cluster
	dict    *text.Dict
	cache   *queryCache // nil when Config.QueryCache < 0
	// segCache is the decoded-segment cache of columnar storage; nil when
	// disabled or unused by the storage mode.
	segCache *data.BlockCache
	// viewCache caches per-query-grid data views of columnar storage (see
	// core.DataView): delta-free queries shuffle only feature records and
	// reduce against the view's dense per-cell columns. Nil unless the
	// storage mode is columnar.
	viewCache *core.ViewCache

	// exec is the RPC executor when Config.Workers is set; execErr holds a
	// worker attach failure, surfaced by the first query rather than lost
	// (NewEngine does not return errors).
	exec    *mapreduce.RPCExecutor
	execErr error

	// snap is the published read-path snapshot; nil until the first seal.
	// Queries load it lock-free; e.mu is only taken to seal.
	snap atomic.Pointer[snapshot]

	// Lifecycle: closed flips once under lifeMu and stays; inflight counts
	// queries between beginQuery/endQuery so Close can drain them. They are
	// separate from e.mu because queries never take e.mu (by design), yet
	// Close must still fence them.
	lifeMu   sync.Mutex
	closed   bool
	inflight sync.WaitGroup

	mu      sync.Mutex
	objects []data.Object
	nData   int
	nFeats  int
	// dataIDs and featIDs track the loaded object ids of each dataset, so
	// duplicate ids are rejected at load time (see AddData). They span the
	// sealed base and the delta: an append can never shadow a sealed id.
	dataIDs map[uint64]struct{}
	featIDs map[uint64]struct{}
	bounds  geo.Rect
	sealed  bool
	gen     uint64
	fileSeq int
	sealN   int // seal grid edge of the current base generation

	// Sealed state: the manifest of the partitioned storage layout, plus
	// — under StorageMemory — the cell-ordered object slice and the name
	// to index-range layout of its partitions.
	manifest   *data.Manifest
	sealedObjs []data.Object
	memLayout  map[string]memRange

	// delta holds the records appended after the last seal or compaction,
	// in append order. It is append-only between compactions: published
	// snapshots hold fixed-length prefixes of it (see deltaState).
	delta []data.Object
}

// NewEngine creates an engine with the given configuration.
func NewEngine(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	fs := dfs.New(dfs.Config{
		NumNodes:    cfg.Nodes,
		BlockSize:   cfg.BlockSize,
		Replication: cfg.Replication,
		Seed:        cfg.Seed,
		Faults:      cfg.Faults,
	})
	e := &Engine{
		cfg:     cfg,
		fs:      fs,
		cluster: mapreduce.NewCluster(fs, cfg.MapSlots, cfg.ReduceSlots),
		dict:    text.NewDict(),
		dataIDs: make(map[uint64]struct{}),
		featIDs: make(map[uint64]struct{}),
		bounds:  geo.Rect{MinX: 1, MaxX: -1}, // empty
	}
	if cfg.QueryCache > 0 {
		e.cache = newQueryCache(cfg.QueryCache)
	}
	if cfg.Storage == StorageDFSBinary && cfg.Segment != SegmentRecord {
		if cfg.SegmentCache >= 0 {
			e.segCache = data.NewBlockCache(int64(cfg.SegmentCache))
		}
		e.viewCache = core.NewViewCache(0)
	}
	if len(cfg.Workers) > 0 {
		dictWords := func(n int) []string {
			if sz := e.dict.Size(); n > sz {
				n = sz
			}
			out := make([]string, n)
			for i := range out {
				out[i] = e.dict.Word(uint32(i))
			}
			return out
		}
		exec, err := mapreduce.NewRPCExecutor(fs, dictWords, cfg.Workers)
		if err != nil {
			e.execErr = fmt.Errorf("spq: attach workers: %w", err)
		} else {
			e.exec = exec
			e.cluster.Executor = exec
			if cfg.Faults != nil {
				exec.SetChurn(cfg.Faults)
			}
			if cfg.Speculation != nil {
				exec.SetSpeculation(cfg.Speculation)
			}
		}
	}
	return e
}

// Distributed reports whether the engine dispatches query jobs to worker
// processes (Config.Workers attached successfully).
func (e *Engine) Distributed() bool { return e.exec != nil }

// Workers returns the names of the attached worker processes, in
// attachment order; nil for an in-process engine. Per-worker task counts
// appear in query reports under spq.exec.tasks.<name>.
func (e *Engine) Workers() []string {
	if e.exec == nil {
		return nil
	}
	return e.exec.Workers()
}

// ErrNotDistributed rejects membership operations on engines that run
// everything in-process (no Config.Workers).
var ErrNotDistributed = errors.New("spq: engine has no distributed executor")

// AddWorker attaches the worker process listening at addr to a running
// distributed engine under the given name ("" auto-assigns the next
// worker-N) and returns the registered name. A name that previously
// belonged to a lost or drained worker rejoins in place — its lanes
// route to the fresh connection immediately; a brand-new worker starts
// executing tasks from the next query job on. Workers may equivalently
// join themselves via the master's Join RPC (spqworker -master).
func (e *Engine) AddWorker(addr, name string) (string, error) {
	if e.exec == nil {
		return "", ErrNotDistributed
	}
	return e.exec.AddWorker(addr, name)
}

// DrainWorker gracefully detaches a named worker from a running
// distributed engine: new tasks route around it immediately, in-flight
// tasks finish, then the connection closes. The worker process keeps
// running and may rejoin later (AddWorker with the same name). Draining
// the last live worker is refused.
func (e *Engine) DrainWorker(name string) error {
	if e.exec == nil {
		return ErrNotDistributed
	}
	return e.exec.DrainWorker(name)
}

// MasterAddr returns the listen address of the engine's RPC master ("",
// for in-process engines). Worker processes started with
// `spqworker -master <addr>` join it on their own.
func (e *Engine) MasterAddr() string {
	if e.exec == nil {
		return ""
	}
	return e.exec.MasterAddr()
}

// Close shuts the engine down: it waits for in-flight queries to finish,
// then releases the distributed-execution resources (the RPC master stops
// and worker connections drop; worker processes themselves keep running —
// their lifecycle belongs to whoever started them). Close is idempotent
// and safe to call concurrently with queries: calls racing a Close, and
// every query submitted afterwards, fail with ErrClosed instead of
// touching torn-down state.
func (e *Engine) Close() error {
	e.lifeMu.Lock()
	if e.closed {
		e.lifeMu.Unlock()
		return nil
	}
	e.closed = true
	e.lifeMu.Unlock()
	e.inflight.Wait()
	if e.exec == nil {
		return nil
	}
	return e.exec.Close()
}

// beginQuery registers one in-flight query, failing with ErrClosed once
// Close has begun. Callers that receive nil must call endQuery.
func (e *Engine) beginQuery() error {
	e.lifeMu.Lock()
	defer e.lifeMu.Unlock()
	if e.closed {
		return ErrClosed
	}
	e.inflight.Add(1)
	return nil
}

func (e *Engine) endQuery() { e.inflight.Done() }

// AddData loads data objects (the objects ranked and returned by queries).
//
// Every object is validated at load time: coordinates must be finite (a
// NaN or infinite coordinate used to surface only at seal time, as an
// opaque JSON encoding error that could wedge the engine mid-seal), and
// ids must be unique within the data dataset — a duplicate id would
// otherwise silently yield duplicate top-k entries, so duplicates are
// rejected outright rather than deduplicated (data and feature ids live
// in separate namespaces; a data object may share an id with a feature).
// The whole batch is validated before any of it is loaded, so a rejected
// call leaves the engine unchanged.
//
// On a sealed engine the batch appends into the in-memory delta instead:
// validation is identical (duplicate-id checks span the sealed base and
// the delta), the records become visible to queries atomically when the
// call returns, and they are merged into sealed storage by the next
// compaction. See Compact and Config.CompactAfter. One caveat to the
// unchanged-on-error rule: if the batch itself commits but the automatic
// compaction it triggers fails, the returned error says so explicitly —
// the records ARE appended and served, so the batch must not be retried.
func (e *Engine) AddData(objs ...DataObject) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	seen := make(map[uint64]struct{}, len(objs))
	for _, o := range objs {
		if err := e.checkLocked(data.DataObject, o.ID, o.X, o.Y, seen); err != nil {
			return err
		}
	}
	for _, o := range objs {
		e.addLocked(data.Object{Kind: data.DataObject, ID: o.ID, Loc: geo.Point{X: o.X, Y: o.Y}})
	}
	return e.commitLocked()
}

// AddFeature loads feature objects (the keyword-annotated objects that
// score data objects). Validation and sealed-engine append semantics
// follow AddData: finite coordinates, unique ids within the feature
// dataset, all-or-nothing per call.
func (e *Engine) AddFeature(feats ...Feature) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	seen := make(map[uint64]struct{}, len(feats))
	for _, f := range feats {
		if err := e.checkLocked(data.FeatureObject, f.ID, f.X, f.Y, seen); err != nil {
			return err
		}
	}
	for _, f := range feats {
		e.addLocked(toFeatureObject(f, e.dict))
	}
	return e.commitLocked()
}

// commitLocked finishes a successful load batch. Before the first seal it
// is a no-op: records sit in the load buffer until Seal. On a sealed
// engine it publishes the post-append snapshot — appended records are
// invisible to queries until their whole batch commits, as one generation
// bump — and compacts when the delta has grown past the configured
// threshold. A compaction failure is reported but does not un-append the
// batch: the records are already durable in the (published) delta.
func (e *Engine) commitLocked() error {
	if !e.sealed {
		return nil
	}
	e.publishLocked()
	if e.cfg.CompactAfter > 0 && len(e.delta) >= e.cfg.CompactAfter {
		if err := e.compactLocked(); err != nil {
			return fmt.Errorf("spq: records appended, but automatic compaction failed: %w", err)
		}
	}
	return nil
}

// publishLocked bumps the generation and atomically swaps in a snapshot of
// the engine's current state: the sealed base plus a fixed-length view of
// the delta. In-flight queries keep the snapshot they loaded.
func (e *Engine) publishLocked() {
	e.gen++
	s := &snapshot{
		gen:        e.gen,
		manifest:   e.manifest,
		bounds:     e.bounds,
		sealedObjs: e.sealedObjs,
		memLayout:  e.memLayout,
	}
	if len(e.delta) > 0 {
		s.delta = &deltaState{objs: e.delta[:len(e.delta)]}
	}
	e.snap.Store(s)
}

// checkLocked validates one incoming object: finite coordinates and an id
// unused by its dataset (and, via seen, unused earlier in the same batch).
// Errors name the offending object so bad records in a bulk load can be
// found and fixed.
func (e *Engine) checkLocked(kind data.Kind, id uint64, x, y float64, seen map[uint64]struct{}) error {
	if !finite(x) || !finite(y) {
		return fmt.Errorf("spq: %s object %d: non-finite coordinate (%g, %g)", kind, id, x, y)
	}
	ids := e.dataIDs
	if kind == data.FeatureObject {
		ids = e.featIDs
	}
	if _, dup := ids[id]; dup {
		return fmt.Errorf("spq: duplicate %s object id %d", kind, id)
	}
	if seen != nil {
		if _, dup := seen[id]; dup {
			return fmt.Errorf("spq: duplicate %s object id %d", kind, id)
		}
		seen[id] = struct{}{}
	}
	return nil
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// addLocked appends one validated object — to the load buffer before the
// first seal, to the delta after — maintaining the dataset counts, the id
// sets and the bounds incrementally so Len and Bounds stay O(1).
func (e *Engine) addLocked(o data.Object) {
	if e.sealed {
		e.delta = append(e.delta, o)
	} else {
		e.objects = append(e.objects, o)
	}
	if o.Kind == data.DataObject {
		e.nData++
		e.dataIDs[o.ID] = struct{}{}
	} else {
		e.nFeats++
		e.featIDs[o.ID] = struct{}{}
	}
	e.growBounds(o.Loc)
}

func (e *Engine) growBounds(p geo.Point) {
	e.bounds = e.bounds.Union(geo.Rect{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y})
}

// Len returns the number of loaded data and feature objects. It is O(1):
// the counts are maintained as objects are loaded.
func (e *Engine) Len() (dataObjects, features int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.nData, e.nFeats
}

// Bounds returns the bounding box of the loaded objects.
func (e *Engine) Bounds() (minX, minY, maxX, maxY float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.bounds.MinX, e.bounds.MinY, e.bounds.MaxX, e.bounds.MaxY
}

// baseObjectsLocked returns the objects of the sealed base generation (or
// the load buffer before the first seal): the load-order slice under DFS
// storage, the cell-ordered sealed layout under memory storage (which
// releases the load-time slice at seal).
func (e *Engine) baseObjectsLocked() []data.Object {
	if e.sealedObjs != nil {
		return e.sealedObjs
	}
	return e.objects
}

// allObjectsLocked returns every loaded object — base plus delta. The
// returned slice aliases engine state when the delta is empty and must
// not be mutated or retained past the lock.
func (e *Engine) allObjectsLocked() []data.Object {
	base := e.baseObjectsLocked()
	if len(e.delta) == 0 {
		return base
	}
	out := make([]data.Object, 0, len(base)+len(e.delta))
	return append(append(out, base...), e.delta...)
}

// Manifest returns the partition manifest of the sealed storage layout,
// or nil before Seal. The manifest is what the query planner prunes
// against; it is exposed for inspection and tooling.
func (e *Engine) Manifest() *data.Manifest {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.manifest
}

// Seal publishes the loaded datasets to storage (write-once files, like
// HDFS). Storage is partition-aware: objects are written as per-cell files
// over the seal grid (Config.SealGridN), with a persisted manifest
// carrying per-cell statistics — record counts, tight bounding rectangles,
// keyword summaries — that the query planner uses to skip irrelevant
// files. Query seals implicitly; calling Seal explicitly lets the caller
// observe storage errors early. Loading after Seal appends into the
// in-memory delta (see AddData and Compact) — the engine stays writable.
func (e *Engine) Seal() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.sealLocked(0)
}

// sealLocked performs the first seal. sealGridN overrides the configured
// seal grid when positive (WithSealGrid).
func (e *Engine) sealLocked(sealGridN int) error {
	if e.sealed {
		return nil
	}
	if len(e.objects) == 0 {
		return fmt.Errorf("spq: no objects loaded")
	}
	return e.writeGenerationLocked(e.objects, sealGridN)
}

// writeGenerationLocked partitions objs over the seal grid, writes them as
// a fresh storage generation (new file prefix; existing files are never
// touched, so queries in flight on the previous snapshot keep reading it),
// and atomically publishes the new snapshot with an empty delta. On error
// the engine keeps serving its previous generation unchanged; any
// partially written files of the failed generation are orphaned under a
// prefix no snapshot references.
func (e *Engine) writeGenerationLocked(objs []data.Object, sealGridN int) error {
	n := sealGridN
	if n <= 0 {
		n = e.cfg.SealGridN
	}
	bounds := e.bounds
	if bounds.Width() == 0 || bounds.Height() == 0 {
		// A degenerate bounding box (single point or a line of objects)
		// still needs a two-dimensional seal grid; pad it.
		bounds = bounds.Expand(1)
	}
	g := grid.New(bounds, n, n)
	prefix := fmt.Sprintf("spq-objects-%d", e.fileSeq)
	e.fileSeq++
	parts := data.PartitionObjects(g, objs)
	parts.Generation = e.gen + 1
	switch e.cfg.Storage {
	case StorageDFS, StorageDFSBinary:
		format := data.FormatText
		if e.cfg.Storage == StorageDFSBinary {
			switch e.cfg.Segment {
			case SegmentRecord:
				format = data.FormatBinary
			case SegmentColumnar:
				format = data.FormatColumnar
			default:
				format = data.FormatCompressed
			}
		}
		man, err := parts.SealDFS(e.fs, prefix, e.dict, format)
		if err != nil {
			return fmt.Errorf("spq: seal: %w", err)
		}
		e.manifest = man
		e.objects = objs // retained: future compactions re-seal base+delta
		e.sealedObjs, e.memLayout = nil, nil
	default:
		man, ordered := parts.SealMemory(prefix, e.dict)
		e.manifest = man
		e.sealedObjs = ordered
		e.objects = nil
		e.memLayout = cellLayout(man.Data, man.Features)
	}
	e.sealed = true
	e.sealN = n
	e.delta = nil
	// Publish the read-path snapshot: from here on queries run lock-free
	// against this immutable view (see snapshotFor).
	e.publishLocked()
	return nil
}

// Compact merges the sealed base generation with the in-memory delta and
// re-seals them as one new storage generation: the delta's records gain
// partitioned cell files and manifest statistics (so the planner prunes
// them as effectively as the original load), the delta empties, and the
// new snapshot is swapped in atomically — queries already in flight finish
// on the generation they started with, and the generation bump makes every
// cached report from older generations unreachable. With an empty delta it
// is a no-op; on an engine that has never sealed it performs the first
// Seal. Old generation files are not deleted: in-flight queries may still
// be reading them (write-once storage makes this safe, at the cost of
// space until the engine is discarded).
func (e *Engine) Compact() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.sealed {
		return e.sealLocked(0)
	}
	return e.compactLocked()
}

// compactLocked re-seals base+delta. Caller holds e.mu and has sealed.
func (e *Engine) compactLocked() error {
	if len(e.delta) == 0 {
		return nil
	}
	base := e.baseObjectsLocked()
	merged := make([]data.Object, 0, len(base)+len(e.delta))
	merged = append(append(merged, base...), e.delta...)
	return e.writeGenerationLocked(merged, e.sealN)
}

// Generation returns the storage generation queries are currently served
// from: 0 before the first seal, bumped by Seal, by every committed append
// batch and by Compact. The query cache is keyed on it, so a report cached
// against an older generation is never served to a newer one.
func (e *Engine) Generation() uint64 {
	if s := e.snap.Load(); s != nil {
		return s.gen
	}
	return 0
}

// DeltaLen returns the number of records currently in the in-memory delta
// — appended after the last seal or compaction and not yet compacted. 0 on
// an unsealed engine.
func (e *Engine) DeltaLen() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.delta)
}

// snapshotFor returns the published read-path snapshot, sealing first if
// the engine has not sealed yet. The fast path is one atomic load and no
// lock: concurrent queries on a sealed engine never serialize here.
func (e *Engine) snapshotFor(sealGridN int) (*snapshot, error) {
	if s := e.snap.Load(); s != nil {
		return s, nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.sealLocked(sealGridN); err != nil {
		return nil, err
	}
	return e.snap.Load(), nil
}

// source returns the MapReduce input source reading exactly the given
// sealed cell files (a subset of the manifest's file set, possibly
// pre-pruned by the planner). Columnar storage reads the cols selection
// instead: per-cell surviving block lists, fetched by ranged read through
// the decoded-segment cache. It reads only the immutable snapshot and
// the engine's construction-time fields, so concurrent queries build
// their sources without locking. DFS sources are coalesced: per-cell
// files (and column blocks) are small, and one map task per unit would
// drown the job in task overhead, so consecutive splits are grouped down
// to a few per map slot.
func (e *Engine) source(s *snapshot, files []string, cols []data.ColSel, io *data.SegIOStats, kws []uint32) mapreduce.Source[data.Object] {
	target := e.cfg.MapSlots * 4
	switch s.manifest.Format {
	case data.FormatText:
		return mapreduce.Coalesce[data.Object](mapreduce.NewTextInput(e.fs, func(line []byte) (data.Object, error) {
			return data.ParseLine(line, e.dict)
		}, files...), target)
	case data.FormatBinary:
		return mapreduce.Coalesce[data.Object](data.NewSeqInput(e.fs, files...), target)
	case data.FormatColumnar, data.FormatCompressed:
		in := data.NewColInput(e.fs, cols, e.segCache, s.manifest.Generation)
		in.IO = io
		in.Keywords = kws
		return mapreduce.Coalesce[data.Object](in, target)
	default:
		return e.memorySource(s, files)
	}
}

// memorySource builds an in-memory source over the selected partitions of
// the snapshot's sealed layout, re-split into ~2 chunks per map slot (see
// memoryChunks, which the delta view shares).
func (e *Engine) memorySource(s *snapshot, files []string) mapreduce.Source[data.Object] {
	return memoryChunks(s.sealedObjs, s.memLayout, files, e.cfg.MapSlots*2)
}

// Query runs a spatial preference query and returns the ranked results.
// It is QueryContext with a background context.
func (e *Engine) Query(q Query, opts ...QueryOption) ([]Result, error) {
	return e.QueryContext(context.Background(), q, opts...)
}

// QueryContext runs a spatial preference query under ctx and returns the
// ranked results. It is the primary query entry point: canceling ctx (a
// dropped client connection, an expired deadline) aborts the query's
// map/reduce tasks promptly — queued tasks leave the admission pools
// without consuming a slot, running local tasks stop at record granularity
// — and the call returns an error wrapping both ErrCanceled and the
// context's own error. See errors.go for the full error taxonomy.
func (e *Engine) QueryContext(ctx context.Context, q Query, opts ...QueryOption) ([]Result, error) {
	rep, err := e.QueryReportContext(ctx, q, opts...)
	if err != nil {
		return nil, err
	}
	return rep.Results, nil
}

// defaultGridN is the query-time grid used when neither WithGrid nor the
// planner chooses one (the paper's configuration for small datasets).
const defaultGridN = 16

// QueryReport runs a query and additionally returns the execution metrics
// of the underlying MapReduce job. It is QueryReportContext with a
// background context.
func (e *Engine) QueryReport(q Query, opts ...QueryOption) (*Report, error) {
	return e.QueryReportContext(context.Background(), q, opts...)
}

// QueryReportContext runs a query under ctx and additionally returns the
// execution metrics of the underlying MapReduce job.
//
// Serving path: the first query seals the engine (under the engine
// mutex); every later query runs lock-free against the published
// snapshot — the sealed base plus any in-memory delta of appended
// records — consults the query cache (a repeated query returns the
// cached report, marked with the spq.cache.hit counter, without running
// a job), and draws its map/reduce tasks from the cluster-shared
// admission pools, so concurrent queries share the configured slots
// fairly instead of oversubscribing the machine.
//
// Errors wrap the sentinels of errors.go: a malformed query returns
// ErrInvalidQuery without executing anything, a query after Close returns
// ErrClosed, and a canceled or expired ctx returns ErrCanceled (also
// matching the context's own error under errors.Is).
func (e *Engine) QueryReportContext(ctx context.Context, q Query, opts ...QueryOption) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := e.beginQuery(); err != nil {
		return nil, err
	}
	defer e.endQuery()
	if ctx.Err() != nil {
		return nil, canceledErr(ctx)
	}
	rep, err := e.queryReport(ctx, q, opts)
	if err != nil && ctx.Err() != nil {
		// Cancellation outranks whatever proximate error the teardown
		// produced; the caller asked for exactly this outcome.
		return nil, canceledErr(ctx)
	}
	return rep, err
}

// queryReport is the query execution path behind QueryReportContext.
func (e *Engine) queryReport(ctx context.Context, q Query, opts []QueryOption) (*Report, error) {
	if err := validateQuery(q); err != nil {
		return nil, err
	}
	if e.execErr != nil {
		return nil, e.execErr
	}
	cfg := queryConfig{alg: core.ESPQSco}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.gridSet && cfg.gridN <= 0 {
		return nil, fmt.Errorf("%w: grid size %d, must be positive", ErrInvalidQuery, cfg.gridN)
	}
	if cfg.sealGridSet && cfg.sealGridN <= 0 {
		return nil, fmt.Errorf("%w: seal grid size %d, must be positive", ErrInvalidQuery, cfg.sealGridN)
	}
	effective := cfg.effectiveOptions(e.cache != nil)

	// Baseline DFS fault/repair activity: the delta accumulated while this
	// query runs (failovers, quarantines, read repairs, ...) is surfaced on
	// the report as spq.fault.* / spq.dfs.repair.* counters.
	fault0 := e.fs.FaultStats()

	snap, err := e.snapshotFor(cfg.sealGridN)
	if err != nil {
		return nil, err
	}

	var key string
	if e.cache != nil && !cfg.noCache {
		key = cacheKey(snap.gen, q, &cfg)
		if rep, ok := e.cache.get(key); ok {
			return rep, nil
		}
	}

	bounds := snap.bounds
	if cfg.bounds != nil {
		bounds = *cfg.bounds
	}
	// A degenerate bounding box (single point or a line of objects) still
	// needs a two-dimensional grid; pad it.
	if bounds.Width() == 0 || bounds.Height() == 0 {
		pad := q.Radius
		if pad == 0 {
			pad = 1
		}
		bounds = bounds.Expand(pad)
	}
	// The delta participating in this query: records appended after the
	// base generation sealed, unless the caller opted out.
	delta := snap.delta
	if cfg.noDelta {
		delta = nil
	}
	deltaStats := &DeltaStats{Generation: snap.gen}
	if delta != nil {
		deltaStats.Records = int64(len(delta.objs))
		deltaStats.RecordsSelected = deltaStats.Records
	}
	gridN := cfg.gridN
	reducers := cfg.reducers
	files := snap.manifest.Files()
	// Columnar storage reads a block selection rather than whole files:
	// everything by default, narrowed by the planner below. Data and
	// feature selections stay separate so delta-free queries can route the
	// data half through the cached per-grid view instead of the shuffle.
	columnar := data.IsColumnar(snap.manifest.Format) && e.viewCache != nil
	var colsData, colsFeat []data.ColSel
	if columnar {
		colsData = selectCells(snap.manifest.Data, nil)
		colsFeat = selectCells(snap.manifest.Features, nil)
	}
	var deltaSrc mapreduce.Source[data.Object]
	if delta != nil && !cfg.autoPlan {
		// Unplanned queries read the whole delta in append order; planned
		// queries build their source from the surviving delta cells below.
		deltaSrc = mapreduce.NewMemorySource(delta.objs, e.cfg.MapSlots*2)
	}
	var planStats *PlanStats
	extraCounters := deltaCounters(nil, deltaStats)
	priority := false
	if cfg.autoPlan {
		var view *deltaView
		var deltaData, deltaFeatures []data.CellStats
		if delta != nil {
			// Partition the delta over the manifest's seal grid (lazily,
			// once per snapshot) so its cells prune like sealed ones.
			view = delta.buildView(snap.manifest, e.dict)
			deltaData, deltaFeatures = view.dataCells, view.featureCells
		}
		dec := plan.PlanGenerations(snap.manifest, deltaData, deltaFeatures, plan.Input{
			Radius:      q.Radius,
			Keywords:    q.Keywords,
			ReduceSlots: e.cfg.ReduceSlots,
			GridN:       cfg.gridN,
			NumReducers: cfg.reducers,
		})
		files = dec.Files
		if columnar {
			colsData = selectCells(dec.Data, dec.Blocks)
			colsFeat = selectCells(dec.Features, dec.Blocks)
		}
		gridN = dec.GridN
		reducers = dec.NumReducers
		deltaStats.Cells = dec.Stats.DeltaCells
		deltaStats.CellsPruned = dec.Stats.DeltaCellsPruned
		deltaStats.RecordsSelected = dec.Stats.DeltaRecordsSelected
		extraCounters = deltaCounters(dec.Counters(), deltaStats)
		planStats = newPlanStats(dec)
		// A plan that proves the query cheap (it reads at most a quarter
		// of the stored records) earns the admission priority lane, so
		// selective queries are not stuck behind scan-heavy ones.
		priority = dec.Stats.RecordsTotal > 0 &&
			dec.Stats.RecordsSelected*4 <= dec.Stats.RecordsTotal
		if dec.Empty() {
			rep, err := e.emptyPlanReport(q, cfg, bounds, planStats, deltaStats, extraCounters)
			if err != nil {
				return nil, err
			}
			rep.Counters = addFaultCounters(rep.Counters, e.fs.FaultStats().Sub(fault0))
			rep.effective = effective
			return e.finishQuery(key, rep), nil
		}
		if view != nil && len(dec.DeltaData)+len(dec.DeltaFeatures) > 0 {
			sel := make([]string, 0, len(dec.DeltaData)+len(dec.DeltaFeatures))
			for _, cs := range dec.DeltaData {
				sel = append(sel, cs.File)
			}
			for _, cs := range dec.DeltaFeatures {
				sel = append(sel, cs.File)
			}
			deltaSrc = memoryChunks(view.ordered, view.layout, sel, e.cfg.MapSlots*2)
		}
	}
	if gridN <= 0 {
		gridN = defaultGridN
	}
	// Delta-free columnar queries take the data-view path: the sealed data
	// blocks become (or reuse) the dense per-grid layout, and the job
	// shuffles feature records only. With a delta visible the combined
	// source carries both kinds in-stream, exactly as before — appended
	// records cannot be in any sealed view. Distributed engines skip the
	// view as well: it is an in-process structure a worker cannot receive,
	// and shipping the job matters more than the shuffle savings.
	var view *core.DataView
	var segIO *data.SegIOStats
	cols := colsFeat
	if columnar {
		segIO = &data.SegIOStats{}
	}
	if columnar && delta == nil && e.exec == nil {
		v, err := e.dataView(snap, colsData, gridN, bounds, segIO)
		if err != nil {
			return nil, err
		}
		view = v
	} else {
		cols = append(append([]data.ColSel(nil), colsData...), colsFeat...)
	}
	cq := core.Query{K: q.K, Radius: q.Radius, Keywords: e.dict.InternAll(q.Keywords), Mode: q.Mode}
	// The columnar source gets the interned query keywords so SPQ3 blocks
	// can resolve the Map-phase keyword prune through their posting
	// dictionaries and skip irrelevant feature records wholesale.
	src := e.source(snap, files, cols, segIO, cq.Keywords)
	if deltaSrc != nil {
		src = mapreduce.Concat(src, deltaSrc)
	}
	var wire *core.WireInfo
	if e.exec != nil {
		wire = &core.WireInfo{DictLen: e.dict.Size(), Gen: snap.manifest.Generation}
	}
	rep, err := core.RunContext(ctx, cfg.alg, src, cq, core.Options{
		Cluster:       e.cluster,
		Bounds:        bounds,
		GridN:         gridN,
		NumReducers:   reducers,
		SpillEvery:    cfg.spillEvery,
		ExtraCounters: extraCounters,
		Priority:      priority,
		DataView:      view,
		Wire:          wire,
		MaxAttempts:   e.cfg.MaxAttempts,
		RetryBackoff:  e.cfg.RetryBackoff,
	})
	if err != nil {
		return nil, err
	}
	if segIO != nil {
		if rep.Counters == nil {
			rep.Counters = make(map[string]int64, 3)
		}
		// Accumulate (not overwrite): on distributed engines the workers'
		// own segment reads already rode the task counter deltas into
		// rep.Counters, and the master-side stats cover only what this
		// process read (split enumeration, delta scans).
		rep.Counters[CounterSegBytesRead] += segIO.BytesRead.Load()
		rep.Counters[CounterSegBytesDecoded] += segIO.BytesDecoded.Load()
		rep.Counters[CounterSegBytesSelected] = selBytes(colsData) + selBytes(colsFeat)
	}
	rep.Counters = addFaultCounters(rep.Counters, e.fs.FaultStats().Sub(fault0))
	return e.finishQuery(key, &Report{
		Algorithm:    rep.Algorithm,
		Results:      toResults(rep.Results),
		Counters:     rep.Counters,
		Plan:         planStats,
		Delta:        deltaStats,
		MapMillis:    float64(rep.Stats.MapDuration.Microseconds()) / 1000,
		ReduceMillis: float64(rep.Stats.ReduceDuration.Microseconds()) / 1000,
		TotalMillis:  float64(rep.Stats.Duration.Microseconds()) / 1000,
		effective:    effective,
	}), nil
}

// deltaCounters merges the spq.delta.* counters into base (the planner's
// counter map, or nil). They are emitted only when a delta was actually
// visible to the query, so delta-free executions keep their counter sets
// unchanged.
func deltaCounters(base map[string]int64, ds *DeltaStats) map[string]int64 {
	if ds.Records == 0 {
		return base
	}
	if base == nil {
		base = make(map[string]int64, 3)
	}
	base[CounterDeltaRecords] = ds.Records
	base[CounterDeltaRecordsSelected] = ds.RecordsSelected
	base[CounterDeltaCellsPruned] = int64(ds.CellsPruned)
	return base
}

// finishQuery stores an executed report in the query cache (when this
// query participates in caching) and marks it as a miss. The cache keeps
// its own copy, so the returned report is the caller's to mutate.
func (e *Engine) finishQuery(key string, rep *Report) *Report {
	if key == "" {
		return rep
	}
	e.cache.put(key, rep)
	if rep.Counters == nil {
		rep.Counters = make(map[string]int64, 1)
	}
	rep.Counters[CounterCacheMiss] = 1
	return rep
}

// CacheStats returns the cumulative hit/miss counts and current size of
// the query cache. All zeros when caching is disabled.
func (e *Engine) CacheStats() CacheStats {
	if e.cache == nil {
		return CacheStats{}
	}
	return e.cache.stats()
}

// emptyPlanReport handles a plan that proves the query returns nothing
// (every data or feature cell pruned): the MapReduce job is skipped
// entirely. The execution is still validated through the same core
// precondition check the executed path runs, so a query core.Run would
// reject fails identically whether or not the planner short-circuits.
func (e *Engine) emptyPlanReport(q Query, cfg queryConfig, bounds geo.Rect, planStats *PlanStats, deltaStats *DeltaStats, counters map[string]int64) (*Report, error) {
	cq := core.Query{K: q.K, Radius: q.Radius, Keywords: e.dict.InternAll(q.Keywords), Mode: q.Mode}
	if err := core.Validate(cfg.alg, cq, core.Options{Bounds: bounds}); err != nil {
		return nil, err
	}
	return &Report{
		Algorithm: cfg.alg,
		Counters:  counters,
		Plan:      planStats,
		Delta:     deltaStats,
	}, nil
}

// newPlanStats converts a planner decision into the public report form.
func newPlanStats(d *plan.Decision) *PlanStats {
	return &PlanStats{
		SealGridN:          d.Stats.SealGridN,
		DataCells:          d.Stats.DataCells,
		FeatureCells:       d.Stats.FeatureCells,
		DataCellsPruned:    d.Stats.DataCellsPruned,
		FeatureCellsPruned: d.Stats.FeatureCellsPruned,
		Blocks:             d.Stats.Blocks,
		BlocksPruned:       d.Stats.BlocksPruned,
		RecordsTotal:       d.Stats.RecordsTotal,
		RecordsSelected:    d.Stats.RecordsSelected,
		GridN:              d.GridN,
		NumReducers:        d.NumReducers,
	}
}

// selectCells builds the columnar read selection over one dataset's cells:
// every block when blocks is nil (the unplanned path), otherwise each
// cell's surviving block indices from the planner decision.
func selectCells(cells []data.CellStats, blocks map[string][]int) []data.ColSel {
	out := make([]data.ColSel, 0, len(cells))
	for _, cs := range cells {
		sel := data.ColSel{Cell: cs}
		if blocks != nil {
			sel.Blocks = blocks[cs.File]
		}
		out = append(out, sel)
	}
	return out
}

// dataView returns the cached per-grid data view for this generation,
// grid and pruned data-block selection, building it from the (segment-
// cache-resident) data blocks on first use. Concurrent cold queries for
// the same view — every in-flight client right after a compaction —
// share one build.
func (e *Engine) dataView(s *snapshot, dataSel []data.ColSel, gridN int, bounds geo.Rect, io *data.SegIOStats) (*core.DataView, error) {
	key := core.ViewKey(s.manifest.Generation, gridN, bounds, dataSel)
	build := func() (*core.DataView, error) {
		g := grid.New(bounds, gridN, gridN)
		in := data.NewColInput(e.fs, dataSel, e.segCache, s.manifest.Generation)
		in.IO = io
		return core.BuildDataView(g, in)
	}
	// View builds run outside the MapReduce task retry loop, so they get
	// their own attempt budget against transient injected read errors.
	// Failed builds are never cached, so each attempt re-reads the blocks.
	var v *core.DataView
	var err error
	for attempt := 1; ; attempt++ {
		v, err = e.viewCache.GetOrBuild(key, build)
		if err == nil || attempt >= e.cfg.MaxAttempts {
			return v, err
		}
		var re *dfs.ReplicaError
		if !errors.As(err, &re) || !re.IsTransient() {
			return v, err
		}
	}
}

// selBytes sums the stored (compressed) frame bytes of a block selection:
// the deterministic spq.seg.bytes.selected counter. Unlike bytes.read it
// does not depend on segment-cache warmth, so two segment formats can be
// compared byte-for-byte even when every read is a cache hit.
func selBytes(sels []data.ColSel) int64 {
	var n int64
	for _, sel := range sels {
		if sel.Blocks == nil {
			for _, bs := range sel.Cell.Blocks {
				n += int64(bs.Length)
			}
			continue
		}
		for _, i := range sel.Blocks {
			n += int64(sel.Cell.Blocks[i].Length)
		}
	}
	return n
}

// SegmentCacheStats returns the cumulative hit/miss counts and current
// size of the decoded-segment cache. All zeros when the engine's storage
// mode does not use one, or when Config.SegmentCache disabled it.
func (e *Engine) SegmentCacheStats() data.BlockCacheStats {
	return e.segCache.Stats()
}
