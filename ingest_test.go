package spq

// Tests for generational ingestion: append-after-seal into the in-memory
// delta, compaction into fresh storage generations, and the interaction
// with the query cache and the planner.

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// ingestWorkload deterministically generates n data objects and n features
// over the unit square with keywords from a small vocabulary, so queries
// built from the vocabulary are guaranteed to match.
func ingestWorkload(n int, seed int64) ([]DataObject, []Feature) {
	vocab := []string{
		"espresso", "bakery", "ramen", "tapas", "vegan", "sushi",
		"rooftop", "brunch", "wine", "late", "cheap", "gourmet",
	}
	r := rand.New(rand.NewSource(seed))
	dataObjs := make([]DataObject, n)
	feats := make([]Feature, n)
	for i := 0; i < n; i++ {
		dataObjs[i] = DataObject{ID: uint64(i + 1), X: r.Float64(), Y: r.Float64()}
		kws := make([]string, 1+r.Intn(3))
		for j := range kws {
			kws[j] = vocab[r.Intn(len(vocab))]
		}
		feats[i] = Feature{ID: uint64(i + 1), X: r.Float64(), Y: r.Float64(), Keywords: kws}
	}
	return dataObjs, feats
}

// featureLines renders features in the LoadLines text format.
func featureLines(feats []Feature) string {
	var b strings.Builder
	for _, f := range feats {
		fmt.Fprintf(&b, "F\t%d\t%g\t%g\t%s\n", f.ID, f.X, f.Y, strings.Join(f.Keywords, ","))
	}
	return b.String()
}

// TestIngestEquivalenceProperty is the lifecycle property of the PR:
// results are identical whether records are loaded pre-seal in one batch
// or appended across N generations with compactions interleaved, for every
// algorithm and storage mode, with and without the planner.
func TestIngestEquivalenceProperty(t *testing.T) {
	const n = 400
	dataObjs, feats := ingestWorkload(n, 42)
	queries := []Query{
		{K: 10, Radius: 0.08, Keywords: []string{"espresso", "brunch"}},
		{K: 25, Radius: 0.15, Keywords: []string{"sushi"}},
		{K: 5, Radius: 0.03, Keywords: []string{"vegan", "wine", "cheap"}},
	}
	for _, storage := range []Storage{StorageDFS, StorageMemory, StorageDFSBinary} {
		cfg := Config{Storage: storage, Nodes: 4, BlockSize: 8 << 10, Seed: 3}

		// Engine A: everything loaded pre-seal, one batch, one generation.
		batch := NewEngine(cfg)
		if err := batch.AddData(dataObjs...); err != nil {
			t.Fatal(err)
		}
		if err := batch.AddFeature(feats...); err != nil {
			t.Fatal(err)
		}
		if err := batch.Seal(); err != nil {
			t.Fatal(err)
		}

		// Engine B: half the records sealed as the base, the rest appended
		// across several generations — via AddData, AddFeature and
		// LoadLines — with a compaction in the middle and a tail left
		// uncompacted in the delta.
		inc := NewEngine(cfg)
		half := n / 2
		if err := inc.AddData(dataObjs[:half]...); err != nil {
			t.Fatal(err)
		}
		if err := inc.AddFeature(feats[:half]...); err != nil {
			t.Fatal(err)
		}
		if err := inc.Seal(); err != nil {
			t.Fatal(err)
		}
		quarter := half + n/4
		if err := inc.AddData(dataObjs[half:quarter]...); err != nil {
			t.Fatal(err)
		}
		if err := inc.AddFeature(feats[half:quarter]...); err != nil {
			t.Fatal(err)
		}
		if err := inc.Compact(); err != nil {
			t.Fatal(err)
		}
		if d := inc.DeltaLen(); d != 0 {
			t.Fatalf("storage %d: DeltaLen = %d after Compact, want 0", storage, d)
		}
		if err := inc.AddData(dataObjs[quarter:]...); err != nil {
			t.Fatal(err)
		}
		if err := inc.LoadLines(strings.NewReader(featureLines(feats[quarter:]))); err != nil {
			t.Fatal(err)
		}
		if d := inc.DeltaLen(); d == 0 {
			t.Fatalf("storage %d: tail appends not in delta", storage)
		}
		if nd, nf := inc.Len(); nd != n || nf != n {
			t.Fatalf("storage %d: Len = %d, %d, want %d, %d", storage, nd, nf, n, n)
		}

		for _, alg := range Algorithms() {
			for _, planned := range []bool{false, true} {
				for qi, q := range queries {
					opts := []QueryOption{WithAlgorithm(alg), WithoutCache()}
					if planned {
						opts = append(opts, WithAutoPlan())
					}
					want, err := batch.Query(q, opts...)
					if err != nil {
						t.Fatalf("storage %d %v planned=%t q%d batch: %v", storage, alg, planned, qi, err)
					}
					got, err := inc.Query(q, opts...)
					if err != nil {
						t.Fatalf("storage %d %v planned=%t q%d incremental: %v", storage, alg, planned, qi, err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Errorf("storage %d %v planned=%t q%d: incremental results differ\n got %v\nwant %v",
							storage, alg, planned, qi, got, want)
					}
				}
			}
		}
	}
}

// TestAppendWhileQueryRace hammers one sealed engine with concurrent
// appenders and queriers (run under -race this proves the snapshot/delta
// publication race-clean). Every query must succeed against a consistent
// snapshot: errors and duplicate result ids are both failures.
func TestAppendWhileQueryRace(t *testing.T) {
	const base, batches, perBatch, queriers, rounds = 800, 16, 20, 4, 8
	dataObjs, feats := ingestWorkload(base+batches*perBatch, 7)
	e := NewEngine(Config{Storage: StorageMemory, CompactAfter: -1})
	if err := e.AddData(dataObjs[:base]...); err != nil {
		t.Fatal(err)
	}
	if err := e.AddFeature(feats[:base]...); err != nil {
		t.Fatal(err)
	}
	if err := e.Seal(); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make([]error, queriers+1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for b := 0; b < batches; b++ {
			lo, hi := base+b*perBatch, base+(b+1)*perBatch
			if err := e.AddData(dataObjs[lo:hi]...); err != nil {
				errs[queriers] = err
				return
			}
			if err := e.AddFeature(feats[lo:hi]...); err != nil {
				errs[queriers] = err
				return
			}
			if b == batches/2 {
				// One compaction mid-stream: queries in flight must finish
				// on their old snapshot while the swap happens.
				if err := e.Compact(); err != nil {
					errs[queriers] = err
					return
				}
			}
		}
	}()
	for g := 0; g < queriers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				q := Query{K: 20, Radius: 0.05 + float64(g)*0.01, Keywords: []string{"ramen", "tapas"}}
				res, err := e.Query(q, WithAutoPlan())
				if err != nil {
					errs[g] = err
					return
				}
				seen := make(map[uint64]bool, len(res))
				for _, it := range res {
					if seen[it.ID] {
						errs[g] = fmt.Errorf("round %d: id %d twice in top-k", r, it.ID)
						return
					}
					seen[it.ID] = true
				}
			}
		}(g)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("goroutine %d: %v", i, err)
		}
	}

	// After the writer finishes, a final compaction folds the tail in and
	// queries serve the complete dataset.
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	if d := e.DeltaLen(); d != 0 {
		t.Errorf("DeltaLen = %d after final Compact", d)
	}
	if nd, nf := e.Len(); nd != len(dataObjs) || nf != len(feats) {
		t.Errorf("Len = %d, %d, want %d, %d", nd, nf, len(dataObjs), len(feats))
	}
	if total := e.Manifest().TotalRecords(); total != int64(len(dataObjs)+len(feats)) {
		t.Errorf("manifest records = %d, want %d", total, len(dataObjs)+len(feats))
	}
}

// TestCacheNeverServesStaleGeneration: a cached report from before an
// append must not satisfy the same query afterwards — the appended record
// has to show up.
func TestCacheNeverServesStaleGeneration(t *testing.T) {
	e := loadPaperExample(t, Config{Storage: StorageMemory})
	q := Query{K: 3, Radius: 1.5, Keywords: []string{"italian"}}
	first, err := e.QueryReport(q)
	if err != nil {
		t.Fatal(err)
	}
	repeat, err := e.QueryReport(q)
	if err != nil {
		t.Fatal(err)
	}
	if repeat.Counters[CounterCacheHit] != 1 {
		t.Fatalf("repeat before append not cached: %v", repeat.Counters)
	}

	// A new hotel right next to the italian restaurant f4 must land in the
	// top-k of the repeated query.
	if err := e.AddData(DataObject{ID: 50, X: 3.8, Y: 5.4}); err != nil {
		t.Fatal(err)
	}
	after, err := e.QueryReport(q)
	if err != nil {
		t.Fatal(err)
	}
	if after.Counters[CounterCacheHit] == 1 {
		t.Error("query after append served from the stale cache entry")
	}
	found := false
	for _, r := range after.Results {
		if r.ID == 50 {
			found = true
		}
	}
	if !found {
		t.Errorf("appended object missing from results: %v (before: %v)", after.Results, first.Results)
	}
	if after.Delta == nil || after.Delta.Records != 1 {
		t.Errorf("Report.Delta = %+v, want 1 visible delta record", after.Delta)
	}
	if after.Delta.Generation <= first.Delta.Generation {
		t.Errorf("generation did not advance: %d -> %d", first.Delta.Generation, after.Delta.Generation)
	}

	// The new entry is cached under the new generation.
	hot, err := e.QueryReport(q)
	if err != nil {
		t.Fatal(err)
	}
	if hot.Counters[CounterCacheHit] != 1 {
		t.Errorf("repeat after append not cached under new generation: %v", hot.Counters)
	}
	if !reflect.DeepEqual(hot.Results, after.Results) {
		t.Errorf("cached post-append results differ: %v vs %v", hot.Results, after.Results)
	}
}

// TestAutoCompaction: Config.CompactAfter folds the delta into a new
// sealed generation automatically; a negative threshold disables it.
func TestAutoCompaction(t *testing.T) {
	dataObjs, feats := ingestWorkload(40, 11)
	e := NewEngine(Config{Storage: StorageMemory, CompactAfter: 10})
	if err := e.AddData(dataObjs[:20]...); err != nil {
		t.Fatal(err)
	}
	if err := e.AddFeature(feats[:20]...); err != nil {
		t.Fatal(err)
	}
	if err := e.Seal(); err != nil {
		t.Fatal(err)
	}
	gen := e.Generation()
	// 12 appended records cross the threshold of 10: the batch commits and
	// immediately compacts.
	if err := e.AddData(dataObjs[20:32]...); err != nil {
		t.Fatal(err)
	}
	if d := e.DeltaLen(); d != 0 {
		t.Errorf("DeltaLen = %d after auto-compaction, want 0", d)
	}
	man := e.Manifest()
	if man.TotalRecords() != 52 {
		t.Errorf("manifest records = %d, want 52", man.TotalRecords())
	}
	if man.Generation != e.Generation() {
		t.Errorf("manifest generation %d != engine generation %d", man.Generation, e.Generation())
	}
	if e.Generation() <= gen {
		t.Errorf("generation did not advance across auto-compaction: %d", e.Generation())
	}
	// Below the threshold the delta stays in memory.
	if err := e.AddData(dataObjs[32:37]...); err != nil {
		t.Fatal(err)
	}
	if d := e.DeltaLen(); d != 5 {
		t.Errorf("DeltaLen = %d, want 5 (below threshold)", d)
	}

	// CompactAfter < 0 disables auto-compaction entirely.
	e2 := NewEngine(Config{Storage: StorageMemory, CompactAfter: -1})
	if err := e2.AddData(dataObjs[:20]...); err != nil {
		t.Fatal(err)
	}
	if err := e2.AddFeature(feats[:20]...); err != nil {
		t.Fatal(err)
	}
	if err := e2.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := e2.AddData(dataObjs[20:]...); err != nil {
		t.Fatal(err)
	}
	if d := e2.DeltaLen(); d != 20 {
		t.Errorf("DeltaLen = %d with auto-compaction disabled, want 20", d)
	}
}

// TestCompactSemantics: Compact is a no-op on an empty delta and performs
// the first seal on an unsealed engine.
func TestCompactSemantics(t *testing.T) {
	e := loadPaperExample(t, Config{Storage: StorageMemory})
	if err := e.Compact(); err != nil {
		t.Fatalf("Compact on unsealed engine: %v", err)
	}
	if e.Manifest() == nil {
		t.Fatal("Compact did not seal the unsealed engine")
	}
	gen := e.Generation()
	if err := e.Compact(); err != nil {
		t.Fatalf("Compact with empty delta: %v", err)
	}
	if e.Generation() != gen {
		t.Error("no-op Compact bumped the generation")
	}
}

// TestWithoutDelta: the option restricts a query to the sealed base and is
// cached separately from the delta-inclusive execution.
func TestWithoutDelta(t *testing.T) {
	e := loadPaperExample(t, Config{Storage: StorageMemory})
	if err := e.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := e.AddData(DataObject{ID: 50, X: 3.8, Y: 5.4}); err != nil {
		t.Fatal(err)
	}
	q := Query{K: 3, Radius: 1.5, Keywords: []string{"italian"}}
	withDelta, err := e.QueryReport(q)
	if err != nil {
		t.Fatal(err)
	}
	baseOnly, err := e.QueryReport(q, WithoutDelta())
	if err != nil {
		t.Fatal(err)
	}
	if baseOnly.Counters[CounterCacheHit] == 1 {
		t.Error("WithoutDelta served the delta-inclusive cache entry")
	}
	for _, r := range baseOnly.Results {
		if r.ID == 50 {
			t.Error("WithoutDelta results contain a delta record")
		}
	}
	found := false
	for _, r := range withDelta.Results {
		if r.ID == 50 {
			found = true
		}
	}
	if !found {
		t.Errorf("delta-inclusive results missing the appended record: %v", withDelta.Results)
	}
	if baseOnly.Delta == nil || baseOnly.Delta.Records != 0 {
		t.Errorf("WithoutDelta Report.Delta = %+v, want 0 records", baseOnly.Delta)
	}
	if got := withDelta.Counters[CounterDeltaRecords]; got != 1 {
		t.Errorf("%s = %d, want 1", CounterDeltaRecords, got)
	}
}

// TestDeltaPlannerCounters: a planned query over a sealed base plus a far
// appended cluster reports delta cell pruning when the query can only
// touch one side.
func TestDeltaPlannerCounters(t *testing.T) {
	dataObjs, feats := ingestWorkload(100, 23)
	e := NewEngine(Config{Storage: StorageMemory, CompactAfter: -1})
	if err := e.AddData(dataObjs...); err != nil {
		t.Fatal(err)
	}
	if err := e.AddFeature(feats...); err != nil {
		t.Fatal(err)
	}
	if err := e.Seal(); err != nil {
		t.Fatal(err)
	}
	// Appended records far outside the unit square, in opposite corners: a
	// small-radius query can reach neither the lone data object (no
	// feature cell within the radius) nor the lone feature (no data cell
	// within reach), so the planner must prune both delta cells.
	if err := e.AddData(DataObject{ID: 9001, X: 50, Y: 50}); err != nil {
		t.Fatal(err)
	}
	if err := e.AddFeature(Feature{ID: 9001, X: -50, Y: -50, Keywords: []string{"espresso"}}); err != nil {
		t.Fatal(err)
	}
	rep, err := e.QueryReport(Query{K: 5, Radius: 0.05, Keywords: []string{"espresso"}}, WithAutoPlan(), WithoutCache())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Delta == nil || rep.Delta.Records != 2 {
		t.Fatalf("Report.Delta = %+v, want 2 visible delta records", rep.Delta)
	}
	if rep.Delta.Cells == 0 {
		t.Error("planned query did not partition the delta")
	}
	if rep.Delta.CellsPruned != rep.Delta.Cells {
		t.Errorf("delta cells pruned = %d of %d, want all (cluster unreachable)",
			rep.Delta.CellsPruned, rep.Delta.Cells)
	}
	if rep.Delta.RecordsSelected != 0 {
		t.Errorf("delta records selected = %d, want 0", rep.Delta.RecordsSelected)
	}
	if got := rep.Counters[CounterDeltaCellsPruned]; got != int64(rep.Delta.CellsPruned) {
		t.Errorf("%s = %d, want %d", CounterDeltaCellsPruned, got, rep.Delta.CellsPruned)
	}
	// A later append can make the far data object reachable: with a
	// perfectly matching feature next to it, the delta cells survive the
	// plan and the object is served.
	if err := e.AddFeature(Feature{ID: 9002, X: 50.001, Y: 50, Keywords: []string{"espresso"}}); err != nil {
		t.Fatal(err)
	}
	res, err := e.Query(Query{K: 200, Radius: 0.05, Keywords: []string{"espresso"}},
		WithAutoPlan(), WithoutCache())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range res {
		if r.ID == 9001 {
			found = true
		}
	}
	if !found {
		t.Errorf("appended far object not served after its feature arrived: %v", res)
	}
}
