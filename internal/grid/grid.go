// Package grid implements the query-time uniform grid partitioning of
// Section 4.1 of the paper: the data space is split into R = Nx*Ny regular
// cells, every object is assigned to its enclosing cell, and feature
// objects are additionally duplicated to every neighboring cell Ci with
// MINDIST(f, Ci) <= r (Lemma 1) so each cell becomes an independent work
// unit.
//
// The package also implements the analytical results of Section 6: the
// expected duplication factor df = πr²/a² + 4r/a + 1 for uniformly
// distributed feature objects (Section 6.2) and the per-reducer cost model
// df·a⁴ used to analyze the choice of cell size (Section 6.3).
package grid

import (
	"fmt"
	"math"

	"spq/internal/geo"
)

// CellID identifies a grid cell. Cells are numbered row-major starting at 0
// for the cell containing the minimum corner of the bounds, matching the
// numbering of Figure 2 in the paper (left-to-right, bottom-to-top).
type CellID int32

// Grid is a regular uniform grid over a bounding rectangle. Create one with
// New. A Grid is immutable and safe for concurrent use.type
type Grid struct {
	bounds geo.Rect
	nx, ny int
	cw, ch float64 // cell width and height
}

// New returns an nx-by-ny grid over bounds. It panics if nx or ny is not
// positive or bounds is degenerate, since a malformed grid is a programming
// error rather than a runtime condition.
func New(bounds geo.Rect, nx, ny int) *Grid {
	if nx <= 0 || ny <= 0 {
		panic(fmt.Sprintf("grid: non-positive dimensions %dx%d", nx, ny))
	}
	if bounds.Empty() || bounds.Width() == 0 || bounds.Height() == 0 {
		panic(fmt.Sprintf("grid: degenerate bounds %v", bounds))
	}
	return &Grid{
		bounds: bounds,
		nx:     nx,
		ny:     ny,
		cw:     bounds.Width() / float64(nx),
		ch:     bounds.Height() / float64(ny),
	}
}

// NewSquare returns an n-by-n grid over the unit square [0,1]x[0,1], the
// configuration used throughout the paper's experiments ("grid size 50"
// means 50x50).
func NewSquare(n int) *Grid {
	return New(geo.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, n, n)
}

// Bounds returns the grid's bounding rectangle.
func (g *Grid) Bounds() geo.Rect { return g.bounds }

// Dims returns the number of columns and rows.
func (g *Grid) Dims() (nx, ny int) { return g.nx, g.ny }

// NumCells returns the total number of cells R.
func (g *Grid) NumCells() int { return g.nx * g.ny }

// CellWidth returns the edge length of a cell along x (the paper's α for
// square cells).
func (g *Grid) CellWidth() float64 { return g.cw }

// CellHeight returns the edge length of a cell along y.
func (g *Grid) CellHeight() float64 { return g.ch }

// String implements fmt.Stringer.
func (g *Grid) String() string {
	return fmt.Sprintf("grid %dx%d over %v", g.nx, g.ny, g.bounds)
}

// clampIdx clamps i into [0, n-1].
func clampIdx(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// colRow returns the column and row of the cell enclosing p. Points outside
// the bounds are clamped to the nearest boundary cell so that every object
// is assigned to exactly one cell even in the presence of floating-point
// drift at the edges.
func (g *Grid) colRow(p geo.Point) (col, row int) {
	col = clampIdx(int((p.X-g.bounds.MinX)/g.cw), g.nx)
	row = clampIdx(int((p.Y-g.bounds.MinY)/g.ch), g.ny)
	return col, row
}

// CellOf returns the id of the cell enclosing p.
func (g *Grid) CellOf(p geo.Point) CellID {
	col, row := g.colRow(p)
	return g.id(col, row)
}

func (g *Grid) id(col, row int) CellID { return CellID(row*g.nx + col) }

// ColRow returns the column and row of cell c.
func (g *Grid) ColRow(c CellID) (col, row int) {
	return int(c) % g.nx, int(c) / g.nx
}

// Valid reports whether c identifies a cell of this grid.
func (g *Grid) Valid(c CellID) bool {
	return c >= 0 && int(c) < g.NumCells()
}

// CellRect returns the closed rectangle covered by cell c. The last row and
// column absorb any floating-point remainder so that the union of all cell
// rects is exactly the grid bounds.
func (g *Grid) CellRect(c CellID) geo.Rect {
	col, row := g.ColRow(c)
	r := geo.Rect{
		MinX: g.bounds.MinX + float64(col)*g.cw,
		MinY: g.bounds.MinY + float64(row)*g.ch,
		MaxX: g.bounds.MinX + float64(col+1)*g.cw,
		MaxY: g.bounds.MinY + float64(row+1)*g.ch,
	}
	if col == g.nx-1 {
		r.MaxX = g.bounds.MaxX
	}
	if row == g.ny-1 {
		r.MaxY = g.bounds.MaxY
	}
	return r
}

// DuplicationTargets appends to dst the ids of every cell other than f's
// enclosing cell whose MINDIST to f is at most radius — the exact set of
// cells Lemma 1 requires the feature object f to be duplicated to. The
// enclosing cell itself is not included. dst is returned to allow reuse of
// the backing array across calls on hot paths.
//
// Only the cells within ceil(radius/cellEdge) rings of the enclosing cell
// are inspected, so the cost is O((radius/α)²) rather than O(R).
func (g *Grid) DuplicationTargets(f geo.Point, radius float64, dst []CellID) []CellID {
	if radius < 0 {
		return dst
	}
	col, row := g.colRow(f)
	dx := int(math.Ceil(radius / g.cw))
	dy := int(math.Ceil(radius / g.ch))
	r2 := radius * radius
	for cr := row - dy; cr <= row+dy; cr++ {
		if cr < 0 || cr >= g.ny {
			continue
		}
		for cc := col - dx; cc <= col+dx; cc++ {
			if cc < 0 || cc >= g.nx {
				continue
			}
			if cc == col && cr == row {
				continue
			}
			c := g.id(cc, cr)
			if geo.MinDist2(f, g.CellRect(c)) <= r2 {
				dst = append(dst, c)
			}
		}
	}
	return dst
}

// CellsWithinDist appends to dst the ids of every cell whose MINDIST to p
// is at most radius, including p's own cell. It is the cell-selection
// primitive used by the centralized grid-indexed baseline to find candidate
// feature cells around a data object.
func (g *Grid) CellsWithinDist(p geo.Point, radius float64, dst []CellID) []CellID {
	if radius < 0 {
		return dst
	}
	col, row := g.colRow(p)
	dx := int(math.Ceil(radius / g.cw))
	dy := int(math.Ceil(radius / g.ch))
	r2 := radius * radius
	for cr := row - dy; cr <= row+dy; cr++ {
		if cr < 0 || cr >= g.ny {
			continue
		}
		for cc := col - dx; cc <= col+dx; cc++ {
			if cc < 0 || cc >= g.nx {
				continue
			}
			c := g.id(cc, cr)
			if geo.MinDist2(p, g.CellRect(c)) <= r2 {
				dst = append(dst, c)
			}
		}
	}
	return dst
}

// DuplicationFactorModel returns the expected duplication factor of Section
// 6.2 for uniformly distributed feature objects:
//
//	df = πr²/α² + 4r/α + 1
//
// where α is the cell edge length and r the query radius. The model is
// derived under r <= α/2; for larger radii it is only an approximation and
// the measured factor should be used instead (see MeasureDuplication).
func DuplicationFactorModel(cellEdge, radius float64) float64 {
	if cellEdge <= 0 {
		return math.NaN()
	}
	ra := radius / cellEdge
	return math.Pi*ra*ra + 4*ra + 1
}

// MaxDuplicationFactorModel returns the worst-case model value 3 + π/4,
// reached at α = 2r (Section 6.2).
func MaxDuplicationFactorModel() float64 { return 3 + math.Pi/4 }

// ReducerCostModel returns the df·α⁴ cost proxy of Section 6.3 for a grid
// over the unit square: the per-reducer work |Oi|·|Fi| is proportional to
// df·α⁴ when the datasets are fixed, so smaller cells mean cheaper
// reducers (at the price of more of them and more duplication in total).
func ReducerCostModel(cellEdge, radius float64) float64 {
	a := cellEdge
	return DuplicationFactorModel(a, radius) * a * a * a * a
}

// AreaBreakdown returns the areas |A1|..|A4| of Figure 3 for a square cell
// of edge a and radius r (assuming r <= a/2): A1 is the corner region
// needing 3 duplicates, A2 the two-border region needing 2, A3 the single-
// border region needing 1, and A4 the interior needing none.
func AreaBreakdown(a, r float64) (a1, a2, a3, a4 float64) {
	a1 = math.Pi * r * r
	a2 = (4 - math.Pi) * r * r
	a3 = 4 * (a - 2*r) * r
	a4 = (a - 2*r) * (a - 2*r)
	return a1, a2, a3, a4
}

// MeasureDuplication returns the empirical duplication factor for a set of
// feature locations: (primary assignments + duplicates) / primary
// assignments. It is used by the tests and the df experiment to validate
// DuplicationFactorModel.
func (g *Grid) MeasureDuplication(features []geo.Point, radius float64) float64 {
	if len(features) == 0 {
		return math.NaN()
	}
	total := len(features)
	var scratch []CellID
	for _, f := range features {
		scratch = g.DuplicationTargets(f, radius, scratch[:0])
		total += len(scratch)
	}
	return float64(total) / float64(len(features))
}
