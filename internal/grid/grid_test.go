package grid

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"spq/internal/geo"
)

func TestCellOfCorners(t *testing.T) {
	g := NewSquare(4)
	tests := []struct {
		name string
		p    geo.Point
		want CellID
	}{
		{"min corner", geo.Point{X: 0, Y: 0}, 0},
		{"first cell interior", geo.Point{X: 0.1, Y: 0.1}, 0},
		{"second column", geo.Point{X: 0.3, Y: 0.1}, 1},
		{"second row", geo.Point{X: 0.1, Y: 0.3}, 4},
		{"max corner clamps", geo.Point{X: 1, Y: 1}, 15},
		{"outside clamps low", geo.Point{X: -5, Y: -5}, 0},
		{"outside clamps high", geo.Point{X: 5, Y: 5}, 15},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := g.CellOf(tt.p); got != tt.want {
				t.Errorf("CellOf(%v) = %d, want %d", tt.p, got, tt.want)
			}
		})
	}
}

// Reproduce the paper's Figure 2: a 4x4 grid over [0,10]x[0,10], r = 1.5.
// f7 = (3.0, 8.1) lies in the paper's cell 14 and must be duplicated to
// the paper's cells 9, 10 and 13. The paper numbers cells 1..16
// left-to-right bottom-to-top; our ids are the same minus one.
func TestPaperFigure2Duplication(t *testing.T) {
	g := New(geo.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}, 4, 4)
	f7 := geo.Point{X: 3.0, Y: 8.1}
	if got, want := g.CellOf(f7), CellID(13); got != want { // paper cell 14
		t.Fatalf("CellOf(f7) = %d, want %d", got, want)
	}
	got := g.DuplicationTargets(f7, 1.5, nil)
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	want := []CellID{8, 9, 12} // paper cells 9, 10, 13
	if len(got) != len(want) {
		t.Fatalf("DuplicationTargets = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DuplicationTargets = %v, want %v", got, want)
		}
	}
}

func TestCellRectTilesBounds(t *testing.T) {
	g := New(geo.Rect{MinX: -3, MinY: 2, MaxX: 9, MaxY: 5}, 5, 3)
	var area float64
	union := geo.Rect{MinX: 1, MaxX: 0} // empty
	for c := 0; c < g.NumCells(); c++ {
		r := g.CellRect(CellID(c))
		area += r.Area()
		union = union.Union(r)
	}
	if math.Abs(area-g.Bounds().Area()) > 1e-9 {
		t.Errorf("cell areas sum to %v, bounds area %v", area, g.Bounds().Area())
	}
	if union != g.Bounds() {
		t.Errorf("union of cells = %v, bounds %v", union, g.Bounds())
	}
}

func TestCellOfMatchesCellRect(t *testing.T) {
	g := New(geo.Rect{MinX: 0, MinY: 0, MaxX: 7, MaxY: 3}, 9, 4)
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		p := geo.Point{X: r.Float64() * 7, Y: r.Float64() * 3}
		c := g.CellOf(p)
		if !g.Valid(c) {
			t.Fatalf("invalid cell %d for %v", c, p)
		}
		if !g.CellRect(c).Contains(p) {
			t.Fatalf("CellRect(%d)=%v does not contain %v", c, g.CellRect(c), p)
		}
	}
}

func TestColRowRoundTrip(t *testing.T) {
	g := New(geo.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, 7, 5)
	for c := 0; c < g.NumCells(); c++ {
		col, row := g.ColRow(CellID(c))
		if got := g.id(col, row); got != CellID(c) {
			t.Fatalf("round trip failed for cell %d: col=%d row=%d -> %d", c, col, row, got)
		}
	}
}

// Lemma 1 coverage: for every data point p and feature f with d(p,f) <= r,
// f must land in p's cell either as primary or as duplicate.
func TestLemma1Coverage(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		n := 2 + r.Intn(12)
		g := NewSquare(n)
		radius := r.Float64() * 1.5 * g.CellWidth() // sometimes exceeds α/2, even α
		var data, feats []geo.Point
		for i := 0; i < 150; i++ {
			data = append(data, geo.Point{X: r.Float64(), Y: r.Float64()})
			feats = append(feats, geo.Point{X: r.Float64(), Y: r.Float64()})
		}
		// cells[f] = set of cells f is assigned to (primary + duplicates)
		assigned := make([]map[CellID]bool, len(feats))
		var scratch []CellID
		for i, f := range feats {
			m := map[CellID]bool{g.CellOf(f): true}
			scratch = g.DuplicationTargets(f, radius, scratch[:0])
			for _, c := range scratch {
				m[c] = true
			}
			assigned[i] = m
		}
		for _, p := range data {
			pc := g.CellOf(p)
			for i, f := range feats {
				if geo.Dist(p, f) <= radius && !assigned[i][pc] {
					t.Fatalf("grid %dx%d r=%v: feature %v within range of data %v (cell %d) but not assigned there",
						n, n, radius, f, p, pc)
				}
			}
		}
	}
}

// Duplication targets must be exactly the cells with MINDIST <= r
// (no false positives either), verified against a brute-force scan.
func TestDuplicationTargetsExact(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	g := NewSquare(8)
	for trial := 0; trial < 500; trial++ {
		f := geo.Point{X: r.Float64(), Y: r.Float64()}
		radius := r.Float64() * 0.3
		got := g.DuplicationTargets(f, radius, nil)
		gotSet := make(map[CellID]bool, len(got))
		for _, c := range got {
			if c == g.CellOf(f) {
				t.Fatalf("enclosing cell included in duplication targets")
			}
			if gotSet[c] {
				t.Fatalf("duplicate cell id %d in targets", c)
			}
			gotSet[c] = true
		}
		for c := 0; c < g.NumCells(); c++ {
			id := CellID(c)
			if id == g.CellOf(f) {
				continue
			}
			want := geo.MinDist2(f, g.CellRect(id)) <= radius*radius
			if gotSet[id] != want {
				t.Fatalf("cell %d: got %v want %v (f=%v r=%v)", id, gotSet[id], want, f, radius)
			}
		}
	}
}

func TestCellsWithinDistIncludesOwnCell(t *testing.T) {
	g := NewSquare(10)
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		p := geo.Point{X: r.Float64(), Y: r.Float64()}
		cells := g.CellsWithinDist(p, 0.05, nil)
		found := false
		for _, c := range cells {
			if c == g.CellOf(p) {
				found = true
			}
		}
		if !found {
			t.Fatalf("own cell missing for %v: %v", p, cells)
		}
	}
}

func TestAreaBreakdownSumsToCell(t *testing.T) {
	for _, c := range []struct{ a, r float64 }{{1, 0.1}, {1, 0.5}, {2, 0.3}, {10, 5}} {
		a1, a2, a3, a4 := AreaBreakdown(c.a, c.r)
		if sum := a1 + a2 + a3 + a4; math.Abs(sum-c.a*c.a) > 1e-9 {
			t.Errorf("a=%v r=%v: areas sum to %v, want %v", c.a, c.r, sum, c.a*c.a)
		}
	}
}

func TestDuplicationFactorModelValues(t *testing.T) {
	// df(α, 0) = 1: no duplication with zero radius.
	if got := DuplicationFactorModel(1, 0); got != 1 {
		t.Errorf("df(1,0) = %v, want 1", got)
	}
	// Worst case at α = 2r: 3 + π/4.
	if got, want := DuplicationFactorModel(2, 1), MaxDuplicationFactorModel(); math.Abs(got-want) > 1e-12 {
		t.Errorf("df(2,1) = %v, want %v", got, want)
	}
	// Monotone decreasing in α for fixed r.
	prev := math.Inf(1)
	for a := 0.2; a <= 5; a += 0.1 {
		df := DuplicationFactorModel(a, 0.1)
		if df > prev+1e-12 {
			t.Fatalf("df not decreasing in α at %v", a)
		}
		prev = df
	}
}

// Section 6.2 validation: measured duplication on uniform features matches
// the analytical model within a small relative error.
func TestMeasuredDuplicationMatchesModel(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for _, n := range []int{5, 10, 20} {
		g := NewSquare(n)
		// Sample features uniformly over the interior cells only: a feature
		// in a boundary cell has fewer on-grid neighbors to duplicate to, so
		// only the interior obeys the infinite-grid model of Section 6.2.
		lo, hi := g.CellWidth(), 1-g.CellWidth()
		feats := make([]geo.Point, 60000)
		for i := range feats {
			feats[i] = geo.Point{X: lo + r.Float64()*(hi-lo), Y: lo + r.Float64()*(hi-lo)}
		}
		for _, frac := range []float64{0.1, 0.25, 0.5} {
			radius := frac * g.CellWidth()
			got := g.MeasureDuplication(feats, radius)
			want := DuplicationFactorModel(g.CellWidth(), radius)
			if math.Abs(got-want) > 0.02*want {
				t.Errorf("grid %d frac %v: measured df %v vs model %v", n, frac, got, want)
			}
		}
	}
}

// Section 6.3: the df·α⁴ reducer-cost proxy must strictly increase with the
// cell size for fixed r.
func TestReducerCostModelIncreasesWithCellSize(t *testing.T) {
	const radius = 0.01
	prev := 0.0
	for a := 0.02; a <= 1.0; a += 0.02 {
		cost := ReducerCostModel(a, radius)
		if cost <= prev {
			t.Fatalf("cost model not increasing at α=%v: %v <= %v", a, cost, prev)
		}
		prev = cost
	}
}

func TestNewPanicsOnBadInput(t *testing.T) {
	assertPanics := func(name string, fn func()) {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		})
	}
	assertPanics("zero dims", func() { New(geo.Rect{MaxX: 1, MaxY: 1}, 0, 1) })
	assertPanics("neg dims", func() { New(geo.Rect{MaxX: 1, MaxY: 1}, 3, -1) })
	assertPanics("empty bounds", func() { New(geo.Rect{MinX: 1, MaxX: 0, MaxY: 1}, 2, 2) })
	assertPanics("degenerate bounds", func() { New(geo.Rect{MaxX: 0, MaxY: 1}, 2, 2) })
}

func TestDuplicationTargetsNegativeRadius(t *testing.T) {
	g := NewSquare(4)
	if got := g.DuplicationTargets(geo.Point{X: 0.5, Y: 0.5}, -1, nil); len(got) != 0 {
		t.Errorf("negative radius should yield no targets, got %v", got)
	}
}

func BenchmarkDuplicationTargets(b *testing.B) {
	g := NewSquare(100)
	p := geo.Point{X: 0.5001, Y: 0.5001}
	var dst []CellID
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dst = g.DuplicationTargets(p, 0.005, dst[:0])
	}
}
