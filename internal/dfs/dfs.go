// Package dfs implements a small in-process distributed file system
// modeled after HDFS as described in Section 2.1 of the paper: files are
// split into fixed-size blocks, blocks are stored on DataNodes with a
// configurable replication factor (default 3), and a NameNode tracks the
// mapping from files to blocks to replica locations.
//
// The file system is the storage substrate for the MapReduce engine in
// package mapreduce: input files are divided into splits (one per block),
// each split carries the hosts holding a replica so the scheduler can
// prefer local tasks, and reads transparently fail over to another replica
// when a DataNode is marked dead.
//
// Blocks live in memory. This keeps the simulation fast and deterministic
// while preserving the properties the algorithms above it can observe:
// block-granular placement, replication, locality and failure behaviour.
package dfs

import (
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
)

// castagnoli is the CRC32C polynomial table used for per-replica block
// checksums, matching HDFS's default block checksum algorithm.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// DefaultBlockSize is the block size used when Config.BlockSize is zero.
// The real HDFS default in the paper's cluster is 128 MiB; the simulation
// defaults to 256 KiB so that laptop-scale datasets still span many blocks
// and exercise split logic.
const DefaultBlockSize = 256 << 10

// DefaultReplication mirrors the paper's HDFS replication factor of 3.
const DefaultReplication = 3

// Common error conditions reported by the file system.
var (
	ErrNotFound      = errors.New("dfs: file not found")
	ErrExists        = errors.New("dfs: file already exists")
	ErrNoLiveReplica = errors.New("dfs: no live replica for block")
	ErrNoLiveNodes   = errors.New("dfs: no live datanodes")
)

// Config parameterizes a file system.
type Config struct {
	// NumNodes is the number of DataNodes; 0 means 16, the size of the
	// paper's cluster.
	NumNodes int
	// BlockSize is the maximum block payload size in bytes; 0 means
	// DefaultBlockSize.
	BlockSize int
	// Replication is the number of replicas per block (capped at the
	// number of nodes); 0 means DefaultReplication.
	Replication int
	// Seed feeds the placement policy's randomness. The same seed yields
	// the same placement for the same write sequence.
	Seed int64
	// Faults, when non-nil, installs a deterministic fault-injection
	// schedule (see FaultPlan). Nil means no injected faults.
	Faults *FaultPlan
}

func (c Config) withDefaults() Config {
	if c.NumNodes <= 0 {
		c.NumNodes = 16
	}
	if c.BlockSize <= 0 {
		c.BlockSize = DefaultBlockSize
	}
	if c.Replication <= 0 {
		c.Replication = DefaultReplication
	}
	if c.Replication > c.NumNodes {
		c.Replication = c.NumNodes
	}
	return c
}

// BlockID identifies a block cluster-wide.
type BlockID int64

// blockMeta is the NameNode's record of one block.
type blockMeta struct {
	id       BlockID
	length   int
	sum      uint32 // CRC32C of the payload, verified on every replica read
	replicas []int  // node indices
}

// fileMeta is the NameNode's record of one file.
type fileMeta struct {
	name   string
	blocks []blockMeta
	length int64
}

// replicaState classifies the outcome of asking one DataNode for a block.
type replicaState int

const (
	replicaOK          replicaState = iota
	replicaDead                     // node is marked dead
	replicaMissing                  // node is alive but has no copy
	replicaQuarantined              // copy failed a checksum and was fenced off
)

// dataNode stores block payloads for one simulated server.
type dataNode struct {
	mu     sync.RWMutex
	name   string
	alive  bool
	blocks map[BlockID][]byte
	bad    map[BlockID]bool // quarantined (checksum-failed) replicas
}

func (d *dataNode) get(id BlockID) ([]byte, replicaState) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if !d.alive {
		return nil, replicaDead
	}
	if d.bad[id] {
		return nil, replicaQuarantined
	}
	b, ok := d.blocks[id]
	if !ok {
		return nil, replicaMissing
	}
	return b, replicaOK
}

func (d *dataNode) put(id BlockID, payload []byte) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.blocks[id] = payload
	delete(d.bad, id)
}

// quarantine fences off a checksum-failed replica so later reads skip it.
// It reports whether the mark is new.
func (d *dataNode) quarantine(id BlockID) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.bad == nil {
		d.bad = make(map[BlockID]bool)
	}
	if d.bad[id] {
		return false
	}
	d.bad[id] = true
	return true
}

// drop removes a replica (payload and any quarantine mark).
func (d *dataNode) drop(id BlockID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.blocks, id)
	delete(d.bad, id)
}

// FileSystem is the combination of a NameNode and its DataNodes. It is safe
// for concurrent use.
type FileSystem struct {
	cfg    Config
	nodes  []*dataNode
	faults *FaultPlan

	mu      sync.RWMutex
	files   map[string]*fileMeta
	nextBlk BlockID
	rng     *rand.Rand

	// reads is the global block-read counter driving the fault plan's
	// deterministic schedules (transient errors, crash events).
	reads atomic.Int64
	// crashCursor indexes the first unapplied entry of faults.Crashes;
	// guarded by crashMu so each event fires exactly once.
	crashCursor atomic.Int64
	crashMu     sync.Mutex
	// failBudget counts replica read attempts against FailFirstReads.
	failBudget atomic.Int64

	stats faultCounters
}

// New creates a file system with the given configuration.
func New(cfg Config) *FileSystem {
	cfg = cfg.withDefaults()
	fs := &FileSystem{
		cfg:    cfg,
		faults: cfg.Faults.normalized(),
		files:  make(map[string]*fileMeta),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
	}
	for i := 0; i < cfg.NumNodes; i++ {
		fs.nodes = append(fs.nodes, &dataNode{
			name:   fmt.Sprintf("d%d", i+1),
			alive:  true,
			blocks: make(map[BlockID][]byte),
		})
	}
	return fs
}

// Config returns the (defaulted) configuration the file system runs with.
func (fs *FileSystem) Config() Config { return fs.cfg }

// NumNodes returns the number of DataNodes.
func (fs *FileSystem) NumNodes() int { return len(fs.nodes) }

// NodeName returns the host name of DataNode i ("d1".."dN").
func (fs *FileSystem) NodeName(i int) string { return fs.nodes[i].name }

// KillNode marks DataNode i dead: its replicas become unreadable until
// ReviveNode. Used by failure-injection tests.
func (fs *FileSystem) KillNode(i int) {
	fs.nodes[i].mu.Lock()
	fs.nodes[i].alive = false
	fs.nodes[i].mu.Unlock()
}

// ReviveNode marks DataNode i alive again.
func (fs *FileSystem) ReviveNode(i int) {
	fs.nodes[i].mu.Lock()
	fs.nodes[i].alive = true
	fs.nodes[i].mu.Unlock()
}

// liveNodes returns the indices of alive DataNodes.
func (fs *FileSystem) liveNodes() []int {
	var out []int
	for i, n := range fs.nodes {
		n.mu.RLock()
		if n.alive {
			out = append(out, i)
		}
		n.mu.RUnlock()
	}
	return out
}

// placeReplicas picks Replication distinct live nodes for a new block.
func (fs *FileSystem) placeReplicas() ([]int, error) {
	live := fs.liveNodes()
	if len(live) == 0 {
		return nil, ErrNoLiveNodes
	}
	k := fs.cfg.Replication
	if k > len(live) {
		k = len(live)
	}
	fs.rng.Shuffle(len(live), func(i, j int) { live[i], live[j] = live[j], live[i] })
	picked := append([]int(nil), live[:k]...)
	sort.Ints(picked)
	return picked, nil
}

// Create writes data as a new file, splitting it into blocks and placing
// replicas. It fails with ErrExists if the name is taken.
func (fs *FileSystem) Create(name string, data []byte) error {
	w, err := fs.Writer(name)
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		return err
	}
	return w.Close()
}

// Delete removes a file and drops its blocks from all replicas.
func (fs *FileSystem) Delete(name string) error {
	fs.mu.Lock()
	f, ok := fs.files[name]
	if ok {
		delete(fs.files, name)
	}
	fs.mu.Unlock()
	if !ok {
		return ErrNotFound
	}
	for _, b := range f.blocks {
		for _, ni := range b.replicas {
			fs.nodes[ni].drop(b.id)
		}
	}
	return nil
}

// Exists reports whether a file with the given name exists.
func (fs *FileSystem) Exists(name string) bool {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	_, ok := fs.files[name]
	return ok
}

// List returns the names of all files, sorted.
func (fs *FileSystem) List() []string {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	out := make([]string, 0, len(fs.files))
	for name := range fs.files {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Len returns the length of the named file in bytes.
func (fs *FileSystem) Len(name string) (int64, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	f, ok := fs.files[name]
	if !ok {
		return 0, ErrNotFound
	}
	return f.length, nil
}

// ReadAll returns the full contents of the named file, reading each block
// from any live replica.
func (fs *FileSystem) ReadAll(name string) ([]byte, error) {
	fs.mu.RLock()
	f, ok := fs.files[name]
	fs.mu.RUnlock()
	if !ok {
		return nil, ErrNotFound
	}
	out := make([]byte, 0, f.length)
	for i, b := range f.blocks {
		payload, err := fs.readBlock(name, i, b)
		if err != nil {
			return nil, err
		}
		out = append(out, payload...)
	}
	return out, nil
}

// ReplicaError reports a block read that found no usable replica, broken
// down by cause so chaos-test failures are diagnosable. It unwraps to
// ErrNoLiveReplica.
type ReplicaError struct {
	File      string
	Block     int     // block index within the file
	ID        BlockID // cluster-wide block id
	Dead      int     // replicas on dead DataNodes
	Missing   int     // replicas absent from their (live) DataNode
	Corrupted int     // replicas quarantined after a checksum mismatch
	Transient int     // replicas that failed with an injected transient error
}

func (e *ReplicaError) Error() string {
	return fmt.Sprintf(
		"dfs: no usable replica for block %d of %q (block id %d): %d on dead nodes, %d missing, %d quarantined corrupt, %d transient read error(s)",
		e.Block, e.File, e.ID, e.Dead, e.Missing, e.Corrupted, e.Transient)
}

func (e *ReplicaError) Unwrap() error { return ErrNoLiveReplica }

// IsTransient reports whether at least one replica failed only with an
// injected transient error, so a retry of the same read may succeed without
// any repair — even if other replicas are dead or gone for good.
func (e *ReplicaError) IsTransient() bool {
	return e.Transient > 0
}

// readBlock fetches a block payload, failing over across replicas. Every
// candidate payload is checksum-verified; a corrupt copy is quarantined and
// the read moves on to the next replica. When corruption was detected and a
// healthy copy found, the block is re-replicated inline (read repair).
func (fs *FileSystem) readBlock(file string, idx int, b blockMeta) ([]byte, error) {
	readIdx := fs.reads.Add(1)
	fs.applyCrashSchedule(readIdx)
	perr := &ReplicaError{File: file, Block: idx, ID: b.id}
	for _, ni := range b.replicas {
		payload, st := fs.nodes[ni].get(b.id)
		switch st {
		case replicaDead:
			perr.Dead++
			continue
		case replicaMissing:
			perr.Missing++
			continue
		case replicaQuarantined:
			perr.Corrupted++
			continue
		}
		if fs.transientReadError(readIdx, ni) {
			perr.Transient++
			fs.stats.transientErrors.Add(1)
			continue
		}
		if crc32.Checksum(payload, castagnoli) != b.sum {
			perr.Corrupted++
			fs.stats.corruptionsDetected.Add(1)
			if fs.nodes[ni].quarantine(b.id) {
				fs.stats.replicasQuarantined.Add(1)
			}
			continue
		}
		if perr.Dead+perr.Missing+perr.Corrupted+perr.Transient > 0 {
			fs.stats.failoverReads.Add(1)
		}
		if perr.Corrupted > 0 {
			// Read repair: a replica was just quarantined, so the block is
			// under-replicated; restore the factor from this healthy copy.
			fs.repairBlock(file, idx, payload, nil)
		}
		return payload, nil
	}
	return nil, perr
}

// BlockLocations returns, for each block of the file in order, the names of
// the DataNodes holding a replica.
func (fs *FileSystem) BlockLocations(name string) ([][]string, error) {
	fs.mu.RLock()
	f, ok := fs.files[name]
	fs.mu.RUnlock()
	if !ok {
		return nil, ErrNotFound
	}
	out := make([][]string, len(f.blocks))
	for i, b := range f.blocks {
		hosts := make([]string, len(b.replicas))
		for j, ni := range b.replicas {
			hosts[j] = fs.nodes[ni].name
		}
		out[i] = hosts
	}
	return out, nil
}

// Writer returns an io.WriteCloser that streams a new file into the file
// system, cutting blocks at the configured block size. The file becomes
// visible atomically on Close ("write-once" semantics, like HDFS).
func (fs *FileSystem) Writer(name string) (*Writer, error) {
	fs.mu.RLock()
	_, exists := fs.files[name]
	fs.mu.RUnlock()
	if exists {
		return nil, fmt.Errorf("%w: %s", ErrExists, name)
	}
	return &Writer{fs: fs, meta: &fileMeta{name: name}}, nil
}

// Writer streams data into a new file. Not safe for concurrent use.
type Writer struct {
	fs     *FileSystem
	meta   *fileMeta
	buf    []byte
	closed bool
}

// Write appends p to the file, flushing full blocks as they are cut. Per
// the io.Writer contract it returns the number of bytes of p accepted:
// bytes held in the writer's buffer count as accepted (a later Write or
// Close retries the flush), so on a flush failure the count covers
// everything consumed so far rather than claiming zero.
func (w *Writer) Write(p []byte) (int, error) {
	if w.closed {
		return 0, errors.New("dfs: write on closed writer")
	}
	bs := w.fs.cfg.BlockSize
	written := 0
	for len(p) > 0 {
		if len(w.buf) == bs {
			if err := w.flushBlock(w.buf); err != nil {
				return written, err
			}
			w.buf = w.buf[:0]
		}
		n := min(bs-len(w.buf), len(p))
		w.buf = append(w.buf, p[:n]...)
		written += n
		p = p[n:]
	}
	if len(w.buf) == bs {
		if err := w.flushBlock(w.buf); err != nil {
			return written, err
		}
		w.buf = w.buf[:0]
	}
	return written, nil
}

func (w *Writer) flushBlock(payload []byte) error {
	replicas, err := w.fs.placeReplicas()
	if err != nil {
		return err
	}
	w.fs.mu.Lock()
	id := w.fs.nextBlk
	w.fs.nextBlk++
	w.fs.mu.Unlock()

	stored := append([]byte(nil), payload...)
	sum := crc32.Checksum(stored, castagnoli)
	corruptAt := w.fs.faults.corruptReplica(id, len(replicas))
	for i, ni := range replicas {
		p := stored
		if i == corruptAt {
			// Persistent bit-flip on this replica's private copy; the
			// damage survives until a read quarantines it and repair
			// re-replicates from a healthy sibling.
			p = append([]byte(nil), stored...)
			p[len(p)/2] ^= 0x40
			w.fs.stats.corruptionsInjected.Add(1)
		}
		w.fs.nodes[ni].put(id, p)
	}
	w.meta.blocks = append(w.meta.blocks, blockMeta{id: id, length: len(payload), sum: sum, replicas: replicas})
	w.meta.length += int64(len(payload))
	return nil
}

// Close flushes the final partial block and publishes the file. It reports
// ErrExists if another writer published the same name first; in that case
// (and when the final flush fails) the blocks this writer already placed on
// DataNodes are deleted, so a lost publish race cannot leak orphans.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if len(w.buf) > 0 {
		if err := w.flushBlock(w.buf); err != nil {
			w.discard()
			return err
		}
		w.buf = nil
	}
	w.fs.mu.Lock()
	if _, exists := w.fs.files[w.meta.name]; exists {
		w.fs.mu.Unlock()
		w.discard()
		return fmt.Errorf("%w: %s", ErrExists, w.meta.name)
	}
	w.fs.files[w.meta.name] = w.meta
	w.fs.mu.Unlock()
	return nil
}

// discard drops every block this writer flushed from all replicas.
func (w *Writer) discard() {
	for _, b := range w.meta.blocks {
		for _, ni := range b.replicas {
			w.fs.nodes[ni].drop(b.id)
		}
	}
	w.meta.blocks = nil
	w.meta.length = 0
}
