// Package dfs implements a small in-process distributed file system
// modeled after HDFS as described in Section 2.1 of the paper: files are
// split into fixed-size blocks, blocks are stored on DataNodes with a
// configurable replication factor (default 3), and a NameNode tracks the
// mapping from files to blocks to replica locations.
//
// The file system is the storage substrate for the MapReduce engine in
// package mapreduce: input files are divided into splits (one per block),
// each split carries the hosts holding a replica so the scheduler can
// prefer local tasks, and reads transparently fail over to another replica
// when a DataNode is marked dead.
//
// Blocks live in memory. This keeps the simulation fast and deterministic
// while preserving the properties the algorithms above it can observe:
// block-granular placement, replication, locality and failure behaviour.
package dfs

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
)

// DefaultBlockSize is the block size used when Config.BlockSize is zero.
// The real HDFS default in the paper's cluster is 128 MiB; the simulation
// defaults to 256 KiB so that laptop-scale datasets still span many blocks
// and exercise split logic.
const DefaultBlockSize = 256 << 10

// DefaultReplication mirrors the paper's HDFS replication factor of 3.
const DefaultReplication = 3

// Common error conditions reported by the file system.
var (
	ErrNotFound      = errors.New("dfs: file not found")
	ErrExists        = errors.New("dfs: file already exists")
	ErrNoLiveReplica = errors.New("dfs: no live replica for block")
	ErrNoLiveNodes   = errors.New("dfs: no live datanodes")
)

// Config parameterizes a file system.
type Config struct {
	// NumNodes is the number of DataNodes; 0 means 16, the size of the
	// paper's cluster.
	NumNodes int
	// BlockSize is the maximum block payload size in bytes; 0 means
	// DefaultBlockSize.
	BlockSize int
	// Replication is the number of replicas per block (capped at the
	// number of nodes); 0 means DefaultReplication.
	Replication int
	// Seed feeds the placement policy's randomness. The same seed yields
	// the same placement for the same write sequence.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.NumNodes <= 0 {
		c.NumNodes = 16
	}
	if c.BlockSize <= 0 {
		c.BlockSize = DefaultBlockSize
	}
	if c.Replication <= 0 {
		c.Replication = DefaultReplication
	}
	if c.Replication > c.NumNodes {
		c.Replication = c.NumNodes
	}
	return c
}

// BlockID identifies a block cluster-wide.
type BlockID int64

// blockMeta is the NameNode's record of one block.
type blockMeta struct {
	id       BlockID
	length   int
	replicas []int // node indices
}

// fileMeta is the NameNode's record of one file.
type fileMeta struct {
	name   string
	blocks []blockMeta
	length int64
}

// dataNode stores block payloads for one simulated server.
type dataNode struct {
	mu     sync.RWMutex
	name   string
	alive  bool
	blocks map[BlockID][]byte
}

func (d *dataNode) get(id BlockID) ([]byte, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if !d.alive {
		return nil, false
	}
	b, ok := d.blocks[id]
	return b, ok
}

func (d *dataNode) put(id BlockID, payload []byte) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.blocks[id] = payload
}

// FileSystem is the combination of a NameNode and its DataNodes. It is safe
// for concurrent use.
type FileSystem struct {
	cfg   Config
	nodes []*dataNode

	mu      sync.RWMutex
	files   map[string]*fileMeta
	nextBlk BlockID
	rng     *rand.Rand
}

// New creates a file system with the given configuration.
func New(cfg Config) *FileSystem {
	cfg = cfg.withDefaults()
	fs := &FileSystem{
		cfg:   cfg,
		files: make(map[string]*fileMeta),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
	for i := 0; i < cfg.NumNodes; i++ {
		fs.nodes = append(fs.nodes, &dataNode{
			name:   fmt.Sprintf("d%d", i+1),
			alive:  true,
			blocks: make(map[BlockID][]byte),
		})
	}
	return fs
}

// Config returns the (defaulted) configuration the file system runs with.
func (fs *FileSystem) Config() Config { return fs.cfg }

// NumNodes returns the number of DataNodes.
func (fs *FileSystem) NumNodes() int { return len(fs.nodes) }

// NodeName returns the host name of DataNode i ("d1".."dN").
func (fs *FileSystem) NodeName(i int) string { return fs.nodes[i].name }

// KillNode marks DataNode i dead: its replicas become unreadable until
// ReviveNode. Used by failure-injection tests.
func (fs *FileSystem) KillNode(i int) {
	fs.nodes[i].mu.Lock()
	fs.nodes[i].alive = false
	fs.nodes[i].mu.Unlock()
}

// ReviveNode marks DataNode i alive again.
func (fs *FileSystem) ReviveNode(i int) {
	fs.nodes[i].mu.Lock()
	fs.nodes[i].alive = true
	fs.nodes[i].mu.Unlock()
}

// liveNodes returns the indices of alive DataNodes.
func (fs *FileSystem) liveNodes() []int {
	var out []int
	for i, n := range fs.nodes {
		n.mu.RLock()
		if n.alive {
			out = append(out, i)
		}
		n.mu.RUnlock()
	}
	return out
}

// placeReplicas picks Replication distinct live nodes for a new block.
func (fs *FileSystem) placeReplicas() ([]int, error) {
	live := fs.liveNodes()
	if len(live) == 0 {
		return nil, ErrNoLiveNodes
	}
	k := fs.cfg.Replication
	if k > len(live) {
		k = len(live)
	}
	fs.rng.Shuffle(len(live), func(i, j int) { live[i], live[j] = live[j], live[i] })
	picked := append([]int(nil), live[:k]...)
	sort.Ints(picked)
	return picked, nil
}

// Create writes data as a new file, splitting it into blocks and placing
// replicas. It fails with ErrExists if the name is taken.
func (fs *FileSystem) Create(name string, data []byte) error {
	w, err := fs.Writer(name)
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		return err
	}
	return w.Close()
}

// Delete removes a file and drops its blocks from all replicas.
func (fs *FileSystem) Delete(name string) error {
	fs.mu.Lock()
	f, ok := fs.files[name]
	if ok {
		delete(fs.files, name)
	}
	fs.mu.Unlock()
	if !ok {
		return ErrNotFound
	}
	for _, b := range f.blocks {
		for _, ni := range b.replicas {
			node := fs.nodes[ni]
			node.mu.Lock()
			delete(node.blocks, b.id)
			node.mu.Unlock()
		}
	}
	return nil
}

// Exists reports whether a file with the given name exists.
func (fs *FileSystem) Exists(name string) bool {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	_, ok := fs.files[name]
	return ok
}

// List returns the names of all files, sorted.
func (fs *FileSystem) List() []string {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	out := make([]string, 0, len(fs.files))
	for name := range fs.files {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Len returns the length of the named file in bytes.
func (fs *FileSystem) Len(name string) (int64, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	f, ok := fs.files[name]
	if !ok {
		return 0, ErrNotFound
	}
	return f.length, nil
}

// ReadAll returns the full contents of the named file, reading each block
// from any live replica.
func (fs *FileSystem) ReadAll(name string) ([]byte, error) {
	fs.mu.RLock()
	f, ok := fs.files[name]
	fs.mu.RUnlock()
	if !ok {
		return nil, ErrNotFound
	}
	out := make([]byte, 0, f.length)
	for _, b := range f.blocks {
		payload, err := fs.readBlock(b)
		if err != nil {
			return nil, err
		}
		out = append(out, payload...)
	}
	return out, nil
}

// readBlock fetches a block payload from the first live replica.
func (fs *FileSystem) readBlock(b blockMeta) ([]byte, error) {
	for _, ni := range b.replicas {
		if payload, ok := fs.nodes[ni].get(b.id); ok {
			return payload, nil
		}
	}
	return nil, fmt.Errorf("%w: block %d", ErrNoLiveReplica, b.id)
}

// BlockLocations returns, for each block of the file in order, the names of
// the DataNodes holding a replica.
func (fs *FileSystem) BlockLocations(name string) ([][]string, error) {
	fs.mu.RLock()
	f, ok := fs.files[name]
	fs.mu.RUnlock()
	if !ok {
		return nil, ErrNotFound
	}
	out := make([][]string, len(f.blocks))
	for i, b := range f.blocks {
		hosts := make([]string, len(b.replicas))
		for j, ni := range b.replicas {
			hosts[j] = fs.nodes[ni].name
		}
		out[i] = hosts
	}
	return out, nil
}

// Writer returns an io.WriteCloser that streams a new file into the file
// system, cutting blocks at the configured block size. The file becomes
// visible atomically on Close ("write-once" semantics, like HDFS).
func (fs *FileSystem) Writer(name string) (*Writer, error) {
	fs.mu.RLock()
	_, exists := fs.files[name]
	fs.mu.RUnlock()
	if exists {
		return nil, fmt.Errorf("%w: %s", ErrExists, name)
	}
	return &Writer{fs: fs, meta: &fileMeta{name: name}}, nil
}

// Writer streams data into a new file. Not safe for concurrent use.
type Writer struct {
	fs     *FileSystem
	meta   *fileMeta
	buf    []byte
	closed bool
}

// Write appends p to the file, flushing full blocks as they are cut.
func (w *Writer) Write(p []byte) (int, error) {
	if w.closed {
		return 0, errors.New("dfs: write on closed writer")
	}
	w.buf = append(w.buf, p...)
	bs := w.fs.cfg.BlockSize
	for len(w.buf) >= bs {
		if err := w.flushBlock(w.buf[:bs]); err != nil {
			return 0, err
		}
		w.buf = w.buf[bs:]
	}
	return len(p), nil
}

func (w *Writer) flushBlock(payload []byte) error {
	replicas, err := w.fs.placeReplicas()
	if err != nil {
		return err
	}
	w.fs.mu.Lock()
	id := w.fs.nextBlk
	w.fs.nextBlk++
	w.fs.mu.Unlock()

	stored := append([]byte(nil), payload...)
	for _, ni := range replicas {
		w.fs.nodes[ni].put(id, stored)
	}
	w.meta.blocks = append(w.meta.blocks, blockMeta{id: id, length: len(payload), replicas: replicas})
	w.meta.length += int64(len(payload))
	return nil
}

// Close flushes the final partial block and publishes the file. It reports
// ErrExists if another writer published the same name first.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if len(w.buf) > 0 {
		if err := w.flushBlock(w.buf); err != nil {
			return err
		}
		w.buf = nil
	}
	w.fs.mu.Lock()
	defer w.fs.mu.Unlock()
	if _, exists := w.fs.files[w.meta.name]; exists {
		return fmt.Errorf("%w: %s", ErrExists, w.meta.name)
	}
	w.fs.files[w.meta.name] = w.meta
	return nil
}
