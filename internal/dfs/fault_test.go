package dfs

import (
	"bytes"
	"errors"
	"hash/crc32"
	"strings"
	"testing"
)

// corruptReplicaCopy bit-flips node ni's copy of block id through a private
// clone, so sibling replicas sharing the original slice stay intact.
func corruptReplicaCopy(fs *FileSystem, ni int, id BlockID) {
	node := fs.nodes[ni]
	node.mu.Lock()
	defer node.mu.Unlock()
	p := append([]byte(nil), node.blocks[id]...)
	if len(p) > 0 {
		p[len(p)/2] ^= 0x01
	}
	node.blocks[id] = p
}

// blockReplicas returns the metadata replica list of block idx of the file.
func blockReplicas(t *testing.T, fs *FileSystem, name string, idx int) blockMeta {
	t.Helper()
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	f, ok := fs.files[name]
	if !ok || idx >= len(f.blocks) {
		t.Fatalf("no block %d of %q", idx, name)
	}
	return f.blocks[idx]
}

// healthyReplicas counts replicas of b that are on live nodes, present,
// unquarantined, and checksum-clean.
func healthyReplicas(fs *FileSystem, b blockMeta) int {
	n := 0
	for _, ni := range b.replicas {
		if payload, st := fs.nodes[ni].get(b.id); st == replicaOK && crc32.Checksum(payload, castagnoli) == b.sum {
			n++
		}
	}
	return n
}

func TestChecksumFailoverAndReadRepair(t *testing.T) {
	fs := newFS(t, Config{NumNodes: 6, BlockSize: 8, Replication: 3, Seed: 7})
	data := []byte("twelve bytes and then some more")
	if err := fs.Create("f", data); err != nil {
		t.Fatal(err)
	}
	b0 := blockReplicas(t, fs, "f", 0)
	corruptReplicaCopy(fs, b0.replicas[0], b0.id)

	got, err := fs.ReadAll("f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Errorf("ReadAll after corruption = %q, want %q", got, data)
	}
	st := fs.FaultStats()
	if st.CorruptionsDetected == 0 || st.ReplicasQuarantined == 0 || st.FailoverReads == 0 {
		t.Errorf("stats = %+v, want corruption detected + quarantine + failover", st)
	}
	if st.RepairedBlocks == 0 || st.RepairReplicasAdded == 0 {
		t.Errorf("stats = %+v, want read repair to have re-replicated", st)
	}
	// Read repair must restore the replication factor with healthy copies.
	b0 = blockReplicas(t, fs, "f", 0)
	if n := healthyReplicas(fs, b0); n != 3 {
		t.Errorf("healthy replicas after read repair = %d, want 3", n)
	}
}

func TestRepairRestoresReplicationAfterNodeLoss(t *testing.T) {
	fs := newFS(t, Config{NumNodes: 6, BlockSize: 8, Replication: 3, Seed: 3})
	data := bytes.Repeat([]byte("0123456789abcdef"), 4)
	if err := fs.Create("f", data); err != nil {
		t.Fatal(err)
	}
	orig := blockReplicas(t, fs, "f", 0)
	fs.KillNode(orig.replicas[0])

	st := fs.Repair()
	if st.BlocksScanned == 0 || st.ReplicasAdded == 0 {
		t.Fatalf("Repair = %+v, want blocks scanned and replicas added", st)
	}
	// Every block must again have 3 healthy live replicas.
	for idx := 0; ; idx++ {
		fs.mu.RLock()
		nblocks := len(fs.files["f"].blocks)
		fs.mu.RUnlock()
		if idx >= nblocks {
			break
		}
		b := blockReplicas(t, fs, "f", idx)
		if n := healthyReplicas(fs, b); n != 3 {
			t.Errorf("block %d healthy replicas after repair = %d, want 3", idx, n)
		}
	}
	// Kill the remaining original holders of block 0: the repaired copy
	// alone must serve reads.
	for _, ni := range orig.replicas[1:] {
		fs.KillNode(ni)
	}
	got, err := fs.ReadAll("f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Errorf("ReadAll after killing original replicas = %q, want %q", got, data)
	}
}

func TestRepairReportsUnrecoverable(t *testing.T) {
	fs := newFS(t, Config{NumNodes: 4, BlockSize: 64, Replication: 2, Seed: 5})
	if err := fs.Create("f", []byte("doomed block")); err != nil {
		t.Fatal(err)
	}
	b := blockReplicas(t, fs, "f", 0)
	for _, ni := range b.replicas {
		corruptReplicaCopy(fs, ni, b.id)
	}
	if _, err := fs.ReadAll("f"); !errors.Is(err, ErrNoLiveReplica) {
		t.Fatalf("ReadAll with all replicas corrupt = %v, want ErrNoLiveReplica", err)
	}
	st := fs.Repair()
	if st.Unrecoverable == 0 {
		t.Errorf("Repair = %+v, want unrecoverable block reported", st)
	}
}

func TestReplicaErrorDiagnostics(t *testing.T) {
	fs := newFS(t, Config{NumNodes: 3, BlockSize: 64, Replication: 3, Seed: 1})
	if err := fs.Create("diag.txt", []byte("some data")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < fs.NumNodes(); i++ {
		fs.KillNode(i)
	}
	_, err := fs.ReadAll("diag.txt")
	if !errors.Is(err, ErrNoLiveReplica) {
		t.Fatalf("err = %v, want ErrNoLiveReplica", err)
	}
	var re *ReplicaError
	if !errors.As(err, &re) {
		t.Fatalf("err = %T, want *ReplicaError", err)
	}
	if re.File != "diag.txt" || re.Dead != 3 || re.Missing != 0 || re.Corrupted != 0 {
		t.Errorf("ReplicaError = %+v, want File=diag.txt Dead=3", re)
	}
	if msg := err.Error(); !strings.Contains(msg, "diag.txt") || !strings.Contains(msg, "3 on dead nodes") {
		t.Errorf("error message %q lacks file name or cause breakdown", msg)
	}
	if re.IsTransient() {
		t.Error("dead-node failure reported as transient")
	}
}

func TestWriterWriteReturnsAcceptedCount(t *testing.T) {
	fs := newFS(t, Config{NumNodes: 2, BlockSize: 16, Replication: 2, Seed: 1})
	w, err := fs.Writer("f")
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("x"), 40)
	if n, err := w.Write(data[:24]); n != 24 || err != nil {
		t.Fatalf("Write = %d, %v, want 24, nil", n, err)
	}
	fs.KillNode(0)
	fs.KillNode(1)
	// 8 bytes fit the buffer before the next block flush fails: the
	// accepted count must say so instead of claiming zero.
	n, err := w.Write(data[24:])
	if !errors.Is(err, ErrNoLiveNodes) {
		t.Fatalf("Write with all nodes dead: err = %v, want ErrNoLiveNodes", err)
	}
	if n != 8 {
		t.Fatalf("Write with all nodes dead accepted %d bytes, want 8", n)
	}
	fs.ReviveNode(0)
	fs.ReviveNode(1)
	if m, err := w.Write(data[24+n:]); m != len(data)-24-n || err != nil {
		t.Fatalf("resumed Write = %d, %v", m, err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadAll("f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Errorf("resumed write produced %q, want %q (no loss, no duplication)", got, data)
	}
}

func TestCloseDropsBlocksOnLostPublishRace(t *testing.T) {
	fs := newFS(t, Config{NumNodes: 4, BlockSize: 8, Replication: 2, Seed: 9})
	w1, err := fs.Writer("f")
	if err != nil {
		t.Fatal(err)
	}
	w2, err := fs.Writer("f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w1.Write(bytes.Repeat([]byte("a"), 30)); err != nil {
		t.Fatal(err)
	}
	if _, err := w2.Write(bytes.Repeat([]byte("b"), 30)); err != nil {
		t.Fatal(err)
	}
	if err := w1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); !errors.Is(err, ErrExists) {
		t.Fatalf("loser Close = %v, want ErrExists", err)
	}
	// Only the winner's blocks may remain on DataNodes.
	want := make(map[BlockID]bool)
	fs.mu.RLock()
	for _, b := range fs.files["f"].blocks {
		want[b.id] = true
	}
	fs.mu.RUnlock()
	for i, node := range fs.nodes {
		node.mu.RLock()
		for id := range node.blocks {
			if !want[id] {
				t.Errorf("node %d still stores orphaned block %d", i, id)
			}
		}
		node.mu.RUnlock()
	}
	got, err := fs.ReadAll("f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, bytes.Repeat([]byte("a"), 30)) {
		t.Errorf("winner's content clobbered: %q", got)
	}
}

func TestFaultPlanTransientFailover(t *testing.T) {
	// With a moderate transient probability and 3 replicas, reads must
	// keep returning correct data by failing over, and the stats must
	// show injected faults were actually exercised.
	fs := newFS(t, Config{NumNodes: 6, BlockSize: 8, Replication: 3, Seed: 2,
		Faults: &FaultPlan{Seed: 42, TransientReadProb: 0.3}})
	data := bytes.Repeat([]byte("payload!"), 32)
	if err := fs.Create("f", data); err != nil {
		t.Fatal(err)
	}
	sawError := false
	for i := 0; i < 20; i++ {
		got, err := fs.ReadAll("f")
		if err != nil {
			// All three replicas can draw a failure (p^3 per block); that
			// must surface as a transient ReplicaError, never bad data.
			var re *ReplicaError
			if !errors.As(err, &re) || !re.IsTransient() {
				t.Fatalf("read %d: err = %v, want transient ReplicaError", i, err)
			}
			sawError = true
			continue
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("read %d returned wrong data under transient faults", i)
		}
	}
	st := fs.FaultStats()
	if st.TransientReadErrors == 0 || st.FailoverReads == 0 {
		t.Errorf("stats = %+v, want transient errors and failovers", st)
	}
	_ = sawError // total failure is seed-dependent; correctness is what matters
}

func TestFaultPlanDeterministicReplay(t *testing.T) {
	run := func() ([]string, FaultStats) {
		fs := newFS(t, Config{NumNodes: 5, BlockSize: 8, Replication: 2, Seed: 11,
			Faults: &FaultPlan{
				Seed:              99,
				TransientReadProb: 0.25,
				CorruptEveryN:     3,
				Crashes: []CrashEvent{
					{AtRead: 4, Node: 1},
					{AtRead: 9, Node: 1, Revive: true},
				},
			}})
		data := bytes.Repeat([]byte("determinism"), 16)
		if err := fs.Create("f", data); err != nil {
			t.Fatal(err)
		}
		var outcomes []string
		for i := 0; i < 12; i++ {
			got, err := fs.ReadAll("f")
			if err != nil {
				outcomes = append(outcomes, "err:"+err.Error())
			} else if bytes.Equal(got, data) {
				outcomes = append(outcomes, "ok")
			} else {
				outcomes = append(outcomes, "WRONG DATA")
			}
		}
		return outcomes, fs.FaultStats()
	}
	o1, s1 := run()
	o2, s2 := run()
	for i := range o1 {
		if o1[i] == "WRONG DATA" {
			t.Fatalf("read %d returned wrong data under faults", i)
		}
		if o1[i] != o2[i] {
			t.Errorf("read %d diverged between replays: %q vs %q", i, o1[i], o2[i])
		}
	}
	if s1 != s2 {
		t.Errorf("fault stats diverged between replays:\n%+v\n%+v", s1, s2)
	}
	if s1.Total() == 0 {
		t.Error("fault plan injected nothing; test is vacuous")
	}
}

func TestCrashScheduleFires(t *testing.T) {
	fs := newFS(t, Config{NumNodes: 4, BlockSize: 8, Replication: 3, Seed: 1,
		Faults: &FaultPlan{Crashes: []CrashEvent{
			{AtRead: 2, Node: 0},
			{AtRead: 5, Node: 0, Revive: true},
		}}})
	if err := fs.Create("f", bytes.Repeat([]byte("abcdefgh"), 8)); err != nil {
		t.Fatal(err)
	}
	alive := func() bool {
		fs.nodes[0].mu.RLock()
		defer fs.nodes[0].mu.RUnlock()
		return fs.nodes[0].alive
	}
	readN := func(n int) {
		for i := 0; i < n; i++ {
			if _, err := fs.ReadRange("f", 0, 4); err != nil {
				t.Fatal(err)
			}
		}
	}
	readN(2)
	if alive() {
		t.Error("node 0 alive after crash event at read 2")
	}
	readN(3)
	if !alive() {
		t.Error("node 0 dead after revive event at read 5")
	}
}

func TestFailFirstReadsHealsAfterBudget(t *testing.T) {
	fs := newFS(t, Config{NumNodes: 4, BlockSize: 64, Replication: 3, Seed: 1,
		Faults: &FaultPlan{FailFirstReads: 3}})
	data := []byte("heal me")
	if err := fs.Create("f", data); err != nil {
		t.Fatal(err)
	}
	_, err := fs.ReadAll("f")
	var re *ReplicaError
	if !errors.As(err, &re) || !re.IsTransient() || re.Transient != 3 {
		t.Fatalf("first read = %v, want transient ReplicaError with 3 transient failures", err)
	}
	got, err := fs.ReadAll("f")
	if err != nil {
		t.Fatalf("read after budget exhausted = %v, want success", err)
	}
	if !bytes.Equal(got, data) {
		t.Errorf("healed read = %q, want %q", got, data)
	}
	if st := fs.FaultStats(); st.TransientReadErrors != 3 {
		t.Errorf("TransientReadErrors = %d, want 3", st.TransientReadErrors)
	}
}
