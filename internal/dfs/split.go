package dfs

import (
	"bytes"
	"fmt"
)

// Split describes one input split of a file: a byte range aligned to a
// block, plus the hosts storing that block. It mirrors Hadoop's FileSplit
// and is the scheduling unit handed to map tasks.
type Split struct {
	File   string
	Index  int      // block index within the file
	Offset int64    // byte offset of the split within the file
	Length int      // byte length of the split
	Hosts  []string // DataNode names holding a replica of the block
}

// String implements fmt.Stringer.
func (s Split) String() string {
	return fmt.Sprintf("%s[%d @%d +%d]", s.File, s.Index, s.Offset, s.Length)
}

// Splits returns one Split per block of the named file, in file order.
func (fs *FileSystem) Splits(name string) ([]Split, error) {
	fs.mu.RLock()
	f, ok := fs.files[name]
	fs.mu.RUnlock()
	if !ok {
		return nil, ErrNotFound
	}
	out := make([]Split, len(f.blocks))
	var off int64
	for i, b := range f.blocks {
		hosts := make([]string, len(b.replicas))
		for j, ni := range b.replicas {
			hosts[j] = fs.nodes[ni].name
		}
		out[i] = Split{File: name, Index: i, Offset: off, Length: b.length, Hosts: hosts}
		off += int64(b.length)
	}
	return out, nil
}

// ReadRange reads up to n bytes of the named file starting at byte offset
// off. Fewer bytes are returned at end of file. Each touched block is read
// from any live replica.
func (fs *FileSystem) ReadRange(name string, off int64, n int) ([]byte, error) {
	fs.mu.RLock()
	f, ok := fs.files[name]
	fs.mu.RUnlock()
	if !ok {
		return nil, ErrNotFound
	}
	if off >= f.length || n <= 0 {
		return nil, nil
	}
	if rem := f.length - off; int64(n) > rem {
		n = int(rem)
	}
	out := make([]byte, 0, n)
	var blockStart int64
	for i, b := range f.blocks {
		blockEnd := blockStart + int64(b.length)
		if blockEnd <= off {
			blockStart = blockEnd
			continue
		}
		payload, err := fs.readBlock(name, i, b)
		if err != nil {
			return nil, err
		}
		lo := int64(0)
		if off > blockStart {
			lo = off - blockStart
		}
		hi := int64(b.length)
		if want := off + int64(n) - blockStart; want < hi {
			hi = want
		}
		out = append(out, payload[lo:hi]...)
		if len(out) >= n {
			break
		}
		blockStart = blockEnd
	}
	return out, nil
}

// SplitLines reads the newline-delimited records belonging to a split,
// applying Hadoop's record-boundary convention: a split that does not start
// at offset 0 skips the first (possibly partial) line, and every split
// reads past its end into the next block to complete its final line. As a
// result every line of the file is processed by exactly one split, even
// when lines straddle block boundaries.
//
// yield is called once per line (without the trailing newline); returning
// false stops the iteration early.
func (fs *FileSystem) SplitLines(s Split, yield func(line []byte) bool) error {
	fs.mu.RLock()
	f, ok := fs.files[s.File]
	fs.mu.RUnlock()
	if !ok {
		return ErrNotFound
	}
	fileLen := f.length

	pos := s.Offset
	end := s.Offset + int64(s.Length)

	// Skip the partial first line: scan forward to the byte after the
	// first '\n' at or after pos-1. Reading from pos-1 handles the case
	// where the previous split's data ends exactly with '\n' at pos-1.
	if pos > 0 {
		scan := pos - 1
		for {
			chunk, err := fs.ReadRange(s.File, scan, 64<<10)
			if err != nil {
				return err
			}
			if len(chunk) == 0 {
				return nil // split starts inside the file's final partial line
			}
			if i := bytes.IndexByte(chunk, '\n'); i >= 0 {
				pos = scan + int64(i) + 1
				break
			}
			scan += int64(len(chunk))
		}
		if pos >= end {
			// The entire split is inside one line owned by a predecessor.
			return nil
		}
	}

	// Emit lines while they start before the split end.
	buf := make([]byte, 0, 64<<10)
	bufStart := pos
	refill := func(from int64) error {
		chunk, err := fs.ReadRange(s.File, from, 64<<10)
		if err != nil {
			return err
		}
		buf = append(buf, chunk...)
		return nil
	}
	for pos < end {
		if pos >= fileLen {
			return nil
		}
		// Ensure buf holds data from pos onward up to the next newline.
		rel := int(pos - bufStart)
		if rel > 0 {
			buf = buf[:copy(buf, buf[rel:])]
			bufStart = pos
		}
		var nl int
		for {
			nl = bytes.IndexByte(buf, '\n')
			if nl >= 0 {
				break
			}
			prev := len(buf)
			if err := refill(bufStart + int64(prev)); err != nil {
				return err
			}
			if len(buf) == prev {
				// EOF without trailing newline: final line.
				if len(buf) > 0 {
					yield(buf)
				}
				return nil
			}
		}
		if !yield(buf[:nl]) {
			return nil
		}
		pos = bufStart + int64(nl) + 1
	}
	return nil
}
