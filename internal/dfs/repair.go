package dfs

import (
	"hash/crc32"
	"sort"
)

// RepairStats summarizes one Repair pass.
type RepairStats struct {
	// BlocksScanned is the number of blocks examined.
	BlocksScanned int
	// BlocksRepaired is the number of blocks whose replica set changed
	// (copies added from a healthy source and/or bad copies dropped).
	BlocksRepaired int
	// ReplicasAdded is the number of new replica copies written.
	ReplicasAdded int
	// ReplicasDropped is the number of quarantined or vanished replicas
	// removed from block metadata (quarantined payloads are deleted).
	ReplicasDropped int
	// Unrecoverable is the number of blocks with no healthy replica on any
	// live node: their data is lost unless a dead node holding a copy
	// revives. Such blocks are left untouched.
	Unrecoverable int
}

// Repair scans every block of every file and restores the replication
// factor: live replicas are checksum-verified (corrupt copies are
// quarantined on the spot), quarantined copies are deleted, and
// under-replicated blocks are re-replicated from a healthy copy onto live
// nodes that do not already hold one. Replicas on dead nodes are kept in
// the metadata — the node may revive with its copy intact.
//
// Repair is safe to run while readers and writers are active: file
// metadata is updated copy-on-write under the NameNode lock, so concurrent
// readers holding the old metadata keep reading healthy replicas that are
// never moved.
func (fs *FileSystem) Repair() RepairStats {
	var st RepairStats
	for _, name := range fs.List() {
		fs.mu.RLock()
		f := fs.files[name]
		fs.mu.RUnlock()
		if f == nil {
			continue // deleted since List
		}
		for idx := range f.blocks {
			st.BlocksScanned++
			fs.repairBlock(name, idx, nil, &st)
		}
	}
	return st
}

// repairBlock restores the replication factor of one block. knownGood,
// when non-nil, is a payload that already passed its checksum (the
// read-repair path supplies it); otherwise a healthy copy is located by
// scanning replicas. st, when non-nil, accumulates scan statistics.
func (fs *FileSystem) repairBlock(file string, idx int, knownGood []byte, st *RepairStats) {
	fs.mu.RLock()
	f, ok := fs.files[file]
	var b blockMeta
	if ok && idx < len(f.blocks) {
		b = f.blocks[idx]
	} else {
		ok = false
	}
	fs.mu.RUnlock()
	if !ok {
		return
	}

	// Classify the current replicas. Corrupt copies found here are
	// quarantined exactly as on the read path.
	good := knownGood
	var healthy, quarantined, dead []int
	for _, ni := range b.replicas {
		payload, state := fs.nodes[ni].get(b.id)
		switch state {
		case replicaDead:
			dead = append(dead, ni)
		case replicaQuarantined:
			quarantined = append(quarantined, ni)
		case replicaMissing:
			// Vanished from a live node: drop it from the metadata below.
		case replicaOK:
			if crc32.Checksum(payload, castagnoli) != b.sum {
				fs.stats.corruptionsDetected.Add(1)
				if fs.nodes[ni].quarantine(b.id) {
					fs.stats.replicasQuarantined.Add(1)
				}
				quarantined = append(quarantined, ni)
				continue
			}
			healthy = append(healthy, ni)
			if good == nil {
				good = payload
			}
		}
	}

	if good == nil {
		// No healthy copy reachable; leave everything (including
		// quarantined copies) in place for post-mortems and hope a dead
		// node revives with an intact replica.
		if st != nil {
			st.Unrecoverable++
		}
		fs.stats.unrecoverableBlocks.Add(1)
		return
	}

	// Delete quarantined copies: their payload is known bad and a healthy
	// source exists.
	for _, ni := range quarantined {
		fs.nodes[ni].drop(b.id)
	}

	// Re-replicate onto live nodes that hold no healthy copy, lowest
	// index first (deterministic, and independent of the placement RNG so
	// repair does not perturb later block placements).
	want := fs.cfg.Replication
	holders := make(map[int]bool, len(healthy))
	for _, ni := range healthy {
		holders[ni] = true
	}
	added := 0
	for ni := range fs.nodes {
		if len(healthy) >= want {
			break
		}
		if holders[ni] {
			continue
		}
		node := fs.nodes[ni]
		node.mu.Lock()
		if node.alive {
			node.blocks[b.id] = good
			delete(node.bad, b.id)
			healthy = append(healthy, ni)
			holders[ni] = true
			added++
		}
		node.mu.Unlock()
	}

	newReplicas := append(append([]int(nil), healthy...), dead...)
	sort.Ints(newReplicas)
	dropped := len(b.replicas) - len(newReplicas) + added
	if added == 0 && dropped == 0 && equalInts(newReplicas, b.replicas) {
		return
	}

	// Publish the new replica set copy-on-write: clone the file's block
	// list, swap the entry, and install a fresh fileMeta. Readers that
	// grabbed the old meta keep iterating a consistent snapshot.
	fs.mu.Lock()
	cur, ok := fs.files[file]
	if !ok || idx >= len(cur.blocks) || cur.blocks[idx].id != b.id {
		// The file was deleted or replaced mid-repair; undo our copies.
		fs.mu.Unlock()
		for _, ni := range newReplicas {
			if !contains(b.replicas, ni) {
				fs.nodes[ni].drop(b.id)
			}
		}
		return
	}
	blocks := append([]blockMeta(nil), cur.blocks...)
	bm := blocks[idx]
	bm.replicas = newReplicas
	blocks[idx] = bm
	fs.files[file] = &fileMeta{name: cur.name, blocks: blocks, length: cur.length}
	fs.mu.Unlock()

	fs.stats.repairedBlocks.Add(1)
	fs.stats.repairReplicasAdded.Add(int64(added))
	fs.stats.repairReplicasDrop.Add(int64(dropped))
	if st != nil {
		st.BlocksRepaired++
		st.ReplicasAdded += added
		st.ReplicasDropped += dropped
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
