package dfs

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func newFS(t *testing.T, cfg Config) *FileSystem {
	t.Helper()
	return New(cfg)
}

func TestCreateReadRoundTrip(t *testing.T) {
	fs := newFS(t, Config{NumNodes: 4, BlockSize: 8, Replication: 2, Seed: 1})
	data := []byte("hello distributed file system")
	if err := fs.Create("f", data); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadAll("f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Errorf("ReadAll = %q, want %q", got, data)
	}
	n, err := fs.Len("f")
	if err != nil || n != int64(len(data)) {
		t.Errorf("Len = %d, %v", n, err)
	}
}

func TestCreateEmptyFile(t *testing.T) {
	fs := newFS(t, Config{NumNodes: 2, Seed: 1})
	if err := fs.Create("empty", nil); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadAll("empty")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("ReadAll = %q, want empty", got)
	}
	splits, err := fs.Splits("empty")
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 0 {
		t.Errorf("empty file has %d splits", len(splits))
	}
}

func TestDuplicateCreateFails(t *testing.T) {
	fs := newFS(t, Config{NumNodes: 2, Seed: 1})
	if err := fs.Create("f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("f", []byte("y")); !errors.Is(err, ErrExists) {
		t.Errorf("second create: %v, want ErrExists", err)
	}
}

func TestReadMissingFile(t *testing.T) {
	fs := newFS(t, Config{NumNodes: 2, Seed: 1})
	if _, err := fs.ReadAll("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("ReadAll missing = %v, want ErrNotFound", err)
	}
	if _, err := fs.Splits("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Splits missing = %v, want ErrNotFound", err)
	}
	if err := fs.Delete("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Delete missing = %v, want ErrNotFound", err)
	}
}

func TestDeleteFreesBlocks(t *testing.T) {
	fs := newFS(t, Config{NumNodes: 3, BlockSize: 4, Replication: 3, Seed: 1})
	if err := fs.Create("f", []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Delete("f"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("f") {
		t.Error("file still exists after delete")
	}
	for i, n := range fs.nodes {
		if len(n.blocks) != 0 {
			t.Errorf("node %d still holds %d blocks", i, len(n.blocks))
		}
	}
}

func TestBlockCountAndReplication(t *testing.T) {
	fs := newFS(t, Config{NumNodes: 5, BlockSize: 10, Replication: 3, Seed: 42})
	data := make([]byte, 95) // 9 full blocks + 1 partial
	if err := fs.Create("f", data); err != nil {
		t.Fatal(err)
	}
	locs, err := fs.BlockLocations("f")
	if err != nil {
		t.Fatal(err)
	}
	if len(locs) != 10 {
		t.Fatalf("got %d blocks, want 10", len(locs))
	}
	for i, hosts := range locs {
		if len(hosts) != 3 {
			t.Errorf("block %d has %d replicas, want 3", i, len(hosts))
		}
		seen := map[string]bool{}
		for _, h := range hosts {
			if seen[h] {
				t.Errorf("block %d replicated twice on %s", i, h)
			}
			seen[h] = true
		}
	}
}

func TestReplicationCappedAtNodes(t *testing.T) {
	fs := newFS(t, Config{NumNodes: 2, BlockSize: 4, Replication: 3, Seed: 1})
	if err := fs.Create("f", []byte("abcdefgh")); err != nil {
		t.Fatal(err)
	}
	locs, _ := fs.BlockLocations("f")
	for _, hosts := range locs {
		if len(hosts) != 2 {
			t.Errorf("replicas = %d, want 2 (capped)", len(hosts))
		}
	}
}

func TestFailoverToReplica(t *testing.T) {
	fs := newFS(t, Config{NumNodes: 4, BlockSize: 8, Replication: 2, Seed: 7})
	data := []byte("block one block two and some change")
	if err := fs.Create("f", data); err != nil {
		t.Fatal(err)
	}
	// Kill one node; every block still has a live replica.
	fs.KillNode(0)
	got, err := fs.ReadAll("f")
	if err != nil {
		t.Fatalf("read after single failure: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Error("data corrupted after failover")
	}
}

func TestAllReplicasDead(t *testing.T) {
	fs := newFS(t, Config{NumNodes: 3, BlockSize: 8, Replication: 3, Seed: 7})
	if err := fs.Create("f", []byte("some data here")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		fs.KillNode(i)
	}
	if _, err := fs.ReadAll("f"); !errors.Is(err, ErrNoLiveReplica) {
		t.Errorf("ReadAll with all nodes dead = %v, want ErrNoLiveReplica", err)
	}
	fs.ReviveNode(1)
	if _, err := fs.ReadAll("f"); err != nil {
		t.Errorf("ReadAll after revive = %v", err)
	}
}

func TestWriteAfterAllNodesDead(t *testing.T) {
	fs := newFS(t, Config{NumNodes: 2, BlockSize: 4, Seed: 1})
	fs.KillNode(0)
	fs.KillNode(1)
	if err := fs.Create("f", []byte("abcdefgh")); !errors.Is(err, ErrNoLiveNodes) {
		t.Errorf("Create = %v, want ErrNoLiveNodes", err)
	}
}

func TestReadRange(t *testing.T) {
	fs := newFS(t, Config{NumNodes: 3, BlockSize: 4, Seed: 1})
	data := []byte("0123456789abcdef")
	if err := fs.Create("f", data); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		off  int64
		n    int
		want string
	}{
		{0, 4, "0123"},
		{0, 16, "0123456789abcdef"},
		{2, 6, "234567"}, // crosses a block boundary
		{3, 10, "3456789abc"},
		{14, 10, "ef"}, // truncated at EOF
		{16, 4, ""},    // at EOF
		{100, 4, ""},   // past EOF
		{5, 0, ""},     // zero length
	}
	for _, tt := range tests {
		got, err := fs.ReadRange("f", tt.off, tt.n)
		if err != nil {
			t.Fatalf("ReadRange(%d,%d): %v", tt.off, tt.n, err)
		}
		if string(got) != tt.want {
			t.Errorf("ReadRange(%d,%d) = %q, want %q", tt.off, tt.n, got, tt.want)
		}
	}
}

func TestListSorted(t *testing.T) {
	fs := newFS(t, Config{NumNodes: 2, Seed: 1})
	for _, n := range []string{"zeta", "alpha", "mid"} {
		if err := fs.Create(n, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	got := fs.List()
	want := []string{"alpha", "mid", "zeta"}
	if len(got) != len(want) {
		t.Fatalf("List = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("List = %v, want %v", got, want)
		}
	}
}

// Every line of a file must be delivered by exactly one split, regardless
// of how lines straddle block boundaries.
func collectAllSplitLines(t *testing.T, fs *FileSystem, name string) []string {
	t.Helper()
	splits, err := fs.Splits(name)
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, s := range splits {
		err := fs.SplitLines(s, func(line []byte) bool {
			lines = append(lines, string(line))
			return true
		})
		if err != nil {
			t.Fatalf("split %v: %v", s, err)
		}
	}
	return lines
}

func TestSplitLinesExactlyOnce(t *testing.T) {
	tests := []struct {
		name      string
		blockSize int
		content   string
	}{
		{"lines shorter than block", 16, "aa\nbb\ncc\ndd\nee\n"},
		{"line exactly block size", 4, "abc\ndef\nghi\n"},
		{"line spans blocks", 4, "abcdefghij\nklmnopqr\nst\n"},
		{"single huge line", 4, "abcdefghijklmnopqrstuvwxyz\n"},
		{"no trailing newline", 5, "one\ntwo\nthree"},
		{"empty lines", 4, "\n\na\n\nb\n"},
		{"newline at block edge", 4, "abc\nxyz\n"},
		{"one line one block", 64, "only\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			fs := newFS(t, Config{NumNodes: 3, BlockSize: tt.blockSize, Seed: 2})
			if err := fs.Create("f", []byte(tt.content)); err != nil {
				t.Fatal(err)
			}
			got := collectAllSplitLines(t, fs, "f")
			want := strings.Split(strings.TrimSuffix(tt.content, "\n"), "\n")
			if tt.content == "" {
				want = nil
			}
			if len(got) != len(want) {
				t.Fatalf("got %d lines %q, want %d %q", len(got), got, len(want), want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("line %d = %q, want %q", i, got[i], want[i])
				}
			}
		})
	}
}

func TestSplitLinesRandomized(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		blockSize := 1 + r.Intn(40)
		var sb strings.Builder
		var want []string
		numLines := r.Intn(60)
		for i := 0; i < numLines; i++ {
			line := strings.Repeat("x", r.Intn(25)) + fmt.Sprint(i)
			want = append(want, line)
			sb.WriteString(line)
			sb.WriteByte('\n')
		}
		fs := New(Config{NumNodes: 4, BlockSize: blockSize, Seed: int64(trial)})
		if err := fs.Create("f", []byte(sb.String())); err != nil {
			t.Fatal(err)
		}
		got := collectAllSplitLines(t, fs, "f")
		if len(got) != len(want) {
			t.Fatalf("trial %d (bs=%d): got %d lines, want %d", trial, blockSize, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d line %d = %q, want %q", trial, i, got[i], want[i])
			}
		}
	}
}

func TestSplitLinesEarlyStop(t *testing.T) {
	fs := newFS(t, Config{NumNodes: 2, BlockSize: 64, Seed: 1})
	if err := fs.Create("f", []byte("a\nb\nc\nd\n")); err != nil {
		t.Fatal(err)
	}
	splits, _ := fs.Splits("f")
	var n int
	err := fs.SplitLines(splits[0], func(line []byte) bool {
		n++
		return n < 2
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("yield called %d times, want 2", n)
	}
}

func TestSplitHostsMatchBlockLocations(t *testing.T) {
	fs := newFS(t, Config{NumNodes: 6, BlockSize: 4, Replication: 3, Seed: 9})
	if err := fs.Create("f", make([]byte, 40)); err != nil {
		t.Fatal(err)
	}
	splits, _ := fs.Splits("f")
	locs, _ := fs.BlockLocations("f")
	if len(splits) != len(locs) {
		t.Fatalf("%d splits vs %d blocks", len(splits), len(locs))
	}
	var off int64
	for i, s := range splits {
		if s.Offset != off {
			t.Errorf("split %d offset %d, want %d", i, s.Offset, off)
		}
		off += int64(s.Length)
		if len(s.Hosts) != len(locs[i]) {
			t.Errorf("split %d hosts %v vs locations %v", i, s.Hosts, locs[i])
		}
	}
}

func TestWriterStreaming(t *testing.T) {
	fs := newFS(t, Config{NumNodes: 3, BlockSize: 8, Seed: 4})
	w, err := fs.Writer("f")
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	for i := 0; i < 100; i++ {
		chunk := []byte(fmt.Sprintf("chunk-%03d;", i))
		want.Write(chunk)
		if _, err := w.Write(chunk); err != nil {
			t.Fatal(err)
		}
	}
	// File must not be visible before Close.
	if fs.Exists("f") {
		t.Error("file visible before Close")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadAll("f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Error("streamed content mismatch")
	}
	// Double close is a no-op.
	if err := w.Close(); err != nil {
		t.Errorf("second Close = %v", err)
	}
	// Write after close fails.
	if _, err := w.Write([]byte("x")); err == nil {
		t.Error("write after close succeeded")
	}
}

func TestDefaultConfig(t *testing.T) {
	fs := New(Config{})
	if fs.NumNodes() != 16 {
		t.Errorf("default nodes = %d, want 16", fs.NumNodes())
	}
	cfg := fs.Config()
	if cfg.BlockSize != DefaultBlockSize || cfg.Replication != DefaultReplication {
		t.Errorf("defaults = %+v", cfg)
	}
	if fs.NodeName(0) != "d1" || fs.NodeName(15) != "d16" {
		t.Errorf("node names: %s..%s", fs.NodeName(0), fs.NodeName(15))
	}
}

// quick-checked: ReadRange must equal slicing the full file contents, for
// arbitrary offsets and lengths.
func TestReadRangeQuick(t *testing.T) {
	fs := newFS(t, Config{NumNodes: 3, BlockSize: 7, Seed: 12})
	content := []byte("the quick brown fox jumps over the lazy dog 0123456789")
	if err := fs.Create("f", content); err != nil {
		t.Fatal(err)
	}
	f := func(off int16, n int8) bool {
		o := int64(off)
		if o < 0 {
			o = -o
		}
		ln := int(n)
		if ln < 0 {
			ln = -ln
		}
		got, err := fs.ReadRange("f", o, ln)
		if err != nil {
			return false
		}
		lo := o
		if lo > int64(len(content)) {
			lo = int64(len(content))
		}
		hi := lo + int64(ln)
		if hi > int64(len(content)) {
			hi = int64(len(content))
		}
		return string(got) == string(content[lo:hi])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
