package dfs

import (
	"sort"
	"sync/atomic"
	"time"
)

// FaultPlan is a seeded, deterministic fault-injection schedule. All
// decisions are pure functions of (Seed, the global block-read index, the
// replica's node), so any failure run is replayable from its seed: the
// same plan against the same write/read sequence injects the same faults.
//
// The zero value (or a nil plan) injects nothing.
type FaultPlan struct {
	// Seed feeds the per-read hash behind probabilistic decisions.
	Seed int64

	// TransientReadProb in [0,1) makes each replica read fail with an
	// injected transient I/O error with this probability. Failed replicas
	// are skipped by failover, so a read only errors when every replica
	// draws a failure; a retried read re-draws and may succeed.
	TransientReadProb float64

	// FailFirstReads makes the first N replica read attempts fail
	// transiently (a deterministic "storage is down at first" schedule).
	// With replication factor R, a budget of R*k fails exactly k whole
	// block reads before the store heals — the knob behind the
	// "task fails N−1 times then completes" retry proof.
	FailFirstReads int64

	// CorruptEveryN persistently bit-flips one replica of every Nth block
	// (by BlockID) as it is written. The damage sits on the DataNode until
	// a read detects the checksum mismatch, quarantines the replica, and
	// read repair restores the replication factor.
	CorruptEveryN int

	// Crashes kills and revives DataNodes when the global block-read
	// counter reaches each event's AtRead. Events are applied in AtRead
	// order, each exactly once.
	Crashes []CrashEvent

	// WorkerKills schedules execution-worker crashes. The DFS itself
	// ignores these events; the distributed execution layer interprets
	// them, killing the named worker process once its task dispatch count
	// reaches AfterTasks (see mapreduce.RPCExecutor). They live on the
	// fault plan so a chaos run's storage and execution faults replay from
	// one seeded schedule.
	WorkerKills []WorkerKillEvent

	// WorkerJoins, WorkerDrains and WorkerSlowdowns schedule membership
	// and straggler churn for the distributed execution layer, keyed on
	// the cluster-global task dispatch count (joins/drains) or the named
	// worker's own dispatch count (slowdowns). Like WorkerKills, the DFS
	// ignores them; mapreduce.RPCExecutor interprets them so one seeded
	// plan replays a whole churn schedule.
	WorkerJoins     []WorkerJoinEvent
	WorkerDrains    []WorkerDrainEvent
	WorkerSlowdowns []WorkerSlowdownEvent
}

// WorkerKillEvent is one scheduled execution-worker crash.
type WorkerKillEvent struct {
	Worker     string // worker name as registered with the master
	AfterTasks int    // fires when the worker's task dispatch count reaches this
}

// WorkerJoinEvent schedules a worker process joining the running engine
// mid-workload: once the cluster-global task dispatch count reaches
// AfterTasks, the execution layer attaches the worker listening at Addr
// under Name (empty auto-assigns the next worker-N name). Joining a name
// that previously died rejoins it in place: its lanes route to the fresh
// connection.
type WorkerJoinEvent struct {
	Addr       string
	Name       string
	AfterTasks int
}

// WorkerDrainEvent schedules a graceful drain: once the cluster-global
// task dispatch count reaches AfterTasks, the named worker stops
// receiving new tasks, finishes its in-flight ones, and detaches.
type WorkerDrainEvent struct {
	Worker     string
	AfterTasks int
}

// WorkerSlowdownEvent makes a worker a straggler: from its AfterTasks-th
// dispatch on, every task dispatched to it is delayed by Delay before the
// call is issued (the loopback equivalent of a slow machine). The delay
// is injected master-side, so it trips speculative execution rather than
// the per-call RPC deadline.
type WorkerSlowdownEvent struct {
	Worker     string
	AfterTasks int
	Delay      time.Duration
}

// CrashEvent is one scheduled node crash or revival.
type CrashEvent struct {
	AtRead int64 // fires before the first block read whose index >= AtRead
	Node   int   // DataNode index
	Revive bool  // true revives the node instead of killing it
}

// normalized returns a copy safe to install: crash events sorted by AtRead
// so the cursor can apply them in order. A nil plan stays nil.
func (p *FaultPlan) normalized() *FaultPlan {
	if p == nil {
		return nil
	}
	q := *p
	q.Crashes = append([]CrashEvent(nil), p.Crashes...)
	sort.SliceStable(q.Crashes, func(i, j int) bool { return q.Crashes[i].AtRead < q.Crashes[j].AtRead })
	return &q
}

// splitmix64 is the finalizer of the SplitMix64 generator; it turns a
// counter into a well-mixed 64-bit value, giving replayable "randomness"
// without any shared generator state.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unitFloat maps a hash to [0,1).
func unitFloat(h uint64) float64 {
	return float64(h>>11) / (1 << 53)
}

// transientReadError decides whether the replica read (readIdx, node)
// fails with an injected transient error. The FailFirstReads budget lives
// on the file system (one consumption counter per installed plan).
func (fs *FileSystem) transientReadError(readIdx int64, node int) bool {
	p := fs.faults
	if p == nil {
		return false
	}
	if p.FailFirstReads > 0 && fs.failBudget.Add(1) <= p.FailFirstReads {
		return true
	}
	if p.TransientReadProb <= 0 {
		return false
	}
	h := splitmix64(uint64(p.Seed) ^ splitmix64(uint64(readIdx)^splitmix64(uint64(node)+0x51ed2701)))
	return unitFloat(h) < p.TransientReadProb
}

// corruptReplica decides which replica (index into the placement list) of a
// freshly written block gets a persistent bit flip; -1 means none.
func (p *FaultPlan) corruptReplica(id BlockID, numReplicas int) int {
	if p == nil || p.CorruptEveryN <= 0 || numReplicas == 0 {
		return -1
	}
	if int64(id)%int64(p.CorruptEveryN) != 0 {
		return -1
	}
	return int(splitmix64(uint64(p.Seed)^splitmix64(uint64(id))) % uint64(numReplicas))
}

// applyCrashSchedule fires every pending crash/revive event whose AtRead
// has been reached. The atomic fast path keeps the no-plan and
// fully-applied cases lock-free on the read hot path.
func (fs *FileSystem) applyCrashSchedule(readIdx int64) {
	p := fs.faults
	if p == nil || len(p.Crashes) == 0 {
		return
	}
	cur := fs.crashCursor.Load()
	if cur >= int64(len(p.Crashes)) || p.Crashes[cur].AtRead > readIdx {
		return
	}
	fs.crashMu.Lock()
	defer fs.crashMu.Unlock()
	for cur = fs.crashCursor.Load(); cur < int64(len(p.Crashes)) && p.Crashes[cur].AtRead <= readIdx; cur++ {
		ev := p.Crashes[cur]
		if ev.Node >= 0 && ev.Node < len(fs.nodes) {
			if ev.Revive {
				fs.ReviveNode(ev.Node)
			} else {
				fs.KillNode(ev.Node)
			}
		}
	}
	fs.crashCursor.Store(cur)
}

// faultCounters aggregates fault, failover and repair activity. All fields
// are atomics so the hot read path can bump them without locks.
type faultCounters struct {
	transientErrors     atomic.Int64
	corruptionsDetected atomic.Int64
	corruptionsInjected atomic.Int64
	replicasQuarantined atomic.Int64
	failoverReads       atomic.Int64
	repairedBlocks      atomic.Int64
	repairReplicasAdded atomic.Int64
	repairReplicasDrop  atomic.Int64
	unrecoverableBlocks atomic.Int64
}

// FaultStats is a point-in-time snapshot of fault and repair activity.
// Subtracting two snapshots gives per-window deltas.
type FaultStats struct {
	// TransientReadErrors counts injected transient replica-read failures.
	TransientReadErrors int64
	// CorruptionsDetected counts checksum mismatches found on read or
	// during repair scans.
	CorruptionsDetected int64
	// CorruptionsInjected counts replicas bit-flipped by the fault plan at
	// write time.
	CorruptionsInjected int64
	// ReplicasQuarantined counts replicas fenced off after a mismatch.
	ReplicasQuarantined int64
	// FailoverReads counts block reads that succeeded only after skipping
	// at least one unusable replica.
	FailoverReads int64
	// RepairedBlocks counts blocks whose replica set was restored by
	// Repair or read repair.
	RepairedBlocks int64
	// RepairReplicasAdded / RepairReplicasDropped count replica copies
	// created from healthy sources and quarantined copies deleted.
	RepairReplicasAdded   int64
	RepairReplicasDropped int64
	// UnrecoverableBlocks counts blocks a repair scan found with no
	// healthy replica anywhere (data loss until a node revives).
	UnrecoverableBlocks int64
}

// Sub returns s - o, field by field.
func (s FaultStats) Sub(o FaultStats) FaultStats {
	return FaultStats{
		TransientReadErrors:   s.TransientReadErrors - o.TransientReadErrors,
		CorruptionsDetected:   s.CorruptionsDetected - o.CorruptionsDetected,
		CorruptionsInjected:   s.CorruptionsInjected - o.CorruptionsInjected,
		ReplicasQuarantined:   s.ReplicasQuarantined - o.ReplicasQuarantined,
		FailoverReads:         s.FailoverReads - o.FailoverReads,
		RepairedBlocks:        s.RepairedBlocks - o.RepairedBlocks,
		RepairReplicasAdded:   s.RepairReplicasAdded - o.RepairReplicasAdded,
		RepairReplicasDropped: s.RepairReplicasDropped - o.RepairReplicasDropped,
		UnrecoverableBlocks:   s.UnrecoverableBlocks - o.UnrecoverableBlocks,
	}
}

// Total returns the sum of all fault-activity fields; non-zero means the
// window saw injected faults, failovers or repairs.
func (s FaultStats) Total() int64 {
	return s.TransientReadErrors + s.CorruptionsDetected + s.CorruptionsInjected +
		s.ReplicasQuarantined + s.FailoverReads + s.RepairedBlocks +
		s.RepairReplicasAdded + s.RepairReplicasDropped + s.UnrecoverableBlocks
}

// FaultStats snapshots the file system's fault and repair counters.
func (fs *FileSystem) FaultStats() FaultStats {
	return FaultStats{
		TransientReadErrors:   fs.stats.transientErrors.Load(),
		CorruptionsDetected:   fs.stats.corruptionsDetected.Load(),
		CorruptionsInjected:   fs.stats.corruptionsInjected.Load(),
		ReplicasQuarantined:   fs.stats.replicasQuarantined.Load(),
		FailoverReads:         fs.stats.failoverReads.Load(),
		RepairedBlocks:        fs.stats.repairedBlocks.Load(),
		RepairReplicasAdded:   fs.stats.repairReplicasAdded.Load(),
		RepairReplicasDropped: fs.stats.repairReplicasDrop.Load(),
		UnrecoverableBlocks:   fs.stats.unrecoverableBlocks.Load(),
	}
}
