package rtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"spq/internal/geo"
)

func randomItems(r *rand.Rand, n int) []Item {
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{ID: uint64(i), Loc: geo.Point{X: r.Float64(), Y: r.Float64()}}
	}
	return items
}

func TestEmptyTree(t *testing.T) {
	tr := Build(nil, 0)
	if tr.Size() != 0 || tr.Height() != 0 {
		t.Errorf("empty tree: size %d height %d", tr.Size(), tr.Height())
	}
	tr.VisitWithin(geo.Point{}, 1, func(Item) bool {
		t.Error("visit on empty tree")
		return true
	})
	if _, _, ok := tr.Nearest(geo.Point{}).Next(); ok {
		t.Error("nearest on empty tree returned an item")
	}
}

func TestSingleItem(t *testing.T) {
	tr := Build([]Item{{ID: 7, Loc: geo.Point{X: 0.5, Y: 0.5}}}, 4)
	if tr.Size() != 1 || tr.Height() != 1 {
		t.Errorf("size %d height %d", tr.Size(), tr.Height())
	}
	if got := tr.CountWithin(geo.Point{X: 0.5, Y: 0.5}, 0); got != 1 {
		t.Errorf("zero-radius count = %d", got)
	}
	if got := tr.CountWithin(geo.Point{X: 0, Y: 0}, 0.1); got != 0 {
		t.Errorf("far count = %d", got)
	}
	item, d, ok := tr.Nearest(geo.Point{X: 0, Y: 0.5}).Next()
	if !ok || item.ID != 7 || math.Abs(d-0.5) > 1e-12 {
		t.Errorf("nearest = %v %v %v", item, d, ok)
	}
}

func TestBuildDoesNotAliasInput(t *testing.T) {
	items := []Item{{ID: 1, Loc: geo.Point{X: 0.9}}, {ID: 2, Loc: geo.Point{X: 0.1}}}
	tr := Build(items, 4)
	items[0].ID = 99
	found := map[uint64]bool{}
	tr.VisitWithin(geo.Point{X: 0.5, Y: 0}, 1, func(it Item) bool {
		found[it.ID] = true
		return true
	})
	if !found[1] || !found[2] || found[99] {
		t.Errorf("tree aliased input: %v", found)
	}
}

func TestHeightGrows(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	tr := Build(randomItems(r, 1000), 8)
	if tr.Height() < 3 {
		t.Errorf("1000 items at fanout 8: height %d, want >= 3", tr.Height())
	}
	if tr.Size() != 1000 {
		t.Errorf("size %d", tr.Size())
	}
	b := tr.Bounds()
	if b.Empty() || b.MaxX > 1 || b.MinX < 0 {
		t.Errorf("bounds %v", b)
	}
}

// Range queries must match a brute-force scan exactly.
func TestVisitWithinMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for _, fanout := range []int{2, 4, 16, 64} {
		items := randomItems(r, 800)
		tr := Build(items, fanout)
		for trial := 0; trial < 50; trial++ {
			center := geo.Point{X: r.Float64()*1.2 - 0.1, Y: r.Float64()*1.2 - 0.1}
			radius := r.Float64() * 0.4
			want := map[uint64]bool{}
			for _, it := range items {
				if geo.Dist2(center, it.Loc) <= radius*radius {
					want[it.ID] = true
				}
			}
			got := map[uint64]bool{}
			tr.VisitWithin(center, radius, func(it Item) bool {
				if got[it.ID] {
					t.Fatalf("item %d visited twice", it.ID)
				}
				got[it.ID] = true
				return true
			})
			if len(got) != len(want) {
				t.Fatalf("fanout %d: visited %d, want %d", fanout, len(got), len(want))
			}
			for id := range want {
				if !got[id] {
					t.Fatalf("fanout %d: item %d missed", fanout, id)
				}
			}
		}
	}
}

func TestVisitWithinEarlyStop(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	tr := Build(randomItems(r, 500), 8)
	n := 0
	tr.VisitWithin(geo.Point{X: 0.5, Y: 0.5}, 1, func(Item) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Errorf("visited %d after early stop, want 5", n)
	}
}

// Nearest iteration must yield items in exactly increasing distance order,
// covering all items.
func TestNearestIterOrder(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	items := randomItems(r, 600)
	tr := Build(items, 8)
	center := geo.Point{X: 0.3, Y: 0.7}

	type distItem struct {
		id uint64
		d  float64
	}
	want := make([]distItem, len(items))
	for i, it := range items {
		want[i] = distItem{it.ID, geo.Dist(center, it.Loc)}
	}
	sort.Slice(want, func(i, j int) bool { return want[i].d < want[j].d })

	it := tr.Nearest(center)
	for i := range want {
		_, d, ok := it.Next()
		if !ok {
			t.Fatalf("iterator exhausted at %d/%d", i, len(want))
		}
		if math.Abs(d-want[i].d) > 1e-9 {
			t.Fatalf("item %d: distance %v, want %v", i, d, want[i].d)
		}
	}
	if _, _, ok := it.Next(); ok {
		t.Error("iterator yielded more than Size items")
	}
}

func TestKNearest(t *testing.T) {
	items := []Item{
		{ID: 1, Loc: geo.Point{X: 0.1, Y: 0}},
		{ID: 2, Loc: geo.Point{X: 0.2, Y: 0}},
		{ID: 3, Loc: geo.Point{X: 0.3, Y: 0}},
	}
	tr := Build(items, 2)
	got := tr.KNearest(geo.Point{X: 0, Y: 0}, 2)
	if len(got) != 2 || got[0].ID != 1 || got[1].ID != 2 {
		t.Errorf("KNearest = %+v", got)
	}
	if got := tr.KNearest(geo.Point{}, 10); len(got) != 3 {
		t.Errorf("over-asking KNearest = %d items", len(got))
	}
}

func TestDuplicateLocations(t *testing.T) {
	items := make([]Item, 20)
	for i := range items {
		items[i] = Item{ID: uint64(i), Loc: geo.Point{X: 0.5, Y: 0.5}}
	}
	tr := Build(items, 4)
	if got := tr.CountWithin(geo.Point{X: 0.5, Y: 0.5}, 0); got != 20 {
		t.Errorf("co-located count = %d, want 20", got)
	}
}

func BenchmarkVisitWithin(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	tr := Build(randomItems(r, 100000), DefaultFanout)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.CountWithin(geo.Point{X: 0.5, Y: 0.5}, 0.01)
	}
}

func BenchmarkBuild(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	items := randomItems(r, 100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(items, DefaultFanout)
	}
}
