// Package rtree implements a static, bulk-loaded R-tree over points using
// Sort-Tile-Recursive (STR) packing. It is the index substrate for the
// centralized baseline the paper's distributed algorithms are contrasted
// with: the original spatial preference query papers ([12, 16, 17] in the
// paper's bibliography) all process the feature dataset through an R-tree.
//
// The tree is immutable after Build and safe for concurrent readers. Two
// query primitives are provided: visiting all points within a radius
// (range queries with MINDIST pruning) and best-first nearest-neighbor
// iteration.
package rtree

import (
	"container/heap"
	"math"
	"sort"

	"spq/internal/geo"
)

// DefaultFanout is the node capacity used when Build is called with a
// non-positive fanout.
const DefaultFanout = 16

// Item is one indexed point with an opaque payload identifier.
type Item struct {
	Loc geo.Point
	ID  uint64
}

// node is one R-tree node: either a leaf holding items or an internal
// node holding children.
type node struct {
	bounds   geo.Rect
	items    []Item  // leaf only
	children []*node // internal only
}

func (n *node) leaf() bool { return n.children == nil }

// Tree is a bulk-loaded R-tree. The zero value is an empty tree.
type Tree struct {
	root   *node
	size   int
	height int
}

// Size returns the number of indexed items.
func (t *Tree) Size() int { return t.size }

// Height returns the number of levels (0 for an empty tree, 1 for a
// single leaf).
func (t *Tree) Height() int { return t.height }

// Bounds returns the bounding rectangle of all items (empty rect for an
// empty tree).
func (t *Tree) Bounds() geo.Rect {
	if t.root == nil {
		return geo.Rect{MinX: 1, MaxX: -1}
	}
	return t.root.bounds
}

// Build bulk-loads a tree from items using STR packing: items are sorted
// into vertical slabs by x, each slab is sorted by y and cut into runs of
// the fanout, and the process recurses over the resulting nodes. The input
// slice is copied.
func Build(items []Item, fanout int) *Tree {
	if fanout <= 0 {
		fanout = DefaultFanout
	}
	if len(items) == 0 {
		return &Tree{}
	}
	leafItems := append([]Item(nil), items...)

	// Pack leaves.
	leaves := packLeaves(leafItems, fanout)
	height := 1
	level := leaves
	for len(level) > 1 {
		level = packNodes(level, fanout)
		height++
	}
	return &Tree{root: level[0], size: len(items), height: height}
}

// packLeaves tiles the items into leaf nodes of up to fanout items.
func packLeaves(items []Item, fanout int) []*node {
	numLeaves := (len(items) + fanout - 1) / fanout
	slabCount := int(math.Ceil(math.Sqrt(float64(numLeaves))))
	slabSize := slabCount * fanout

	sort.Slice(items, func(i, j int) bool { return items[i].Loc.X < items[j].Loc.X })
	var leaves []*node
	for lo := 0; lo < len(items); lo += slabSize {
		hi := lo + slabSize
		if hi > len(items) {
			hi = len(items)
		}
		slab := items[lo:hi]
		sort.Slice(slab, func(i, j int) bool { return slab[i].Loc.Y < slab[j].Loc.Y })
		for s := 0; s < len(slab); s += fanout {
			e := s + fanout
			if e > len(slab) {
				e = len(slab)
			}
			leaf := &node{items: slab[s:e:e]}
			leaf.bounds = itemBounds(leaf.items)
			leaves = append(leaves, leaf)
		}
	}
	return leaves
}

// packNodes tiles child nodes into parents of up to fanout children.
func packNodes(children []*node, fanout int) []*node {
	numParents := (len(children) + fanout - 1) / fanout
	slabCount := int(math.Ceil(math.Sqrt(float64(numParents))))
	slabSize := slabCount * fanout

	sort.Slice(children, func(i, j int) bool {
		return children[i].bounds.Center().X < children[j].bounds.Center().X
	})
	var parents []*node
	for lo := 0; lo < len(children); lo += slabSize {
		hi := lo + slabSize
		if hi > len(children) {
			hi = len(children)
		}
		slab := children[lo:hi]
		sort.Slice(slab, func(i, j int) bool {
			return slab[i].bounds.Center().Y < slab[j].bounds.Center().Y
		})
		for s := 0; s < len(slab); s += fanout {
			e := s + fanout
			if e > len(slab) {
				e = len(slab)
			}
			parent := &node{children: slab[s:e:e]}
			parent.bounds = childBounds(parent.children)
			parents = append(parents, parent)
		}
	}
	return parents
}

func itemBounds(items []Item) geo.Rect {
	b := geo.Rect{MinX: math.Inf(1), MinY: math.Inf(1), MaxX: math.Inf(-1), MaxY: math.Inf(-1)}
	for _, it := range items {
		b = b.Union(geo.Rect{MinX: it.Loc.X, MinY: it.Loc.Y, MaxX: it.Loc.X, MaxY: it.Loc.Y})
	}
	return b
}

func childBounds(children []*node) geo.Rect {
	b := children[0].bounds
	for _, c := range children[1:] {
		b = b.Union(c.bounds)
	}
	return b
}

// VisitWithin calls visit for every item within Euclidean distance radius
// of center (inclusive), pruning subtrees by MINDIST. Returning false from
// visit stops the traversal early.
func (t *Tree) VisitWithin(center geo.Point, radius float64, visit func(Item) bool) {
	if t.root == nil || radius < 0 {
		return
	}
	r2 := radius * radius
	var rec func(n *node) bool
	rec = func(n *node) bool {
		if geo.MinDist2(center, n.bounds) > r2 {
			return true
		}
		if n.leaf() {
			for _, it := range n.items {
				if geo.Dist2(center, it.Loc) <= r2 {
					if !visit(it) {
						return false
					}
				}
			}
			return true
		}
		for _, c := range n.children {
			if !rec(c) {
				return false
			}
		}
		return true
	}
	rec(t.root)
}

// CountWithin returns the number of items within radius of center.
func (t *Tree) CountWithin(center geo.Point, radius float64) int {
	n := 0
	t.VisitWithin(center, radius, func(Item) bool { n++; return true })
	return n
}

// nnEntry is one element of the best-first priority queue: either a node
// (dist = MINDIST) or an item (dist = exact distance).
type nnEntry struct {
	dist float64
	n    *node
	item Item
	leaf bool
}

type nnHeap []nnEntry

func (h nnHeap) Len() int           { return len(h) }
func (h nnHeap) Less(i, j int) bool { return h[i].dist < h[j].dist }
func (h nnHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *nnHeap) Push(x any)        { *h = append(*h, x.(nnEntry)) }
func (h *nnHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// NearestIter iterates items in increasing distance from center
// (best-first search). Next returns items until the tree is exhausted.
type NearestIter struct {
	center geo.Point
	h      nnHeap
}

// Nearest returns a best-first iterator from center.
func (t *Tree) Nearest(center geo.Point) *NearestIter {
	it := &NearestIter{center: center}
	if t.root != nil {
		it.h = nnHeap{{dist: geo.MinDist2(center, t.root.bounds), n: t.root}}
	}
	return it
}

// Next returns the next-nearest item; ok is false when exhausted.
func (it *NearestIter) Next() (Item, float64, bool) {
	for it.h.Len() > 0 {
		e := heap.Pop(&it.h).(nnEntry)
		if e.leaf {
			return e.item, math.Sqrt(e.dist), true
		}
		if e.n.leaf() {
			for _, item := range e.n.items {
				heap.Push(&it.h, nnEntry{dist: geo.Dist2(it.center, item.Loc), item: item, leaf: true})
			}
			continue
		}
		for _, c := range e.n.children {
			heap.Push(&it.h, nnEntry{dist: geo.MinDist2(it.center, c.bounds), n: c})
		}
	}
	return Item{}, 0, false
}

// KNearest returns the k nearest items to center, nearest first.
func (t *Tree) KNearest(center geo.Point, k int) []Item {
	it := t.Nearest(center)
	out := make([]Item, 0, k)
	for len(out) < k {
		item, _, ok := it.Next()
		if !ok {
			break
		}
		out = append(out, item)
	}
	return out
}
