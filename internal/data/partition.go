package data

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"sort"

	"spq/internal/dfs"
	"spq/internal/geo"
	"spq/internal/grid"
	"spq/internal/text"
)

// Partition-aware sealed storage. Instead of one monolithic object file,
// Seal writes the datasets as per-cell files over a fixed seal grid and
// records a manifest with per-cell statistics: record counts, tight
// bounding rectangles and — for feature cells — a bloom-style summary of
// the keywords occurring in the cell. The manifest is what the query
// planner (package plan) consumes to skip whole cell files before the
// MapReduce job starts, the classic write-time-partitioning trade of
// Hadoop-era systems: pay once at load, prune on every query.

// ManifestVersion is the on-disk manifest format version.
const ManifestVersion = 1

// Storage formats recorded in the manifest.
const (
	FormatText       = "text" // newline-delimited EncodeLine records
	FormatBinary     = "seq"  // SPQ1: SequenceFile-like binary records
	FormatColumnar   = "spq2" // SPQ2: columnar cell segments with block zone maps
	FormatCompressed = "spq3" // SPQ3: compressed columnar segments, adaptive blocks
	FormatMemory     = "mem"  // in-memory partitions, no DFS files
)

// IsColumnar reports whether the format stores cells as column blocks
// with zone maps (SPQ2 or SPQ3). Both share the block reader stack —
// manifest zone maps, ranged reads, the decoded-segment cache — and
// differ only in the self-describing block payload encoding.
func IsColumnar(format string) bool {
	return format == FormatColumnar || format == FormatCompressed
}

// Bloom filter geometry for per-cell keyword summaries. 2048 bits and 3
// probes keep the false-positive rate under 1% for the few hundred
// distinct keywords a 32x32-grid cell typically holds; a false positive
// only costs a missed pruning opportunity, never a wrong result.
const (
	bloomBits   = 2048
	bloomProbes = 3
)

// KeywordBloom is a bloom-style bitmap summarizing the keyword strings of
// one feature cell. Keywords are hashed as strings (not interned ids) so
// the summary is valid across dictionary rebuilds and engine restarts.
// The zero value (nil) is the empty summary and contains nothing.
type KeywordBloom []byte

// NewKeywordBloom returns an empty summary.
func NewKeywordBloom() KeywordBloom { return make(KeywordBloom, bloomBits/8) }

// bloomHash computes the word's 64-bit FNV-1a digest once; the probe bit
// positions are derived from its two halves by double hashing.
func bloomHash(word string) (h1, h2 uint32) {
	h := fnv.New64a()
	h.Write([]byte(word))
	s := h.Sum64()
	return uint32(s), uint32(s>>32) | 1
}

// Add inserts a keyword into the summary.
func (b KeywordBloom) Add(word string) {
	h1, h2 := bloomHash(word)
	for i := uint32(0); i < bloomProbes; i++ {
		idx := (h1 + i*h2) % bloomBits
		b[idx/8] |= 1 << (idx % 8)
	}
}

// MayContain reports whether the keyword may occur in the cell. False
// positives are possible; false negatives are not. Summaries of
// unexpected length (possible only through a hand-crafted manifest, which
// DecodeManifest rejects) are treated as empty.
func (b KeywordBloom) MayContain(word string) bool {
	if len(b) != bloomBits/8 {
		return false
	}
	h1, h2 := bloomHash(word)
	for i := uint32(0); i < bloomProbes; i++ {
		idx := (h1 + i*h2) % bloomBits
		if b[idx/8]&(1<<(idx%8)) == 0 {
			return false
		}
	}
	return true
}

// MayContainAny reports whether any of the words may occur in the cell —
// the planner's keyword-disjointness test for one feature cell.
func (b KeywordBloom) MayContainAny(words []string) bool {
	for _, w := range words {
		if b.MayContain(w) {
			return true
		}
	}
	return false
}

// GridSpec records the seal grid a manifest was partitioned over.
type GridSpec struct {
	Bounds geo.Rect `json:"bounds"`
	N      int      `json:"n"` // the grid is N x N
}

// Grid reconstructs the seal grid.
func (s GridSpec) Grid() *grid.Grid { return grid.New(s.Bounds, s.N, s.N) }

// CellStats is the manifest entry for one non-empty seal-grid cell of one
// dataset (data objects and feature objects are partitioned separately, so
// the planner can prune them independently).
type CellStats struct {
	// Cell is the seal-grid cell id.
	Cell int32 `json:"cell"`
	// File names the cell's object file (a DFS file, or a synthetic
	// partition name under StorageMemory).
	File string `json:"file"`
	// Records is the number of objects in the cell.
	Records int `json:"records"`
	// Bounds is the tight bounding rectangle of the cell's objects —
	// tighter than the cell rectangle, which sharpens the planner's
	// distance pruning.
	Bounds geo.Rect `json:"bounds"`
	// Keywords summarizes the keywords of the cell's features. Empty for
	// data cells.
	Keywords KeywordBloom `json:"keywords,omitempty"`
	// Blocks are the per-block zone maps of a columnar cell segment
	// (FormatColumnar or FormatCompressed), in file order: each block's
	// record count, frame offset/length, tight bounding rectangle and
	// keyword summary. The planner prunes individual blocks against them,
	// and readers fetch surviving blocks by ranged read. Empty for SPQ1
	// and text cells, which are only addressable whole.
	Blocks []BlockStats `json:"blocks,omitempty"`
}

// Manifest is the persisted description of one sealed, partitioned
// dataset: the seal grid, the storage format, and per-cell statistics for
// both datasets. Only non-empty cells appear.
type Manifest struct {
	Version int    `json:"version"`
	Format  string `json:"format"`
	// Generation is the storage generation this manifest seals. Under
	// generational ingestion the engine re-seals base+delta into a fresh
	// manifest on every compaction; the strictly increasing generation is
	// what keys query caches and lets readers tell apart the layouts. 0 in
	// manifests written before generations existed.
	Generation uint64      `json:"generation,omitempty"`
	Grid       GridSpec    `json:"grid"`
	Data       []CellStats `json:"data"`
	Features   []CellStats `json:"features"`
}

// Files returns every cell file of the manifest, data cells first.
func (m *Manifest) Files() []string {
	out := make([]string, 0, len(m.Data)+len(m.Features))
	for _, c := range m.Data {
		out = append(out, c.File)
	}
	for _, c := range m.Features {
		out = append(out, c.File)
	}
	return out
}

// TotalRecords returns the total object count across both datasets.
func (m *Manifest) TotalRecords() int64 {
	var n int64
	for _, c := range m.Data {
		n += int64(c.Records)
	}
	for _, c := range m.Features {
		n += int64(c.Records)
	}
	return n
}

// EncodeManifest writes the manifest as JSON.
func EncodeManifest(w io.Writer, m *Manifest) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(m)
}

// DecodeManifest reads a manifest written by EncodeManifest.
func DecodeManifest(r io.Reader) (*Manifest, error) {
	var m Manifest
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("data: manifest decode: %w", err)
	}
	if m.Version != ManifestVersion {
		return nil, fmt.Errorf("data: manifest version %d, want %d", m.Version, ManifestVersion)
	}
	if m.Grid.N <= 0 {
		return nil, fmt.Errorf("data: manifest has invalid seal grid %dx%d", m.Grid.N, m.Grid.N)
	}
	for _, cs := range m.Data {
		if len(cs.Keywords) != 0 {
			return nil, fmt.Errorf("data: manifest data cell %d has a keyword summary", cs.Cell)
		}
		if err := checkBlocks(cs, m.Format, false); err != nil {
			return nil, err
		}
	}
	for _, cs := range m.Features {
		if len(cs.Keywords) != bloomBits/8 {
			return nil, fmt.Errorf("data: manifest feature cell %d has a %d-byte keyword summary, want %d",
				cs.Cell, len(cs.Keywords), bloomBits/8)
		}
		if err := checkBlocks(cs, m.Format, true); err != nil {
			return nil, err
		}
	}
	return &m, nil
}

// checkBlocks validates one cell's block zone maps: columnar cells must
// carry maps whose record counts sum to the cell's, with non-overlapping
// frames in file order; non-columnar cells must carry none. A manifest
// failing these checks could make a reader fetch garbage offsets, so it is
// rejected whole.
func checkBlocks(cs CellStats, format string, feature bool) error {
	if !IsColumnar(format) {
		if len(cs.Blocks) != 0 {
			return fmt.Errorf("data: manifest %s cell %d has block zone maps but format %q", kindName(feature), cs.Cell, format)
		}
		return nil
	}
	if len(cs.Blocks) == 0 {
		return fmt.Errorf("data: manifest columnar %s cell %d has no block zone maps", kindName(feature), cs.Cell)
	}
	total := 0
	next := int64(0)
	for i, bs := range cs.Blocks {
		if bs.Records <= 0 || bs.Length <= 0 || bs.Offset < next {
			return fmt.Errorf("data: manifest %s cell %d block %d has invalid frame (%d records at %d+%d)",
				kindName(feature), cs.Cell, i, bs.Records, bs.Offset, bs.Length)
		}
		wantBloom := 0
		if feature {
			wantBloom = bloomBits / 8
		}
		if len(bs.Keywords) != wantBloom {
			return fmt.Errorf("data: manifest %s cell %d block %d has a %d-byte keyword summary, want %d",
				kindName(feature), cs.Cell, i, len(bs.Keywords), wantBloom)
		}
		next = bs.Offset + int64(bs.Length)
		total += bs.Records
	}
	if total != cs.Records {
		return fmt.Errorf("data: manifest %s cell %d blocks hold %d records, cell says %d",
			kindName(feature), cs.Cell, total, cs.Records)
	}
	return nil
}

func kindName(feature bool) string {
	if feature {
		return "feature"
	}
	return "data"
}

// CellPart is the objects of one dataset falling into one seal-grid cell.
type CellPart struct {
	Cell    grid.CellID
	Objects []Object
}

// Partitions groups a dataset's objects by seal-grid cell, data and
// feature objects separately, each sorted by cell id for deterministic
// file layout.
type Partitions struct {
	Grid *grid.Grid
	// Generation, when set before sealing, is recorded in the manifest (see
	// Manifest.Generation).
	Generation uint64
	Data       []CellPart
	Features   []CellPart
}

// PartitionObjects assigns every object to its enclosing seal-grid cell.
// Input order is preserved within each cell, so a sealed-then-concatenated
// dataset holds exactly the loaded objects.
func PartitionObjects(g *grid.Grid, objs []Object) *Partitions {
	p := &Partitions{Grid: g}
	dataIdx := make(map[grid.CellID]int)
	featIdx := make(map[grid.CellID]int)
	for _, o := range objs {
		c := g.CellOf(o.Loc)
		if o.Kind == DataObject {
			i, ok := dataIdx[c]
			if !ok {
				i = len(p.Data)
				dataIdx[c] = i
				p.Data = append(p.Data, CellPart{Cell: c})
			}
			p.Data[i].Objects = append(p.Data[i].Objects, o)
		} else {
			i, ok := featIdx[c]
			if !ok {
				i = len(p.Features)
				featIdx[c] = i
				p.Features = append(p.Features, CellPart{Cell: c})
			}
			p.Features[i].Objects = append(p.Features[i].Objects, o)
		}
	}
	sort.Slice(p.Data, func(i, j int) bool { return p.Data[i].Cell < p.Data[j].Cell })
	sort.Slice(p.Features, func(i, j int) bool { return p.Features[i].Cell < p.Features[j].Cell })
	return p
}

// stats computes the manifest entry of one cell partition.
func (c CellPart) stats(file string, dict *text.Dict, withKeywords bool) CellStats {
	cs := CellStats{Cell: int32(c.Cell), File: file, Records: len(c.Objects)}
	cs.Bounds = geo.Rect{MinX: 1, MaxX: -1} // empty
	if withKeywords {
		cs.Keywords = NewKeywordBloom()
	}
	for _, o := range c.Objects {
		cs.Bounds = cs.Bounds.Union(geo.Rect{MinX: o.Loc.X, MinY: o.Loc.Y, MaxX: o.Loc.X, MaxY: o.Loc.Y})
		if withKeywords {
			for _, w := range dict.Words(o.Keywords) {
				cs.Keywords.Add(w)
			}
		}
	}
	return cs
}

// cellFileName names one cell file: <prefix>-<d|f><cell>.<ext>.
func cellFileName(prefix, kind string, cell grid.CellID, ext string) string {
	return fmt.Sprintf("%s-%s%04d.%s", prefix, kind, cell, ext)
}

// ManifestFileName names the manifest persisted next to the cell files of
// a seal with the given prefix.
func ManifestFileName(prefix string) string { return prefix + ".manifest.json" }

// sealExt maps a storage format to its cell-file extension.
func sealExt(format string) string {
	switch format {
	case FormatBinary:
		return "seq"
	case FormatColumnar:
		return "spq2"
	case FormatCompressed:
		return "spq3"
	default:
		return "txt"
	}
}

// SealDFS writes every cell partition as its own DFS file in the given
// format (FormatText, FormatBinary, FormatColumnar or FormatCompressed)
// and persists the manifest as <prefix>.manifest.json. The returned
// manifest carries the per-cell statistics the planner prunes on;
// columnar seals additionally carry every block's zone map
// (CellStats.Blocks). SPQ3 seals size each cell's blocks adaptively from
// its record density (AdaptiveBlockRecords).
func (p *Partitions) SealDFS(fs *dfs.FileSystem, prefix string, dict *text.Dict, format string) (*Manifest, error) {
	switch format {
	case FormatText, FormatBinary, FormatColumnar, FormatCompressed:
	default:
		return nil, fmt.Errorf("data: seal format %q", format)
	}
	ext := sealExt(format)
	m := &Manifest{
		Version:    ManifestVersion,
		Format:     format,
		Generation: p.Generation,
		Grid:       GridSpec{Bounds: p.Grid.Bounds(), N: dims(p.Grid)},
	}
	write := func(part CellPart, kind string, withKeywords bool) (CellStats, error) {
		name := cellFileName(prefix, kind, part.Cell, ext)
		w, err := fs.Writer(name)
		if err != nil {
			return CellStats{}, err
		}
		var blocks []BlockStats
		switch format {
		case FormatBinary:
			sw := NewSeqWriter(w, name)
			for _, o := range part.Objects {
				if err := sw.Append(o); err != nil {
					return CellStats{}, err
				}
			}
			if err := sw.Close(); err != nil {
				return CellStats{}, err
			}
		case FormatColumnar, FormatCompressed:
			var cw *ColWriter
			if format == FormatCompressed {
				cw = NewCol3Writer(w, part.Objects[0].Kind, dict, AdaptiveBlockRecords(len(part.Objects)))
			} else {
				cw = NewColWriter(w, part.Objects[0].Kind, dict, 0)
			}
			for _, o := range part.Objects {
				if err := cw.Append(o); err != nil {
					return CellStats{}, err
				}
			}
			if err := cw.Close(); err != nil {
				return CellStats{}, err
			}
			blocks = cw.Stats()
		default:
			for _, o := range part.Objects {
				if err := EncodeLine(w, o, dict); err != nil {
					return CellStats{}, err
				}
			}
			if err := w.Close(); err != nil {
				return CellStats{}, err
			}
		}
		cs := part.stats(name, dict, withKeywords)
		cs.Blocks = blocks
		return cs, nil
	}
	for _, part := range p.Data {
		cs, err := write(part, "d", false)
		if err != nil {
			return nil, fmt.Errorf("data: seal cell %d: %w", part.Cell, err)
		}
		m.Data = append(m.Data, cs)
	}
	for _, part := range p.Features {
		cs, err := write(part, "f", true)
		if err != nil {
			return nil, fmt.Errorf("data: seal cell %d: %w", part.Cell, err)
		}
		m.Features = append(m.Features, cs)
	}
	mw, err := fs.Writer(ManifestFileName(prefix))
	if err != nil {
		return nil, fmt.Errorf("data: seal manifest: %w", err)
	}
	if err := EncodeManifest(mw, m); err != nil {
		return nil, fmt.Errorf("data: seal manifest: %w", err)
	}
	if err := mw.Close(); err != nil {
		return nil, fmt.Errorf("data: seal manifest: %w", err)
	}
	return m, nil
}

// SealMemory lays the partitions out as one contiguous object slice in
// manifest order (data cells, then feature cells) and returns the manifest
// with synthetic partition names. The caller recovers each partition's
// sub-slice by walking the manifest's Records counts in the same order —
// no per-query copying is ever needed.
func (p *Partitions) SealMemory(prefix string, dict *text.Dict) (*Manifest, []Object) {
	m := &Manifest{
		Version:    ManifestVersion,
		Format:     FormatMemory,
		Generation: p.Generation,
		Grid:       GridSpec{Bounds: p.Grid.Bounds(), N: dims(p.Grid)},
	}
	var ordered []Object
	m.Data, m.Features, ordered = p.CellView(prefix, dict)
	return m, ordered
}

// SealSegments writes every cell partition as a columnar segment (SPQ2
// or SPQ3, per format) into an in-memory store and returns the manifest
// describing it: the columnar analogue of SealMemory, used by harnesses
// and tests that want the full block-pruned read path without a simulated
// DFS underneath. blockRecords <= 0 selects the format's default:
// ColBlockRecords for SPQ2, density-adaptive sizing for SPQ3.
func (p *Partitions) SealSegments(store MemSegStore, prefix string, dict *text.Dict, blockRecords int, format string) (*Manifest, error) {
	if !IsColumnar(format) {
		return nil, fmt.Errorf("data: segment seal format %q", format)
	}
	m := &Manifest{
		Version:    ManifestVersion,
		Format:     format,
		Generation: p.Generation,
		Grid:       GridSpec{Bounds: p.Grid.Bounds(), N: dims(p.Grid)},
	}
	write := func(part CellPart, kind string, withKeywords bool) (CellStats, error) {
		name := cellFileName(prefix, kind, part.Cell, sealExt(format))
		var buf bytes.Buffer
		var cw *ColWriter
		if format == FormatCompressed {
			br := blockRecords
			if br <= 0 {
				br = AdaptiveBlockRecords(len(part.Objects))
			}
			cw = NewCol3Writer(&buf, part.Objects[0].Kind, dict, br)
		} else {
			cw = NewColWriter(&buf, part.Objects[0].Kind, dict, blockRecords)
		}
		for _, o := range part.Objects {
			if err := cw.Append(o); err != nil {
				return CellStats{}, err
			}
		}
		if err := cw.Close(); err != nil {
			return CellStats{}, err
		}
		store[name] = append([]byte(nil), buf.Bytes()...)
		cs := part.stats(name, dict, withKeywords)
		cs.Blocks = cw.Stats()
		return cs, nil
	}
	for _, part := range p.Data {
		cs, err := write(part, "d", false)
		if err != nil {
			return nil, fmt.Errorf("data: seal cell %d: %w", part.Cell, err)
		}
		m.Data = append(m.Data, cs)
	}
	for _, part := range p.Features {
		cs, err := write(part, "f", true)
		if err != nil {
			return nil, fmt.Errorf("data: seal cell %d: %w", part.Cell, err)
		}
		m.Features = append(m.Features, cs)
	}
	return m, nil
}

// CellView computes the per-cell statistics and the cell-ordered object
// layout of the partitions without writing any storage: the in-memory
// analogue of a seal. It is what generational ingestion uses to describe
// the unsealed delta to the query planner — the returned CellStats mirror
// a manifest's (record counts, tight bounds, keyword summaries, synthetic
// per-cell names), so delta cells prune exactly like sealed ones.
func (p *Partitions) CellView(prefix string, dict *text.Dict) (dataCells, featureCells []CellStats, ordered []Object) {
	total := 0
	for _, part := range p.Data {
		total += len(part.Objects)
	}
	for _, part := range p.Features {
		total += len(part.Objects)
	}
	ordered = make([]Object, 0, total)
	for _, part := range p.Data {
		dataCells = append(dataCells, part.stats(cellFileName(prefix, "d", part.Cell, "mem"), dict, false))
		ordered = append(ordered, part.Objects...)
	}
	for _, part := range p.Features {
		featureCells = append(featureCells, part.stats(cellFileName(prefix, "f", part.Cell, "mem"), dict, true))
		ordered = append(ordered, part.Objects...)
	}
	return dataCells, featureCells, ordered
}

// dims returns the edge cell count of a square grid.
func dims(g *grid.Grid) int {
	nx, _ := g.Dims()
	return nx
}
