package data

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/bits"
	"sort"
)

// SPQ3 compressed columnar cell segments. The framing (varint length +
// payload + CRC32) and the decoded in-memory form (ColumnBlock) are shared
// with SPQ2; only the block payload changes. Where SPQ2 stores raw
// little-endian columns, SPQ3 compresses each one:
//
//   - ids: zigzag-varint deltas from the previous id, exactly as SPQ2.
//     Seal order sorts ids within a cell, so deltas are small.
//   - coordinates: lossless xor-delta bit-packing. Each float64's bits are
//     XORed with the previous value's bits; the block-wide OR of the
//     deltas determines a common (trailing-zero count, significant width)
//     window, and every delta stores only its `width` bits, LSB first.
//     Sorted, spatially clustered cells share exponent and high mantissa
//     bits, so the window is far narrower than 64 bits — and a constant
//     column (every delta zero) stores zero data bits.
//   - keywords: a per-block sorted dictionary of the distinct keyword ids
//     (delta-varint coded), then one inverted posting list per dictionary
//     entry mapping it back to the records that carry it. Dense postings
//     (≥ 1/8 of the records) store a record bitmap; sparse ones store
//     delta-varint record indexes. The decoder inverts the postings back
//     into the per-record KwOff/Kws layout the scoring code reads.
//
// Block payload layout (all varints unsigned LEB128 unless noted):
//
//	version  byte      '3' (distinguishes SPQ3 from SPQ2's 'D'/'F' kinds)
//	kind     byte      'D' or 'F'
//	count    uvarint   records in the block (>= 1)
//	ids      count zigzag varints, delta-coded from the previous id
//	xs, ys   per column: trail byte, width byte,
//	         ceil(count*width/8) bytes of LSB-first packed deltas
//	if 'F':
//	    dictLen  uvarint   distinct keyword ids in the block
//	    dict     dictLen uvarints: first id raw, then ascending deltas
//	    per dictionary entry, in dictionary order:
//	        method  byte   0 = delta varints, 1 = bitmap
//	        if 0: n uvarint (>= 1), then n record indexes:
//	              first raw, then strictly ascending deltas, all < count
//	        if 1: ceil(count/8) bytes, bit i set = record i has the keyword
//
// The decoder enforces every structural invariant (windows within 64
// bits, ascending dictionaries and postings, bitmap tail bits clear, no
// trailing bytes) and bounds every allocation by the payload size, so
// corrupt input errors out rather than panicking or ballooning memory.

// col3Magic identifies an SPQ3 segment file. Readers never dispatch on
// the file header (blocks are self-describing), but the magic keeps
// segment files identifiable on disk.
var col3Magic = [4]byte{'S', 'P', 'Q', '3'}

// col3Version is the payload version byte. It must stay distinct from the
// SPQ2 kind bytes 'D' and 'F' — DecodeColBlock dispatches on it.
const col3Version = '3'

// Adaptive block sizing: the block is the pruning and decode granule, so
// its ideal size follows cell density. Sparse cells want small blocks
// (less over-read per surviving block); dense clustered cells can afford
// larger ones (fewer frames and zone maps for the same data). The seal
// path sizes blocks as ~8*sqrt(cell records), rounded to a power of two
// and clamped to [colMinBlockRecords, colMaxBlockRecords].
const (
	colMinBlockRecords = 256
	colMaxBlockRecords = 4096
)

// AdaptiveBlockRecords returns the SPQ3 block size, in records, for a
// cell holding cellRecords objects.
func AdaptiveBlockRecords(cellRecords int) int {
	if cellRecords <= 0 {
		return colMinBlockRecords
	}
	target := 8 * math.Sqrt(float64(cellRecords))
	b := colMinBlockRecords
	// Round to the nearest power of two: double while the geometric
	// midpoint of (b, 2b) is still below the target.
	for b < colMaxBlockRecords && float64(b)*math.Sqrt2 < target {
		b <<= 1
	}
	return b
}

// columnBlockOverhead approximates a decoded block's fixed footprint
// (struct header plus six slice headers) for cache accounting.
const columnBlockOverhead = 112

// MemBytes returns the decoded block's approximate memory footprint. The
// segment cache charges this against its byte budget, so adaptive block
// sizes cannot blow the cache's memory bound the way an entry count
// could.
func (b *ColumnBlock) MemBytes() int {
	return columnBlockOverhead +
		8*len(b.IDs) + 8*len(b.Xs) + 8*len(b.Ys) +
		4*len(b.KwOff) + 4*len(b.Kws) +
		4*len(b.Dict) + 4*len(b.PostOff) + 4*len(b.PostRecs)
}

// encodeCol3Block renders objs as one SPQ3 block payload.
func encodeCol3Block(buf *bytes.Buffer, kind Kind, objs []Object) {
	var tmp [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		buf.Write(tmp[:n])
	}
	putVarint := func(v int64) {
		n := binary.PutVarint(tmp[:], v)
		buf.Write(tmp[:n])
	}
	buf.WriteByte(col3Version)
	buf.WriteByte(colKindByte(kind))
	putUvarint(uint64(len(objs)))
	prev := uint64(0)
	for _, o := range objs {
		putVarint(int64(o.ID - prev)) // two's-complement delta, zigzag-coded
		prev = o.ID
	}
	deltas := make([]uint64, len(objs))
	for i, o := range objs {
		deltas[i] = math.Float64bits(o.Loc.X)
	}
	packXorColumn(buf, deltas)
	for i, o := range objs {
		deltas[i] = math.Float64bits(o.Loc.Y)
	}
	packXorColumn(buf, deltas)
	if kind != FeatureObject {
		return
	}

	// Invert the per-record keyword sets into per-keyword posting lists.
	// Records are scanned in block order, so each list is built ascending.
	postings := make(map[uint32][]uint32)
	for i, o := range objs {
		for _, kw := range o.Keywords {
			postings[kw] = append(postings[kw], uint32(i))
		}
	}
	dict := make([]uint32, 0, len(postings))
	for kw := range postings {
		dict = append(dict, kw)
	}
	sort.Slice(dict, func(i, j int) bool { return dict[i] < dict[j] })
	putUvarint(uint64(len(dict)))
	for i, kw := range dict {
		if i == 0 {
			putUvarint(uint64(kw))
		} else {
			putUvarint(uint64(kw - dict[i-1]))
		}
	}
	bitmapBytes := (len(objs) + 7) / 8
	for _, kw := range dict {
		recs := postings[kw]
		if len(recs) >= bitmapBytes {
			// Dense: a bitmap is no larger than one byte per entry.
			buf.WriteByte(1)
			start := buf.Len()
			buf.Write(make([]byte, bitmapBytes))
			bm := buf.Bytes()[start:]
			for _, r := range recs {
				bm[r>>3] |= 1 << (r & 7)
			}
			continue
		}
		buf.WriteByte(0)
		putUvarint(uint64(len(recs)))
		for j, r := range recs {
			if j == 0 {
				putUvarint(uint64(r))
			} else {
				putUvarint(uint64(r - recs[j-1]))
			}
		}
	}
}

// packXorColumn appends one xor-delta bit-packed column: vals carries the
// raw float64 bit patterns and is clobbered in place with the xor deltas.
func packXorColumn(buf *bytes.Buffer, vals []uint64) {
	var or, prev uint64
	for i, b := range vals {
		vals[i] = b ^ prev
		prev = b
		or |= vals[i]
	}
	if or == 0 {
		buf.WriteByte(0) // trail
		buf.WriteByte(0) // width: a constant-zero column stores no bits
		return
	}
	trail := uint(bits.TrailingZeros64(or))
	width := uint(bits.Len64(or >> trail))
	buf.WriteByte(byte(trail))
	buf.WriteByte(byte(width))
	var acc uint64 // pending stream bits [0, nacc)
	var hi uint64  // pending stream bits [64, ...) after a wide append
	var nacc uint
	for _, d := range vals {
		v := d >> trail
		acc |= v << nacc
		if nacc > 0 {
			hi = v >> (64 - nacc)
		}
		nacc += width
		for nacc >= 8 {
			buf.WriteByte(byte(acc))
			acc = acc>>8 | hi<<56
			hi >>= 8
			nacc -= 8
		}
	}
	if nacc > 0 {
		buf.WriteByte(byte(acc))
	}
}

// unpackXorColumn decodes one bit-packed column of count values into out.
func unpackXorColumn(r *byteReaderSlice, count int, out []float64) error {
	trail, err := r.ReadByte()
	if err != nil {
		return errCorrupt("coordinate column: missing trail byte")
	}
	width, err := r.ReadByte()
	if err != nil {
		return errCorrupt("coordinate column: missing width byte")
	}
	if trail > 63 || width > 64 || int(trail)+int(width) > 64 {
		return errCorrupt("coordinate window trail=%d width=%d exceeds 64 bits", trail, width)
	}
	if width == 0 {
		for i := range out[:count] {
			out[i] = 0
		}
		return nil
	}
	need := (count*int(width) + 7) / 8
	if r.remaining() < need {
		return errCorrupt("truncated coordinate column: %d bytes left, need %d", r.remaining(), need)
	}
	// Pad the packed bytes so every value can be assembled from one
	// unconditional 8-byte load plus at most one spill byte.
	padded := make([]byte, need+8)
	copy(padded, r.buf[r.pos:r.pos+need])
	r.pos += need
	mask := ^uint64(0)
	if width < 64 {
		mask = 1<<width - 1
	}
	prev := uint64(0)
	for i := 0; i < count; i++ {
		bitPos := i * int(width)
		off := bitPos >> 3
		shift := uint(bitPos & 7)
		v := binary.LittleEndian.Uint64(padded[off:]) >> shift
		if rem := 64 - shift; uint(width) > rem {
			v |= uint64(padded[off+8]) << rem
		}
		prev ^= (v & mask) << trail
		out[i] = math.Float64frombits(prev)
	}
	return nil
}

// decodeCol3Block decodes one SPQ3 payload; r is positioned just past the
// version byte. Shares DecodeColBlock's contract: corrupt input returns an
// error, never panics, and never allocates beyond a small multiple of the
// payload size.
func decodeCol3Block(payload []byte, r *byteReaderSlice) (*ColumnBlock, error) {
	kindByte, err := r.ReadByte()
	if err != nil {
		return nil, errCorrupt("missing kind byte")
	}
	var kind Kind
	switch kindByte {
	case colKindData:
		kind = DataObject
	case colKindFeature:
		kind = FeatureObject
	default:
		return nil, errCorrupt("unknown kind byte %#x", kindByte)
	}
	count64, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, errCorrupt("record count: %v", err)
	}
	if count64 == 0 {
		return nil, errCorrupt("empty block")
	}
	// Each record needs at least one id byte, so the count is bounded by
	// the payload size; checking before allocating keeps a hostile count
	// varint from forcing a huge allocation.
	if count64 > uint64(r.remaining()) {
		return nil, errCorrupt("record count %d exceeds payload size %d", count64, len(payload))
	}
	count := int(count64)
	b := &ColumnBlock{
		Kind: kind,
		IDs:  make([]uint64, count),
		Xs:   make([]float64, count),
		Ys:   make([]float64, count),
	}
	prev := uint64(0)
	for i := 0; i < count; i++ {
		d, err := binary.ReadVarint(r)
		if err != nil {
			return nil, errCorrupt("id delta %d: %v", i, err)
		}
		prev += uint64(d)
		b.IDs[i] = prev
	}
	if err := unpackXorColumn(r, count, b.Xs); err != nil {
		return nil, err
	}
	if err := unpackXorColumn(r, count, b.Ys); err != nil {
		return nil, err
	}
	if kind == FeatureObject {
		if err := decodeCol3Keywords(payload, r, count, b); err != nil {
			return nil, err
		}
	}
	if r.remaining() != 0 {
		return nil, errCorrupt("%d trailing bytes", r.remaining())
	}
	return b, nil
}

// decodeCol3Keywords decodes the dictionary and posting lists of a
// feature block and inverts them into the per-record KwOff/Kws columns.
func decodeCol3Keywords(payload []byte, r *byteReaderSlice, count int, b *ColumnBlock) error {
	dictLen64, err := binary.ReadUvarint(r)
	if err != nil {
		return errCorrupt("dictionary length: %v", err)
	}
	// Each dictionary entry costs at least one id byte plus one posting
	// method byte.
	if dictLen64 > uint64(r.remaining())/2 {
		return errCorrupt("dictionary length %d exceeds payload size %d", dictLen64, len(payload))
	}
	dictLen := int(dictLen64)
	dict := make([]uint32, dictLen)
	kw := uint64(0)
	for i := 0; i < dictLen; i++ {
		v, err := binary.ReadUvarint(r)
		if err != nil {
			return errCorrupt("dictionary id %d: %v", i, err)
		}
		if i == 0 {
			kw = v
		} else {
			if v == 0 {
				return errCorrupt("dictionary not strictly ascending at entry %d", i)
			}
			kw += v
		}
		if kw > math.MaxUint32 {
			return errCorrupt("dictionary id %d overflows uint32", kw)
		}
		dict[i] = uint32(kw)
	}

	// Pass 1: parse every posting list once, collecting the record indexes
	// and per-record keyword counts. Every posting entry costs at least one
	// stored bit, so the entry total is bounded by 8x the payload size.
	maxTotal := 8 * len(payload)
	bitmapBytes := (count + 7) / 8
	recs := make([]uint32, 0, min(maxTotal, 4*count))
	pOff := make([]int32, dictLen+1)
	cnt := make([]int32, count)
	total := 0
	for e := 0; e < dictLen; e++ {
		method, err := r.ReadByte()
		if err != nil {
			return errCorrupt("posting %d: missing method byte", e)
		}
		switch method {
		case 0:
			n64, err := binary.ReadUvarint(r)
			if err != nil {
				return errCorrupt("posting %d length: %v", e, err)
			}
			if n64 == 0 {
				return errCorrupt("posting %d is empty", e)
			}
			if n64 > uint64(count) {
				return errCorrupt("posting %d holds %d of %d records", e, n64, count)
			}
			rec := uint64(0)
			for j := 0; j < int(n64); j++ {
				d, err := binary.ReadUvarint(r)
				if err != nil {
					return errCorrupt("posting %d index %d: %v", e, j, err)
				}
				if j == 0 {
					rec = d
				} else {
					if d == 0 {
						return errCorrupt("posting %d not strictly ascending at index %d", e, j)
					}
					rec += d
				}
				if rec >= uint64(count) {
					return errCorrupt("posting %d index %d out of range", e, j)
				}
				recs = append(recs, uint32(rec))
				cnt[rec]++
			}
			total += int(n64)
		case 1:
			if r.remaining() < bitmapBytes {
				return errCorrupt("truncated posting %d bitmap: %d bytes left, need %d", e, r.remaining(), bitmapBytes)
			}
			bm := r.buf[r.pos : r.pos+bitmapBytes]
			r.pos += bitmapBytes
			n := 0
			for bi, bv := range bm {
				for bv != 0 {
					j := bits.TrailingZeros8(bv)
					bv &= bv - 1
					rec := bi<<3 | j
					if rec >= count {
						return errCorrupt("posting %d bitmap sets bit %d beyond %d records", e, rec, count)
					}
					recs = append(recs, uint32(rec))
					cnt[rec]++
					n++
				}
			}
			if n == 0 {
				return errCorrupt("posting %d is empty", e)
			}
			total += n
		default:
			return errCorrupt("posting %d: unknown method byte %#x", e, method)
		}
		if total > maxTotal {
			return errCorrupt("keyword total %d exceeds payload size %d", total, len(payload))
		}
		pOff[e+1] = int32(total)
	}

	// Retain the inverted view: the posting lists were just parsed, and
	// keeping them lets the columnar source skip irrelevant records by
	// dictionary intersection instead of testing every record's set.
	b.Dict = dict
	b.PostOff = pOff
	b.PostRecs = recs

	// Pass 2: scatter the postings back into per-record keyword sets.
	// Iterating the dictionary in ascending order fills each record's set
	// strictly ascending — the KeywordSet invariant — for free.
	b.KwOff = make([]int32, count+1)
	for i := 0; i < count; i++ {
		b.KwOff[i+1] = b.KwOff[i] + cnt[i]
	}
	b.Kws = make([]uint32, total)
	fill := cnt // reuse: becomes the per-record write cursor
	copy(fill, b.KwOff[:count])
	for e := 0; e < dictLen; e++ {
		kw := dict[e]
		for _, rec := range recs[pOff[e]:pOff[e+1]] {
			b.Kws[fill[rec]] = kw
			fill[rec]++
		}
	}
	return nil
}
