package data

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"

	"spq/internal/dfs"
	"spq/internal/mapreduce"
)

// Binary object files, modeled after Hadoop's SequenceFile: a short header
// followed by length-prefixed binary records, with a 16-byte sync marker
// inserted every syncInterval records. The marker lets a reader positioned
// at an arbitrary byte offset (the start of a DFS block split) resynchronize
// on the next record boundary, so binary files are splittable exactly like
// newline-delimited text.
//
// Layout:
//
//	magic   [4]byte  "SPQ1"
//	marker  [16]byte  file-unique sync marker
//	repeat:
//	    either  marker [16]byte            (sync point)
//	    or      length uvarint, payload    (one encoded Object)
//
// A record length of 0 is never produced, and the marker is chosen so that
// it cannot collide with a record prefix (see newSyncMarker).

var seqMagic = [4]byte{'S', 'P', 'Q', '1'}

// syncInterval is the number of records between sync markers.
const syncInterval = 64

// newSyncMarker derives a deterministic 16-byte marker from the file name.
// The first byte is forced to 0x00: record headers start with a non-zero
// uvarint length byte (records are never empty), so a marker can never be
// confused with the start of a record.
func newSyncMarker(name string) [16]byte {
	h := fnv.New128a()
	h.Write([]byte(name))
	var m [16]byte
	h.Sum(m[:0])
	m[0] = 0x00
	return m
}

// SeqWriter writes objects in the binary format.
type SeqWriter struct {
	w          *bufio.Writer
	marker     [16]byte
	sinceSync  int
	records    int
	headerDone bool
	closer     io.Closer

	// Reused encode scratch: each record is staged here to learn its
	// length before the varint prefix is written, without allocating a
	// buffer and writer per Append.
	payload bytes.Buffer
	enc     *bufio.Writer
}

// NewSeqWriter creates a binary writer over w. name seeds the sync marker;
// use the target file name.
func NewSeqWriter(w io.Writer, name string) *SeqWriter {
	var c io.Closer
	if wc, ok := w.(io.Closer); ok {
		c = wc
	}
	s := &SeqWriter{w: bufio.NewWriterSize(w, 64<<10), marker: newSyncMarker(name), closer: c}
	s.enc = bufio.NewWriter(&s.payload)
	return s
}

func (s *SeqWriter) writeHeader() error {
	if s.headerDone {
		return nil
	}
	if _, err := s.w.Write(seqMagic[:]); err != nil {
		return err
	}
	if _, err := s.w.Write(s.marker[:]); err != nil {
		return err
	}
	s.headerDone = true
	return nil
}

// Append writes one object.
func (s *SeqWriter) Append(o Object) error {
	if err := s.writeHeader(); err != nil {
		return err
	}
	if s.sinceSync >= syncInterval {
		if _, err := s.w.Write(s.marker[:]); err != nil {
			return err
		}
		s.sinceSync = 0
	}
	s.payload.Reset()
	s.enc.Reset(&s.payload)
	if err := encodeObject(s.enc, o); err != nil {
		return err
	}
	if err := s.enc.Flush(); err != nil {
		return err
	}
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(s.payload.Len()))
	if _, err := s.w.Write(lenBuf[:n]); err != nil {
		return err
	}
	if _, err := s.w.Write(s.payload.Bytes()); err != nil {
		return err
	}
	s.sinceSync++
	s.records++
	return nil
}

// Records returns the number of objects written so far.
func (s *SeqWriter) Records() int { return s.records }

// Close flushes buffered data (and closes the underlying writer when it is
// an io.Closer).
func (s *SeqWriter) Close() error {
	if err := s.writeHeader(); err != nil { // empty files still get a header
		return err
	}
	if err := s.w.Flush(); err != nil {
		return err
	}
	if s.closer != nil {
		return s.closer.Close()
	}
	return nil
}

// WriteSeqToDFS stores the dataset in the binary format as a single DFS
// file.
func (d *Dataset) WriteSeqToDFS(fs *dfs.FileSystem, name string) error {
	w, err := fs.Writer(name)
	if err != nil {
		return err
	}
	sw := NewSeqWriter(w, name)
	for _, o := range d.Objects() {
		if err := sw.Append(o); err != nil {
			return fmt.Errorf("data: seq write: %w", err)
		}
	}
	if err := sw.Close(); err != nil {
		return fmt.Errorf("data: seq close: %w", err)
	}
	return nil
}

// SeqInput is a MapReduce source reading binary object files with one
// split per DFS block, using sync markers for record alignment: a split
// that does not start at the file header scans forward to the first sync
// marker at or after its offset, and every split reads past its end until
// the next marker (or EOF), so each record is processed exactly once.
type SeqInput struct {
	FS    *dfs.FileSystem
	Files []string
}

// NewSeqInput constructs a SeqInput.
func NewSeqInput(fs *dfs.FileSystem, files ...string) *SeqInput {
	return &SeqInput{FS: fs, Files: files}
}

// Splits implements mapreduce.Source.
func (si *SeqInput) Splits() ([]mapreduce.SourceSplit[Object], error) {
	var out []mapreduce.SourceSplit[Object]
	for _, f := range si.Files {
		splits, err := si.FS.Splits(f)
		if err != nil {
			return nil, err
		}
		length, err := si.FS.Len(f)
		if err != nil {
			return nil, err
		}
		marker := newSyncMarker(f)
		for _, s := range splits {
			out = append(out, &seqSplit{fs: si.FS, split: s, fileLen: length, marker: marker})
		}
	}
	return out, nil
}

type seqSplit struct {
	fs      *dfs.FileSystem
	split   dfs.Split
	fileLen int64
	marker  [16]byte
}

func (s *seqSplit) Hosts() []string { return s.split.Hosts }

// Size implements mapreduce.SizedSplit.
func (s *seqSplit) Size() int64 { return int64(s.split.Length) }

// SplitRef implements mapreduce.RefSplit: a seq split is fully described
// by its file byte range — the sync marker is derived from the file name
// and the file length is re-read at open time.
func (s *seqSplit) SplitRef() (*mapreduce.SplitRef, error) {
	return &mapreduce.SplitRef{Kind: "seq", File: s.split.File, Offset: s.split.Offset, Length: int64(s.split.Length)}, nil
}

// OpenSeqRef re-opens a "seq" split reference against fs (typically a
// worker's local mirror of the master file). Marker scanning and record
// ownership follow the same conventions as the original split, so the
// reference yields exactly the same records.
func OpenSeqRef(fs *dfs.FileSystem, ref *mapreduce.SplitRef) (mapreduce.SourceSplit[Object], error) {
	length, err := fs.Len(ref.File)
	if err != nil {
		return nil, err
	}
	return &seqSplit{
		fs:      fs,
		split:   dfs.Split{File: ref.File, Offset: ref.Offset, Length: int(ref.Length)},
		fileLen: length,
		marker:  newSyncMarker(ref.File),
	}, nil
}

// Each implements mapreduce.SourceSplit.
func (s *seqSplit) Each(yield func(Object) bool) error {
	start := s.split.Offset
	end := s.split.Offset + int64(s.split.Length)
	headerLen := int64(len(seqMagic) + len(s.marker))

	if start == 0 {
		start = headerLen
	} else {
		// Scan forward to the first sync marker that *starts* at or after
		// this split's offset. A marker straddling the boundary belongs to
		// the previous split: that split reads past its end up to the first
		// marker starting at or after the boundary, so ownership of every
		// record is unambiguous.
		scanFrom := start
		if scanFrom < headerLen {
			scanFrom = headerLen
		}
		pos, ok, err := s.findMarker(scanFrom)
		if err != nil {
			return err
		}
		if !ok || pos+int64(len(s.marker)) > s.fileLen {
			return nil // no records begin in this split
		}
		start = pos + int64(len(s.marker))
		if pos >= end {
			// The first marker at/after our offset already belongs to the
			// next split's territory.
			return nil
		}
	}

	// Read records from start; continue past end until the next marker.
	// The payload buffer and decode readers are reused across records so
	// the per-record loop allocates only what escapes into the object.
	r := &dfsReader{fs: s.fs, file: s.split.File, pos: start}
	br := bufio.NewReaderSize(r, 64<<10)
	var payload []byte
	pr := bytes.NewReader(nil)
	dr := bufio.NewReaderSize(pr, 4<<10)
	consumed := start
	for {
		if consumed >= s.fileLen {
			return nil
		}
		// Peek for a sync marker.
		head, err := br.Peek(len(s.marker))
		if err == nil && bytes.Equal(head, s.marker[:]) {
			if consumed >= end {
				return nil // next split takes over at this marker
			}
			if _, err := br.Discard(len(s.marker)); err != nil {
				return err
			}
			consumed += int64(len(s.marker))
			continue
		}
		if err != nil && err != io.EOF && err != bufio.ErrBufferFull {
			return err
		}
		length, err := binary.ReadUvarint(br)
		if err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("data: seq record length: %w", err)
		}
		consumed += int64(uvarintSize(length))
		if uint64(cap(payload)) < length {
			payload = make([]byte, length)
		} else {
			payload = payload[:length]
		}
		if _, err := io.ReadFull(br, payload); err != nil {
			return fmt.Errorf("data: seq record payload: %w", err)
		}
		consumed += int64(length)
		pr.Reset(payload)
		dr.Reset(pr)
		obj, err := decodeObject(dr)
		if err != nil {
			return fmt.Errorf("data: seq record decode: %w", err)
		}
		if !yield(obj) {
			return nil
		}
	}
}

// findMarker scans the file from offset from for the sync marker and
// returns its byte position.
func (s *seqSplit) findMarker(from int64) (int64, bool, error) {
	const chunk = 64 << 10
	overlap := int64(len(s.marker) - 1)
	pos := from
	var carry []byte
	for pos < s.fileLen {
		buf, err := s.fs.ReadRange(s.split.File, pos, chunk)
		if err != nil {
			return 0, false, err
		}
		if len(buf) == 0 {
			return 0, false, nil
		}
		search := append(carry, buf...)
		if i := bytes.Index(search, s.marker[:]); i >= 0 {
			return pos - int64(len(carry)) + int64(i), true, nil
		}
		if int64(len(search)) >= overlap {
			carry = append([]byte(nil), search[int64(len(search))-overlap:]...)
		} else {
			carry = append([]byte(nil), search...)
		}
		pos += int64(len(buf))
	}
	return 0, false, nil
}

// uvarintSize returns the encoded size of v in bytes.
func uvarintSize(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// dfsReader adapts FileSystem.ReadRange to io.Reader.
type dfsReader struct {
	fs   *dfs.FileSystem
	file string
	pos  int64
}

func (r *dfsReader) Read(p []byte) (int, error) {
	buf, err := r.fs.ReadRange(r.file, r.pos, len(p))
	if err != nil {
		return 0, err
	}
	if len(buf) == 0 {
		return 0, io.EOF
	}
	n := copy(p, buf)
	r.pos += int64(n)
	return n, nil
}
