package data

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"spq/internal/dfs"
	"spq/internal/geo"
	"spq/internal/text"
)

func randObjects(r *rand.Rand, n int) []Object {
	objs := make([]Object, n)
	for i := range objs {
		o := Object{ID: uint64(i), Loc: geo.Point{X: r.Float64(), Y: r.Float64()}}
		if r.Intn(2) == 1 {
			o.Kind = FeatureObject
			ids := make([]uint32, 1+r.Intn(10))
			for j := range ids {
				ids[j] = uint32(r.Intn(500))
			}
			o.Keywords = text.NewKeywordSet(ids...)
		}
		objs[i] = o
	}
	return objs
}

func collectSeq(t *testing.T, fs *dfs.FileSystem, file string) map[uint64]Object {
	t.Helper()
	src := NewSeqInput(fs, file)
	splits, err := src.Splits()
	if err != nil {
		t.Fatal(err)
	}
	got := map[uint64]Object{}
	for _, s := range splits {
		err := s.Each(func(o Object) bool {
			if _, dup := got[o.ID]; dup {
				t.Fatalf("object %d delivered twice", o.ID)
			}
			got[o.ID] = o
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return got
}

func TestSeqFileRoundTripSingleBlock(t *testing.T) {
	fs := dfs.New(dfs.Config{NumNodes: 2, BlockSize: 1 << 20, Seed: 1})
	r := rand.New(rand.NewSource(1))
	objs := randObjects(r, 300)
	w, err := fs.Writer("seq")
	if err != nil {
		t.Fatal(err)
	}
	sw := NewSeqWriter(w, "seq")
	for _, o := range objs {
		if err := sw.Append(o); err != nil {
			t.Fatal(err)
		}
	}
	if sw.Records() != 300 {
		t.Errorf("Records = %d", sw.Records())
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	got := collectSeq(t, fs, "seq")
	if len(got) != len(objs) {
		t.Fatalf("read %d objects, want %d", len(got), len(objs))
	}
	for _, want := range objs {
		g := got[want.ID]
		if g.Kind != want.Kind || g.Loc != want.Loc || !g.Keywords.Equal(want.Keywords) {
			t.Fatalf("object %d mismatch: %+v vs %+v", want.ID, g, want)
		}
	}
}

// Every record must be delivered exactly once across many block sizes,
// including ones that split records and sync markers mid-way.
func TestSeqFileSplitsExactlyOnce(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	objs := randObjects(r, 1000)
	for _, blockSize := range []int{64, 127, 256, 1000, 4096, 1 << 15} {
		t.Run(fmt.Sprintf("block%d", blockSize), func(t *testing.T) {
			fs := dfs.New(dfs.Config{NumNodes: 3, BlockSize: blockSize, Seed: 2})
			w, err := fs.Writer("seq")
			if err != nil {
				t.Fatal(err)
			}
			sw := NewSeqWriter(w, "seq")
			for _, o := range objs {
				if err := sw.Append(o); err != nil {
					t.Fatal(err)
				}
			}
			if err := sw.Close(); err != nil {
				t.Fatal(err)
			}
			got := collectSeq(t, fs, "seq")
			if len(got) != len(objs) {
				t.Fatalf("block %d: read %d objects, want %d", blockSize, len(got), len(objs))
			}
			for _, want := range objs {
				g, ok := got[want.ID]
				if !ok {
					t.Fatalf("object %d missing", want.ID)
				}
				if g.Loc != want.Loc || !g.Keywords.Equal(want.Keywords) {
					t.Fatalf("object %d corrupted", want.ID)
				}
			}
		})
	}
}

func TestSeqFileEmpty(t *testing.T) {
	fs := dfs.New(dfs.Config{NumNodes: 2, BlockSize: 64, Seed: 1})
	w, err := fs.Writer("empty")
	if err != nil {
		t.Fatal(err)
	}
	sw := NewSeqWriter(w, "empty")
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if got := collectSeq(t, fs, "empty"); len(got) != 0 {
		t.Errorf("empty file yielded %d objects", len(got))
	}
}

func TestSeqFileEarlyStop(t *testing.T) {
	fs := dfs.New(dfs.Config{NumNodes: 2, BlockSize: 1 << 20, Seed: 1})
	r := rand.New(rand.NewSource(3))
	objs := randObjects(r, 100)
	w, _ := fs.Writer("seq")
	sw := NewSeqWriter(w, "seq")
	for _, o := range objs {
		sw.Append(o)
	}
	sw.Close()
	src := NewSeqInput(fs, "seq")
	splits, _ := src.Splits()
	n := 0
	err := splits[0].Each(func(Object) bool {
		n++
		return n < 7
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 7 {
		t.Errorf("yield called %d times, want 7", n)
	}
}

func TestWriteSeqToDFSAndDataset(t *testing.T) {
	ds := Generate(UniformSpec(400))
	fs := dfs.New(dfs.Config{NumNodes: 4, BlockSize: 2 << 10, Seed: 9})
	if err := ds.WriteSeqToDFS(fs, "un.seq"); err != nil {
		t.Fatal(err)
	}
	got := collectSeq(t, fs, "un.seq")
	if len(got) != 400 {
		t.Fatalf("read %d, want 400", len(got))
	}
}

func TestSyncMarkerProperties(t *testing.T) {
	a := newSyncMarker("file-a")
	b := newSyncMarker("file-b")
	if a == b {
		t.Error("markers for different files collide")
	}
	if a[0] != 0 || b[0] != 0 {
		t.Error("marker first byte must be zero (cannot prefix a record)")
	}
	if a != newSyncMarker("file-a") {
		t.Error("marker not deterministic")
	}
}

func TestUvarintSize(t *testing.T) {
	var buf bytes.Buffer
	for _, v := range []uint64{0, 1, 127, 128, 300, 1 << 20, 1<<63 - 1} {
		buf.Reset()
		var tmp [10]byte
		n := putUvarintLen(tmp[:], v)
		if got := uvarintSize(v); got != n {
			t.Errorf("uvarintSize(%d) = %d, want %d", v, got, n)
		}
	}
}

func putUvarintLen(buf []byte, v uint64) int {
	n := 0
	for v >= 0x80 {
		buf[n] = byte(v) | 0x80
		v >>= 7
		n++
	}
	buf[n] = byte(v)
	return n + 1
}
