// Package data provides the object model of the paper — spatial data
// objects p ∈ O and spatio-textual feature objects f ∈ F — together with
// the serialization formats used to store them in the simulated DFS and to
// spill them inside MapReduce jobs, and synthetic dataset generators
// reproducing the statistical properties of the paper's four experimental
// datasets (Flickr, Twitter, Uniform, Clustered; Section 7.1).
package data

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"spq/internal/geo"
	"spq/internal/mapreduce"
	"spq/internal/text"
)

// Kind distinguishes the two object datasets of the paper.
type Kind uint8

// Object kinds.
const (
	// DataObject is a member of the object dataset O: the objects that are
	// ranked and returned by the query.
	DataObject Kind = iota
	// FeatureObject is a member of the feature dataset F: spatio-textual
	// objects that determine the scores of data objects.
	FeatureObject
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k == DataObject {
		return "data"
	}
	return "feature"
}

// Object is one spatial object. Data objects have an empty keyword set;
// feature objects carry interned keywords (Section 3.1).
type Object struct {
	Kind     Kind
	ID       uint64
	Loc      geo.Point
	Keywords text.KeywordSet
}

// String implements fmt.Stringer.
func (o Object) String() string {
	return fmt.Sprintf("%s#%d@%v kw=%d", o.Kind, o.ID, o.Loc, len(o.Keywords))
}

// EncodeLine renders the object in the tab-separated text format stored in
// the DFS:
//
//	D <id> <x> <y>
//	F <id> <x> <y> <kw1,kw2,...>
//
// Keywords are written as strings resolved through dict so that files are
// self-describing and partition-independent.
func EncodeLine(w io.Writer, o Object, dict *text.Dict) error {
	var err error
	switch o.Kind {
	case DataObject:
		_, err = fmt.Fprintf(w, "D\t%d\t%g\t%g\n", o.ID, o.Loc.X, o.Loc.Y)
	case FeatureObject:
		_, err = fmt.Fprintf(w, "F\t%d\t%g\t%g\t%s\n",
			o.ID, o.Loc.X, o.Loc.Y, strings.Join(dict.Words(o.Keywords), ","))
	default:
		err = fmt.Errorf("data: unknown kind %d", o.Kind)
	}
	return err
}

// ParseLine decodes one text line produced by EncodeLine, interning
// keywords into dict.
func ParseLine(line []byte, dict *text.Dict) (Object, error) {
	fields := strings.Split(string(line), "\t")
	if len(fields) < 4 {
		return Object{}, fmt.Errorf("data: malformed line %q", line)
	}
	id, err := strconv.ParseUint(fields[1], 10, 64)
	if err != nil {
		return Object{}, fmt.Errorf("data: bad id in %q: %w", line, err)
	}
	x, err := strconv.ParseFloat(fields[2], 64)
	if err != nil {
		return Object{}, fmt.Errorf("data: bad x in %q: %w", line, err)
	}
	y, err := strconv.ParseFloat(fields[3], 64)
	if err != nil {
		return Object{}, fmt.Errorf("data: bad y in %q: %w", line, err)
	}
	o := Object{ID: id, Loc: geo.Point{X: x, Y: y}}
	switch fields[0] {
	case "D":
		o.Kind = DataObject
	case "F":
		o.Kind = FeatureObject
		if len(fields) >= 5 && fields[4] != "" {
			o.Keywords = dict.InternAll(strings.Split(fields[4], ","))
		}
	default:
		return Object{}, fmt.Errorf("data: unknown kind %q in %q", fields[0], line)
	}
	return o, nil
}

// ObjectCodec serializes objects compactly (varint-based) for MapReduce
// spill files. Keyword ids round-trip as ids: within one job execution the
// dictionary is shared, so ids are stable.
func ObjectCodec() *mapreduce.Codec[Object] {
	return &mapreduce.Codec[Object]{Encode: encodeObject, Decode: decodeObject}
}

func encodeObject(w *bufio.Writer, o Object) error {
	var buf [binary.MaxVarintLen64]byte
	put := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := w.Write(buf[:n])
		return err
	}
	if err := w.WriteByte(byte(o.Kind)); err != nil {
		return err
	}
	if err := put(o.ID); err != nil {
		return err
	}
	var fixed [16]byte
	binary.LittleEndian.PutUint64(fixed[:8], math.Float64bits(o.Loc.X))
	binary.LittleEndian.PutUint64(fixed[8:], math.Float64bits(o.Loc.Y))
	if _, err := w.Write(fixed[:]); err != nil {
		return err
	}
	if err := put(uint64(len(o.Keywords))); err != nil {
		return err
	}
	for _, kw := range o.Keywords {
		if err := put(uint64(kw)); err != nil {
			return err
		}
	}
	return nil
}

func decodeObject(r *bufio.Reader) (Object, error) {
	var o Object
	kind, err := r.ReadByte()
	if err != nil {
		return o, err
	}
	o.Kind = Kind(kind)
	id, err := binary.ReadUvarint(r)
	if err != nil {
		return o, err
	}
	o.ID = id
	var fixed [16]byte
	if _, err := io.ReadFull(r, fixed[:]); err != nil {
		return o, err
	}
	o.Loc.X = math.Float64frombits(binary.LittleEndian.Uint64(fixed[:8]))
	o.Loc.Y = math.Float64frombits(binary.LittleEndian.Uint64(fixed[8:]))
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return o, err
	}
	if n > 0 {
		kws := make(text.KeywordSet, n)
		for i := range kws {
			v, err := binary.ReadUvarint(r)
			if err != nil {
				return o, err
			}
			kws[i] = uint32(v)
		}
		o.Keywords = kws // already sorted: encoded from a sorted set
	}
	return o, nil
}
