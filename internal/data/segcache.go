package data

import (
	"container/list"
	"sync"
)

// Decoded-segment cache: an LRU over decoded column blocks, keyed on
// (storage generation, cell file, block index). Sealed segments are
// write-once, so a decoded block is valid for as long as its generation is
// served; a compaction writes new files under a new generation, making the
// old entries unreachable by construction (they age out of the LRU), the
// same invalidation discipline the engine's query cache uses. Hot
// clustered queries — repeats over the same few cells — skip both the
// ranged read and the columnar decode entirely.
//
// The cache budget is decoded bytes, not entry count: SPQ3's adaptive
// block sizes put anywhere from 256 to 4096 records in one block, so an
// entry-counted LRU could hold 16x more memory than intended depending on
// which cells happen to be hot. Each entry is charged ColumnBlock.MemBytes.

// DefaultBlockCacheBytes is the default budget of the decoded-segment
// cache: 48 MiB of decoded columns, the same order of memory the previous
// 1024-entry default held at the fixed SPQ2 block size.
const DefaultBlockCacheBytes = 48 << 20

// BlockKey identifies one decoded block.
type BlockKey struct {
	// Gen is the storage generation the block's manifest seals.
	Gen uint64
	// File is the cell segment file; Index is the block's position in the
	// cell's zone-map list.
	File  string
	Index int
}

// BlockCacheStats is the cumulative outcome of a BlockCache.
type BlockCacheStats struct {
	Hits, Misses int64
	Entries      int
	// Bytes is the decoded size currently held, as charged against the
	// cache's byte budget.
	Bytes int64
}

// BlockCache is a mutex-guarded LRU of decoded column blocks, shared by
// every query of one engine. Blocks are immutable after decode, so a hit
// hands out the cached instance itself.
type BlockCache struct {
	mu      sync.Mutex
	cap     int64      // byte budget
	bytes   int64      // decoded bytes currently held
	ll      *list.List // front = most recently used
	entries map[BlockKey]*list.Element
	hits    int64
	misses  int64
}

type blockEntry struct {
	key   BlockKey
	block *ColumnBlock
	bytes int64
}

// NewBlockCache creates a cache holding up to capacity bytes of decoded
// blocks. capacity <= 0 selects DefaultBlockCacheBytes.
func NewBlockCache(capacity int64) *BlockCache {
	if capacity <= 0 {
		capacity = DefaultBlockCacheBytes
	}
	return &BlockCache{
		cap:     capacity,
		ll:      list.New(),
		entries: make(map[BlockKey]*list.Element),
	}
}

// Get returns the cached block for key, if present.
func (c *BlockCache) Get(key BlockKey) (*ColumnBlock, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*blockEntry).block, true
}

// Put stores a decoded block, evicting least recently used entries until
// the decoded bytes fit the budget. A block larger than the whole budget
// is still admitted (alone) — refusing it would make its cell un-cacheable
// and thrash the decode path. Concurrent decoders of the same block may
// both Put; the last one wins, which is harmless because decoded blocks of
// one (gen, file, index) are identical.
func (c *BlockCache) Put(key BlockKey, b *ColumnBlock) {
	if c == nil {
		return
	}
	size := int64(b.MemBytes())
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		ent := el.Value.(*blockEntry)
		c.bytes += size - ent.bytes
		ent.block = b
		ent.bytes = size
		c.ll.MoveToFront(el)
	} else {
		c.entries[key] = c.ll.PushFront(&blockEntry{key: key, block: b, bytes: size})
		c.bytes += size
	}
	for c.bytes > c.cap && c.ll.Len() > 1 {
		oldest := c.ll.Back()
		ent := oldest.Value.(*blockEntry)
		c.ll.Remove(oldest)
		delete(c.entries, ent.key)
		c.bytes -= ent.bytes
	}
}

// Stats snapshots the cumulative hit/miss counts and current size.
func (c *BlockCache) Stats() BlockCacheStats {
	if c == nil {
		return BlockCacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return BlockCacheStats{Hits: c.hits, Misses: c.misses, Entries: c.ll.Len(), Bytes: c.bytes}
}
