package data

import (
	"container/list"
	"sync"
)

// Decoded-segment cache: an LRU over decoded column blocks, keyed on
// (storage generation, cell file, block index). Sealed segments are
// write-once, so a decoded block is valid for as long as its generation is
// served; a compaction writes new files under a new generation, making the
// old entries unreachable by construction (they age out of the LRU), the
// same invalidation discipline the engine's query cache uses. Hot
// clustered queries — repeats over the same few cells — skip both the
// ranged read and the columnar decode entirely.

// DefaultBlockCacheSize is the default capacity of the decoded-segment
// cache, in column blocks (~2048 records each, roughly 40 MiB of decoded
// columns at the default block size).
const DefaultBlockCacheSize = 1024

// BlockKey identifies one decoded block.
type BlockKey struct {
	// Gen is the storage generation the block's manifest seals.
	Gen uint64
	// File is the cell segment file; Index is the block's position in the
	// cell's zone-map list.
	File  string
	Index int
}

// BlockCacheStats is the cumulative outcome of a BlockCache.
type BlockCacheStats struct {
	Hits, Misses int64
	Entries      int
}

// BlockCache is a mutex-guarded LRU of decoded column blocks, shared by
// every query of one engine. Blocks are immutable after decode, so a hit
// hands out the cached instance itself.
type BlockCache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used
	entries map[BlockKey]*list.Element
	hits    int64
	misses  int64
}

type blockEntry struct {
	key   BlockKey
	block *ColumnBlock
}

// NewBlockCache creates a cache holding up to capacity decoded blocks.
// capacity <= 0 selects DefaultBlockCacheSize.
func NewBlockCache(capacity int) *BlockCache {
	if capacity <= 0 {
		capacity = DefaultBlockCacheSize
	}
	return &BlockCache{
		cap:     capacity,
		ll:      list.New(),
		entries: make(map[BlockKey]*list.Element, capacity),
	}
}

// Get returns the cached block for key, if present.
func (c *BlockCache) Get(key BlockKey) (*ColumnBlock, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*blockEntry).block, true
}

// Put stores a decoded block, evicting the least recently used entry when
// full. Concurrent decoders of the same block may both Put; the last one
// wins, which is harmless because decoded blocks of one (gen, file, index)
// are identical.
func (c *BlockCache) Put(key BlockKey, b *ColumnBlock) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*blockEntry).block = b
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(&blockEntry{key: key, block: b})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*blockEntry).key)
	}
}

// Stats snapshots the cumulative hit/miss counts and current size.
func (c *BlockCache) Stats() BlockCacheStats {
	if c == nil {
		return BlockCacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return BlockCacheStats{Hits: c.hits, Misses: c.misses, Entries: c.ll.Len()}
}
