package data

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"spq/internal/geo"
	"spq/internal/text"
)

// writeSegment3 seals objs (single kind) as one in-memory SPQ3 segment.
func writeSegment3(t *testing.T, objs []Object, blockRecords int, dict *text.Dict) ([]byte, []BlockStats) {
	t.Helper()
	var buf bytes.Buffer
	cw := NewCol3Writer(&buf, objs[0].Kind, dict, blockRecords)
	for _, o := range objs {
		if err := cw.Append(o); err != nil {
			t.Fatal(err)
		}
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), cw.Stats()
}

func TestCol3SegmentRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	dict := text.NewDict()
	all := randObjects(r, 700)
	for _, kind := range []Kind{DataObject, FeatureObject} {
		for _, blockRecords := range []int{1, 7, 256, 100000} {
			objs := onlyKind(all, kind)
			raw, stats := writeSegment3(t, objs, blockRecords, dict)

			wantBlocks := (len(objs) + blockRecords - 1) / blockRecords
			if len(stats) != wantBlocks {
				t.Fatalf("%v/%d: %d blocks, want %d", kind, blockRecords, len(stats), wantBlocks)
			}
			var back []Object
			for i, bs := range stats {
				b, err := DecodeColFrame(raw[bs.Offset : bs.Offset+int64(bs.Length)])
				if err != nil {
					t.Fatalf("%v/%d: block %d: %v", kind, blockRecords, i, err)
				}
				if b.Len() != bs.Records {
					t.Fatalf("%v/%d: block %d decoded %d records, zone map says %d",
						kind, blockRecords, i, b.Len(), bs.Records)
				}
				for j := 0; j < b.Len(); j++ {
					o := b.Object(j)
					if !bs.Bounds.Contains(o.Loc) {
						t.Fatalf("%v/%d: block %d object %d outside the zone-map bounds", kind, blockRecords, i, o.ID)
					}
					if kind == FeatureObject {
						for _, w := range dict.Words(o.Keywords) {
							if !bs.Keywords.MayContain(w) {
								t.Fatalf("%v/%d: block %d bloom misses keyword %q", kind, blockRecords, i, w)
							}
						}
					}
					back = append(back, o)
				}
			}
			if len(back) != len(objs) {
				t.Fatalf("%v/%d: %d objects back, want %d", kind, blockRecords, len(back), len(objs))
			}
			for i := range objs {
				if back[i].Kind != objs[i].Kind || back[i].ID != objs[i].ID || back[i].Loc != objs[i].Loc ||
					!reflect.DeepEqual(append(text.KeywordSet(nil), back[i].Keywords...), objs[i].Keywords) {
					t.Fatalf("%v/%d: object %d differs: %v vs %v", kind, blockRecords, i, back[i], objs[i])
				}
			}
		}
	}
}

// TestCol3SegmentSmaller pins the point of the format: on sorted,
// spatially clustered cells the SPQ3 encoding is strictly smaller than
// the raw SPQ2 columns.
func TestCol3SegmentSmaller(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	dict := text.NewDict()
	// A clustered cell: nearby coordinates, ascending ids, few distinct
	// keywords — the layout SealDFS produces for one grid cell.
	objs := make([]Object, 2000)
	for i := range objs {
		objs[i] = Object{
			Kind: FeatureObject,
			ID:   uint64(1<<40 + i*3),
			Loc:  geo.Point{X: 41.2 + r.Float64()*0.01, Y: 2.1 + r.Float64()*0.01},
			Keywords: text.NewKeywordSet(
				uint32(r.Intn(40)), uint32(40+r.Intn(40)), uint32(80+r.Intn(40))),
		}
	}
	raw2, _ := writeSegment(t, objs, 512, dict)
	raw3, _ := writeSegment3(t, objs, 512, dict)
	if len(raw3) >= len(raw2) {
		t.Fatalf("SPQ3 segment (%d bytes) not smaller than SPQ2 (%d bytes)", len(raw3), len(raw2))
	}
}

// TestCol3SegmentRejectsCorruption mirrors the SPQ2 corruption test for
// the compressed payloads: flips, truncations and misalignment must all
// error, never panic.
func TestCol3SegmentRejectsCorruption(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	dict := text.NewDict()
	objs := onlyKind(randObjects(r, 300), FeatureObject)
	raw, stats := writeSegment3(t, objs, 64, dict)
	bs := stats[1]
	frame := raw[bs.Offset : bs.Offset+int64(bs.Length)]

	if _, err := DecodeColFrame(frame); err != nil {
		t.Fatalf("pristine frame rejected: %v", err)
	}
	for n := 0; n < len(frame); n++ {
		if _, err := DecodeColFrame(frame[:n]); err == nil {
			t.Fatalf("truncation to %d of %d bytes accepted", n, len(frame))
		}
	}
	for i := 0; i < len(frame); i++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), frame...)
			mut[i] ^= 1 << bit
			if _, err := DecodeColFrame(mut); err == nil {
				t.Fatalf("bit flip at byte %d bit %d accepted", i, bit)
			}
		}
	}
	if _, err := DecodeColFrame(append(append([]byte(nil), frame...), 0xAB)); err == nil {
		t.Fatal("frame with trailing garbage accepted")
	}
	if _, err := DecodeColFrame(raw[bs.Offset+3 : bs.Offset+3+int64(bs.Length)]); err == nil {
		t.Fatal("misaligned frame accepted")
	}
}

func TestAdaptiveBlockRecords(t *testing.T) {
	cases := []struct{ records, want int }{
		{0, 256}, {1, 256}, {1000, 256},
		{4000, 512}, {16000, 1024}, {40000, 2048},
		{250000, 4096}, {10_000_000, 4096},
	}
	for _, c := range cases {
		if got := AdaptiveBlockRecords(c.records); got != c.want {
			t.Errorf("AdaptiveBlockRecords(%d) = %d, want %d", c.records, got, c.want)
		}
	}
}

// TestPackXorColumn round-trips the coordinate bit-packer over its edge
// cases: zero columns, constant columns, NaN and infinity payloads, full
// 64-bit windows, and widths past the accumulator's 57-bit fast path.
func TestPackXorColumn(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	wide := make([]float64, 100)
	for i := range wide {
		wide[i] = math.Float64frombits(r.Uint64())
	}
	cases := map[string][]float64{
		"zero":     {0, 0, 0, 0},
		"constant": {3.25, 3.25, 3.25},
		"single":   {-12.5},
		"negzero":  {0, math.Copysign(0, -1), 0},
		"nan-inf":  {math.NaN(), math.Inf(1), math.Inf(-1), 0},
		"narrow":   {100.0, 100.25, 100.5, 100.125, 100.375},
		"full":     wide,
	}
	for name, vals := range cases {
		var buf bytes.Buffer
		bitsIn := make([]uint64, len(vals))
		for i, v := range vals {
			bitsIn[i] = math.Float64bits(v)
		}
		packXorColumn(&buf, bitsIn)
		rd := &byteReaderSlice{buf: buf.Bytes()}
		out := make([]float64, len(vals))
		if err := unpackXorColumn(rd, len(vals), out); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rd.remaining() != 0 {
			t.Fatalf("%s: %d bytes left over", name, rd.remaining())
		}
		for i := range vals {
			if math.Float64bits(out[i]) != math.Float64bits(vals[i]) {
				t.Fatalf("%s: value %d: got %x, want %x", name, i,
					math.Float64bits(out[i]), math.Float64bits(vals[i]))
			}
		}
	}
}

// TestCol3PostingMethods exercises both posting encodings in one block: a
// keyword on every record (bitmap) next to keywords on a single record
// (delta varints), decoded back to identical keyword sets.
func TestCol3PostingMethods(t *testing.T) {
	dict := text.NewDict()
	objs := make([]Object, 64)
	for i := range objs {
		kws := []uint32{7} // dense: present on all 64 records
		if i%16 == 0 {
			kws = append(kws, uint32(100+i)) // sparse: one record each
		}
		objs[i] = Object{
			Kind:     FeatureObject,
			ID:       uint64(i),
			Loc:      geo.Point{X: float64(i), Y: -float64(i)},
			Keywords: text.NewKeywordSet(kws...),
		}
	}
	raw, stats := writeSegment3(t, objs, 0, dict)
	if len(stats) != 1 {
		t.Fatalf("%d blocks, want 1", len(stats))
	}
	b, err := DecodeColFrame(raw[stats[0].Offset : stats[0].Offset+int64(stats[0].Length)])
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range objs {
		got := b.Object(i)
		if !got.Keywords.Equal(want.Keywords) {
			t.Fatalf("record %d keywords: got %v, want %v", i, got.Keywords, want.Keywords)
		}
	}
}

// FuzzCol3BlockRoundTrip drives the SPQ3 encoder with fuzzer-chosen
// objects and checks encode -> frame -> decode is the identity.
func FuzzCol3BlockRoundTrip(f *testing.F) {
	f.Add(uint64(7), 0.25, -3.5, "alpha,beta", true)
	f.Add(uint64(1<<63), -1e300, 1e-300, "", false)
	f.Add(uint64(0), 0.0, 0.0, strings.Repeat("k,", 40), true)
	f.Add(uint64(42), math.Inf(1), math.NaN(), "dense", true)
	f.Fuzz(func(t *testing.T, id uint64, x, y float64, kws string, feature bool) {
		dict := text.NewDict()
		kind := DataObject
		var set text.KeywordSet
		if feature {
			kind = FeatureObject
			if kws != "" {
				set = dict.InternAll(strings.Split(kws, ","))
			}
		}
		objs := []Object{
			{Kind: kind, ID: id, Loc: geo.Point{X: x, Y: y}, Keywords: set},
			{Kind: kind, ID: id / 2, Loc: geo.Point{X: y, Y: x}},
			{Kind: kind, ID: id/2 + 1, Loc: geo.Point{X: x / 2, Y: y * 2}, Keywords: set},
		}
		var buf bytes.Buffer
		cw := NewCol3Writer(&buf, kind, dict, 0)
		for _, o := range objs {
			if err := cw.Append(o); err != nil {
				t.Fatal(err)
			}
		}
		if err := cw.Close(); err != nil {
			t.Fatal(err)
		}
		stats := cw.Stats()
		if len(stats) != 1 {
			t.Fatalf("%d blocks, want 1", len(stats))
		}
		bs := stats[0]
		b, err := DecodeColFrame(buf.Bytes()[bs.Offset : bs.Offset+int64(bs.Length)])
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if b.Len() != len(objs) {
			t.Fatalf("decoded %d records, want %d", b.Len(), len(objs))
		}
		for i, want := range objs {
			got := b.Object(i)
			if got.Kind != want.Kind || got.ID != want.ID ||
				!sameFloat(got.Loc.X, want.Loc.X) || !sameFloat(got.Loc.Y, want.Loc.Y) ||
				!got.Keywords.Equal(want.Keywords) {
				t.Fatalf("record %d: got %v, want %v", i, got, want)
			}
		}
	})
}

// TestEachRelevant: pushdown iteration over a decoded SPQ3 feature block
// must yield exactly the records whose keyword sets intersect the query
// set — the Map-phase prune, applied through the block dictionary — in
// ascending record order, for both the single-posting and the
// bitmap-union paths.
func TestEachRelevant(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	dict := text.NewDict()
	objs := onlyKind(randObjects(r, 400), FeatureObject)
	raw, stats := writeSegment3(t, objs, 128, dict)
	for bi, bs := range stats {
		b, err := DecodeColFrame(raw[bs.Offset : bs.Offset+int64(bs.Length)])
		if err != nil {
			t.Fatal(err)
		}
		if b.Dict == nil {
			t.Fatalf("block %d decoded without its posting view", bi)
		}
		queries := [][]uint32{
			{b.Dict[0]},                           // single posting list
			{b.Dict[0], b.Dict[len(b.Dict)/2]},    // bitmap union
			{1 << 30},                             // out of vocabulary
			{0, b.Dict[len(b.Dict)-1], 1<<31 - 1}, // mixed hits and misses
		}
		for qi, kws := range queries {
			want := make([]Object, 0, b.Len())
			for i := 0; i < b.Len(); i++ {
				if o := b.Object(i); o.Keywords.Intersects(text.KeywordSet(kws)) {
					want = append(want, o)
				}
			}
			var got []Object
			eachRelevant(b, kws, func(o Object) bool {
				got = append(got, o)
				return true
			})
			if len(got) != len(want) {
				t.Fatalf("block %d query %d: %d records, want %d", bi, qi, len(got), len(want))
			}
			for i := range want {
				if got[i].ID != want[i].ID || got[i].Loc != want[i].Loc ||
					!reflect.DeepEqual(got[i].Keywords, want[i].Keywords) {
					t.Fatalf("block %d query %d: record %d differs: %v vs %v", bi, qi, i, got[i], want[i])
				}
			}
			// Early stop must be honored on every path.
			if len(want) > 0 {
				n := 0
				eachRelevant(b, kws, func(Object) bool { n++; return false })
				if n != 1 {
					t.Fatalf("block %d query %d: early stop yielded %d records", bi, qi, n)
				}
			}
		}
	}
}
