package data

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"spq/internal/geo"
	"spq/internal/text"
)

// SPQ2 columnar cell segments. Where the SPQ1 SequenceFile layout
// (seqfile.go) stores one length-prefixed record after another, an SPQ2
// segment stores the objects of one seal-grid cell as column blocks of
// ColBlockRecords records each, in struct-of-arrays layout: all ids, then
// all x coordinates, then all y coordinates, then — for feature cells —
// the per-record keyword counts followed by one flat keyword-id array.
// Disk-based keyword search systems organize postings the same way
// (block-organized lists with per-block metadata) precisely because it
// buys two things record files cannot offer:
//
//  1. Block skipping. Every block carries a zone map — record count,
//     tight bounding rectangle, keyword bloom — persisted in the seal
//     manifest (CellStats.Blocks), so the query planner prunes at block
//     granularity and the reader fetches only surviving blocks by
//     (offset, length) random access. SPQ1 readers must decode a whole
//     cell file to skip any of it.
//  2. Dense decode. A block decodes into parallel column slices
//     (ColumnBlock) exactly once; the map phase then views records as
//     stack-allocated Object values whose keyword sets alias the block's
//     flat keyword column — no per-record allocation, and a decoded block
//     is shared read-only by every concurrent query through the segment
//     cache (BlockCache).
//
// File layout:
//
//	magic   [4]byte  "SPQ2"
//	kind    byte     'D' (data cell) or 'F' (feature cell)
//	repeat per block:
//	    length  uvarint   payload byte count
//	    payload []byte    one encoded column block (below)
//	    crc32   [4]byte   IEEE CRC of payload, little-endian
//
// Block payload layout (all varints unsigned LEB128 unless noted):
//
//	kind     byte      'D' or 'F' (blocks are self-describing)
//	count    uvarint   records in the block (>= 1)
//	ids      count zigzag varints, delta-coded from the previous id
//	xs, ys   count * 8 bytes each, raw little-endian float64 columns
//	if 'F':
//	    kwCounts  count uvarints  keywords per record
//	    kws       sum(kwCounts) uvarints  flat keyword-id column
//
// Readers never scan a segment: block offsets and lengths come from the
// manifest's zone maps, and the per-block CRC turns any corruption —
// truncation, bit rot, a wrong offset — into an error instead of garbage
// objects or a panic (see DecodeColBlock and the package fuzz tests).

// colMagic identifies an SPQ2 segment file.
var colMagic = [4]byte{'S', 'P', 'Q', '2'}

// ColBlockRecords is the number of records per column block. Blocks are
// the unit of zone-map pruning, of decode, and of segment caching: small
// enough that a block's bounding box and keyword bloom stay selective on
// skewed cells (a clustered cell holding tens of thousands of records
// splits into many prunable blocks), large enough that per-block framing
// and decode dispatch are noise.
const ColBlockRecords = 2048

// Block kind bytes.
const (
	colKindData    = 'D'
	colKindFeature = 'F'
)

func colKindByte(k Kind) byte {
	if k == DataObject {
		return colKindData
	}
	return colKindFeature
}

// BlockStats is the zone map of one column block, persisted in the seal
// manifest next to the owning cell's statistics. Offset and Length frame
// the block inside its segment file (varint length prefix through trailing
// CRC), so a reader fetches exactly the surviving blocks with one ranged
// read each.
type BlockStats struct {
	// Records is the number of objects in the block.
	Records int `json:"records"`
	// Offset is the byte position of the block's frame in the segment
	// file; Length is the frame's total byte count.
	Offset int64 `json:"offset"`
	Length int   `json:"length"`
	// Bounds is the tight bounding rectangle of the block's objects.
	Bounds geo.Rect `json:"bounds"`
	// Keywords summarizes the keywords of the block's features. Empty for
	// data blocks.
	Keywords KeywordBloom `json:"keywords,omitempty"`
}

// ColWriter writes one cell's objects as an SPQ2 columnar segment,
// accumulating the per-block zone maps as it goes.
type ColWriter struct {
	w            io.Writer
	kind         Kind
	dict         *text.Dict
	blockRecords int
	spq3         bool
	off          int64
	headerDone   bool
	closer       io.Closer

	pending []Object
	stats   []BlockStats
	buf     bytes.Buffer // reused block-payload scratch
}

// NewColWriter creates a columnar writer over w for a single-kind cell
// partition. dict resolves keyword ids to words for the per-block bloom
// summaries (may be nil for data cells). blockRecords <= 0 selects
// ColBlockRecords.
func NewColWriter(w io.Writer, kind Kind, dict *text.Dict, blockRecords int) *ColWriter {
	if blockRecords <= 0 {
		blockRecords = ColBlockRecords
	}
	var c io.Closer
	if wc, ok := w.(io.Closer); ok {
		c = wc
	}
	return &ColWriter{w: w, kind: kind, dict: dict, blockRecords: blockRecords, closer: c}
}

// NewCol3Writer creates a writer emitting the compressed SPQ3 format
// (colseg3.go) instead of SPQ2. Framing, zone maps and the reader stack
// are shared; only the block payload encoding differs.
func NewCol3Writer(w io.Writer, kind Kind, dict *text.Dict, blockRecords int) *ColWriter {
	cw := NewColWriter(w, kind, dict, blockRecords)
	cw.spq3 = true
	return cw
}

func (c *ColWriter) writeHeader() error {
	if c.headerDone {
		return nil
	}
	magic := colMagic
	if c.spq3 {
		magic = col3Magic
	}
	if _, err := c.w.Write(magic[:]); err != nil {
		return err
	}
	if _, err := c.w.Write([]byte{colKindByte(c.kind)}); err != nil {
		return err
	}
	c.off = int64(len(colMagic)) + 1
	c.headerDone = true
	return nil
}

// Append adds one object. Objects of the wrong kind are rejected: a
// segment holds exactly one cell of one dataset.
func (c *ColWriter) Append(o Object) error {
	if o.Kind != c.kind {
		return fmt.Errorf("data: %s object %d appended to a %s segment", o.Kind, o.ID, c.kind)
	}
	c.pending = append(c.pending, o)
	if len(c.pending) >= c.blockRecords {
		return c.flushBlock()
	}
	return nil
}

// flushBlock encodes the pending objects as one framed block and records
// its zone map.
func (c *ColWriter) flushBlock() error {
	if len(c.pending) == 0 {
		return nil
	}
	if err := c.writeHeader(); err != nil {
		return err
	}
	c.buf.Reset()
	if c.spq3 {
		encodeCol3Block(&c.buf, c.kind, c.pending)
	} else {
		encodeColBlock(&c.buf, c.kind, c.pending)
	}
	payload := c.buf.Bytes()

	bs := BlockStats{Records: len(c.pending), Offset: c.off}
	bs.Bounds = geo.Rect{MinX: 1, MaxX: -1} // empty
	if c.kind == FeatureObject {
		bs.Keywords = NewKeywordBloom()
	}
	for _, o := range c.pending {
		bs.Bounds = bs.Bounds.Union(geo.Rect{MinX: o.Loc.X, MinY: o.Loc.Y, MaxX: o.Loc.X, MaxY: o.Loc.Y})
		if c.kind == FeatureObject && c.dict != nil {
			for _, w := range c.dict.Words(o.Keywords) {
				bs.Keywords.Add(w)
			}
		}
	}

	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(payload)))
	if _, err := c.w.Write(lenBuf[:n]); err != nil {
		return err
	}
	if _, err := c.w.Write(payload); err != nil {
		return err
	}
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], crc32.ChecksumIEEE(payload))
	if _, err := c.w.Write(crcBuf[:]); err != nil {
		return err
	}
	bs.Length = n + len(payload) + len(crcBuf)
	c.off += int64(bs.Length)
	c.stats = append(c.stats, bs)
	c.pending = c.pending[:0]
	return nil
}

// Close flushes the final partial block (and closes the underlying writer
// when it is an io.Closer). Empty segments still get a header.
func (c *ColWriter) Close() error {
	if err := c.flushBlock(); err != nil {
		return err
	}
	if err := c.writeHeader(); err != nil {
		return err
	}
	if c.closer != nil {
		return c.closer.Close()
	}
	return nil
}

// Stats returns the zone maps of the blocks written so far, in file order.
// Call after Close for the complete set.
func (c *ColWriter) Stats() []BlockStats { return c.stats }

// encodeColBlock renders objs as one block payload. Writes to a
// bytes.Buffer cannot fail, so encoding is infallible.
func encodeColBlock(buf *bytes.Buffer, kind Kind, objs []Object) {
	var tmp [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		buf.Write(tmp[:n])
	}
	putVarint := func(v int64) {
		n := binary.PutVarint(tmp[:], v)
		buf.Write(tmp[:n])
	}
	buf.WriteByte(colKindByte(kind))
	putUvarint(uint64(len(objs)))
	prev := uint64(0)
	for _, o := range objs {
		putVarint(int64(o.ID - prev)) // two's-complement delta, zigzag-coded
		prev = o.ID
	}
	var fixed [8]byte
	for _, o := range objs {
		binary.LittleEndian.PutUint64(fixed[:], math.Float64bits(o.Loc.X))
		buf.Write(fixed[:])
	}
	for _, o := range objs {
		binary.LittleEndian.PutUint64(fixed[:], math.Float64bits(o.Loc.Y))
		buf.Write(fixed[:])
	}
	if kind == FeatureObject {
		for _, o := range objs {
			putUvarint(uint64(len(o.Keywords)))
		}
		for _, o := range objs {
			for _, kw := range o.Keywords {
				putUvarint(uint64(kw))
			}
		}
	}
}

// ColumnBlock is one decoded column block: parallel slices holding the
// block's records in struct-of-arrays layout. A decoded block is immutable
// and safe for concurrent readers; the segment cache shares one instance
// across queries.
type ColumnBlock struct {
	Kind Kind
	IDs  []uint64
	Xs   []float64
	Ys   []float64
	// KwOff and Kws hold the keyword postings of a feature block: record
	// i's keywords are Kws[KwOff[i]:KwOff[i+1]]. Nil for data blocks.
	KwOff []int32
	Kws   []uint32
	// Dict, PostOff and PostRecs are the inverted view the SPQ3 decoder
	// gets for free from the on-disk posting lists: Dict is the block's
	// sorted distinct keyword ids, and keyword Dict[e] occurs on records
	// PostRecs[PostOff[e]:PostOff[e+1]] (ascending). The columnar source
	// intersects a query's keyword set with Dict to skip records the
	// Map-phase keyword prune would drop, without materializing them.
	// Nil for data blocks and for SPQ2-decoded feature blocks.
	Dict     []uint32
	PostOff  []int32
	PostRecs []uint32
}

// Len returns the number of records in the block.
func (b *ColumnBlock) Len() int { return len(b.IDs) }

// Object views record i as an Object. The value is constructed on the
// caller's stack; its keyword set aliases the block's flat keyword column,
// so no per-record heap allocation happens on the read path.
func (b *ColumnBlock) Object(i int) Object {
	o := Object{Kind: b.Kind, ID: b.IDs[i], Loc: geo.Point{X: b.Xs[i], Y: b.Ys[i]}}
	if b.KwOff != nil {
		if kws := b.Kws[b.KwOff[i]:b.KwOff[i+1]]; len(kws) > 0 {
			o.Keywords = text.KeywordSet(kws)
		}
	}
	return o
}

// errCorrupt builds the uniform corrupt-block error.
func errCorrupt(format string, args ...any) error {
	return fmt.Errorf("data: corrupt column block: "+format, args...)
}

// byteReaderSlice adapts a byte slice for binary varint readers while
// tracking the position.
type byteReaderSlice struct {
	buf []byte
	pos int
}

func (r *byteReaderSlice) ReadByte() (byte, error) {
	if r.pos >= len(r.buf) {
		return 0, io.ErrUnexpectedEOF
	}
	b := r.buf[r.pos]
	r.pos++
	return b, nil
}

func (r *byteReaderSlice) remaining() int { return len(r.buf) - r.pos }

// DecodeColBlock decodes one block payload (the bytes between the frame's
// length prefix and its CRC). Blocks are self-describing: an SPQ2 payload
// opens with its kind byte, an SPQ3 payload with the '3' version byte, so
// one decoder serves both formats and mixed-generation storage needs no
// out-of-band format plumbing. Every structural violation — truncation,
// impossible counts, unsorted keyword sets, trailing garbage — returns an
// error; malformed input can never panic or silently yield objects. This
// is the fuzzing boundary of the format.
func DecodeColBlock(payload []byte) (*ColumnBlock, error) {
	r := &byteReaderSlice{buf: payload}
	kindByte, err := r.ReadByte()
	if err != nil {
		return nil, errCorrupt("missing kind byte")
	}
	var kind Kind
	switch kindByte {
	case colKindData:
		kind = DataObject
	case colKindFeature:
		kind = FeatureObject
	case col3Version:
		return decodeCol3Block(payload, r)
	default:
		return nil, errCorrupt("unknown kind byte %#x", kindByte)
	}
	count64, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, errCorrupt("record count: %v", err)
	}
	if count64 == 0 {
		return nil, errCorrupt("empty block")
	}
	// Each record needs at least 1 id byte + 16 coordinate bytes, so the
	// count is bounded by the payload size; checking before allocating
	// keeps a hostile count varint from forcing a huge allocation.
	if count64 > uint64(r.remaining())/17 {
		return nil, errCorrupt("record count %d exceeds payload size %d", count64, len(payload))
	}
	count := int(count64)
	b := &ColumnBlock{
		Kind: kind,
		IDs:  make([]uint64, count),
		Xs:   make([]float64, count),
		Ys:   make([]float64, count),
	}
	prev := uint64(0)
	for i := 0; i < count; i++ {
		d, err := binary.ReadVarint(r)
		if err != nil {
			return nil, errCorrupt("id delta %d: %v", i, err)
		}
		prev += uint64(d)
		b.IDs[i] = prev
	}
	if r.remaining() < 16*count {
		return nil, errCorrupt("truncated coordinate columns: %d bytes left, need %d", r.remaining(), 16*count)
	}
	for i := 0; i < count; i++ {
		b.Xs[i] = math.Float64frombits(binary.LittleEndian.Uint64(r.buf[r.pos:]))
		r.pos += 8
	}
	for i := 0; i < count; i++ {
		b.Ys[i] = math.Float64frombits(binary.LittleEndian.Uint64(r.buf[r.pos:]))
		r.pos += 8
	}
	if kind == FeatureObject {
		b.KwOff = make([]int32, count+1)
		total := uint64(0)
		for i := 0; i < count; i++ {
			n, err := binary.ReadUvarint(r)
			if err != nil {
				return nil, errCorrupt("keyword count %d: %v", i, err)
			}
			total += n
			// Every keyword id costs at least one byte, so the running
			// total is bounded by what is left of the payload.
			if total > uint64(len(payload)) {
				return nil, errCorrupt("keyword total %d exceeds payload size %d", total, len(payload))
			}
			b.KwOff[i+1] = int32(total)
		}
		if total > uint64(r.remaining()) {
			return nil, errCorrupt("truncated keyword column: %d bytes left, need at least %d", r.remaining(), total)
		}
		b.Kws = make([]uint32, total)
		for i := range b.Kws {
			v, err := binary.ReadUvarint(r)
			if err != nil {
				return nil, errCorrupt("keyword %d: %v", i, err)
			}
			if v > math.MaxUint32 {
				return nil, errCorrupt("keyword id %d overflows uint32", v)
			}
			b.Kws[i] = uint32(v)
		}
		// Keyword sets are stored sorted and de-duplicated (the KeywordSet
		// invariant the scoring code relies on); enforce it at the trust
		// boundary instead of propagating a corrupt set into queries.
		for i := 0; i < count; i++ {
			kws := b.Kws[b.KwOff[i]:b.KwOff[i+1]]
			for j := 1; j < len(kws); j++ {
				if kws[j] <= kws[j-1] {
					return nil, errCorrupt("record %d keyword set not strictly ascending", i)
				}
			}
		}
	}
	if r.remaining() != 0 {
		return nil, errCorrupt("%d trailing bytes", r.remaining())
	}
	return b, nil
}

// DecodeColFrame validates and decodes one framed block as stored on disk:
// varint payload length, payload, CRC32. frame must be exactly the bytes
// BlockStats.{Offset,Length} describe.
func DecodeColFrame(frame []byte) (*ColumnBlock, error) {
	r := &byteReaderSlice{buf: frame}
	length, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, errCorrupt("frame length: %v", err)
	}
	if length > uint64(r.remaining()) || r.remaining()-int(length) != 4 {
		return nil, errCorrupt("frame of %d bytes does not hold a %d-byte payload plus CRC", len(frame), length)
	}
	payload := frame[r.pos : r.pos+int(length)]
	want := binary.LittleEndian.Uint32(frame[len(frame)-4:])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, errCorrupt("CRC mismatch: computed %#x, stored %#x", got, want)
	}
	return DecodeColBlock(payload)
}
