package data

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sync/atomic"

	"spq/internal/mapreduce"
)

// Counter names segment-read instrumentation is reported under. The
// engine owns the master-side totals; worker processes fold their own
// SegIOStats under the same names (plus a ".<worker>" suffix for the
// per-worker split) into task counter deltas, and the two add up in the
// query report.
const (
	CounterSegBytesRead    = "spq.seg.bytes.read"
	CounterSegBytesDecoded = "spq.seg.bytes.decoded"
)

// SegIOStats accumulates the storage traffic of one query's columnar
// reads: BytesRead is what was fetched from storage (compressed frame
// bytes; zero on a segment-cache hit), BytesDecoded the in-memory size of
// the blocks decoded from those reads. Their ratio is the storage-level
// compression factor; the engine surfaces both as the spq.seg.bytes.*
// query counters. Safe for the concurrent map tasks of one job.
type SegIOStats struct {
	BytesRead    atomic.Int64
	BytesDecoded atomic.Int64
}

// RangeReader is the storage access a columnar segment reader needs:
// random-access ranged reads, nothing else. dfs.FileSystem satisfies it;
// MemSegStore is the in-memory implementation used by the bench harness
// and tests.
type RangeReader interface {
	// ReadRange returns up to n bytes of the named file starting at off.
	ReadRange(file string, off int64, n int) ([]byte, error)
}

// MemSegStore holds segment files as in-memory byte slices. It is the
// cheapest RangeReader: what a warmed OS page cache looks like to the
// reader, without simulating one.
type MemSegStore map[string][]byte

// ReadRange implements RangeReader.
func (m MemSegStore) ReadRange(file string, off int64, n int) ([]byte, error) {
	buf, ok := m[file]
	if !ok {
		return nil, fmt.Errorf("data: segment store: no file %q", file)
	}
	if off < 0 || off > int64(len(buf)) {
		return nil, fmt.Errorf("data: segment store: offset %d out of range for %q (%d bytes)", off, file, len(buf))
	}
	end := off + int64(n)
	if end > int64(len(buf)) {
		end = int64(len(buf))
	}
	return buf[off:end], nil
}

// ColSel selects what a query reads of one sealed columnar cell: the
// cell's manifest entry plus the indices of its surviving blocks. A nil
// Blocks slice selects every block (the unplanned path); the query planner
// narrows it using the per-block zone maps.
type ColSel struct {
	Cell   CellStats
	Blocks []int
}

// SelectAllBlocks builds the unpruned selection over a manifest's cells:
// every cell, every block.
func SelectAllBlocks(m *Manifest) []ColSel {
	out := make([]ColSel, 0, len(m.Data)+len(m.Features))
	for _, cs := range m.Data {
		out = append(out, ColSel{Cell: cs})
	}
	for _, cs := range m.Features {
		out = append(out, ColSel{Cell: cs})
	}
	return out
}

// ColInput is a MapReduce source over SPQ2 columnar segments: one split
// per selected block, fetched by ranged read at the zone map's offset and
// decoded into dense column buffers — or served straight from the decoded-
// segment cache. Splits report their payload size and record count, so
// mapreduce.Coalesce packs them into balanced map tasks exactly like file
// splits.
type ColInput struct {
	R     RangeReader
	Cells []ColSel
	// Cache, when non-nil, memoizes decoded blocks across queries. Gen
	// scopes the cache keys to one storage generation.
	Cache *BlockCache
	Gen   uint64
	// IO, when non-nil, accumulates the bytes read and decoded by this
	// input's splits.
	IO *SegIOStats
	// Keywords, when non-empty, is the query's sorted keyword-id set: a
	// feature block decoded with its inverted posting view (SPQ3) then
	// yields only the records carrying at least one of these ids. The
	// skipped records are exactly the ones the Map-phase keyword prune
	// (Algorithm 1 line 9) drops, so results are unchanged — the prune
	// just happens before the records are materialized, via one
	// dictionary intersection per block instead of one keyword-set
	// intersection per record. Callers must set it only for queries that
	// keep that prune enabled.
	Keywords []uint32
}

// NewColInput constructs a columnar source.
func NewColInput(r RangeReader, cells []ColSel, cache *BlockCache, gen uint64) *ColInput {
	return &ColInput{R: r, Cells: cells, Cache: cache, Gen: gen}
}

// Splits implements mapreduce.Source.
func (c *ColInput) Splits() ([]mapreduce.SourceSplit[Object], error) {
	var out []mapreduce.SourceSplit[Object]
	for _, sel := range c.Cells {
		if len(sel.Cell.Blocks) == 0 {
			return nil, fmt.Errorf("data: columnar read of cell %q: manifest carries no block zone maps", sel.Cell.File)
		}
		idxs := sel.Blocks
		if idxs == nil {
			for i := range sel.Cell.Blocks {
				out = append(out, &colSplit{in: c, file: sel.Cell.File, idx: i, bs: sel.Cell.Blocks[i]})
			}
			continue
		}
		for _, i := range idxs {
			if i < 0 || i >= len(sel.Cell.Blocks) {
				return nil, fmt.Errorf("data: columnar read of cell %q: block %d of %d selected", sel.Cell.File, i, len(sel.Cell.Blocks))
			}
			out = append(out, &colSplit{in: c, file: sel.Cell.File, idx: i, bs: sel.Cell.Blocks[i]})
		}
	}
	return out, nil
}

// colSplit reads one column block.
type colSplit struct {
	in   *ColInput
	file string
	idx  int
	bs   BlockStats
}

// Hosts implements mapreduce.SourceSplit. Ranged block reads fail over
// across replicas inside the DFS, so no placement preference is reported.
func (s *colSplit) Hosts() []string { return nil }

// Size implements mapreduce.SizedSplit.
func (s *colSplit) Size() int64 { return int64(s.bs.Length) }

// Records implements mapreduce.CountedSplit.
func (s *colSplit) Records() int { return s.bs.Records }

// SplitRef implements mapreduce.RefSplit: a columnar split is one block
// frame, described by its byte range plus the block index and record
// count (Extra). The zone map stays master-side — the worker only decodes
// the frame, it never re-plans.
func (s *colSplit) SplitRef() (*mapreduce.SplitRef, error) {
	extra := binary.AppendUvarint(nil, uint64(s.idx))
	extra = binary.AppendUvarint(extra, uint64(s.bs.Records))
	return &mapreduce.SplitRef{Kind: "col", File: s.file, Offset: s.bs.Offset, Length: int64(s.bs.Length), Extra: extra}, nil
}

// OpenRef re-opens a "col" split reference against this input (typically
// a worker-side ColInput whose RangeReader fetches through the task's I/O
// context). The split decodes the exact frame range the master planned.
func (c *ColInput) OpenRef(ref *mapreduce.SplitRef) (mapreduce.SourceSplit[Object], error) {
	buf := ref.Extra
	idx, n := binary.Uvarint(buf)
	if n <= 0 {
		return nil, fmt.Errorf("data: col split ref %q: bad block index", ref.File)
	}
	records, n2 := binary.Uvarint(buf[n:])
	if n2 <= 0 {
		return nil, fmt.Errorf("data: col split ref %q: bad record count", ref.File)
	}
	return &colSplit{
		in:   c,
		file: ref.File,
		idx:  int(idx),
		bs:   BlockStats{Records: int(records), Offset: ref.Offset, Length: int(ref.Length)},
	}, nil
}

// Each implements mapreduce.SourceSplit: fetch (or reuse) the decoded
// block and view its records as Objects. The Object values live on the
// stack and alias the block's keyword column — the hot path allocates
// nothing per record.
func (s *colSplit) Each(yield func(Object) bool) error {
	b, err := s.fetch()
	if err != nil {
		return err
	}
	if b.Len() != s.bs.Records {
		return fmt.Errorf("data: segment %s block %d: decoded %d records, zone map says %d",
			s.file, s.idx, b.Len(), s.bs.Records)
	}
	if len(s.in.Keywords) > 0 && b.Kind == FeatureObject && b.Dict != nil {
		eachRelevant(b, s.in.Keywords, yield)
		return nil
	}
	for i := 0; i < b.Len(); i++ {
		if !yield(b.Object(i)) {
			return nil
		}
	}
	return nil
}

// eachRelevant yields the block records whose keyword sets intersect kws,
// in ascending record order. The query's few keywords are binary-searched
// in the block's sorted dictionary — the same asymmetric-intersection
// trade as text.KeywordSet — and the matching posting lists drive the
// iteration, so records without a query keyword cost nothing.
func eachRelevant(b *ColumnBlock, kws []uint32, yield func(Object) bool) {
	var matchBuf [8]int
	match := matchBuf[:0]
	dict := b.Dict
	off := 0
	for _, kw := range kws {
		// kws and dict are both ascending: search only past the last hit.
		lo, hi := off, len(dict)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if dict[mid] < kw {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo == len(dict) {
			break
		}
		if dict[lo] == kw {
			match = append(match, lo)
		}
		off = lo
	}
	switch len(match) {
	case 0:
		return
	case 1:
		e := match[0]
		for _, rec := range b.PostRecs[b.PostOff[e]:b.PostOff[e+1]] {
			if !yield(b.Object(int(rec))) {
				return
			}
		}
		return
	}
	// Union of several posting lists: mark the records in a small bitmap,
	// then walk its set bits in order.
	bm := make([]uint64, (b.Len()+63)/64)
	for _, e := range match {
		for _, rec := range b.PostRecs[b.PostOff[e]:b.PostOff[e+1]] {
			bm[rec>>6] |= 1 << (rec & 63)
		}
	}
	for wi, w := range bm {
		for w != 0 {
			j := bits.TrailingZeros64(w)
			w &= w - 1
			if !yield(b.Object(wi<<6 | j)) {
				return
			}
		}
	}
}

// fetch returns the decoded block, from the segment cache when possible.
func (s *colSplit) fetch() (*ColumnBlock, error) {
	key := BlockKey{Gen: s.in.Gen, File: s.file, Index: s.idx}
	if b, ok := s.in.Cache.Get(key); ok {
		return b, nil
	}
	frame, err := s.in.R.ReadRange(s.file, s.bs.Offset, s.bs.Length)
	if err != nil {
		return nil, fmt.Errorf("data: segment %s block %d: %w", s.file, s.idx, err)
	}
	if len(frame) != s.bs.Length {
		return nil, fmt.Errorf("data: segment %s block %d: read %d of %d bytes", s.file, s.idx, len(frame), s.bs.Length)
	}
	b, err := DecodeColFrame(frame)
	if err != nil {
		return nil, fmt.Errorf("data: segment %s block %d: %w", s.file, s.idx, err)
	}
	if s.in.IO != nil {
		s.in.IO.BytesRead.Add(int64(len(frame)))
		s.in.IO.BytesDecoded.Add(int64(b.MemBytes()))
	}
	s.in.Cache.Put(key, b)
	return b, nil
}
