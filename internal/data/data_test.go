package data

import (
	"bufio"
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"spq/internal/dfs"
	"spq/internal/geo"
	"spq/internal/text"
)

func TestLineRoundTrip(t *testing.T) {
	dict := text.NewDict()
	kws := dict.InternAll([]string{"italian", "gourmet"})
	objs := []Object{
		{Kind: DataObject, ID: 7, Loc: geo.Point{X: 4.6, Y: 4.8}},
		{Kind: FeatureObject, ID: 9, Loc: geo.Point{X: 2.8, Y: 1.2}, Keywords: kws},
		{Kind: FeatureObject, ID: 10, Loc: geo.Point{X: 0, Y: 0}}, // no keywords
	}
	for _, o := range objs {
		var buf bytes.Buffer
		if err := EncodeLine(&buf, o, dict); err != nil {
			t.Fatal(err)
		}
		line := bytes.TrimSuffix(buf.Bytes(), []byte("\n"))
		got, err := ParseLine(line, dict)
		if err != nil {
			t.Fatalf("ParseLine(%q): %v", line, err)
		}
		if got.Kind != o.Kind || got.ID != o.ID || got.Loc != o.Loc || !got.Keywords.Equal(o.Keywords) {
			t.Errorf("round trip: got %+v, want %+v", got, o)
		}
	}
}

func TestParseLineErrors(t *testing.T) {
	dict := text.NewDict()
	bad := []string{
		"",
		"D\t1\t2",       // too few fields
		"X\t1\t2\t3",    // unknown kind
		"D\tnope\t2\t3", // bad id
		"D\t1\tnope\t3", // bad x
		"D\t1\t2\tnope", // bad y
	}
	for _, line := range bad {
		if _, err := ParseLine([]byte(line), dict); err == nil {
			t.Errorf("ParseLine(%q) succeeded, want error", line)
		}
	}
}

func TestParseLineIntoFreshDict(t *testing.T) {
	dictA := text.NewDict()
	kws := dictA.InternAll([]string{"sushi", "wine"})
	var buf bytes.Buffer
	o := Object{Kind: FeatureObject, ID: 3, Loc: geo.Point{X: 1, Y: 2}, Keywords: kws}
	if err := EncodeLine(&buf, o, dictA); err != nil {
		t.Fatal(err)
	}
	dictB := text.NewDict()
	got, err := ParseLine(bytes.TrimSuffix(buf.Bytes(), []byte("\n")), dictB)
	if err != nil {
		t.Fatal(err)
	}
	words := dictB.Words(got.Keywords)
	sortSlice(words, func(a, b string) bool { return a < b })
	if !reflect.DeepEqual(words, []string{"sushi", "wine"}) {
		t.Errorf("words through fresh dict = %v", words)
	}
}

func TestObjectCodecRoundTrip(t *testing.T) {
	codec := ObjectCodec()
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		var kws text.KeywordSet
		if r.Intn(2) == 1 {
			ids := make([]uint32, r.Intn(20))
			for j := range ids {
				ids[j] = uint32(r.Intn(1000))
			}
			kws = text.NewKeywordSet(ids...)
		}
		o := Object{
			Kind:     Kind(r.Intn(2)),
			ID:       r.Uint64(),
			Loc:      geo.Point{X: r.NormFloat64() * 100, Y: r.NormFloat64() * 100},
			Keywords: kws,
		}
		var buf bytes.Buffer
		w := bufio.NewWriter(&buf)
		if err := codec.Encode(w, o); err != nil {
			t.Fatal(err)
		}
		w.Flush()
		got, err := codec.Decode(bufio.NewReader(&buf))
		if err != nil {
			t.Fatal(err)
		}
		if got.Kind != o.Kind || got.ID != o.ID || got.Loc != o.Loc || !got.Keywords.Equal(o.Keywords) {
			t.Fatalf("codec round trip: got %+v, want %+v", got, o)
		}
	}
}

func TestGenerateSplitsHalfAndHalf(t *testing.T) {
	ds := Generate(UniformSpec(1001))
	if len(ds.Data) != 500 || len(ds.Features) != 501 {
		t.Errorf("|O|=%d |F|=%d, want 500/501", len(ds.Data), len(ds.Features))
	}
	for _, o := range ds.Data {
		if o.Kind != DataObject || len(o.Keywords) != 0 {
			t.Fatalf("bad data object %+v", o)
		}
	}
	for _, f := range ds.Features {
		if f.Kind != FeatureObject || len(f.Keywords) == 0 {
			t.Fatalf("bad feature object %+v", f)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(UniformSpec(200))
	b := Generate(UniformSpec(200))
	if !reflect.DeepEqual(a.Data, b.Data) || !reflect.DeepEqual(a.Features, b.Features) {
		t.Error("same spec must generate identical datasets")
	}
}

func TestGenerateLocationsInBounds(t *testing.T) {
	for _, spec := range []Spec{UniformSpec(400), ClusteredSpec(400), FlickrSpec(400), TwitterSpec(400)} {
		ds := Generate(spec)
		bounds := ds.Bounds()
		for _, o := range ds.Objects() {
			if !bounds.Contains(o.Loc) {
				t.Fatalf("%s: object %v outside bounds %v", spec.Name, o, bounds)
			}
		}
	}
}

func TestKeywordCountRanges(t *testing.T) {
	tests := []struct {
		spec Spec
		mean float64
		tol  float64
	}{
		{UniformSpec(2000), 55, 3},   // 10..100 -> mean 55
		{FlickrSpec(2000), 7.9, 0.8}, // 4..12 -> mean ~8 (dedup may lower slightly)
		{TwitterSpec(2000), 9.8, 1},  // 5..15 -> mean ~10
	}
	for _, tt := range tests {
		ds := Generate(tt.spec)
		st := ds.ComputeStats()
		if st.MinLen < 1 {
			t.Errorf("%s: zero-keyword feature generated", tt.spec.Name)
		}
		if st.MaxLen > tt.spec.MaxKeywords {
			t.Errorf("%s: max len %d > spec %d", tt.spec.Name, st.MaxLen, tt.spec.MaxKeywords)
		}
		if math.Abs(st.MeanKeywords-tt.mean) > tt.tol {
			t.Errorf("%s: mean keywords %.2f, want ~%.1f", tt.spec.Name, st.MeanKeywords, tt.mean)
		}
	}
}

// The Zipfian datasets must be skewed: the most frequent word should occur
// far more often than the median word.
func TestZipfSkew(t *testing.T) {
	ds := Generate(FlickrSpec(4000))
	freq := map[uint32]int{}
	for _, f := range ds.Features {
		for _, kw := range f.Keywords {
			freq[kw]++
		}
	}
	max := 0
	for _, c := range freq {
		if c > max {
			max = c
		}
	}
	mean := 0
	for _, c := range freq {
		mean += c
	}
	meanF := float64(mean) / float64(len(freq))
	if float64(max) < 10*meanF {
		t.Errorf("no Zipf skew: max=%d mean=%.1f", max, meanF)
	}
}

// The clustered dataset must be spatially skewed: the densest of a 4x4
// tiling should hold far more than 1/16 of the objects.
func TestClusteredSkew(t *testing.T) {
	ds := Generate(ClusteredSpec(4000))
	counts := make(map[int]int)
	for _, o := range ds.Objects() {
		cx := int(o.Loc.X * 4)
		cy := int(o.Loc.Y * 4)
		if cx > 3 {
			cx = 3
		}
		if cy > 3 {
			cy = 3
		}
		counts[cy*4+cx]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if float64(max) < 2*float64(4000)/16 {
		t.Errorf("clustered data not skewed: max tile %d of %d", max, 4000)
	}
}

func TestRandomQueryKeywords(t *testing.T) {
	ds := Generate(UniformSpec(100))
	q := ds.RandomQueryKeywords(5, 9)
	if q.Len() != 5 {
		t.Errorf("query keywords = %d, want 5", q.Len())
	}
	q2 := ds.RandomQueryKeywords(5, 9)
	if !q.Equal(q2) {
		t.Error("same seed must give same query")
	}
	// Requesting more than the vocabulary clamps.
	small := Generate(Spec{Name: "tiny", NumObjects: 10, Spatial: Unit(),
		VocabSize: 3, MinKeywords: 1, MaxKeywords: 2, Seed: 1})
	if got := small.RandomQueryKeywords(10, 1).Len(); got != 3 {
		t.Errorf("clamped query = %d keywords, want 3", got)
	}
}

func TestFrequentQueryKeywords(t *testing.T) {
	ds := Generate(FlickrSpec(1000))
	q := ds.FrequentQueryKeywords(3)
	if q.Len() != 3 {
		t.Fatalf("got %d keywords", q.Len())
	}
	// Every selected keyword must actually be used by some feature.
	used := map[uint32]bool{}
	for _, f := range ds.Features {
		for _, kw := range f.Keywords {
			used[kw] = true
		}
	}
	for _, kw := range q {
		if !used[kw] {
			t.Errorf("frequent keyword %d unused in dataset", kw)
		}
	}
}

func TestWriteToDFSAndReadBack(t *testing.T) {
	ds := Generate(UniformSpec(300))
	fs := dfs.New(dfs.Config{NumNodes: 4, BlockSize: 1 << 10, Seed: 6})
	if err := ds.WriteToDFS(fs); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{DataFile("UN"), FeatureFile("UN")} {
		if !fs.Exists(f) {
			t.Fatalf("%s missing", f)
		}
	}
	// Read back through the MapReduce source and verify every object
	// arrives exactly once with intact location and keywords.
	dict := text.NewDict()
	src := Input(fs, dict, "UN")
	splits, err := src.Splits()
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) < 2 {
		t.Fatalf("expected multiple splits, got %d", len(splits))
	}
	byID := map[uint64]Object{}
	for _, s := range splits {
		err := s.Each(func(o Object) bool {
			if _, dup := byID[o.ID]; dup {
				t.Fatalf("object %d delivered twice", o.ID)
			}
			byID[o.ID] = o
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(byID) != 300 {
		t.Fatalf("read back %d objects, want 300", len(byID))
	}
	for _, want := range ds.Objects() {
		got, ok := byID[want.ID]
		if !ok {
			t.Fatalf("object %d missing", want.ID)
		}
		if got.Loc != want.Loc || got.Kind != want.Kind {
			t.Fatalf("object %d mismatch: %+v vs %+v", want.ID, got, want)
		}
		// Keyword ids differ across dictionaries; compare words.
		gotW := dict.Words(got.Keywords)
		wantW := ds.Dict.Words(want.Keywords)
		sortSlice(gotW, func(a, b string) bool { return a < b })
		sortSlice(wantW, func(a, b string) bool { return a < b })
		if strings.Join(gotW, ",") != strings.Join(wantW, ",") {
			t.Fatalf("object %d keywords %v vs %v", want.ID, gotW, wantW)
		}
	}
}

func TestComputeStats(t *testing.T) {
	ds := Generate(UniformSpec(500))
	st := ds.ComputeStats()
	if st.DataObjects != 250 || st.FeatureObjects != 250 {
		t.Errorf("stats counts: %+v", st)
	}
	if st.MinLen < 1 || st.MaxLen > 100 || st.MeanKeywords <= 0 {
		t.Errorf("stats keyword summary: %+v", st)
	}
	if st.String() == "" {
		t.Error("empty String()")
	}
}

func TestGeneratePanicsOnBadSpec(t *testing.T) {
	assertPanics := func(name string, spec Spec) {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			Generate(spec)
		})
	}
	assertPanics("zero objects", Spec{NumObjects: 0, Spatial: Unit(), VocabSize: 10, MinKeywords: 1, MaxKeywords: 2})
	assertPanics("bad kw range", Spec{NumObjects: 10, Spatial: Unit(), VocabSize: 10, MinKeywords: 5, MaxKeywords: 2})
}

func TestHotspotDistBoundsAndSkew(t *testing.T) {
	d := HotspotDist(32, 3)
	r := rand.New(rand.NewSource(1))
	counts := make([]int, 16)
	for i := 0; i < 8000; i++ {
		p := d.Sample(r)
		if !d.Bounds().Contains(p) {
			t.Fatalf("sample %v out of bounds", p)
		}
		cx, cy := int(p.X*4), int(p.Y*4)
		if cx > 3 {
			cx = 3
		}
		if cy > 3 {
			cy = 3
		}
		counts[cy*4+cx]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 1000 { // uniform would give ~500 per tile
		t.Errorf("hotspot distribution not skewed: max tile %d", max)
	}
}
