package data

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"spq/internal/dfs"
	"spq/internal/geo"
	"spq/internal/grid"
	"spq/internal/mapreduce"
	"spq/internal/text"
)

func TestKeywordBloomMembership(t *testing.T) {
	b := NewKeywordBloom()
	added := []string{"italian", "sushi", "wine", "cheap", "gourmet"}
	for _, w := range added {
		b.Add(w)
	}
	for _, w := range added {
		if !b.MayContain(w) {
			t.Errorf("MayContain(%q) = false after Add (false negative)", w)
		}
	}
	if !b.MayContainAny([]string{"nope", "wine"}) {
		t.Error("MayContainAny missed an added word")
	}
	// A nearly empty bloom must prune almost every unrelated word.
	misses := 0
	for i := 0; i < 1000; i++ {
		if !b.MayContain(fmt.Sprintf("unrelated-%d", i)) {
			misses++
		}
	}
	if misses < 990 {
		t.Errorf("only %d/1000 unrelated words pruned; bloom too dense", misses)
	}
	var empty KeywordBloom
	if empty.MayContain("anything") {
		t.Error("empty (nil) bloom claims membership")
	}
}

// testObjects builds a small mixed dataset over the unit square.
func testObjects(n int, dict *text.Dict) []Object {
	r := rand.New(rand.NewSource(11))
	objs := make([]Object, 0, n)
	for i := 0; i < n; i++ {
		o := Object{
			ID:  uint64(i + 1),
			Loc: geo.Point{X: r.Float64(), Y: r.Float64()},
		}
		if i%2 == 1 {
			o.Kind = FeatureObject
			o.Keywords = dict.InternAll([]string{
				fmt.Sprintf("kw%d", r.Intn(20)),
				fmt.Sprintf("kw%d", r.Intn(20)),
			})
		}
		objs = append(objs, o)
	}
	return objs
}

func sortedByID(objs []Object) []Object {
	out := append([]Object(nil), objs...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func TestPartitionObjectsPreservesDataset(t *testing.T) {
	dict := text.NewDict()
	objs := testObjects(200, dict)
	g := grid.NewSquare(8)
	p := PartitionObjects(g, objs)

	var all []Object
	for _, part := range append(append([]CellPart(nil), p.Data...), p.Features...) {
		for _, o := range part.Objects {
			if got := g.CellOf(o.Loc); got != part.Cell {
				t.Fatalf("object %d in cell %d, assigned to partition %d", o.ID, got, part.Cell)
			}
		}
		all = append(all, part.Objects...)
	}
	if !reflect.DeepEqual(sortedByID(all), sortedByID(objs)) {
		t.Fatalf("partitioning lost or duplicated objects: %d vs %d", len(all), len(objs))
	}
	for _, part := range p.Data {
		for _, o := range part.Objects {
			if o.Kind != DataObject {
				t.Fatalf("feature %d in a data partition", o.ID)
			}
		}
	}
}

func TestSealDFSRoundTrip(t *testing.T) {
	for _, format := range []string{FormatText, FormatBinary, FormatColumnar} {
		dict := text.NewDict()
		objs := testObjects(300, dict)
		g := grid.NewSquare(4)
		fs := dfs.New(dfs.Config{NumNodes: 4, BlockSize: 512})
		man, err := PartitionObjects(g, objs).SealDFS(fs, "t", dict, format)
		if err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		if man.TotalRecords() != int64(len(objs)) {
			t.Errorf("%s: manifest records = %d, want %d", format, man.TotalRecords(), len(objs))
		}

		// The persisted manifest decodes back to the returned one.
		raw, err := fs.ReadAll(ManifestFileName("t"))
		if err != nil {
			t.Fatalf("%s: manifest file: %v", format, err)
		}
		dec, err := DecodeManifest(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		if !reflect.DeepEqual(dec, man) {
			t.Errorf("%s: decoded manifest differs from sealed one", format)
		}

		// Reading every cell file back yields exactly the dataset.
		var back []Object
		collect := func(o Object) { back = append(back, o) }
		switch format {
		case FormatColumnar:
			err = eachSourceObject(NewColInput(fs, SelectAllBlocks(man), nil, 0), collect)
			if err != nil {
				t.Fatalf("%s: read: %v", format, err)
			}
		case FormatBinary:
			for _, name := range man.Files() {
				if err = NewSeqInput(fs, name).each(collect); err != nil {
					t.Fatalf("%s: read %s: %v", format, name, err)
				}
			}
		default:
			for _, name := range man.Files() {
				if err = eachTextObject(fs, name, dict, collect); err != nil {
					t.Fatalf("%s: read %s: %v", format, name, err)
				}
			}
		}
		if !reflect.DeepEqual(sortedByID(back), sortedByID(objs)) {
			t.Errorf("%s: cell files do not round-trip the dataset (%d vs %d objects)",
				format, len(back), len(objs))
		}

		// Feature-cell keyword summaries cover the cell's keywords.
		for _, cs := range man.Features {
			if len(cs.Keywords) == 0 {
				t.Fatalf("%s: feature cell %d has no keyword summary", format, cs.Cell)
			}
		}
		for _, cs := range man.Data {
			if len(cs.Keywords) != 0 {
				t.Fatalf("%s: data cell %d has a keyword summary", format, cs.Cell)
			}
		}
		// Columnar seals carry block zone maps; other formats must not.
		for _, cs := range append(append([]CellStats(nil), man.Data...), man.Features...) {
			if format == FormatColumnar && len(cs.Blocks) == 0 {
				t.Fatalf("%s: cell %d has no block zone maps", format, cs.Cell)
			}
			if format != FormatColumnar && len(cs.Blocks) != 0 {
				t.Fatalf("%s: cell %d has block zone maps", format, cs.Cell)
			}
		}
	}
}

// eachSourceObject drains a mapreduce source (test helper).
func eachSourceObject(src interface {
	Splits() ([]mapreduce.SourceSplit[Object], error)
}, f func(Object)) error {
	splits, err := src.Splits()
	if err != nil {
		return err
	}
	for _, s := range splits {
		if err := s.Each(func(o Object) bool { f(o); return true }); err != nil {
			return err
		}
	}
	return nil
}

// each drains a SeqInput through its splits (test helper).
func (si *SeqInput) each(f func(Object)) error {
	splits, err := si.Splits()
	if err != nil {
		return err
	}
	for _, s := range splits {
		if err := s.Each(func(o Object) bool { f(o); return true }); err != nil {
			return err
		}
	}
	return nil
}

func eachTextObject(fs *dfs.FileSystem, name string, dict *text.Dict, f func(Object)) error {
	raw, err := fs.ReadAll(name)
	if err != nil {
		return err
	}
	for _, line := range bytes.Split(bytes.TrimRight(raw, "\n"), []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		o, err := ParseLine(line, dict)
		if err != nil {
			return err
		}
		f(o)
	}
	return nil
}

func TestSealMemoryLayoutMatchesManifest(t *testing.T) {
	dict := text.NewDict()
	objs := testObjects(150, dict)
	g := grid.NewSquare(5)
	man, ordered := PartitionObjects(g, objs).SealMemory("m", dict)
	if len(ordered) != len(objs) {
		t.Fatalf("ordered = %d objects, want %d", len(ordered), len(objs))
	}
	// Walking the manifest's Records counts in order recovers each cell's
	// sub-slice: every object must be in its manifest cell, data first.
	off := 0
	for _, cs := range append(append([]CellStats(nil), man.Data...), man.Features...) {
		for _, o := range ordered[off : off+cs.Records] {
			if int32(g.CellOf(o.Loc)) != cs.Cell {
				t.Fatalf("object %d at offset range of cell %d is in cell %d",
					o.ID, cs.Cell, g.CellOf(o.Loc))
			}
		}
		off += cs.Records
	}
	if off != len(ordered) {
		t.Fatalf("manifest records cover %d objects, ordered slice has %d", off, len(ordered))
	}
	if man.Format != FormatMemory {
		t.Errorf("format = %q", man.Format)
	}
}

// TestCellViewMatchesSealMemory pins the delta view to the sealed layout:
// CellView must produce exactly the cell statistics and object order of a
// memory seal over the same partitions, since planner pruning treats the
// two interchangeably.
func TestCellViewMatchesSealMemory(t *testing.T) {
	dict := text.NewDict()
	objs := testObjects(250, dict)
	g := grid.NewSquare(6)
	p := PartitionObjects(g, objs)
	p.Generation = 7
	man, sealed := p.SealMemory("t", dict)
	dataCells, featureCells, ordered := p.CellView("t", dict)
	if !reflect.DeepEqual(man.Data, dataCells) {
		t.Error("CellView data cells differ from SealMemory manifest")
	}
	if !reflect.DeepEqual(man.Features, featureCells) {
		t.Error("CellView feature cells differ from SealMemory manifest")
	}
	if !reflect.DeepEqual(sealed, ordered) {
		t.Error("CellView object order differs from the sealed layout")
	}
	if man.Generation != 7 {
		t.Errorf("manifest generation = %d, want 7", man.Generation)
	}
}

// TestManifestGenerationRoundTrips: the generation survives encode/decode,
// and manifests without one (written before generations existed) decode
// with generation 0.
func TestManifestGenerationRoundTrips(t *testing.T) {
	dict := text.NewDict()
	g := grid.NewSquare(2)
	p := PartitionObjects(g, testObjects(20, dict))
	p.Generation = 42
	man, _ := p.SealMemory("t", dict)
	var buf bytes.Buffer
	if err := EncodeManifest(&buf, man); err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeManifest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Generation != 42 {
		t.Errorf("decoded generation = %d, want 42", dec.Generation)
	}
	man.Generation = 0
	buf.Reset()
	if err := EncodeManifest(&buf, man); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeManifest(&buf); err != nil {
		t.Errorf("manifest without generation rejected: %v", err)
	}
}

func TestDecodeManifestRejectsBadInput(t *testing.T) {
	if _, err := DecodeManifest(bytes.NewReader([]byte("{"))); err == nil {
		t.Error("truncated JSON accepted")
	}
	if _, err := DecodeManifest(bytes.NewReader([]byte(`{"version":99,"grid":{"n":4}}`))); err == nil {
		t.Error("future version accepted")
	}
	if _, err := DecodeManifest(bytes.NewReader([]byte(`{"version":1,"grid":{"n":0}}`))); err == nil {
		t.Error("zero seal grid accepted")
	}
	// Keyword summaries must be full-size blooms (truncated ones would
	// index out of range) and absent on data cells.
	if _, err := DecodeManifest(bytes.NewReader([]byte(
		`{"version":1,"grid":{"n":4},"features":[{"cell":0,"file":"f","records":1,"keywords":"AAAA"}]}`))); err == nil {
		t.Error("truncated feature bloom accepted")
	}
	if _, err := DecodeManifest(bytes.NewReader([]byte(
		`{"version":1,"grid":{"n":4},"data":[{"cell":0,"file":"d","records":1,"keywords":"AAAA"}]}`))); err == nil {
		t.Error("data-cell bloom accepted")
	}
}
