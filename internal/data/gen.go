package data

import (
	"fmt"
	"math"
	"math/rand"

	"spq/internal/geo"
	"spq/internal/text"
)

// SpatialDist samples object locations. Implementations are deterministic
// given the *rand.Rand they are handed.
type SpatialDist interface {
	Sample(r *rand.Rand) geo.Point
	// Bounds returns the rectangle all samples fall into.
	Bounds() geo.Rect
}

// UniformDist samples uniformly over a rectangle — the paper's UN dataset.
type UniformDist struct {
	Rect geo.Rect
}

// Unit returns the uniform distribution over the unit square.
func Unit() UniformDist {
	return UniformDist{Rect: geo.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}}
}

// Sample implements SpatialDist.
func (u UniformDist) Sample(r *rand.Rand) geo.Point {
	return geo.Point{
		X: u.Rect.MinX + r.Float64()*u.Rect.Width(),
		Y: u.Rect.MinY + r.Float64()*u.Rect.Height(),
	}
}

// Bounds implements SpatialDist.
func (u UniformDist) Bounds() geo.Rect { return u.Rect }

// ClusterDist samples from a mixture of Gaussian clusters clipped to a
// bounding rectangle — the paper's CL dataset ("16 clusters whose position
// in space is selected at random").
type ClusterDist struct {
	Rect    geo.Rect
	Centers []geo.Point
	Weights []float64 // optional; uniform mixture when nil
	Sigma   float64
	// Background is the fraction of points drawn uniformly instead of from
	// a cluster, in [0,1].
	Background float64
}

// NewClusterDist places n cluster centers uniformly at random (using seed)
// in the unit square with the given standard deviation.
func NewClusterDist(n int, sigma float64, seed int64) ClusterDist {
	r := rand.New(rand.NewSource(seed))
	d := ClusterDist{
		Rect:  geo.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1},
		Sigma: sigma,
	}
	for i := 0; i < n; i++ {
		d.Centers = append(d.Centers, geo.Point{X: r.Float64(), Y: r.Float64()})
	}
	return d
}

// Sample implements SpatialDist.
func (c ClusterDist) Sample(r *rand.Rand) geo.Point {
	if c.Background > 0 && r.Float64() < c.Background {
		return UniformDist{Rect: c.Rect}.Sample(r)
	}
	var center geo.Point
	if len(c.Weights) == len(c.Centers) && len(c.Weights) > 0 {
		u := r.Float64() * sum(c.Weights)
		acc := 0.0
		center = c.Centers[len(c.Centers)-1]
		for i, w := range c.Weights {
			acc += w
			if u <= acc {
				center = c.Centers[i]
				break
			}
		}
	} else {
		center = c.Centers[r.Intn(len(c.Centers))]
	}
	p := geo.Point{
		X: center.X + r.NormFloat64()*c.Sigma,
		Y: center.Y + r.NormFloat64()*c.Sigma,
	}
	return geo.Clamp(p, c.Rect)
}

// Bounds implements SpatialDist.
func (c ClusterDist) Bounds() geo.Rect { return c.Rect }

func sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// HotspotDist models the spatial skew of geotagged social media (the
// paper's Flickr and Twitter datasets, Figure 4): many hotspots of very
// different intensity — Zipf-weighted — over a uniform background. It is
// the synthetic surrogate documented in DESIGN.md.
func HotspotDist(hotspots int, seed int64) ClusterDist {
	r := rand.New(rand.NewSource(seed))
	d := ClusterDist{
		Rect:       geo.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1},
		Sigma:      0.02,
		Background: 0.15,
	}
	for i := 0; i < hotspots; i++ {
		d.Centers = append(d.Centers, geo.Point{X: r.Float64(), Y: r.Float64()})
		d.Weights = append(d.Weights, 1/math.Pow(float64(i+1), 1.1))
	}
	return d
}

// Spec describes a synthetic dataset. Construct via the preset helpers
// (UniformSpec, ClusteredSpec, FlickrSpec, TwitterSpec) or directly.
type Spec struct {
	// Name labels the dataset in files and reports.
	Name string
	// NumObjects is the total number of objects; following Section 7.1,
	// half become data objects and half feature objects.
	NumObjects int
	// Spatial is the location distribution shared by both datasets.
	Spatial SpatialDist
	// VocabSize is the dictionary size.
	VocabSize int
	// MinKeywords and MaxKeywords bound the per-feature keyword count
	// (drawn uniformly, giving mean (min+max)/2).
	MinKeywords, MaxKeywords int
	// ZipfS > 0 draws words with Zipf-skewed frequencies (natural text);
	// 0 draws words uniformly (the paper's synthetic datasets).
	ZipfS float64
	// Seed makes generation reproducible.
	Seed int64
}

// UniformSpec mirrors the paper's UN dataset scaled to n objects: uniform
// locations, 10–100 keywords per feature from a 1,000-word vocabulary.
func UniformSpec(n int) Spec {
	return Spec{
		Name:        "UN",
		NumObjects:  n,
		Spatial:     Unit(),
		VocabSize:   1000,
		MinKeywords: 10,
		MaxKeywords: 100,
		Seed:        1,
	}
}

// ClusteredSpec mirrors the paper's CL dataset scaled to n objects: 16
// random clusters, otherwise identical to UN.
func ClusteredSpec(n int) Spec {
	s := UniformSpec(n)
	s.Name = "CL"
	s.Spatial = NewClusterDist(16, 0.03, 7)
	s.Seed = 2
	return s
}

// FlickrSpec is the FL surrogate: hotspot-skewed locations, mean 7.9
// keywords per feature, 34,716-word dictionary with Zipfian frequencies.
func FlickrSpec(n int) Spec {
	return Spec{
		Name:        "FL",
		NumObjects:  n,
		Spatial:     HotspotDist(64, 11),
		VocabSize:   34716,
		MinKeywords: 4,
		MaxKeywords: 12,
		ZipfS:       1.2,
		Seed:        3,
	}
}

// TwitterSpec is the TW surrogate: hotspot-skewed locations, mean 9.8
// keywords per feature, 88,706-word dictionary with Zipfian frequencies.
func TwitterSpec(n int) Spec {
	return Spec{
		Name:        "TW",
		NumObjects:  n,
		Spatial:     HotspotDist(96, 13),
		VocabSize:   88706,
		MinKeywords: 5,
		MaxKeywords: 15,
		ZipfS:       1.2,
		Seed:        4,
	}
}

// Dataset is a generated pair of object datasets plus the dictionary their
// keywords are interned in.
type Dataset struct {
	Spec     Spec
	Data     []Object
	Features []Object
	Dict     *text.Dict
}

// Bounds returns the spatial bounds of the dataset.
func (d *Dataset) Bounds() geo.Rect { return d.Spec.Spatial.Bounds() }

// Generate materializes the dataset described by spec.
func Generate(spec Spec) *Dataset {
	if spec.NumObjects <= 0 {
		panic(fmt.Sprintf("data: non-positive dataset size %d", spec.NumObjects))
	}
	if spec.MinKeywords <= 0 || spec.MaxKeywords < spec.MinKeywords {
		panic(fmt.Sprintf("data: bad keyword range [%d,%d]", spec.MinKeywords, spec.MaxKeywords))
	}
	r := rand.New(rand.NewSource(spec.Seed))
	dict := text.NewDict()
	// Pre-intern the full vocabulary so ids are dense and word selection is
	// O(1).
	for i := 0; i < spec.VocabSize; i++ {
		dict.Intern(wordString(i))
	}
	var zipf *rand.Zipf
	if spec.ZipfS > 0 {
		zipf = rand.NewZipf(r, spec.ZipfS, 1, uint64(spec.VocabSize-1))
	}
	pickWord := func() uint32 {
		if zipf != nil {
			return uint32(zipf.Uint64())
		}
		return uint32(r.Intn(spec.VocabSize))
	}

	nData := spec.NumObjects / 2
	nFeat := spec.NumObjects - nData
	ds := &Dataset{Spec: spec, Dict: dict}
	ds.Data = make([]Object, nData)
	for i := range ds.Data {
		ds.Data[i] = Object{Kind: DataObject, ID: uint64(i), Loc: spec.Spatial.Sample(r)}
	}
	ds.Features = make([]Object, nFeat)
	for i := range ds.Features {
		nk := spec.MinKeywords + r.Intn(spec.MaxKeywords-spec.MinKeywords+1)
		if nk > spec.VocabSize {
			nk = spec.VocabSize
		}
		// Draw distinct words: Zipf sampling repeats frequent words often,
		// and a keyword *set* must not shrink below the drawn length.
		ids := make([]uint32, 0, nk)
		seen := make(map[uint32]bool, nk)
		for tries := 0; len(ids) < nk && tries < 50*nk; tries++ {
			w := pickWord()
			if !seen[w] {
				seen[w] = true
				ids = append(ids, w)
			}
		}
		ds.Features[i] = Object{
			Kind:     FeatureObject,
			ID:       uint64(nData + i),
			Loc:      spec.Spatial.Sample(r),
			Keywords: text.NewKeywordSet(ids...),
		}
	}
	return ds
}

// wordString is the synthetic vocabulary: "w0", "w1", ...
func wordString(i int) string { return fmt.Sprintf("w%d", i) }

// Objects returns data and feature objects concatenated (data first), the
// layout used when feeding a whole dataset to an in-memory MapReduce
// source.
func (d *Dataset) Objects() []Object {
	out := make([]Object, 0, len(d.Data)+len(d.Features))
	out = append(out, d.Data...)
	out = append(out, d.Features...)
	return out
}

// RandomQueryKeywords picks n distinct query keywords. When the dataset's
// word frequencies are Zipfian the paper's "random selection from the
// vocabulary" is applied all the same (Section 7.1 reports the selection
// method did not significantly affect execution time).
func (d *Dataset) RandomQueryKeywords(n int, seed int64) text.KeywordSet {
	r := rand.New(rand.NewSource(seed))
	if n > d.Spec.VocabSize {
		n = d.Spec.VocabSize
	}
	seen := make(map[uint32]bool, n)
	ids := make([]uint32, 0, n)
	for len(ids) < n {
		id := uint32(r.Intn(d.Spec.VocabSize))
		if !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	return text.NewKeywordSet(ids...)
}

// FrequentQueryKeywords picks n keywords from the most frequent words used
// by feature objects; useful to guarantee non-empty results on Zipfian
// datasets.
func (d *Dataset) FrequentQueryKeywords(n int) text.KeywordSet {
	freq := make(map[uint32]int)
	for _, f := range d.Features {
		for _, kw := range f.Keywords {
			freq[kw]++
		}
	}
	type wc struct {
		id uint32
		n  int
	}
	all := make([]wc, 0, len(freq))
	for id, c := range freq {
		all = append(all, wc{id, c})
	}
	// Selection by count descending, id ascending for determinism.
	sortSlice(all, func(a, b wc) bool {
		if a.n != b.n {
			return a.n > b.n
		}
		return a.id < b.id
	})
	if n > len(all) {
		n = len(all)
	}
	ids := make([]uint32, n)
	for i := 0; i < n; i++ {
		ids[i] = all[i].id
	}
	return text.NewKeywordSet(ids...)
}
