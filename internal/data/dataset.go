package data

import (
	"bufio"
	"fmt"
	"math/rand"
	"sort"

	"spq/internal/dfs"
	"spq/internal/mapreduce"
	"spq/internal/text"
)

// sortSlice is a tiny generic wrapper over sort.Slice.
func sortSlice[T any](s []T, less func(a, b T) bool) {
	sort.Slice(s, func(i, j int) bool { return less(s[i], s[j]) })
}

// DataFile and FeatureFile name the two DFS files a dataset is stored in.
func DataFile(name string) string    { return name + "-data.txt" }
func FeatureFile(name string) string { return name + "-features.txt" }

// WriteToDFS stores the dataset in the file system as two text files (the
// paper's horizontal partitioning makes no assumption about how objects
// are laid out; block placement scatters them across DataNodes). Object
// order is shuffled with the spec's seed so that blocks do not correlate
// with generation order.
func (d *Dataset) WriteToDFS(fs *dfs.FileSystem) error {
	write := func(file string, objs []Object) error {
		w, err := fs.Writer(file)
		if err != nil {
			return err
		}
		bw := bufio.NewWriter(w)
		shuffled := append([]Object(nil), objs...)
		r := rand.New(rand.NewSource(d.Spec.Seed + int64(len(objs))))
		r.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		for _, o := range shuffled {
			if err := EncodeLine(bw, o, d.Dict); err != nil {
				return err
			}
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		return w.Close()
	}
	if err := write(DataFile(d.Spec.Name), d.Data); err != nil {
		return fmt.Errorf("data: write %s: %w", DataFile(d.Spec.Name), err)
	}
	if err := write(FeatureFile(d.Spec.Name), d.Features); err != nil {
		return fmt.Errorf("data: write %s: %w", FeatureFile(d.Spec.Name), err)
	}
	return nil
}

// Input returns a MapReduce source reading the dataset's two DFS files,
// interning keywords into dict (usually the dataset's own dictionary, but
// a fresh one works too — ids just come out different).
func Input(fs *dfs.FileSystem, dict *text.Dict, name string) mapreduce.Source[Object] {
	return mapreduce.NewTextInput(fs,
		func(line []byte) (Object, error) { return ParseLine(line, dict) },
		DataFile(name), FeatureFile(name))
}

// MemoryInput returns an in-memory MapReduce source over the dataset with
// the given number of splits, for callers that skip the DFS.
func (d *Dataset) MemoryInput(splits int) mapreduce.Source[Object] {
	return mapreduce.NewMemorySource(d.Objects(), splits)
}

// Stats summarizes a dataset for reports and sanity tests.
type Stats struct {
	Name           string
	DataObjects    int
	FeatureObjects int
	VocabSize      int
	MeanKeywords   float64
	DistinctWords  int
	MinLen, MaxLen int
}

// ComputeStats scans the dataset.
func (d *Dataset) ComputeStats() Stats {
	s := Stats{
		Name:           d.Spec.Name,
		DataObjects:    len(d.Data),
		FeatureObjects: len(d.Features),
		VocabSize:      d.Spec.VocabSize,
		MinLen:         -1,
	}
	words := make(map[uint32]bool)
	total := 0
	for _, f := range d.Features {
		n := len(f.Keywords)
		total += n
		if s.MinLen < 0 || n < s.MinLen {
			s.MinLen = n
		}
		if n > s.MaxLen {
			s.MaxLen = n
		}
		for _, kw := range f.Keywords {
			words[kw] = true
		}
	}
	if len(d.Features) > 0 {
		s.MeanKeywords = float64(total) / float64(len(d.Features))
	}
	s.DistinctWords = len(words)
	return s
}

// String implements fmt.Stringer.
func (s Stats) String() string {
	return fmt.Sprintf("%s: |O|=%d |F|=%d vocab=%d meanKw=%.2f distinct=%d len=[%d,%d]",
		s.Name, s.DataObjects, s.FeatureObjects, s.VocabSize, s.MeanKeywords,
		s.DistinctWords, s.MinLen, s.MaxLen)
}
