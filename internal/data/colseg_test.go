package data

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"spq/internal/geo"
	"spq/internal/grid"
	"spq/internal/text"
)

// writeSegment seals objs (single kind) as one in-memory SPQ2 segment and
// returns the raw bytes plus the block zone maps.
func writeSegment(t *testing.T, objs []Object, blockRecords int, dict *text.Dict) ([]byte, []BlockStats) {
	t.Helper()
	var buf bytes.Buffer
	cw := NewColWriter(&buf, objs[0].Kind, dict, blockRecords)
	for _, o := range objs {
		if err := cw.Append(o); err != nil {
			t.Fatal(err)
		}
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), cw.Stats()
}

func onlyKind(objs []Object, k Kind) []Object {
	var out []Object
	for _, o := range objs {
		if o.Kind == k {
			out = append(out, o)
		}
	}
	return out
}

func TestColSegmentRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	dict := text.NewDict()
	all := randObjects(r, 700)
	for _, kind := range []Kind{DataObject, FeatureObject} {
		for _, blockRecords := range []int{1, 7, 256, 100000} {
			objs := onlyKind(all, kind)
			raw, stats := writeSegment(t, objs, blockRecords, dict)

			wantBlocks := (len(objs) + blockRecords - 1) / blockRecords
			if len(stats) != wantBlocks {
				t.Fatalf("%v/%d: %d blocks, want %d", kind, blockRecords, len(stats), wantBlocks)
			}
			var back []Object
			total := 0
			for i, bs := range stats {
				if bs.Offset < 5 || int(bs.Offset)+bs.Length > len(raw) {
					t.Fatalf("%v/%d: block %d frame (%d+%d) outside segment of %d bytes",
						kind, blockRecords, i, bs.Offset, bs.Length, len(raw))
				}
				b, err := DecodeColFrame(raw[bs.Offset : bs.Offset+int64(bs.Length)])
				if err != nil {
					t.Fatalf("%v/%d: block %d: %v", kind, blockRecords, i, err)
				}
				if b.Len() != bs.Records {
					t.Fatalf("%v/%d: block %d decoded %d records, zone map says %d",
						kind, blockRecords, i, b.Len(), bs.Records)
				}
				for j := 0; j < b.Len(); j++ {
					o := b.Object(j)
					if !bs.Bounds.Contains(o.Loc) {
						t.Fatalf("%v/%d: block %d object %d outside the zone-map bounds", kind, blockRecords, i, o.ID)
					}
					if kind == FeatureObject {
						for _, w := range dict.Words(o.Keywords) {
							if !bs.Keywords.MayContain(w) {
								t.Fatalf("%v/%d: block %d bloom misses keyword %q", kind, blockRecords, i, w)
							}
						}
					}
					back = append(back, o)
				}
				total += bs.Records
			}
			if total != len(objs) {
				t.Fatalf("%v/%d: blocks hold %d records, want %d", kind, blockRecords, total, len(objs))
			}
			// Record order inside a segment is preserved, so the round trip
			// must be exact. Keyword sets alias the decoded columns; compare
			// by value.
			if len(back) != len(objs) {
				t.Fatalf("%v/%d: %d objects back, want %d", kind, blockRecords, len(back), len(objs))
			}
			for i := range objs {
				if back[i].Kind != objs[i].Kind || back[i].ID != objs[i].ID || back[i].Loc != objs[i].Loc ||
					!reflect.DeepEqual(append(text.KeywordSet(nil), back[i].Keywords...), objs[i].Keywords) {
					t.Fatalf("%v/%d: object %d differs: %v vs %v", kind, blockRecords, i, back[i], objs[i])
				}
			}
		}
	}
}

// TestColSegmentRejectsCorruption flips, truncates and extends frames; the
// decoder must return an error every time — never a panic, never objects.
func TestColSegmentRejectsCorruption(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	dict := text.NewDict()
	objs := onlyKind(randObjects(r, 300), FeatureObject)
	raw, stats := writeSegment(t, objs, 64, dict)
	bs := stats[1]
	frame := raw[bs.Offset : bs.Offset+int64(bs.Length)]

	if _, err := DecodeColFrame(frame); err != nil {
		t.Fatalf("pristine frame rejected: %v", err)
	}
	// Truncations at every prefix length.
	for n := 0; n < len(frame); n++ {
		if _, err := DecodeColFrame(frame[:n]); err == nil {
			t.Fatalf("truncation to %d of %d bytes accepted", n, len(frame))
		}
	}
	// Single-bit flips anywhere in the frame: the CRC catches payload
	// damage, the frame checks catch length damage.
	for i := 0; i < len(frame); i++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), frame...)
			mut[i] ^= 1 << bit
			if _, err := DecodeColFrame(mut); err == nil {
				t.Fatalf("bit flip at byte %d bit %d accepted", i, bit)
			}
		}
	}
	// Trailing garbage.
	if _, err := DecodeColFrame(append(append([]byte(nil), frame...), 0xAB)); err == nil {
		t.Fatal("frame with trailing garbage accepted")
	}
	// Wrong offset (reading mid-frame), the failure mode of a corrupt
	// manifest.
	if _, err := DecodeColFrame(raw[bs.Offset+3 : bs.Offset+3+int64(bs.Length)]); err == nil {
		t.Fatal("misaligned frame accepted")
	}
}

func TestColWriterRejectsMixedKinds(t *testing.T) {
	var buf bytes.Buffer
	cw := NewColWriter(&buf, DataObject, nil, 0)
	if err := cw.Append(Object{Kind: DataObject, ID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := cw.Append(Object{Kind: FeatureObject, ID: 2}); err == nil {
		t.Fatal("feature accepted by a data segment")
	}
}

// TestColInputCacheSharing checks the decoded-segment cache: a second read
// of the same generation serves every block from cache, and a different
// generation misses.
func TestColInputCacheSharing(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	dict := text.NewDict()
	objs := randObjects(r, 500)
	g := grid.NewSquare(3)
	store := MemSegStore{}
	man, err := PartitionObjects(g, objs).SealSegments(store, "c", dict, 32, FormatColumnar)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewBlockCache(1 << 20)
	drain := func(gen uint64) int {
		in := NewColInput(store, SelectAllBlocks(man), cache, gen)
		n := 0
		if err := eachSourceObject(in, func(Object) { n++ }); err != nil {
			t.Fatal(err)
		}
		return n
	}
	if n := drain(1); n != len(objs) {
		t.Fatalf("read %d objects, want %d", n, len(objs))
	}
	st := cache.Stats()
	if st.Hits != 0 || st.Misses == 0 || st.Entries != int(st.Misses) {
		t.Fatalf("cold read stats: %+v", st)
	}
	cold := st.Misses
	if n := drain(1); n != len(objs) {
		t.Fatalf("cached read lost objects: %d", n)
	}
	st = cache.Stats()
	if st.Hits != cold || st.Misses != cold {
		t.Fatalf("warm read stats: %+v, want %d hits", st, cold)
	}
	// A generation bump makes every entry unreachable: all misses again.
	drain(2)
	st = cache.Stats()
	if st.Misses != 2*cold {
		t.Fatalf("new generation did not miss: %+v", st)
	}
}

// TestColInputLRUEviction bounds the cache by decoded bytes.
func TestColInputLRUEviction(t *testing.T) {
	blk := &ColumnBlock{Kind: DataObject, IDs: []uint64{1}, Xs: []float64{0}, Ys: []float64{0}}
	cache := NewBlockCache(int64(2 * blk.MemBytes())) // room for two entries
	for i := 0; i < 5; i++ {
		cache.Put(BlockKey{Gen: 1, File: "f", Index: i}, blk)
	}
	if st := cache.Stats(); st.Entries != 2 || st.Bytes != int64(2*blk.MemBytes()) {
		t.Fatalf("cache holds %d entries / %d bytes, want 2 entries within %d bytes",
			st.Entries, st.Bytes, 2*blk.MemBytes())
	}
	if _, ok := cache.Get(BlockKey{Gen: 1, File: "f", Index: 0}); ok {
		t.Fatal("evicted entry still served")
	}
	if _, ok := cache.Get(BlockKey{Gen: 1, File: "f", Index: 4}); !ok {
		t.Fatal("most recent entry evicted")
	}
}

// FuzzDecodeColFrame is the corruption fuzz target: arbitrary bytes must
// decode or fail with an error — never panic, never loop.
func FuzzDecodeColFrame(f *testing.F) {
	r := rand.New(rand.NewSource(2))
	dict := text.NewDict()
	for _, kind := range []Kind{DataObject, FeatureObject} {
		for _, spq3 := range []bool{false, true} {
			objs := onlyKind(randObjects(r, 120), kind)
			var buf bytes.Buffer
			cw := NewColWriter(&buf, kind, dict, 16)
			if spq3 {
				cw = NewCol3Writer(&buf, kind, dict, 16)
			}
			for _, o := range objs {
				if err := cw.Append(o); err != nil {
					f.Fatal(err)
				}
			}
			if err := cw.Close(); err != nil {
				f.Fatal(err)
			}
			for _, bs := range cw.Stats() {
				f.Add(buf.Bytes()[bs.Offset : bs.Offset+int64(bs.Length)])
			}
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0x05, 'F', 0x01})
	f.Fuzz(func(t *testing.T, frame []byte) {
		b, err := DecodeColFrame(frame)
		if err != nil {
			return
		}
		// Anything that decodes must be internally consistent enough to
		// view every record.
		if b.Len() == 0 {
			t.Fatal("decoded block with zero records")
		}
		for i := 0; i < b.Len(); i++ {
			_ = b.Object(i)
		}
	})
}

// FuzzColBlockRoundTrip drives the encoder with fuzzer-chosen objects and
// checks encode -> frame -> decode is the identity.
func FuzzColBlockRoundTrip(f *testing.F) {
	f.Add(uint64(7), 0.25, -3.5, "alpha,beta", true)
	f.Add(uint64(1<<63), -1e300, 1e-300, "", false)
	f.Add(uint64(0), 0.0, 0.0, strings.Repeat("k,", 40), true)
	f.Fuzz(func(t *testing.T, id uint64, x, y float64, kws string, feature bool) {
		dict := text.NewDict()
		kind := DataObject
		var set text.KeywordSet
		if feature {
			kind = FeatureObject
			if kws != "" {
				set = dict.InternAll(strings.Split(kws, ","))
			}
		}
		objs := []Object{
			{Kind: kind, ID: id, Loc: geo.Point{X: x, Y: y}, Keywords: set},
			{Kind: kind, ID: id / 2, Loc: geo.Point{X: y, Y: x}},
		}
		var buf bytes.Buffer
		cw := NewColWriter(&buf, kind, dict, 0)
		for _, o := range objs {
			if err := cw.Append(o); err != nil {
				t.Fatal(err)
			}
		}
		if err := cw.Close(); err != nil {
			t.Fatal(err)
		}
		stats := cw.Stats()
		if len(stats) != 1 {
			t.Fatalf("%d blocks, want 1", len(stats))
		}
		bs := stats[0]
		b, err := DecodeColFrame(buf.Bytes()[bs.Offset : bs.Offset+int64(bs.Length)])
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if b.Len() != len(objs) {
			t.Fatalf("decoded %d records, want %d", b.Len(), len(objs))
		}
		for i, want := range objs {
			got := b.Object(i)
			// NaN coordinates cannot compare equal; compare bit patterns
			// through the zone map instead of value equality.
			if got.Kind != want.Kind || got.ID != want.ID ||
				!sameFloat(got.Loc.X, want.Loc.X) || !sameFloat(got.Loc.Y, want.Loc.Y) ||
				!got.Keywords.Equal(want.Keywords) {
				t.Fatalf("record %d: got %v, want %v", i, got, want)
			}
		}
	})
}

func sameFloat(a, b float64) bool { return a == b || (a != a && b != b) }
