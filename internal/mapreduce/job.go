// Package mapreduce is an in-process MapReduce framework modeled after
// Hadoop as used by the paper (Section 2.1): a job consists of a Map
// function, a Partitioner that routes map output keys to Reduce tasks, a
// key Comparator that fixes the order in which a Reduce task sees its
// records (enabling secondary sort on composite keys), a grouping
// Comparator that delimits reduce groups, and a Reduce function that
// receives the values of one group as an iterator.
//
// The iterator-based reduce interface is load-bearing for this repository:
// the early-termination algorithms of Section 5 (eSPQlen, eSPQsco) stop
// consuming values mid-group, and the engine guarantees that unconsumed
// records are never materialized beyond the sort, mirroring how a Hadoop
// reducer can return early.
//
// The engine executes map and reduce tasks on a simulated cluster (package
// dfs provides the storage nodes) with a configurable number of worker
// slots, locality-aware map scheduling, per-task retry with fault
// injection, optional spill-to-disk external sorting, and Hadoop-style
// counters.
package mapreduce

import (
	"bufio"
	"errors"
	"fmt"
	"time"
)

// Pair is one intermediate key/value record.
type Pair[K, V any] struct {
	Key   K
	Value V
}

// Codec serializes intermediate records for spill files and shuffle-byte
// accounting. Encode and Decode must round-trip.
type Codec[T any] struct {
	Encode func(w *bufio.Writer, t T) error
	Decode func(r *bufio.Reader) (T, error)
}

// TaskKind distinguishes map from reduce tasks in fault injectors and
// scheduling hooks.
type TaskKind int

// The two task kinds.
const (
	MapTask TaskKind = iota
	ReduceTask
)

// String implements fmt.Stringer.
func (k TaskKind) String() string {
	if k == MapTask {
		return "map"
	}
	return "reduce"
}

// Job describes one MapReduce job over records of type I, intermediate
// pairs (K, V) and output records O.
type Job[I, K, V, O any] struct {
	// Name labels the job in errors and stats.
	Name string

	// Source provides the input splits (package dfs text files, or an
	// in-memory source for tests).
	Source Source[I]

	// Map is invoked once per input record and emits intermediate pairs.
	Map func(ctx *TaskContext, rec I, emit func(K, V)) error

	// NumReducers is the number of reduce tasks R. The paper sets R to the
	// number of grid cells. Must be positive.
	NumReducers int

	// Partition routes a key to one of the NumReducers reduce tasks. It is
	// the analogue of Hadoop's custom Partitioner (the paper partitions by
	// the cell-id half of the composite key).
	Partition func(key K, numReducers int) int

	// Less is the full composite-key comparator fixing the order in which
	// a reduce task iterates its records (Hadoop's sort comparator).
	Less func(a, b K) bool

	// Compare optionally provides the three-way form of Less (negative,
	// zero, positive). The sort and merge hot paths call the comparator
	// once per comparison through it; when nil, the engine derives it from
	// Less at twice the call cost. When both are set they must agree.
	Compare func(a, b K) int

	// GroupEqual is the grouping comparator: consecutive sorted records
	// whose keys are GroupEqual form one reduce group. If nil, every
	// record is its own group.
	GroupEqual func(a, b K) bool

	// Reduce is invoked once per group with an iterator over the group's
	// pairs in Less order. It may stop consuming values at any point
	// (early termination). Output records are passed to emit.
	Reduce func(ctx *TaskContext, values *Values[K, V], emit func(O)) error

	// KeyCodec and ValueCodec serialize intermediate records. They are
	// required when SpillEvery > 0 and otherwise optional; when present
	// they are also used to meter shuffle bytes.
	KeyCodec   *Codec[K]
	ValueCodec *Codec[V]

	// SpillEvery bounds the number of intermediate records a map task may
	// hold in memory; beyond it, sorted runs are spilled to temporary
	// files and merged on the reduce side. Zero disables spilling.
	SpillEvery int

	// MaxAttempts is the per-task retry budget (default 1, i.e. no retry).
	// Attempts whose error is marked Permanent fail fast without consuming
	// the remaining budget. A job whose tasks exhaust their budgets fails
	// with one aggregated *JobError wrapping ErrTooManyFailures.
	MaxAttempts int

	// RetryBackoff is the base delay of the capped exponential backoff
	// between task attempts: the first retry waits RetryBackoff, doubling
	// per subsequent retry up to an internal cap. Zero means a small
	// default; negative disables backoff.
	RetryBackoff time.Duration

	// Priority admits this job's tasks through the cluster slot pools'
	// priority lane, ahead of queued tasks of regular jobs. Reserved for
	// jobs known to be cheap (the engine flags planned queries that read a
	// small fraction of the input), so short queries are not stuck behind
	// scan-heavy ones.
	Priority bool

	// FaultInjector, if non-nil, is consulted before each task attempt;
	// a non-nil return fails that attempt. Used by the failure tests.
	// A job carrying an injector never leaves the local executor (the
	// hook is a closure and cannot be shipped).
	FaultInjector func(kind TaskKind, taskID, attempt int) error

	// Wire, when non-nil, gives the job a serializable self-description so
	// remote executors can reconstruct it on worker processes (see
	// RegisterJobKind). Nil keeps the job local-only. The local executor
	// ignores it.
	Wire *WireJob
}

// WireJob is a job's serializable self-description: a registered kind plus
// an opaque, kind-specific spec blob a worker-side builder turns back into
// a runnable job.
type WireJob struct {
	// Kind names the worker-side builder (see RegisterJobKind).
	Kind string
	// Spec is the kind-specific job description, opaque to the framework.
	Spec []byte
}

// compare returns the job's three-way key comparator, deriving one from
// Less when Compare is not set.
func (j *Job[I, K, V, O]) compare() func(a, b K) int {
	if j.Compare != nil {
		return j.Compare
	}
	less := j.Less
	return func(a, b K) int {
		if less(a, b) {
			return -1
		}
		if less(b, a) {
			return 1
		}
		return 0
	}
}

// validate checks the job for structural errors before execution.
func (j *Job[I, K, V, O]) validate() error {
	switch {
	case j.Source == nil:
		return fmt.Errorf("mapreduce: job %q: nil Source", j.Name)
	case j.Map == nil:
		return fmt.Errorf("mapreduce: job %q: nil Map", j.Name)
	case j.Reduce == nil:
		return fmt.Errorf("mapreduce: job %q: nil Reduce", j.Name)
	case j.NumReducers <= 0:
		return fmt.Errorf("mapreduce: job %q: NumReducers = %d", j.Name, j.NumReducers)
	case j.Partition == nil:
		return fmt.Errorf("mapreduce: job %q: nil Partition", j.Name)
	case j.Less == nil:
		return fmt.Errorf("mapreduce: job %q: nil Less", j.Name)
	case j.SpillEvery > 0 && (j.KeyCodec == nil || j.ValueCodec == nil):
		return fmt.Errorf("mapreduce: job %q: SpillEvery requires KeyCodec and ValueCodec", j.Name)
	}
	return nil
}

// ErrTooManyFailures is wrapped into the error returned when a task
// exhausts its retry budget.
var ErrTooManyFailures = errors.New("mapreduce: task exceeded retry budget")
