package mapreduce

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Admission-control tests: the cluster-shared slot pools that keep N
// concurrent jobs from oversubscribing the configured slots.

func TestSlotPoolImmediateWhenFree(t *testing.T) {
	p := newSlotPool(2)
	for i := 0; i < 2; i++ {
		waited, depth, err := p.acquire(context.Background(), false)
		if waited != 0 || depth != 0 || err != nil {
			t.Fatalf("acquire %d: waited=%v depth=%d, want immediate", i, waited, depth)
		}
	}
	if got := p.queueDepth(); got != 0 {
		t.Fatalf("queueDepth = %d", got)
	}
	p.release()
	p.release()
	if waited, depth, err := p.acquire(context.Background(), false); waited != 0 || depth != 0 || err != nil {
		t.Fatalf("post-release acquire: waited=%v depth=%d", waited, depth)
	}
}

// TestSlotPoolFIFOAndPriority holds the only slot, queues regular and
// priority waiters, and checks the wake order: priority lane first, FIFO
// within each lane.
func TestSlotPoolFIFOAndPriority(t *testing.T) {
	p := newSlotPool(1)
	p.acquire(context.Background(), false) // hold the slot

	var (
		mu    sync.Mutex
		order []string
		wg    sync.WaitGroup
	)
	enqueued := 0
	enqueue := func(name string, prio bool) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.acquire(context.Background(), prio) //nolint:errcheck // background ctx never cancels
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
			p.release()
		}()
		// Wait until the waiter is actually enqueued so arrival order is
		// deterministic.
		enqueued++
		deadline := time.Now().Add(time.Second)
		for p.queueDepth() < enqueued && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
	}

	enqueue("f1", false)
	enqueue("f2", false)
	enqueue("p1", true)
	enqueue("p2", true)
	if d := p.queueDepth(); d != 4 {
		t.Fatalf("queueDepth = %d, want 4", d)
	}
	p.release() // hand the slot down the queue
	wg.Wait()

	want := []string{"p1", "p2", "f1", "f2"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("wake order = %v, want %v", order, want)
	}
}

// TestSlotPoolPriorityAging keeps the priority lane saturated and checks
// the regular lane's head is still served after prioBurst consecutive
// priority grants — the starvation bound.
func TestSlotPoolPriorityAging(t *testing.T) {
	p := newSlotPool(1)
	p.acquire(context.Background(), false) // hold the slot

	var (
		mu    sync.Mutex
		order []string
		wg    sync.WaitGroup
	)
	enqueued := 0
	enqueue := func(name string, prio bool) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.acquire(context.Background(), prio) //nolint:errcheck // background ctx never cancels
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
			p.release()
		}()
		enqueued++
		deadline := time.Now().Add(time.Second)
		for p.queueDepth() < enqueued && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
	}
	enqueue("f1", false)
	for i := 1; i <= prioBurst+2; i++ {
		enqueue(fmt.Sprintf("p%d", i), true)
	}
	p.release()
	wg.Wait()

	// After prioBurst priority grants, f1 must be served before the
	// remaining priority waiters.
	want := []string{"p1", "p2", "p3", "p4", "f1", "p5", "p6"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("wake order = %v, want %v", order, want)
	}
}

// admissionJob is a trivial word-free job whose map tasks sleep briefly,
// so concurrently running tasks overlap observably.
func admissionJob(chunks int, running, peak *atomic.Int64, priority bool) *Job[int, int, int, int] {
	var src MemorySource[int]
	for i := 0; i < chunks; i++ {
		src.Chunks = append(src.Chunks, []int{i})
	}
	return &Job[int, int, int, int]{
		Name:   "admission",
		Source: &src,
		Map: func(ctx *TaskContext, rec int, emit func(int, int)) error {
			cur := running.Add(1)
			for {
				old := peak.Load()
				if cur <= old || peak.CompareAndSwap(old, cur) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
			running.Add(-1)
			emit(rec%2, rec)
			return nil
		},
		NumReducers: 2,
		Partition:   func(k, r int) int { return k % r },
		Less:        func(a, b int) bool { return a < b },
		Reduce: func(ctx *TaskContext, values *Values[int, int], emit func(int)) error {
			for {
				if _, ok := values.Next(); !ok {
					return nil
				}
			}
		},
		Priority: priority,
	}
}

// TestConcurrentJobsShareSlots runs several jobs at once on a 2-slot
// cluster and asserts the map-task concurrency across ALL jobs never
// exceeds the slot count — the invariant the shared pool exists for.
func TestConcurrentJobsShareSlots(t *testing.T) {
	c := NewCluster(nil, 2, 2)
	var running, peak atomic.Int64
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for j := 0; j < 4; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			_, err := Run(c, admissionJob(6, &running, &peak, false))
			errs[j] = err
		}(j)
	}
	wg.Wait()
	for j, err := range errs {
		if err != nil {
			t.Fatalf("job %d: %v", j, err)
		}
	}
	if got := peak.Load(); got > 2 {
		t.Errorf("peak concurrent map tasks = %d, want <= 2 (the shared slot count)", got)
	}
}

// TestSchedCounters checks a lone job is admitted without queueing and a
// contended run records queueing and wait time.
func TestSchedCounters(t *testing.T) {
	c := NewCluster(nil, 1, 1)
	var running, peak atomic.Int64

	res, err := Run(c, admissionJob(3, &running, &peak, false))
	if err != nil {
		t.Fatal(err)
	}
	admitted := res.Counters[CounterSchedAdmitted]
	if admitted != 3+2 { // 3 map tasks + 2 reduce tasks
		t.Errorf("admitted = %d, want 5", admitted)
	}
	if q := res.Counters[CounterSchedQueued]; q != 0 {
		t.Errorf("lone job queued = %d, want 0", q)
	}

	// Contended: two jobs on the 1-slot cluster; at least one records
	// queued tasks and waiting time.
	var wg sync.WaitGroup
	results := make([]*Result[int], 2)
	for j := 0; j < 2; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			r, err := Run(c, admissionJob(4, &running, &peak, false))
			if err != nil {
				t.Error(err)
				return
			}
			results[j] = r
		}(j)
	}
	wg.Wait()
	var queued, wait int64
	for _, r := range results {
		if r == nil {
			t.Fatal("missing result")
		}
		queued += r.Counters[CounterSchedQueued]
		wait += r.Counters[CounterSchedWaitMicros]
	}
	if queued == 0 {
		t.Error("two jobs on one slot recorded no queueing")
	}
	if wait == 0 {
		t.Error("queued tasks recorded no wait time")
	}
}

// TestPriorityJobOvertakesQueue floods a 1-slot cluster with a regular
// job, then submits a priority job and checks it finishes while the
// regular job still has tasks pending — its tasks jumped the queue.
func TestPriorityJobOvertakes(t *testing.T) {
	c := NewCluster(nil, 1, 1)
	var running, peak atomic.Int64
	var regularDone, priorityDone atomic.Int64

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		if _, err := Run(c, admissionJob(40, &running, &peak, false)); err != nil {
			t.Error(err)
		}
		regularDone.Store(time.Now().UnixNano())
	}()
	time.Sleep(5 * time.Millisecond) // let the regular job occupy the slot
	go func() {
		defer wg.Done()
		if _, err := Run(c, admissionJob(2, &running, &peak, true)); err != nil {
			t.Error(err)
		}
		priorityDone.Store(time.Now().UnixNano())
	}()
	wg.Wait()
	if priorityDone.Load() >= regularDone.Load() {
		t.Error("priority job finished after the 20x larger regular job")
	}
}
