package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Tests for context cancellation: the cancellable slot acquire, and
// RunContext aborting a job without leaking admission slots.

// TestAcquireCancelWhileQueued: a waiter whose context is canceled leaves
// the admission queue without consuming a slot, and the pool keeps
// serving afterwards.
func TestAcquireCancelWhileQueued(t *testing.T) {
	p := newSlotPool(1)
	if _, _, err := p.acquire(context.Background(), false); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, _, err := p.acquire(ctx, false)
		errCh <- err
	}()
	// Wait until the waiter is queued, then cancel it.
	for i := 0; p.queueDepth() == 0; i++ {
		if i > 1000 {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("queued acquire returned %v, want context.Canceled", err)
	}
	if d := p.queueDepth(); d != 0 {
		t.Fatalf("canceled waiter still queued (depth %d)", d)
	}

	// The slot the holder releases must be grantable again: nothing leaked.
	p.release()
	done := make(chan struct{})
	go func() {
		if _, _, err := p.acquire(context.Background(), false); err != nil {
			t.Error(err)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("pool wedged after canceled waiter")
	}
	p.release()
}

// TestAcquireCancelGrantRace hammers the grant/cancel race: waiters whose
// context fires at the same moment release() hands them the slot must not
// leak it. After the storm the pool must still hold exactly its capacity.
func TestAcquireCancelGrantRace(t *testing.T) {
	const slots, rounds, workers = 2, 200, 8
	p := newSlotPool(slots)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				ctx, cancel := context.WithCancel(context.Background())
				if (i+seed)%2 == 0 {
					// Cancel concurrently with the grant.
					go cancel()
				}
				_, _, err := p.acquire(ctx, seed%3 == 0)
				if err == nil {
					p.release()
				}
				cancel()
			}
		}(w)
	}
	wg.Wait()
	// Every slot must be acquirable without blocking.
	for i := 0; i < slots; i++ {
		done := make(chan struct{})
		go func() {
			if _, _, err := p.acquire(context.Background(), false); err != nil {
				t.Error(err)
			}
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatalf("slot %d leaked during grant/cancel race", i)
		}
	}
	if d := p.queueDepth(); d != 0 {
		t.Fatalf("queue depth %d after storm, want 0", d)
	}
}

// TestRunContextCancelStopsTaskStarts is the counter-verified cancellation
// test: cancel during the first map task and no further tasks may start —
// the FaultInjector hook runs at the start of every attempt, so it IS the
// task-start counter. The cluster must stay usable afterwards (the
// canceled job's admission slots were released).
func TestRunContextCancelStopsTaskStarts(t *testing.T) {
	const tasks = 64
	lines := make([]string, tasks)
	for i := range lines {
		lines[i] = fmt.Sprintf("word%d word%d", i, i%7)
	}

	ctx, cancel := context.WithCancel(context.Background())
	var starts atomic.Int64
	job := wordCountJob(lines, 4)
	job.Source = NewMemorySource(lines, 1) // one map task per line
	job.FaultInjector = func(kind TaskKind, taskID, attempt int) error {
		if starts.Add(1) == 1 {
			cancel()
		}
		return nil
	}

	c := NewCluster(nil, 1, 1)
	_, err := RunContext(ctx, c, job)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext returned %v, want context.Canceled", err)
	}
	if !strings.Contains(err.Error(), job.Name) {
		t.Errorf("error %q does not name the job", err)
	}

	// Single map slot + cancellation on the first start: at most the tasks
	// already past the lane-loop check may begin. Anything near the full
	// task count means cancellation did not stop dispatch.
	if n := starts.Load(); n > 4 {
		t.Fatalf("%d task starts after cancellation, want <= 4 (of %d tasks)", n, tasks)
	}

	// The pool must have been released: a fresh run on the same cluster
	// completes normally.
	job2 := wordCountJob(lines, 4)
	res, err := Run(c, job2)
	if err != nil {
		t.Fatalf("cluster unusable after canceled job: %v", err)
	}
	if len(res.Output) == 0 {
		t.Fatal("no output from follow-up job")
	}
}

// TestRunContextDeadline: an already-expired deadline aborts before any
// task starts, and the error carries context.DeadlineExceeded.
func TestRunContextDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	var starts atomic.Int64
	job := wordCountJob([]string{"a b", "c d"}, 2)
	job.FaultInjector = func(kind TaskKind, taskID, attempt int) error {
		starts.Add(1)
		return nil
	}
	_, err := RunContext(ctx, NewCluster(nil, 2, 2), job)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RunContext returned %v, want context.DeadlineExceeded", err)
	}
	if n := starts.Load(); n != 0 {
		t.Fatalf("%d tasks started under an expired deadline", n)
	}
}

// TestRunContextNilAndBackground: nil contexts behave like Background and
// jobs complete normally — the compatibility contract of Run.
func TestRunContextNilAndBackground(t *testing.T) {
	lines := []string{"x y", "y z"}
	res, err := RunContext(nil, NewCluster(nil, 2, 2), wordCountJob(lines, 2)) //nolint:staticcheck // nil ctx tolerance is the contract under test
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 3 {
		t.Fatalf("got %d outputs, want 3", len(res.Output))
	}
}
