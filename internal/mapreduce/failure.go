package mapreduce

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"
)

// TaskError is the final, typed failure of one task: the error of its last
// attempt plus how the task got there. When the retry budget was exhausted
// it unwraps to both ErrTooManyFailures and the underlying cause, so
// errors.Is works against either.
type TaskError struct {
	Job  string
	Kind TaskKind
	Task int
	// Worker names the slot or worker process that executed the failing
	// attempt, so a distributed JobError is attributable to a machine.
	Worker    string
	Attempts  int  // attempts actually executed
	Budget    int  // the job's retry budget (MaxAttempts)
	Exhausted bool // true when the retry budget ran out; false for a permanent fast-fail
	Err       error
}

func (e *TaskError) Error() string {
	on := ""
	if e.Worker != "" {
		on = " on " + e.Worker
	}
	if e.Exhausted {
		return fmt.Sprintf("%s task %d%s failed after %d/%d attempts: %v", e.Kind, e.Task, on, e.Attempts, e.Budget, e.Err)
	}
	return fmt.Sprintf("%s task %d%s failed permanently on attempt %d/%d (not retryable): %v", e.Kind, e.Task, on, e.Attempts, e.Budget, e.Err)
}

func (e *TaskError) Unwrap() []error {
	if e.Exhausted {
		return []error{ErrTooManyFailures, e.Err}
	}
	return []error{e.Err}
}

// JobError aggregates every task failure of one job run into a single
// typed error. Unwrap exposes each task error (and, transitively,
// ErrTooManyFailures and the root causes), so callers can errors.Is / As
// against any of them.
type JobError struct {
	Job   string
	Phase TaskKind
	Tasks []*TaskError
}

func (e *JobError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "mapreduce: job %q %s phase failed (%d task(s)): ", e.Job, e.Phase, len(e.Tasks))
	for i, te := range e.Tasks {
		if i > 0 {
			b.WriteString("; ")
		}
		b.WriteString(te.Error())
	}
	return b.String()
}

func (e *JobError) Unwrap() []error {
	errs := make([]error, len(e.Tasks))
	for i, te := range e.Tasks {
		errs[i] = te
	}
	return errs
}

// newJobError sorts task failures deterministically (by task id) and wraps
// them; task order is otherwise scheduling-dependent.
func newJobError(job string, phase TaskKind, tasks []*TaskError) *JobError {
	sort.Slice(tasks, func(i, j int) bool { return tasks[i].Task < tasks[j].Task })
	return &JobError{Job: job, Phase: phase, Tasks: tasks}
}

// permanentError marks an error as deterministic: retrying the attempt
// would fail identically (malformed input, a partitioner bug), so the task
// fails fast instead of burning its retry budget.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent marks err as not retryable: a task attempt failing with it is
// not re-executed regardless of MaxAttempts. Use it for deterministic
// failures where a retry would fail identically.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// isPermanent reports whether err (or anything it wraps) was marked with
// Permanent.
func isPermanent(err error) bool {
	var pe *permanentError
	return errors.As(err, &pe)
}

// Retry backoff bounds: the first retry waits the job's base (default
// defaultRetryBackoff), doubling per subsequent retry, capped at
// maxRetryBackoff. The simulation's tasks run in microseconds, so the
// defaults are small; they exist to exercise the same capped-exponential
// shape a real cluster uses, not to model real datanode timeouts.
const (
	defaultRetryBackoff = time.Millisecond
	maxRetryBackoff     = 100 * time.Millisecond
)

// retryDelay returns the backoff before retry number `failed`+1 (i.e.
// after `failed` failed attempts) for a job-configured base. A negative
// base disables backoff entirely.
func retryDelay(base time.Duration, failed int) time.Duration {
	if base < 0 {
		return 0
	}
	if base == 0 {
		base = defaultRetryBackoff
	}
	shift := failed - 1
	if shift < 0 {
		shift = 0
	}
	if shift > 20 {
		shift = 20
	}
	d := base << shift
	if d > maxRetryBackoff || d < 0 {
		d = maxRetryBackoff
	}
	return d
}
