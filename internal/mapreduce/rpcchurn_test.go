package mapreduce

import (
	"net"
	"net/rpc"
	"strings"
	"testing"
	"time"

	"spq/internal/dfs"
)

// Elastic-membership and straggler-tolerance tests: workers joining a
// running executor, graceful drains, crash-rejoin under the same name,
// speculative backups racing injected stragglers, and slow-call
// quarantine. Everything runs over real loopback TCP.

// workerTasks sums the per-worker task counters of name across results.
func workerTasks(res *Result[string], name string) int64 {
	return res.Counters[CounterExecTasksPrefix+name]
}

// A worker attached mid-engine (AddWorker) must show up in the membership
// list, grow the lane table, and execute tasks of the next job.
func TestRPCExecutorAddWorkerMidEngine(t *testing.T) {
	fs, want := rpcHarness(t, 500)
	exec, err := NewRPCExecutor(fs, func(n int) []string { return nil }, startWorkers(t, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer exec.Close()

	checkRPCSum(t, runRPCSum(t, fs, exec), want)
	lanesBefore := exec.Lanes(MapTask)

	addr := startWorkers(t, 1, 2)[0]
	name, err := exec.AddWorker(addr, "")
	if err != nil {
		t.Fatal(err)
	}
	if name != "worker-2" {
		t.Fatalf("auto-assigned name %q, want worker-2", name)
	}
	if got := exec.Lanes(MapTask); got != lanesBefore+2 {
		t.Fatalf("lanes = %d after join, want %d", got, lanesBefore+2)
	}
	ws := exec.Workers()
	if len(ws) != 2 || ws[1] != "worker-2" {
		t.Fatalf("Workers() = %v, want [worker-1 worker-2]", ws)
	}

	res := runRPCSum(t, fs, exec)
	checkRPCSum(t, res, want)
	if workerTasks(res, "worker-2") == 0 {
		t.Error("joined worker executed no tasks")
	}

	// A second AddWorker under a live name must refuse, not double-attach.
	if _, err := exec.AddWorker(addr, "worker-2"); err == nil {
		t.Error("AddWorker accepted a name that is already attached and live")
	}
}

// Worker-initiated membership: JoinMaster must register the worker with
// the running master (which dials it back), exactly like AddWorker.
func TestRPCExecutorJoinMaster(t *testing.T) {
	fs, want := rpcHarness(t, 300)
	exec, err := NewRPCExecutor(fs, func(n int) []string { return nil }, startWorkers(t, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer exec.Close()

	w, err := StartWorker("127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Stop)
	name, err := JoinMaster(exec.MasterAddr(), w.Addr(), "")
	if err != nil {
		t.Fatal(err)
	}
	if name != "worker-2" {
		t.Fatalf("join assigned name %q, want worker-2", name)
	}

	res := runRPCSum(t, fs, exec)
	checkRPCSum(t, res, want)
	if workerTasks(res, name) == 0 {
		t.Error("self-joined worker executed no tasks")
	}
}

// Graceful drain: the drained worker stops receiving tasks but can rejoin
// under its old name without an engine restart; draining the last live
// worker is refused.
func TestRPCExecutorDrainAndRejoin(t *testing.T) {
	fs, want := rpcHarness(t, 500)
	addrs := startWorkers(t, 2, 2)
	exec, err := NewRPCExecutor(fs, func(n int) []string { return nil }, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer exec.Close()

	if err := exec.DrainWorker("worker-2"); err != nil {
		t.Fatal(err)
	}
	if err := exec.DrainWorker("worker-1"); err == nil {
		t.Error("drained the last live worker")
	}
	if err := exec.DrainWorker("worker-2"); err == nil {
		t.Error("drained a worker that is already detached")
	}
	if err := exec.DrainWorker("nobody"); err == nil {
		t.Error("drained an unknown worker")
	}

	res := runRPCSum(t, fs, exec)
	checkRPCSum(t, res, want)
	if n := workerTasks(res, "worker-2"); n != 0 {
		t.Errorf("drained worker ran %d tasks", n)
	}
	if workerTasks(res, "worker-1") == 0 {
		t.Error("surviving worker ran no tasks")
	}

	// Rejoin in place: same name, same (still-running) process.
	if name, err := exec.AddWorker(addrs[1], "worker-2"); err != nil || name != "worker-2" {
		t.Fatalf("rejoin: name=%q err=%v", name, err)
	}
	res = runRPCSum(t, fs, exec)
	checkRPCSum(t, res, want)
	if workerTasks(res, "worker-2") == 0 {
		t.Error("rejoined worker executed no tasks")
	}
}

// A crashed worker must be able to rejoin under its old name (fresh
// process at a fresh address) with the engine still running.
func TestRPCExecutorCrashRejoin(t *testing.T) {
	fs, want := rpcHarness(t, 500)
	addrs := startWorkers(t, 2, 2)
	exec, err := NewRPCExecutor(fs, func(n int) []string { return nil }, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer exec.Close()
	exec.SetWorkerKills([]dfs.WorkerKillEvent{{Worker: "worker-2", AfterTasks: 1}})

	res := runRPCSum(t, fs, exec)
	checkRPCSum(t, res, want)
	if res.Counters[CounterExecWorkersLost] == 0 {
		t.Fatal("kill plan fired no loss")
	}

	// A fresh process claims the dead name.
	fresh, err := StartWorker("127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fresh.Stop)
	if name, err := JoinMaster(exec.MasterAddr(), fresh.Addr(), "worker-2"); err != nil || name != "worker-2" {
		t.Fatalf("crash rejoin: name=%q err=%v", name, err)
	}
	res = runRPCSum(t, fs, exec)
	checkRPCSum(t, res, want)
	if workerTasks(res, "worker-2") == 0 {
		t.Error("rejoined worker executed no tasks")
	}
}

// Speculative execution: with one worker straggling (injected latency), a
// backup must launch on the other worker, win the race, and the job's
// result must be identical to an undisturbed run.
func TestRPCExecutorSpeculation(t *testing.T) {
	fs, want := rpcHarness(t, 500)
	exec, err := NewRPCExecutor(fs, func(n int) []string { return nil }, startWorkers(t, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer exec.Close()
	exec.SetSpeculation(&SpeculationConfig{Multiple: 2, MinTasks: 2, MinDelay: 5 * time.Millisecond})
	exec.SetChurn(&dfs.FaultPlan{
		WorkerSlowdowns: []dfs.WorkerSlowdownEvent{
			{Worker: "worker-1", AfterTasks: 1, Delay: 250 * time.Millisecond},
		},
	})

	res := runRPCSum(t, fs, exec)
	checkRPCSum(t, res, want)
	if res.Counters[CounterExecSpecLaunched] == 0 {
		t.Fatal("no speculative backups launched against a straggling worker")
	}
	if res.Counters[CounterExecSpecWon] == 0 {
		t.Error("no speculative backup won against a 250ms straggler")
	}
	if res.Counters[CounterExecWorkersLost] != 0 {
		t.Error("slowdown metered as a worker loss")
	}
	// Exactly one result per task was absorbed: per-worker task counts sum
	// to the task count despite the races.
	tasks := int64(0)
	for _, w := range exec.Workers() {
		tasks += workerTasks(res, w)
	}
	if wantTasks := int64(res.Stats.MapTasks + res.Stats.ReduceTasks); tasks != wantTasks {
		t.Errorf("per-worker task counters sum to %d, want %d (speculative twin double-counted?)", tasks, wantTasks)
	}
	for _, name := range fs.List() {
		if strings.HasPrefix(name, "shuffle/") {
			t.Errorf("shuffle intermediate %q not cleaned up", name)
		}
	}
}

// A seeded churn plan mixing a join and a drain must fire both (metered)
// and leave the result untouched; the joined worker serves the next job.
func TestRPCExecutorChurnPlan(t *testing.T) {
	fs, want := rpcHarness(t, 500)
	exec, err := NewRPCExecutor(fs, func(n int) []string { return nil }, startWorkers(t, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer exec.Close()

	joiner, err := StartWorker("127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(joiner.Stop)
	exec.SetChurn(&dfs.FaultPlan{
		WorkerJoins:  []dfs.WorkerJoinEvent{{Addr: joiner.Addr(), Name: "joiner", AfterTasks: 2}},
		WorkerDrains: []dfs.WorkerDrainEvent{{Worker: "worker-2", AfterTasks: 4}},
	})

	res := runRPCSum(t, fs, exec)
	checkRPCSum(t, res, want)
	if res.Counters[CounterExecWorkersJoined] == 0 {
		t.Error("scheduled join not metered")
	}
	if res.Counters[CounterExecWorkersDrained] == 0 {
		t.Error("scheduled drain not metered")
	}
	if res.Counters[CounterExecWorkersLost] != 0 {
		t.Error("graceful drain metered as a loss")
	}

	// The next job must route onto the joined worker.
	res = runRPCSum(t, fs, exec)
	checkRPCSum(t, res, want)
	if workerTasks(res, "joiner") == 0 {
		t.Error("chaos-joined worker executed no tasks in the following job")
	}
}

// slowRPCWorker answers Ping only after a long delay — a hung-but-alive
// worker from the master's perspective.
type slowRPCWorker struct{ delay time.Duration }

func (s *slowRPCWorker) Ping(args *PingArgs, reply *PingReply) error {
	time.Sleep(s.delay)
	return nil
}

// Consecutive call timeouts must quarantine a worker — treated as lost
// even though its TCP connection never failed — with the transition
// reported exactly once, on the quarantining call.
func TestWorkerConnQuarantine(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	srv := rpc.NewServer()
	if err := srv.RegisterName("Worker", &slowRPCWorker{delay: time.Minute}); err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go srv.ServeConn(conn)
		}
	}()

	client, err := rpc.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	w := &workerConn{name: "hung", addr: ln.Addr().String(), slots: 1, client: client}
	for i := 1; i < quarantineAfter; i++ {
		err, oc := w.call("Worker.Ping", &PingArgs{}, &PingReply{}, 5*time.Millisecond)
		if err == nil {
			t.Fatalf("call %d succeeded against a hung worker", i)
		}
		if oc != callOK {
			t.Fatalf("call %d outcome = %v before the quarantine threshold", i, oc)
		}
		if w.isDead() {
			t.Fatalf("worker dead after %d timeouts, threshold is %d", i, quarantineAfter)
		}
	}
	err, oc := w.call("Worker.Ping", &PingArgs{}, &PingReply{}, 5*time.Millisecond)
	if err == nil || oc != callQuarantined {
		t.Fatalf("quarantining call: err=%v outcome=%v, want error + callQuarantined", err, oc)
	}
	if !w.isDead() {
		t.Error("quarantined worker still reports alive")
	}
	if err, oc := w.call("Worker.Ping", &PingArgs{}, &PingReply{}, 5*time.Millisecond); err == nil || oc != callOK {
		t.Errorf("post-quarantine call: err=%v outcome=%v, want down error without a second transition", err, oc)
	}
}

// An answered call resets the consecutive-timeout count: intermittent
// slowness never accumulates into a quarantine.
func TestWorkerConnSlowCallReset(t *testing.T) {
	w := &workerConn{name: "w", slots: 1}
	w.slowCalls = quarantineAfter - 1
	w.resetSlow()
	if w.noteSlow() {
		t.Error("a single timeout after a reset quarantined the worker")
	}
}
