// Master/worker execution over net/rpc.
//
// The master lives in the engine process: it owns the DFS and the keyword
// dictionary, listens for worker callbacks (file fetches, shuffle writes,
// dictionary pulls), registers worker processes by dialing them and
// heartbeats them for liveness. Workers are separate processes (or
// loopback servers in tests) serving RunTask: they reconstruct jobs from
// wire descriptors through the job-kind registry and execute whole task
// attempts, reading inputs from and writing shuffle intermediates to the
// master's DFS — which brings replication, checksums and repair to the
// shuffle path for free.
package mapreduce

import (
	"errors"
	"fmt"
	"net"
	"net/rpc"
	"sync"
	"sync/atomic"
	"time"

	"spq/internal/dfs"
)

// RPC argument/reply types. All exported for net/rpc's gob codec.

// FetchArgs/FetchReply move one whole file master -> worker.
type FetchArgs struct{ Name string }
type FetchReply struct{ Data []byte }

// StoreArgs publishes one shuffle file worker -> master.
type StoreArgs struct {
	Name string
	Data []byte
}
type StoreReply struct{}

// DictArgs/DictReply pull a prefix of the master's keyword dictionary.
type DictArgs struct{ N int }
type DictReply struct{ Words []string }

// AttachArgs introduce a master to a worker; the reply carries the
// worker's task capacity.
type AttachArgs struct {
	// Master is the address of the master's callback listener.
	Master string
	// Name is the name the master assigned this worker.
	Name string
}
type AttachReply struct {
	// Slots is the number of tasks the worker runs concurrently.
	Slots int
}

// RunTaskArgs/RunTaskReply execute one task attempt master -> worker. Task
// failures travel in the reply rather than as the RPC error: net/rpc
// flattens method errors to strings, which would strip the Permanent
// marking the orchestrator's retry loop classifies on.
type RunTaskArgs struct{ Desc TaskDesc }
type RunTaskReply struct {
	Result TaskResult
	// Err is the task attempt's failure message ("" on success);
	// Permanent reports whether it was marked not-retryable.
	Err       string
	Permanent bool
}

// PingArgs/PingReply carry heartbeats.
type PingArgs struct{}
type PingReply struct{}

// JoinArgs/JoinReply let a worker process register itself with a running
// master (worker-initiated membership, the inverse of AttachWorker). Addr
// is the worker's own listen address the master should dial back; Name is
// the name the worker wants ("" lets the master assign one). The reply
// carries the name the master registered the worker under, which the
// worker reuses when it rejoins after a crash.
type JoinArgs struct {
	Addr string
	Name string
}
type JoinReply struct{ Name string }

// CancelTaskArgs asks a worker to abandon a running task attempt: the
// speculative-execution race sends it to the losing side once a winner's
// result is in. Cancellation is best-effort and advisory — the attempt
// stops at record granularity and its result is discarded master-side
// either way.
type CancelTaskArgs struct {
	JobID  string
	Kind   TaskKind
	Task   int
	Backup int
}
type CancelTaskReply struct{}

// ForgetJobArgs tells a worker a job finished, releasing its cached
// reconstruction.
type ForgetJobArgs struct{ JobID string }
type ForgetJobReply struct{}

// MasterService is the RPC surface workers call back into.
type MasterService struct {
	fs *dfs.FileSystem
	// dictWords snapshots words [0, n) of the engine's keyword dictionary
	// in id order; nil when the cluster has no dictionary.
	dictWords func(n int) []string
	// m backs the Join RPC (worker-initiated membership).
	m *Master
}

// Fetch serves a whole-file read from the master DFS.
func (s *MasterService) Fetch(args *FetchArgs, reply *FetchReply) error {
	data, err := s.fs.ReadAll(args.Name)
	if err != nil {
		return err
	}
	reply.Data = data
	return nil
}

// Store publishes a worker-written shuffle file into the master DFS.
func (s *MasterService) Store(args *StoreArgs, reply *StoreReply) error {
	return s.fs.Create(args.Name, args.Data)
}

// DictWords serves a prefix of the master's keyword dictionary.
func (s *MasterService) DictWords(args *DictArgs, reply *DictReply) error {
	if s.dictWords == nil {
		return fmt.Errorf("mapreduce: master has no keyword dictionary")
	}
	reply.Words = s.dictWords(args.N)
	return nil
}

// Ping answers worker liveness probes.
func (s *MasterService) Ping(args *PingArgs, reply *PingReply) error { return nil }

// Join registers a worker that introduced itself (see JoinArgs). The
// heavy lifting — dialing the worker back, assigning a name, rejoining a
// previously lost name in place — is done by the join handler the
// executor installed.
func (s *MasterService) Join(args *JoinArgs, reply *JoinReply) error {
	fn := s.m.joinHandler()
	if fn == nil {
		return fmt.Errorf("mapreduce: master does not accept worker joins")
	}
	name, err := fn(args.Addr, args.Name)
	if err != nil {
		return err
	}
	reply.Name = name
	return nil
}

// Master hosts the cluster-side half of distributed execution: the
// callback listener plus the registry of attached workers.
type Master struct {
	addr string
	ln   net.Listener

	mu      sync.Mutex
	workers []*workerConn
	closed  bool
	done    chan struct{}
	joinFn  func(addr, name string) (string, error)
}

// Per-call deadlines. A hung (but not dead) worker would otherwise stall
// a call forever: net/rpc has no timeouts of its own, and the heartbeat
// only catches connections that fail, not ones that stop answering.
const (
	// taskCallTimeout bounds Worker.RunTask: generous, because task
	// attempts legitimately run for a while.
	taskCallTimeout = 2 * time.Minute
	// ctrlCallTimeout bounds small control-plane calls (Fetch/Store/
	// DictWords/ForgetJob/Attach) in either direction.
	ctrlCallTimeout = 15 * time.Second
	// pingCallTimeout bounds heartbeat probes.
	pingCallTimeout = 2 * time.Second
	// quarantineAfter is the number of consecutive timed-out calls after
	// which a worker is quarantined: treated as lost (its lanes reroute)
	// even though its TCP connection never failed.
	quarantineAfter = 3
)

// callOutcome classifies the transport-level result of one worker call,
// so the dispatcher can meter live→dead transitions exactly once and
// distinguish how the worker was lost.
type callOutcome int

const (
	// callOK: the call completed (successfully or with an application
	// error), or failed without a liveness transition.
	callOK callOutcome = iota
	// callLost: this call's transport fault performed the live→dead
	// transition.
	callLost
	// callQuarantined: this call's timeout was the worker's
	// quarantineAfter-th consecutive one and performed the transition.
	callQuarantined
)

// errCallTimeout marks a per-call deadline expiry.
var errCallTimeout = errors.New("mapreduce: rpc call timed out")

// callWithTimeout invokes one RPC with a deadline. On expiry it abandons
// the in-flight call (the pending rpc.Call completes into its buffered
// channel later, leaking nothing) and returns errCallTimeout.
func callWithTimeout(c *rpc.Client, method string, args, reply any, timeout time.Duration) error {
	if timeout <= 0 {
		return c.Call(method, args, reply)
	}
	call := c.Go(method, args, reply, make(chan *rpc.Call, 1))
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-call.Done:
		return call.Error
	case <-t.C:
		return fmt.Errorf("%w: %s after %v", errCallTimeout, method, timeout)
	}
}

// workerConn is the master's handle of one attached worker.
type workerConn struct {
	name string

	mu    sync.Mutex
	addr  string
	slots int

	client *rpc.Client
	dead   bool
	// draining blocks new task dispatches while in-flight ones finish;
	// drained records that the eventual detach was graceful (so it is not
	// metered as a loss).
	draining bool
	drained  bool
	// dispatched counts task dispatches to this worker (drives the
	// seeded worker-kill and slowdown plans of the chaos harness).
	dispatched int
	// slowCalls counts consecutive timed-out calls; reaching
	// quarantineAfter treats the worker as lost.
	slowCalls int

	// inflight counts task dispatches currently executing on this worker,
	// so a graceful drain knows when the worker is idle.
	inflight atomic.Int64
}

// call invokes an RPC on the worker under a deadline. Any failure that is
// not an application error returned by the remote method
// (rpc.ServerError) is a transport fault or a deadline expiry: a
// transport fault marks the worker dead immediately; a timeout counts
// toward consecutive-slow-call quarantine. The outcome reports whether
// this call performed the live→dead transition, and how.
func (w *workerConn) call(method string, args, reply any, timeout time.Duration) (error, callOutcome) {
	w.mu.Lock()
	c, dead := w.client, w.dead
	w.mu.Unlock()
	if dead || c == nil {
		return fmt.Errorf("mapreduce: worker %s is down", w.name), callOK
	}
	err := callWithTimeout(c, method, args, reply, timeout)
	if err == nil {
		w.resetSlow()
		return nil, callOK
	}
	if _, server := err.(rpc.ServerError); server {
		// The worker answered; it is alive, just unhappy.
		w.resetSlow()
		return err, callOK
	}
	if errors.Is(err, errCallTimeout) {
		if w.noteSlow() {
			return fmt.Errorf("mapreduce: worker %s quarantined after %d consecutive call timeouts: %w", w.name, quarantineAfter, err), callQuarantined
		}
		return fmt.Errorf("mapreduce: worker %s: %w", w.name, err), callOK
	}
	if w.markDead() {
		return fmt.Errorf("mapreduce: worker %s lost: %w", w.name, err), callLost
	}
	return fmt.Errorf("mapreduce: worker %s lost: %w", w.name, err), callOK
}

// resetSlow clears the consecutive-timeout counter: any answered call
// proves the worker is responsive.
func (w *workerConn) resetSlow() {
	w.mu.Lock()
	w.slowCalls = 0
	w.mu.Unlock()
}

// noteSlow records one timed-out call and quarantines the worker when it
// is the quarantineAfter-th consecutive one, reporting whether this call
// performed the live→dead transition.
func (w *workerConn) noteSlow() bool {
	w.mu.Lock()
	w.slowCalls++
	fire := w.slowCalls >= quarantineAfter
	w.mu.Unlock()
	return fire && w.markDead()
}

// markDead closes the client and flags the worker unusable, reporting
// whether this call performed the transition.
func (w *workerConn) markDead() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.dead {
		return false
	}
	w.dead = true
	if w.client != nil {
		w.client.Close()
	}
	return true
}

// isDead reports the worker's liveness flag.
func (w *workerConn) isDead() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.dead
}

// available reports whether the worker accepts new task dispatches (alive
// and not draining).
func (w *workerConn) available() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return !w.dead && !w.draining
}

// setDraining flips the worker in or out of draining mode. New task
// dispatches route around a draining worker while its in-flight tasks
// finish.
func (w *workerConn) setDraining(v bool) {
	w.mu.Lock()
	w.draining = v
	w.mu.Unlock()
}

// detach closes the connection at the end of a graceful drain; unlike
// markDead it records the departure as intentional.
func (w *workerConn) detach() {
	w.mu.Lock()
	w.drained = true
	w.mu.Unlock()
	w.markDead()
}

// rebind points the handle at a fresh connection to a rejoined worker:
// same name, possibly a new address and process. Lanes that referenced
// the worker route to the new connection on their next dispatch. The
// dispatch count is preserved so seeded churn schedules keyed on it stay
// monotone across rejoins.
func (w *workerConn) rebind(addr string, client *rpc.Client, slots int) {
	w.mu.Lock()
	old := w.client
	w.addr = addr
	w.client = client
	if slots > 0 {
		w.slots = slots
	}
	w.dead = false
	w.draining = false
	w.drained = false
	w.slowCalls = 0
	w.mu.Unlock()
	if old != nil && old != client {
		old.Close()
	}
}

// Kill severs the master's connection to the worker: the client closes,
// so every in-flight and subsequent call to it fails at the transport
// level — from the master's perspective, exactly a machine loss. It
// reports whether this call performed the transition.
func (w *workerConn) Kill() bool { return w.markDead() }

// NewMaster starts the master's callback listener on a loopback address.
// dictWords may be nil when jobs never need the keyword dictionary.
func NewMaster(fs *dfs.FileSystem, dictWords func(n int) []string) (*Master, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("mapreduce: master listen: %w", err)
	}
	m := &Master{addr: ln.Addr().String(), ln: ln, done: make(chan struct{})}
	srv := rpc.NewServer()
	if err := srv.RegisterName("Master", &MasterService{fs: fs, dictWords: dictWords, m: m}); err != nil {
		ln.Close()
		return nil, err
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go srv.ServeConn(conn)
		}
	}()
	return m, nil
}

// Addr returns the master's callback address.
func (m *Master) Addr() string { return m.addr }

// SetJoinHandler installs the function backing the Master.Join RPC. The
// executor installs one that attaches (or rejoins) the worker and wires
// it into the lane table.
func (m *Master) SetJoinHandler(fn func(addr, name string) (string, error)) {
	m.mu.Lock()
	m.joinFn = fn
	m.mu.Unlock()
}

func (m *Master) joinHandler() func(addr, name string) (string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.joinFn
}

// dialWorker performs the attach handshake with a worker process at addr
// — dial, introduce the master, learn the slot capacity — without
// touching the registry, so it serves both first attaches and rejoins.
func (m *Master) dialWorker(addr, name string) (*rpc.Client, int, error) {
	client, err := rpc.Dial("tcp", addr)
	if err != nil {
		return nil, 0, fmt.Errorf("mapreduce: dial worker %s: %w", addr, err)
	}
	var reply AttachReply
	if err := callWithTimeout(client, "Worker.Attach", &AttachArgs{Master: m.addr, Name: name}, &reply, ctrlCallTimeout); err != nil {
		client.Close()
		return nil, 0, fmt.Errorf("mapreduce: attach worker %s: %w", addr, err)
	}
	slots := reply.Slots
	if slots <= 0 {
		slots = 1
	}
	return client, slots, nil
}

// register adds an already-connected worker handle to the heartbeat
// registry.
func (m *Master) register(w *workerConn) {
	m.mu.Lock()
	m.workers = append(m.workers, w)
	m.mu.Unlock()
}

// AttachWorker dials a worker process at addr, introduces the master and
// registers the worker under the given name. The returned handle is
// already part of the master's registry.
func (m *Master) AttachWorker(addr, name string) (*workerConn, error) {
	client, slots, err := m.dialWorker(addr, name)
	if err != nil {
		return nil, err
	}
	w := &workerConn{name: name, addr: addr, slots: slots, client: client}
	m.register(w)
	return w, nil
}

// Heartbeat starts a liveness loop pinging every attached worker each
// interval; a failed ping marks the worker dead (its lanes reroute).
func (m *Master) Heartbeat(interval time.Duration) {
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-m.done:
				return
			case <-t.C:
				m.mu.Lock()
				ws := append([]*workerConn(nil), m.workers...)
				m.mu.Unlock()
				for _, w := range ws {
					if w.isDead() {
						continue
					}
					w.call("Worker.Ping", &PingArgs{}, &PingReply{}, pingCallTimeout) //nolint:errcheck // a failed ping already marked the worker dead (timeouts count toward quarantine)
				}
			}
		}
	}()
}

// Close shuts the master down: the callback listener stops and every
// worker client closes. Attached worker processes keep running (they
// belong to their own lifecycle).
func (m *Master) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	close(m.done)
	ws := append([]*workerConn(nil), m.workers...)
	m.mu.Unlock()
	for _, w := range ws {
		w.markDead()
	}
	return m.ln.Close()
}

// WorkerService is the RPC surface a worker process serves to its master.
type WorkerService struct {
	w *WorkerNode
}

// Attach introduces a master: the worker dials the master's callback
// address and rebinds its environment to it.
func (s *WorkerService) Attach(args *AttachArgs, reply *AttachReply) error {
	if err := s.w.attach(args.Master, args.Name); err != nil {
		return err
	}
	reply.Slots = s.w.slots
	return nil
}

// RunTask executes one task attempt. Attempt failures are encoded into
// the reply (see RunTaskReply); an RPC-level error here means the worker
// itself is unusable.
func (s *WorkerService) RunTask(args *RunTaskArgs, reply *RunTaskReply) error {
	env := s.w.env()
	if env == nil {
		return fmt.Errorf("mapreduce: worker %s has no attached master", s.w.listenAddr)
	}
	res, err := env.RunTask(&args.Desc)
	if err != nil {
		reply.Err = err.Error()
		reply.Permanent = isPermanent(err)
		return nil
	}
	reply.Result = *res
	return nil
}

// ForgetJob drops a finished job's cached reconstruction.
func (s *WorkerService) ForgetJob(args *ForgetJobArgs, reply *ForgetJobReply) error {
	if env := s.w.env(); env != nil {
		env.forgetJob(args.JobID)
	}
	return nil
}

// CancelTask flags a running task attempt for abandonment (the losing
// side of a speculative race). Unknown attempts — already finished, or
// never started here — are a no-op.
func (s *WorkerService) CancelTask(args *CancelTaskArgs, reply *CancelTaskReply) error {
	if env := s.w.env(); env != nil {
		env.cancelTask(args.JobID, args.Kind, args.Task, args.Backup)
	}
	return nil
}

// Ping answers master liveness probes.
func (s *WorkerService) Ping(args *PingArgs, reply *PingReply) error { return nil }

// WorkerNode is one worker: a TCP listener serving WorkerService, bound
// to at most one master at a time. It runs as a standalone process
// (cmd/spqworker) or as a loopback server inside tests and benches.
type WorkerNode struct {
	listenAddr string
	slots      int
	ln         net.Listener

	mu  sync.Mutex
	e   *WorkerEnv
	cls []net.Conn
}

// StartWorker listens on addr (e.g. "127.0.0.1:0") and serves task
// execution with the given concurrent slot capacity.
func StartWorker(addr string, slots int) (*WorkerNode, error) {
	if slots <= 0 {
		slots = 1
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("mapreduce: worker listen: %w", err)
	}
	w := &WorkerNode{listenAddr: ln.Addr().String(), slots: slots, ln: ln}
	srv := rpc.NewServer()
	if err := srv.RegisterName("Worker", &WorkerService{w: w}); err != nil {
		ln.Close()
		return nil, err
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			w.mu.Lock()
			w.cls = append(w.cls, conn)
			w.mu.Unlock()
			go srv.ServeConn(conn)
		}
	}()
	return w, nil
}

// Addr returns the worker's listen address.
func (w *WorkerNode) Addr() string { return w.ln.Addr().String() }

// attach binds the worker to a master, building a fresh environment over
// an RPC transport to the master's callback listener.
func (w *WorkerNode) attach(masterAddr, name string) error {
	client, err := rpc.Dial("tcp", masterAddr)
	if err != nil {
		return fmt.Errorf("mapreduce: worker dial master %s: %w", masterAddr, err)
	}
	env := NewWorkerEnv(name, &rpcRemoteFS{client: client})
	w.mu.Lock()
	old := w.e
	w.e = env
	w.mu.Unlock()
	if old != nil {
		if rf, ok := old.FS.(*rpcRemoteFS); ok {
			rf.client.Close()
		}
	}
	return nil
}

// env returns the worker's current environment (nil before any attach).
func (w *WorkerNode) env() *WorkerEnv {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.e
}

// Stop kills the worker server: the listener closes and every open
// connection drops, failing in-flight RPCs — the loopback equivalent of
// killing the process.
func (w *WorkerNode) Stop() {
	w.ln.Close()
	w.mu.Lock()
	cls := w.cls
	w.cls = nil
	e := w.e
	w.mu.Unlock()
	for _, c := range cls {
		c.Close()
	}
	if e != nil {
		if rf, ok := e.FS.(*rpcRemoteFS); ok {
			rf.client.Close()
		}
	}
}

// rpcRemoteFS implements RemoteFS over the worker's client connection to
// the master. Every call carries the control-plane deadline: a master
// that stops answering fails the running task attempt (transiently — the
// orchestrator retries it) instead of hanging the worker slot forever.
type rpcRemoteFS struct{ client *rpc.Client }

func (r *rpcRemoteFS) Fetch(name string) ([]byte, error) {
	var reply FetchReply
	if err := callWithTimeout(r.client, "Master.Fetch", &FetchArgs{Name: name}, &reply, ctrlCallTimeout); err != nil {
		return nil, err
	}
	return reply.Data, nil
}

func (r *rpcRemoteFS) Store(name string, data []byte) error {
	return callWithTimeout(r.client, "Master.Store", &StoreArgs{Name: name, Data: data}, &StoreReply{}, ctrlCallTimeout)
}

func (r *rpcRemoteFS) DictWords(n int) ([]string, error) {
	var reply DictReply
	if err := callWithTimeout(r.client, "Master.DictWords", &DictArgs{N: n}, &reply, ctrlCallTimeout); err != nil {
		return nil, err
	}
	return reply.Words, nil
}

// JoinMaster introduces the worker listening at workerAddr to the master
// at masterAddr (the worker-initiated inverse of AttachWorker) and
// returns the name the master registered it under. The master dials the
// worker back during the call, so when JoinMaster returns the worker is
// attached and routable. cmd/spqworker drives this from its reconnect
// loop; rejoining after a crash passes the previously assigned name so
// the worker reclaims its identity (and its lanes).
func JoinMaster(masterAddr, workerAddr, name string) (string, error) {
	client, err := rpc.Dial("tcp", masterAddr)
	if err != nil {
		return "", fmt.Errorf("mapreduce: dial master %s: %w", masterAddr, err)
	}
	defer client.Close()
	var reply JoinReply
	if err := callWithTimeout(client, "Master.Join", &JoinArgs{Addr: workerAddr, Name: name}, &reply, ctrlCallTimeout); err != nil {
		return "", fmt.Errorf("mapreduce: join master %s: %w", masterAddr, err)
	}
	return reply.Name, nil
}

// PingMaster probes a master's liveness from outside (the worker
// reconnect loop uses it to detect a lost master and rejoin).
func PingMaster(masterAddr string) error {
	client, err := rpc.Dial("tcp", masterAddr)
	if err != nil {
		return err
	}
	defer client.Close()
	return callWithTimeout(client, "Master.Ping", &PingArgs{}, &PingReply{}, pingCallTimeout)
}
