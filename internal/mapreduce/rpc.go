// Master/worker execution over net/rpc.
//
// The master lives in the engine process: it owns the DFS and the keyword
// dictionary, listens for worker callbacks (file fetches, shuffle writes,
// dictionary pulls), registers worker processes by dialing them and
// heartbeats them for liveness. Workers are separate processes (or
// loopback servers in tests) serving RunTask: they reconstruct jobs from
// wire descriptors through the job-kind registry and execute whole task
// attempts, reading inputs from and writing shuffle intermediates to the
// master's DFS — which brings replication, checksums and repair to the
// shuffle path for free.
package mapreduce

import (
	"fmt"
	"net"
	"net/rpc"
	"sync"
	"time"

	"spq/internal/dfs"
)

// RPC argument/reply types. All exported for net/rpc's gob codec.

// FetchArgs/FetchReply move one whole file master -> worker.
type FetchArgs struct{ Name string }
type FetchReply struct{ Data []byte }

// StoreArgs publishes one shuffle file worker -> master.
type StoreArgs struct {
	Name string
	Data []byte
}
type StoreReply struct{}

// DictArgs/DictReply pull a prefix of the master's keyword dictionary.
type DictArgs struct{ N int }
type DictReply struct{ Words []string }

// AttachArgs introduce a master to a worker; the reply carries the
// worker's task capacity.
type AttachArgs struct {
	// Master is the address of the master's callback listener.
	Master string
	// Name is the name the master assigned this worker.
	Name string
}
type AttachReply struct {
	// Slots is the number of tasks the worker runs concurrently.
	Slots int
}

// RunTaskArgs/RunTaskReply execute one task attempt master -> worker. Task
// failures travel in the reply rather than as the RPC error: net/rpc
// flattens method errors to strings, which would strip the Permanent
// marking the orchestrator's retry loop classifies on.
type RunTaskArgs struct{ Desc TaskDesc }
type RunTaskReply struct {
	Result TaskResult
	// Err is the task attempt's failure message ("" on success);
	// Permanent reports whether it was marked not-retryable.
	Err       string
	Permanent bool
}

// PingArgs/PingReply carry heartbeats.
type PingArgs struct{}
type PingReply struct{}

// ForgetJobArgs tells a worker a job finished, releasing its cached
// reconstruction.
type ForgetJobArgs struct{ JobID string }
type ForgetJobReply struct{}

// MasterService is the RPC surface workers call back into.
type MasterService struct {
	fs *dfs.FileSystem
	// dictWords snapshots words [0, n) of the engine's keyword dictionary
	// in id order; nil when the cluster has no dictionary.
	dictWords func(n int) []string
}

// Fetch serves a whole-file read from the master DFS.
func (s *MasterService) Fetch(args *FetchArgs, reply *FetchReply) error {
	data, err := s.fs.ReadAll(args.Name)
	if err != nil {
		return err
	}
	reply.Data = data
	return nil
}

// Store publishes a worker-written shuffle file into the master DFS.
func (s *MasterService) Store(args *StoreArgs, reply *StoreReply) error {
	return s.fs.Create(args.Name, args.Data)
}

// DictWords serves a prefix of the master's keyword dictionary.
func (s *MasterService) DictWords(args *DictArgs, reply *DictReply) error {
	if s.dictWords == nil {
		return fmt.Errorf("mapreduce: master has no keyword dictionary")
	}
	reply.Words = s.dictWords(args.N)
	return nil
}

// Ping answers worker liveness probes.
func (s *MasterService) Ping(args *PingArgs, reply *PingReply) error { return nil }

// Master hosts the cluster-side half of distributed execution: the
// callback listener plus the registry of attached workers.
type Master struct {
	addr string
	ln   net.Listener

	mu      sync.Mutex
	workers []*workerConn
	closed  bool
	done    chan struct{}
}

// workerConn is the master's handle of one attached worker.
type workerConn struct {
	name  string
	addr  string
	slots int

	mu     sync.Mutex
	client *rpc.Client
	dead   bool
	// dispatched counts task dispatches to this worker (drives the
	// seeded worker-kill plan of the chaos harness).
	dispatched int
}

// call invokes an RPC on the worker. Any failure that is not an
// application error returned by the remote method (rpc.ServerError) is a
// transport fault: the worker is marked dead and lost reports whether
// this call performed the live->dead transition (so the caller can meter
// the loss exactly once).
func (w *workerConn) call(method string, args, reply any) (err error, lost bool) {
	w.mu.Lock()
	c, dead := w.client, w.dead
	w.mu.Unlock()
	if dead || c == nil {
		return fmt.Errorf("mapreduce: worker %s is down", w.name), false
	}
	err = c.Call(method, args, reply)
	if err == nil {
		return nil, false
	}
	if _, server := err.(rpc.ServerError); server {
		return err, false
	}
	lost = w.markDead()
	return fmt.Errorf("mapreduce: worker %s lost: %w", w.name, err), lost
}

// markDead closes the client and flags the worker unusable, reporting
// whether this call performed the transition.
func (w *workerConn) markDead() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.dead {
		return false
	}
	w.dead = true
	if w.client != nil {
		w.client.Close()
	}
	return true
}

// isDead reports the worker's liveness flag.
func (w *workerConn) isDead() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.dead
}

// Kill severs the master's connection to the worker: the client closes,
// so every in-flight and subsequent call to it fails at the transport
// level — from the master's perspective, exactly a machine loss. It
// reports whether this call performed the transition.
func (w *workerConn) Kill() bool { return w.markDead() }

// NewMaster starts the master's callback listener on a loopback address.
// dictWords may be nil when jobs never need the keyword dictionary.
func NewMaster(fs *dfs.FileSystem, dictWords func(n int) []string) (*Master, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("mapreduce: master listen: %w", err)
	}
	m := &Master{addr: ln.Addr().String(), ln: ln, done: make(chan struct{})}
	srv := rpc.NewServer()
	if err := srv.RegisterName("Master", &MasterService{fs: fs, dictWords: dictWords}); err != nil {
		ln.Close()
		return nil, err
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go srv.ServeConn(conn)
		}
	}()
	return m, nil
}

// Addr returns the master's callback address.
func (m *Master) Addr() string { return m.addr }

// AttachWorker dials a worker process at addr, introduces the master and
// registers the worker under the given name. The returned handle is
// already part of the master's registry.
func (m *Master) AttachWorker(addr, name string) (*workerConn, error) {
	client, err := rpc.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("mapreduce: dial worker %s: %w", addr, err)
	}
	var reply AttachReply
	if err := client.Call("Worker.Attach", &AttachArgs{Master: m.addr, Name: name}, &reply); err != nil {
		client.Close()
		return nil, fmt.Errorf("mapreduce: attach worker %s: %w", addr, err)
	}
	slots := reply.Slots
	if slots <= 0 {
		slots = 1
	}
	w := &workerConn{name: name, addr: addr, slots: slots, client: client}
	m.mu.Lock()
	m.workers = append(m.workers, w)
	m.mu.Unlock()
	return w, nil
}

// Heartbeat starts a liveness loop pinging every attached worker each
// interval; a failed ping marks the worker dead (its lanes reroute).
func (m *Master) Heartbeat(interval time.Duration) {
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-m.done:
				return
			case <-t.C:
				m.mu.Lock()
				ws := append([]*workerConn(nil), m.workers...)
				m.mu.Unlock()
				for _, w := range ws {
					if w.isDead() {
						continue
					}
					w.call("Worker.Ping", &PingArgs{}, &PingReply{}) //nolint:errcheck // a failed ping already marked the worker dead
				}
			}
		}
	}()
}

// Close shuts the master down: the callback listener stops and every
// worker client closes. Attached worker processes keep running (they
// belong to their own lifecycle).
func (m *Master) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	close(m.done)
	ws := append([]*workerConn(nil), m.workers...)
	m.mu.Unlock()
	for _, w := range ws {
		w.markDead()
	}
	return m.ln.Close()
}

// WorkerService is the RPC surface a worker process serves to its master.
type WorkerService struct {
	w *WorkerNode
}

// Attach introduces a master: the worker dials the master's callback
// address and rebinds its environment to it.
func (s *WorkerService) Attach(args *AttachArgs, reply *AttachReply) error {
	if err := s.w.attach(args.Master, args.Name); err != nil {
		return err
	}
	reply.Slots = s.w.slots
	return nil
}

// RunTask executes one task attempt. Attempt failures are encoded into
// the reply (see RunTaskReply); an RPC-level error here means the worker
// itself is unusable.
func (s *WorkerService) RunTask(args *RunTaskArgs, reply *RunTaskReply) error {
	env := s.w.env()
	if env == nil {
		return fmt.Errorf("mapreduce: worker %s has no attached master", s.w.listenAddr)
	}
	res, err := env.RunTask(&args.Desc)
	if err != nil {
		reply.Err = err.Error()
		reply.Permanent = isPermanent(err)
		return nil
	}
	reply.Result = *res
	return nil
}

// ForgetJob drops a finished job's cached reconstruction.
func (s *WorkerService) ForgetJob(args *ForgetJobArgs, reply *ForgetJobReply) error {
	if env := s.w.env(); env != nil {
		env.forgetJob(args.JobID)
	}
	return nil
}

// Ping answers master liveness probes.
func (s *WorkerService) Ping(args *PingArgs, reply *PingReply) error { return nil }

// WorkerNode is one worker: a TCP listener serving WorkerService, bound
// to at most one master at a time. It runs as a standalone process
// (cmd/spqworker) or as a loopback server inside tests and benches.
type WorkerNode struct {
	listenAddr string
	slots      int
	ln         net.Listener

	mu  sync.Mutex
	e   *WorkerEnv
	cls []net.Conn
}

// StartWorker listens on addr (e.g. "127.0.0.1:0") and serves task
// execution with the given concurrent slot capacity.
func StartWorker(addr string, slots int) (*WorkerNode, error) {
	if slots <= 0 {
		slots = 1
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("mapreduce: worker listen: %w", err)
	}
	w := &WorkerNode{listenAddr: ln.Addr().String(), slots: slots, ln: ln}
	srv := rpc.NewServer()
	if err := srv.RegisterName("Worker", &WorkerService{w: w}); err != nil {
		ln.Close()
		return nil, err
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			w.mu.Lock()
			w.cls = append(w.cls, conn)
			w.mu.Unlock()
			go srv.ServeConn(conn)
		}
	}()
	return w, nil
}

// Addr returns the worker's listen address.
func (w *WorkerNode) Addr() string { return w.ln.Addr().String() }

// attach binds the worker to a master, building a fresh environment over
// an RPC transport to the master's callback listener.
func (w *WorkerNode) attach(masterAddr, name string) error {
	client, err := rpc.Dial("tcp", masterAddr)
	if err != nil {
		return fmt.Errorf("mapreduce: worker dial master %s: %w", masterAddr, err)
	}
	env := NewWorkerEnv(name, &rpcRemoteFS{client: client})
	w.mu.Lock()
	old := w.e
	w.e = env
	w.mu.Unlock()
	if old != nil {
		if rf, ok := old.FS.(*rpcRemoteFS); ok {
			rf.client.Close()
		}
	}
	return nil
}

// env returns the worker's current environment (nil before any attach).
func (w *WorkerNode) env() *WorkerEnv {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.e
}

// Stop kills the worker server: the listener closes and every open
// connection drops, failing in-flight RPCs — the loopback equivalent of
// killing the process.
func (w *WorkerNode) Stop() {
	w.ln.Close()
	w.mu.Lock()
	cls := w.cls
	w.cls = nil
	e := w.e
	w.mu.Unlock()
	for _, c := range cls {
		c.Close()
	}
	if e != nil {
		if rf, ok := e.FS.(*rpcRemoteFS); ok {
			rf.client.Close()
		}
	}
}

// rpcRemoteFS implements RemoteFS over the worker's client connection to
// the master.
type rpcRemoteFS struct{ client *rpc.Client }

func (r *rpcRemoteFS) Fetch(name string) ([]byte, error) {
	var reply FetchReply
	if err := r.client.Call("Master.Fetch", &FetchArgs{Name: name}, &reply); err != nil {
		return nil, err
	}
	return reply.Data, nil
}

func (r *rpcRemoteFS) Store(name string, data []byte) error {
	return r.client.Call("Master.Store", &StoreArgs{Name: name, Data: data}, &StoreReply{})
}

func (r *rpcRemoteFS) DictWords(n int) ([]string, error) {
	var reply DictReply
	if err := r.client.Call("Master.DictWords", &DictArgs{N: n}, &reply); err != nil {
		return nil, err
	}
	return reply.Words, nil
}
