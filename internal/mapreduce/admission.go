package mapreduce

import (
	"context"
	"sync"
	"time"
)

// Cluster admission control. Historically every job assumed it owned all
// of the cluster's worker slots: Run fanned out one goroutine per slot,
// so N concurrent jobs oversubscribed the machine N times over. The slot
// pool makes the slots a shared, admission-controlled resource — exactly
// the shared Hadoop cluster of the paper's deployment model, where many
// queries compete for the same task trackers.
//
// Concurrent jobs draw their map and reduce tasks from one pool per
// phase. A task acquires a slot token before it runs and releases it
// after; with a single job the pool is contention-free (the job spawns
// exactly as many worker goroutines as there are slots), while concurrent
// jobs interleave at task granularity. Admission is FIFO, with a small
// priority lane that lets the tasks of low-cost planned queries jump the
// queue so a cheap selective query is not stuck behind a scan-heavy one.

// waiter is one task blocked on slot admission.
type waiter struct {
	ch chan struct{}
}

// slotPool is a FIFO counting semaphore with a priority lane. A released
// slot is handed directly to the longest-waiting task (priority lane
// first), so admission order is independent of goroutine scheduling.
// The priority lane is bounded by aging: after prioBurst consecutive
// priority grants with regular tasks waiting, the regular lane's head is
// served, so sustained cheap-query traffic cannot starve a scan-heavy
// job indefinitely.
type slotPool struct {
	mu         sync.Mutex
	free       int
	prio       []*waiter // priority lane, FIFO within the lane
	fifo       []*waiter // regular lane, FIFO
	prioGrants int       // consecutive priority grants since a regular one
}

// prioBurst is how many queue-jumps the priority lane gets in a row
// while regular tasks wait before one regular task is served.
const prioBurst = 4

func newSlotPool(slots int) *slotPool {
	if slots < 1 {
		slots = 1
	}
	return &slotPool{free: slots}
}

// acquire blocks until a slot is available or ctx is done. It reports how
// long the task waited and the queue depth observed at enqueue time (0
// when admitted immediately). On cancellation no slot is held and the
// returned error is ctx.Err(); a queued waiter leaves the queue, so an
// abandoned query's tasks stop consuming admission positions.
func (p *slotPool) acquire(ctx context.Context, priority bool) (waited time.Duration, depth int, err error) {
	p.mu.Lock()
	if p.free > 0 {
		p.free--
		p.mu.Unlock()
		return 0, 0, nil
	}
	w := &waiter{ch: make(chan struct{})}
	if priority {
		p.prio = append(p.prio, w)
	} else {
		p.fifo = append(p.fifo, w)
	}
	depth = len(p.prio) + len(p.fifo)
	p.mu.Unlock()
	start := time.Now()
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	select {
	case <-w.ch:
		return time.Since(start), depth, nil
	case <-done:
	}
	// Canceled while queued: remove the waiter. If release already granted
	// it the slot (it is no longer in either lane), accept the grant and
	// hand the slot straight back so it is not leaked.
	p.mu.Lock()
	removed := false
	if priority {
		p.prio, removed = removeWaiter(p.prio, w)
	} else {
		p.fifo, removed = removeWaiter(p.fifo, w)
	}
	p.mu.Unlock()
	if !removed {
		<-w.ch
		p.release()
	}
	return time.Since(start), depth, ctx.Err()
}

// removeWaiter removes w from lane, reporting whether it was still queued.
func removeWaiter(lane []*waiter, w *waiter) ([]*waiter, bool) {
	for i, cand := range lane {
		if cand == w {
			return append(lane[:i], lane[i+1:]...), true
		}
	}
	return lane, false
}

// release returns a slot, waking the next waiter if any: the priority
// lane first, unless it has exhausted its burst while regular tasks
// wait (aging — see prioBurst). The slot is transferred directly to the
// waiter rather than returned to the free count, which is what makes
// admission FIFO.
func (p *slotPool) release() {
	p.mu.Lock()
	var w *waiter
	switch {
	case len(p.prio) > 0 && (len(p.fifo) == 0 || p.prioGrants < prioBurst):
		w = p.prio[0]
		p.prio = p.prio[1:]
		if len(p.fifo) > 0 {
			// Only grants that actually jump a waiting regular task count
			// against the burst; unchallenged grants are not queue-jumps.
			p.prioGrants++
		}
	case len(p.fifo) > 0:
		w = p.fifo[0]
		p.fifo = p.fifo[1:]
		p.prioGrants = 0
	default:
		p.free++
		p.prioGrants = 0
	}
	p.mu.Unlock()
	if w != nil {
		close(w.ch)
	}
}

// queueDepth returns the number of tasks currently waiting for a slot.
func (p *slotPool) queueDepth() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.prio) + len(p.fifo)
}

// slotPools returns the cluster's shared admission pools, creating them on
// first use. Pool capacity is frozen from MapSlots/ReduceSlots at that
// point; every job running on this cluster — concurrently or not — draws
// from the same two pools.
func (c *Cluster) slotPools() (mapPool, reducePool *slotPool) {
	c.poolsOnce.Do(func() {
		c.mapPool = newSlotPool(c.mapSlots())
		c.reducePool = newSlotPool(c.reduceSlots())
	})
	return c.mapPool, c.reducePool
}

// schedStats accumulates one job's admission outcomes for a phase; they
// are folded into the job counters once per worker goroutine rather than
// once per task.
type schedStats struct {
	admitted  int64
	queued    int64
	waitNanos int64
	maxDepth  int64
}

// observe records one admission.
func (s *schedStats) observe(waited time.Duration, depth int) {
	s.admitted++
	if depth > 0 {
		s.queued++
		s.waitNanos += waited.Nanoseconds()
		if int64(depth) > s.maxDepth {
			s.maxDepth = int64(depth)
		}
	}
}

// flush folds the accumulated outcomes into the job counters.
func (s *schedStats) flush(counters *Counters) {
	if s.admitted == 0 {
		return
	}
	counters.Add(CounterSchedAdmitted, s.admitted)
	counters.Add(CounterSchedQueued, s.queued)
	counters.Add(CounterSchedWaitMicros, s.waitNanos/1e3)
	counters.Max(CounterSchedMaxQueueDepth, s.maxDepth)
}
