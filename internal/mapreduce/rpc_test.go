package mapreduce

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"
	"testing"

	"spq/internal/dfs"
)

// The RPC executor tests run a real master and real worker RPC servers
// over loopback TCP in one process: every task descriptor, shuffle
// reference and counter delta crosses the wire exactly as it would
// between machines, only the transport latency is missing.

var rpcIntCodec = &Codec[int]{
	Encode: func(w *bufio.Writer, v int) error {
		_, err := fmt.Fprintf(w, "%d\n", v)
		return err
	},
	Decode: func(r *bufio.Reader) (int, error) {
		s, err := r.ReadString('\n')
		if err != nil {
			return 0, err
		}
		return strconv.Atoi(strings.TrimSpace(s))
	},
}

func rpcParseInt(line []byte) (int, error) { return strconv.Atoi(string(line)) }

// rpcSumJob is the job both ends of the wire share: ints keyed even/odd,
// summed per group. The orchestrator attaches the source and wire kind;
// the worker-side builder reconstructs the rest from the registered kind.
func rpcSumJob() *Job[int, string, int, string] {
	return &Job[int, string, int, string]{
		Name:        "rpc-sum",
		NumReducers: 2,
		MaxAttempts: 3,
		Map: func(ctx *TaskContext, v int, emit func(string, int)) error {
			if v%2 == 0 {
				emit("even", v)
			} else {
				emit("odd", v)
			}
			return nil
		},
		Partition: func(k string, r int) int {
			if k == "even" {
				return 0
			}
			return 1 % r
		},
		Less:       func(a, b string) bool { return a < b },
		GroupEqual: func(a, b string) bool { return a == b },
		KeyCodec:   stringCodec,
		ValueCodec: rpcIntCodec,
		Reduce: func(ctx *TaskContext, values *Values[string, int], emit func(string)) error {
			sum := 0
			for {
				v, ok := values.Next()
				if !ok {
					break
				}
				sum += v
			}
			emit(fmt.Sprintf("%s=%d", values.GroupKey(), sum))
			return nil
		},
	}
}

func init() {
	RegisterJobKind("rpc-test-sum", func(spec []byte, env *WorkerEnv) (RemoteJob, error) {
		job := rpcSumJob()
		return BindRemote(job, func(io *TaskIO, ref *SplitRef) (SourceSplit[int], error) {
			fs, err := io.File(ref.File)
			if err != nil {
				return nil, err
			}
			return OpenTextSplit(fs, ref, rpcParseInt), nil
		}), nil
	})
}

// rpcHarness is a master-side DFS with an input file of n ints plus the
// expected reduce output.
func rpcHarness(t *testing.T, n int) (*dfs.FileSystem, map[string]bool) {
	t.Helper()
	fs := dfs.New(dfs.Config{NumNodes: 4, BlockSize: 128, Replication: 2, Seed: 7})
	var sb strings.Builder
	even, odd := 0, 0
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "%d\n", i)
		if i%2 == 0 {
			even += i
		} else {
			odd += i
		}
	}
	if err := fs.Create("nums.txt", []byte(sb.String())); err != nil {
		t.Fatal(err)
	}
	return fs, map[string]bool{
		fmt.Sprintf("even=%d", even): true,
		fmt.Sprintf("odd=%d", odd):   true,
	}
}

// startWorkers brings up n loopback worker nodes and returns their
// addresses.
func startWorkers(t *testing.T, n, slots int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		w, err := StartWorker("127.0.0.1:0", slots)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(w.Stop)
		addrs[i] = w.Addr()
	}
	return addrs
}

func runRPCSum(t *testing.T, fs *dfs.FileSystem, exec *RPCExecutor) *Result[string] {
	t.Helper()
	job := rpcSumJob()
	job.Source = NewTextInput(fs, rpcParseInt, "nums.txt")
	job.Wire = &WireJob{Kind: "rpc-test-sum"}
	cl := NewCluster(fs, 4, 2)
	cl.Executor = exec
	res, err := Run(cl, job)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func checkRPCSum(t *testing.T, res *Result[string], want map[string]bool) {
	t.Helper()
	if len(res.Output) != len(want) {
		t.Fatalf("output %v, want the keys of %v", res.Output, want)
	}
	for _, o := range res.Output {
		if !want[o] {
			t.Errorf("unexpected output record %q", o)
		}
	}
}

// A job shipped over RPC to two workers must produce exactly the local
// result, meter its tasks per worker, and leave no shuffle intermediates
// behind.
func TestRPCExecutorEndToEnd(t *testing.T) {
	fs, want := rpcHarness(t, 500)
	exec, err := NewRPCExecutor(fs, func(n int) []string { return nil }, startWorkers(t, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer exec.Close()

	res := runRPCSum(t, fs, exec)
	checkRPCSum(t, res, want)

	if res.Counters[CounterExecFallbackLocal] != 0 {
		t.Error("remotable job fell back to the local executor")
	}
	tasks := int64(0)
	for _, w := range exec.Workers() {
		tasks += res.Counters[CounterExecTasksPrefix+w]
	}
	if wantTasks := int64(res.Stats.MapTasks + res.Stats.ReduceTasks); tasks != wantTasks {
		t.Errorf("per-worker task counters sum to %d, want %d", tasks, wantTasks)
	}
	if res.Counters[CounterExecRPCBytes] == 0 {
		t.Error("no RPC bytes metered for a remote job")
	}
	for _, name := range fs.List() {
		if strings.HasPrefix(name, "shuffle/") {
			t.Errorf("shuffle intermediate %q not cleaned up", name)
		}
	}
}

// Killing a worker mid-job must not change the result: its tasks are
// re-executed on the surviving worker and the loss is metered.
func TestRPCExecutorWorkerKill(t *testing.T) {
	fs, want := rpcHarness(t, 500)
	exec, err := NewRPCExecutor(fs, func(n int) []string { return nil }, startWorkers(t, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer exec.Close()
	exec.SetWorkerKills([]dfs.WorkerKillEvent{{Worker: "worker-1", AfterTasks: 2}})

	res := runRPCSum(t, fs, exec)
	checkRPCSum(t, res, want)

	if res.Counters[CounterExecWorkersLost] == 0 {
		t.Error("worker kill not metered as a loss")
	}
	if res.Counters[CounterExecReexec] == 0 {
		t.Error("no re-executions metered after losing a worker mid-job")
	}
	if res.Counters[CounterExecTasksPrefix+"worker-2"] == 0 {
		t.Error("surviving worker ran no tasks")
	}
}

// Losing every worker must fail the job with a permanent error, not hang
// or return partial results.
func TestRPCExecutorAllWorkersLost(t *testing.T) {
	fs, _ := rpcHarness(t, 100)
	exec, err := NewRPCExecutor(fs, func(n int) []string { return nil }, startWorkers(t, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer exec.Close()
	exec.SetWorkerKills([]dfs.WorkerKillEvent{{Worker: "worker-1", AfterTasks: 1}})

	job := rpcSumJob()
	job.Source = NewTextInput(fs, rpcParseInt, "nums.txt")
	job.Wire = &WireJob{Kind: "rpc-test-sum"}
	cl := NewCluster(fs, 4, 2)
	cl.Executor = exec
	if _, err := Run(cl, job); err == nil {
		t.Fatal("job succeeded with its only worker dead")
	}
}

// A job without serializable splits runs on the local executor even when
// an RPC executor is installed, and says so in the counters.
func TestRPCExecutorFallbackLocal(t *testing.T) {
	fs, want := rpcHarness(t, 100)
	exec, err := NewRPCExecutor(fs, func(n int) []string { return nil }, startWorkers(t, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer exec.Close()

	recs := make([]int, 100)
	for i := range recs {
		recs[i] = i
	}
	job := rpcSumJob()
	job.Source = NewMemorySource(recs, 4)
	job.Wire = &WireJob{Kind: "rpc-test-sum"}
	cl := NewCluster(fs, 4, 2)
	cl.Executor = exec
	res, err := Run(cl, job)
	if err != nil {
		t.Fatal(err)
	}
	checkRPCSum(t, res, want)
	if res.Counters[CounterExecFallbackLocal] == 0 {
		t.Error("memory-source job not metered as a local fallback")
	}
}

// NewRPCExecutor with no workers must refuse, not build a dead executor.
func TestRPCExecutorNoWorkers(t *testing.T) {
	fs := dfs.New(dfs.Config{NumNodes: 2, BlockSize: 128, Seed: 1})
	if _, err := NewRPCExecutor(fs, nil, nil); err == nil {
		t.Fatal("expected an error for zero workers")
	}
}
