package mapreduce

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// TaskDesc is a self-describing task descriptor: everything an executor
// needs to run one attempt of one task, with no reference to in-process
// state. Local execution reads only the scheduling fields; remote
// executors additionally ship the wire fields (job spec, split reference,
// shuffle inputs) to the worker, which reconstructs the task from them.
type TaskDesc struct {
	// Job is the job name; JobID uniquely identifies this execution of it
	// (two runs of the same job must not share shuffle files).
	Job   string
	JobID string
	Kind  TaskKind
	// Task is the task index within its phase; Attempt counts executions
	// of this task starting at 1.
	Task    int
	Attempt int
	// Backup distinguishes a speculative backup (1) from the primary (0)
	// of the same attempt: the two race on different workers, and the
	// discriminator keeps their shuffle outputs and cancel registrations
	// apart.
	Backup int
	// Lane is the executor lane the orchestrator assigned the task to (a
	// slot for the local executor, a worker slot for the RPC executor).
	Lane int
	// NumMaps and NumReducers give the task its phase geometry.
	NumMaps     int
	NumReducers int
	// Priority requests the admission priority lane.
	Priority bool

	// Wire fields, set only when the job carries a WireJob:

	// JobKind and JobSpec let a worker reconstruct the job through the
	// job-kind registry (see RegisterJobKind).
	JobKind string
	JobSpec []byte
	// Split references the map task's input (nil for reduce tasks).
	Split *SplitRef
	// Shuffle lists the sorted intermediate runs a reduce task merges
	// (nil for map tasks).
	Shuffle []ShuffleRef
}

// SplitRef is a serializable, master-authoritative reference to one unit
// of map input. The orchestrator enumerates splits exactly once and ships
// references, so a worker can never re-derive a different shard layout
// (shard-count invariance by construction).
type SplitRef struct {
	// Kind discriminates the split type ("text", "seq", "col", "group").
	Kind   string
	File   string
	Offset int64
	Length int64
	// Extra carries kind-specific payload (e.g. the column block index and
	// zone map of a columnar split), encoded by the producing source.
	Extra []byte
	// Group holds the member references of a coalesced split.
	Group []SplitRef
}

// RefSplit is optionally implemented by splits that can serialize a
// self-describing reference from which a worker re-opens the same records.
// Splits without it (in-memory sources) keep their jobs on the local
// executor.
type RefSplit interface {
	SplitRef() (*SplitRef, error)
}

// ShuffleRef names one sorted intermediate run in the DFS: the output of
// one map task for one reduce partition.
type ShuffleRef struct {
	// File is the DFS path of the run.
	File string
	// Part is the reduce partition the run belongs to.
	Part int
	// Records and Bytes describe the run's payload.
	Records int
	Bytes   int64
}

// TaskResult is the outcome of one successful task attempt. Executors
// running tasks out of process return the attempt's side effects in
// serialized form: counter deltas, shuffle run references (map) and the
// encoded reduce output. The local executor publishes its side effects
// directly through the job binding and returns only the attribution.
type TaskResult struct {
	// Worker names the slot or worker process that executed the attempt.
	Worker string
	// Counters holds the attempt's counter deltas (nil when the executor
	// merged them in-process).
	Counters map[string]int64
	// Shuffle lists the runs a map task wrote, one per non-empty reduce
	// partition.
	Shuffle []ShuffleRef
	// Output is the gob-encoded output record slice of a reduce task.
	Output []byte
}

// Executor runs task attempts somewhere: on the calling process's slot
// pools (LocalExecutor) or on remote worker processes over RPC
// (RPCExecutor). The generic Run loop is orchestration-only — it assigns
// tasks to lanes, dispatches descriptors, gathers results and drives
// retries — and never knows where an attempt executes.
type Executor interface {
	// Name identifies the executor in counters and errors.
	Name() string
	// Lanes is the number of concurrent dispatch lanes for the task kind;
	// the orchestrator runs one dispatch goroutine per lane.
	Lanes(kind TaskKind) int
	// LaneHost names the node a lane's tasks execute on, for locality-aware
	// assignment and failure attribution.
	LaneHost(kind TaskKind, lane int) string
	// RunMapTask and RunReduceTask execute one attempt of one task and
	// return its result. An attempt that fails returns a non-nil error;
	// the orchestrator classifies it (permanent vs transient) and drives
	// the retry. Returning errTaskAborted drops the task silently (the job
	// already failed elsewhere).
	RunMapTask(b *Binding, d *TaskDesc) (*TaskResult, error)
	RunReduceTask(b *Binding, d *TaskDesc) (*TaskResult, error)
}

// errTaskAborted is returned by executors for attempts cancelled because
// the job already failed; the orchestrator discards the task without
// recording an error.
var errTaskAborted = errors.New("mapreduce: task aborted: job already failed")

// Binding is the executor-facing handle of one running job. It erases the
// job's type parameters: the typed Run loop installs closures for local
// in-process execution and output decoding, and executors call back
// through them. The wire fields double as the serializable task boundary
// for remote executors.
type Binding struct {
	job      string
	jobID    string
	priority bool
	counters *Counters
	// ctx is the job's cancellation context (RunContext); nil bindings —
	// worker-side reconstructions — read it as context.Background().
	ctx context.Context
	// failed flips once any task has failed; executors stop admitting
	// queued attempts and the orchestrator stops dispatching.
	failed atomic.Bool

	// Local execution hooks (installed by Run; typed underneath).
	localMap    func(lane, task, attempt int, host string) error
	localReduce func(lane, task, attempt int, host string) error

	// Wire form: non-nil kind/spec when the job is remotable.
	wireKind  string
	wireSpec  []byte
	splitRefs []*SplitRef

	// shuffle gathers the run references returned by remote map tasks,
	// keyed by reduce partition.
	mu      sync.Mutex
	shuffle [][]ShuffleRef
}

// Job returns the bound job's name.
func (b *Binding) Job() string { return b.job }

// JobID returns the unique id of this job execution.
func (b *Binding) JobID() string { return b.jobID }

// Counters exposes the job-global counter registry for executors to meter
// into (scheduling stats, per-worker task counts, re-executions).
func (b *Binding) Counters() *Counters { return b.counters }

// Failed reports whether some task of the job has already failed.
func (b *Binding) Failed() bool { return b.failed.Load() }

// Context returns the job's cancellation context. Executors consult it
// before spending resources on an attempt: a canceled job's queued tasks
// are dropped instead of dispatched.
func (b *Binding) Context() context.Context {
	if b.ctx == nil {
		return context.Background()
	}
	return b.ctx
}

// addShuffle records the shuffle runs written by a successful map attempt.
func (b *Binding) addShuffle(refs []ShuffleRef) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, ref := range refs {
		if ref.Part >= 0 && ref.Part < len(b.shuffle) {
			b.shuffle[ref.Part] = append(b.shuffle[ref.Part], ref)
		}
	}
}

// gatherShuffle returns all recorded shuffle runs (for cleanup).
func (b *Binding) gatherShuffle() []ShuffleRef {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []ShuffleRef
	for _, refs := range b.shuffle {
		out = append(out, refs...)
	}
	return out
}

// shuffleFor returns partition part's shuffle runs in deterministic
// (map task, attempt) file-name order — gathering order depends on task
// timing, and reduce must not.
func (b *Binding) shuffleFor(part int) []ShuffleRef {
	b.mu.Lock()
	defer b.mu.Unlock()
	if part < 0 || part >= len(b.shuffle) {
		return nil
	}
	refs := append([]ShuffleRef(nil), b.shuffle[part]...)
	sortShuffleRefs(refs)
	return refs
}

// LocalExecutor runs task attempts on the calling process: the cluster's
// admission-controlled slot pools bound concurrency, and the attempt
// bodies are the typed closures the Run loop installed on the binding.
// It is the default executor and preserves the pre-executor behaviour of
// the framework exactly.
type LocalExecutor struct {
	c *Cluster
}

// NewLocalExecutor returns the in-process executor of the cluster.
func NewLocalExecutor(c *Cluster) *LocalExecutor { return &LocalExecutor{c: c} }

// Name implements Executor.
func (x *LocalExecutor) Name() string { return "local" }

// Lanes implements Executor: one lane per configured slot.
func (x *LocalExecutor) Lanes(kind TaskKind) int {
	if kind == MapTask {
		return x.c.mapSlots()
	}
	return x.c.reduceSlots()
}

// LaneHost implements Executor: slots map round-robin onto DFS DataNodes.
func (x *LocalExecutor) LaneHost(kind TaskKind, lane int) string {
	return x.c.slotNode(lane)
}

// RunMapTask implements Executor.
func (x *LocalExecutor) RunMapTask(b *Binding, d *TaskDesc) (*TaskResult, error) {
	pool, _ := x.c.slotPools()
	return x.run(b, d, pool, b.localMap)
}

// RunReduceTask implements Executor.
func (x *LocalExecutor) RunReduceTask(b *Binding, d *TaskDesc) (*TaskResult, error) {
	_, pool := x.c.slotPools()
	return x.run(b, d, pool, b.localReduce)
}

// run admits the attempt through the shared slot pool and executes the
// bound closure on the lane's slot.
func (x *LocalExecutor) run(b *Binding, d *TaskDesc, pool *slotPool, fn func(lane, task, attempt int, host string) error) (*TaskResult, error) {
	waited, depth, err := pool.acquire(b.Context(), d.Priority)
	if err != nil {
		// Canceled while queued for admission: no slot is held and the
		// job is being torn down; surface the context error so the
		// orchestrator drops the task.
		return nil, err
	}
	defer pool.release()
	var sched schedStats
	sched.observe(waited, depth)
	sched.flush(b.counters)
	if b.failed.Load() {
		// The job failed while this attempt queued for admission; don't
		// spend a shared slot on work whose output is discarded.
		return nil, errTaskAborted
	}
	host := x.c.slotNode(d.Lane)
	res := &TaskResult{Worker: host}
	if err := fn(d.Lane, d.Task, d.Attempt, host); err != nil {
		return res, err
	}
	return res, nil
}
