package mapreduce

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"spq/internal/dfs"
)

// RemoteJob is a job reconstructed on a worker process from its wire
// form: it runs whole task attempts from self-describing descriptors,
// reading input through the task's I/O context and returning serialized
// side effects (shuffle run references, encoded output, counter deltas).
type RemoteJob interface {
	RunMapTask(io *TaskIO, d *TaskDesc) (*TaskResult, error)
	RunReduceTask(io *TaskIO, d *TaskDesc) (*TaskResult, error)
}

// jobKinds is the registry of worker-side job builders, keyed by
// WireJob.Kind.
var jobKinds sync.Map // string -> func([]byte, *WorkerEnv) (RemoteJob, error)

// RegisterJobKind registers a worker-side builder that reconstructs a
// runnable job from its serialized spec. Packages defining remotable jobs
// register their kinds in an init function, so every worker process that
// links them can execute their tasks.
func RegisterJobKind(kind string, build func(spec []byte, env *WorkerEnv) (RemoteJob, error)) {
	jobKinds.Store(kind, build)
}

// buildRemoteJob reconstructs the job a descriptor belongs to.
func buildRemoteJob(d *TaskDesc, env *WorkerEnv) (RemoteJob, error) {
	v, ok := jobKinds.Load(d.JobKind)
	if !ok {
		return nil, Permanent(fmt.Errorf("mapreduce: unknown job kind %q (not linked into this worker?)", d.JobKind))
	}
	return v.(func([]byte, *WorkerEnv) (RemoteJob, error))(d.JobSpec, env)
}

// RemoteFS is the transport a worker reads and writes master-side files
// through. The RPC worker implements it with calls back to the master;
// tests may implement it directly over a shared *dfs.FileSystem.
type RemoteFS interface {
	// Fetch reads a whole file from the master DFS.
	Fetch(name string) ([]byte, error)
	// Store publishes a file (a shuffle run) into the master DFS.
	Store(name string, data []byte) error
	// DictWords returns words [0, n) of the master's keyword dictionary,
	// in id order.
	DictWords(n int) ([]string, error)
}

// WorkerEnv is the per-worker-process execution environment: the
// transport to the master, a write-once local mirror of fetched input
// files (input files are immutable and generation-prefixed, so the mirror
// never invalidates), and a cache of reconstructed jobs keyed by job id.
type WorkerEnv struct {
	// Worker is the name the master assigned at attach time.
	Worker string
	// FS is the transport to the master's file system.
	FS RemoteFS

	mirror *dfs.FileSystem

	mu    sync.Mutex
	words []string // master dictionary prefix, cached monotonically

	jobsMu sync.Mutex
	jobs   map[string]RemoteJob

	// running tracks the cancel flags of in-flight task attempts, so the
	// master can abandon the losing side of a speculative race.
	runMu   sync.Mutex
	running map[attemptKey]*atomic.Bool
}

// attemptKey identifies one runnable attempt on this worker. Backup
// distinguishes a speculative backup from the primary it races — the two
// run on different workers, but the key keeps a late cancel for one from
// ever hitting the other after a rejoin.
type attemptKey struct {
	jobID  string
	kind   TaskKind
	task   int
	backup int
}

// NewWorkerEnv builds a worker environment over the given transport.
func NewWorkerEnv(worker string, fs RemoteFS) *WorkerEnv {
	return &WorkerEnv{
		Worker: worker,
		FS:     fs,
		// One-node, unreplicated mirror: block size only shapes the
		// mirror's internal chunking, never split boundaries (references
		// carry explicit byte ranges).
		mirror:  dfs.New(dfs.Config{NumNodes: 1, Replication: 1}),
		jobs:    make(map[string]RemoteJob),
		running: make(map[attemptKey]*atomic.Bool),
	}
}

// registerAttempt publishes a fresh cancel flag for a starting attempt;
// the returned release removes it when the attempt finishes.
func (e *WorkerEnv) registerAttempt(k attemptKey) (flag *atomic.Bool, release func()) {
	flag = new(atomic.Bool)
	e.runMu.Lock()
	e.running[k] = flag
	e.runMu.Unlock()
	return flag, func() {
		e.runMu.Lock()
		delete(e.running, k)
		e.runMu.Unlock()
	}
}

// cancelTask flips the cancel flag of a running attempt (no-op when the
// attempt already finished or never ran here).
func (e *WorkerEnv) cancelTask(jobID string, kind TaskKind, task, backup int) {
	e.runMu.Lock()
	flag := e.running[attemptKey{jobID: jobID, kind: kind, task: task, backup: backup}]
	e.runMu.Unlock()
	if flag != nil {
		flag.Store(true)
	}
}

// jobFor returns the reconstructed job of a descriptor, building it once
// per job id (every task of one job shares the same spec).
func (e *WorkerEnv) jobFor(d *TaskDesc) (RemoteJob, error) {
	e.jobsMu.Lock()
	defer e.jobsMu.Unlock()
	if j, ok := e.jobs[d.JobID]; ok {
		return j, nil
	}
	j, err := buildRemoteJob(d, e)
	if err != nil {
		return nil, err
	}
	e.jobs[d.JobID] = j
	return j, nil
}

// forgetJob drops a cached job reconstruction (on job completion signals;
// the cache is also naturally bounded by worker lifetime in tests).
func (e *WorkerEnv) forgetJob(jobID string) {
	e.jobsMu.Lock()
	defer e.jobsMu.Unlock()
	delete(e.jobs, jobID)
}

// RunTask executes one attempt described by d and returns its result.
func (e *WorkerEnv) RunTask(d *TaskDesc) (*TaskResult, error) {
	job, err := e.jobFor(d)
	if err != nil {
		return nil, err
	}
	io := &TaskIO{Env: e}
	flag, release := e.registerAttempt(attemptKey{jobID: d.JobID, kind: d.Kind, task: d.Task, backup: d.Backup})
	io.cancel = flag
	defer release()
	if d.Kind == MapTask {
		return job.RunMapTask(io, d)
	}
	return job.RunReduceTask(io, d)
}

// TaskIO is the per-task I/O context a remote task reads and writes
// master-side data through. It meters every byte crossing the RPC
// boundary, so the task's counter deltas carry its transfer cost. It
// implements the data package's RangeReader shape (ReadRange), so
// columnar sources can read through it directly.
type TaskIO struct {
	Env   *WorkerEnv
	bytes atomic.Int64

	// cancel is the attempt's abandon flag (set via Worker.CancelTask when
	// this attempt lost a speculative race); nil when untracked.
	cancel *atomic.Bool

	// finishers run when the attempt completes successfully, folding
	// late-bound instrumentation (for example columnar segment I/O stats)
	// into the attempt's counter deltas.
	finMu     sync.Mutex
	finishers []func(*Counters)
}

// Bytes returns the RPC payload bytes this task moved so far.
func (t *TaskIO) Bytes() int64 { return t.bytes.Load() }

// Canceled reports whether the master abandoned this attempt. Task
// bodies poll it at record granularity and bail out early; the result of
// a canceled attempt is discarded master-side regardless.
func (t *TaskIO) Canceled() bool { return t.cancel != nil && t.cancel.Load() }

// errAttemptCanceled aborts a task body whose attempt lost a speculative
// race. The master never surfaces it: the winning twin's result already
// resolved the task.
var errAttemptCanceled = errors.New("mapreduce: task attempt canceled by master")

// OnFinish registers a hook run when the attempt completes successfully,
// with the attempt's local counter registry. Split openers use it to
// attach per-attempt instrumentation whose totals are only known at the
// end (so they ride the TaskResult counter deltas back to the master).
func (t *TaskIO) OnFinish(fn func(*Counters)) {
	t.finMu.Lock()
	t.finishers = append(t.finishers, fn)
	t.finMu.Unlock()
}

// File ensures name is present in the worker's local mirror (fetching it
// from the master once; later tasks hit the mirror) and returns the
// mirror file system to read it from.
func (t *TaskIO) File(name string) (*dfs.FileSystem, error) {
	m := t.Env.mirror
	if m.Exists(name) {
		return m, nil
	}
	data, err := t.Env.FS.Fetch(name)
	if err != nil {
		return nil, err
	}
	t.bytes.Add(int64(len(data)))
	if err := m.Create(name, data); err != nil && !errors.Is(err, dfs.ErrExists) {
		// ErrExists means a concurrent task of this worker fetched the
		// same file first; the mirror copy is identical (files are
		// write-once master-side).
		return nil, err
	}
	return m, nil
}

// ReadRange reads [off, off+n) of a master file through the mirror.
func (t *TaskIO) ReadRange(file string, off int64, n int) ([]byte, error) {
	m, err := t.File(file)
	if err != nil {
		return nil, err
	}
	return m.ReadRange(file, off, n)
}

// Fetch reads a master file without mirroring it (shuffle runs are read
// once by exactly one reduce task).
func (t *TaskIO) Fetch(name string) ([]byte, error) {
	data, err := t.Env.FS.Fetch(name)
	if err != nil {
		return nil, err
	}
	t.bytes.Add(int64(len(data)))
	return data, nil
}

// Store publishes a shuffle run into the master DFS.
func (t *TaskIO) Store(name string, data []byte) error {
	if err := t.Env.FS.Store(name, data); err != nil {
		return err
	}
	t.bytes.Add(int64(len(data)))
	return nil
}

// DictWords returns words [0, n) of the master's keyword dictionary, in
// id order, serving from the worker's monotone cache when possible (the
// master dictionary is append-only, so a cached prefix never goes stale).
func (t *TaskIO) DictWords(n int) ([]string, error) {
	e := t.Env
	e.mu.Lock()
	have := len(e.words)
	if have >= n {
		out := e.words[:n]
		e.mu.Unlock()
		return out, nil
	}
	e.mu.Unlock()
	words, err := e.FS.DictWords(n)
	if err != nil {
		return nil, err
	}
	for _, w := range words {
		t.bytes.Add(int64(len(w)))
	}
	e.mu.Lock()
	if len(words) > len(e.words) {
		e.words = words
	}
	out := e.words[:n]
	e.mu.Unlock()
	return out, nil
}

// finish folds the task's RPC byte meter and registered finisher hooks
// into its counter deltas.
func (t *TaskIO) finish(local *Counters) {
	if b := t.bytes.Load(); b > 0 {
		local.Add(CounterExecRPCBytes, b)
	}
	t.finMu.Lock()
	fins := t.finishers
	t.finishers = nil
	t.finMu.Unlock()
	for _, fn := range fins {
		fn(local)
	}
}

// BindRemote adapts a typed job to the RemoteJob interface. The open
// callback re-opens one (non-group) split reference against the task's
// I/O context; group references are unwrapped by the adapter. Worker-side
// map attempts sort each partition fully and publish it as one run in the
// master DFS — the same sorted-run multiset semantics as the local
// executor's chunk shuffle, so the merged reduce input is equivalent and
// results are identical.
func BindRemote[I, K, V, O any](job *Job[I, K, V, O], open func(io *TaskIO, ref *SplitRef) (SourceSplit[I], error)) RemoteJob {
	return &remoteJob[I, K, V, O]{job: job, open: open}
}

type remoteJob[I, K, V, O any] struct {
	job  *Job[I, K, V, O]
	open func(io *TaskIO, ref *SplitRef) (SourceSplit[I], error)
}

// openRef resolves a split reference, unwrapping group references.
func (r *remoteJob[I, K, V, O]) openRef(io *TaskIO, ref *SplitRef) (SourceSplit[I], error) {
	if ref.Kind == "group" {
		return OpenGroupSplit(ref, func(member *SplitRef) (SourceSplit[I], error) {
			return r.openRef(io, member)
		})
	}
	return r.open(io, ref)
}

// shuffleFile names the run one map attempt writes for one partition.
// Attempt- and backup-qualified names keep retried attempts and
// speculative twins clear of the write-once semantics of the DFS (a
// primary and its backup share task and attempt numbers); zero-padded
// indices make name order deterministic.
func shuffleFile(jobID string, task, attempt, backup, part int) string {
	return fmt.Sprintf("shuffle/%s/m%05d.a%02d.b%d.p%05d", jobID, task, attempt, backup, part)
}

// ShufflePrefix returns the DFS name prefix of a job's shuffle files, for
// cleanup.
func ShufflePrefix(jobID string) string { return "shuffle/" + jobID + "/" }

// sortShuffleRefs orders runs by file name: zero-padded (task, attempt,
// partition) indices make this the deterministic map-task order,
// independent of result arrival order.
func sortShuffleRefs(refs []ShuffleRef) {
	sort.Slice(refs, func(i, j int) bool { return refs[i].File < refs[j].File })
}

// RunMapTask implements RemoteJob: read the referenced split, partition
// and sort the intermediate records, and publish one sorted run per
// non-empty partition into the master DFS.
func (r *remoteJob[I, K, V, O]) RunMapTask(io *TaskIO, d *TaskDesc) (*TaskResult, error) {
	job := r.job
	if d.Split == nil {
		return nil, Permanent(fmt.Errorf("mapreduce: job %q: map task %d shipped without a split reference", job.Name, d.Task))
	}
	if job.KeyCodec == nil || job.ValueCodec == nil {
		return nil, Permanent(fmt.Errorf("mapreduce: job %q: remote execution requires Key/ValueCodec", job.Name))
	}
	local := NewCounters()
	ctx := newTaskContext(MapTask, d.Task, d.Attempt, io.Env.Worker, local)

	split, err := r.openRef(io, d.Split)
	if err != nil {
		return nil, err
	}

	nred := d.NumReducers
	buffers := make([][]Pair[K, V], nred)
	var recIn, recOut int64
	var emitErr error
	emit := func(k K, v V) {
		p := job.Partition(k, nred)
		if p < 0 || p >= nred {
			if emitErr == nil {
				emitErr = Permanent(fmt.Errorf("mapreduce: job %q: Partition returned %d for %d reducers", job.Name, p, nred))
			}
			return
		}
		buffers[p] = append(buffers[p], Pair[K, V]{Key: k, Value: v})
		recOut++
	}
	var mapErr error
	eachErr := split.Each(func(rec I) bool {
		recIn++
		if recIn%cancelCheckEvery == 0 && io.Canceled() {
			mapErr = errAttemptCanceled
			return false
		}
		if merr := job.Map(ctx, rec, emit); merr != nil {
			mapErr = merr
			return false
		}
		return emitErr == nil
	})
	atomic.AddInt64(ctx.recIn, recIn)
	atomic.AddInt64(ctx.recOut, recOut)
	switch {
	case eachErr != nil:
		return nil, eachErr
	case mapErr != nil:
		return nil, mapErr
	case emitErr != nil:
		return nil, emitErr
	}

	cmp := job.compare()
	var refs []ShuffleRef
	var buf bytes.Buffer
	for p, pairs := range buffers {
		if len(pairs) == 0 {
			continue
		}
		sortPairs(pairs, cmp)
		buf.Reset()
		w := bufio.NewWriter(&buf)
		for i := range pairs {
			if err := job.KeyCodec.Encode(w, pairs[i].Key); err != nil {
				return nil, err
			}
			if err := job.ValueCodec.Encode(w, pairs[i].Value); err != nil {
				return nil, err
			}
		}
		if err := w.Flush(); err != nil {
			return nil, err
		}
		name := shuffleFile(d.JobID, d.Task, d.Attempt, d.Backup, p)
		data := append([]byte(nil), buf.Bytes()...)
		if err := io.Store(name, data); err != nil {
			return nil, err
		}
		refs = append(refs, ShuffleRef{File: name, Part: p, Records: len(pairs), Bytes: int64(len(data))})
		local.Add(CounterShuffleChunks, 1)
		local.Add(CounterShuffleBytes, int64(len(data)))
	}
	io.finish(local)
	return &TaskResult{Worker: io.Env.Worker, Counters: local.Snapshot(), Shuffle: refs}, nil
}

// RunReduceTask implements RemoteJob: fetch the partition's sorted runs,
// k-way merge them with the job comparator, drive Reduce over the groups
// and return the gob-encoded output.
func (r *remoteJob[I, K, V, O]) RunReduceTask(io *TaskIO, d *TaskDesc) (*TaskResult, error) {
	job := r.job
	local := NewCounters()
	ctx := newTaskContext(ReduceTask, d.Task, d.Attempt, io.Env.Worker, local)

	chunks := make([][]Pair[K, V], 0, len(d.Shuffle))
	var total int64
	for _, ref := range d.Shuffle {
		if io.Canceled() {
			return nil, errAttemptCanceled
		}
		data, err := io.Fetch(ref.File)
		if err != nil {
			return nil, err
		}
		pairs, err := decodePairs(data, ref.Records, job.KeyCodec, job.ValueCodec)
		if err != nil {
			return nil, Permanent(fmt.Errorf("mapreduce: job %q: shuffle run %s: %w", job.Name, ref.File, err))
		}
		chunks = append(chunks, pairs)
		total += int64(len(pairs))
	}
	var merged stream[K, V]
	switch len(chunks) {
	case 0:
		merged = &memStream[K, V]{}
	case 1:
		merged = &memStream[K, V]{pairs: chunks[0]}
	default:
		merged = newChunkMerge(job.Less, chunks)
	}
	local.Add(CounterReduceValues, total)

	out, err := reduceStream(job, &abandonStream[K, V]{io: io, inner: merged}, local, ctx)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(out); err != nil {
		return nil, Permanent(fmt.Errorf("mapreduce: job %q: encode reduce output: %w", job.Name, err))
	}
	io.finish(local)
	return &TaskResult{Worker: io.Env.Worker, Counters: local.Snapshot(), Output: buf.Bytes()}, nil
}

// abandonStream wraps a worker-side reduce input stream with a poll of
// the attempt's cancel flag every cancelCheckEvery records, so a reduce
// attempt that lost its speculative race stops mid-merge instead of
// finishing work whose output is discarded.
type abandonStream[K, V any] struct {
	io    *TaskIO
	inner stream[K, V]
	n     int
}

func (s *abandonStream[K, V]) next() (Pair[K, V], bool, error) {
	s.n++
	if s.n%cancelCheckEvery == 0 && s.io.Canceled() {
		var zero Pair[K, V]
		return zero, false, errAttemptCanceled
	}
	return s.inner.next()
}

// decodePairs decodes a shuffle run back into its sorted pair slice.
func decodePairs[K, V any](data []byte, records int, kc *Codec[K], vc *Codec[V]) ([]Pair[K, V], error) {
	r := bufio.NewReader(bytes.NewReader(data))
	pairs := make([]Pair[K, V], 0, records)
	for i := 0; i < records; i++ {
		k, err := kc.Decode(r)
		if err != nil {
			return nil, fmt.Errorf("record %d key: %w", i, err)
		}
		v, err := vc.Decode(r)
		if err != nil {
			return nil, fmt.Errorf("record %d value: %w", i, err)
		}
		pairs = append(pairs, Pair[K, V]{Key: k, Value: v})
	}
	return pairs, nil
}

// decodeOutput decodes a remote reduce task's gob-encoded output slice.
func decodeOutput[O any](data []byte) ([]O, error) {
	if len(data) == 0 {
		return nil, nil
	}
	var out []O
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}
