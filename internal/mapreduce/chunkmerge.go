package mapreduce

// chunkMerge k-way-merges in-memory sorted chunks. It is the common case
// of the reduce-side merge — no spill runs, every source a slice — and
// avoids the generic stream machinery's per-record costs: no interface
// dispatch per pull, and the heap holds only (head key, chunk index)
// pairs, so sifting moves 16–24 bytes instead of whole records and the
// winning record is copied out exactly once.
type chunkMerge[K, V any] struct {
	chunks [][]Pair[K, V]
	pos    []int          // next unread index per chunk
	heads  []chunkHead[K] // min-heap on key
	// headLess orders heap items; wrapped once at construction so the
	// per-record sift needs no closure allocation.
	headLess func(a, b chunkHead[K]) bool
}

type chunkHead[K any] struct {
	key K
	ci  int32
}

// newChunkMerge primes the heap with the first record of every non-empty
// chunk.
func newChunkMerge[K, V any](less func(a, b K) bool, chunks [][]Pair[K, V]) *chunkMerge[K, V] {
	m := &chunkMerge[K, V]{
		chunks:   chunks,
		pos:      make([]int, len(chunks)),
		heads:    make([]chunkHead[K], 0, len(chunks)),
		headLess: func(a, b chunkHead[K]) bool { return less(a.key, b.key) },
	}
	for ci, ch := range chunks {
		if len(ch) > 0 {
			m.heads = append(m.heads, chunkHead[K]{key: ch[0].Key, ci: int32(ci)})
			m.pos[ci] = 1
		}
	}
	for i := len(m.heads)/2 - 1; i >= 0; i-- {
		siftHeap(m.heads, m.headLess, i)
	}
	return m
}

func (m *chunkMerge[K, V]) next() (Pair[K, V], bool, error) {
	if len(m.heads) == 0 {
		var zero Pair[K, V]
		return zero, false, nil
	}
	ci := m.heads[0].ci
	ch := m.chunks[ci]
	out := ch[m.pos[ci]-1]
	if p := m.pos[ci]; p < len(ch) {
		m.heads[0].key = ch[p].Key
		m.pos[ci] = p + 1
	} else {
		n := len(m.heads) - 1
		m.heads[0] = m.heads[n]
		m.heads = m.heads[:n]
		if n == 0 {
			return out, true, nil
		}
	}
	siftHeap(m.heads, m.headLess, 0)
	return out, true, nil
}
