package mapreduce

import (
	"bufio"
	"container/heap"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
)

// memStream yields pairs from an in-memory sorted slice.
type memStream[K, V any] struct {
	pairs []Pair[K, V]
	pos   int
}

func (s *memStream[K, V]) next() (Pair[K, V], bool, error) {
	if s.pos >= len(s.pairs) {
		var zero Pair[K, V]
		return zero, false, nil
	}
	p := s.pairs[s.pos]
	s.pos++
	return p, true, nil
}

// spillRun is one sorted, partition-local segment of a spill file. As in
// Hadoop, one spill event writes a single file containing one sorted
// segment per partition; each segment is later streamed independently by
// the reduce task owning the partition.
type spillRun struct {
	path    string
	offset  int64
	length  int64
	records int
}

// countingWriter tracks the byte offset of the underlying file.
type countingWriter struct {
	w *bufio.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// writeSpill sorts each non-empty partition buffer and writes all of them
// into one temporary spill file, returning one run per non-empty
// partition. On error no file is left behind.
func writeSpill[K, V any](buffers [][]Pair[K, V], less func(a, b K) bool, kc *Codec[K], vc *Codec[V]) (runs []spillRun, parts []int, err error) {
	f, err := os.CreateTemp("", "spq-spill-*.run")
	if err != nil {
		return nil, nil, fmt.Errorf("mapreduce: create spill: %w", err)
	}
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(f.Name())
		}
	}()
	cw := &countingWriter{w: bufio.NewWriterSize(f, 256<<10)}
	bw := bufio.NewWriter(cw) // Codec signatures take *bufio.Writer
	for p, buf := range buffers {
		if len(buf) == 0 {
			continue
		}
		sort.SliceStable(buf, func(i, j int) bool { return less(buf[i].Key, buf[j].Key) })
		if err = bw.Flush(); err != nil {
			return nil, nil, err
		}
		start := cw.n
		for _, pair := range buf {
			if err = kc.Encode(bw, pair.Key); err != nil {
				return nil, nil, fmt.Errorf("mapreduce: encode spill key: %w", err)
			}
			if err = vc.Encode(bw, pair.Value); err != nil {
				return nil, nil, fmt.Errorf("mapreduce: encode spill value: %w", err)
			}
		}
		if err = bw.Flush(); err != nil {
			return nil, nil, err
		}
		runs = append(runs, spillRun{path: f.Name(), offset: start, length: cw.n - start, records: len(buf)})
		parts = append(parts, p)
	}
	if err = cw.w.Flush(); err != nil {
		return nil, nil, err
	}
	if err = f.Close(); err != nil {
		return nil, nil, err
	}
	return runs, parts, nil
}

// runStream decodes one spill-file segment sequentially.
type runStream[K, V any] struct {
	f         *os.File
	r         *bufio.Reader
	kc        *Codec[K]
	vc        *Codec[V]
	remaining int
}

func openRun[K, V any](run *spillRun, kc *Codec[K], vc *Codec[V]) (*runStream[K, V], error) {
	f, err := os.Open(run.path)
	if err != nil {
		return nil, fmt.Errorf("mapreduce: open spill: %w", err)
	}
	section := io.NewSectionReader(f, run.offset, run.length)
	return &runStream[K, V]{
		f:         f,
		r:         bufio.NewReaderSize(section, 64<<10),
		kc:        kc,
		vc:        vc,
		remaining: run.records,
	}, nil
}

func (s *runStream[K, V]) next() (Pair[K, V], bool, error) {
	var zero Pair[K, V]
	if s.remaining == 0 {
		return zero, false, nil
	}
	k, err := s.kc.Decode(s.r)
	if err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return zero, false, fmt.Errorf("mapreduce: decode spill key: %w", err)
	}
	v, err := s.vc.Decode(s.r)
	if err != nil {
		return zero, false, fmt.Errorf("mapreduce: decode spill value: %w", err)
	}
	s.remaining--
	return Pair[K, V]{Key: k, Value: v}, true, nil
}

func (s *runStream[K, V]) close() error { return s.f.Close() }

// mergeStream performs a k-way merge of sorted streams by the key
// comparator, yielding a single globally sorted stream.
type mergeStream[K, V any] struct {
	h *streamHeap[K, V]
}

type heapItem[K, V any] struct {
	head Pair[K, V]
	src  stream[K, V]
}

type streamHeap[K, V any] struct {
	items []heapItem[K, V]
	less  func(a, b K) bool
}

func (h *streamHeap[K, V]) Len() int { return len(h.items) }
func (h *streamHeap[K, V]) Less(i, j int) bool {
	return h.less(h.items[i].head.Key, h.items[j].head.Key)
}
func (h *streamHeap[K, V]) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *streamHeap[K, V]) Push(x any)    { h.items = append(h.items, x.(heapItem[K, V])) }
func (h *streamHeap[K, V]) Pop() any {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}

// newMergeStream primes every source and builds the heap. Sources that are
// already empty are dropped.
func newMergeStream[K, V any](less func(a, b K) bool, sources ...stream[K, V]) (*mergeStream[K, V], error) {
	h := &streamHeap[K, V]{less: less}
	for _, src := range sources {
		p, ok, err := src.next()
		if err != nil {
			return nil, err
		}
		if ok {
			h.items = append(h.items, heapItem[K, V]{head: p, src: src})
		}
	}
	heap.Init(h)
	return &mergeStream[K, V]{h: h}, nil
}

func (m *mergeStream[K, V]) next() (Pair[K, V], bool, error) {
	var zero Pair[K, V]
	if m.h.Len() == 0 {
		return zero, false, nil
	}
	top := m.h.items[0]
	out := top.head
	p, ok, err := top.src.next()
	if err != nil {
		return zero, false, err
	}
	if ok {
		m.h.items[0].head = p
		heap.Fix(m.h, 0)
	} else {
		heap.Pop(m.h)
	}
	return out, true, nil
}
