package mapreduce

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"slices"
)

// sortPairs sorts pairs by the job's three-way key comparator. It goes
// through slices.SortFunc, whose generic instantiation compares and swaps
// concrete Pair values directly, rather than sort.Slice's reflection-based
// element swapping; the three-way form costs one comparator call per
// comparison instead of the two a Less-based sort needs to distinguish
// greater from equal.
//
// The sort is deliberately NOT stable: equal keys already arrive at a
// reduce task in nondeterministic relative order, because a partition
// k-way-merges chunks from concurrently running map tasks and the merge
// breaks key ties by chunk arrival. Correctness therefore cannot depend on
// equal-key order anywhere downstream — the reduce algorithms resolve
// score ties canonically by object id — and a stable sort would pay the
// symmerge pass for an ordering guarantee the system cannot observe.
func sortPairs[K, V any](pairs []Pair[K, V], cmp func(a, b K) int) {
	slices.SortFunc(pairs, func(a, b Pair[K, V]) int {
		return cmp(a.Key, b.Key)
	})
}

// memStream yields pairs from an in-memory sorted slice.
type memStream[K, V any] struct {
	pairs []Pair[K, V]
	pos   int
}

func (s *memStream[K, V]) next() (Pair[K, V], bool, error) {
	if s.pos >= len(s.pairs) {
		var zero Pair[K, V]
		return zero, false, nil
	}
	p := s.pairs[s.pos]
	s.pos++
	return p, true, nil
}

// spillRun is one sorted, partition-local segment of a spill file. As in
// Hadoop, one spill event writes a single file containing one sorted
// segment per partition; each segment is later streamed independently by
// the reduce task owning the partition.
type spillRun struct {
	path    string
	offset  int64
	length  int64
	records int
}

// countingWriter tracks the byte offset of the underlying file.
type countingWriter struct {
	w *bufio.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// writeSpill sorts each non-empty partition buffer and writes all of them
// into one temporary spill file, returning one run per non-empty
// partition. On error no file is left behind.
func writeSpill[K, V any](buffers [][]Pair[K, V], cmp func(a, b K) int, kc *Codec[K], vc *Codec[V]) (runs []spillRun, parts []int, err error) {
	f, err := os.CreateTemp("", "spq-spill-*.run")
	if err != nil {
		return nil, nil, fmt.Errorf("mapreduce: create spill: %w", err)
	}
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(f.Name())
		}
	}()
	cw := &countingWriter{w: bufio.NewWriterSize(f, 256<<10)}
	bw := bufio.NewWriter(cw) // Codec signatures take *bufio.Writer
	for p, buf := range buffers {
		if len(buf) == 0 {
			continue
		}
		sortPairs(buf, cmp)
		if err = bw.Flush(); err != nil {
			return nil, nil, err
		}
		start := cw.n
		for _, pair := range buf {
			if err = kc.Encode(bw, pair.Key); err != nil {
				return nil, nil, fmt.Errorf("mapreduce: encode spill key: %w", err)
			}
			if err = vc.Encode(bw, pair.Value); err != nil {
				return nil, nil, fmt.Errorf("mapreduce: encode spill value: %w", err)
			}
		}
		if err = bw.Flush(); err != nil {
			return nil, nil, err
		}
		runs = append(runs, spillRun{path: f.Name(), offset: start, length: cw.n - start, records: len(buf)})
		parts = append(parts, p)
	}
	if err = cw.w.Flush(); err != nil {
		return nil, nil, err
	}
	if err = f.Close(); err != nil {
		return nil, nil, err
	}
	return runs, parts, nil
}

// runStream decodes one spill-file segment sequentially.
type runStream[K, V any] struct {
	f         *os.File
	r         *bufio.Reader
	kc        *Codec[K]
	vc        *Codec[V]
	remaining int
}

func openRun[K, V any](run *spillRun, kc *Codec[K], vc *Codec[V]) (*runStream[K, V], error) {
	f, err := os.Open(run.path)
	if err != nil {
		return nil, fmt.Errorf("mapreduce: open spill: %w", err)
	}
	section := io.NewSectionReader(f, run.offset, run.length)
	return &runStream[K, V]{
		f:         f,
		r:         bufio.NewReaderSize(section, 64<<10),
		kc:        kc,
		vc:        vc,
		remaining: run.records,
	}, nil
}

func (s *runStream[K, V]) next() (Pair[K, V], bool, error) {
	var zero Pair[K, V]
	if s.remaining == 0 {
		return zero, false, nil
	}
	k, err := s.kc.Decode(s.r)
	if err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return zero, false, fmt.Errorf("mapreduce: decode spill key: %w", err)
	}
	v, err := s.vc.Decode(s.r)
	if err != nil {
		return zero, false, fmt.Errorf("mapreduce: decode spill value: %w", err)
	}
	s.remaining--
	return Pair[K, V]{Key: k, Value: v}, true, nil
}

func (s *runStream[K, V]) close() error { return s.f.Close() }

// mergeStream performs a k-way merge of sorted streams by the key
// comparator, yielding a single globally sorted stream. The heap is
// hand-rolled over the concrete item type: container/heap would box every
// popped item into an interface value, allocating once per exhausted
// stream and paying dynamic dispatch on every sift.
type mergeStream[K, V any] struct {
	items []heapItem[K, V]
	less  func(a, b K) bool
	// itemLess orders heap items; wrapped once at construction so the
	// per-record sift needs no closure allocation.
	itemLess func(a, b heapItem[K, V]) bool
}

type heapItem[K, V any] struct {
	head Pair[K, V]
	src  stream[K, V]
}

// siftHeap restores the min-heap property from index i: one copy of the
// sift shared by every concrete merge (mergeStream, chunkMerge), each
// instantiated on its own item type so there is no dispatch cost.
func siftHeap[T any](items []T, less func(a, b T) bool, i int) {
	n := len(items)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		least := l
		if r := l + 1; r < n && less(items[r], items[l]) {
			least = r
		}
		if !less(items[least], items[i]) {
			return
		}
		items[i], items[least] = items[least], items[i]
		i = least
	}
}

// newMergeStream primes every source and builds the heap. Sources that are
// already empty are dropped.
func newMergeStream[K, V any](less func(a, b K) bool, sources ...stream[K, V]) (*mergeStream[K, V], error) {
	m := &mergeStream[K, V]{less: less, items: make([]heapItem[K, V], 0, len(sources))}
	m.itemLess = func(a, b heapItem[K, V]) bool { return less(a.head.Key, b.head.Key) }
	for _, src := range sources {
		p, ok, err := src.next()
		if err != nil {
			return nil, err
		}
		if ok {
			m.items = append(m.items, heapItem[K, V]{head: p, src: src})
		}
	}
	for i := len(m.items)/2 - 1; i >= 0; i-- {
		siftHeap(m.items, m.itemLess, i)
	}
	return m, nil
}

func (m *mergeStream[K, V]) next() (Pair[K, V], bool, error) {
	var zero Pair[K, V]
	if len(m.items) == 0 {
		return zero, false, nil
	}
	out := m.items[0].head
	p, ok, err := m.items[0].src.next()
	if err != nil {
		return zero, false, err
	}
	if ok {
		m.items[0].head = p
	} else {
		// Source exhausted: move the last item to the root.
		n := len(m.items) - 1
		m.items[0] = m.items[n]
		m.items[n] = heapItem[K, V]{} // release the stream reference
		m.items = m.items[:n]
		if n == 0 {
			return out, true, nil
		}
	}
	siftHeap(m.items, m.itemLess, 0)
	return out, true, nil
}
