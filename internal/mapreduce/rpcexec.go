package mapreduce

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"spq/internal/dfs"
)

// shuffleCleaner is implemented by executors whose map tasks persist
// shuffle intermediates in the DFS; the Run loop invokes it when a remote
// job finishes (success or not).
type shuffleCleaner interface {
	CleanupShuffle(b *Binding)
}

// laneRef maps one dispatch lane onto a worker slot.
type laneRef struct {
	worker int // index into RPCExecutor.workers
	slot   int
}

// RPCExecutor runs task attempts on remote worker processes over net/rpc.
// Lanes are the flattened (worker, slot) pairs of every attached worker;
// when a worker is lost (a call fails at the transport level, or a
// heartbeat misses), its lanes reroute to the next live worker and the
// orchestrator's retry loop re-dispatches the failed attempts there —
// metered as spq.exec.reexec.
type RPCExecutor struct {
	master  *Master
	fs      *dfs.FileSystem
	workers []*workerConn
	lanes   []laneRef

	// kills is the worker-crash schedule of the active fault plan (chaos
	// runs only; nil otherwise).
	mu    sync.Mutex
	kills []dfs.WorkerKillEvent
}

// heartbeatInterval paces the master's worker liveness probes.
const heartbeatInterval = 250 * time.Millisecond

// NewRPCExecutor starts a master over fs, attaches the worker processes
// listening at addrs (naming them worker-1..worker-n) and begins
// heartbeating them. dictWords may be nil when jobs never pull the
// keyword dictionary.
func NewRPCExecutor(fs *dfs.FileSystem, dictWords func(n int) []string, addrs []string) (*RPCExecutor, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("mapreduce: RPC executor needs at least one worker address")
	}
	m, err := NewMaster(fs, dictWords)
	if err != nil {
		return nil, err
	}
	e := &RPCExecutor{master: m, fs: fs}
	for i, addr := range addrs {
		w, err := m.AttachWorker(addr, fmt.Sprintf("worker-%d", i+1))
		if err != nil {
			m.Close()
			return nil, err
		}
		e.workers = append(e.workers, w)
		for s := 0; s < w.slots; s++ {
			e.lanes = append(e.lanes, laneRef{worker: i, slot: s})
		}
	}
	m.Heartbeat(heartbeatInterval)
	return e, nil
}

// SetWorkerKills installs the worker-crash schedule of a fault plan. The
// schedule is consumed as workers' dispatch counts reach the thresholds.
func (e *RPCExecutor) SetWorkerKills(kills []dfs.WorkerKillEvent) {
	e.mu.Lock()
	e.kills = append([]dfs.WorkerKillEvent(nil), kills...)
	e.mu.Unlock()
}

// Workers returns the names of the attached workers.
func (e *RPCExecutor) Workers() []string {
	out := make([]string, len(e.workers))
	for i, w := range e.workers {
		out[i] = w.name
	}
	return out
}

// Close shuts down the master (listener and worker clients). Worker
// processes keep running; external lifecycles own them.
func (e *RPCExecutor) Close() error { return e.master.Close() }

// Name implements Executor.
func (e *RPCExecutor) Name() string { return "rpc" }

// Lanes implements Executor: every worker slot is a dispatch lane for
// both phases.
func (e *RPCExecutor) Lanes(kind TaskKind) int { return len(e.lanes) }

// LaneHost implements Executor: a lane's host is its primary worker.
// Worker processes are not DFS DataNodes, so data-locality preferences
// never match — map assignment degrades to load balancing, which is the
// honest model for workers reading through the master anyway.
func (e *RPCExecutor) LaneHost(kind TaskKind, lane int) string {
	return e.workers[e.lanes[lane].worker].name
}

// RunMapTask implements Executor.
func (e *RPCExecutor) RunMapTask(b *Binding, d *TaskDesc) (*TaskResult, error) {
	return e.dispatch(b, d)
}

// RunReduceTask implements Executor.
func (e *RPCExecutor) RunReduceTask(b *Binding, d *TaskDesc) (*TaskResult, error) {
	return e.dispatch(b, d)
}

// route picks the worker executing a lane's next attempt: the lane's
// primary worker, or — after it was lost — the next live worker in
// attachment order (deterministic, so reroutes are replayable).
func (e *RPCExecutor) route(lane int) (w *workerConn, primary bool) {
	p := e.lanes[lane].worker
	n := len(e.workers)
	for i := 0; i < n; i++ {
		cand := e.workers[(p+i)%n]
		if !cand.isDead() {
			return cand, i == 0
		}
	}
	return nil, false
}

// dispatch executes one attempt on a routed worker.
func (e *RPCExecutor) dispatch(b *Binding, d *TaskDesc) (*TaskResult, error) {
	if b.Failed() {
		return nil, errTaskAborted
	}
	if err := b.Context().Err(); err != nil {
		// The job was canceled while this attempt queued; don't spend a
		// worker round-trip on work whose output is discarded.
		return nil, err
	}
	w, primary := e.route(d.Lane)
	if w == nil {
		// Nothing left to run on; retrying cannot help.
		return nil, Permanent(fmt.Errorf("mapreduce: job %q: all %d workers lost", b.Job(), len(e.workers)))
	}
	if d.Attempt > 1 && !primary {
		// A re-execution proper: the attempt's lane lost its worker and the
		// task is re-dispatched elsewhere.
		b.Counters().Add(CounterExecReexec, 1)
	}
	if e.maybeKill(w) {
		b.Counters().Add(CounterExecWorkersLost, 1)
	}
	args := &RunTaskArgs{Desc: *d}
	var reply RunTaskReply
	err, lost := w.call("Worker.RunTask", args, &reply)
	if lost {
		b.Counters().Add(CounterExecWorkersLost, 1)
	}
	if err != nil {
		return nil, err
	}
	if reply.Err != "" {
		terr := errors.New(reply.Err)
		if reply.Permanent {
			terr = Permanent(terr)
		}
		return &reply.Result, terr
	}
	b.Counters().Add(CounterExecTasksPrefix+w.name, 1)
	return &reply.Result, nil
}

// maybeKill advances w's dispatch count and fires any scheduled worker
// kill that count reaches — before the dispatch, so the killed worker's
// in-flight and current calls fail like a real machine loss. It reports
// whether a kill transitioned the worker to dead.
func (e *RPCExecutor) maybeKill(w *workerConn) bool {
	w.mu.Lock()
	w.dispatched++
	n := w.dispatched
	w.mu.Unlock()

	e.mu.Lock()
	fire := false
	for i := 0; i < len(e.kills); {
		k := e.kills[i]
		if k.Worker == w.name && n >= k.AfterTasks {
			fire = true
			e.kills = append(e.kills[:i], e.kills[i+1:]...)
			continue
		}
		i++
	}
	e.mu.Unlock()
	return fire && w.Kill()
}

// CleanupShuffle implements shuffleCleaner: it removes the job's shuffle
// intermediates from the DFS and releases the workers' cached job
// reconstructions.
func (e *RPCExecutor) CleanupShuffle(b *Binding) {
	prefix := ShufflePrefix(b.JobID())
	for _, name := range e.fs.List() {
		if strings.HasPrefix(name, prefix) {
			e.fs.Delete(name) //nolint:errcheck // best-effort cleanup
		}
	}
	for _, w := range e.workers {
		if w.isDead() {
			continue
		}
		w.call("Worker.ForgetJob", &ForgetJobArgs{JobID: b.JobID()}, &ForgetJobReply{}) //nolint:errcheck // best-effort release
	}
}
