package mapreduce

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"spq/internal/dfs"
)

// shuffleCleaner is implemented by executors whose map tasks persist
// shuffle intermediates in the DFS; the Run loop invokes it when a remote
// job finishes (success or not).
type shuffleCleaner interface {
	CleanupShuffle(b *Binding)
}

// laneRef maps one dispatch lane onto a worker slot.
type laneRef struct {
	worker int // index into RPCExecutor.workers
	slot   int
}

// SpeculationConfig tunes speculative straggler execution: when a task
// attempt has run longer than Multiple times the median completed-task
// duration of its phase, a backup attempt launches on a different live
// worker and the first result wins (the loser is canceled best-effort).
// The zero value of each field selects its default.
type SpeculationConfig struct {
	// Multiple of the phase's median task duration after which an attempt
	// is suspected of straggling (default 3).
	Multiple float64
	// MinTasks is how many completed tasks the phase needs before a
	// median is trusted (default 3); earlier attempts never speculate.
	MinTasks int
	// MinDelay floors the speculation trigger so microsecond tasks do not
	// spawn backups over scheduling noise (default 25ms).
	MinDelay time.Duration
}

func (c *SpeculationConfig) multiple() float64 {
	if c.Multiple <= 1 {
		return 3
	}
	return c.Multiple
}

func (c *SpeculationConfig) minTasks() int {
	if c.MinTasks <= 0 {
		return 3
	}
	return c.MinTasks
}

func (c *SpeculationConfig) minDelay() time.Duration {
	if c.MinDelay <= 0 {
		return 25 * time.Millisecond
	}
	return c.MinDelay
}

// durKey scopes completed-task duration samples to one phase of one job
// execution: medians must not leak across jobs (or from maps into
// reduces, whose durations differ wildly).
type durKey struct {
	jobID string
	kind  TaskKind
}

// RPCExecutor runs task attempts on remote worker processes over net/rpc.
// Lanes are the flattened (worker, slot) pairs of every attached worker;
// when a worker is lost (a call fails at the transport level, a heartbeat
// misses, or consecutive call timeouts quarantine it), its lanes reroute
// to the next live worker and the orchestrator's retry loop re-dispatches
// the failed attempts there — metered as spq.exec.reexec.
//
// Membership is elastic: AddWorker attaches (or rejoins) workers while
// the executor runs — new lanes are picked up by the next phase —
// and DrainWorker detaches one gracefully after its in-flight tasks
// finish. Both compose with the seeded churn schedule of a fault plan
// (SetChurn) and with speculative straggler execution (SetSpeculation).
type RPCExecutor struct {
	master *Master
	fs     *dfs.FileSystem

	// mu guards the membership tables (grow-only: lanes and worker
	// indices stay valid for the lifetime of the executor — a departed
	// worker's lanes reroute rather than disappear), the churn schedule
	// and the per-phase duration samples.
	mu      sync.Mutex
	workers []*workerConn
	lanes   []laneRef
	nameSeq int

	spec *SpeculationConfig

	kills      []dfs.WorkerKillEvent
	joins      []dfs.WorkerJoinEvent
	drains     []dfs.WorkerDrainEvent
	slowdowns  []dfs.WorkerSlowdownEvent
	globalDisp int

	durs map[durKey][]time.Duration
}

// heartbeatInterval paces the master's worker liveness probes.
const heartbeatInterval = 250 * time.Millisecond

// Graceful drain: how often the drainer polls the worker's in-flight
// count and how long it waits before detaching anyway (a hung in-flight
// task then fails at the transport level and retries elsewhere).
const (
	drainPollInterval = 2 * time.Millisecond
	drainTimeout      = 30 * time.Second
)

// NewRPCExecutor starts a master over fs, attaches the worker processes
// listening at addrs (naming them worker-1..worker-n) and begins
// heartbeating them. dictWords may be nil when jobs never pull the
// keyword dictionary. Further workers may join later (AddWorker, or the
// Master.Join RPC from the worker side).
func NewRPCExecutor(fs *dfs.FileSystem, dictWords func(n int) []string, addrs []string) (*RPCExecutor, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("mapreduce: RPC executor needs at least one worker address")
	}
	m, err := NewMaster(fs, dictWords)
	if err != nil {
		return nil, err
	}
	e := &RPCExecutor{master: m, fs: fs, durs: make(map[durKey][]time.Duration)}
	for i, addr := range addrs {
		w, err := m.AttachWorker(addr, fmt.Sprintf("worker-%d", i+1))
		if err != nil {
			m.Close()
			return nil, err
		}
		e.workers = append(e.workers, w)
		for s := 0; s < w.slots; s++ {
			e.lanes = append(e.lanes, laneRef{worker: i, slot: s})
		}
	}
	e.nameSeq = len(addrs)
	m.SetJoinHandler(e.AddWorker)
	m.Heartbeat(heartbeatInterval)
	return e, nil
}

// SetWorkerKills installs the worker-crash schedule of a fault plan. The
// schedule is consumed as workers' dispatch counts reach the thresholds.
func (e *RPCExecutor) SetWorkerKills(kills []dfs.WorkerKillEvent) {
	e.mu.Lock()
	e.kills = append([]dfs.WorkerKillEvent(nil), kills...)
	e.mu.Unlock()
}

// SetChurn installs the full worker-churn schedule of a fault plan:
// kills and slowdowns keyed on per-worker dispatch counts, joins and
// drains keyed on the cluster-global dispatch count. A nil plan clears
// the schedule.
func (e *RPCExecutor) SetChurn(p *dfs.FaultPlan) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if p == nil {
		e.kills, e.joins, e.drains, e.slowdowns = nil, nil, nil, nil
		return
	}
	e.kills = append([]dfs.WorkerKillEvent(nil), p.WorkerKills...)
	e.joins = append([]dfs.WorkerJoinEvent(nil), p.WorkerJoins...)
	e.drains = append([]dfs.WorkerDrainEvent(nil), p.WorkerDrains...)
	e.slowdowns = append([]dfs.WorkerSlowdownEvent(nil), p.WorkerSlowdowns...)
}

// SetSpeculation enables (non-nil) or disables (nil) speculative
// straggler execution.
func (e *RPCExecutor) SetSpeculation(cfg *SpeculationConfig) {
	e.mu.Lock()
	e.spec = cfg
	e.mu.Unlock()
}

func (e *RPCExecutor) specConfig() *SpeculationConfig {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.spec
}

// Workers returns the names of every worker ever attached, in attachment
// order (including departed ones — their per-worker counters remain
// meaningful).
func (e *RPCExecutor) Workers() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, len(e.workers))
	for i, w := range e.workers {
		out[i] = w.name
	}
	return out
}

// workerByName finds a registered worker handle (nil when unknown).
func (e *RPCExecutor) workerByName(name string) *workerConn {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, w := range e.workers {
		if w.name == name {
			return w
		}
	}
	return nil
}

// AddWorker attaches the worker process listening at addr to the running
// executor under the given name ("" auto-assigns the next worker-N). If
// the name belongs to a previously lost or drained worker, the worker
// rejoins in place: its existing lanes route to the fresh connection
// immediately. A brand-new worker's lanes are appended and picked up by
// the next phase that starts. It returns the registered name.
func (e *RPCExecutor) AddWorker(addr, name string) (string, error) {
	e.mu.Lock()
	var existing *workerConn
	if name == "" {
		inUse := make(map[string]bool, len(e.workers))
		for _, w := range e.workers {
			inUse[w.name] = true
		}
		for {
			e.nameSeq++
			name = fmt.Sprintf("worker-%d", e.nameSeq)
			if !inUse[name] {
				break
			}
		}
	} else {
		for _, w := range e.workers {
			if w.name == name {
				existing = w
				break
			}
		}
		if existing != nil && existing.available() {
			e.mu.Unlock()
			return "", fmt.Errorf("mapreduce: worker %q is already attached and live", name)
		}
	}
	e.mu.Unlock()

	client, slots, err := e.master.dialWorker(addr, name)
	if err != nil {
		return "", err
	}
	if existing != nil {
		existing.rebind(addr, client, slots)
		return name, nil
	}
	w := &workerConn{name: name, addr: addr, slots: slots, client: client}
	e.master.register(w)
	e.mu.Lock()
	idx := len(e.workers)
	e.workers = append(e.workers, w)
	for s := 0; s < w.slots; s++ {
		e.lanes = append(e.lanes, laneRef{worker: idx, slot: s})
	}
	e.mu.Unlock()
	return name, nil
}

// DrainWorker gracefully detaches a worker: new task dispatches route
// around it immediately, its in-flight tasks are given drainTimeout to
// finish, then the connection closes. The worker process keeps running
// and may rejoin later under the same name. Draining the last available
// worker is refused — it would strand every subsequent dispatch.
func (e *RPCExecutor) DrainWorker(name string) error {
	w := e.workerByName(name)
	if w == nil {
		return fmt.Errorf("mapreduce: unknown worker %q", name)
	}
	if w.isDead() {
		return fmt.Errorf("mapreduce: worker %q is not attached", name)
	}
	e.mu.Lock()
	others := false
	for _, o := range e.workers {
		if o != w && o.available() {
			others = true
			break
		}
	}
	e.mu.Unlock()
	if !others {
		return fmt.Errorf("mapreduce: refusing to drain %q: it is the last live worker", name)
	}
	w.setDraining(true)
	deadline := time.Now().Add(drainTimeout)
	for w.inflight.Load() > 0 && time.Now().Before(deadline) {
		time.Sleep(drainPollInterval)
	}
	w.detach()
	return nil
}

// MasterAddr returns the listen address of the executor's master, which
// worker processes join via the Master.Join RPC.
func (e *RPCExecutor) MasterAddr() string { return e.master.Addr() }

// Close shuts down the master (listener and worker clients). Worker
// processes keep running; external lifecycles own them.
func (e *RPCExecutor) Close() error { return e.master.Close() }

// Name implements Executor.
func (e *RPCExecutor) Name() string { return "rpc" }

// Lanes implements Executor: every worker slot is a dispatch lane for
// both phases. The lane table only ever grows — a phase snapshots the
// count at start, and joins mid-phase surface in the next one.
func (e *RPCExecutor) Lanes(kind TaskKind) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.lanes)
}

// LaneHost implements Executor: a lane's host is its primary worker.
// Worker processes are not DFS DataNodes, so data-locality preferences
// never match — map assignment degrades to load balancing, which is the
// honest model for workers reading through the master anyway.
func (e *RPCExecutor) LaneHost(kind TaskKind, lane int) string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.workers[e.lanes[lane].worker].name
}

// RunMapTask implements Executor.
func (e *RPCExecutor) RunMapTask(b *Binding, d *TaskDesc) (*TaskResult, error) {
	return e.dispatch(b, d)
}

// RunReduceTask implements Executor.
func (e *RPCExecutor) RunReduceTask(b *Binding, d *TaskDesc) (*TaskResult, error) {
	return e.dispatch(b, d)
}

// route picks the worker executing a lane's next attempt: the lane's
// primary worker, or — after it was lost or while it drains — the next
// available worker in attachment order (deterministic, so reroutes are
// replayable).
func (e *RPCExecutor) route(lane int) (w *workerConn, primary bool) {
	e.mu.Lock()
	workers := e.workers
	p := e.lanes[lane].worker
	e.mu.Unlock()
	n := len(workers)
	for i := 0; i < n; i++ {
		cand := workers[(p+i)%n]
		if cand.available() {
			return cand, i == 0
		}
	}
	return nil, false
}

// pickBackup chooses the worker for a speculative backup attempt: the
// next available worker after the lane's primary that is not the one
// already running the attempt. Nil when the cluster has no second
// worker to race on.
func (e *RPCExecutor) pickBackup(avoid *workerConn, lane int) *workerConn {
	e.mu.Lock()
	workers := e.workers
	p := e.lanes[lane].worker
	e.mu.Unlock()
	n := len(workers)
	for i := 0; i < n; i++ {
		cand := workers[(p+1+i)%n]
		if cand != avoid && cand.available() {
			return cand
		}
	}
	return nil
}

// dispatch executes one attempt, racing a speculative backup against it
// when the attempt overstays the phase's median completion time. Exactly
// one result is returned (and absorbed by the orchestrator); the losing
// twin is canceled best-effort and its side effects are never referenced.
func (e *RPCExecutor) dispatch(b *Binding, d *TaskDesc) (*TaskResult, error) {
	if b.Failed() {
		return nil, errTaskAborted
	}
	if err := b.Context().Err(); err != nil {
		// The job was canceled while this attempt queued; don't spend a
		// worker round-trip on work whose output is discarded.
		return nil, err
	}
	e.applyChurn(b)
	w, primary := e.route(d.Lane)
	if w == nil {
		// Nothing left to run on; retrying cannot help.
		return nil, Permanent(fmt.Errorf("mapreduce: job %q: all workers lost", b.Job()))
	}
	if d.Attempt > 1 && !primary {
		// A re-execution proper: the attempt's lane lost its worker and the
		// task is re-dispatched elsewhere.
		b.Counters().Add(CounterExecReexec, 1)
	}

	type outcome struct {
		res *TaskResult
		err error
		w   *workerConn
		d   *TaskDesc
		dur time.Duration
	}
	// Buffered for both racers: the loser's outcome parks here after
	// dispatch returns, leaking nothing.
	ch := make(chan outcome, 2)
	launch := func(w *workerConn, d *TaskDesc) {
		go func() {
			start := time.Now()
			res, err := e.runOn(b, w, d)
			ch <- outcome{res: res, err: err, w: w, d: d, dur: time.Since(start)}
		}()
	}
	launch(w, d)
	inflight := 1

	var timerC <-chan time.Time
	if delay := e.specDelay(d); delay > 0 {
		timer := time.NewTimer(delay)
		defer timer.Stop()
		timerC = timer.C
	}

	var backupW *workerConn
	var primaryErr, backupErr error
	for inflight > 0 {
		select {
		case o := <-ch:
			inflight--
			if o.err == nil {
				e.recordDuration(d, o.dur)
				if backupW != nil {
					// A race was on: meter how it ended and cancel the
					// losing twin so the worker stops burning its slot.
					if o.d.Backup != 0 {
						b.Counters().Add(CounterExecSpecWon, 1)
						e.cancelAttempt(w, d)
					} else {
						b.Counters().Add(CounterExecSpecWasted, 1)
						bd := *d
						bd.Backup = 1
						e.cancelAttempt(backupW, &bd)
					}
				}
				b.Counters().Add(CounterExecTasksPrefix+o.w.name, 1)
				return o.res, nil
			}
			if o.d.Backup == 0 {
				primaryErr = o.err
			} else {
				backupErr = o.err
			}
		case <-timerC:
			timerC = nil
			bw := e.pickBackup(w, d.Lane)
			if bw == nil {
				continue
			}
			backupW = bw
			bd := *d
			bd.Backup = 1
			b.Counters().Add(CounterExecSpecLaunched, 1)
			launch(bw, &bd)
			inflight++
		}
	}
	// Both (or the only) attempts failed: surface the primary's error for
	// retry classification when it has one.
	if primaryErr != nil {
		return nil, primaryErr
	}
	return nil, backupErr
}

// runOn executes one attempt on one specific worker: fire any scheduled
// chaos for this dispatch (kill, injected straggler latency), then issue
// the RunTask call under its deadline, metering liveness transitions.
func (e *RPCExecutor) runOn(b *Binding, w *workerConn, d *TaskDesc) (*TaskResult, error) {
	killed, delay := e.preDispatch(w)
	if killed {
		b.Counters().Add(CounterExecWorkersLost, 1)
	}
	if delay > 0 {
		t := time.NewTimer(delay)
		select {
		case <-t.C:
		case <-b.Context().Done():
			t.Stop()
			return nil, b.Context().Err()
		}
	}
	w.inflight.Add(1)
	defer w.inflight.Add(-1)
	args := &RunTaskArgs{Desc: *d}
	var reply RunTaskReply
	err, oc := w.call("Worker.RunTask", args, &reply, taskCallTimeout)
	switch oc {
	case callLost:
		b.Counters().Add(CounterExecWorkersLost, 1)
	case callQuarantined:
		b.Counters().Add(CounterExecWorkersLost, 1)
		b.Counters().Add(CounterExecWorkersQuarantined, 1)
	}
	if err != nil {
		return nil, err
	}
	if reply.Err != "" {
		terr := errors.New(reply.Err)
		if reply.Permanent {
			terr = Permanent(terr)
		}
		return &reply.Result, terr
	}
	return &reply.Result, nil
}

// cancelAttempt tells a worker to abandon the losing side of a
// speculative race, off the dispatch path and best-effort (the result is
// discarded master-side either way).
func (e *RPCExecutor) cancelAttempt(w *workerConn, d *TaskDesc) {
	args := &CancelTaskArgs{JobID: d.JobID, Kind: d.Kind, Task: d.Task, Backup: d.Backup}
	go w.call("Worker.CancelTask", args, &CancelTaskReply{}, ctrlCallTimeout) //nolint:errcheck // best-effort cancel
}

// preDispatch advances w's dispatch count and fires any scheduled worker
// kill that count reaches — before the dispatch, so the killed worker's
// in-flight and current calls fail like a real machine loss — and
// returns the straggler latency the slowdown schedule injects for this
// dispatch.
func (e *RPCExecutor) preDispatch(w *workerConn) (killed bool, delay time.Duration) {
	w.mu.Lock()
	w.dispatched++
	n := w.dispatched
	w.mu.Unlock()

	e.mu.Lock()
	fire := false
	for i := 0; i < len(e.kills); {
		k := e.kills[i]
		if k.Worker == w.name && n >= k.AfterTasks {
			fire = true
			e.kills = append(e.kills[:i], e.kills[i+1:]...)
			continue
		}
		i++
	}
	for _, ev := range e.slowdowns {
		if ev.Worker == w.name && n >= ev.AfterTasks && ev.Delay > delay {
			delay = ev.Delay
		}
	}
	e.mu.Unlock()
	return fire && w.Kill(), delay
}

// applyChurn advances the cluster-global dispatch count and fires every
// scheduled join and drain it reaches. Joins dial out and drains wait for
// in-flight tasks, so both run off the dispatch path; the draining flag
// flips synchronously so routing changes at a deterministic dispatch
// index.
func (e *RPCExecutor) applyChurn(b *Binding) {
	e.mu.Lock()
	e.globalDisp++
	n := e.globalDisp
	var joins []dfs.WorkerJoinEvent
	for i := 0; i < len(e.joins); {
		if n >= e.joins[i].AfterTasks {
			joins = append(joins, e.joins[i])
			e.joins = append(e.joins[:i], e.joins[i+1:]...)
			continue
		}
		i++
	}
	var drains []dfs.WorkerDrainEvent
	for i := 0; i < len(e.drains); {
		if n >= e.drains[i].AfterTasks {
			drains = append(drains, e.drains[i])
			e.drains = append(e.drains[:i], e.drains[i+1:]...)
			continue
		}
		i++
	}
	e.mu.Unlock()

	for _, ev := range joins {
		b.Counters().Add(CounterExecWorkersJoined, 1)
		go e.AddWorker(ev.Addr, ev.Name) //nolint:errcheck // chaos joins are best-effort; a failed join is just absent capacity
	}
	for _, ev := range drains {
		w := e.workerByName(ev.Worker)
		if w == nil || !w.available() {
			continue
		}
		b.Counters().Add(CounterExecWorkersDrained, 1)
		w.setDraining(true)
		go e.DrainWorker(ev.Worker) //nolint:errcheck // the drain either completes or the detach deadline forces it
	}
}

// recordDuration adds one completed-attempt duration to its phase's
// sample set (only while speculation is enabled — the samples exist to
// estimate the median).
func (e *RPCExecutor) recordDuration(d *TaskDesc, dur time.Duration) {
	e.mu.Lock()
	if e.spec != nil {
		k := durKey{jobID: d.JobID, kind: d.Kind}
		e.durs[k] = append(e.durs[k], dur)
	}
	e.mu.Unlock()
}

// specDelay returns how long an attempt of d may run before a backup
// launches, or 0 when speculation is off or the phase has not completed
// enough tasks to trust a median.
func (e *RPCExecutor) specDelay(d *TaskDesc) time.Duration {
	e.mu.Lock()
	cfg := e.spec
	var samples []time.Duration
	if cfg != nil {
		ds := e.durs[durKey{jobID: d.JobID, kind: d.Kind}]
		if len(ds) >= cfg.minTasks() {
			samples = append([]time.Duration(nil), ds...)
		}
	}
	e.mu.Unlock()
	if samples == nil {
		return 0
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	median := samples[len(samples)/2]
	delay := time.Duration(float64(median) * cfg.multiple())
	if min := cfg.minDelay(); delay < min {
		delay = min
	}
	return delay
}

// CleanupShuffle implements shuffleCleaner: it removes the job's shuffle
// intermediates from the DFS, releases the workers' cached job
// reconstructions and drops the job's duration samples.
func (e *RPCExecutor) CleanupShuffle(b *Binding) {
	prefix := ShufflePrefix(b.JobID())
	for _, name := range e.fs.List() {
		if strings.HasPrefix(name, prefix) {
			e.fs.Delete(name) //nolint:errcheck // best-effort cleanup
		}
	}
	e.mu.Lock()
	workers := e.workers
	delete(e.durs, durKey{jobID: b.JobID(), kind: MapTask})
	delete(e.durs, durKey{jobID: b.JobID(), kind: ReduceTask})
	e.mu.Unlock()
	for _, w := range workers {
		if w.isDead() {
			continue
		}
		w.call("Worker.ForgetJob", &ForgetJobArgs{JobID: b.JobID()}, &ForgetJobReply{}, ctrlCallTimeout) //nolint:errcheck // best-effort release
	}
}
