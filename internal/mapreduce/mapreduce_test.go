package mapreduce

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"spq/internal/dfs"
)

// ---- shared test fixtures ----

// intKey is a composite key: Part routes to a reducer, Order is the
// secondary-sort field (like the paper's cell-id + tag composite keys).
type intKey struct {
	Part  int
	Order float64
}

func intKeyLess(a, b intKey) bool {
	if a.Part != b.Part {
		return a.Part < b.Part
	}
	return a.Order < b.Order
}

func intKeyGroup(a, b intKey) bool { return a.Part == b.Part }

func intKeyPartition(k intKey, r int) int { return k.Part % r }

var intKeyCodec = &Codec[intKey]{
	Encode: func(w *bufio.Writer, k intKey) error {
		var buf [16]byte
		binary.LittleEndian.PutUint64(buf[:8], uint64(k.Part))
		binary.LittleEndian.PutUint64(buf[8:], uint64(int64(k.Order*1e6)))
		_, err := w.Write(buf[:])
		return err
	},
	Decode: func(r *bufio.Reader) (intKey, error) {
		var buf [16]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return intKey{}, err
		}
		return intKey{
			Part:  int(binary.LittleEndian.Uint64(buf[:8])),
			Order: float64(int64(binary.LittleEndian.Uint64(buf[8:]))) / 1e6,
		}, nil
	},
}

var stringCodec = &Codec[string]{
	Encode: func(w *bufio.Writer, s string) error {
		var lenBuf [4]byte
		binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(s)))
		if _, err := w.Write(lenBuf[:]); err != nil {
			return err
		}
		_, err := w.WriteString(s)
		return err
	},
	Decode: func(r *bufio.Reader) (string, error) {
		var lenBuf [4]byte
		if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
			return "", err
		}
		buf := make([]byte, binary.LittleEndian.Uint32(lenBuf[:]))
		if _, err := io.ReadFull(r, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	},
}

// wordCountJob builds the canonical MapReduce example over an in-memory
// source: counts word occurrences across lines.
func wordCountJob(lines []string, reducers int) *Job[string, string, int, string] {
	return &Job[string, string, int, string]{
		Name:        "wordcount",
		Source:      NewMemorySource(lines, 3),
		NumReducers: reducers,
		Map: func(ctx *TaskContext, line string, emit func(string, int)) error {
			for _, w := range strings.Fields(line) {
				emit(w, 1)
			}
			return nil
		},
		Partition: func(k string, r int) int {
			h := 0
			for _, c := range k {
				h = h*31 + int(c)
			}
			if h < 0 {
				h = -h
			}
			return h % r
		},
		Less:       func(a, b string) bool { return a < b },
		GroupEqual: func(a, b string) bool { return a == b },
		Reduce: func(ctx *TaskContext, values *Values[string, int], emit func(string)) error {
			total := 0
			word := ""
			for {
				v, ok := values.Next()
				if !ok {
					break
				}
				word = values.Key()
				total += v
			}
			emit(fmt.Sprintf("%s=%d", word, total))
			return nil
		},
	}
}

func runWordCount(t *testing.T, job *Job[string, string, int, string]) map[string]int {
	t.Helper()
	res, err := Run(NewCluster(nil, 4, 4), job)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int{}
	for _, o := range res.Output {
		var w string
		var n int
		if _, err := fmt.Sscanf(o, "%s", &w); err != nil {
			t.Fatal(err)
		}
		parts := strings.SplitN(o, "=", 2)
		fmt.Sscan(parts[1], &n)
		got[parts[0]] = n
	}
	return got
}

func TestWordCount(t *testing.T) {
	lines := []string{
		"the quick brown fox",
		"jumps over the lazy dog",
		"the dog barks",
	}
	got := runWordCount(t, wordCountJob(lines, 3))
	want := map[string]int{
		"the": 3, "quick": 1, "brown": 1, "fox": 1, "jumps": 1,
		"over": 1, "lazy": 1, "dog": 2, "barks": 1,
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("wordcount = %v, want %v", got, want)
	}
}

func TestWordCountSingleReducerSingleSlot(t *testing.T) {
	job := wordCountJob([]string{"a b a"}, 1)
	res, err := Run(NewCluster(nil, 1, 1), job)
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(res.Output)
	want := []string{"a=2", "b=1"}
	if !reflect.DeepEqual(res.Output, want) {
		t.Errorf("output = %v, want %v", res.Output, want)
	}
}

func TestCountersBasic(t *testing.T) {
	job := wordCountJob([]string{"x y", "x"}, 2)
	res, err := Run(NewCluster(nil, 2, 2), job)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Counters
	if c[CounterMapRecordsIn] != 2 {
		t.Errorf("map.records.in = %d, want 2", c[CounterMapRecordsIn])
	}
	if c[CounterMapRecordsOut] != 3 {
		t.Errorf("map.records.out = %d, want 3", c[CounterMapRecordsOut])
	}
	if c[CounterReduceGroups] != 2 {
		t.Errorf("reduce.groups = %d, want 2", c[CounterReduceGroups])
	}
	if c[CounterReduceValues] != 3 {
		t.Errorf("reduce.values.total = %d, want 3", c[CounterReduceValues])
	}
	if c[CounterValuesConsumed] != 3 {
		t.Errorf("reduce.values.consumed = %d, want 3", c[CounterValuesConsumed])
	}
	if c[CounterOutputRecords] != int64(len(res.Output)) {
		t.Errorf("output.records = %d, want %d", c[CounterOutputRecords], len(res.Output))
	}
}

// Secondary sort: within one group (same Part) values must arrive ordered
// by the Order half of the composite key, across many map tasks.
func TestSecondarySortOrder(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	var recs []intKey
	for i := 0; i < 500; i++ {
		recs = append(recs, intKey{Part: r.Intn(5), Order: r.Float64()})
	}
	job := &Job[intKey, intKey, float64, string]{
		Name:        "secondary-sort",
		Source:      NewMemorySource(recs, 7),
		NumReducers: 5,
		Map: func(ctx *TaskContext, rec intKey, emit func(intKey, float64)) error {
			emit(rec, rec.Order)
			return nil
		},
		Partition:  intKeyPartition,
		Less:       intKeyLess,
		GroupEqual: intKeyGroup,
		Reduce: func(ctx *TaskContext, values *Values[intKey, float64], emit func(string)) error {
			prev := -1.0
			n := 0
			for {
				v, ok := values.Next()
				if !ok {
					break
				}
				if v < prev {
					return fmt.Errorf("out of order: %v after %v in part %d", v, prev, values.Key().Part)
				}
				prev = v
				n++
			}
			emit(fmt.Sprintf("part-%d:%d", values.GroupKey().Part, n))
			return nil
		},
	}
	res, err := Run(NewCluster(nil, 4, 4), job)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 5 {
		t.Errorf("groups = %v, want 5 parts", res.Output)
	}
	total := 0
	for _, o := range res.Output {
		var p, n int
		fmt.Sscanf(o, "part-%d:%d", &p, &n)
		total += n
	}
	if total != len(recs) {
		t.Errorf("reduced %d records, want %d", total, len(recs))
	}
}

// Early termination: a reducer that stops consuming mid-group must still
// let the engine proceed to following groups, and the consumed counter
// must reflect the skipped records.
func TestEarlyTerminationSkipsRest(t *testing.T) {
	var recs []intKey
	for part := 0; part < 3; part++ {
		for i := 0; i < 100; i++ {
			recs = append(recs, intKey{Part: part, Order: float64(i)})
		}
	}
	job := &Job[intKey, intKey, float64, string]{
		Name:        "early-term",
		Source:      NewMemorySource(recs, 4),
		NumReducers: 3,
		Map: func(ctx *TaskContext, rec intKey, emit func(intKey, float64)) error {
			emit(rec, rec.Order)
			return nil
		},
		Partition:  intKeyPartition,
		Less:       intKeyLess,
		GroupEqual: intKeyGroup,
		Reduce: func(ctx *TaskContext, values *Values[intKey, float64], emit func(string)) error {
			// Consume only the first 5 values of the group.
			for i := 0; i < 5; i++ {
				v, ok := values.Next()
				if !ok {
					return errors.New("group ended too early")
				}
				if v != float64(i) {
					return fmt.Errorf("value %d = %v", i, v)
				}
			}
			emit(fmt.Sprintf("part-%d", values.GroupKey().Part))
			return nil
		},
	}
	res, err := Run(NewCluster(nil, 2, 2), job)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 3 {
		t.Fatalf("output = %v, want 3 groups", res.Output)
	}
	if got := res.Counters[CounterValuesConsumed]; got != 15 {
		t.Errorf("values consumed = %d, want 15", got)
	}
	if got := res.Counters[CounterReduceValues]; got != 300 {
		t.Errorf("values total = %d, want 300", got)
	}
}

// A reducer that consumes nothing at all must still advance group by group.
func TestReducerConsumesNothing(t *testing.T) {
	var recs []intKey
	for part := 0; part < 4; part++ {
		for i := 0; i < 10; i++ {
			recs = append(recs, intKey{Part: part, Order: float64(i)})
		}
	}
	groups := 0
	job := &Job[intKey, intKey, float64, int]{
		Name:        "consume-nothing",
		Source:      NewMemorySource(recs, 2),
		NumReducers: 2,
		Map: func(ctx *TaskContext, rec intKey, emit func(intKey, float64)) error {
			emit(rec, rec.Order)
			return nil
		},
		Partition:  intKeyPartition,
		Less:       intKeyLess,
		GroupEqual: intKeyGroup,
		Reduce: func(ctx *TaskContext, values *Values[intKey, float64], emit func(int)) error {
			groups++
			return nil
		},
	}
	if _, err := Run(NewCluster(nil, 1, 1), job); err != nil {
		t.Fatal(err)
	}
	if groups != 4 {
		t.Errorf("saw %d groups, want 4", groups)
	}
}

// With a nil GroupEqual every record is its own group.
func TestNilGroupEqual(t *testing.T) {
	recs := []intKey{{0, 1}, {0, 2}, {0, 3}}
	groups := 0
	job := &Job[intKey, intKey, float64, int]{
		Name:        "nil-group",
		Source:      NewMemorySource(recs, 1),
		NumReducers: 1,
		Map: func(ctx *TaskContext, rec intKey, emit func(intKey, float64)) error {
			emit(rec, rec.Order)
			return nil
		},
		Partition: intKeyPartition,
		Less:      intKeyLess,
		Reduce: func(ctx *TaskContext, values *Values[intKey, float64], emit func(int)) error {
			groups++
			for {
				if _, ok := values.Next(); !ok {
					break
				}
			}
			return nil
		},
	}
	if _, err := Run(NewCluster(nil, 1, 1), job); err != nil {
		t.Fatal(err)
	}
	if groups != 3 {
		t.Errorf("groups = %d, want 3", groups)
	}
}

// Spilling to disk must not change results. Run the same aggregation with
// and without spilling and compare.
func TestSpillMatchesInMemory(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	var recs []intKey
	for i := 0; i < 2000; i++ {
		recs = append(recs, intKey{Part: r.Intn(7), Order: r.Float64()})
	}
	build := func(spill int) *Job[intKey, intKey, float64, string] {
		return &Job[intKey, intKey, float64, string]{
			Name:        "spill-test",
			Source:      NewMemorySource(recs, 5),
			NumReducers: 7,
			Map: func(ctx *TaskContext, rec intKey, emit func(intKey, float64)) error {
				emit(rec, rec.Order)
				return nil
			},
			Partition:  intKeyPartition,
			Less:       intKeyLess,
			GroupEqual: intKeyGroup,
			KeyCodec:   intKeyCodec,
			ValueCodec: &Codec[float64]{
				Encode: func(w *bufio.Writer, v float64) error {
					var buf [8]byte
					binary.LittleEndian.PutUint64(buf[:], uint64(int64(v*1e6)))
					_, err := w.Write(buf[:])
					return err
				},
				Decode: func(r *bufio.Reader) (float64, error) {
					var buf [8]byte
					if _, err := io.ReadFull(r, buf[:]); err != nil {
						return 0, err
					}
					return float64(int64(binary.LittleEndian.Uint64(buf[:]))) / 1e6, nil
				},
			},
			SpillEvery: spill,
			Reduce: func(ctx *TaskContext, values *Values[intKey, float64], emit func(string)) error {
				sum := 0.0
				n := 0
				for {
					v, ok := values.Next()
					if !ok {
						break
					}
					if n > 0 && v < 0 {
						return errors.New("unexpected negative")
					}
					sum += v
					n++
				}
				emit(fmt.Sprintf("%d:%d:%.3f", values.GroupKey().Part, n, sum))
				return nil
			},
		}
	}
	resMem, err := Run(NewCluster(nil, 3, 3), build(0))
	if err != nil {
		t.Fatal(err)
	}
	resSpill, err := Run(NewCluster(nil, 3, 3), build(64))
	if err != nil {
		t.Fatal(err)
	}
	sortOut := func(o []string) []string { s := append([]string(nil), o...); sort.Strings(s); return s }
	if !reflect.DeepEqual(sortOut(resMem.Output), sortOut(resSpill.Output)) {
		t.Errorf("spill output differs:\nmem:   %v\nspill: %v", resMem.Output, resSpill.Output)
	}
	if resSpill.Counters[CounterSpillRuns] == 0 {
		t.Error("no spill runs recorded despite SpillEvery")
	}
	if resSpill.Counters[CounterSpilledRecords] != int64(len(recs)) {
		t.Errorf("spilled records = %d, want %d", resSpill.Counters[CounterSpilledRecords], len(recs))
	}
	if resSpill.Counters[CounterShuffleBytes] == 0 {
		t.Error("shuffle bytes not metered")
	}
}

// Secondary sort must hold across spilled runs too.
func TestSpillPreservesSortOrder(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	var recs []intKey
	for i := 0; i < 1000; i++ {
		recs = append(recs, intKey{Part: 0, Order: r.Float64()})
	}
	valCodec := &Codec[float64]{
		Encode: func(w *bufio.Writer, v float64) error {
			var buf [8]byte
			binary.LittleEndian.PutUint64(buf[:], uint64(int64(v*1e9)))
			_, err := w.Write(buf[:])
			return err
		},
		Decode: func(r *bufio.Reader) (float64, error) {
			var buf [8]byte
			if _, err := io.ReadFull(r, buf[:]); err != nil {
				return 0, err
			}
			return float64(int64(binary.LittleEndian.Uint64(buf[:]))) / 1e9, nil
		},
	}
	job := &Job[intKey, intKey, float64, int]{
		Name:        "spill-order",
		Source:      NewMemorySource(recs, 6),
		NumReducers: 1,
		Map: func(ctx *TaskContext, rec intKey, emit func(intKey, float64)) error {
			emit(rec, rec.Order)
			return nil
		},
		Partition:  intKeyPartition,
		Less:       intKeyLess,
		GroupEqual: intKeyGroup,
		KeyCodec:   intKeyCodec,
		ValueCodec: valCodec,
		SpillEvery: 50,
		Reduce: func(ctx *TaskContext, values *Values[intKey, float64], emit func(int)) error {
			prev := -1.0
			for {
				v, ok := values.Next()
				if !ok {
					break
				}
				if v < prev {
					return fmt.Errorf("order violated: %v after %v", v, prev)
				}
				prev = v
			}
			return nil
		},
	}
	if _, err := Run(NewCluster(nil, 4, 1), job); err != nil {
		t.Fatal(err)
	}
}

// Failure injection: tasks that fail once must be retried and succeed
// without duplicating counters or output.
func TestTaskRetrySucceeds(t *testing.T) {
	lines := []string{"a b c", "d e f", "a d"}
	job := wordCountJob(lines, 2)
	job.MaxAttempts = 3
	var failedOnce failSet
	job.FaultInjector = func(kind TaskKind, taskID, attempt int) error {
		key := fmt.Sprintf("%v-%d", kind, taskID)
		if attempt == 1 && !failedOnce.seen(key) {
			failedOnce.mark(key)
			return fmt.Errorf("injected failure for %s", key)
		}
		return nil
	}
	res, err := Run(NewCluster(nil, 2, 2), job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters[CounterTaskRetries] == 0 {
		t.Error("no retries recorded")
	}
	if res.Counters[CounterMapRecordsIn] != 3 {
		t.Errorf("map.records.in = %d, want 3 (failed attempts must not count)", res.Counters[CounterMapRecordsIn])
	}
	got := map[string]int{}
	for _, o := range res.Output {
		parts := strings.SplitN(o, "=", 2)
		var n int
		fmt.Sscan(parts[1], &n)
		got[parts[0]] = n
	}
	want := map[string]int{"a": 2, "b": 1, "c": 1, "d": 2, "e": 1, "f": 1}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("output after retries = %v, want %v", got, want)
	}
}

func TestTaskRetryExhausted(t *testing.T) {
	job := wordCountJob([]string{"a"}, 1)
	job.MaxAttempts = 2
	job.FaultInjector = func(kind TaskKind, taskID, attempt int) error {
		if kind == ReduceTask {
			return errors.New("persistent failure")
		}
		return nil
	}
	_, err := Run(NewCluster(nil, 1, 1), job)
	if !errors.Is(err, ErrTooManyFailures) {
		t.Errorf("err = %v, want ErrTooManyFailures", err)
	}
}

// failSet is a tiny concurrency-safe string set for fault injectors.
type failSet struct {
	mu sync.Mutex
	m  map[string]bool
}

func (s *failSet) seen(k string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m[k]
}

func (s *failSet) mark(k string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.m == nil {
		s.m = make(map[string]bool)
	}
	s.m[k] = true
}

func TestValidation(t *testing.T) {
	base := func() *Job[string, string, int, string] { return wordCountJob([]string{"a"}, 1) }
	tests := []struct {
		name   string
		mutate func(*Job[string, string, int, string])
	}{
		{"nil source", func(j *Job[string, string, int, string]) { j.Source = nil }},
		{"nil map", func(j *Job[string, string, int, string]) { j.Map = nil }},
		{"nil reduce", func(j *Job[string, string, int, string]) { j.Reduce = nil }},
		{"zero reducers", func(j *Job[string, string, int, string]) { j.NumReducers = 0 }},
		{"nil partition", func(j *Job[string, string, int, string]) { j.Partition = nil }},
		{"nil less", func(j *Job[string, string, int, string]) { j.Less = nil }},
		{"spill without codec", func(j *Job[string, string, int, string]) { j.SpillEvery = 10 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			j := base()
			tt.mutate(j)
			if _, err := Run(NewCluster(nil, 1, 1), j); err == nil {
				t.Error("expected validation error")
			}
		})
	}
}

func TestPartitionOutOfRange(t *testing.T) {
	job := wordCountJob([]string{"a"}, 2)
	job.Partition = func(k string, r int) int { return 99 }
	if _, err := Run(NewCluster(nil, 1, 1), job); err == nil {
		t.Error("expected partition range error")
	}
}

// TextInput over the simulated DFS: records must arrive exactly once and
// locality must be observed in the scheduler counter.
func TestTextInputOverDFS(t *testing.T) {
	fs := dfs.New(dfs.Config{NumNodes: 4, BlockSize: 32, Replication: 2, Seed: 3})
	var sb strings.Builder
	want := map[string]int{}
	for i := 0; i < 200; i++ {
		w := fmt.Sprintf("w%d", i%17)
		sb.WriteString(w + "\n")
		want[w]++
	}
	if err := fs.Create("input.txt", []byte(sb.String())); err != nil {
		t.Fatal(err)
	}
	job := &Job[string, string, int, string]{
		Name: "dfs-wordcount",
		Source: NewTextInput(fs, func(line []byte) (string, error) {
			return string(line), nil
		}, "input.txt"),
		NumReducers: 3,
		Map: func(ctx *TaskContext, line string, emit func(string, int)) error {
			emit(line, 1)
			return nil
		},
		Partition: func(k string, r int) int {
			h := 0
			for _, c := range k {
				h = h*131 + int(c)
			}
			if h < 0 {
				h = -h
			}
			return h % r
		},
		Less:       func(a, b string) bool { return a < b },
		GroupEqual: func(a, b string) bool { return a == b },
		Reduce: func(ctx *TaskContext, values *Values[string, int], emit func(string)) error {
			n := 0
			for {
				if _, ok := values.Next(); !ok {
					break
				}
				n++
			}
			emit(fmt.Sprintf("%s=%d", values.GroupKey(), n))
			return nil
		},
	}
	res, err := Run(NewCluster(fs, 4, 3), job)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int{}
	for _, o := range res.Output {
		parts := strings.SplitN(o, "=", 2)
		var n int
		fmt.Sscan(parts[1], &n)
		got[parts[0]] = n
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("dfs wordcount = %v, want %v", got, want)
	}
	if res.Counters[CounterDataLocalMaps] == 0 {
		t.Error("no data-local map tasks despite slots on every node")
	}
	if res.Stats.MapTasks == 0 || res.Stats.ReduceTasks != 3 {
		t.Errorf("stats = %+v", res.Stats)
	}
}

func TestTextInputParseError(t *testing.T) {
	fs := dfs.New(dfs.Config{NumNodes: 2, BlockSize: 64, Seed: 1})
	if err := fs.Create("bad.txt", []byte("ok\nbad\n")); err != nil {
		t.Fatal(err)
	}
	job := &Job[int, intKey, int, int]{
		Name: "parse-error",
		Source: NewTextInput(fs, func(line []byte) (int, error) {
			if string(line) == "bad" {
				return 0, errors.New("malformed record")
			}
			return len(line), nil
		}, "bad.txt"),
		NumReducers: 1,
		Map: func(ctx *TaskContext, rec int, emit func(intKey, int)) error {
			emit(intKey{}, rec)
			return nil
		},
		Partition:  intKeyPartition,
		Less:       intKeyLess,
		GroupEqual: intKeyGroup,
		Reduce: func(ctx *TaskContext, values *Values[intKey, int], emit func(int)) error {
			return nil
		},
	}
	if _, err := Run(NewCluster(fs, 1, 1), job); err == nil {
		t.Error("expected parse error to fail the job")
	}
}

func TestMemorySourceChunking(t *testing.T) {
	recs := []int{1, 2, 3, 4, 5, 6, 7}
	tests := []struct {
		splits     int
		wantChunks int
	}{
		{1, 1}, {2, 2}, {3, 3}, {7, 7}, {100, 7}, {0, 1},
	}
	for _, tt := range tests {
		src := NewMemorySource(recs, tt.splits)
		splits, err := src.Splits()
		if err != nil {
			t.Fatal(err)
		}
		if len(splits) != tt.wantChunks {
			t.Errorf("splits(%d) = %d chunks, want %d", tt.splits, len(splits), tt.wantChunks)
		}
		var all []int
		for _, s := range splits {
			s.Each(func(v int) bool { all = append(all, v); return true })
		}
		if !reflect.DeepEqual(all, recs) {
			t.Errorf("records = %v, want %v", all, recs)
		}
	}
}

func TestEmptyInput(t *testing.T) {
	job := wordCountJob(nil, 2)
	res, err := Run(NewCluster(nil, 2, 2), job)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 0 {
		t.Errorf("output = %v, want empty", res.Output)
	}
	if res.Counters[CounterReduceGroups] != 0 {
		t.Error("groups reported for empty input")
	}
}

func TestMoreReducersThanSlots(t *testing.T) {
	// 16 reducers, 2 slots: tasks must run in waves and still all complete.
	var recs []intKey
	for p := 0; p < 16; p++ {
		recs = append(recs, intKey{Part: p, Order: 1})
	}
	job := &Job[intKey, intKey, int, int]{
		Name:        "waves",
		Source:      NewMemorySource(recs, 4),
		NumReducers: 16,
		Map: func(ctx *TaskContext, rec intKey, emit func(intKey, int)) error {
			emit(rec, 1)
			return nil
		},
		Partition:  intKeyPartition,
		Less:       intKeyLess,
		GroupEqual: intKeyGroup,
		Reduce: func(ctx *TaskContext, values *Values[intKey, int], emit func(int)) error {
			for {
				if _, ok := values.Next(); !ok {
					break
				}
			}
			emit(values.GroupKey().Part)
			return nil
		},
	}
	res, err := Run(NewCluster(nil, 2, 2), job)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 16 {
		t.Errorf("output = %v, want 16 parts", res.Output)
	}
	// Output must be in reduce-task order (deterministic).
	for i, p := range res.Output {
		if p != i {
			t.Errorf("output[%d] = %d, want %d (task order)", i, p, i)
		}
	}
}

func TestCountersRegistry(t *testing.T) {
	c := NewCounters()
	c.Add("x", 5)
	c.Add("x", 2)
	c.Add("y", 1)
	if got := c.Get("x"); got != 7 {
		t.Errorf("Get(x) = %d", got)
	}
	if got := c.Get("missing"); got != 0 {
		t.Errorf("Get(missing) = %d", got)
	}
	if names := c.Names(); !reflect.DeepEqual(names, []string{"x", "y"}) {
		t.Errorf("Names = %v", names)
	}
	snap := c.Snapshot()
	if snap["x"] != 7 || snap["y"] != 1 {
		t.Errorf("Snapshot = %v", snap)
	}
}

// A map attempt that fails after spilling must leave no temp files behind
// once the job finishes.
func TestSpillCleanupAfterFailure(t *testing.T) {
	before := countSpillFiles(t)
	var recs []intKey
	for i := 0; i < 500; i++ {
		recs = append(recs, intKey{Part: i % 3, Order: float64(i)})
	}
	valCodec := &Codec[float64]{
		Encode: func(w *bufio.Writer, v float64) error {
			var buf [8]byte
			binary.LittleEndian.PutUint64(buf[:], uint64(int64(v)))
			_, err := w.Write(buf[:])
			return err
		},
		Decode: func(r *bufio.Reader) (float64, error) {
			var buf [8]byte
			if _, err := io.ReadFull(r, buf[:]); err != nil {
				return 0, err
			}
			return float64(int64(binary.LittleEndian.Uint64(buf[:]))), nil
		},
	}
	var failedOnce atomic.Bool
	job := &Job[intKey, intKey, float64, int]{
		Name:        "spill-cleanup",
		Source:      NewMemorySource(recs, 2),
		NumReducers: 3,
		Map: func(ctx *TaskContext, rec intKey, emit func(intKey, float64)) error {
			emit(rec, rec.Order)
			return nil
		},
		Partition:   intKeyPartition,
		Less:        intKeyLess,
		GroupEqual:  intKeyGroup,
		KeyCodec:    intKeyCodec,
		ValueCodec:  valCodec,
		SpillEvery:  32,
		MaxAttempts: 3,
		FaultInjector: func(kind TaskKind, taskID, attempt int) error {
			if kind == ReduceTask && failedOnce.CompareAndSwap(false, true) {
				return errors.New("boom")
			}
			return nil
		},
		Reduce: func(ctx *TaskContext, values *Values[intKey, float64], emit func(int)) error {
			n := 0
			for {
				if _, ok := values.Next(); !ok {
					break
				}
				n++
			}
			emit(n)
			return nil
		},
	}
	res, err := Run(NewCluster(nil, 2, 2), job)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range res.Output {
		total += n
	}
	if total != len(recs) {
		t.Errorf("reduced %d records, want %d", total, len(recs))
	}
	if after := countSpillFiles(t); after > before {
		t.Errorf("spill files leaked: %d before, %d after", before, after)
	}
}

func countSpillFiles(t *testing.T) int {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(os.TempDir(), "spq-spill-*.run"))
	if err != nil {
		t.Fatal(err)
	}
	return len(matches)
}

// A job that fails permanently must also clean up its spill files.
func TestSpillCleanupAfterJobFailure(t *testing.T) {
	before := countSpillFiles(t)
	var recs []intKey
	for i := 0; i < 200; i++ {
		recs = append(recs, intKey{Part: 0, Order: float64(i)})
	}
	job := &Job[intKey, intKey, float64, int]{
		Name:        "doomed",
		Source:      NewMemorySource(recs, 2),
		NumReducers: 1,
		Map: func(ctx *TaskContext, rec intKey, emit func(intKey, float64)) error {
			emit(rec, rec.Order)
			return nil
		},
		Partition:  intKeyPartition,
		Less:       intKeyLess,
		GroupEqual: intKeyGroup,
		KeyCodec:   intKeyCodec,
		ValueCodec: &Codec[float64]{
			Encode: func(w *bufio.Writer, v float64) error {
				var buf [8]byte
				binary.LittleEndian.PutUint64(buf[:], uint64(int64(v)))
				_, err := w.Write(buf[:])
				return err
			},
			Decode: func(r *bufio.Reader) (float64, error) {
				var buf [8]byte
				if _, err := io.ReadFull(r, buf[:]); err != nil {
					return 0, err
				}
				return float64(int64(binary.LittleEndian.Uint64(buf[:]))), nil
			},
		},
		SpillEvery: 16,
		Reduce: func(ctx *TaskContext, values *Values[intKey, float64], emit func(int)) error {
			return errors.New("permanent reduce failure")
		},
	}
	if _, err := Run(NewCluster(nil, 2, 1), job); !errors.Is(err, ErrTooManyFailures) {
		t.Fatalf("err = %v", err)
	}
	if after := countSpillFiles(t); after > before {
		t.Errorf("spill files leaked after failed job: %d before, %d after", before, after)
	}
}
