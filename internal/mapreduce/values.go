package mapreduce

import "sync/atomic"

// Values iterates the records of one reduce group in comparator order. It
// mirrors the Iterable<VALUE> a Hadoop reducer receives: the consumer pulls
// records one at a time and may simply stop pulling to terminate early
// (Section 5 of the paper relies on this to stop after examining only a
// few feature objects).
//
// The iterator also exposes the full composite key of the current record,
// because with secondary sort the non-grouping half of the key changes
// from record to record and carries information (keyword-list length for
// eSPQlen, Jaccard score for eSPQsco).
type Values[K, V any] struct {
	stream   stream[K, V]
	group    groupFunc[K]
	consumed *int64 // cached reduce.values.consumed counter cell

	cur      Pair[K, V]
	groupKey K
	hasCur   bool
	started  bool // whether the group's first record was handed out
	done     bool // group exhausted
	err      error
}

type groupFunc[K any] func(a, b K) bool

// stream yields sorted pairs one at a time. ok is false at end of data.
type stream[K, V any] interface {
	next() (p Pair[K, V], ok bool, err error)
}

// GroupKey returns the composite key of the first record of the group
// being reduced. It is stable for the whole Reduce invocation and is the
// analogue of the key argument of a Hadoop reducer.
func (v *Values[K, V]) GroupKey() K { return v.groupKey }

// Key returns the composite key of the record most recently returned by
// Next. With secondary sort the non-grouping half differs from record to
// record. It is only valid after a successful Next call; after Next has
// reported the end of the group it may already refer to the next group.
func (v *Values[K, V]) Key() K { return v.cur.Key }

// Next returns the next value of the current group. ok is false when the
// group is exhausted.
func (v *Values[K, V]) Next() (val V, ok bool) {
	if v.done || v.err != nil {
		var zero V
		return zero, false
	}
	if v.hasCur && !v.started {
		// First record of the group was pre-fetched by the engine.
		v.started = true
		atomic.AddInt64(v.consumed, 1)
		return v.cur.Value, true
	}
	prev := v.cur
	p, ok2, err := v.stream.next()
	if err != nil {
		v.err = err
		var zero V
		return zero, false
	}
	if !ok2 {
		v.hasCur = false
		v.done = true
		var zero V
		return zero, false
	}
	if !v.group(prev.Key, p.Key) {
		// First record of the next group: stash it for the engine.
		v.cur = p
		v.started = false
		v.done = true
		return val, false
	}
	v.cur = p
	atomic.AddInt64(v.consumed, 1)
	return p.Value, true
}

// drain advances past any records of the current group the reducer did not
// consume, leaving the iterator positioned at the first record of the next
// group (or at end of data). It returns whether another group exists.
func (v *Values[K, V]) drain() (more bool, err error) {
	if v.err != nil {
		return false, v.err
	}
	if v.done {
		// Either end of data (hasCur == false) or the next group's head is
		// already stashed in cur.
		v.done = false
		if v.hasCur {
			v.groupKey = v.cur.Key
		}
		return v.hasCur, nil
	}
	prev := v.cur
	for {
		p, ok, err := v.stream.next()
		if err != nil {
			v.err = err
			return false, err
		}
		if !ok {
			v.hasCur = false
			return false, nil
		}
		if !v.group(prev.Key, p.Key) {
			v.cur = p
			v.groupKey = p.Key
			v.hasCur = true
			v.started = false
			return true, nil
		}
		prev = p
	}
}

// ValuesFromPairs returns a Values iterator over an already-sorted pair
// slice, positioned on its first group (more reports whether one exists).
// It exists so reduce implementations can be unit-tested and benchmarked
// against in-memory data without running a full job; the engine builds its
// iterators internally.
func ValuesFromPairs[K, V any](pairs []Pair[K, V], group func(a, b K) bool) (v *Values[K, V], more bool, err error) {
	if group == nil {
		group = func(a, b K) bool { return false }
	}
	v = &Values[K, V]{
		stream:   &memStream[K, V]{pairs: pairs},
		group:    group,
		consumed: NewCounters().cell(CounterValuesConsumed),
	}
	more, err = v.prime()
	return v, more, err
}

// prime loads the first record of the partition. It returns whether any
// record exists.
func (v *Values[K, V]) prime() (bool, error) {
	p, ok, err := v.stream.next()
	if err != nil {
		v.err = err
		return false, err
	}
	if !ok {
		return false, nil
	}
	v.cur = p
	v.groupKey = p.Key
	v.hasCur = true
	v.started = false
	return true, nil
}
