package mapreduce

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spq/internal/dfs"
)

// Two map tasks failing concurrently must both appear in one aggregated
// JobError, not first-error-wins.
func TestJobErrorAggregatesConcurrentTaskFailures(t *testing.T) {
	job := wordCountJob([]string{"a b", "c d"}, 2)
	job.Source = NewMemorySource([]string{"a b", "c d"}, 2) // 2 splits -> 2 map tasks
	job.MaxAttempts = 1
	job.RetryBackoff = -1
	// Barrier: both map attempts must have started before either fails, so
	// neither slot can observe the other's failure and skip its task.
	var barrier sync.WaitGroup
	barrier.Add(2)
	job.FaultInjector = func(kind TaskKind, taskID, attempt int) error {
		if kind != MapTask {
			return nil
		}
		barrier.Done()
		barrier.Wait()
		return fmt.Errorf("injected failure for map %d", taskID)
	}
	_, err := Run(NewCluster(nil, 2, 1), job)
	if err == nil {
		t.Fatal("job succeeded despite injected failures")
	}
	var je *JobError
	if !errors.As(err, &je) {
		t.Fatalf("err = %T (%v), want *JobError", err, err)
	}
	if len(je.Tasks) != 2 {
		t.Fatalf("JobError aggregates %d task(s), want 2: %v", len(je.Tasks), err)
	}
	if je.Tasks[0].Task != 0 || je.Tasks[1].Task != 1 {
		t.Errorf("task failures not sorted by id: %v", err)
	}
	if !errors.Is(err, ErrTooManyFailures) {
		t.Errorf("aggregated error does not unwrap to ErrTooManyFailures: %v", err)
	}
	msg := err.Error()
	if !strings.Contains(msg, "map task 0") || !strings.Contains(msg, "map task 1") {
		t.Errorf("aggregated message names only some tasks: %q", msg)
	}
}

// A Permanent error must fail the task on its first attempt without
// consuming the retry budget and without claiming exhaustion.
func TestPermanentErrorFailsFast(t *testing.T) {
	job := wordCountJob([]string{"a b c"}, 1)
	job.MaxAttempts = 5
	job.RetryBackoff = -1
	var attempts atomic.Int64
	job.FaultInjector = func(kind TaskKind, taskID, attempt int) error {
		if kind == MapTask {
			attempts.Add(1)
			return Permanent(errors.New("deterministic bug"))
		}
		return nil
	}
	_, err := Run(NewCluster(nil, 1, 1), job)
	if err == nil {
		t.Fatal("job succeeded despite permanent failure")
	}
	if got := attempts.Load(); got != 1 {
		t.Errorf("task ran %d attempts, want 1 (permanent errors must not retry)", got)
	}
	var te *TaskError
	if !errors.As(err, &te) {
		t.Fatalf("err = %T, want to unwrap to *TaskError", err)
	}
	if te.Exhausted {
		t.Error("permanent failure reported as retry exhaustion")
	}
	if errors.Is(err, ErrTooManyFailures) {
		t.Error("permanent failure unwraps to ErrTooManyFailures")
	}
	if !strings.Contains(err.Error(), "not retryable") {
		t.Errorf("message does not mark the failure permanent: %q", err)
	}
}

// A malformed input line is a deterministic job bug: the task must fail
// fast instead of re-parsing the same bad line MaxAttempts times.
func TestParseErrorIsPermanent(t *testing.T) {
	fsys := dfs.New(dfs.Config{NumNodes: 2, BlockSize: 64, Seed: 1})
	if err := fsys.Create("in.txt", []byte("1\n2\nnot-a-number\n")); err != nil {
		t.Fatal(err)
	}
	var attempts atomic.Int64
	job := &Job[int, string, int, string]{
		Name: "parse",
		Source: NewTextInput(fsys, func(line []byte) (int, error) {
			var n int
			if _, err := fmt.Sscan(string(line), &n); err != nil {
				return 0, fmt.Errorf("bad line %q: %w", line, err)
			}
			return n, nil
		}, "in.txt"),
		NumReducers: 1,
		MaxAttempts: 4,
		Map: func(ctx *TaskContext, rec int, emit func(string, int)) error {
			attempts.Add(1)
			return nil
		},
		Partition: func(k string, r int) int { return 0 },
		Less:      func(a, b string) bool { return a < b },
		Reduce: func(ctx *TaskContext, values *Values[string, int], emit func(string)) error {
			return nil
		},
	}
	_, err := Run(NewCluster(fsys, 1, 1), job)
	if err == nil {
		t.Fatal("job succeeded despite malformed input")
	}
	var te *TaskError
	if !errors.As(err, &te) {
		t.Fatalf("err = %T, want *TaskError in chain", err)
	}
	if te.Attempts != 1 || te.Exhausted {
		t.Errorf("parse failure retried: attempts=%d exhausted=%v", te.Attempts, te.Exhausted)
	}
	if !strings.Contains(err.Error(), "not-a-number") {
		t.Errorf("error does not name the bad line: %q", err)
	}
}

// Transient failures must retry with metered backoff and still produce the
// exact result, with the spq.retry.* counters recording the activity.
func TestRetryBackoffCounters(t *testing.T) {
	job := wordCountJob([]string{"a b c", "a"}, 2)
	job.MaxAttempts = 3
	job.RetryBackoff = 200 * time.Microsecond
	var failures atomic.Int64
	job.FaultInjector = func(kind TaskKind, taskID, attempt int) error {
		if kind == MapTask && taskID == 0 && attempt <= 2 {
			failures.Add(1)
			return errors.New("transient hiccup")
		}
		return nil
	}
	res, err := Run(NewCluster(nil, 2, 2), job)
	if err != nil {
		t.Fatal(err)
	}
	if failures.Load() != 2 {
		t.Fatalf("injector fired %d times, want 2", failures.Load())
	}
	if got := res.Counters[CounterRetryMap]; got != 2 {
		t.Errorf("%s = %d, want 2", CounterRetryMap, got)
	}
	if got := res.Counters[CounterRetryBackoffMicros]; got < 400 {
		t.Errorf("%s = %d, want >= 400 (two backoffs of >= 200us)", CounterRetryBackoffMicros, got)
	}
	if got := res.Counters[CounterTaskRetries]; got != 2 {
		t.Errorf("%s = %d, want 2", CounterTaskRetries, got)
	}
	got := map[string]bool{}
	for _, o := range res.Output {
		got[o] = true
	}
	for _, want := range []string{"a=2", "b=1", "c=1"} {
		if !got[want] {
			t.Errorf("output missing %q after retries: %v", want, res.Output)
		}
	}
}

// retryDelay must double per retry and respect the cap and the disable
// switch.
func TestRetryDelayShape(t *testing.T) {
	if d := retryDelay(-1, 1); d != 0 {
		t.Errorf("negative base: delay = %v, want 0", d)
	}
	if d := retryDelay(0, 1); d != defaultRetryBackoff {
		t.Errorf("zero base first retry = %v, want default %v", d, defaultRetryBackoff)
	}
	base := 2 * time.Millisecond
	if d := retryDelay(base, 2); d != 4*time.Millisecond {
		t.Errorf("second retry = %v, want doubled base", d)
	}
	if d := retryDelay(base, 60); d != maxRetryBackoff {
		t.Errorf("huge retry count = %v, want cap %v", d, maxRetryBackoff)
	}
}
