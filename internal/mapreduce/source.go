package mapreduce

import (
	"fmt"

	"spq/internal/dfs"
)

// Source provides input records, pre-divided into splits that map tasks
// process independently.
type Source[I any] interface {
	// Splits enumerates the input splits of the source.
	Splits() ([]SourceSplit[I], error)
}

// SourceSplit is one unit of map input.
type SourceSplit[I any] interface {
	// Hosts returns the nodes holding the split's data, for locality-aware
	// scheduling. May be empty.
	Hosts() []string
	// Each calls yield for every record of the split, stopping early if
	// yield returns false.
	Each(yield func(rec I) bool) error
}

// TextInput reads newline-delimited records from files stored in the
// simulated DFS, producing one split per file block with the block's
// replica locations as preferred hosts. Lines are handed to the parser
// to produce typed records; a nil Parse yields the raw line as a string
// (only valid when I is string — enforced at construction by the typed
// helpers below).
type TextInput[I any] struct {
	FS    *dfs.FileSystem
	Files []string
	// Parse converts one line into a record. Returning an error aborts the
	// task (and triggers retry, which will deterministically fail again —
	// malformed input is a job bug, not a transient fault).
	Parse func(line []byte) (I, error)
}

// NewTextInput constructs a TextInput over the given files.
func NewTextInput[I any](fs *dfs.FileSystem, parse func(line []byte) (I, error), files ...string) *TextInput[I] {
	return &TextInput[I]{FS: fs, Files: files, Parse: parse}
}

// Splits implements Source.
func (t *TextInput[I]) Splits() ([]SourceSplit[I], error) {
	var out []SourceSplit[I]
	for _, f := range t.Files {
		splits, err := t.FS.Splits(f)
		if err != nil {
			return nil, fmt.Errorf("mapreduce: input %s: %w", f, err)
		}
		for _, s := range splits {
			out = append(out, &textSplit[I]{fs: t.FS, split: s, parse: t.Parse})
		}
	}
	return out, nil
}

type textSplit[I any] struct {
	fs    *dfs.FileSystem
	split dfs.Split
	parse func(line []byte) (I, error)
}

func (s *textSplit[I]) Hosts() []string { return s.split.Hosts }

func (s *textSplit[I]) Each(yield func(I) bool) error {
	var parseErr error
	err := s.fs.SplitLines(s.split, func(line []byte) bool {
		rec, err := s.parse(line)
		if err != nil {
			parseErr = fmt.Errorf("mapreduce: %v: %w", s.split, err)
			return false
		}
		return yield(rec)
	})
	if err != nil {
		return err
	}
	return parseErr
}

// MemorySource serves records from in-memory slices, one split per slice.
// It is the lightweight source used by unit tests and by callers that
// already hold their data in memory.
type MemorySource[I any] struct {
	Chunks [][]I
}

// NewMemorySource splits recs into numSplits contiguous chunks.
func NewMemorySource[I any](recs []I, numSplits int) *MemorySource[I] {
	if numSplits <= 0 {
		numSplits = 1
	}
	if numSplits > len(recs) && len(recs) > 0 {
		numSplits = len(recs)
	}
	src := &MemorySource[I]{}
	if len(recs) == 0 {
		return src
	}
	chunk := (len(recs) + numSplits - 1) / numSplits
	for lo := 0; lo < len(recs); lo += chunk {
		hi := lo + chunk
		if hi > len(recs) {
			hi = len(recs)
		}
		src.Chunks = append(src.Chunks, recs[lo:hi])
	}
	return src
}

// Splits implements Source.
func (m *MemorySource[I]) Splits() ([]SourceSplit[I], error) {
	out := make([]SourceSplit[I], len(m.Chunks))
	for i, c := range m.Chunks {
		out[i] = memorySplit[I](c)
	}
	return out, nil
}

type memorySplit[I any] []I

func (s memorySplit[I]) Hosts() []string { return nil }

func (s memorySplit[I]) Each(yield func(I) bool) error {
	for _, rec := range s {
		if !yield(rec) {
			return nil
		}
	}
	return nil
}
