package mapreduce

import (
	"fmt"

	"spq/internal/dfs"
)

// Source provides input records, pre-divided into splits that map tasks
// process independently.
type Source[I any] interface {
	// Splits enumerates the input splits of the source.
	Splits() ([]SourceSplit[I], error)
}

// SourceSplit is one unit of map input.
type SourceSplit[I any] interface {
	// Hosts returns the nodes holding the split's data, for locality-aware
	// scheduling. May be empty.
	Hosts() []string
	// Each calls yield for every record of the split, stopping early if
	// yield returns false.
	Each(yield func(rec I) bool) error
}

// TextInput reads newline-delimited records from files stored in the
// simulated DFS, producing one split per file block with the block's
// replica locations as preferred hosts. Lines are handed to the parser
// to produce typed records; a nil Parse yields the raw line as a string
// (only valid when I is string — enforced at construction by the typed
// helpers below).
type TextInput[I any] struct {
	FS    *dfs.FileSystem
	Files []string
	// Parse converts one line into a record. Returning an error aborts the
	// task as Permanent — malformed input is a job bug, not a transient
	// fault, so the attempt is not retried.
	Parse func(line []byte) (I, error)
}

// NewTextInput constructs a TextInput over the given files.
func NewTextInput[I any](fs *dfs.FileSystem, parse func(line []byte) (I, error), files ...string) *TextInput[I] {
	return &TextInput[I]{FS: fs, Files: files, Parse: parse}
}

// Splits implements Source.
func (t *TextInput[I]) Splits() ([]SourceSplit[I], error) {
	var out []SourceSplit[I]
	for _, f := range t.Files {
		splits, err := t.FS.Splits(f)
		if err != nil {
			return nil, fmt.Errorf("mapreduce: input %s: %w", f, err)
		}
		for _, s := range splits {
			out = append(out, &textSplit[I]{fs: t.FS, split: s, parse: t.Parse})
		}
	}
	return out, nil
}

type textSplit[I any] struct {
	fs    *dfs.FileSystem
	split dfs.Split
	parse func(line []byte) (I, error)
}

func (s *textSplit[I]) Hosts() []string { return s.split.Hosts }

// Size implements SizedSplit.
func (s *textSplit[I]) Size() int64 { return int64(s.split.Length) }

// SplitRef implements RefSplit: a text split is fully described by its
// file byte range (the parser is reconstructed job-side from the wire
// spec).
func (s *textSplit[I]) SplitRef() (*SplitRef, error) {
	return &SplitRef{Kind: "text", File: s.split.File, Offset: s.split.Offset, Length: int64(s.split.Length)}, nil
}

// OpenTextSplit re-opens a "text" split reference against fs (typically a
// worker's local mirror of the master file). The line-boundary convention
// is identical to the original split's, so the reference yields exactly
// the same records.
func OpenTextSplit[I any](fs *dfs.FileSystem, ref *SplitRef, parse func(line []byte) (I, error)) SourceSplit[I] {
	return &textSplit[I]{fs: fs, split: dfs.Split{File: ref.File, Offset: ref.Offset, Length: int(ref.Length)}, parse: parse}
}

func (s *textSplit[I]) Each(yield func(I) bool) error {
	var parseErr error
	err := s.fs.SplitLines(s.split, func(line []byte) bool {
		rec, err := s.parse(line)
		if err != nil {
			parseErr = Permanent(fmt.Errorf("mapreduce: %v: %w", s.split, err))
			return false
		}
		return yield(rec)
	})
	if err != nil {
		return err
	}
	return parseErr
}

// SizedSplit is optionally implemented by splits that know their payload
// size; Coalesce uses it to balance grouped splits by bytes rather than
// by count.
type SizedSplit interface {
	// Size returns the split's payload size in bytes.
	Size() int64
}

// CountedSplit is optionally implemented by splits that know how many
// records they will yield; the engine uses it to presize map-side
// partition buffers.
type CountedSplit interface {
	// Records returns the number of records the split yields.
	Records() int
}

// Coalesce wraps a source so that it yields at most target splits,
// grouping consecutive small splits into one map-task unit. Partitioned
// storage produces one file (hence at least one split) per seal-grid
// cell; without coalescing every query would schedule a map task per
// tiny cell file and per-task overhead would dominate. Groups are
// balanced by payload size when the splits report one (SizedSplit), so a
// few heavy cell files don't land in a single map task on skewed data.
func Coalesce[I any](src Source[I], target int) Source[I] {
	return &coalescedSource[I]{src: src, target: target}
}

type coalescedSource[I any] struct {
	src    Source[I]
	target int
}

// splitSize returns the split's payload size, or 1 (count weighting) when
// the split does not report one.
func splitSize[I any](s SourceSplit[I]) int64 {
	if sized, ok := s.(SizedSplit); ok {
		if n := sized.Size(); n > 0 {
			return n
		}
	}
	return 1
}

// Splits implements Source.
func (c *coalescedSource[I]) Splits() ([]SourceSplit[I], error) {
	splits, err := c.src.Splits()
	if err != nil {
		return nil, err
	}
	target := c.target
	if target < 1 {
		target = 1
	}
	if len(splits) <= target {
		return splits, nil
	}
	var total int64
	for _, s := range splits {
		total += splitSize(s)
	}
	// Greedily pack consecutive splits up to the per-group size budget,
	// never exceeding target groups: once only (target - groups) groups
	// remain for the rest, close the current one regardless of fill.
	budget := (total + int64(target) - 1) / int64(target)
	out := make([]SourceSplit[I], 0, target)
	lo, fill := 0, int64(0)
	for i, s := range splits {
		fill += splitSize(s)
		// Close the group once its budget is met — unless it is the last
		// allowed group, which absorbs everything remaining.
		if fill >= budget && len(out) < target-1 {
			out = append(out, groupedSplit[I](splits[lo:i+1]))
			lo, fill = i+1, 0
		}
	}
	if lo < len(splits) {
		out = append(out, groupedSplit[I](splits[lo:]))
	}
	return out, nil
}

// groupedSplit runs its member splits sequentially as one map input.
type groupedSplit[I any] []SourceSplit[I]

// Hosts returns the union of the members' replica hosts: a task is
// (partially) local on any node holding any member.
func (g groupedSplit[I]) Hosts() []string {
	var out []string
	seen := make(map[string]bool)
	for _, s := range g {
		for _, h := range s.Hosts() {
			if !seen[h] {
				seen[h] = true
				out = append(out, h)
			}
		}
	}
	return out
}

// Records implements CountedSplit when every member knows its count;
// otherwise it returns 0 (no estimate).
func (g groupedSplit[I]) Records() int {
	n := 0
	for _, s := range g {
		cs, ok := s.(CountedSplit)
		if !ok {
			return 0
		}
		n += cs.Records()
	}
	return n
}

// SplitRef implements RefSplit when every member does: the group ships as
// the ordered list of its members' references.
func (g groupedSplit[I]) SplitRef() (*SplitRef, error) {
	out := &SplitRef{Kind: "group", Group: make([]SplitRef, 0, len(g))}
	for _, s := range g {
		rs, ok := s.(RefSplit)
		if !ok {
			return nil, fmt.Errorf("mapreduce: grouped split member %T has no reference form", s)
		}
		ref, err := rs.SplitRef()
		if err != nil {
			return nil, err
		}
		out.Group = append(out.Group, *ref)
	}
	return out, nil
}

// OpenGroupSplit re-opens a "group" reference by opening every member
// through open and running them sequentially as one map input, exactly
// like the coalesced split it references.
func OpenGroupSplit[I any](ref *SplitRef, open func(ref *SplitRef) (SourceSplit[I], error)) (SourceSplit[I], error) {
	g := make(groupedSplit[I], 0, len(ref.Group))
	for i := range ref.Group {
		s, err := open(&ref.Group[i])
		if err != nil {
			return nil, err
		}
		g = append(g, s)
	}
	return g, nil
}

func (g groupedSplit[I]) Each(yield func(I) bool) error {
	for _, s := range g {
		stopped := false
		err := s.Each(func(rec I) bool {
			ok := yield(rec)
			if !ok {
				stopped = true
			}
			return ok
		})
		if err != nil {
			return err
		}
		if stopped {
			return nil
		}
	}
	return nil
}

// Concat returns a source yielding the splits of every given source in
// order. It lets one job read heterogeneous storage generations — e.g.
// sealed DFS cell files plus an in-memory delta of freshly appended
// records — as a single input. Nil sources are skipped.
func Concat[I any](sources ...Source[I]) Source[I] {
	return concatSource[I](sources)
}

type concatSource[I any] []Source[I]

// Splits implements Source.
func (c concatSource[I]) Splits() ([]SourceSplit[I], error) {
	var out []SourceSplit[I]
	for _, src := range c {
		if src == nil {
			continue
		}
		splits, err := src.Splits()
		if err != nil {
			return nil, err
		}
		out = append(out, splits...)
	}
	return out, nil
}

// MemorySource serves records from in-memory slices, one split per slice.
// It is the lightweight source used by unit tests and by callers that
// already hold their data in memory.
type MemorySource[I any] struct {
	Chunks [][]I
}

// NewMemorySource splits recs into numSplits contiguous chunks.
func NewMemorySource[I any](recs []I, numSplits int) *MemorySource[I] {
	if numSplits <= 0 {
		numSplits = 1
	}
	if numSplits > len(recs) && len(recs) > 0 {
		numSplits = len(recs)
	}
	src := &MemorySource[I]{}
	if len(recs) == 0 {
		return src
	}
	chunk := (len(recs) + numSplits - 1) / numSplits
	for lo := 0; lo < len(recs); lo += chunk {
		hi := lo + chunk
		if hi > len(recs) {
			hi = len(recs)
		}
		src.Chunks = append(src.Chunks, recs[lo:hi])
	}
	return src
}

// Splits implements Source.
func (m *MemorySource[I]) Splits() ([]SourceSplit[I], error) {
	out := make([]SourceSplit[I], len(m.Chunks))
	for i, c := range m.Chunks {
		out[i] = memorySplit[I](c)
	}
	return out, nil
}

type memorySplit[I any] []I

func (s memorySplit[I]) Hosts() []string { return nil }

// Records implements CountedSplit.
func (s memorySplit[I]) Records() int { return len(s) }

func (s memorySplit[I]) Each(yield func(I) bool) error {
	for _, rec := range s {
		if !yield(rec) {
			return nil
		}
	}
	return nil
}
