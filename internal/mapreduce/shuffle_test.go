package mapreduce

import (
	"bufio"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// shuffleKey is a composite key with a unique secondary component, so the
// fully sorted record order — and therefore the reduce output — is
// deterministic regardless of how map tasks chunk and publish it.
type shuffleKey struct {
	Group int32
	Seq   int32
}

func shuffleKeyLess(a, b shuffleKey) bool {
	if a.Group != b.Group {
		return a.Group < b.Group
	}
	return a.Seq < b.Seq
}

func shuffleJob(recs []int32, groups, reducers, spillEvery int) *Job[int32, shuffleKey, int32, string] {
	return &Job[int32, shuffleKey, int32, string]{
		Name:        "shuffle-equivalence",
		Source:      NewMemorySource(recs, 7),
		NumReducers: reducers,
		Map: func(ctx *TaskContext, rec int32, emit func(shuffleKey, int32)) error {
			emit(shuffleKey{Group: rec % int32(groups), Seq: rec}, rec*3)
			return nil
		},
		Partition:  func(k shuffleKey, r int) int { return int(k.Group) % r },
		Less:       shuffleKeyLess,
		GroupEqual: func(a, b shuffleKey) bool { return a.Group == b.Group },
		Reduce: func(ctx *TaskContext, values *Values[shuffleKey, int32], emit func(string)) error {
			out := fmt.Sprintf("g%d:", values.GroupKey().Group)
			for {
				v, ok := values.Next()
				if !ok {
					break
				}
				out += fmt.Sprintf("%d,", v)
			}
			emit(out)
			return nil
		},
		KeyCodec: &Codec[shuffleKey]{
			Encode: func(w *bufio.Writer, k shuffleKey) error {
				_, err := fmt.Fprintf(w, "%d %d ", k.Group, k.Seq)
				return err
			},
			Decode: func(r *bufio.Reader) (shuffleKey, error) {
				var k shuffleKey
				_, err := fmt.Fscanf(r, "%d %d ", &k.Group, &k.Seq)
				return k, err
			},
		},
		ValueCodec: &Codec[int32]{
			Encode: func(w *bufio.Writer, v int32) error {
				_, err := fmt.Fprintf(w, "%d ", v)
				return err
			},
			Decode: func(r *bufio.Reader) (int32, error) {
				var v int32
				_, err := fmt.Fscanf(r, "%d ", &v)
				return v, err
			},
		},
		SpillEvery: spillEvery,
	}
}

// TestShuffleEquivalence is the shuffle-architecture property test: the
// map-side sorted-chunk publish path and the per-reduce k-way merge must
// produce identical job output across every combination of map-slot count
// and spill configuration, because the merged stream each reduce task sees
// is the same fully sorted sequence however it was chunked.
func TestShuffleEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	recs := make([]int32, 3000)
	for i := range recs {
		recs[i] = int32(rng.Intn(1 << 20))
	}

	var want []string
	for _, mapSlots := range []int{1, 4} {
		for _, spillEvery := range []int{0, 64} {
			name := fmt.Sprintf("maps=%d/spill=%d", mapSlots, spillEvery)
			c := NewCluster(nil, mapSlots, 3)
			res, err := Run(c, shuffleJob(recs, 17, 5, spillEvery))
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			// Reduce-task output order is fixed (task order), so the
			// concatenated output must match byte for byte.
			if want == nil {
				want = res.Output
				continue
			}
			if !reflect.DeepEqual(res.Output, want) {
				t.Errorf("%s: output diverged\n got: %v\nwant: %v", name, res.Output, want)
			}
		}
	}
}

// TestMapSideSortPublishesSortedChunks pins the new publish path: with
// several map tasks and no spilling, partitions receive multiple
// independently sorted chunks (counted by shuffle.chunks), and the merged
// stream the reducers consume is still globally sorted — which the
// deterministic reduce output of TestShuffleEquivalence verifies, and the
// chunk counter makes observable here.
func TestMapSideSortPublishesSortedChunks(t *testing.T) {
	recs := make([]int32, 500)
	for i := range recs {
		recs[i] = int32((i * 7919) % 1000)
	}
	c := NewCluster(nil, 4, 2)
	res, err := Run(c, shuffleJob(recs, 5, 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Counters[CounterShuffleChunks]; got < 2 {
		t.Errorf("shuffle.chunks = %d, want >= 2 (one sorted chunk per map task and partition)", got)
	}
	// Each reduce group's payload must come out in key order: values were
	// emitted as rec*3 and keys sort by Seq=rec, so the per-group value
	// list must be ascending.
	for _, out := range res.Output {
		var group int32
		var vals []int
		var v int
		rest := out
		if _, err := fmt.Sscanf(rest, "g%d:", &group); err != nil {
			t.Fatalf("bad output %q", out)
		}
		for i := indexByte(rest, ':') + 1; i < len(rest); {
			n, err := fmt.Sscanf(rest[i:], "%d,", &v)
			if n != 1 || err != nil {
				break
			}
			vals = append(vals, v)
			i += indexByte(rest[i:], ',') + 1
		}
		if !sort.IntsAreSorted(vals) {
			t.Errorf("group %d values not in key order: %v", group, vals)
		}
	}
}

// TestSkewedPartitionSealsChunks pins the fixed-capacity chunk publish
// path: when one partition receives far more than the per-partition
// estimate (records/reducers), the map task seals and publishes multiple
// sorted chunks for it instead of growing one flat buffer — and the
// merged reduce output is still the fully sorted record sequence.
func TestSkewedPartitionSealsChunks(t *testing.T) {
	recs := make([]int32, 4000)
	for i := range recs {
		recs[i] = int32((i * 31) % (1 << 16))
	}
	job := shuffleJob(recs, 1, 4, 0) // one group: every record hits partition 0
	c := NewCluster(nil, 1, 2)
	res, err := Run(c, job)
	if err != nil {
		t.Fatal(err)
	}
	// One map task, 4000 records into one partition, chunkCap = 4000/4+1:
	// at least 3 full chunks plus the remainder.
	if got := res.Counters[CounterShuffleChunks]; got < 4 {
		t.Errorf("shuffle.chunks = %d, want >= 4 (sealed chunks from one skewed task)", got)
	}
	if len(res.Output) != 1 {
		t.Fatalf("output groups = %d, want 1", len(res.Output))
	}
	var vals []int
	rest := res.Output[0]
	for i := indexByte(rest, ':') + 1; i < len(rest); {
		var v int
		if n, err := fmt.Sscanf(rest[i:], "%d,", &v); n != 1 || err != nil {
			break
		}
		vals = append(vals, v)
		i += indexByte(rest[i:], ',') + 1
	}
	if len(vals) != len(recs) {
		t.Fatalf("reduce saw %d values, want %d", len(vals), len(recs))
	}
	if !sort.IntsAreSorted(vals) {
		t.Error("merged values not in key order across sealed chunks")
	}
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return len(s)
}

// BenchmarkShuffle exercises the sort-shuffle-merge pipeline end to end:
// an identity map over random composite keys, grouped reduce that drains
// every value. The slots sub-benchmarks expose the parallel speedup of
// the map-side sort; spill adds the external-run merge.
func BenchmarkShuffle(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	recs := make([]int32, 200000)
	for i := range recs {
		recs[i] = int32(rng.Intn(1 << 28))
	}
	for _, cfg := range []struct {
		name       string
		slots      int
		spillEvery int
	}{
		{"slots=1", 1, 0},
		{"slots=4", 4, 0},
		{"slots=4/spill=8192", 4, 8192},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			c := NewCluster(nil, cfg.slots, cfg.slots)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Run(c, shuffleJob(recs, 64, 16, cfg.spillEvery)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
