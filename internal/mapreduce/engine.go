package mapreduce

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"spq/internal/dfs"
)

// Cluster describes the execution resources of a simulated cluster: the
// distributed file system whose nodes host the data, and the number of
// concurrent map and reduce slots. With fewer slots than tasks, tasks run
// in waves, exactly like an overcommitted Hadoop cluster (see the footnote
// in Section 6.3 of the paper).
type Cluster struct {
	// FS is the storage layer. It may be nil when all job sources are
	// in-memory; locality scheduling then degrades gracefully.
	FS *dfs.FileSystem
	// MapSlots and ReduceSlots bound task concurrency (default 1 each).
	// The bound holds across ALL jobs running on this cluster: concurrent
	// jobs draw their tasks from one shared admission-controlled slot pool
	// per phase (see admission.go) instead of each assuming it owns every
	// slot. Pool capacity is frozen at the first job; mutate the slot
	// counts before running anything.
	MapSlots    int
	ReduceSlots int

	poolsOnce           sync.Once
	mapPool, reducePool *slotPool
}

// NewCluster returns a cluster with slots spread across the nodes of fs.
func NewCluster(fs *dfs.FileSystem, mapSlots, reduceSlots int) *Cluster {
	return &Cluster{FS: fs, MapSlots: mapSlots, ReduceSlots: reduceSlots}
}

func (c *Cluster) mapSlots() int {
	if c.MapSlots <= 0 {
		return 1
	}
	return c.MapSlots
}

func (c *Cluster) reduceSlots() int {
	if c.ReduceSlots <= 0 {
		return 1
	}
	return c.ReduceSlots
}

// slotNode maps a slot index to the DataNode hosting it (round-robin).
func (c *Cluster) slotNode(slot int) string {
	if c.FS == nil || c.FS.NumNodes() == 0 {
		return fmt.Sprintf("slot-%d", slot)
	}
	return c.FS.NodeName(slot % c.FS.NumNodes())
}

// Stats summarizes one job execution.
type Stats struct {
	Job            string
	MapTasks       int
	ReduceTasks    int
	Duration       time.Duration
	MapDuration    time.Duration
	ReduceDuration time.Duration
}

// Result is the outcome of a job: the concatenated reduce outputs (in
// reduce-task order), the job counters and timing statistics.
type Result[O any] struct {
	Output   []O
	Counters map[string]int64
	Stats    Stats
}

// partitionData accumulates the intermediate records routed to one reduce
// task. As in Hadoop's map-side sort-and-merge shuffle, order is
// established where the data is produced: every map task sorts its
// per-partition buffers before publishing, so a partition holds sorted
// chunks (one per publishing map task) plus spilled sorted runs, and the
// owning reduce task k-way-merges them. Nothing is ever sorted serially
// between the phases.
type partitionData[K, V any] struct {
	mu     sync.Mutex
	chunks [][]Pair[K, V]
	runs   []*spillRun
}

// Run executes the job on the cluster and returns its result. It is the
// entry point of the framework.
func Run[I, K, V, O any](c *Cluster, job *Job[I, K, V, O]) (*Result[O], error) {
	if err := job.validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	counters := NewCounters()
	r := job.NumReducers

	splits, err := job.Source.Splits()
	if err != nil {
		return nil, fmt.Errorf("mapreduce: job %q: %w", job.Name, err)
	}

	parts := make([]*partitionData[K, V], r)
	for i := range parts {
		parts[i] = &partitionData[K, V]{}
	}
	// Every spill run is removed when the job finishes, success or not.
	defer func() {
		for _, p := range parts {
			for _, run := range p.runs {
				os.Remove(run.path)
			}
		}
	}()

	mapStart := time.Now()
	if err := runMapPhase(c, job, splits, parts, counters); err != nil {
		return nil, err
	}
	mapDur := time.Since(mapStart)

	reduceStart := time.Now()
	output, err := runReducePhase(c, job, parts, counters)
	if err != nil {
		return nil, err
	}
	reduceDur := time.Since(reduceStart)

	return &Result[O]{
		Output:   output,
		Counters: counters.Snapshot(),
		Stats: Stats{
			Job:            job.Name,
			MapTasks:       len(splits),
			ReduceTasks:    r,
			Duration:       time.Since(start),
			MapDuration:    mapDur,
			ReduceDuration: reduceDur,
		},
	}, nil
}

// assignMapTasks distributes splits over slots, preferring slots whose node
// hosts a replica of the split (data-local scheduling). It returns the
// per-slot task lists and the number of data-local assignments.
func assignMapTasks[I any](c *Cluster, splits []SourceSplit[I]) (perSlot [][]int, local int) {
	slots := c.mapSlots()
	perSlot = make([][]int, slots)
	load := make([]int, slots)

	nodeSlots := make(map[string][]int)
	for s := 0; s < slots; s++ {
		n := c.slotNode(s)
		nodeSlots[n] = append(nodeSlots[n], s)
	}
	pick := func(candidates []int) int {
		best := -1
		for _, s := range candidates {
			if best == -1 || load[s] < load[best] {
				best = s
			}
		}
		return best
	}
	all := make([]int, slots)
	for i := range all {
		all[i] = i
	}
	for i, sp := range splits {
		var cands []int
		for _, h := range sp.Hosts() {
			cands = append(cands, nodeSlots[h]...)
		}
		slot := pick(cands)
		if slot >= 0 {
			local++
		} else {
			slot = pick(all)
		}
		perSlot[slot] = append(perSlot[slot], i)
		load[slot]++
	}
	return perSlot, local
}

// runTasks executes fn for every task id in perSlot, one goroutine per
// slot; a slot stops scheduling new tasks once any slot has failed. Each
// task is admitted through the cluster-shared pool before it runs: with a
// single job the pool has one token per goroutine and admission is
// immediate, while concurrent jobs interleave their tasks fairly.
// Admission outcomes are recorded in the job counters (spq.sched.*).
//
// Every task failure is collected (not just the first): concurrently
// running tasks finish their attempts even after another slot fails, and
// their failures all land in the returned slice so the caller can report
// one aggregated error.
func runTasks(perSlot [][]int, pool *slotPool, priority bool, counters *Counters, fn func(slot, task int) *TaskError) []*TaskError {
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		errs   []*TaskError
		failed atomic.Bool
	)
	for slot := range perSlot {
		if len(perSlot[slot]) == 0 {
			continue
		}
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			var sched schedStats
			defer sched.flush(counters)
			for _, task := range perSlot[slot] {
				if failed.Load() {
					return
				}
				waited, depth := pool.acquire(priority)
				sched.observe(waited, depth)
				if failed.Load() {
					// The job failed while this task queued for admission;
					// don't spend a shared slot on work whose output is
					// discarded.
					pool.release()
					return
				}
				err := fn(slot, task)
				pool.release()
				if err != nil {
					failed.Store(true)
					mu.Lock()
					errs = append(errs, err)
					mu.Unlock()
					return
				}
			}
		}(slot)
	}
	wg.Wait()
	return errs
}

// roundRobin spreads n tasks over k slots.
func roundRobin(n, k int) [][]int {
	perSlot := make([][]int, k)
	for i := 0; i < n; i++ {
		perSlot[i%k] = append(perSlot[i%k], i)
	}
	return perSlot
}

func maxAttempts[I, K, V, O any](job *Job[I, K, V, O]) int {
	if job.MaxAttempts <= 0 {
		return 1
	}
	return job.MaxAttempts
}

// defaultChunkCap is the map-side partition buffer capacity when the
// split's record count is unknown.
const defaultChunkCap = 4096

// slotState is the reusable attempt-local state of one worker slot: its
// tasks run sequentially, so one counter registry and one context serve
// every attempt, reset between attempts instead of reallocated. Counter
// deltas of a failed attempt are wiped by the next reset and merged into
// the job-global registry only on success, preserving the no-trace
// guarantee of failed attempts.
type slotState struct {
	local *Counters
	ctx   *TaskContext
}

// get lazily initializes the slot's state for the given task kind.
func (s *slotState) get(c *Cluster, kind TaskKind, slot int) (*Counters, *TaskContext) {
	if s.local == nil {
		s.local = NewCounters()
		s.ctx = newTaskContext(kind, 0, 1, c.slotNode(slot), s.local)
	}
	return s.local, s.ctx
}

// runMapPhase executes all map tasks and publishes their intermediate
// output into parts.
func runMapPhase[I, K, V, O any](c *Cluster, job *Job[I, K, V, O], splits []SourceSplit[I], parts []*partitionData[K, V], counters *Counters) error {
	perSlot, local := assignMapTasks(c, splits)
	counters.Add(CounterDataLocalMaps, int64(local))
	attempts := maxAttempts(job)
	r := job.NumReducers
	states := make([]slotState, len(perSlot))
	pool, _ := c.slotPools()

	errs := runTasks(perSlot, pool, job.Priority, counters, func(slot, task int) *TaskError {
		lc, ctx := states[slot].get(c, MapTask, slot)
		for attempt := 1; ; attempt++ {
			lc.reset()
			ctx.rebind(task, attempt)
			err := runMapAttempt(c, job, splits[task], parts, counters, lc, ctx, task, attempt, r)
			if err == nil {
				return nil
			}
			counters.Add(CounterTaskRetries, 1)
			if isPermanent(err) {
				return &TaskError{Job: job.Name, Kind: MapTask, Task: task, Attempts: attempt, Budget: attempts, Err: err}
			}
			if attempt >= attempts {
				return &TaskError{Job: job.Name, Kind: MapTask, Task: task, Attempts: attempt, Budget: attempts, Exhausted: true, Err: err}
			}
			counters.Add(CounterRetryMap, 1)
			backoff(job.RetryBackoff, attempt, counters)
		}
	})
	if len(errs) > 0 {
		return newJobError(job.Name, MapTask, errs)
	}
	return nil
}

// backoff sleeps the capped exponential delay before retry number
// failed+1 and meters the time slept.
func backoff(base time.Duration, failed int, counters *Counters) {
	if d := retryDelay(base, failed); d > 0 {
		counters.Add(CounterRetryBackoffMicros, d.Microseconds())
		time.Sleep(d)
	}
}

// runMapAttempt runs one attempt of one map task. All side effects (counter
// deltas, buffered records, spill runs) are kept attempt-local and
// published only on success, so a failed attempt leaves no trace.
func runMapAttempt[I, K, V, O any](c *Cluster, job *Job[I, K, V, O], split SourceSplit[I], parts []*partitionData[K, V], counters, local *Counters, ctx *TaskContext, task, attempt, r int) (err error) {
	if job.FaultInjector != nil {
		if ferr := job.FaultInjector(MapTask, task, attempt); ferr != nil {
			return ferr
		}
	}
	cmp := job.compare()
	buffers := make([][]Pair[K, V], r)
	// Partition buffers are fixed-capacity chunks sized from the split's
	// record count when it is known. A full chunk is sorted on the spot and
	// set aside, and a fresh buffer is allocated — growth never copies. On
	// skewed key distributions (clustered data) a single partition can
	// receive many times the per-partition estimate, and doubling one flat
	// buffer would spend the map phase in growslice.
	chunkCap := defaultChunkCap
	if cs, ok := split.(CountedSplit); ok {
		if n := cs.Records(); n > 0 {
			chunkCap = n/r + 1
		}
	}
	var sealed [][][]Pair[K, V] // per-partition full chunks, attempt-local
	var runs [][]*spillRun      // per-partition runs created by this attempt
	if job.SpillEvery > 0 {
		runs = make([][]*spillRun, r)
	} else {
		sealed = make([][][]Pair[K, V], r)
	}
	// Attempt-local cleanup of spill files on failure.
	defer func() {
		if err != nil {
			for _, rs := range runs {
				for _, run := range rs {
					os.Remove(run.path)
				}
			}
		}
	}()

	buffered := 0
	spill := func() error {
		rs, parts, werr := writeSpill(buffers, cmp, job.KeyCodec, job.ValueCodec)
		if werr != nil {
			return werr
		}
		for i, run := range rs {
			run := run
			p := parts[i]
			runs[p] = append(runs[p], &run)
			local.Add(CounterSpillRuns, 1)
			local.Add(CounterSpilledRecords, int64(run.records))
			local.Add(CounterShuffleBytes, run.length)
			buffers[p] = nil
		}
		buffered = 0
		return nil
	}

	// recIn/recOut are batched per attempt: one atomic flush instead of
	// one atomic add per record and per emission, which profiles as real
	// time at ~100k records per query.
	var recIn, recOut int64
	var emitErr error
	emit := func(k K, v V) {
		p := job.Partition(k, r)
		if p < 0 || p >= r {
			if emitErr == nil {
				// A broken partitioner fails identically on every attempt.
				emitErr = Permanent(fmt.Errorf("mapreduce: job %q: Partition returned %d for %d reducers", job.Name, p, r))
			}
			return
		}
		buf := buffers[p]
		if buf == nil {
			buf = make([]Pair[K, V], 0, chunkCap)
		}
		buf = append(buf, Pair[K, V]{Key: k, Value: v})
		buffers[p] = buf
		recOut++
		buffered++
		if job.SpillEvery > 0 {
			if buffered >= job.SpillEvery {
				if serr := spill(); serr != nil && emitErr == nil {
					emitErr = serr
				}
			}
		} else if len(buf) == cap(buf) {
			// Chunk full: sort it now (spreading the sort across the map
			// phase) but publish only on attempt success, so a failed
			// attempt still leaves no trace.
			sortPairs(buf, cmp)
			sealed[p] = append(sealed[p], buf)
			buffers[p] = nil
		}
	}

	var mapErr error
	eachErr := split.Each(func(rec I) bool {
		recIn++
		if merr := job.Map(ctx, rec, emit); merr != nil {
			mapErr = merr
			return false
		}
		return emitErr == nil
	})
	atomic.AddInt64(ctx.recIn, recIn)
	atomic.AddInt64(ctx.recOut, recOut)
	switch {
	case eachErr != nil:
		return eachErr
	case mapErr != nil:
		return mapErr
	case emitErr != nil:
		return emitErr
	}

	// Publish: remaining buffers are sorted here, inside the map task —
	// this is the parallel half of the map-side sort-and-merge shuffle —
	// and attached to the shared partitions as immutable sorted chunks
	// (or written as final spill runs when spilling).
	if job.SpillEvery > 0 {
		if buffered > 0 {
			if serr := spill(); serr != nil {
				return serr
			}
		}
	} else {
		for p, buf := range buffers {
			chunks := sealed[p]
			if len(buf) > 0 {
				sortPairs(buf, cmp)
				chunks = append(chunks, buf)
			}
			if len(chunks) == 0 {
				continue
			}
			parts[p].mu.Lock()
			parts[p].chunks = append(parts[p].chunks, chunks...)
			parts[p].mu.Unlock()
			local.Add(CounterShuffleChunks, int64(len(chunks)))
		}
	}
	for p, rs := range runs {
		if len(rs) == 0 {
			continue
		}
		parts[p].mu.Lock()
		parts[p].runs = append(parts[p].runs, rs...)
		parts[p].mu.Unlock()
	}
	counters.Merge(local)
	return nil
}

// runReducePhase runs the reduce tasks and returns the concatenated output
// in task order. There is no shuffle barrier work left here: map tasks
// published sorted chunks, and each reduce task merges its own partition's
// chunks and spill runs, in parallel across the reduce slots.
func runReducePhase[I, K, V, O any](c *Cluster, job *Job[I, K, V, O], parts []*partitionData[K, V], counters *Counters) ([]O, error) {
	r := job.NumReducers
	attempts := maxAttempts(job)

	outputs := make([][]O, r)
	perSlot := roundRobin(r, c.reduceSlots())
	states := make([]slotState, len(perSlot))
	_, pool := c.slotPools()
	errs := runTasks(perSlot, pool, job.Priority, counters, func(slot, task int) *TaskError {
		lc, ctx := states[slot].get(c, ReduceTask, slot)
		for attempt := 1; ; attempt++ {
			lc.reset()
			ctx.rebind(task, attempt)
			out, err := runReduceAttempt(c, job, parts[task], counters, lc, ctx, task, attempt)
			if err == nil {
				outputs[task] = out
				return nil
			}
			counters.Add(CounterTaskRetries, 1)
			if isPermanent(err) {
				return &TaskError{Job: job.Name, Kind: ReduceTask, Task: task, Attempts: attempt, Budget: attempts, Err: err}
			}
			if attempt >= attempts {
				return &TaskError{Job: job.Name, Kind: ReduceTask, Task: task, Attempts: attempt, Budget: attempts, Exhausted: true, Err: err}
			}
			counters.Add(CounterRetryReduce, 1)
			backoff(job.RetryBackoff, attempt, counters)
		}
	})
	if len(errs) > 0 {
		return nil, newJobError(job.Name, ReduceTask, errs)
	}
	var out []O
	for _, o := range outputs {
		out = append(out, o...)
	}
	return out, nil
}

// runReduceAttempt runs one attempt of one reduce task over its partition.
func runReduceAttempt[I, K, V, O any](c *Cluster, job *Job[I, K, V, O], part *partitionData[K, V], counters, local *Counters, ctx *TaskContext, task, attempt int) ([]O, error) {
	if job.FaultInjector != nil {
		if ferr := job.FaultInjector(ReduceTask, task, attempt); ferr != nil {
			return nil, ferr
		}
	}
	// Build the sorted stream: a k-way merge of the sorted chunks the map
	// tasks published for this partition and every spilled run. The
	// all-in-memory case takes the concrete chunkMerge, which skips the
	// generic stream machinery's per-record dispatch.
	var total int64
	for _, ch := range part.chunks {
		total += int64(len(ch))
	}
	var streams []stream[K, V]
	if len(part.runs) > 0 {
		streams = make([]stream[K, V], 0, len(part.chunks)+len(part.runs))
		for _, ch := range part.chunks {
			streams = append(streams, &memStream[K, V]{pairs: ch})
		}
	}
	var opened []*runStream[K, V]
	defer func() {
		for _, rs := range opened {
			rs.close()
		}
	}()
	for _, run := range part.runs {
		rs, err := openRun(run, job.KeyCodec, job.ValueCodec)
		if err != nil {
			return nil, err
		}
		opened = append(opened, rs)
		streams = append(streams, rs)
		total += int64(run.records)
	}
	var merged stream[K, V]
	switch {
	case len(part.runs) == 0 && len(part.chunks) == 1:
		merged = &memStream[K, V]{pairs: part.chunks[0]} // already sorted, skip the heap
	case len(part.runs) == 0:
		merged = newChunkMerge(job.Less, part.chunks)
	default:
		m, err := newMergeStream(job.Less, streams...)
		if err != nil {
			return nil, err
		}
		merged = m
	}
	local.Add(CounterReduceValues, total)

	group := job.GroupEqual
	if group == nil {
		group = func(a, b K) bool { return false }
	}
	vals := &Values[K, V]{stream: merged, group: group, consumed: ctx.consumed}

	var out []O
	emit := func(o O) {
		out = append(out, o)
		local.Add(CounterOutputRecords, 1)
	}

	more, err := vals.prime()
	if err != nil {
		return nil, err
	}
	for more {
		local.Add(CounterReduceGroups, 1)
		if rerr := job.Reduce(ctx, vals, emit); rerr != nil {
			return nil, rerr
		}
		if vals.err != nil {
			return nil, vals.err
		}
		more, err = vals.drain()
		if err != nil {
			return nil, err
		}
	}
	counters.Merge(local)
	return out, nil
}
