package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"spq/internal/dfs"
)

// Cluster describes the execution resources of a simulated cluster: the
// distributed file system whose nodes host the data, and the number of
// concurrent map and reduce slots. With fewer slots than tasks, tasks run
// in waves, exactly like an overcommitted Hadoop cluster (see the footnote
// in Section 6.3 of the paper).
type Cluster struct {
	// FS is the storage layer. It may be nil when all job sources are
	// in-memory; locality scheduling then degrades gracefully.
	FS *dfs.FileSystem
	// MapSlots and ReduceSlots bound task concurrency (default 1 each).
	// The bound holds across ALL jobs running on this cluster: concurrent
	// jobs draw their tasks from one shared admission-controlled slot pool
	// per phase (see admission.go) instead of each assuming it owns every
	// slot. Pool capacity is frozen at the first job; mutate the slot
	// counts before running anything.
	MapSlots    int
	ReduceSlots int

	// Executor, when set, runs the cluster's tasks somewhere other than
	// the calling process (see RPCExecutor). Nil selects the in-process
	// LocalExecutor. Jobs the executor cannot ship — no wire form, or
	// splits without serializable references — fall back to the local
	// executor transparently (metered as spq.exec.fallback.local).
	Executor Executor

	poolsOnce           sync.Once
	mapPool, reducePool *slotPool

	localOnce sync.Once
	local     *LocalExecutor
}

// NewCluster returns a cluster with slots spread across the nodes of fs.
func NewCluster(fs *dfs.FileSystem, mapSlots, reduceSlots int) *Cluster {
	return &Cluster{FS: fs, MapSlots: mapSlots, ReduceSlots: reduceSlots}
}

func (c *Cluster) mapSlots() int {
	if c.MapSlots <= 0 {
		return 1
	}
	return c.MapSlots
}

func (c *Cluster) reduceSlots() int {
	if c.ReduceSlots <= 0 {
		return 1
	}
	return c.ReduceSlots
}

// slotNode maps a slot index to the DataNode hosting it (round-robin).
func (c *Cluster) slotNode(slot int) string {
	if c.FS == nil || c.FS.NumNodes() == 0 {
		return fmt.Sprintf("slot-%d", slot)
	}
	return c.FS.NodeName(slot % c.FS.NumNodes())
}

// localExecutor returns the cluster's in-process executor (created once).
func (c *Cluster) localExecutor() *LocalExecutor {
	c.localOnce.Do(func() { c.local = NewLocalExecutor(c) })
	return c.local
}

// executor returns the executor jobs dispatch through.
func (c *Cluster) executor() Executor {
	if c.Executor != nil {
		return c.Executor
	}
	return c.localExecutor()
}

// Stats summarizes one job execution.
type Stats struct {
	Job            string
	MapTasks       int
	ReduceTasks    int
	Duration       time.Duration
	MapDuration    time.Duration
	ReduceDuration time.Duration
}

// Result is the outcome of a job: the concatenated reduce outputs (in
// reduce-task order), the job counters and timing statistics.
type Result[O any] struct {
	Output   []O
	Counters map[string]int64
	Stats    Stats
}

// partitionData accumulates the intermediate records routed to one reduce
// task. As in Hadoop's map-side sort-and-merge shuffle, order is
// established where the data is produced: every map task sorts its
// per-partition buffers before publishing, so a partition holds sorted
// chunks (one per publishing map task) plus spilled sorted runs, and the
// owning reduce task k-way-merges them. Nothing is ever sorted serially
// between the phases.
type partitionData[K, V any] struct {
	mu     sync.Mutex
	chunks [][]Pair[K, V]
	runs   []*spillRun
}

// jobSeq numbers job executions within this process; the id scopes the
// job's shuffle files in the DFS so two executions never collide.
var jobSeq atomic.Int64

// Run executes the job on the cluster and returns its result. It is
// RunContext with a background context: the job runs to completion or
// failure and can never be canceled from outside.
func Run[I, K, V, O any](c *Cluster, job *Job[I, K, V, O]) (*Result[O], error) {
	return RunContext(context.Background(), c, job)
}

// RunContext executes the job on the cluster and returns its result. It
// is the entry point of the framework.
//
// RunContext is orchestration only: it enumerates the input splits exactly
// once, assigns tasks to executor lanes, dispatches self-describing task
// descriptors, gathers results and drives the per-task retry loop — but
// has no knowledge of where an attempt executes. The executor decides
// that: in-process on the cluster's slot pools (the default), or on
// remote worker processes over RPC when the cluster carries an Executor
// and the job is remotable (it has a WireJob and every split serializes
// a SplitRef).
//
// Canceling ctx stops the job promptly: no further task attempts start
// (tasks queued for slot admission leave the queue without consuming a
// slot), running local map and reduce tasks notice the cancellation at
// record granularity and abort, retry backoffs are cut short, and
// RunContext returns ctx.Err() (wrapped) instead of a task error. Task
// attempts already dispatched to a remote worker run to completion there
// — their results are discarded — so cancellation bounds new work, not
// in-flight RPCs.
func RunContext[I, K, V, O any](ctx context.Context, c *Cluster, job *Job[I, K, V, O]) (*Result[O], error) {
	if err := job.validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("mapreduce: job %q: %w", job.Name, err)
	}
	start := time.Now()
	counters := NewCounters()
	r := job.NumReducers

	splits, err := job.Source.Splits()
	if err != nil {
		return nil, fmt.Errorf("mapreduce: job %q: %w", job.Name, err)
	}

	b := &Binding{
		job:      job.Name,
		jobID:    fmt.Sprintf("j%06d", jobSeq.Add(1)),
		priority: job.Priority,
		counters: counters,
		ctx:      ctx,
		shuffle:  make([][]ShuffleRef, r),
	}

	// Executor selection: a remote-capable executor takes the job only
	// when it can be shipped whole — a registered wire form plus a
	// serializable reference for every split. Everything else (in-memory
	// sources, fault-injector hooks, custom partitioners) stays local.
	exec := c.executor()
	remote := false
	if _, isLocal := exec.(*LocalExecutor); !isLocal {
		if job.Wire != nil && job.FaultInjector == nil {
			if refs, ok := collectSplitRefs(splits); ok {
				b.wireKind, b.wireSpec, b.splitRefs = job.Wire.Kind, job.Wire.Spec, refs
				remote = true
			}
		}
		if !remote {
			counters.Add(CounterExecFallbackLocal, 1)
			exec = c.localExecutor()
		} else if cl, ok := exec.(shuffleCleaner); ok {
			// Shuffle intermediates of remote tasks live in the DFS; they
			// are removed when the job finishes, success or not.
			defer cl.CleanupShuffle(b)
		}
	}

	// Local execution state: shared shuffle partitions plus the typed
	// attempt closures the LocalExecutor calls back through.
	var parts []*partitionData[K, V]
	outputs := make([][]O, r)
	if !remote {
		parts = make([]*partitionData[K, V], r)
		for i := range parts {
			parts[i] = &partitionData[K, V]{}
		}
		// Every spill run is removed when the job finishes, success or not.
		defer func() {
			for _, p := range parts {
				for _, run := range p.runs {
					os.Remove(run.path)
				}
			}
		}()
		mapStates := make([]slotState, exec.Lanes(MapTask))
		b.localMap = func(lane, task, attempt int, host string) error {
			lc, tctx := mapStates[lane].get(MapTask, host)
			lc.reset()
			tctx.rebind(task, attempt)
			return runMapAttempt(ctx, job, splits[task], parts, counters, lc, tctx, task, attempt, r)
		}
		reduceStates := make([]slotState, exec.Lanes(ReduceTask))
		b.localReduce = func(lane, task, attempt int, host string) error {
			lc, tctx := reduceStates[lane].get(ReduceTask, host)
			lc.reset()
			tctx.rebind(task, attempt)
			out, rerr := runReduceAttempt(ctx, job, parts[task], counters, lc, tctx, task, attempt)
			if rerr != nil {
				return rerr
			}
			outputs[task] = out
			return nil
		}
	}

	attempts := maxAttempts(job)
	mkDesc := func(kind TaskKind, task, attempt, lane int) *TaskDesc {
		d := &TaskDesc{
			Job: job.Name, JobID: b.jobID, Kind: kind,
			Task: task, Attempt: attempt, Lane: lane,
			NumMaps: len(splits), NumReducers: r, Priority: job.Priority,
		}
		if remote {
			d.JobKind, d.JobSpec = b.wireKind, b.wireSpec
			if kind == MapTask {
				d.Split = b.splitRefs[task]
			} else {
				d.Shuffle = b.shuffleFor(task)
			}
		}
		return d
	}

	mapStart := time.Now()
	perLane, local := assignMapTasks(exec, splits)
	counters.Add(CounterDataLocalMaps, int64(local))
	errs := runPhase(exec, b, MapTask, perLane, attempts, job.RetryBackoff, CounterRetryMap,
		func(task, attempt, lane int) *TaskDesc { return mkDesc(MapTask, task, attempt, lane) },
		exec.RunMapTask,
		func(task int, res *TaskResult) error {
			counters.AddMap(res.Counters)
			b.addShuffle(res.Shuffle)
			return nil
		})
	if cerr := ctx.Err(); cerr != nil {
		// Cancellation outranks task errors: a canceled job's attempts may
		// fail for any number of secondary reasons, but the caller asked
		// for exactly this outcome and gets the context error back.
		return nil, fmt.Errorf("mapreduce: job %q: %w", job.Name, cerr)
	}
	if len(errs) > 0 {
		return nil, newJobError(job.Name, MapTask, errs)
	}
	mapDur := time.Since(mapStart)

	reduceStart := time.Now()
	perLane = roundRobin(r, exec.Lanes(ReduceTask))
	errs = runPhase(exec, b, ReduceTask, perLane, attempts, job.RetryBackoff, CounterRetryReduce,
		func(task, attempt, lane int) *TaskDesc { return mkDesc(ReduceTask, task, attempt, lane) },
		exec.RunReduceTask,
		func(task int, res *TaskResult) error {
			counters.AddMap(res.Counters)
			if !remote {
				return nil
			}
			out, derr := decodeOutput[O](res.Output)
			if derr != nil {
				return fmt.Errorf("mapreduce: job %q: reduce task %d output: %w", job.Name, task, derr)
			}
			outputs[task] = out
			return nil
		})
	if cerr := ctx.Err(); cerr != nil {
		return nil, fmt.Errorf("mapreduce: job %q: %w", job.Name, cerr)
	}
	if len(errs) > 0 {
		return nil, newJobError(job.Name, ReduceTask, errs)
	}
	reduceDur := time.Since(reduceStart)

	var out []O
	for _, o := range outputs {
		out = append(out, o...)
	}
	return &Result[O]{
		Output:   out,
		Counters: counters.Snapshot(),
		Stats: Stats{
			Job:            job.Name,
			MapTasks:       len(splits),
			ReduceTasks:    r,
			Duration:       time.Since(start),
			MapDuration:    mapDur,
			ReduceDuration: reduceDur,
		},
	}, nil
}

// collectSplitRefs serializes a reference for every split; ok is false
// when any split cannot be referenced (the job then runs locally).
func collectSplitRefs[I any](splits []SourceSplit[I]) ([]*SplitRef, bool) {
	refs := make([]*SplitRef, len(splits))
	for i, s := range splits {
		rs, ok := s.(RefSplit)
		if !ok {
			return nil, false
		}
		ref, err := rs.SplitRef()
		if err != nil || ref == nil {
			return nil, false
		}
		refs[i] = ref
	}
	return refs, true
}

// assignMapTasks distributes splits over the executor's lanes, preferring
// lanes whose host holds a replica of the split (data-local scheduling).
// It returns the per-lane task lists and the number of data-local
// assignments.
func assignMapTasks[I any](exec Executor, splits []SourceSplit[I]) (perLane [][]int, local int) {
	lanes := exec.Lanes(MapTask)
	perLane = make([][]int, lanes)
	load := make([]int, lanes)

	nodeLanes := make(map[string][]int)
	for s := 0; s < lanes; s++ {
		n := exec.LaneHost(MapTask, s)
		nodeLanes[n] = append(nodeLanes[n], s)
	}
	pick := func(candidates []int) int {
		best := -1
		for _, s := range candidates {
			if best == -1 || load[s] < load[best] {
				best = s
			}
		}
		return best
	}
	all := make([]int, lanes)
	for i := range all {
		all[i] = i
	}
	for i, sp := range splits {
		var cands []int
		for _, h := range sp.Hosts() {
			cands = append(cands, nodeLanes[h]...)
		}
		lane := pick(cands)
		if lane >= 0 {
			local++
		} else {
			lane = pick(all)
		}
		perLane[lane] = append(perLane[lane], i)
		load[lane]++
	}
	return perLane, local
}

// runPhase executes every task of one phase through the executor, one
// dispatch goroutine per lane; a lane stops dispatching new tasks once
// any task has failed terminally.
//
// Every task failure is collected (not just the first): concurrently
// running tasks finish their attempts even after another lane fails, and
// their failures all land in the returned slice so the caller can report
// one aggregated error.
func runPhase(exec Executor, b *Binding, kind TaskKind, perLane [][]int, budget int, backoffBase time.Duration, retryCounter string,
	mkDesc func(task, attempt, lane int) *TaskDesc,
	call func(*Binding, *TaskDesc) (*TaskResult, error),
	onResult func(task int, res *TaskResult) error) []*TaskError {
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		errs []*TaskError
	)
	for lane := range perLane {
		if len(perLane[lane]) == 0 {
			continue
		}
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			for _, task := range perLane[lane] {
				if b.failed.Load() || b.Context().Err() != nil {
					return
				}
				te := runTaskAttempts(exec, b, kind, lane, task, budget, backoffBase, retryCounter, mkDesc, call, onResult)
				if te != nil {
					b.failed.Store(true)
					mu.Lock()
					errs = append(errs, te)
					mu.Unlock()
					return
				}
			}
		}(lane)
	}
	wg.Wait()
	return errs
}

// runTaskAttempts drives one task through its retry budget: dispatch an
// attempt descriptor, classify the failure (permanent errors fast-fail,
// transient ones back off and retry), and attribute the terminal error to
// the worker that executed the failing attempt.
func runTaskAttempts(exec Executor, b *Binding, kind TaskKind, lane, task, budget int, backoffBase time.Duration, retryCounter string,
	mkDesc func(task, attempt, lane int) *TaskDesc,
	call func(*Binding, *TaskDesc) (*TaskResult, error),
	onResult func(task int, res *TaskResult) error) *TaskError {
	for attempt := 1; ; attempt++ {
		res, err := call(b, mkDesc(task, attempt, lane))
		if err == nil {
			if oerr := onResult(task, res); oerr != nil {
				// A result the orchestrator cannot absorb (undecodable
				// output) fails identically on every attempt.
				err = Permanent(oerr)
			} else {
				return nil
			}
		}
		if errors.Is(err, errTaskAborted) {
			// The job failed elsewhere while this attempt queued; drop the
			// task silently — its outcome is irrelevant.
			return nil
		}
		if b.Context().Err() != nil {
			// The job was canceled: whatever this attempt's proximate error
			// was (a context error from admission, an aborted read, a task
			// body noticing the cancellation), its outcome is irrelevant.
			// Mark the job failed so concurrently queued attempts drop too,
			// and report no task error — RunContext returns ctx.Err().
			b.failed.Store(true)
			return nil
		}
		worker := exec.LaneHost(kind, lane)
		if res != nil && res.Worker != "" {
			worker = res.Worker
		}
		b.counters.Add(CounterTaskRetries, 1)
		if isPermanent(err) {
			return &TaskError{Job: b.job, Kind: kind, Task: task, Worker: worker, Attempts: attempt, Budget: budget, Err: err}
		}
		if attempt >= budget {
			return &TaskError{Job: b.job, Kind: kind, Task: task, Worker: worker, Attempts: attempt, Budget: budget, Exhausted: true, Err: err}
		}
		b.counters.Add(retryCounter, 1)
		backoff(b.Context(), backoffBase, attempt, b.counters)
	}
}

// roundRobin spreads n tasks over k slots.
func roundRobin(n, k int) [][]int {
	perSlot := make([][]int, k)
	for i := 0; i < n; i++ {
		perSlot[i%k] = append(perSlot[i%k], i)
	}
	return perSlot
}

func maxAttempts[I, K, V, O any](job *Job[I, K, V, O]) int {
	if job.MaxAttempts <= 0 {
		return 1
	}
	return job.MaxAttempts
}

// defaultChunkCap is the map-side partition buffer capacity when the
// split's record count is unknown.
const defaultChunkCap = 4096

// slotState is the reusable attempt-local state of one executor lane: its
// tasks run sequentially, so one counter registry and one context serve
// every attempt, reset between attempts instead of reallocated. Counter
// deltas of a failed attempt are wiped by the next reset and merged into
// the job-global registry only on success, preserving the no-trace
// guarantee of failed attempts.
type slotState struct {
	local *Counters
	ctx   *TaskContext
}

// get lazily initializes the lane's state for the given task kind.
func (s *slotState) get(kind TaskKind, host string) (*Counters, *TaskContext) {
	if s.local == nil {
		s.local = NewCounters()
		s.ctx = newTaskContext(kind, 0, 1, host, s.local)
	}
	return s.local, s.ctx
}

// backoff sleeps the capped exponential delay before retry number
// failed+1 and meters the time slept. A canceled context cuts the sleep
// short — a canceled job must not keep its caller waiting out a backoff.
func backoff(ctx context.Context, base time.Duration, failed int, counters *Counters) {
	if d := retryDelay(base, failed); d > 0 {
		counters.Add(CounterRetryBackoffMicros, d.Microseconds())
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
		}
	}
}

// cancelCheckEvery is the record granularity at which local task bodies
// poll the job context: coarse enough that the atomic load never shows up
// in profiles, fine enough that a canceled query stops within microseconds.
const cancelCheckEvery = 4096

// runMapAttempt runs one attempt of one map task. All side effects (counter
// deltas, buffered records, spill runs) are kept attempt-local and
// published only on success, so a failed attempt leaves no trace. jctx is
// the job's cancellation context, polled every cancelCheckEvery records so
// a canceled job stops mid-split instead of finishing the read.
func runMapAttempt[I, K, V, O any](jctx context.Context, job *Job[I, K, V, O], split SourceSplit[I], parts []*partitionData[K, V], counters, local *Counters, ctx *TaskContext, task, attempt, r int) (err error) {
	if job.FaultInjector != nil {
		if ferr := job.FaultInjector(MapTask, task, attempt); ferr != nil {
			return ferr
		}
	}
	cmp := job.compare()
	buffers := make([][]Pair[K, V], r)
	// Partition buffers are fixed-capacity chunks sized from the split's
	// record count when it is known. A full chunk is sorted on the spot and
	// set aside, and a fresh buffer is allocated — growth never copies. On
	// skewed key distributions (clustered data) a single partition can
	// receive many times the per-partition estimate, and doubling one flat
	// buffer would spend the map phase in growslice.
	chunkCap := defaultChunkCap
	if cs, ok := split.(CountedSplit); ok {
		if n := cs.Records(); n > 0 {
			chunkCap = n/r + 1
		}
	}
	var sealed [][][]Pair[K, V] // per-partition full chunks, attempt-local
	var runs [][]*spillRun      // per-partition runs created by this attempt
	if job.SpillEvery > 0 {
		runs = make([][]*spillRun, r)
	} else {
		sealed = make([][][]Pair[K, V], r)
	}
	// Attempt-local cleanup of spill files on failure.
	defer func() {
		if err != nil {
			for _, rs := range runs {
				for _, run := range rs {
					os.Remove(run.path)
				}
			}
		}
	}()

	buffered := 0
	spill := func() error {
		rs, parts, werr := writeSpill(buffers, cmp, job.KeyCodec, job.ValueCodec)
		if werr != nil {
			return werr
		}
		for i, run := range rs {
			run := run
			p := parts[i]
			runs[p] = append(runs[p], &run)
			local.Add(CounterSpillRuns, 1)
			local.Add(CounterSpilledRecords, int64(run.records))
			local.Add(CounterShuffleBytes, run.length)
			buffers[p] = nil
		}
		buffered = 0
		return nil
	}

	// recIn/recOut are batched per attempt: one atomic flush instead of
	// one atomic add per record and per emission, which profiles as real
	// time at ~100k records per query.
	var recIn, recOut int64
	var emitErr error
	emit := func(k K, v V) {
		p := job.Partition(k, r)
		if p < 0 || p >= r {
			if emitErr == nil {
				// A broken partitioner fails identically on every attempt.
				emitErr = Permanent(fmt.Errorf("mapreduce: job %q: Partition returned %d for %d reducers", job.Name, p, r))
			}
			return
		}
		buf := buffers[p]
		if buf == nil {
			buf = make([]Pair[K, V], 0, chunkCap)
		}
		buf = append(buf, Pair[K, V]{Key: k, Value: v})
		buffers[p] = buf
		recOut++
		buffered++
		if job.SpillEvery > 0 {
			if buffered >= job.SpillEvery {
				if serr := spill(); serr != nil && emitErr == nil {
					emitErr = serr
				}
			}
		} else if len(buf) == cap(buf) {
			// Chunk full: sort it now (spreading the sort across the map
			// phase) but publish only on attempt success, so a failed
			// attempt still leaves no trace.
			sortPairs(buf, cmp)
			sealed[p] = append(sealed[p], buf)
			buffers[p] = nil
		}
	}

	var mapErr error
	eachErr := split.Each(func(rec I) bool {
		recIn++
		if recIn%cancelCheckEvery == 0 && jctx.Err() != nil {
			mapErr = jctx.Err()
			return false
		}
		if merr := job.Map(ctx, rec, emit); merr != nil {
			mapErr = merr
			return false
		}
		return emitErr == nil
	})
	atomic.AddInt64(ctx.recIn, recIn)
	atomic.AddInt64(ctx.recOut, recOut)
	switch {
	case eachErr != nil:
		return eachErr
	case mapErr != nil:
		return mapErr
	case emitErr != nil:
		return emitErr
	}

	// Publish: remaining buffers are sorted here, inside the map task —
	// this is the parallel half of the map-side sort-and-merge shuffle —
	// and attached to the shared partitions as immutable sorted chunks
	// (or written as final spill runs when spilling).
	if job.SpillEvery > 0 {
		if buffered > 0 {
			if serr := spill(); serr != nil {
				return serr
			}
		}
	} else {
		for p, buf := range buffers {
			chunks := sealed[p]
			if len(buf) > 0 {
				sortPairs(buf, cmp)
				chunks = append(chunks, buf)
			}
			if len(chunks) == 0 {
				continue
			}
			parts[p].mu.Lock()
			parts[p].chunks = append(parts[p].chunks, chunks...)
			parts[p].mu.Unlock()
			local.Add(CounterShuffleChunks, int64(len(chunks)))
		}
	}
	for p, rs := range runs {
		if len(rs) == 0 {
			continue
		}
		parts[p].mu.Lock()
		parts[p].runs = append(parts[p].runs, rs...)
		parts[p].mu.Unlock()
	}
	counters.Merge(local)
	return nil
}

// runReduceAttempt runs one attempt of one reduce task over its partition.
// jctx is the job's cancellation context; the merged input stream polls it
// at record granularity (see cancelStream), so a canceled job aborts the
// reduce mid-merge.
func runReduceAttempt[I, K, V, O any](jctx context.Context, job *Job[I, K, V, O], part *partitionData[K, V], counters, local *Counters, ctx *TaskContext, task, attempt int) ([]O, error) {
	if job.FaultInjector != nil {
		if ferr := job.FaultInjector(ReduceTask, task, attempt); ferr != nil {
			return nil, ferr
		}
	}
	// Build the sorted stream: a k-way merge of the sorted chunks the map
	// tasks published for this partition and every spilled run. The
	// all-in-memory case takes the concrete chunkMerge, which skips the
	// generic stream machinery's per-record dispatch.
	var total int64
	for _, ch := range part.chunks {
		total += int64(len(ch))
	}
	var streams []stream[K, V]
	if len(part.runs) > 0 {
		streams = make([]stream[K, V], 0, len(part.chunks)+len(part.runs))
		for _, ch := range part.chunks {
			streams = append(streams, &memStream[K, V]{pairs: ch})
		}
	}
	var opened []*runStream[K, V]
	defer func() {
		for _, rs := range opened {
			rs.close()
		}
	}()
	for _, run := range part.runs {
		rs, err := openRun(run, job.KeyCodec, job.ValueCodec)
		if err != nil {
			return nil, err
		}
		opened = append(opened, rs)
		streams = append(streams, rs)
		total += int64(run.records)
	}
	var merged stream[K, V]
	switch {
	case len(part.runs) == 0 && len(part.chunks) == 1:
		merged = &memStream[K, V]{pairs: part.chunks[0]} // already sorted, skip the heap
	case len(part.runs) == 0:
		merged = newChunkMerge(job.Less, part.chunks)
	default:
		m, err := newMergeStream(job.Less, streams...)
		if err != nil {
			return nil, err
		}
		merged = m
	}
	local.Add(CounterReduceValues, total)

	out, err := reduceStream(job, &cancelStream[K, V]{ctx: jctx, inner: merged}, local, ctx)
	if err != nil {
		return nil, err
	}
	counters.Merge(local)
	return out, nil
}

// cancelStream wraps a sorted record stream with a job-context poll every
// cancelCheckEvery records, so local reduce tasks of a canceled job stop
// at record granularity. The worker-side reduce path reads its streams
// unwrapped — cancellation does not propagate into an in-flight RPC.
type cancelStream[K, V any] struct {
	ctx   context.Context
	inner stream[K, V]
	n     int
}

func (s *cancelStream[K, V]) next() (Pair[K, V], bool, error) {
	s.n++
	if s.n%cancelCheckEvery == 0 {
		if err := s.ctx.Err(); err != nil {
			var zero Pair[K, V]
			return zero, false, err
		}
	}
	return s.inner.next()
}

// reduceStream drives the job's Reduce function over a merged sorted
// stream, one invocation per key group. It is shared by the local attempt
// path and the remote worker path, so grouping and counter semantics are
// identical wherever the task runs.
func reduceStream[I, K, V, O any](job *Job[I, K, V, O], merged stream[K, V], local *Counters, ctx *TaskContext) ([]O, error) {
	group := job.GroupEqual
	if group == nil {
		group = func(a, b K) bool { return false }
	}
	vals := &Values[K, V]{stream: merged, group: group, consumed: ctx.consumed}

	var out []O
	emit := func(o O) {
		out = append(out, o)
		local.Add(CounterOutputRecords, 1)
	}

	more, err := vals.prime()
	if err != nil {
		return nil, err
	}
	for more {
		local.Add(CounterReduceGroups, 1)
		if rerr := job.Reduce(ctx, vals, emit); rerr != nil {
			return nil, rerr
		}
		if vals.err != nil {
			return nil, vals.err
		}
		more, err = vals.drain()
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
