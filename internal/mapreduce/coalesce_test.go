package mapreduce

import (
	"reflect"
	"testing"
)

// hostedSplit is a memory split with fixed hosts, for Coalesce tests.
type hostedSplit struct {
	recs  []int
	hosts []string
}

func (s hostedSplit) Hosts() []string { return s.hosts }
func (s hostedSplit) Each(yield func(int) bool) error {
	for _, r := range s.recs {
		if !yield(r) {
			return nil
		}
	}
	return nil
}

type hostedSource []hostedSplit

func (h hostedSource) Splits() ([]SourceSplit[int], error) {
	out := make([]SourceSplit[int], len(h))
	for i, s := range h {
		out[i] = s
	}
	return out, nil
}

func TestCoalesceGroupsSplits(t *testing.T) {
	var src hostedSource
	var want []int
	for i := 0; i < 10; i++ {
		src = append(src, hostedSplit{recs: []int{2 * i, 2*i + 1}, hosts: []string{"d1", "d2"}})
		want = append(want, 2*i, 2*i+1)
	}
	splits, err := Coalesce[int](src, 3).Splits()
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) > 3 {
		t.Fatalf("coalesced to %d splits, want <= 3", len(splits))
	}
	var got []int
	for _, s := range splits {
		if hs := s.Hosts(); len(hs) != 2 {
			t.Errorf("grouped hosts = %v, want deduplicated union [d1 d2]", hs)
		}
		if err := s.Each(func(r int) bool { got = append(got, r); return true }); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("records = %v, want %v (order preserved, nothing lost)", got, want)
	}

	// Early stop must not spill into the group's later members.
	var first []int
	if err := splits[0].Each(func(r int) bool { first = append(first, r); return len(first) < 3 }); err != nil {
		t.Fatal(err)
	}
	if len(first) != 3 {
		t.Errorf("early stop yielded %d records, want 3", len(first))
	}

	// Fewer splits than the target pass through untouched.
	passthrough, err := Coalesce[int](src, 100).Splits()
	if err != nil {
		t.Fatal(err)
	}
	if len(passthrough) != len(src) {
		t.Errorf("passthrough = %d splits, want %d", len(passthrough), len(src))
	}
}
