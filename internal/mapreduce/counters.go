package mapreduce

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Well-known counter names maintained by the engine itself. Jobs may define
// additional counters freely via TaskContext.Counter.
const (
	CounterMapRecordsIn   = "map.records.in"
	CounterMapRecordsOut  = "map.records.out"
	CounterReduceGroups   = "reduce.groups"
	CounterReduceValues   = "reduce.values.total"
	CounterValuesConsumed = "reduce.values.consumed"
	CounterOutputRecords  = "output.records"
	CounterShuffleBytes   = "shuffle.bytes"
	CounterShuffleChunks  = "shuffle.chunks"
	CounterSpillRuns      = "spill.runs"
	CounterSpilledRecords = "spill.records"
	CounterDataLocalMaps  = "scheduler.maps.data_local"
	CounterTaskRetries    = "tasks.retries"
)

// Retry counters (spq.retry.*): how often task attempts were re-executed
// and how long the phases slept in capped exponential backoff between
// attempts. CounterTaskRetries above counts every failed attempt (legacy
// name); the spq.retry.* pair splits re-executions by phase.
const (
	CounterRetryMap           = "spq.retry.map"
	CounterRetryReduce        = "spq.retry.reduce"
	CounterRetryBackoffMicros = "spq.retry.backoff_us"
)

// Admission-control counters (see admission.go). They describe how this
// job's tasks fared against the cluster-shared slot pools: how many task
// admissions happened, how many had to queue behind other jobs, the total
// time spent waiting, and the deepest queue any of its tasks observed.
const (
	CounterSchedAdmitted      = "spq.sched.admitted"
	CounterSchedQueued        = "spq.sched.queued"
	CounterSchedWaitMicros    = "spq.sched.wait_us"
	CounterSchedMaxQueueDepth = "spq.sched.queue.depth.max"
)

// Executor counters (spq.exec.*): where a job's tasks ran. Per-worker
// task counts use the CounterExecTasksPrefix + worker name; re-executions
// count attempts re-dispatched after a worker was lost mid-job; RPC bytes
// meter the payloads a remote task moved across the master boundary
// (input fetches, shuffle writes and reads, dictionary pulls).
const (
	CounterExecTasksPrefix   = "spq.exec.tasks."
	CounterExecReexec        = "spq.exec.reexec"
	CounterExecRPCBytes      = "spq.exec.rpc.bytes"
	CounterExecWorkersLost   = "spq.exec.workers.lost"
	CounterExecFallbackLocal = "spq.exec.fallback.local"
)

// Speculative-execution and membership counters (spq.exec.*): backups
// launched against suspected stragglers, how many beat their primary
// (won) versus were overtaken by it (wasted), workers quarantined after
// consecutive call timeouts (a subset of workers.lost — slow-loss, as
// opposed to transport death), and workers that joined or gracefully
// drained while a job was dispatching.
const (
	CounterExecSpecLaunched       = "spq.exec.spec.launched"
	CounterExecSpecWon            = "spq.exec.spec.won"
	CounterExecSpecWasted         = "spq.exec.spec.wasted"
	CounterExecWorkersQuarantined = "spq.exec.workers.quarantined"
	CounterExecWorkersJoined      = "spq.exec.workers.joined"
	CounterExecWorkersDrained     = "spq.exec.workers.drained"
)

// Counters is a concurrency-safe registry of named int64 counters,
// mirroring Hadoop job counters.
type Counters struct {
	mu sync.Mutex
	m  map[string]*int64
}

// NewCounters returns an empty registry.
func NewCounters() *Counters {
	return &Counters{m: make(map[string]*int64)}
}

// cell returns the addressable cell for name, creating it if needed.
func (c *Counters) cell(name string) *int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.m[name]
	if !ok {
		p = new(int64)
		c.m[name] = p
	}
	return p
}

// Add atomically adds delta to the named counter.
func (c *Counters) Add(name string, delta int64) {
	atomic.AddInt64(c.cell(name), delta)
}

// Max raises the named counter to at least v. Used for high-watermark
// counters (for example the deepest admission queue a job observed), which
// Add semantics would overstate.
func (c *Counters) Max(name string, v int64) {
	p := c.cell(name)
	for {
		cur := atomic.LoadInt64(p)
		if v <= cur || atomic.CompareAndSwapInt64(p, cur, v) {
			return
		}
	}
}

// Get returns the current value of the named counter (0 if never touched).
func (c *Counters) Get(name string) int64 {
	c.mu.Lock()
	p, ok := c.m[name]
	c.mu.Unlock()
	if !ok {
		return 0
	}
	return atomic.LoadInt64(p)
}

// reset zeroes every cell while keeping the cells (and any pointers held
// to them) valid, so a task slot can reuse one attempt-local registry
// across task attempts instead of allocating a fresh one per task.
func (c *Counters) reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, p := range c.m {
		atomic.StoreInt64(p, 0)
	}
}

// Merge folds src into c without materializing an intermediate snapshot
// map. Both registries are locked for the duration; the engine only ever
// merges attempt-local counters into the job-global registry, so the lock
// order (src, then c) is acyclic.
func (c *Counters) Merge(src *Counters) {
	src.mu.Lock()
	defer src.mu.Unlock()
	c.mu.Lock()
	defer c.mu.Unlock()
	for name, p := range src.m {
		q, ok := c.m[name]
		if !ok {
			q = new(int64)
			c.m[name] = q
		}
		atomic.AddInt64(q, atomic.LoadInt64(p))
	}
}

// AddMap merges serialized counter deltas — a remote TaskResult's
// Counters snapshot — into the registry. A nil map is a no-op.
func (c *Counters) AddMap(m map[string]int64) {
	if len(m) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for name, v := range m {
		q, ok := c.m[name]
		if !ok {
			q = new(int64)
			c.m[name] = q
		}
		atomic.AddInt64(q, v)
	}
}

// Snapshot returns a copy of all counters.
func (c *Counters) Snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.m))
	for k, p := range c.m {
		out[k] = atomic.LoadInt64(p)
	}
	return out
}

// Names returns the sorted counter names.
func (c *Counters) Names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.m))
	for k := range c.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// TaskContext is passed to Map and Reduce invocations. It identifies the
// running task and gives access to the job's counters.
type TaskContext struct {
	Kind     TaskKind
	TaskID   int
	Attempt  int
	NodeName string

	counters *Counters

	// Engine counter cells resolved once per attempt, so the per-record
	// bookkeeping on the hot paths is a single atomic add instead of a
	// mutex-guarded map lookup.
	recIn, recOut, consumed *int64

	// cache memoizes Counter's cell lookups. A context belongs to one
	// task attempt running on one goroutine, so the cache needs no lock;
	// the cells it points at are still updated atomically.
	cache map[string]*int64
}

// newTaskContext builds the context for one task attempt, pre-resolving
// the engine counter cells the attempt's hot path increments per record.
func newTaskContext(kind TaskKind, task, attempt int, node string, counters *Counters) *TaskContext {
	t := &TaskContext{Kind: kind, TaskID: task, Attempt: attempt, NodeName: node, counters: counters}
	if kind == MapTask {
		t.recIn = counters.cell(CounterMapRecordsIn)
		t.recOut = counters.cell(CounterMapRecordsOut)
	} else {
		t.consumed = counters.cell(CounterValuesConsumed)
	}
	return t
}

// rebind repoints the context at another attempt executed by the same
// slot. The counters registry is unchanged, so every resolved cell and the
// Counter cache stay valid.
func (t *TaskContext) rebind(task, attempt int) {
	t.TaskID = task
	t.Attempt = attempt
}

// NewTaskContextForTest returns a context backed by a fresh counter
// registry, so map and reduce functions can be unit-tested and benchmarked
// outside the engine.
func NewTaskContextForTest(kind TaskKind) *TaskContext {
	return newTaskContext(kind, 0, 1, "test", NewCounters())
}

// Counter adds delta to the named job counter. Map and Reduce call this
// per record, so the cell resolution is memoized per context.
func (t *TaskContext) Counter(name string, delta int64) {
	p, ok := t.cache[name]
	if !ok {
		p = t.counters.cell(name)
		if t.cache == nil {
			t.cache = make(map[string]*int64, 8)
		}
		t.cache[name] = p
	}
	atomic.AddInt64(p, delta)
}
