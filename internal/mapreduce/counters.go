package mapreduce

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Well-known counter names maintained by the engine itself. Jobs may define
// additional counters freely via TaskContext.Counter.
const (
	CounterMapRecordsIn   = "map.records.in"
	CounterMapRecordsOut  = "map.records.out"
	CounterReduceGroups   = "reduce.groups"
	CounterReduceValues   = "reduce.values.total"
	CounterValuesConsumed = "reduce.values.consumed"
	CounterOutputRecords  = "output.records"
	CounterShuffleBytes   = "shuffle.bytes"
	CounterSpillRuns      = "spill.runs"
	CounterSpilledRecords = "spill.records"
	CounterDataLocalMaps  = "scheduler.maps.data_local"
	CounterTaskRetries    = "tasks.retries"
)

// Counters is a concurrency-safe registry of named int64 counters,
// mirroring Hadoop job counters.
type Counters struct {
	mu sync.Mutex
	m  map[string]*int64
}

// NewCounters returns an empty registry.
func NewCounters() *Counters {
	return &Counters{m: make(map[string]*int64)}
}

// cell returns the addressable cell for name, creating it if needed.
func (c *Counters) cell(name string) *int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.m[name]
	if !ok {
		p = new(int64)
		c.m[name] = p
	}
	return p
}

// Add atomically adds delta to the named counter.
func (c *Counters) Add(name string, delta int64) {
	atomic.AddInt64(c.cell(name), delta)
}

// Get returns the current value of the named counter (0 if never touched).
func (c *Counters) Get(name string) int64 {
	c.mu.Lock()
	p, ok := c.m[name]
	c.mu.Unlock()
	if !ok {
		return 0
	}
	return atomic.LoadInt64(p)
}

// Snapshot returns a copy of all counters.
func (c *Counters) Snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.m))
	for k, p := range c.m {
		out[k] = atomic.LoadInt64(p)
	}
	return out
}

// Names returns the sorted counter names.
func (c *Counters) Names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.m))
	for k := range c.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// TaskContext is passed to Map and Reduce invocations. It identifies the
// running task and gives access to the job's counters.
type TaskContext struct {
	Kind     TaskKind
	TaskID   int
	Attempt  int
	NodeName string

	counters *Counters
}

// Counter adds delta to the named job counter.
func (t *TaskContext) Counter(name string, delta int64) {
	t.counters.Add(name, delta)
}
