package text

import "sort"

// InvertedIndex maps keyword ids to the positions (caller-defined integer
// handles, e.g. slice indices) of the documents containing them. It is the
// textual access path of the centralized spatio-textual baselines: given a
// query keyword set, the index returns exactly the documents with non-zero
// Jaccard similarity, in one merge pass.
//
// Build the index once with NewInvertedIndex/Add + Finish; afterwards it
// is immutable and safe for concurrent readers.
type InvertedIndex struct {
	postings map[uint32][]int32
	docs     int
	finished bool
}

// NewInvertedIndex returns an empty index.
func NewInvertedIndex() *InvertedIndex {
	return &InvertedIndex{postings: make(map[uint32][]int32)}
}

// Add indexes one document (its handle and keyword set). Handles should be
// added in non-decreasing order for the posting lists to come out sorted;
// Finish sorts them regardless.
func (ix *InvertedIndex) Add(handle int32, words KeywordSet) {
	for _, w := range words {
		ix.postings[w] = append(ix.postings[w], handle)
	}
	ix.docs++
}

// Finish sorts and deduplicates all posting lists. It must be called once
// after the last Add.
func (ix *InvertedIndex) Finish() {
	for w, list := range ix.postings {
		sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
		out := list[:0]
		for i, h := range list {
			if i == 0 || h != out[len(out)-1] {
				out = append(out, h)
			}
		}
		ix.postings[w] = out
	}
	ix.finished = true
}

// Docs returns the number of indexed documents.
func (ix *InvertedIndex) Docs() int { return ix.docs }

// Terms returns the number of distinct indexed keywords.
func (ix *InvertedIndex) Terms() int { return len(ix.postings) }

// Postings returns the sorted posting list of one keyword (nil if the
// keyword is unindexed). The returned slice must not be modified.
func (ix *InvertedIndex) Postings(word uint32) []int32 {
	return ix.postings[word]
}

// Candidates returns the sorted union of the posting lists of the query
// keywords: every document with at least one common keyword, i.e. every
// document with non-zero Jaccard similarity to the query.
func (ix *InvertedIndex) Candidates(query KeywordSet) []int32 {
	lists := make([][]int32, 0, len(query))
	total := 0
	for _, w := range query {
		if l := ix.postings[w]; len(l) > 0 {
			lists = append(lists, l)
			total += len(l)
		}
	}
	switch len(lists) {
	case 0:
		return nil
	case 1:
		return lists[0]
	}
	// Multi-way sorted union by repeated pairwise merge (query keyword
	// counts are small, so this is simpler and fast enough).
	out := make([]int32, 0, total)
	out = append(out, lists[0]...)
	for _, l := range lists[1:] {
		out = mergeUnion(out, l)
	}
	return out
}

func mergeUnion(a, b []int32) []int32 {
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
