package text

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestInvertedIndexBasics(t *testing.T) {
	ix := NewInvertedIndex()
	ix.Add(0, NewKeywordSet(1, 2))
	ix.Add(1, NewKeywordSet(2, 3))
	ix.Add(2, NewKeywordSet(3))
	ix.Finish()

	if ix.Docs() != 3 {
		t.Errorf("Docs = %d", ix.Docs())
	}
	if ix.Terms() != 3 {
		t.Errorf("Terms = %d", ix.Terms())
	}
	if got := ix.Postings(2); !reflect.DeepEqual(got, []int32{0, 1}) {
		t.Errorf("Postings(2) = %v", got)
	}
	if got := ix.Postings(99); got != nil {
		t.Errorf("Postings(unknown) = %v", got)
	}
}

func TestInvertedIndexCandidates(t *testing.T) {
	ix := NewInvertedIndex()
	ix.Add(0, NewKeywordSet(1))
	ix.Add(1, NewKeywordSet(2))
	ix.Add(2, NewKeywordSet(1, 2))
	ix.Add(3, NewKeywordSet(5))
	ix.Finish()

	tests := []struct {
		name  string
		query KeywordSet
		want  []int32
	}{
		{"single term", NewKeywordSet(1), []int32{0, 2}},
		{"union dedups", NewKeywordSet(1, 2), []int32{0, 1, 2}},
		{"unknown term", NewKeywordSet(9), nil},
		{"mixed known/unknown", NewKeywordSet(5, 9), []int32{3}},
		{"empty query", nil, nil},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := ix.Candidates(tt.query)
			if !reflect.DeepEqual(got, tt.want) {
				t.Errorf("Candidates(%v) = %v, want %v", tt.query, got, tt.want)
			}
		})
	}
}

// Candidates must be exactly the documents with non-zero Jaccard score.
func TestCandidatesMatchJaccard(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	docs := make([]KeywordSet, 300)
	ix := NewInvertedIndex()
	for i := range docs {
		docs[i] = randSet(r, 8, 40)
		ix.Add(int32(i), docs[i])
	}
	ix.Finish()
	for trial := 0; trial < 100; trial++ {
		q := randSet(r, 4, 40)
		got := map[int32]bool{}
		prev := int32(-1)
		for _, h := range ix.Candidates(q) {
			if h <= prev {
				t.Fatalf("candidates not strictly sorted: %d after %d", h, prev)
			}
			prev = h
			got[h] = true
		}
		for i, d := range docs {
			want := Jaccard(q, d) > 0
			if got[int32(i)] != want {
				t.Fatalf("doc %d: candidate %v, Jaccard>0 %v (q=%v d=%v)", i, got[int32(i)], want, q, d)
			}
		}
	}
}

func TestFinishSortsUnorderedHandles(t *testing.T) {
	ix := NewInvertedIndex()
	ix.Add(5, NewKeywordSet(1))
	ix.Add(2, NewKeywordSet(1))
	ix.Add(9, NewKeywordSet(1))
	ix.Add(2, NewKeywordSet(1)) // duplicate handle
	ix.Finish()
	if got := ix.Postings(1); !reflect.DeepEqual(got, []int32{2, 5, 9}) {
		t.Errorf("Postings = %v, want sorted dedup", got)
	}
}
