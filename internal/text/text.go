// Package text provides the textual primitives of the spatial preference
// query using keywords: keyword sets, a dictionary that interns keyword
// strings to dense integer ids, the Jaccard similarity of Definition 1 and
// the best-possible-score upper bound of Equation 1.
//
// Keyword sets are represented as sorted slices of interned ids. Sorted-set
// representation makes intersection/union linear and allocation-free, which
// matters because w(f,q) is evaluated once per surviving feature object in
// the Map phase of every job.
package text

import (
	"sort"
	"strings"
	"sync"
)

// KeywordSet is a set of interned keyword ids, sorted ascending with no
// duplicates. The zero value is the empty set.
type KeywordSet []uint32

// NewKeywordSet builds a KeywordSet from arbitrary ids: it sorts and
// de-duplicates. The input slice is not retained.
func NewKeywordSet(ids ...uint32) KeywordSet {
	if len(ids) == 0 {
		return nil
	}
	s := make([]uint32, len(ids))
	copy(s, ids)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	out := s[:1]
	for _, id := range s[1:] {
		if id != out[len(out)-1] {
			out = append(out, id)
		}
	}
	return KeywordSet(out)
}

// Len returns the number of keywords in the set (|W|).
func (s KeywordSet) Len() int { return len(s) }

// Contains reports whether id is a member of the set.
func (s KeywordSet) Contains(id uint32) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= id })
	return i < len(s) && s[i] == id
}

// asymmetricCutoff selects the intersection strategy: when one set is
// this many times longer than the other, galloping lookups of the short
// set's members beat the linear merge. Queries carry a handful of
// keywords while corpus features carry dozens (the paper's UN/CL draw
// 10–100 per feature), so the Map phase — one intersection per feature
// per query — sits squarely in the asymmetric regime.
const asymmetricCutoff = 8

// IntersectionSize returns |s ∩ t|: by merging the two sorted slices, or
// by binary-searching the shorter set's members in the longer when the
// lengths are lopsided (O(min·log max) instead of O(min+max)).
func (s KeywordSet) IntersectionSize(t KeywordSet) int {
	if len(s) > len(t) {
		s, t = t, s
	}
	if len(t) >= len(s)*asymmetricCutoff {
		n := 0
		for _, id := range s {
			// Each searched id is larger than the last; shrink the search
			// window to the tail past the previous hit position. The search
			// is hand-rolled: this is the per-feature scoring inner loop of
			// the Map phase, and a sort.Search closure call per probe is
			// measurable there.
			lo, hi := 0, len(t)
			for lo < hi {
				mid := int(uint(lo+hi) >> 1)
				if t[mid] < id {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			if lo == len(t) {
				break
			}
			if t[lo] == id {
				n++
			}
			t = t[lo:]
		}
		return n
	}
	n, i, j := 0, 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			i++
		case s[i] > t[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// Intersects reports whether s and t share at least one keyword. It is the
// Map-phase pruning test of Algorithm 1 line 9 (q.W ∩ f.W ≠ ∅) and short-
// circuits on the first common id. Lopsided lengths take the same
// binary-search path as IntersectionSize.
func (s KeywordSet) Intersects(t KeywordSet) bool {
	if len(s) > len(t) {
		s, t = t, s
	}
	if len(t) >= len(s)*asymmetricCutoff {
		for _, id := range s {
			lo, hi := 0, len(t)
			for lo < hi {
				mid := int(uint(lo+hi) >> 1)
				if t[mid] < id {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			if lo == len(t) {
				return false
			}
			if t[lo] == id {
				return true
			}
			t = t[lo:]
		}
		return false
	}
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			i++
		case s[i] > t[j]:
			j++
		default:
			return true
		}
	}
	return false
}

// Equal reports whether the two sets contain exactly the same keywords.
func (s KeywordSet) Equal(t KeywordSet) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Union returns a new set containing every keyword of s and t.
func (s KeywordSet) Union(t KeywordSet) KeywordSet {
	out := make(KeywordSet, 0, len(s)+len(t))
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			out = append(out, s[i])
			i++
		case s[i] > t[j]:
			out = append(out, t[j])
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	out = append(out, s[i:]...)
	out = append(out, t[j:]...)
	return out
}

// Jaccard returns the Jaccard similarity |s ∩ t| / |s ∪ t| (Definition 1).
// The similarity of two empty sets is defined as 0, matching the paper's
// convention that a feature object with no relevant keywords has score 0.
func Jaccard(s, t KeywordSet) float64 {
	inter := s.IntersectionSize(t)
	union := len(s) + len(t) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// UpperBound returns the best possible Jaccard score w̄(f,q) of Equation 1
// for a feature keyword list of length featureLen against a query keyword
// list of length queryLen:
//
//	w̄ = 1                    if featureLen < queryLen
//	w̄ = queryLen/featureLen  if featureLen >= queryLen
//
// It is the early-termination bound of eSPQlen (Lemma 2): once feature
// objects are consumed in increasing keyword-list length, every unseen
// feature object f' has UpperBound(|f'.W|, |q.W|) <= the bound of the
// current one.
func UpperBound(featureLen, queryLen int) float64 {
	if queryLen <= 0 {
		return 0
	}
	if featureLen < queryLen {
		return 1
	}
	return float64(queryLen) / float64(featureLen)
}

// Dict interns keyword strings to dense uint32 ids. It is safe for
// concurrent use. The zero value is not usable; call NewDict.
type Dict struct {
	mu    sync.RWMutex
	ids   map[string]uint32
	words []string
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{ids: make(map[string]uint32)}
}

// Intern returns the id of word, assigning the next dense id on first use.
func (d *Dict) Intern(word string) uint32 {
	d.mu.RLock()
	id, ok := d.ids[word]
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.ids[word]; ok {
		return id
	}
	id = uint32(len(d.words))
	d.ids[word] = id
	d.words = append(d.words, word)
	return id
}

// Lookup returns the id of word and whether it has been interned.
func (d *Dict) Lookup(word string) (uint32, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	id, ok := d.ids[word]
	return id, ok
}

// Word returns the string for an interned id, or "" if the id is unknown.
func (d *Dict) Word(id uint32) string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if int(id) >= len(d.words) {
		return ""
	}
	return d.words[id]
}

// Size returns the number of distinct words interned so far.
func (d *Dict) Size() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.words)
}

// InternAll interns every word and returns the resulting KeywordSet.
func (d *Dict) InternAll(words []string) KeywordSet {
	ids := make([]uint32, len(words))
	for i, w := range words {
		ids[i] = d.Intern(w)
	}
	return NewKeywordSet(ids...)
}

// LookupAll resolves every word that is already interned and returns the
// KeywordSet of the known ones. Unknown words are dropped: a query keyword
// that appears nowhere in the dictionary cannot match any feature object,
// so dropping it does not change any Jaccard intersection. Note that it
// does change the union size, so callers that need exact Jaccard values
// for queries with out-of-vocabulary terms should intern instead.
func (d *Dict) LookupAll(words []string) KeywordSet {
	ids := make([]uint32, 0, len(words))
	for _, w := range words {
		if id, ok := d.Lookup(w); ok {
			ids = append(ids, id)
		}
	}
	return NewKeywordSet(ids...)
}

// Words resolves a KeywordSet back to its strings, in id order.
func (d *Dict) Words(s KeywordSet) []string {
	out := make([]string, len(s))
	for i, id := range s {
		out[i] = d.Word(id)
	}
	return out
}

// Tokenize splits free text into lower-cased keyword tokens. Tokens are
// maximal runs of letters and digits; everything else is a separator. It is
// the normalization applied by the dataset loaders to textual annotations.
func Tokenize(s string) []string {
	var out []string
	start := -1
	flush := func(end int) {
		if start >= 0 {
			out = append(out, strings.ToLower(s[start:end]))
			start = -1
		}
	}
	for i, r := range s {
		alnum := r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9'
		if alnum {
			if start < 0 {
				start = i
			}
			continue
		}
		flush(i)
	}
	flush(len(s))
	return out
}
