package text

import (
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
)

func set(ids ...uint32) KeywordSet { return NewKeywordSet(ids...) }

func TestNewKeywordSetSortsAndDedups(t *testing.T) {
	tests := []struct {
		name string
		in   []uint32
		want KeywordSet
	}{
		{"empty", nil, nil},
		{"single", []uint32{7}, KeywordSet{7}},
		{"sorted", []uint32{1, 2, 3}, KeywordSet{1, 2, 3}},
		{"reverse", []uint32{3, 2, 1}, KeywordSet{1, 2, 3}},
		{"dups", []uint32{5, 1, 5, 1, 5}, KeywordSet{1, 5}},
		{"all same", []uint32{9, 9, 9}, KeywordSet{9}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := NewKeywordSet(tt.in...)
			if !got.Equal(tt.want) {
				t.Errorf("NewKeywordSet(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestNewKeywordSetDoesNotAliasInput(t *testing.T) {
	in := []uint32{3, 1, 2}
	s := NewKeywordSet(in...)
	in[0] = 99
	if !s.Equal(KeywordSet{1, 2, 3}) {
		t.Errorf("set aliased its input: %v", s)
	}
}

func TestContains(t *testing.T) {
	s := set(2, 4, 6)
	for _, id := range []uint32{2, 4, 6} {
		if !s.Contains(id) {
			t.Errorf("Contains(%d) = false, want true", id)
		}
	}
	for _, id := range []uint32{0, 1, 3, 5, 7} {
		if s.Contains(id) {
			t.Errorf("Contains(%d) = true, want false", id)
		}
	}
	if KeywordSet(nil).Contains(0) {
		t.Error("empty set should contain nothing")
	}
}

func TestIntersectionSize(t *testing.T) {
	tests := []struct {
		name string
		a, b KeywordSet
		want int
	}{
		{"disjoint", set(1, 2), set(3, 4), 0},
		{"identical", set(1, 2, 3), set(1, 2, 3), 3},
		{"partial", set(1, 2, 3), set(2, 3, 4), 2},
		{"empty left", nil, set(1), 0},
		{"empty right", set(1), nil, 0},
		{"both empty", nil, nil, 0},
		{"interleaved", set(1, 3, 5, 7), set(2, 3, 6, 7), 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.IntersectionSize(tt.b); got != tt.want {
				t.Errorf("IntersectionSize = %d, want %d", got, tt.want)
			}
			if got := tt.b.IntersectionSize(tt.a); got != tt.want {
				t.Errorf("IntersectionSize (flipped) = %d, want %d", got, tt.want)
			}
			if got, want := tt.a.Intersects(tt.b), tt.want > 0; got != want {
				t.Errorf("Intersects = %v, want %v", got, want)
			}
		})
	}
}

func TestUnion(t *testing.T) {
	got := set(1, 3, 5).Union(set(2, 3, 6))
	want := KeywordSet{1, 2, 3, 5, 6}
	if !got.Equal(want) {
		t.Errorf("Union = %v, want %v", got, want)
	}
}

func TestJaccardTable(t *testing.T) {
	tests := []struct {
		name string
		a, b KeywordSet
		want float64
	}{
		{"both empty", nil, nil, 0},
		{"one empty", set(1), nil, 0},
		{"identical", set(1, 2), set(1, 2), 1},
		{"disjoint", set(1), set(2), 0},
		{"half", set(1, 2), set(2, 3), 1.0 / 3},
		// Paper Table 2: q={italian} vs f1={italian,gourmet} -> 0.5
		{"paper f1", set(10), set(10, 11), 0.5},
		// q={italian} vs f4={italian} -> 1
		{"paper f4", set(10), set(10), 1},
		// q={italian} vs f2={chinese,cheap} -> 0
		{"paper f2", set(10), set(20, 21), 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Jaccard(tt.a, tt.b); math.Abs(got-tt.want) > 1e-15 {
				t.Errorf("Jaccard = %v, want %v", got, tt.want)
			}
		})
	}
}

func randSet(r *rand.Rand, maxLen int, vocab uint32) KeywordSet {
	n := r.Intn(maxLen + 1)
	ids := make([]uint32, n)
	for i := range ids {
		ids[i] = uint32(r.Intn(int(vocab)))
	}
	return NewKeywordSet(ids...)
}

func TestJaccardProperties(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		a := randSet(r, 12, 30)
		b := randSet(r, 12, 30)
		j := Jaccard(a, b)
		if j < 0 || j > 1 {
			t.Fatalf("Jaccard out of [0,1]: %v for %v %v", j, a, b)
		}
		if jb := Jaccard(b, a); jb != j {
			t.Fatalf("Jaccard not symmetric: %v vs %v", j, jb)
		}
		if len(a) > 0 && Jaccard(a, a) != 1 {
			t.Fatalf("Jaccard(a,a) != 1 for %v", a)
		}
		if !a.Intersects(b) && j != 0 {
			t.Fatalf("disjoint sets with nonzero Jaccard: %v %v", a, b)
		}
	}
}

// Equation 1's bound must dominate the true Jaccard score for every pair of
// keyword sets with the given lengths.
func TestUpperBoundDominatesJaccard(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		q := randSet(r, 10, 25)
		if len(q) == 0 {
			continue
		}
		f := randSet(r, 20, 25)
		ub := UpperBound(f.Len(), q.Len())
		if j := Jaccard(q, f); j > ub+1e-15 {
			t.Fatalf("UpperBound(%d,%d)=%v < Jaccard=%v for q=%v f=%v",
				f.Len(), q.Len(), ub, j, q, f)
		}
	}
}

// The bound must be non-increasing in the feature keyword length — that is
// what makes scanning by increasing |f.W| a valid early-termination order
// (Lemma 2).
func TestUpperBoundMonotone(t *testing.T) {
	for qLen := 1; qLen <= 12; qLen++ {
		prev := math.Inf(1)
		for fLen := 0; fLen <= 40; fLen++ {
			ub := UpperBound(fLen, qLen)
			if ub > prev {
				t.Fatalf("UpperBound(%d,%d)=%v > UpperBound(%d,%d)=%v",
					fLen, qLen, ub, fLen-1, qLen, prev)
			}
			prev = ub
		}
	}
}

func TestUpperBoundExactValues(t *testing.T) {
	tests := []struct {
		fLen, qLen int
		want       float64
	}{
		{0, 3, 1},   // shorter than query: bound is 1
		{2, 3, 1},   // still shorter
		{3, 3, 1},   // equal length: 3/3
		{6, 3, 0.5}, // |q|/|f|
		{30, 3, 0.1},
		{5, 0, 0}, // degenerate empty query
	}
	for _, tt := range tests {
		if got := UpperBound(tt.fLen, tt.qLen); math.Abs(got-tt.want) > 1e-15 {
			t.Errorf("UpperBound(%d,%d) = %v, want %v", tt.fLen, tt.qLen, got, tt.want)
		}
	}
}

func TestUnionSizeIdentity(t *testing.T) {
	f := func(a, b []uint32) bool {
		s, u := NewKeywordSet(a...), NewKeywordSet(b...)
		return s.Union(u).Len() == s.Len()+u.Len()-s.IntersectionSize(u)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDictInternRoundTrip(t *testing.T) {
	d := NewDict()
	a := d.Intern("italian")
	b := d.Intern("gourmet")
	if a == b {
		t.Fatal("distinct words got the same id")
	}
	if got := d.Intern("italian"); got != a {
		t.Errorf("re-intern changed id: %d vs %d", got, a)
	}
	if got := d.Word(a); got != "italian" {
		t.Errorf("Word(%d) = %q", a, got)
	}
	if got := d.Size(); got != 2 {
		t.Errorf("Size = %d, want 2", got)
	}
	if _, ok := d.Lookup("sushi"); ok {
		t.Error("Lookup of unknown word succeeded")
	}
	if got := d.Word(999); got != "" {
		t.Errorf("Word(unknown) = %q, want empty", got)
	}
}

func TestDictIdsAreDense(t *testing.T) {
	d := NewDict()
	words := []string{"a", "b", "c", "d"}
	for i, w := range words {
		if id := d.Intern(w); id != uint32(i) {
			t.Errorf("Intern(%q) = %d, want %d", w, id, i)
		}
	}
}

func TestDictConcurrentIntern(t *testing.T) {
	d := NewDict()
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	var wg sync.WaitGroup
	results := make([][]uint32, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ids := make([]uint32, len(words))
			for i, w := range words {
				ids[i] = d.Intern(w)
			}
			results[g] = ids
		}(g)
	}
	wg.Wait()
	if d.Size() != len(words) {
		t.Fatalf("Size = %d, want %d", d.Size(), len(words))
	}
	for g := 1; g < 16; g++ {
		if !reflect.DeepEqual(results[g], results[0]) {
			t.Fatalf("goroutine %d saw different ids: %v vs %v", g, results[g], results[0])
		}
	}
}

func TestInternAllAndWords(t *testing.T) {
	d := NewDict()
	s := d.InternAll([]string{"b", "a", "b"})
	if s.Len() != 2 {
		t.Fatalf("InternAll dedup failed: %v", s)
	}
	words := d.Words(s)
	// ids are assigned in first-seen order (b=0, a=1) and the set is sorted
	// by id, so words come back in intern order.
	if !reflect.DeepEqual(words, []string{"b", "a"}) {
		t.Errorf("Words = %v", words)
	}
}

func TestLookupAllDropsUnknown(t *testing.T) {
	d := NewDict()
	d.Intern("known")
	s := d.LookupAll([]string{"known", "unknown"})
	if s.Len() != 1 {
		t.Errorf("LookupAll = %v, want 1 keyword", s)
	}
}

func TestTokenize(t *testing.T) {
	tests := []struct {
		name string
		in   string
		want []string
	}{
		{"empty", "", nil},
		{"simple", "Italian Gourmet", []string{"italian", "gourmet"}},
		{"punctuation", "sushi, wine!", []string{"sushi", "wine"}},
		{"digits", "route66 cafe", []string{"route66", "cafe"}},
		{"separators only", "—!?", nil},
		{"hashtags", "#pizza #pasta", []string{"pizza", "pasta"}},
		{"mixed case run", "WiFi-Free", []string{"wifi", "free"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Tokenize(tt.in)
			if !reflect.DeepEqual(got, tt.want) {
				t.Errorf("Tokenize(%q) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

// quick-checked set algebra: Contains agrees with membership through
// Union and IntersectionSize, for arbitrary id slices.
func TestKeywordSetAlgebraQuick(t *testing.T) {
	f := func(a, b []uint32, probe uint32) bool {
		s, u := NewKeywordSet(a...), NewKeywordSet(b...)
		un := s.Union(u)
		// Union membership == either-side membership.
		if un.Contains(probe) != (s.Contains(probe) || u.Contains(probe)) {
			return false
		}
		// Intersection size is symmetric and bounded.
		is := s.IntersectionSize(u)
		if is != u.IntersectionSize(s) || is > s.Len() || is > u.Len() {
			return false
		}
		// Jaccard of a set with itself is 1 (or 0 when empty).
		j := Jaccard(s, s)
		if s.Len() == 0 {
			return j == 0
		}
		return j == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// quick-checked sortedness invariant of NewKeywordSet.
func TestKeywordSetSortedQuick(t *testing.T) {
	f := func(ids []uint32) bool {
		s := NewKeywordSet(ids...)
		for i := 1; i < len(s); i++ {
			if s[i-1] >= s[i] {
				return false
			}
		}
		// Every input id must be a member.
		for _, id := range ids {
			if !s.Contains(id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
