package core

import (
	"math"
	"testing"

	"spq/internal/data"
	"spq/internal/geo"
	"spq/internal/mapreduce"
	"spq/internal/text"
)

// trueModeScore recomputes the mode-aware score of a data object by
// definition, independently of every production code path.
func trueModeScore(objs []data.Object, q Query, id uint64) float64 {
	var p data.Object
	found := false
	for _, o := range objs {
		if o.Kind == data.DataObject && o.ID == id {
			p, found = o, true
			break
		}
	}
	if !found {
		return -1
	}
	r2 := q.Radius * q.Radius
	best := 0.0
	nnD2 := math.Inf(1)
	nnW := 0.0
	for _, f := range objs {
		if f.Kind != data.FeatureObject {
			continue
		}
		d2 := geo.Dist2(p.Loc, f.Loc)
		if d2 > r2 {
			continue
		}
		w := q.Score(f)
		switch q.Mode {
		case ScoreNearest:
			if w > 0 && (d2 < nnD2 || (d2 == nnD2 && w > nnW)) {
				nnD2, nnW = d2, w
			}
		case ScoreInfluence:
			c := w * math.Exp2(-math.Sqrt(d2)/q.Radius)
			if c > best {
				best = c
			}
		default:
			if w > best {
				best = w
			}
		}
	}
	if q.Mode == ScoreNearest {
		return nnW
	}
	return best
}

func assertModeTopK(t *testing.T, got []ResultItem, want []ResultItem, objs []data.Object, q Query) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("mode %v: got %d results, want %d\n got %+v\nwant %+v", q.Mode, len(got), len(want), got, want)
	}
	for i := range got {
		if math.Abs(got[i].Score-want[i].Score) > 1e-12 {
			t.Fatalf("mode %v result %d: score %v, want %v\n got %+v\nwant %+v",
				q.Mode, i, got[i].Score, want[i].Score, got, want)
		}
		if ts := trueModeScore(objs, q, got[i].ID); math.Abs(ts-got[i].Score) > 1e-12 {
			t.Fatalf("mode %v: id %d reported %v but true score is %v", q.Mode, got[i].ID, got[i].Score, ts)
		}
	}
}

func TestScoringModeStringer(t *testing.T) {
	if ScoreRange.String() != "range" || ScoreInfluence.String() != "influence" || ScoreNearest.String() != "nearest" {
		t.Error("mode names")
	}
	if ScoringMode(9).String() == "" {
		t.Error("unknown mode name empty")
	}
}

func TestContribution(t *testing.T) {
	q := Query{K: 1, Radius: 2, Keywords: text.NewKeywordSet(1)}
	if got := q.contribution(0.8, 1); got != 0.8 {
		t.Errorf("range contribution = %v, want w", got)
	}
	q.Mode = ScoreInfluence
	// At distance 0 the full score; at distance r exactly half.
	if got := q.contribution(0.8, 0); got != 0.8 {
		t.Errorf("influence at d=0: %v", got)
	}
	if got := q.contribution(0.8, 4); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("influence at d=r: %v, want 0.4", got)
	}
}

func TestSupportsMode(t *testing.T) {
	for _, alg := range Algorithms() {
		if !alg.SupportsMode(ScoreRange) || !alg.SupportsMode(ScoreInfluence) {
			t.Errorf("%v must support range and influence", alg)
		}
	}
	if !PSPQ.SupportsMode(ScoreNearest) {
		t.Error("PSPQ must support nearest")
	}
	if ESPQLen.SupportsMode(ScoreNearest) || ESPQSco.SupportsMode(ScoreNearest) {
		t.Error("early-termination algorithms must reject nearest")
	}
}

// Influence mode: a nearer feature with a lower textual score can win.
func TestInfluenceModeDistanceMatters(t *testing.T) {
	dict := text.NewDict()
	objs := []data.Object{
		{Kind: data.DataObject, ID: 1, Loc: geo.Point{X: 0, Y: 0}},
		// Perfect textual match at distance ~r: contribution 1*2^-0.99.
		{Kind: data.FeatureObject, ID: 10, Loc: geo.Point{X: 0.99, Y: 0},
			Keywords: dict.InternAll([]string{"a"})},
		// Half match right next to p: contribution 0.5*2^-0.01 ≈ 0.497.
		{Kind: data.FeatureObject, ID: 11, Loc: geo.Point{X: 0.01, Y: 0},
			Keywords: dict.InternAll([]string{"a", "b"})},
	}
	q := Query{K: 1, Radius: 1, Keywords: dict.LookupAll([]string{"a"})}

	// Range mode: the perfect match wins with score 1.
	if got := NaiveCentralized(objs, q); got[0].Score != 1 {
		t.Fatalf("range score = %v", got[0].Score)
	}
	// Influence mode: the far perfect match decays to ~0.504 and still
	// wins, but barely.
	q.Mode = ScoreInfluence
	got := NaiveCentralized(objs, q)
	want := math.Exp2(-0.99)
	if math.Abs(got[0].Score-want) > 1e-12 {
		t.Fatalf("influence score = %v, want %v", got[0].Score, want)
	}
}

// Nearest mode: the nearest relevant feature defines the score even when a
// farther feature matches better.
func TestNearestModePicksNearest(t *testing.T) {
	dict := text.NewDict()
	objs := []data.Object{
		{Kind: data.DataObject, ID: 1, Loc: geo.Point{X: 0, Y: 0}},
		{Kind: data.FeatureObject, ID: 10, Loc: geo.Point{X: 0.9, Y: 0},
			Keywords: dict.InternAll([]string{"a"})}, // perfect, far
		{Kind: data.FeatureObject, ID: 11, Loc: geo.Point{X: 0.1, Y: 0},
			Keywords: dict.InternAll([]string{"a", "b", "c", "d"})}, // weak, near
	}
	q := Query{K: 1, Radius: 1, Mode: ScoreNearest, Keywords: dict.LookupAll([]string{"a"})}
	got := NaiveCentralized(objs, q)
	if len(got) != 1 || math.Abs(got[0].Score-0.25) > 1e-12 {
		t.Fatalf("nearest score = %+v, want 0.25 (the near weak feature)", got)
	}
}

// All supported (algorithm, mode) combinations must agree with the naive
// oracle on random workloads.
func TestModesMatchOracleRandomized(t *testing.T) {
	for trial := 0; trial < 15; trial++ {
		objs, q := randomWorkload(int64(200+trial), 400, 30, 6)
		for _, mode := range []ScoringMode{ScoreRange, ScoreInfluence, ScoreNearest} {
			q := q
			q.Mode = mode
			want := NaiveCentralized(objs, q)
			gridN := 2 + trial%5
			gridRes := GridCentralized(objs, q, unitBounds, gridN)
			assertModeTopK(t, gridRes, want, objs, q)
			for _, alg := range Algorithms() {
				if !alg.SupportsMode(mode) {
					continue
				}
				rep, err := Run(alg, mapreduce.NewMemorySource(objs, 1+trial%4), q, Options{
					Bounds: unitBounds, GridN: gridN,
					Cluster: mapreduce.NewCluster(nil, 2, 2),
				})
				if err != nil {
					t.Fatalf("trial %d %v/%v: %v", trial, alg, mode, err)
				}
				assertModeTopK(t, rep.Results, want, objs, q)
			}
		}
	}
}

func TestNearestModeRejectedByEarlyTermination(t *testing.T) {
	objs, q := randomWorkload(5, 100, 10, 4)
	q.Mode = ScoreNearest
	for _, alg := range []Algorithm{ESPQLen, ESPQSco} {
		if _, err := Run(alg, mapreduce.NewMemorySource(objs, 2), q, Options{
			Bounds: unitBounds, GridN: 3,
		}); err == nil {
			t.Errorf("%v accepted nearest mode", alg)
		}
	}
}

func TestInvalidModeRejected(t *testing.T) {
	q := Query{K: 1, Radius: 1, Keywords: text.NewKeywordSet(1), Mode: ScoringMode(42)}
	if err := q.Validate(); err == nil {
		t.Error("invalid mode validated")
	}
}

// Influence-mode early termination must still fire under eSPQsco ordering.
func TestInfluenceEarlyTermination(t *testing.T) {
	objs, q := randomWorkload(7, 2000, 10, 4)
	q.K = 3
	q.Radius = 0.15
	q.Mode = ScoreInfluence
	repSco, err := Run(ESPQSco, mapreduce.NewMemorySource(objs, 4), q, Options{
		Bounds: unitBounds, GridN: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	repP, err := Run(PSPQ, mapreduce.NewMemorySource(objs, 4), q, Options{
		Bounds: unitBounds, GridN: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if repSco.Counters[CounterFeaturesExamined] >= repP.Counters[CounterFeaturesExamined] {
		t.Errorf("influence eSPQsco examined %d >= pSPQ %d",
			repSco.Counters[CounterFeaturesExamined], repP.Counters[CounterFeaturesExamined])
	}
}
