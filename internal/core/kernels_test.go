package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"spq/internal/text"
)

// scanSpanRef is the scalar reference: the exact per-record test the
// closure path in groupObjs.candidates performs, including its NaN
// convention (only d2 > r2 rejects, so NaN distances pass).
func scanSpanRef(xs, ys []float64, fx, fy, r2 float64, base int32) ([]int32, []float64) {
	var hits []int32
	var d2s []float64
	for i := range xs {
		dx, dy := xs[i]-fx, ys[i]-fy
		if d2 := dx*dx + dy*dy; !(d2 > r2) {
			hits = append(hits, base+int32(i))
			d2s = append(d2s, d2)
		}
	}
	return hits, d2s
}

func sameHits(t *testing.T, label string, wantH []int32, wantD []float64, gotH []int32, gotD []float64) {
	t.Helper()
	if len(gotH) != len(wantH) || len(gotD) != len(wantD) {
		t.Fatalf("%s: got %d hits / %d d2s, want %d / %d", label, len(gotH), len(gotD), len(wantH), len(wantD))
	}
	for n := range wantH {
		if gotH[n] != wantH[n] {
			t.Fatalf("%s: hit %d = index %d, want %d", label, n, gotH[n], wantH[n])
		}
		// Bit-level equality: the kernel must compute the identical d2.
		if math.Float64bits(gotD[n]) != math.Float64bits(wantD[n]) {
			t.Fatalf("%s: hit %d d2 = %v, want %v", label, n, gotD[n], wantD[n])
		}
	}
}

// TestScanSpanTails drives the batch-8 kernel across every tail length
// (n%8 from 0 through a full extra batch) and checks hits, indexes and
// squared distances against the scalar reference.
func TestScanSpanTails(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for n := 0; n <= 17; n++ {
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64()
			ys[i] = rng.Float64()
		}
		fx, fy := 0.5, 0.5
		for _, r2 := range []float64{0, 0.01, 0.1, 1, math.MaxFloat64} {
			wantH, wantD := scanSpanRef(xs, ys, fx, fy, r2, 7)
			gotH, gotD := scanSpan(xs, ys, fx, fy, r2, 7, nil, nil)
			sameHits(t, "fresh", wantH, wantD, gotH, gotD)

			// Appending to non-empty slices must keep the prefix.
			preH := []int32{-1}
			preD := []float64{-1}
			gotH, gotD = scanSpan(xs, ys, fx, fy, r2, 7, preH, preD)
			if gotH[0] != -1 || gotD[0] != -1 {
				t.Fatal("kernel clobbered the existing prefix")
			}
			sameHits(t, "append", wantH, wantD, gotH[1:], gotD[1:])
		}
	}
}

// TestScanSpanEmpty: zero-length spans produce no hits and leave the
// output slices untouched.
func TestScanSpanEmpty(t *testing.T) {
	h, d := scanSpan(nil, nil, 0, 0, 1, 0, nil, nil)
	if len(h) != 0 || len(d) != 0 {
		t.Fatalf("empty span produced %d hits", len(h))
	}
	h, d = scanSpan([]float64{}, []float64{}, 0, 0, 1, 3, []int32{9}, []float64{9})
	if len(h) != 1 || h[0] != 9 || len(d) != 1 {
		t.Fatalf("empty span with prefix: %v %v", h, d)
	}
}

// TestScanSpanNaN: NaN coordinates yield NaN distances, and NaN fails
// the d2 > r2 rejection — so the record is kept, batch and tail alike,
// exactly as the scalar closure keeps it. A kernel written with d2 <= r2
// would silently drop these.
func TestScanSpanNaN(t *testing.T) {
	nan := math.NaN()
	for _, n := range []int{1, 3, 8, 11} {
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = 10 // far outside r2: rejected unless NaN
			ys[i] = 10
		}
		xs[n-1] = nan
		if n >= 8 {
			xs[2] = nan // one inside the first full batch too
		}
		wantH, wantD := scanSpanRef(xs, ys, 0, 0, 1, 0)
		gotH, gotD := scanSpan(xs, ys, 0, 0, 1, 0, nil, nil)
		if len(wantH) == 0 {
			t.Fatal("reference dropped NaN records; test is vacuous")
		}
		sameHits(t, "nan", wantH, wantD, gotH, gotD)
	}
}

// TestIntersectDense checks the exhaustive intersection kernel against
// text.KeywordSet.IntersectionSize over random sorted duplicate-free
// sets, including empty sets and every tail length of the batch-8 loop.
func TestIntersectDense(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randSet := func(n int) []uint32 {
		seen := map[uint32]bool{}
		for len(seen) < n {
			seen[uint32(rng.Intn(40))] = true
		}
		out := make([]uint32, 0, n)
		for v := range seen {
			out = append(out, v)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	for trial := 0; trial < 200; trial++ {
		q := randSet(rng.Intn(6))
		f := randSet(rng.Intn(20))
		want := text.KeywordSet(q).IntersectionSize(text.KeywordSet(f))
		if got := intersectDense(q, f); got != want {
			t.Fatalf("intersectDense(%v, %v) = %d, want %d", q, f, got, want)
		}
	}
	if got := intersectDense(nil, nil); got != 0 {
		t.Fatalf("empty ∩ empty = %d", got)
	}
}
