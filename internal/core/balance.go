package core

import (
	"sort"

	"spq/internal/data"
	"spq/internal/grid"
	"spq/internal/mapreduce"
)

// Load balancing addresses the observation of Section 7.2.4: on skewed
// (clustered) data "it is hard to fairly assign the objects to Reducers,
// thus typically some Reducers are overburdened". When the number of
// reduce tasks is smaller than the number of cells, the default partition
// function assigns cells round-robin (cell % R), which lands neighboring
// hot cells on the same reducers. The balanced partitioner instead
// samples the input once, estimates each cell's reduce cost with the
// |Oi|·|Fi| model of Section 6.1, and assigns cells to reducers with the
// longest-processing-time-first greedy heuristic.

// CellWeights estimates the per-cell reduce cost from a sample of the
// input: for every sampled data object the cell's |Oi| grows, for every
// sampled relevant feature every cell it would be duplicated to grows its
// |Fi| (Lemma 1), and the final weight is (|Oi|+1)·(|Fi|+1), the
// Section 6.1 cost model smoothed so empty cells still get scheduled.
func CellWeights(src mapreduce.Source[data.Object], g *grid.Grid, q Query, samplePerSplit int) ([]float64, error) {
	dataCnt := make([]float64, g.NumCells())
	featCnt := make([]float64, g.NumCells())
	splits, err := src.Splits()
	if err != nil {
		return nil, err
	}
	var scratch []grid.CellID
	for _, s := range splits {
		taken := 0
		err := s.Each(func(o data.Object) bool {
			taken++
			if o.Kind == data.DataObject {
				dataCnt[g.CellOf(o.Loc)]++
			} else if o.Keywords.Intersects(q.Keywords) {
				featCnt[g.CellOf(o.Loc)]++
				scratch = g.DuplicationTargets(o.Loc, q.Radius, scratch[:0])
				for _, c := range scratch {
					featCnt[c]++
				}
			}
			return samplePerSplit <= 0 || taken < samplePerSplit
		})
		if err != nil {
			return nil, err
		}
	}
	weights := make([]float64, g.NumCells())
	for i := range weights {
		weights[i] = (dataCnt[i] + 1) * (featCnt[i] + 1)
	}
	return weights, nil
}

// BalanceCells assigns cells to numReducers reduce tasks with the LPT
// (longest processing time first) greedy heuristic over the estimated
// weights: cells are taken in decreasing weight order and each goes to the
// currently least-loaded reducer. The returned slice maps CellID to
// reducer index.
func BalanceCells(weights []float64, numReducers int) []int32 {
	order := make([]int, len(weights))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if weights[order[a]] != weights[order[b]] {
			return weights[order[a]] > weights[order[b]]
		}
		return order[a] < order[b]
	})
	load := make([]float64, numReducers)
	assign := make([]int32, len(weights))
	for _, cell := range order {
		best := 0
		for rdx := 1; rdx < numReducers; rdx++ {
			if load[rdx] < load[best] {
				best = rdx
			}
		}
		assign[cell] = int32(best)
		load[best] += weights[cell]
	}
	return assign
}

// MaxLoad returns the maximum per-reducer total weight under an
// assignment — the quantity LPT minimizes and the tests compare against
// the round-robin default.
func MaxLoad(weights []float64, assign []int32, numReducers int) float64 {
	load := make([]float64, numReducers)
	for cell, w := range weights {
		load[assign[cell]] += w
	}
	max := 0.0
	for _, l := range load {
		if l > max {
			max = l
		}
	}
	return max
}

// RoundRobinAssign is the default cell % R assignment, exposed so tests
// and the harness can quantify the improvement of BalanceCells.
func RoundRobinAssign(numCells, numReducers int) []int32 {
	assign := make([]int32, numCells)
	for i := range assign {
		assign[i] = int32(i % numReducers)
	}
	return assign
}
