package core

import (
	"spq/internal/data"
	"spq/internal/geo"
	"spq/internal/rtree"
	"spq/internal/text"
)

// This file holds the richer centralized reference systems: an R-tree
// driven evaluator (the index the original spatial preference query work
// [12, 16, 17] builds on) and an inverted-index driven evaluator (the
// textual access path of spatio-textual engines). Both are exact and
// cross-validated against NaiveCentralized; together with GridCentralized
// they are the "centralized processing" comparison points the paper argues
// are infeasible at its scale (Section 7.1: "centralized processing of
// this query type is infeasible in practice").

// RTreeCentralized evaluates the query with an STR-packed R-tree over the
// relevant feature objects: for each data object only the features within
// the radius are visited, via MINDIST-pruned range search.
func RTreeCentralized(objs []data.Object, q Query) []ResultItem {
	var dataObjs []data.Object
	var feats []data.Object
	var items []rtree.Item
	for _, o := range objs {
		if o.Kind == data.DataObject {
			dataObjs = append(dataObjs, o)
			continue
		}
		if !o.Keywords.Intersects(q.Keywords) {
			continue // map-side prune, same as Algorithm 1 line 9
		}
		items = append(items, rtree.Item{Loc: o.Loc, ID: uint64(len(feats))})
		feats = append(feats, o)
	}
	tree := rtree.Build(items, rtree.DefaultFanout)
	topk := NewTopK(q.K)
	for _, p := range dataObjs {
		var acc scoreAccum
		tree.VisitWithin(p.Loc, q.Radius, func(it rtree.Item) bool {
			f := feats[it.ID]
			acc.add(q, q.Score(f), geo.Dist2(p.Loc, f.Loc))
			return true
		})
		topk.Update(ResultItem{ID: p.ID, Loc: p.Loc, Score: acc.score(q)})
	}
	return topk.Items()
}

// InvertedIndexCentralized evaluates the query text-first: an inverted
// index over feature keywords yields exactly the features with non-zero
// Jaccard score, which are then bulk-loaded into an R-tree probed per data
// object. For selective queries (few matching features) this is the
// fastest centralized plan; for broad queries it degenerates to
// RTreeCentralized.
func InvertedIndexCentralized(objs []data.Object, q Query) []ResultItem {
	var dataObjs []data.Object
	var feats []data.Object
	ix := text.NewInvertedIndex()
	for _, o := range objs {
		if o.Kind == data.DataObject {
			dataObjs = append(dataObjs, o)
			continue
		}
		ix.Add(int32(len(feats)), o.Keywords)
		feats = append(feats, o)
	}
	ix.Finish()

	cands := ix.Candidates(q.Keywords)
	items := make([]rtree.Item, len(cands))
	for i, h := range cands {
		items[i] = rtree.Item{Loc: feats[h].Loc, ID: uint64(h)}
	}
	tree := rtree.Build(items, rtree.DefaultFanout)

	topk := NewTopK(q.K)
	for _, p := range dataObjs {
		var acc scoreAccum
		tree.VisitWithin(p.Loc, q.Radius, func(it rtree.Item) bool {
			f := feats[it.ID]
			acc.add(q, q.Score(f), geo.Dist2(p.Loc, f.Loc))
			return true
		})
		topk.Update(ResultItem{ID: p.ID, Loc: p.Loc, Score: acc.score(q)})
	}
	return topk.Items()
}
