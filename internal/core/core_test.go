package core

import (
	"math"
	"math/rand"
	"testing"

	"spq/internal/data"
	"spq/internal/geo"
	"spq/internal/mapreduce"
	"spq/internal/text"
)

// paperExample builds the dataset of Example 1 / Table 2 and the query
// q.W = {italian}, r = 1.5, over the [0,10]x[0,10] space of Figure 1.
func paperExample() ([]data.Object, *text.Dict) {
	dict := text.NewDict()
	f := func(id uint64, x, y float64, words ...string) data.Object {
		return data.Object{
			Kind: data.FeatureObject, ID: id,
			Loc:      geo.Point{X: x, Y: y},
			Keywords: dict.InternAll(words),
		}
	}
	d := func(id uint64, x, y float64) data.Object {
		return data.Object{Kind: data.DataObject, ID: id, Loc: geo.Point{X: x, Y: y}}
	}
	objs := []data.Object{
		d(1, 4.6, 4.8), d(2, 7.5, 1.7), d(3, 8.9, 5.2), d(4, 1.8, 1.8), d(5, 1.9, 9.0),
		f(101, 2.8, 1.2, "italian", "gourmet"),
		f(102, 5.0, 3.8, "chinese", "cheap"),
		f(103, 8.7, 1.9, "sushi", "wine"),
		f(104, 3.8, 5.5, "italian"),
		f(105, 5.2, 5.1, "mexican", "exotic"),
		f(106, 7.4, 5.4, "greek", "traditional"),
		f(107, 3.0, 8.1, "italian", "spaghetti"),
		f(108, 9.5, 7.0, "indian"),
	}
	return objs, dict
}

func paperQuery(dict *text.Dict, k int) Query {
	return Query{K: k, Radius: 1.5, Keywords: dict.LookupAll([]string{"italian"})}
}

var paperBounds = geo.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}

// TestPaperExample reproduces Example 1: the top-1 hotel is p1 with score 1
// (via f4), and the runner-ups are p4 and p5 with score 0.5.
func TestPaperExample(t *testing.T) {
	objs, dict := paperExample()
	q := paperQuery(dict, 1)

	got := NaiveCentralized(objs, q)
	if len(got) != 1 || got[0].ID != 1 || got[0].Score != 1 {
		t.Fatalf("naive top-1 = %+v, want p1 score 1", got)
	}

	// k = 3 returns p1 (1.0), then p4 and p5 (0.5 each).
	q3 := paperQuery(dict, 3)
	got3 := NaiveCentralized(objs, q3)
	if len(got3) != 3 {
		t.Fatalf("naive top-3 = %+v", got3)
	}
	wantIDs := []uint64{1, 4, 5}
	wantScores := []float64{1, 0.5, 0.5}
	for i := range wantIDs {
		if got3[i].ID != wantIDs[i] || got3[i].Score != wantScores[i] {
			t.Errorf("top-3[%d] = %+v, want id %d score %g", i, got3[i], wantIDs[i], wantScores[i])
		}
	}

	// Only 3 data objects have nonzero score, so k = 5 returns 3 results.
	q5 := paperQuery(dict, 5)
	if got5 := NaiveCentralized(objs, q5); len(got5) != 3 {
		t.Errorf("naive top-5 = %d results, want 3 (zero scores unreported)", len(got5))
	}
}

// All three MapReduce algorithms must answer the paper example exactly,
// on a 4x4 grid matching Figure 2.
func TestPaperExampleAllAlgorithms(t *testing.T) {
	objs, dict := paperExample()
	for _, alg := range Algorithms() {
		for _, k := range []int{1, 2, 3, 5} {
			q := paperQuery(dict, k)
			rep, err := Run(alg, mapreduce.NewMemorySource(objs, 3), q, Options{
				Bounds: paperBounds,
				GridN:  4,
			})
			if err != nil {
				t.Fatalf("%v k=%d: %v", alg, k, err)
			}
			want := NaiveCentralized(objs, q)
			assertSameTopK(t, rep.Results, want, objs, q)
		}
	}
}

// trueScore recomputes τ(p) by definition.
func trueScore(objs []data.Object, q Query, id uint64) float64 {
	var p data.Object
	found := false
	for _, o := range objs {
		if o.Kind == data.DataObject && o.ID == id {
			p, found = o, true
			break
		}
	}
	if !found {
		return -1
	}
	best := 0.0
	r2 := q.Radius * q.Radius
	for _, f := range objs {
		if f.Kind != data.FeatureObject {
			continue
		}
		if geo.Dist2(p.Loc, f.Loc) <= r2 {
			if w := q.Score(f); w > best {
				best = w
			}
		}
	}
	return best
}

// assertSameTopK validates got against the ground truth while tolerating
// ties: the score sequences must match exactly, and every returned id must
// carry its true score.
func assertSameTopK(t *testing.T, got, want []ResultItem, objs []data.Object, q Query) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d\n got: %+v\nwant: %+v", len(got), len(want), got, want)
	}
	seen := map[uint64]bool{}
	for i := range got {
		if math.Abs(got[i].Score-want[i].Score) > 1e-12 {
			t.Fatalf("result %d score = %v, want %v\n got: %+v\nwant: %+v",
				i, got[i].Score, want[i].Score, got, want)
		}
		if seen[got[i].ID] {
			t.Fatalf("duplicate id %d in results %+v", got[i].ID, got)
		}
		seen[got[i].ID] = true
		if ts := trueScore(objs, q, got[i].ID); math.Abs(ts-got[i].Score) > 1e-12 {
			t.Fatalf("result %d (id %d) reported score %v but true score is %v",
				i, got[i].ID, got[i].Score, ts)
		}
	}
}

// randomWorkload builds a reproducible random dataset and query.
func randomWorkload(seed int64, n int, vocab int, maxKw int) ([]data.Object, Query) {
	r := rand.New(rand.NewSource(seed))
	var objs []data.Object
	for i := 0; i < n; i++ {
		o := data.Object{
			ID:  uint64(i),
			Loc: geo.Point{X: r.Float64(), Y: r.Float64()},
		}
		if i%2 == 1 {
			o.Kind = data.FeatureObject
			nk := 1 + r.Intn(maxKw)
			ids := make([]uint32, nk)
			for j := range ids {
				ids[j] = uint32(r.Intn(vocab))
			}
			o.Keywords = text.NewKeywordSet(ids...)
		}
		objs = append(objs, o)
	}
	qk := make([]uint32, 1+r.Intn(3))
	for j := range qk {
		qk[j] = uint32(r.Intn(vocab))
	}
	q := Query{
		K:        1 + r.Intn(10),
		Radius:   0.01 + r.Float64()*0.2,
		Keywords: text.NewKeywordSet(qk...),
	}
	return objs, q
}

var unitBounds = geo.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}

// Property test: on random workloads, every MapReduce algorithm and the
// grid-indexed baseline agree with the naive oracle, across grid sizes,
// parallelism levels, and spill settings.
func TestAlgorithmsMatchOracleRandomized(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		objs, q := randomWorkload(int64(trial), 400, 40, 6)
		want := NaiveCentralized(objs, q)
		gridN := 1 + trial%7
		gridRes := GridCentralized(objs, q, unitBounds, gridN)
		assertSameTopK(t, gridRes, want, objs, q)
		for _, alg := range Algorithms() {
			opts := Options{
				Bounds:  unitBounds,
				GridN:   gridN,
				Cluster: mapreduce.NewCluster(nil, 1+trial%4, 1+trial%3),
			}
			if trial%5 == 0 {
				opts.SpillEvery = 64
			}
			rep, err := Run(alg, mapreduce.NewMemorySource(objs, 1+trial%5), q, opts)
			if err != nil {
				t.Fatalf("trial %d %v: %v", trial, alg, err)
			}
			assertSameTopK(t, rep.Results, want, objs, q)
		}
	}
}

// Radius values larger than a grid cell must still be answered correctly
// (duplication spans multiple rings).
func TestLargeRadiusCorrectness(t *testing.T) {
	objs, q := randomWorkload(99, 300, 20, 5)
	q.Radius = 0.45 // grid 5x5 over unit square: cell edge 0.2 < r
	want := NaiveCentralized(objs, q)
	for _, alg := range Algorithms() {
		rep, err := Run(alg, mapreduce.NewMemorySource(objs, 3), q, Options{
			Bounds: unitBounds, GridN: 5,
		})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		assertSameTopK(t, rep.Results, want, objs, q)
	}
}

func TestQueryValidate(t *testing.T) {
	kw := text.NewKeywordSet(1)
	tests := []struct {
		name string
		q    Query
		ok   bool
	}{
		{"valid", Query{K: 1, Radius: 0.5, Keywords: kw}, true},
		{"zero radius ok", Query{K: 1, Radius: 0, Keywords: kw}, true},
		{"zero k", Query{K: 0, Radius: 0.5, Keywords: kw}, false},
		{"negative radius", Query{K: 1, Radius: -1, Keywords: kw}, false},
		{"no keywords", Query{K: 1, Radius: 0.5}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.q.Validate(); (err == nil) != tt.ok {
				t.Errorf("Validate = %v, ok = %v", err, tt.ok)
			}
		})
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	objs, dict := paperExample()
	src := mapreduce.NewMemorySource(objs, 1)
	if _, err := Run(PSPQ, src, Query{}, Options{Bounds: paperBounds, GridN: 2}); err == nil {
		t.Error("invalid query accepted")
	}
	q := paperQuery(dict, 1)
	if _, err := Run(PSPQ, src, q, Options{GridN: 2}); err == nil {
		t.Error("empty bounds accepted")
	}
	if _, err := Run(Algorithm(42), src, q, Options{Bounds: paperBounds, GridN: 2}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestTopK(t *testing.T) {
	tk := NewTopK(2)
	if tk.Threshold() != 0 || tk.Len() != 0 {
		t.Fatal("fresh TopK not empty")
	}
	if tk.Update(ResultItem{ID: 1, Score: 0}) {
		t.Error("zero score accepted")
	}
	tk.Update(ResultItem{ID: 1, Score: 0.3})
	if tk.Threshold() != 0 {
		t.Errorf("τ with 1/2 items = %v, want 0", tk.Threshold())
	}
	tk.Update(ResultItem{ID: 2, Score: 0.5})
	if tk.Threshold() != 0.3 {
		t.Errorf("τ = %v, want 0.3", tk.Threshold())
	}
	// Equal to τ must not displace.
	if tk.Update(ResultItem{ID: 3, Score: 0.3}) {
		t.Error("tie displaced an item")
	}
	// Higher score displaces the minimum.
	tk.Update(ResultItem{ID: 4, Score: 0.9})
	items := tk.Items()
	if len(items) != 2 || items[0].ID != 4 || items[1].ID != 2 {
		t.Errorf("items = %+v", items)
	}
	if tk.Threshold() != 0.5 {
		t.Errorf("τ = %v, want 0.5", tk.Threshold())
	}
	// Improving a tracked item re-sorts and lifts τ.
	tk.Update(ResultItem{ID: 2, Score: 1.0})
	if tk.Threshold() != 0.9 {
		t.Errorf("τ after improvement = %v, want 0.9", tk.Threshold())
	}
	// Downgrade attempts are ignored.
	if tk.Update(ResultItem{ID: 2, Score: 0.1}) {
		t.Error("downgrade accepted")
	}
}

func TestTopKMatchesSortOracle(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		k := 1 + r.Intn(6)
		tk := NewTopK(k)
		best := map[uint64]float64{}
		for i := 0; i < 100; i++ {
			id := uint64(r.Intn(20))
			score := float64(r.Intn(10)) / 10
			tk.Update(ResultItem{ID: id, Score: score})
			if score > best[id] {
				best[id] = score
			}
		}
		var want []ResultItem
		for id, s := range best {
			if s > 0 {
				want = append(want, ResultItem{ID: id, Score: s})
			}
		}
		SortResults(want)
		if len(want) > k {
			want = want[:k]
		}
		got := tk.Items()
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d items, want %d", trial, len(got), len(want))
		}
		for i := range want {
			// Scores must agree; ids may differ only on τ ties.
			if got[i].Score != want[i].Score {
				t.Fatalf("trial %d item %d: got %+v want %+v", trial, i, got, want)
			}
			if got[i].Score > tk.Threshold() && got[i].ID != want[i].ID {
				t.Fatalf("trial %d: non-tied item differs: got %+v want %+v", trial, got, want)
			}
		}
	}
}

func TestMergeTopK(t *testing.T) {
	a := []ResultItem{{ID: 1, Score: 0.9}, {ID: 2, Score: 0.4}}
	b := []ResultItem{{ID: 3, Score: 0.7}, {ID: 4, Score: 0.4}}
	got := MergeTopK(3, a, b)
	if len(got) != 3 || got[0].ID != 1 || got[1].ID != 3 {
		t.Errorf("merge = %+v", got)
	}
	// Tie at 0.4: lower id wins.
	if got[2].ID != 2 {
		t.Errorf("tie break: %+v", got[2])
	}
	if len(MergeTopK(5)) != 0 {
		t.Error("empty merge should be empty")
	}
}

// Early termination must actually reduce the number of features examined:
// on a workload with many relevant features, eSPQsco must examine far
// fewer than pSPQ, and eSPQlen must never examine more than pSPQ.
func TestEarlyTerminationExaminesFewerFeatures(t *testing.T) {
	objs, q := randomWorkload(7, 2000, 10, 4)
	q.K = 3
	q.Radius = 0.1
	counts := map[Algorithm]int64{}
	for _, alg := range Algorithms() {
		rep, err := Run(alg, mapreduce.NewMemorySource(objs, 4), q, Options{
			Bounds: unitBounds, GridN: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		counts[alg] = rep.Counters[CounterFeaturesExamined]
	}
	if counts[PSPQ] == 0 {
		t.Fatal("pSPQ examined no features; workload too sparse")
	}
	if counts[ESPQSco] >= counts[PSPQ] {
		t.Errorf("eSPQsco examined %d features, pSPQ %d — no early termination benefit",
			counts[ESPQSco], counts[PSPQ])
	}
	if counts[ESPQLen] > counts[PSPQ] {
		t.Errorf("eSPQlen examined %d > pSPQ %d", counts[ESPQLen], counts[PSPQ])
	}
}

// The keyword-pruning ablation must not change results.
func TestDisableKeywordPruneSameResults(t *testing.T) {
	objs, q := randomWorkload(13, 500, 30, 5)
	want := NaiveCentralized(objs, q)
	for _, alg := range Algorithms() {
		rep, err := Run(alg, mapreduce.NewMemorySource(objs, 2), q, Options{
			Bounds: unitBounds, GridN: 4, DisableKeywordPrune: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		assertSameTopK(t, rep.Results, want, objs, q)
	}
}

// Fewer reducers than cells: reduce tasks process several cells as
// separate groups and results are unchanged.
func TestFewerReducersThanCells(t *testing.T) {
	objs, q := randomWorkload(17, 600, 25, 5)
	want := NaiveCentralized(objs, q)
	for _, alg := range Algorithms() {
		rep, err := Run(alg, mapreduce.NewMemorySource(objs, 3), q, Options{
			Bounds: unitBounds, GridN: 6, NumReducers: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		assertSameTopK(t, rep.Results, want, objs, q)
	}
}

// Reduce-task failure with retry enabled must not change results.
func TestFailureInjectionRecovers(t *testing.T) {
	objs, q := randomWorkload(23, 400, 20, 5)
	want := NaiveCentralized(objs, q)
	rep, err := Run(ESPQSco, mapreduce.NewMemorySource(objs, 3), q, Options{
		Bounds:      unitBounds,
		GridN:       4,
		MaxAttempts: 3,
		FaultInjector: func(kind mapreduce.TaskKind, taskID, attempt int) error {
			if attempt == 1 && taskID%3 == 0 {
				return errTestInjected
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	assertSameTopK(t, rep.Results, want, objs, q)
}

var errTestInjected = errInjected{}

type errInjected struct{}

func (errInjected) Error() string { return "injected fault" }

// The duplication counter must be positive whenever the radius is positive
// and features lie near cell borders, and zero for radius 0.
func TestDuplicationCounter(t *testing.T) {
	objs, q := randomWorkload(31, 500, 5, 3)
	rep, err := Run(PSPQ, mapreduce.NewMemorySource(objs, 2), q, Options{
		Bounds: unitBounds, GridN: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Counters[CounterDuplicates] == 0 {
		t.Error("no duplicates recorded for positive radius")
	}

	q0 := q
	q0.Radius = 0
	rep0, err := Run(PSPQ, mapreduce.NewMemorySource(objs, 2), q0, Options{
		Bounds: unitBounds, GridN: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep0.Counters[CounterDuplicates] != 0 {
		t.Errorf("radius 0 produced %d duplicates", rep0.Counters[CounterDuplicates])
	}
}

// Algorithm and Kind stringers.
func TestStringers(t *testing.T) {
	if PSPQ.String() != "pSPQ" || ESPQLen.String() != "eSPQlen" || ESPQSco.String() != "eSPQsco" {
		t.Error("algorithm names")
	}
	if Algorithm(9).String() == "" {
		t.Error("unknown algorithm name empty")
	}
}
