package core

import (
	"math"
	"sync"

	"spq/internal/data"
	"spq/internal/geo"
	"spq/internal/grid"
)

// objGrid is a per-cell sub-grid bucket index over the data objects of one
// reduce group. The paper's reduce functions score every feature against
// every data object of the cell; with a few thousand objects per cell
// (clustered data) that inner loop dominates. The index lays a small
// uniform grid over the tight bounding box of the objects and stores the
// object indices bucket by bucket (CSR layout), so a feature only visits
// the buckets its radius can reach.
//
// The bucket filter is a bounding-square test: every object within
// distance r of the probe point is guaranteed to be in a visited bucket,
// but visited objects may still be farther than r — callers re-check the
// exact distance, so results are identical to the full scan.
type objGrid struct {
	minX, minY float64
	invW, invH float64 // buckets per unit length along x and y
	nx, ny     int
	start      []int32 // CSR offsets, len nx*ny+1
	idx        []int32 // object indices grouped by bucket (row-major)
}

// objGridMinObjs is the group size below which the plain scan is cheaper
// than building and probing the index.
const objGridMinObjs = 32

// targetBucketOccupancy is the average number of objects per bucket the
// index aims for: small enough that a probe touches few objects, large
// enough that the bucket directory stays tiny.
const targetBucketOccupancy = 8

// buildObjGrid indexes objs, or returns nil when the group is too small
// for the index to pay off.
func buildObjGrid(objs []data.Object) *objGrid {
	n := len(objs)
	if n < objGridMinObjs {
		return nil
	}
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for i := range objs {
		p := objs[i].Loc
		minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
		minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
	}
	side := int(math.Sqrt(float64(n) / targetBucketOccupancy))
	if side < 1 {
		side = 1
	}
	if side > 256 {
		side = 256
	}
	b := &objGrid{minX: minX, minY: minY, nx: side, ny: side}
	if w := maxX - minX; w > 0 {
		b.invW = float64(b.nx) / w
	} else {
		b.nx = 1
	}
	if h := maxY - minY; h > 0 {
		b.invH = float64(b.ny) / h
	} else {
		b.ny = 1
	}
	bucketOf := func(p geo.Point) int {
		col := clamp(int((p.X-b.minX)*b.invW), b.nx)
		row := clamp(int((p.Y-b.minY)*b.invH), b.ny)
		return row*b.nx + col
	}
	// Counting sort of object indices into CSR buckets.
	b.start = make([]int32, b.nx*b.ny+1)
	for i := range objs {
		b.start[bucketOf(objs[i].Loc)+1]++
	}
	for i := 1; i < len(b.start); i++ {
		b.start[i] += b.start[i-1]
	}
	b.idx = make([]int32, n)
	fill := make([]int32, b.nx*b.ny)
	copy(fill, b.start[:len(b.start)-1])
	for i := range objs {
		bk := bucketOf(objs[i].Loc)
		b.idx[fill[bk]] = int32(i)
		fill[bk]++
	}
	return b
}

// clamp limits i to [0, n-1].
func clamp(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// floorIdx converts a fractional bucket coordinate to an index, saturating
// into [-1, n] so that out-of-range (or overflowed) floats never produce a
// wild integer conversion.
func floorIdx(f float64, n int) int {
	if !(f >= 0) { // catches negatives and NaN
		return -1
	}
	if f >= float64(n) {
		return n
	}
	return int(f)
}

// spans invokes fn with the idx range [lo, hi) of every bucket row
// intersecting the axis-aligned square of half-edge r around p (a
// superset of the disk of radius r; exact distances are the caller's
// job). It returns the number of index slots covered. Buckets of one row
// are contiguous in idx, so each row's whole column range is one span.
func (b *objGrid) spans(p geo.Point, r float64, fn func(lo, hi int32)) int64 {
	lox := floorIdx((p.X-r-b.minX)*b.invW, b.nx)
	hix := floorIdx((p.X+r-b.minX)*b.invW, b.nx)
	loy := floorIdx((p.Y-r-b.minY)*b.invH, b.ny)
	hiy := floorIdx((p.Y+r-b.minY)*b.invH, b.ny)
	if hix < 0 || hiy < 0 || lox >= b.nx || loy >= b.ny {
		return 0
	}
	lox, hix = clamp(lox, b.nx), clamp(hix, b.nx)
	loy, hiy = clamp(loy, b.ny), clamp(hiy, b.ny)
	var n int64
	for row := loy; row <= hiy; row++ {
		base := row * b.nx
		lo, hi := b.start[base+lox], b.start[base+hix+1]
		n += int64(hi - lo)
		fn(lo, hi)
	}
	return n
}

// each invokes fn for every object index in a bucket intersecting the
// probe square (see spans) and returns the number of objects visited.
func (b *objGrid) each(p geo.Point, r float64, fn func(i int32)) int64 {
	return b.spans(p, r, func(lo, hi int32) {
		for _, i := range b.idx[lo:hi] {
			fn(i)
		}
	})
}

// groupObjs accumulates the data objects of one reduce group, lazily
// (re)building the bucket index over them. Data objects normally all
// precede the first feature in comparator order, so the index is built
// exactly once per group; the rebuild-on-growth check keeps the exotic
// interleaved case (identical sort keys for data and features) correct.
//
// Under a DataView the group is seeded with the view cell's shared slice
// and prebuilt index instead (setView); shared backing arrays are never
// written — add copies out first — and never survive into the scratch
// pool.
type groupObjs struct {
	objs []data.Object
	// xs/ys are the view cell's dense coordinate columns, permuted into
	// bucket order with the index (see BuildDataView); non-nil only on a
	// view-seeded group, where they enable the scanSpan kernel. Growing
	// the group leaves them stale, so add clears them and the scoring
	// paths fall back to the per-object closures.
	xs, ys  []float64
	index   *objGrid
	indexed int // len(objs) the index was last built over
	// shared marks objs as aliasing an immutable DataView cell: growing
	// the group (delta records arriving in-stream) must copy out first,
	// and the scratch pool must drop the alias rather than truncate it —
	// appending through a truncated alias would scribble over view memory
	// other queries are concurrently reading.
	shared bool
}

func (g *groupObjs) add(o data.Object) {
	g.xs, g.ys = nil, nil
	if g.shared {
		g.objs = append(append(make([]data.Object, 0, len(g.objs)+8), g.objs...), o)
		g.shared = false
		return
	}
	g.objs = append(g.objs, o)
}

// setView seeds the group with a view cell's objects, coordinate columns
// and prebuilt index.
func (g *groupObjs) setView(vc *viewCell) {
	g.objs = vc.objs
	g.xs, g.ys = vc.xs, vc.ys
	g.index = vc.index
	g.indexed = len(vc.objs)
	g.shared = true
}

// reduceScratch is the pooled per-group state of the reduce functions:
// the collected data objects with their bucket index, the dense
// per-object bookkeeping slices (each reduce function uses the one
// matching its algorithm), and the top-k list. A reduce task visits one
// group per grid cell — thousands on fine grids — and reusing the backing
// arrays across groups keeps the per-group constant cost out of the
// allocator.
type reduceScratch struct {
	g       groupObjs
	scores  []float64
	covered []bool
	best    []nnState
	// hits/hitD2 are the kernel path's per-feature output: the indexes
	// of the objects within range and their squared distances.
	hits  []int32
	hitD2 []float64
	topk  *TopK
}

var scratchPool = sync.Pool{New: func() any { return new(reduceScratch) }}

// getScratch returns a reset scratch with an empty top-k of capacity k.
// Return it with putScratch when the group is done.
func getScratch(k int) *reduceScratch {
	s := scratchPool.Get().(*reduceScratch)
	if s.g.shared {
		// The previous group aliased a DataView cell; drop the alias
		// instead of truncating it, so appends can never write into the
		// shared view arrays.
		s.g.objs = nil
		s.g.shared = false
	}
	s.g.objs = s.g.objs[:0]
	s.g.xs, s.g.ys = nil, nil
	s.g.index = nil
	s.g.indexed = 0
	s.scores = s.scores[:0]
	s.covered = s.covered[:0]
	s.best = s.best[:0]
	if s.topk == nil {
		s.topk = NewTopK(k)
	} else {
		s.topk.Reset(k)
	}
	return s
}

// seedView points the scratch at the group's DataView cell, as if the
// cell's data objects had just arrived in-stream: shared objects and
// prebuilt index in, per-object bookkeeping slices zero-filled to match.
// Safe no-op when the view has no objects in the cell.
func (s *reduceScratch) seedView(view *DataView, cell grid.CellID) {
	vc := view.cell(cell)
	if vc == nil {
		return
	}
	s.g.setView(vc)
	n := len(vc.objs)
	s.scores = growZeroed(s.scores, n)
	s.covered = growZeroed(s.covered, n)
	s.best = growZeroed(s.best, n)
	for i := range s.best {
		s.best[i] = nnState{d2: math.Inf(1)}
	}
}

// growZeroed returns s resized to n zero-valued elements, reusing the
// backing array when it is large enough.
func growZeroed[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	var zero T
	for i := range s {
		s[i] = zero
	}
	return s
}

func putScratch(s *reduceScratch) { scratchPool.Put(s) }

// candidates invokes fn(i) for every object that may lie within distance r
// of p — via the bucket index when it pays off, linearly otherwise — and
// returns the number of candidates visited. Candidates may still be
// farther than r; the caller checks exact distances.
func (g *groupObjs) candidates(p geo.Point, r float64, fn func(i int32)) int64 {
	if g.indexed != len(g.objs) {
		g.index = buildObjGrid(g.objs)
		g.indexed = len(g.objs)
	}
	if g.index == nil {
		for i := range g.objs {
			fn(int32(i))
		}
		return int64(len(g.objs))
	}
	return g.index.each(p, r, fn)
}

// kernelHits is the vectorized counterpart of candidates for view-seeded
// groups (g.xs/g.ys set): it resolves the candidate spans and filters
// them by exact distance in one pass with the batch-8 kernel, appending
// each in-range object's index and squared distance to hits/d2s. The
// visited count it returns matches candidates exactly — both count
// bucket-square candidates, before the distance test — so the score-
// computation counters stay comparable across paths.
func (g *groupObjs) kernelHits(p geo.Point, r, r2 float64, hits *[]int32, d2s *[]float64) int64 {
	h, d := (*hits)[:0], (*d2s)[:0]
	var n int64
	if g.index == nil {
		h, d = scanSpan(g.xs, g.ys, p.X, p.Y, r2, 0, h, d)
		n = int64(len(g.objs))
	} else {
		// View indexes are identity-permuted (BuildDataView), so a span
		// [lo, hi) is a contiguous run of the coordinate columns.
		n = g.index.spans(p, r, func(lo, hi int32) {
			h, d = scanSpan(g.xs[lo:hi], g.ys[lo:hi], p.X, p.Y, r2, lo, h, d)
		})
	}
	*hits, *d2s = h, d
	return n
}
