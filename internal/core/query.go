// Package core implements the paper's primary contribution: parallel and
// distributed processing of spatial preference queries using keywords
// (SPQ). Given a data object dataset O, a feature dataset F and a query
// q(k, r, W), the query returns the k data objects p with the highest
// score τ(p) = max{ w(f,q) : f ∈ F, d(p,f) ≤ r }, where w(f,q) is the
// Jaccard similarity of q.W and f.W (Definitions 1 and 2).
//
// Three MapReduce algorithms are provided (Sections 4 and 5):
//
//   - PSPQ: grid partitioning with feature duplication, no early
//     termination (Algorithms 1–2),
//   - ESPQLen: feature objects sorted by increasing keyword-list length
//     with the Equation-1 bound for early termination (Algorithms 3–4),
//   - ESPQSco: feature objects sorted by decreasing Jaccard score, early
//     termination after k covered data objects (Algorithms 5–6),
//
// plus four centralized reference evaluators (naive, grid-indexed,
// R-tree, inverted-index) used for cross-validation, the influence and
// nearest-neighbor scoring extensions (scoring.go) and cost-based reducer
// load balancing for skewed data (balance.go).
//
// Convention for zero scores: a data object with no relevant feature
// within distance r has τ(p) = 0 and is never reported; consequently a
// query may return fewer than k results. This matches the paper's
// algorithms, where objects enter the top-k list only when a feature
// object improves their score.
package core

import (
	"fmt"
	"math"
	"sort"

	"spq/internal/data"
	"spq/internal/geo"
	"spq/internal/text"
)

// Query is a spatial preference query using keywords, q(k, r, W).
type Query struct {
	// K is the number of data objects to return.
	K int
	// Radius is the neighborhood distance threshold r.
	Radius float64
	// Keywords is the query keyword set q.W, interned in the same
	// dictionary as the feature dataset.
	Keywords text.KeywordSet
	// Mode selects how in-range features contribute to scores. The zero
	// value is the paper's range mode (Definition 2); see ScoringMode for
	// the influence and nearest-neighbor extensions.
	Mode ScoringMode
}

// Validate reports structural problems with the query.
func (q Query) Validate() error {
	switch {
	case q.K <= 0:
		return fmt.Errorf("core: query k = %d, must be positive", q.K)
	case math.IsNaN(q.Radius) || math.IsInf(q.Radius, 0):
		// q.Radius < 0 is false for NaN, and a NaN or infinite radius
		// makes every distance comparison silently wrong — reject it
		// explicitly instead.
		return fmt.Errorf("core: query radius = %g, must be finite", q.Radius)
	case q.Radius < 0:
		return fmt.Errorf("core: query radius = %g, must be non-negative", q.Radius)
	case q.Keywords.Len() == 0:
		return fmt.Errorf("core: query has no keywords")
	case q.Mode != ScoreRange && q.Mode != ScoreInfluence && q.Mode != ScoreNearest:
		return fmt.Errorf("core: unknown scoring mode %d", int(q.Mode))
	}
	return nil
}

// Score returns w(f,q), the non-spatial score of a feature object for the
// query (Definition 1). Data objects score 0. Short set pairs — the
// overwhelming case, queries being a handful of keywords — take the
// branch-free intersection kernel; both paths count the exact |∩| of two
// duplicate-free sets, so the value is identical.
func (q Query) Score(f data.Object) float64 {
	if f.Kind != data.FeatureObject {
		return 0
	}
	if len(q.Keywords)*len(f.Keywords) <= denseIntersectCutoff {
		inter := intersectDense(q.Keywords, f.Keywords)
		union := len(q.Keywords) + len(f.Keywords) - inter
		if union == 0 {
			return 0
		}
		return float64(inter) / float64(union)
	}
	return text.Jaccard(q.Keywords, f.Keywords)
}

// Relevant reports whether a feature shares at least one keyword with the
// query — the Map-phase pruning test of Algorithm 1 line 9. Same kernel
// split as Score.
func (q Query) Relevant(f data.Object) bool {
	if len(q.Keywords)*len(f.Keywords) <= denseIntersectCutoff {
		return intersectDense(q.Keywords, f.Keywords) > 0
	}
	return q.Keywords.Intersects(f.Keywords)
}

// UpperBound returns w̄(f,q), the Equation-1 best possible score for a
// feature with the given keyword-list length.
func (q Query) UpperBound(featureLen int) float64 {
	return text.UpperBound(featureLen, q.Keywords.Len())
}

// ResultItem is one ranked data object.
type ResultItem struct {
	ID    uint64
	Loc   geo.Point
	Score float64
}

// resultLess orders results by descending score, breaking ties by
// ascending id for determinism.
func resultLess(a, b ResultItem) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.ID < b.ID
}

// SortResults sorts items into canonical result order (descending score,
// ascending id).
func SortResults(items []ResultItem) {
	sort.Slice(items, func(i, j int) bool { return resultLess(items[i], items[j]) })
}

// MergeTopK merges any number of partial top-k lists into the global
// top-k, the final centralized step of Section 4.2 ("the final result is
// produced by merging the k results of each of the R cells").
func MergeTopK(k int, lists ...[]ResultItem) []ResultItem {
	var all []ResultItem
	for _, l := range lists {
		all = append(all, l...)
	}
	SortResults(all)
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// TopK maintains the paper's list Lk: the k data objects with the highest
// scores seen so far, with τ (Threshold) the k-th best score. Scores only
// improve, mirroring score(p) ← max{score(p), w(x,q)} of Algorithm 2.
//
// Selection is canonical under ties: among objects tied at τ, the lowest
// ids win, so the final list depends only on the offered (id, score)
// pairs — never on their order. Order-independence is what lets a query
// over planner-pruned storage (different files, splits and shuffle order)
// return results identical to the unpruned run.
//
// The tracked items live in a small unordered slice: k is tens at most,
// and the reduce hot loop calls Update per candidate, where a linear scan
// over contiguous items beats a map's hashing and iteration.
//
// The zero value is not usable; call NewTopK.
type TopK struct {
	k     int
	items []ResultItem // unordered; ids unique; len <= k
	tau   float64
}

// NewTopK returns an empty list Lk with capacity k.
func NewTopK(k int) *TopK {
	if k <= 0 {
		panic(fmt.Sprintf("core: TopK with k = %d", k))
	}
	return &TopK{k: k, items: make([]ResultItem, 0, k)}
}

// Reset empties the list for reuse with capacity k, keeping the backing
// array. Reduce tasks process thousands of groups; pooling the list
// avoids an allocation per group.
func (t *TopK) Reset(k int) {
	if k <= 0 {
		panic(fmt.Sprintf("core: TopK reset with k = %d", k))
	}
	t.k = k
	t.tau = 0
	t.items = t.items[:0]
}

// Threshold returns τ, the score of the k-th best data object so far, or 0
// while fewer than k objects are tracked.
func (t *TopK) Threshold() float64 { return t.tau }

// Len returns the number of tracked objects (≤ k).
func (t *TopK) Len() int { return len(t.items) }

// Update offers an improved score for a data object. Following the paper's
// convention only positive scores are considered. It returns whether the
// list changed.
func (t *TopK) Update(item ResultItem) bool {
	if item.Score <= 0 {
		return false
	}
	if len(t.items) == t.k && item.Score < t.tau {
		// Fast reject, O(1): every tracked score is >= τ, so a below-τ
		// offer can neither displace an item nor improve a tracked one.
		return false
	}
	for i := range t.items {
		if t.items[i].ID == item.ID {
			if item.Score <= t.items[i].Score {
				return false
			}
			t.items[i] = item
			t.recomputeTau()
			return true
		}
	}
	if len(t.items) < t.k {
		t.items = append(t.items, item)
		t.recomputeTau()
		return true
	}
	// Full: a score above τ displaces the current minimum; a score equal
	// to τ displaces it only when the canonical tie-break (lowest id wins)
	// says so, i.e. when the eviction victim is a tie with a higher id.
	if item.Score < t.tau {
		return false
	}
	vi := t.minIndex() // when full the victim's score is exactly τ
	if item.Score == t.tau && t.items[vi].ID < item.ID {
		return false
	}
	t.items[vi] = item
	t.recomputeTau()
	return true
}

// recomputeTau rescans the tracked items; k is small, so O(k) per update
// is the same trade the paper's sorted list makes.
func (t *TopK) recomputeTau() {
	if len(t.items) < t.k {
		t.tau = 0
		return
	}
	min := t.items[0].Score
	for _, it := range t.items[1:] {
		if it.Score < min {
			min = it.Score
		}
	}
	t.tau = min
}

// minIndex returns the index of the worst item (lowest score; ties broken
// by highest id, the complement of result order) — the eviction victim.
func (t *TopK) minIndex() int {
	vi := 0
	for i := 1; i < len(t.items); i++ {
		switch {
		case t.items[i].Score < t.items[vi].Score:
			vi = i
		case t.items[i].Score == t.items[vi].Score && t.items[i].ID > t.items[vi].ID:
			vi = i
		}
	}
	return vi
}

// Items returns the tracked objects in canonical result order.
func (t *TopK) Items() []ResultItem {
	out := make([]ResultItem, len(t.items))
	copy(out, t.items)
	SortResults(out)
	return out
}
