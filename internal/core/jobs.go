package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"spq/internal/data"
	"spq/internal/geo"
	"spq/internal/grid"
	"spq/internal/mapreduce"
)

// Algorithm selects one of the paper's three MapReduce algorithms.
type Algorithm int

// The algorithms of Sections 4 and 5.
const (
	// PSPQ is the grid-partitioned algorithm without early termination
	// (Algorithms 1–2).
	PSPQ Algorithm = iota
	// ESPQLen accesses feature objects by increasing keyword-list length
	// and stops via the Equation-1 bound (Algorithms 3–4, Lemma 2).
	ESPQLen
	// ESPQSco accesses feature objects by decreasing Jaccard score and
	// stops after k covered data objects (Algorithms 5–6, Lemma 3).
	ESPQSco
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case PSPQ:
		return "pSPQ"
	case ESPQLen:
		return "eSPQlen"
	case ESPQSco:
		return "eSPQsco"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Algorithms lists all three, in the paper's presentation order.
func Algorithms() []Algorithm { return []Algorithm{PSPQ, ESPQLen, ESPQSco} }

// Options configure one MapReduce execution.
type Options struct {
	// Cluster supplies the worker slots (and DFS for text sources).
	Cluster *mapreduce.Cluster
	// Bounds is the spatial extent of the dataset; the query-time grid is
	// laid over it (Section 4.1: "the grid is defined at query time").
	Bounds geo.Rect
	// GridN makes the grid GridN x GridN (the paper's "grid size").
	GridN int
	// NumReducers defaults to the number of grid cells, the paper's
	// configuration. Smaller values make reduce tasks process several
	// cells each.
	NumReducers int
	// DisableKeywordPrune turns off the Map-side pruning of features with
	// no query keyword (Algorithm 1, line 9). Only used by the ablation
	// benchmark; pruning never changes results.
	DisableKeywordPrune bool
	// LoadBalance assigns cells to reduce tasks by estimated cost (LPT
	// over a sampled |Oi|·|Fi| model) instead of round-robin. Only
	// meaningful when NumReducers is smaller than the number of cells; it
	// addresses the reducer imbalance the paper observes on clustered
	// data (Section 7.2.4). Results are unaffected.
	LoadBalance bool
	// SamplePerSplit bounds how many objects per input split the load
	// balancer samples (default 512; <=0 means scan everything).
	SamplePerSplit int
	// SpillEvery, when positive, bounds per-map-task buffered records and
	// activates external sorting (see mapreduce.Job.SpillEvery).
	SpillEvery int
	// MaxAttempts, RetryBackoff and FaultInjector are forwarded to the job
	// (see the mapreduce.Job fields of the same names): the per-task retry
	// budget, the base of the capped exponential backoff between attempts,
	// and the failure-test hook.
	MaxAttempts   int
	RetryBackoff  time.Duration
	FaultInjector func(kind mapreduce.TaskKind, taskID, attempt int) error
	// Priority admits the job's tasks through the cluster slot pools'
	// priority lane (see mapreduce.Job.Priority). The engine sets it for
	// planned queries that read a small fraction of the input.
	Priority bool
	// ExtraCounters are merged into the report's counters. The engine uses
	// this to surface query-planner statistics (cells pruned, records
	// skipped) next to the job counters when it feeds Run a pre-pruned
	// file set with a planner-chosen grid.
	ExtraCounters map[string]int64
	// Wire, when set, describes the sealed storage the source reads and
	// offers the job for distributed execution: Run attaches a serialized
	// query spec (see querySpec) that worker processes reconstruct the job
	// from, provided nothing in-process-only is configured — a DataView,
	// a FaultInjector or a load-balanced partition closure keep the job
	// local regardless. Whether the job actually ships is then the
	// mapreduce layer's decision (it also requires every split to
	// serialize a reference).
	Wire *WireInfo
	// DataView, when set, supplies the data objects out of band: the
	// source must then yield feature objects only, and each reduce group
	// is seeded with its cell's data objects from the view — shared dense
	// slices with prebuilt bucket indexes — instead of receiving them
	// through the shuffle. Results are identical to the in-stream path
	// (the comparator already guarantees data before features within a
	// group; preloading is the limit of that order), but the job sorts,
	// copies and merges only feature records. The view must have been
	// built for exactly this grid (Bounds, GridN). See BuildDataView.
	DataView *DataView
}

func (o Options) gridN() int {
	if o.GridN <= 0 {
		return 1
	}
	return o.GridN
}

func (o Options) numReducers() int {
	if o.NumReducers > 0 {
		return o.NumReducers
	}
	n := o.gridN()
	return n * n
}

// Aliases shared by the reduce implementations.
type (
	taskCtx    = mapreduce.TaskContext
	valueIter  = mapreduce.Values[CellKey, data.Object]
	reduceFunc = func(*taskCtx, *valueIter, func(cellResult)) error
)

// Report is the outcome of one SPQ job: the global top-k after merging the
// per-cell lists, plus the job's counters and timing.
type Report struct {
	Algorithm Algorithm
	Results   []ResultItem
	Counters  map[string]int64
	Stats     mapreduce.Stats
}

// cellResult is the reduce output: one per-cell ranked data object.
type cellResult struct {
	Item ResultItem
}

// Validate checks the preconditions Run enforces before launching a job:
// query shape, algorithm/mode support, and usable bounds. It is exposed
// so that callers skipping the job entirely (a planner-proven empty
// result) reject exactly the executions Run would reject.
func Validate(alg Algorithm, q Query, opts Options) error {
	if err := q.Validate(); err != nil {
		return err
	}
	switch alg {
	case PSPQ, ESPQLen, ESPQSco:
	default:
		return fmt.Errorf("core: unknown algorithm %d", int(alg))
	}
	if !alg.SupportsMode(q.Mode) {
		return fmt.Errorf("core: %v does not support %v scoring (early termination is unsound for it); use PSPQ", alg, q.Mode)
	}
	if opts.Bounds.Empty() || opts.Bounds.Area() == 0 {
		return fmt.Errorf("core: empty bounds %v", opts.Bounds)
	}
	return nil
}

// Run executes the selected algorithm over the source and returns the
// merged top-k. It is RunContext with a background context.
func Run(alg Algorithm, src mapreduce.Source[data.Object], q Query, opts Options) (*Report, error) {
	return RunContext(context.Background(), alg, src, q, opts)
}

// RunContext executes the selected algorithm over the source and returns
// the merged top-k. The source yields both datasets (data and feature
// objects are distinguished by Object.Kind, exactly as the Map functions
// of the paper receive "x: input object" without assumptions on its
// location or provenance). Canceling ctx aborts the underlying MapReduce
// job promptly (see mapreduce.RunContext).
func RunContext(ctx context.Context, alg Algorithm, src mapreduce.Source[data.Object], q Query, opts Options) (*Report, error) {
	if err := Validate(alg, q, opts); err != nil {
		return nil, err
	}
	if opts.Cluster == nil {
		opts.Cluster = mapreduce.NewCluster(nil, 1, 1)
	}
	g := grid.New(opts.Bounds, opts.gridN(), opts.gridN())
	if opts.DataView != nil && !opts.DataView.matches(g) {
		return nil, fmt.Errorf("core: data view built for a different grid than %v", g)
	}

	partition := CellKeyPartition
	balanced := false
	if opts.LoadBalance && opts.numReducers() < g.NumCells() {
		sample := opts.SamplePerSplit
		if sample == 0 {
			sample = 512
		}
		weights, werr := CellWeights(src, g, q, sample)
		if werr != nil {
			return nil, fmt.Errorf("core: load balancing sample: %w", werr)
		}
		assign := BalanceCells(weights, opts.numReducers())
		partition = func(k CellKey, numReducers int) int { return int(assign[k.Cell]) }
		balanced = true
	}

	job, err := buildJob(alg, g, q, opts, partition)
	if err != nil {
		return nil, err
	}
	job.Source = src
	if opts.Wire != nil && opts.DataView == nil && opts.FaultInjector == nil && !balanced {
		spec, werr := encodeQuerySpec(alg, q, opts)
		if werr != nil {
			return nil, werr
		}
		job.Wire = &mapreduce.WireJob{Kind: WireKind, Spec: spec}
	}

	res, err := mapreduce.RunContext(ctx, opts.Cluster, job)
	if err != nil {
		return nil, err
	}
	perCell := make([]ResultItem, len(res.Output))
	for i, o := range res.Output {
		perCell[i] = o.Item
	}
	for name, v := range opts.ExtraCounters {
		res.Counters[name] += v
	}
	return &Report{
		Algorithm: alg,
		Results:   MergeTopK(q.K, perCell),
		Counters:  res.Counters,
		Stats:     res.Stats,
	}, nil
}

// buildJob constructs the typed MapReduce job of one algorithm: the
// codecs, comparators, Map and Reduce functions, and the retry knobs. It
// is shared verbatim between the orchestrating process (Run) and a worker
// reconstructing the job from its wire spec (see remote.go), so task
// semantics cannot drift between the two. The Source is set by the
// caller; workers run tasks from split references and never enumerate
// splits themselves.
func buildJob(alg Algorithm, g *grid.Grid, q Query, opts Options, partition func(CellKey, int) int) (*mapreduce.Job[data.Object, CellKey, data.Object, cellResult], error) {
	job := &mapreduce.Job[data.Object, CellKey, data.Object, cellResult]{
		Name:          fmt.Sprintf("%s-k%d-r%g", alg, q.K, q.Radius),
		NumReducers:   opts.numReducers(),
		Partition:     partition,
		GroupEqual:    CellKeyGroup,
		KeyCodec:      CellKeyCodec(),
		ValueCodec:    data.ObjectCodec(),
		SpillEvery:    opts.SpillEvery,
		MaxAttempts:   opts.MaxAttempts,
		RetryBackoff:  opts.RetryBackoff,
		FaultInjector: opts.FaultInjector,
		Priority:      opts.Priority,
	}
	switch alg {
	case PSPQ:
		job.Map = mapPSPQ(g, q, opts)
		job.Less = CellKeyAscLess
		job.Compare = CellKeyAscCompare
		if q.Mode == ScoreNearest {
			job.Reduce = reduceNearest(q, opts.DataView)
		} else {
			job.Reduce = reduceScan(q, scanOpts{}, opts.DataView)
		}
	case ESPQLen:
		job.Map = mapESPQLen(g, q, opts)
		job.Less = CellKeyAscLess
		job.Compare = CellKeyAscCompare
		// Algorithm 4 = Algorithm 2 + the Equation-1 bound check.
		job.Reduce = reduceScan(q, scanOpts{lenBound: true}, opts.DataView)
	case ESPQSco:
		job.Map = mapESPQSco(g, q, opts)
		job.Less = CellKeyDescLess
		job.Compare = CellKeyDescCompare
		if q.Mode == ScoreRange {
			job.Reduce = reduceESPQSco(q, opts.DataView)
		} else {
			// Influence: a feature's contribution is at most its textual
			// score, so under descending-score order the group can stop as
			// soon as w(x,q) <= τ — but the first covering feature is no
			// longer final, so Algorithm 6 gives way to the Algorithm-2
			// scan with a descending-order break.
			job.Reduce = reduceScan(q, scanOpts{descBreak: true}, opts.DataView)
		}
	default:
		return nil, fmt.Errorf("core: unknown algorithm %d", int(alg))
	}
	return job, nil
}

// Counter names specific to the SPQ jobs.
const (
	// CounterFeaturesPruned counts feature objects dropped by the Map-side
	// keyword intersection test.
	CounterFeaturesPruned = "spq.map.features.pruned"
	// CounterDuplicates counts Lemma-1 duplicate emissions of features.
	CounterDuplicates = "spq.map.features.duplicated"
	// CounterFeaturesExamined counts feature objects actually scored
	// against data objects in the Reduce phase — the quantity early
	// termination minimizes.
	CounterFeaturesExamined = "spq.reduce.features.examined"
	// CounterScoreComputations counts (data, feature) distance/score
	// evaluations in the Reduce phase.
	CounterScoreComputations = "spq.reduce.score.computations"
	// CounterEarlyTerminations counts reduce groups that stopped before
	// exhausting their feature list.
	CounterEarlyTerminations = "spq.reduce.early_terminations"
)

// dupScratch pools the duplication-target slices of emitFeature. One Map
// closure is shared by all concurrently running map tasks, so captured
// scratch space would race; the pool gives each in-flight call its own
// reusable backing array without a per-record allocation.
var dupScratch = sync.Pool{New: func() any { return new([]grid.CellID) }}

// emitFeature handles the shared feature-object fan-out of all three Map
// functions: primary cell plus Lemma-1 duplication targets, each with the
// algorithm-specific Order.
func emitFeature(ctx *mapreduce.TaskContext, g *grid.Grid, radius float64, o data.Object, order float64, emit func(CellKey, data.Object)) {
	emit(CellKey{Cell: g.CellOf(o.Loc), Order: order}, o)
	sp := dupScratch.Get().(*[]grid.CellID)
	targets := g.DuplicationTargets(o.Loc, radius, (*sp)[:0])
	for _, c := range targets {
		emit(CellKey{Cell: c, Order: order}, o)
	}
	if len(targets) > 0 {
		ctx.Counter(CounterDuplicates, int64(len(targets)))
	}
	*sp = targets
	dupScratch.Put(sp)
}

// mapPSPQ is Algorithm 1. Data objects get Order 0 and feature objects
// Order 1, so data objects precede features in each cell.
func mapPSPQ(g *grid.Grid, q Query, opts Options) func(*mapreduce.TaskContext, data.Object, func(CellKey, data.Object)) error {
	return func(ctx *mapreduce.TaskContext, o data.Object, emit func(CellKey, data.Object)) error {
		if o.Kind == data.DataObject {
			emit(CellKey{Cell: g.CellOf(o.Loc), Order: 0}, o)
			return nil
		}
		if !opts.DisableKeywordPrune && !q.Relevant(o) {
			ctx.Counter(CounterFeaturesPruned, 1)
			return nil
		}
		emitFeature(ctx, g, q.Radius, o, 1, emit)
		return nil
	}
}

// mapESPQLen is Algorithm 3: the feature Order is |f.W|, so the reduce
// phase sees short keyword lists (high Equation-1 bounds) first.
func mapESPQLen(g *grid.Grid, q Query, opts Options) func(*mapreduce.TaskContext, data.Object, func(CellKey, data.Object)) error {
	return func(ctx *mapreduce.TaskContext, o data.Object, emit func(CellKey, data.Object)) error {
		if o.Kind == data.DataObject {
			emit(CellKey{Cell: g.CellOf(o.Loc), Order: 0}, o)
			return nil
		}
		if !opts.DisableKeywordPrune && !q.Relevant(o) {
			ctx.Counter(CounterFeaturesPruned, 1)
			return nil
		}
		emitFeature(ctx, g, q.Radius, o, float64(o.Keywords.Len()), emit)
		return nil
	}
}

// mapESPQSco is Algorithm 5: the Jaccard score is computed in the Map
// phase and used as the feature Order; data objects get Order 2, strictly
// above any Jaccard value, so under the descending comparator they still
// arrive first.
func mapESPQSco(g *grid.Grid, q Query, opts Options) func(*mapreduce.TaskContext, data.Object, func(CellKey, data.Object)) error {
	return func(ctx *mapreduce.TaskContext, o data.Object, emit func(CellKey, data.Object)) error {
		if o.Kind == data.DataObject {
			emit(CellKey{Cell: g.CellOf(o.Loc), Order: 2}, o)
			return nil
		}
		w := q.Score(o)
		if !opts.DisableKeywordPrune && w == 0 {
			ctx.Counter(CounterFeaturesPruned, 1)
			return nil
		}
		emitFeature(ctx, g, q.Radius, o, w, emit)
		return nil
	}
}

// scanOpts select the termination behaviour of reduceScan.
type scanOpts struct {
	// lenBound enables the Equation-1 early-termination check of
	// Algorithm 4 (valid under eSPQlen's increasing-length order).
	lenBound bool
	// descBreak stops the group once w(x,q) <= τ (valid under eSPQsco's
	// descending-score order, where no later feature can contribute more).
	descBreak bool
}

// reduceScan is Algorithm 2 (and, with opts.lenBound, Algorithm 4): load
// the cell's data objects into memory, then stream feature objects,
// improving data-object scores and maintaining the top-k list Lk with
// threshold τ. It generalizes the paper's max-within-range scoring to any
// monotone contribution (range and influence modes). Under eSPQlen
// ordering, the Equation-1 bound of the current feature bounds every later
// feature, so τ ≥ w̄(f,q) stops the group (Lemma 2).
func reduceScan(q Query, opts scanOpts, view *DataView) reduceFunc {
	r2 := q.Radius * q.Radius
	return func(ctx *taskCtx, values *valueIter, emit func(cellResult)) error {
		sc := getScratch(q.K)
		defer putScratch(sc)
		if view != nil {
			sc.seedView(view, values.GroupKey().Cell)
		}
		var (
			g    = &sc.g
			topk = sc.topk
			fLoc geo.Point
			fw   float64
			// Counter deltas are accumulated per group and flushed once:
			// ctx.Counter hashes the counter name, too costly per feature.
			examined, computed int64
		)
		// One scoring closure per group, not per feature: fLoc/fw are
		// rebound between features so the hot path allocates nothing.
		// It is the fallback for groups without dense coordinate columns;
		// view-seeded groups take the scanSpan kernel below instead.
		scoreObj := func(i int32) {
			p := &g.objs[i]
			d2 := geo.Dist2(p.Loc, fLoc)
			if d2 > r2 {
				return
			}
			if c := q.contribution(fw, d2); c > sc.scores[i] {
				sc.scores[i] = c
				topk.Update(ResultItem{ID: p.ID, Loc: p.Loc, Score: c})
			}
		}
		for {
			x, ok := values.Next()
			if !ok {
				break
			}
			if x.Kind == data.DataObject {
				g.add(x)
				sc.scores = append(sc.scores, 0)
				continue
			}
			if opts.lenBound {
				// Strict: at τ = w̄ a later feature can still reach w = τ
				// exactly and win a canonical tie, so only τ > w̄ stops.
				if topk.Threshold() > q.UpperBound(x.Keywords.Len()) {
					ctx.Counter(CounterEarlyTerminations, 1)
					break
				}
			}
			w := q.Score(x)
			examined++
			if w < topk.Threshold() && topk.Len() >= q.K {
				// Algorithm 2 line 9: w(x,q) >= τ required to affect Lk
				// (any contribution is at most w, and below τ it can
				// neither displace nor canonically tie).
				if opts.descBreak {
					// Descending-score order: every later feature scores
					// no higher, so the whole group is done.
					ctx.Counter(CounterEarlyTerminations, 1)
					break
				}
				continue
			}
			if w == 0 {
				continue
			}
			fLoc, fw = x.Loc, w
			if g.xs != nil {
				computed += g.kernelHits(fLoc, q.Radius, r2, &sc.hits, &sc.hitD2)
				for n, i := range sc.hits {
					if c := q.contribution(fw, sc.hitD2[n]); c > sc.scores[i] {
						sc.scores[i] = c
						topk.Update(ResultItem{ID: g.objs[i].ID, Loc: g.objs[i].Loc, Score: c})
					}
				}
			} else {
				computed += g.candidates(fLoc, q.Radius, scoreObj)
			}
		}
		ctx.Counter(CounterFeaturesExamined, examined)
		ctx.Counter(CounterScoreComputations, computed)
		for _, item := range topk.Items() {
			emit(cellResult{Item: item})
		}
		return nil
	}
}

// reduceESPQSco is Algorithm 6: data objects are loaded first; features
// then arrive in decreasing score order, so the first feature within
// distance r of a data object fixes that object's final score. With k
// data objects covered, the group terminates as soon as the feature score
// drops below τ (Lemma 3; the strict comparison keeps scanning through
// features tied with τ so that ties resolve canonically by id, not by
// arrival order).
func reduceESPQSco(q Query, view *DataView) reduceFunc {
	r2 := q.Radius * q.Radius
	return func(ctx *taskCtx, values *valueIter, emit func(cellResult)) error {
		sc := getScratch(q.K)
		defer putScratch(sc)
		if view != nil {
			sc.seedView(view, values.GroupKey().Cell)
		}
		var (
			g    = &sc.g
			topk = sc.topk
			fLoc geo.Point
			fw   float64
			// Flushed once per group; see reduceScan.
			examined, computed int64
		)
		coverObj := func(i int32) {
			p := &g.objs[i]
			if sc.covered[i] || geo.Dist2(p.Loc, fLoc) > r2 {
				return
			}
			// Here w(x,q) = τ(p): no later feature scores higher.
			sc.covered[i] = true
			topk.Update(ResultItem{ID: p.ID, Loc: p.Loc, Score: fw})
		}
		for {
			x, ok := values.Next()
			if !ok {
				break
			}
			if x.Kind == data.DataObject {
				g.add(x)
				sc.covered = append(sc.covered, false)
				continue
			}
			w := q.Score(x)
			if w == 0 {
				// Only zero-score features can follow; the group is done.
				ctx.Counter(CounterEarlyTerminations, 1)
				break
			}
			if topk.Len() >= q.K && w < topk.Threshold() {
				// Every later feature scores no higher than w < τ.
				ctx.Counter(CounterEarlyTerminations, 1)
				break
			}
			examined++
			fLoc, fw = x.Loc, w
			if g.xs != nil {
				computed += g.kernelHits(fLoc, q.Radius, r2, &sc.hits, &sc.hitD2)
				for _, i := range sc.hits {
					if !sc.covered[i] {
						// Here w(x,q) = τ(p): no later feature scores higher.
						sc.covered[i] = true
						topk.Update(ResultItem{ID: g.objs[i].ID, Loc: g.objs[i].Loc, Score: fw})
					}
				}
			} else {
				computed += g.candidates(fLoc, q.Radius, coverObj)
			}
		}
		ctx.Counter(CounterFeaturesExamined, examined)
		ctx.Counter(CounterScoreComputations, computed)
		for _, item := range topk.Items() {
			emit(cellResult{Item: item})
		}
		return nil
	}
}
