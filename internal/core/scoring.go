package core

import (
	"fmt"
	"math"

	"spq/internal/data"
	"spq/internal/geo"
)

// ScoringMode selects how a feature object within the query radius
// contributes to a data object's score. The paper evaluates the range
// mode; the influence and nearest-neighbor modes come from the spatial
// preference query literature it builds on (Yiu et al. [16, 17]) and are
// provided as extensions, restricted — like everything else here — to
// features within distance r so that the Lemma-1 grid duplication remains
// correct.
type ScoringMode int

// The scoring modes.
const (
	// ScoreRange is the paper's Definition 2: τ(p) is the maximum w(f,q)
	// of any feature within distance r.
	ScoreRange ScoringMode = iota
	// ScoreInfluence discounts the textual score by distance:
	// τ(p) = max w(f,q)·2^(−d(p,f)/r) over features within distance r.
	// A perfect match next door beats a perfect match at the rim (which
	// retains half its weight).
	ScoreInfluence
	// ScoreNearest scores p by the textual relevance of the *nearest*
	// relevant feature within distance r, regardless of whether farther
	// features match better. Not monotone in w, so early termination is
	// impossible: only PSPQ (and the centralized baselines) support it.
	ScoreNearest
)

// String implements fmt.Stringer.
func (m ScoringMode) String() string {
	switch m {
	case ScoreRange:
		return "range"
	case ScoreInfluence:
		return "influence"
	case ScoreNearest:
		return "nearest"
	default:
		return fmt.Sprintf("ScoringMode(%d)", int(m))
	}
}

// contribution returns the score contribution of a feature with textual
// score w at squared distance d2 from the data object, for range and
// influence modes. The caller has already verified d2 <= r².
func (q Query) contribution(w, d2 float64) float64 {
	if q.Mode == ScoreInfluence && q.Radius > 0 {
		return w * math.Exp2(-math.Sqrt(d2)/q.Radius)
	}
	return w
}

// SupportsMode reports whether the algorithm can process the mode.
// ScoreNearest is not monotone in the textual score: a nearer feature
// with a *lower* score replaces the current one, so neither ordering of
// Section 5 admits a correct termination bound.
func (a Algorithm) SupportsMode(m ScoringMode) bool {
	return m != ScoreNearest || a == PSPQ
}

// nnState tracks the nearest relevant feature seen so far for one data
// object (ScoreNearest reduce state).
type nnState struct {
	d2 float64
	w  float64
}

// reduceNearest implements the ScoreNearest variant of the pSPQ Reduce:
// every surviving feature must be examined, and each data object keeps
// the textual score of its nearest relevant feature (ties at equal
// distance resolved toward the higher score, so results are independent
// of arrival order).
func reduceNearest(q Query, view *DataView) reduceFunc {
	r2 := q.Radius * q.Radius
	return func(ctx *taskCtx, values *valueIter, emit func(cellResult)) error {
		sc := getScratch(q.K)
		defer putScratch(sc)
		if view != nil {
			sc.seedView(view, values.GroupKey().Cell)
		}
		var (
			g    = &sc.g
			fLoc geo.Point
			fw   float64
			// Flushed once per group; per-feature Counter calls hash the name.
			computed int64
		)
		nearObj := func(i int32) {
			d2 := geo.Dist2(g.objs[i].Loc, fLoc)
			if d2 > r2 {
				return
			}
			if cur := &sc.best[i]; d2 < cur.d2 || (d2 == cur.d2 && fw > cur.w) {
				*cur = nnState{d2: d2, w: fw}
			}
		}
		for {
			x, ok := values.Next()
			if !ok {
				break
			}
			if x.Kind == data.DataObject {
				g.add(x)
				sc.best = append(sc.best, nnState{d2: math.Inf(1)})
				continue
			}
			w := q.Score(x)
			ctx.Counter(CounterFeaturesExamined, 1)
			if w == 0 {
				continue
			}
			fLoc, fw = x.Loc, w
			if g.xs != nil {
				computed += g.kernelHits(fLoc, q.Radius, r2, &sc.hits, &sc.hitD2)
				for n, i := range sc.hits {
					d2 := sc.hitD2[n]
					if cur := &sc.best[i]; d2 < cur.d2 || (d2 == cur.d2 && fw > cur.w) {
						*cur = nnState{d2: d2, w: fw}
					}
				}
			} else {
				computed += g.candidates(fLoc, q.Radius, nearObj)
			}
		}
		ctx.Counter(CounterScoreComputations, computed)
		topk := sc.topk
		// TopK's canonical tie-breaking makes the outcome independent of
		// offer order, so iterating in objs order is for clarity, not
		// correctness.
		for i := range g.objs {
			if sc.best[i].w == 0 {
				continue // no relevant feature within r
			}
			topk.Update(ResultItem{ID: g.objs[i].ID, Loc: g.objs[i].Loc, Score: sc.best[i].w})
		}
		for _, item := range topk.Items() {
			emit(cellResult{Item: item})
		}
		return nil
	}
}
