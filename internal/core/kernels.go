package core

import "math/bits"

// Vectorized scoring kernels for the reduce and map hot paths. Both loops
// here are written batch-8 and branch-free over dense columns so the
// compiler emits straight-line compare/select code: no per-element
// branches to mispredict, and no bounds checks inside the loops. The
// loops consume their slices eight elements at a time (x = x[8:]) with
// constant indexes into the head — the form the prove pass eliminates
// every check for. The CI pipeline builds this package with
// -gcflags=-d=ssa/check_bce and fails if a bounds check reappears in
// this file.

// b2u converts a comparison result to 0 or 1 without a branch (the
// compiler lowers it to SETcc/CSEL).
func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// scanSpan appends the in-range hits of one contiguous coordinate span to
// hits/d2s: for every i with (xs[i]-fx)² + (ys[i]-fy)² within r2, it
// appends base+i and the squared distance. The filter keeps exactly the
// complement of the scalar rejection test d2 > r2, so NaN coordinates
// land on the same side as in the closure path. Eight distances are
// computed per iteration into a bitmask; only mask set-bits touch the
// output slices, so the common all-miss batch costs no stores.
func scanSpan(xs, ys []float64, fx, fy, r2 float64, base int32, hits []int32, d2s []float64) ([]int32, []float64) {
	i := base
	for len(xs) >= 8 && len(ys) >= 8 {
		dx0, dy0 := xs[0]-fx, ys[0]-fy
		dx1, dy1 := xs[1]-fx, ys[1]-fy
		dx2, dy2 := xs[2]-fx, ys[2]-fy
		dx3, dy3 := xs[3]-fx, ys[3]-fy
		dx4, dy4 := xs[4]-fx, ys[4]-fy
		dx5, dy5 := xs[5]-fx, ys[5]-fy
		dx6, dy6 := xs[6]-fx, ys[6]-fy
		dx7, dy7 := xs[7]-fx, ys[7]-fy
		xs, ys = xs[8:], ys[8:]
		d0 := dx0*dx0 + dy0*dy0
		d1 := dx1*dx1 + dy1*dy1
		d2 := dx2*dx2 + dy2*dy2
		d3 := dx3*dx3 + dy3*dy3
		d4 := dx4*dx4 + dy4*dy4
		d5 := dx5*dx5 + dy5*dy5
		d6 := dx6*dx6 + dy6*dy6
		d7 := dx7*dx7 + dy7*dy7
		m := b2u(!(d0 > r2)) |
			b2u(!(d1 > r2))<<1 |
			b2u(!(d2 > r2))<<2 |
			b2u(!(d3 > r2))<<3 |
			b2u(!(d4 > r2))<<4 |
			b2u(!(d5 > r2))<<5 |
			b2u(!(d6 > r2))<<6 |
			b2u(!(d7 > r2))<<7
		if m != 0 {
			d := [8]float64{d0, d1, d2, d3, d4, d5, d6, d7}
			for ; m != 0; m &= m - 1 {
				j := bits.TrailingZeros32(m)
				hits = append(hits, i+int32(j))
				d2s = append(d2s, d[j&7])
			}
		}
		i += 8
	}
	for len(xs) >= 1 && len(ys) >= 1 {
		dx, dy := xs[0]-fx, ys[0]-fy
		xs, ys = xs[1:], ys[1:]
		if d2 := dx*dx + dy*dy; !(d2 > r2) {
			hits = append(hits, i)
			d2s = append(d2s, d2)
		}
		i++
	}
	return hits, d2s
}

// denseIntersectCutoff bounds len(q)*len(f) for the exhaustive
// intersection kernel. Query keyword sets are a handful of ids and corpus
// features carry a few dozen, so nearly every Map-phase scoring call fits
// under it; past the cutoff the O(m·n) comparisons lose to the merge and
// galloping paths of text.KeywordSet.
const denseIntersectCutoff = 512

// intersectDense returns |q ∩ f| for two sorted duplicate-free keyword
// sets by comparing every pair. Quadratic, but branch-free: for the short
// sets of the scoring hot path the straight-line compare/add stream beats
// the data-dependent branching of a merge or binary search. f is walked
// batch-8 with q's ids reloaded per batch.
func intersectDense(q, f []uint32) int {
	var n uint32
	for len(f) >= 8 {
		f0, f1, f2, f3 := f[0], f[1], f[2], f[3]
		f4, f5, f6, f7 := f[4], f[5], f[6], f[7]
		f = f[8:]
		for _, qv := range q {
			n += b2u(f0 == qv) + b2u(f1 == qv) + b2u(f2 == qv) + b2u(f3 == qv) +
				b2u(f4 == qv) + b2u(f5 == qv) + b2u(f6 == qv) + b2u(f7 == qv)
		}
	}
	for _, fv := range f {
		for _, qv := range q {
			n += b2u(fv == qv)
		}
	}
	return int(n)
}
