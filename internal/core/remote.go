package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"

	"spq/internal/data"
	"spq/internal/geo"
	"spq/internal/grid"
	"spq/internal/mapreduce"
	"spq/internal/text"
)

// WireKind is the job-kind identifier SPQ query jobs register under; any
// worker process linking this package can execute their tasks.
const WireKind = "spq.query"

// WireInfo is what the engine must tell Run about the sealed storage for
// the job to be reconstructible on a worker. Split references are
// self-describing (their Kind discriminates text/seq/col), so only the
// facts a worker cannot read from the references themselves travel here.
type WireInfo struct {
	// DictLen is the size of the master's keyword dictionary at query
	// time. Workers parsing text-format records pull exactly this prefix
	// (in id order) before their first parse, so every interned id agrees
	// with the ids in the query spec and in binary file bytes.
	DictLen int
	// Gen is the storage generation of the snapshot the query reads; it
	// scopes worker-side decoded-block caching exactly like the engine's
	// segment cache keys.
	Gen uint64
}

// querySpec is the serialized form of one SPQ query job: everything a
// worker needs to rebuild the job through buildJob. Keyword ids are
// master-dictionary ids — the same id space the sealed files carry.
type querySpec struct {
	Alg                 int
	K                   int
	Radius              float64
	Mode                int
	Keywords            []uint32
	Bounds              geo.Rect
	GridN               int
	NumReducers         int
	DisableKeywordPrune bool
	DictLen             int
	Gen                 uint64
}

// encodeQuerySpec serializes the job parameters for the wire.
func encodeQuerySpec(alg Algorithm, q Query, opts Options) ([]byte, error) {
	s := querySpec{
		Alg:                 int(alg),
		K:                   q.K,
		Radius:              q.Radius,
		Mode:                int(q.Mode),
		Keywords:            q.Keywords,
		Bounds:              opts.Bounds,
		GridN:               opts.GridN,
		NumReducers:         opts.NumReducers,
		DisableKeywordPrune: opts.DisableKeywordPrune,
		DictLen:             opts.Wire.DictLen,
		Gen:                 opts.Wire.Gen,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		return nil, fmt.Errorf("core: encode query spec: %w", err)
	}
	return buf.Bytes(), nil
}

func init() {
	mapreduce.RegisterJobKind(WireKind, buildWireJob)
}

// buildWireJob reconstructs an SPQ query job on a worker process. The job
// goes through the same buildJob as the orchestrator's, over the same
// grid geometry (the spec carries the orchestrator's padded bounds), so a
// task attempt computes exactly what it would have in-process.
func buildWireJob(spec []byte, env *mapreduce.WorkerEnv) (mapreduce.RemoteJob, error) {
	var s querySpec
	if err := gob.NewDecoder(bytes.NewReader(spec)).Decode(&s); err != nil {
		return nil, mapreduce.Permanent(fmt.Errorf("core: decode query spec: %w", err))
	}
	q := Query{K: s.K, Radius: s.Radius, Keywords: text.KeywordSet(s.Keywords), Mode: ScoringMode(s.Mode)}
	opts := Options{
		Bounds:              s.Bounds,
		GridN:               s.GridN,
		NumReducers:         s.NumReducers,
		DisableKeywordPrune: s.DisableKeywordPrune,
	}
	g := grid.New(s.Bounds, opts.gridN(), opts.gridN())
	job, err := buildJob(Algorithm(s.Alg), g, q, opts, CellKeyPartition)
	if err != nil {
		return nil, mapreduce.Permanent(err)
	}

	// Job-scoped worker state: decoded column blocks are cached across the
	// job's tasks (released with the job), and the master dictionary
	// prefix is pulled once, before the first text parse.
	blocks := data.NewBlockCache(0)
	var colKeywords []uint32
	if !s.DisableKeywordPrune {
		// Mirror the engine: the sorted query keywords let SPQ3 feature
		// blocks resolve the Map-phase prune through their posting
		// dictionaries. Disabled-prune ablations must see every record.
		colKeywords = s.Keywords
	}
	// Per-attempt segment I/O stats: one SegIOStats per TaskIO, folded
	// into the attempt's counter deltas when it finishes — so a worker's
	// columnar reads ride TaskResult.Counters back to the master instead
	// of vanishing (only the winning attempt of a speculative race is
	// absorbed, so counts never double). The per-worker breakdown rides
	// under the same names with a "."+worker suffix.
	var segMu sync.Mutex
	segStats := make(map[*mapreduce.TaskIO]*data.SegIOStats)
	segStatsFor := func(io *mapreduce.TaskIO) *data.SegIOStats {
		segMu.Lock()
		defer segMu.Unlock()
		st, ok := segStats[io]
		if !ok {
			st = &data.SegIOStats{}
			segStats[io] = st
			io.OnFinish(func(c *mapreduce.Counters) {
				read, dec := st.BytesRead.Load(), st.BytesDecoded.Load()
				c.Add(data.CounterSegBytesRead, read)
				c.Add(data.CounterSegBytesDecoded, dec)
				if w := io.Env.Worker; w != "" {
					c.Add(data.CounterSegBytesRead+"."+w, read)
					c.Add(data.CounterSegBytesDecoded+"."+w, dec)
				}
				segMu.Lock()
				delete(segStats, io)
				segMu.Unlock()
			})
		}
		return st
	}

	var dictMu sync.Mutex
	var dict *text.Dict
	ensureDict := func(io *mapreduce.TaskIO) (*text.Dict, error) {
		dictMu.Lock()
		defer dictMu.Unlock()
		if dict != nil {
			return dict, nil
		}
		words, err := io.DictWords(s.DictLen)
		if err != nil {
			return nil, err
		}
		d := text.NewDict()
		for _, w := range words {
			d.Intern(w)
		}
		dict = d
		return dict, nil
	}

	open := func(io *mapreduce.TaskIO, ref *mapreduce.SplitRef) (mapreduce.SourceSplit[data.Object], error) {
		switch ref.Kind {
		case "text":
			d, derr := ensureDict(io)
			if derr != nil {
				return nil, derr
			}
			fs, ferr := io.File(ref.File)
			if ferr != nil {
				return nil, ferr
			}
			return mapreduce.OpenTextSplit(fs, ref, func(line []byte) (data.Object, error) {
				return data.ParseLine(line, d)
			}), nil
		case "seq":
			fs, ferr := io.File(ref.File)
			if ferr != nil {
				return nil, ferr
			}
			return data.OpenSeqRef(fs, ref)
		case "col":
			in := &data.ColInput{R: io, Cache: blocks, Gen: s.Gen, Keywords: colKeywords, IO: segStatsFor(io)}
			return in.OpenRef(ref)
		default:
			return nil, mapreduce.Permanent(fmt.Errorf("core: unknown split kind %q", ref.Kind))
		}
	}
	return mapreduce.BindRemote(job, open), nil
}
