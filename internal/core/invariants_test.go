package core

import (
	"bufio"
	"bytes"
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"spq/internal/grid"
	"spq/internal/mapreduce"
)

// The result must not depend on the arrival order of input records: the
// shuffle/sort fixes the processing order regardless of how HDFS happened
// to lay out the data ("no assumptions on the specific partitioning
// method", Section 3.1).
func TestInputOrderInvariance(t *testing.T) {
	objs, q := randomWorkload(77, 500, 25, 5)
	ref := NaiveCentralized(objs, q)
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 5; trial++ {
		shuffled := append(objs[:0:0], objs...)
		r.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		for _, alg := range Algorithms() {
			rep, err := Run(alg, mapreduce.NewMemorySource(shuffled, 1+trial), q, Options{
				Bounds: unitBounds, GridN: 4,
			})
			if err != nil {
				t.Fatal(err)
			}
			assertSameTopK(t, rep.Results, ref, objs, q)
		}
	}
}

// More map slots, more reduce slots, different split counts: pure
// parallelism knobs must never affect the result.
func TestParallelismInvariance(t *testing.T) {
	objs, q := randomWorkload(88, 600, 25, 5)
	ref := NaiveCentralized(objs, q)
	for _, slots := range []int{1, 2, 7, 16} {
		for _, splits := range []int{1, 3, 13} {
			rep, err := Run(ESPQSco, mapreduce.NewMemorySource(objs, splits), q, Options{
				Bounds:  unitBounds,
				GridN:   5,
				Cluster: mapreduce.NewCluster(nil, slots, slots),
			})
			if err != nil {
				t.Fatal(err)
			}
			assertSameTopK(t, rep.Results, ref, objs, q)
		}
	}
}

func TestCellKeyCodecRoundTrip(t *testing.T) {
	codec := CellKeyCodec()
	f := func(cell int32, order float64) bool {
		if math.IsNaN(order) {
			return true
		}
		k := CellKey{Cell: grid.CellID(cell), Order: order}
		var buf bytes.Buffer
		w := bufio.NewWriter(&buf)
		if err := codec.Encode(w, k); err != nil {
			return false
		}
		w.Flush()
		got, err := codec.Decode(bufio.NewReader(&buf))
		return err == nil && got == k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCellKeyComparators(t *testing.T) {
	a := CellKey{Cell: 1, Order: 0.5}
	b := CellKey{Cell: 1, Order: 0.7}
	c := CellKey{Cell: 2, Order: 0.1}
	if !CellKeyAscLess(a, b) || CellKeyAscLess(b, a) {
		t.Error("asc order within cell")
	}
	if !CellKeyDescLess(b, a) || CellKeyDescLess(a, b) {
		t.Error("desc order within cell")
	}
	// Cell id dominates under both comparators.
	if !CellKeyAscLess(b, c) || !CellKeyDescLess(b, c) {
		t.Error("cell id must dominate")
	}
	if !CellKeyGroup(a, b) || CellKeyGroup(a, c) {
		t.Error("grouping")
	}
	if CellKeyPartition(c, 2) != 0 {
		t.Errorf("partition = %d", CellKeyPartition(c, 2))
	}
	// The three-way comparators must agree with their Less forms on every
	// ordered pair — the Job contract when both are set.
	keys := []CellKey{a, b, c, {Cell: 1, Order: 0.5}}
	sign := func(less, greater bool) int {
		switch {
		case less:
			return -1
		case greater:
			return 1
		}
		return 0
	}
	for _, x := range keys {
		for _, y := range keys {
			if got, want := CellKeyAscCompare(x, y), sign(CellKeyAscLess(x, y), CellKeyAscLess(y, x)); got != want {
				t.Errorf("AscCompare(%v, %v) = %d, want %d", x, y, got, want)
			}
			if got, want := CellKeyDescCompare(x, y), sign(CellKeyDescLess(x, y), CellKeyDescLess(y, x)); got != want {
				t.Errorf("DescCompare(%v, %v) = %d, want %d", x, y, got, want)
			}
		}
	}
}

// Spilling plus task failures plus retry: the combination must still be
// exact, and no spill files may survive the job.
func TestSpillWithFailuresIsExact(t *testing.T) {
	objs, q := randomWorkload(31, 800, 20, 5)
	want := NaiveCentralized(objs, q)
	var mu sync.Mutex
	failed := map[int]bool{}
	rep, err := Run(ESPQLen, mapreduce.NewMemorySource(objs, 5), q, Options{
		Bounds:      unitBounds,
		GridN:       4,
		SpillEvery:  64,
		MaxAttempts: 2,
		FaultInjector: func(kind mapreduce.TaskKind, taskID, attempt int) error {
			mu.Lock()
			defer mu.Unlock()
			if attempt == 1 && kind == mapreduce.MapTask && !failed[taskID] {
				failed[taskID] = true
				return errTestInjected
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	assertSameTopK(t, rep.Results, want, objs, q)
	if rep.Counters[mapreduce.CounterTaskRetries] == 0 {
		t.Error("no retries despite injected failures")
	}
	if rep.Counters[mapreduce.CounterSpillRuns] == 0 {
		t.Error("no spill runs despite SpillEvery")
	}
}

// Radius zero: only exactly co-located features count.
func TestZeroRadius(t *testing.T) {
	objs, q := randomWorkload(3, 200, 10, 3)
	q.Radius = 0
	want := NaiveCentralized(objs, q)
	for _, alg := range Algorithms() {
		rep, err := Run(alg, mapreduce.NewMemorySource(objs, 2), q, Options{
			Bounds: unitBounds, GridN: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		assertSameTopK(t, rep.Results, want, objs, q)
	}
}

// Queries whose keywords match nothing return no results through every
// path.
func TestNoMatchingKeywords(t *testing.T) {
	objs, q := randomWorkload(9, 300, 10, 3)
	q.Keywords = q.Keywords[:0:0]
	q.Keywords = append(q.Keywords, 9999) // outside the workload vocabulary
	for _, alg := range Algorithms() {
		rep, err := Run(alg, mapreduce.NewMemorySource(objs, 2), q, Options{
			Bounds: unitBounds, GridN: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Results) != 0 {
			t.Errorf("%v returned %d results for unmatched keywords", alg, len(rep.Results))
		}
	}
	if got := NaiveCentralized(objs, q); len(got) != 0 {
		t.Errorf("naive returned %d", len(got))
	}
}
