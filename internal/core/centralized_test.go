package core

import (
	"testing"

	"spq/internal/data"
)

// Both index-based centralized evaluators must agree with the naive oracle
// across modes and random workloads.
func TestCentralizedEvaluatorsMatchOracle(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		objs, q := randomWorkload(int64(500+trial), 500, 35, 6)
		for _, mode := range []ScoringMode{ScoreRange, ScoreInfluence, ScoreNearest} {
			q := q
			q.Mode = mode
			want := NaiveCentralized(objs, q)
			assertModeTopK(t, RTreeCentralized(objs, q), want, objs, q)
			assertModeTopK(t, InvertedIndexCentralized(objs, q), want, objs, q)
		}
	}
}

func TestCentralizedEvaluatorsPaperExample(t *testing.T) {
	objs, dict := paperExample()
	q := paperQuery(dict, 3)
	want := NaiveCentralized(objs, q)
	got := RTreeCentralized(objs, q)
	assertSameTopK(t, got, want, objs, q)
	got = InvertedIndexCentralized(objs, q)
	assertSameTopK(t, got, want, objs, q)
	if len(got) != 3 || got[0].ID != 1 || got[0].Score != 1 {
		t.Errorf("paper example via inverted index: %+v", got)
	}
}

func TestCentralizedEmptyInputs(t *testing.T) {
	objs, dict := paperExample()
	q := paperQuery(dict, 2)
	// Only data objects: no features -> no results.
	var onlyData []data.Object
	for _, o := range objs {
		if o.Kind == data.DataObject {
			onlyData = append(onlyData, o)
		}
	}
	if got := RTreeCentralized(onlyData, q); len(got) != 0 {
		t.Errorf("no features: %+v", got)
	}
	if got := InvertedIndexCentralized(onlyData, q); len(got) != 0 {
		t.Errorf("no features: %+v", got)
	}
	// Only features: nothing to rank.
	var onlyFeats []data.Object
	for _, o := range objs {
		if o.Kind != data.DataObject {
			onlyFeats = append(onlyFeats, o)
		}
	}
	if got := RTreeCentralized(onlyFeats, q); len(got) != 0 {
		t.Errorf("no data objects: %+v", got)
	}
}
