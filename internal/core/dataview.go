package core

import (
	"container/list"
	"fmt"
	"math"
	"strings"
	"sync"

	"spq/internal/data"
	"spq/internal/geo"
	"spq/internal/grid"
	"spq/internal/mapreduce"
)

// DataView is the dense query-grid layout of a storage generation's data
// objects: for every query-grid cell, the cell's data objects in one
// contiguous slice with the reduce-side bucket index prebuilt. It exists
// because the data half of an SPQ job is query-independent given the grid:
// data objects carry no keywords, never duplicate (only features fan out
// under Lemma 1), and land in exactly one cell — so shuffling them
// per-query sorts, copies and merges the same 50% of the input into the
// same buckets every time. A view computes that bucketing once; queries
// sharing (generation, grid, pruned data selection) reuse it through
// ViewCache, and their MapReduce jobs read only feature records. Reduce
// tasks resolve their cell's objects directly from the view, exactly as if
// the records had arrived in-stream first (the comparator guarantees data
// before features, so preloading is order-equivalent), making results
// bit-identical to the shuffled path.
type DataView struct {
	gridN  int
	bounds geo.Rect
	// records is the total object count, the unit of ViewCache accounting.
	records int
	cells   []viewCell // indexed by grid.CellID
}

// viewCell is one grid cell's data objects plus its prebuilt bucket index
// (nil when the cell is too small for the index to pay off, mirroring
// buildObjGrid). When indexed, objs are permuted into bucket (CSR) order
// so that every index bucket is a contiguous run; xs/ys are the matching
// dense coordinate columns the scanSpan kernel reads. Everything is
// immutable after construction and shared read-only by concurrent reduce
// tasks.
type viewCell struct {
	objs   []data.Object
	xs, ys []float64
	index  *objGrid
}

// BuildDataView lays the source's data objects out over the query grid and
// prebuilds each cell's bucket index. The source must yield data objects
// only; feature objects are rejected, because silently accepting them
// would drop their scores from every query using the view.
func BuildDataView(g *grid.Grid, src mapreduce.Source[data.Object]) (*DataView, error) {
	splits, err := src.Splits()
	if err != nil {
		return nil, err
	}
	v := &DataView{gridN: dimsOf(g), bounds: g.Bounds(), cells: make([]viewCell, g.NumCells())}
	var badKind bool
	for _, s := range splits {
		err := s.Each(func(o data.Object) bool {
			if o.Kind != data.DataObject {
				badKind = true
				return false
			}
			c := g.CellOf(o.Loc)
			v.cells[c].objs = append(v.cells[c].objs, o)
			v.records++
			return true
		})
		if err != nil {
			return nil, err
		}
		if badKind {
			return nil, fmt.Errorf("core: data view source yielded a feature object")
		}
	}
	for i := range v.cells {
		c := &v.cells[i]
		c.index = buildObjGrid(c.objs)
		if c.index != nil {
			// Permute the cell into bucket order: the index's idx array
			// becomes the identity, so every bucket span is a contiguous
			// run of objs — and of the coordinate columns below, which is
			// what lets the reduce side scan a span with the batch-8
			// kernel instead of gathering through idx. Scores are
			// per-index state seeded fresh for each group, and the top-k
			// is order-canonical, so the permutation cannot change
			// results.
			perm := make([]data.Object, len(c.objs))
			for j, oi := range c.index.idx {
				perm[j] = c.objs[oi]
				c.index.idx[j] = int32(j)
			}
			c.objs = perm
		}
		c.xs = make([]float64, len(c.objs))
		c.ys = make([]float64, len(c.objs))
		for j := range c.objs {
			c.xs[j] = c.objs[j].Loc.X
			c.ys[j] = c.objs[j].Loc.Y
		}
	}
	return v, nil
}

// Records returns the number of data objects the view holds.
func (v *DataView) Records() int { return v.records }

// cell returns the view cell for id, or nil when the cell holds no data.
func (v *DataView) cell(id grid.CellID) *viewCell {
	if int(id) < 0 || int(id) >= len(v.cells) {
		return nil
	}
	if len(v.cells[id].objs) == 0 {
		return nil
	}
	return &v.cells[id]
}

// matches reports whether the view was built for this job's grid.
func (v *DataView) matches(g *grid.Grid) bool {
	return v.gridN == dimsOf(g) && v.bounds == g.Bounds()
}

func dimsOf(g *grid.Grid) int {
	nx, _ := g.Dims()
	return nx
}

// ViewKey canonicalizes one data-view identity: storage generation, query
// grid (size and bounds), and the exact pruned data-block selection. The
// full string is the cache key — a digest would let two distinct
// selections collide and silently serve a view built for the wrong blocks.
// A nil block list and an explicit every-block list render identically, so
// planned-but-unpruned and unplanned reads of the same generation share
// one cached view.
func ViewKey(gen uint64, gridN int, bounds geo.Rect, sel []data.ColSel) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d|%d|%x,%x,%x,%x|", gen, gridN,
		math.Float64bits(bounds.MinX), math.Float64bits(bounds.MinY),
		math.Float64bits(bounds.MaxX), math.Float64bits(bounds.MaxY))
	for _, cs := range sel {
		fmt.Fprintf(&b, "%s:", cs.Cell.File)
		if cs.Blocks == nil || len(cs.Blocks) == len(cs.Cell.Blocks) {
			b.WriteByte('*')
		} else {
			fmt.Fprintf(&b, "%v", cs.Blocks)
		}
		b.WriteByte(';')
	}
	return b.String()
}

// DefaultViewCacheRecords is the default ViewCache budget, in cached data
// objects (~48 bytes each, so the default is on the order of 100 MiB).
const DefaultViewCacheRecords = 1 << 21

// ViewCache is an LRU over data views, budgeted by total cached records
// rather than entry count: one view of a 10M-object generation should not
// cost the same as one view of a 10k-object test corpus. Keys are caller-
// defined; the engine keys on (generation, grid, pruned data selection),
// so — like the query and segment caches — a generation bump makes stale
// views unreachable by construction.
type ViewCache struct {
	mu      sync.Mutex
	budget  int
	records int
	ll      *list.List
	entries map[string]*list.Element
	hits    int64
	misses  int64
	// inflight deduplicates concurrent builds of the same view (see
	// GetOrBuild): after a generation bump every in-flight query misses at
	// once, and N redundant full-dataset builds would multiply both the
	// build CPU and the transient allocation by the client count.
	inflight map[string]*viewBuild
}

// viewBuild is one in-progress GetOrBuild computation.
type viewBuild struct {
	done chan struct{}
	view *DataView
	err  error
}

type viewEntry struct {
	key  string
	view *DataView
}

// NewViewCache creates a cache holding up to budget records across its
// views. budget <= 0 selects DefaultViewCacheRecords.
func NewViewCache(budget int) *ViewCache {
	if budget <= 0 {
		budget = DefaultViewCacheRecords
	}
	return &ViewCache{
		budget:   budget,
		ll:       list.New(),
		entries:  make(map[string]*list.Element),
		inflight: make(map[string]*viewBuild),
	}
}

// GetOrBuild returns the cached view for key, or runs build exactly once
// to create it — concurrent callers for the same key wait for the single
// build instead of each building their own. A failed build is not cached;
// the next caller retries.
func (c *ViewCache) GetOrBuild(key string, build func() (*DataView, error)) (*DataView, error) {
	if c == nil {
		return build()
	}
	for {
		if v, ok := c.Get(key); ok {
			return v, nil
		}
		c.mu.Lock()
		if b, ok := c.inflight[key]; ok {
			c.mu.Unlock()
			<-b.done
			if b.err == nil {
				return b.view, nil
			}
			// The winning build failed; loop to retry (or join a newer
			// attempt).
			continue
		}
		b := &viewBuild{done: make(chan struct{})}
		c.inflight[key] = b
		c.mu.Unlock()

		b.view, b.err = build()
		c.mu.Lock()
		delete(c.inflight, key)
		c.mu.Unlock()
		close(b.done)
		if b.err != nil {
			return nil, b.err
		}
		c.Put(key, b.view)
		return b.view, nil
	}
}

// Get returns the cached view for key, if present.
func (c *ViewCache) Get(key string) (*DataView, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*viewEntry).view, true
}

// Put stores a view, evicting least-recently-used entries until the record
// budget holds. A view larger than the whole budget is cached alone (the
// working set IS that one view).
func (c *ViewCache) Put(key string, v *DataView) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.records += v.records - el.Value.(*viewEntry).view.records
		el.Value.(*viewEntry).view = v
		c.ll.MoveToFront(el)
	} else {
		c.entries[key] = c.ll.PushFront(&viewEntry{key: key, view: v})
		c.records += v.records
	}
	for c.records > c.budget && c.ll.Len() > 1 {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		e := oldest.Value.(*viewEntry)
		delete(c.entries, e.key)
		c.records -= e.view.records
	}
}

// Stats returns the cumulative hit/miss counts and current size.
func (c *ViewCache) Stats() (hits, misses int64, entries, records int) {
	if c == nil {
		return 0, 0, 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.ll.Len(), c.records
}
