package core

import (
	"math/rand"
	"testing"

	"spq/internal/data"
	"spq/internal/geo"
	"spq/internal/grid"
	"spq/internal/mapreduce"
	"spq/internal/text"
)

// skewedWorkload puts most objects into one corner of the unit square,
// mimicking the clustered dataset that overburdens reducers in §7.2.4.
func skewedWorkload(n int) ([]data.Object, Query) {
	r := rand.New(rand.NewSource(3))
	var objs []data.Object
	for i := 0; i < n; i++ {
		var x, y float64
		if i%10 < 8 { // 80% in a hot corner
			x, y = r.Float64()*0.2, r.Float64()*0.2
		} else {
			x, y = r.Float64(), r.Float64()
		}
		o := data.Object{ID: uint64(i), Loc: gp(x, y)}
		if i%2 == 1 {
			o.Kind = data.FeatureObject
			ids := make([]uint32, 1+r.Intn(4))
			for j := range ids {
				ids[j] = uint32(r.Intn(20))
			}
			o.Keywords = text.NewKeywordSet(ids...)
		}
		objs = append(objs, o)
	}
	q := Query{K: 5, Radius: 0.02, Keywords: text.NewKeywordSet(1, 2, 3)}
	return objs, q
}

func gp(x, y float64) geo.Point { return geo.Point{X: x, Y: y} }

func TestBalanceCellsLPT(t *testing.T) {
	weights := []float64{100, 1, 1, 1, 90, 1, 1, 80}
	assign := BalanceCells(weights, 3)
	if len(assign) != len(weights) {
		t.Fatalf("assign len %d", len(assign))
	}
	// The three heavy cells must land on three distinct reducers.
	heavy := map[int32]bool{}
	for _, cell := range []int{0, 4, 7} {
		if heavy[assign[cell]] {
			t.Fatalf("two heavy cells share reducer: %v", assign)
		}
		heavy[assign[cell]] = true
	}
	lpt := MaxLoad(weights, assign, 3)
	rr := MaxLoad(weights, RoundRobinAssign(len(weights), 3), 3)
	if lpt > rr {
		t.Errorf("LPT max load %v worse than round-robin %v", lpt, rr)
	}
}

func TestCellWeightsCountDuplicates(t *testing.T) {
	g := grid.NewSquare(4)
	kw := text.NewKeywordSet(1)
	objs := []data.Object{
		{Kind: data.DataObject, ID: 1, Loc: gp(0.1, 0.1)},
		// Feature near a cell corner: duplicated to 3 neighbors.
		{Kind: data.FeatureObject, ID: 2, Loc: gp(0.249, 0.249), Keywords: kw},
		// Irrelevant feature: no keyword overlap, must not count.
		{Kind: data.FeatureObject, ID: 3, Loc: gp(0.6, 0.6), Keywords: text.NewKeywordSet(9)},
	}
	q := Query{K: 1, Radius: 0.01, Keywords: kw}
	w, err := CellWeights(mapreduce.NewMemorySource(objs, 1), g, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != 16 {
		t.Fatalf("weights len %d", len(w))
	}
	// Cell 0 holds 1 data + 1 feature: weight (1+1)*(1+1) = 4.
	if w[0] != 4 {
		t.Errorf("w[0] = %v, want 4", w[0])
	}
	// Neighbors of the corner feature got a duplicate: (0+1)*(1+1) = 2.
	for _, c := range []int{1, 4, 5} {
		if w[c] != 2 {
			t.Errorf("w[%d] = %v, want 2 (duplicate)", c, w[c])
		}
	}
	// Cell of the irrelevant feature: weight 1 (smoothing only).
	cIrr := g.CellOf(gp(0.6, 0.6))
	if w[cIrr] != 1 {
		t.Errorf("irrelevant feature counted: w[%d] = %v", cIrr, w[cIrr])
	}
}

// Load balancing must reduce the maximum reducer load on skewed data and
// must not change query results.
func TestLoadBalanceSkewedData(t *testing.T) {
	objs, q := skewedWorkload(3000)
	g := grid.NewSquare(10)
	weights, err := CellWeights(mapreduce.NewMemorySource(objs, 4), g, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	const reducers = 4
	lpt := MaxLoad(weights, BalanceCells(weights, reducers), reducers)
	rr := MaxLoad(weights, RoundRobinAssign(len(weights), reducers), reducers)
	if lpt >= rr {
		t.Errorf("LPT max load %.0f not better than round-robin %.0f on skewed data", lpt, rr)
	}

	want := NaiveCentralized(objs, q)
	for _, alg := range Algorithms() {
		rep, err := Run(alg, mapreduce.NewMemorySource(objs, 4), q, Options{
			Bounds:      unitBounds,
			GridN:       10,
			NumReducers: reducers,
			LoadBalance: true,
		})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		assertSameTopK(t, rep.Results, want, objs, q)
	}
}

// With sampling enabled the estimate is partial but results must still be
// exact (the assignment only moves groups between reducers).
func TestLoadBalanceWithSampling(t *testing.T) {
	objs, q := skewedWorkload(2000)
	want := NaiveCentralized(objs, q)
	rep, err := Run(ESPQSco, mapreduce.NewMemorySource(objs, 8), q, Options{
		Bounds:         unitBounds,
		GridN:          8,
		NumReducers:    3,
		LoadBalance:    true,
		SamplePerSplit: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	assertSameTopK(t, rep.Results, want, objs, q)
}
