package core

import (
	"bufio"
	"encoding/binary"
	"io"
	"math"

	"spq/internal/grid"
	"spq/internal/mapreduce"
)

// CellKey is the composite map-output key of all three algorithms: the
// cell id routes the record to a reduce task (the custom Partitioner of
// Section 2.1) and Order fixes the secondary sort inside the cell (the
// custom Comparator):
//
//	pSPQ   : data objects 0, feature objects 1        — ascending
//	eSPQlen: data objects 0, feature objects |f.W|    — ascending
//	eSPQsco: data objects 2, feature objects w(f,q)   — descending
type CellKey struct {
	Cell  grid.CellID
	Order float64
}

// CellKeyAscLess sorts by cell, then ascending Order (pSPQ, eSPQlen).
func CellKeyAscLess(a, b CellKey) bool {
	if a.Cell != b.Cell {
		return a.Cell < b.Cell
	}
	return a.Order < b.Order
}

// CellKeyDescLess sorts by cell, then descending Order (eSPQsco: data
// objects first thanks to Order = 2 > any Jaccard score, then features
// from the highest scoring to the lowest).
func CellKeyDescLess(a, b CellKey) bool {
	if a.Cell != b.Cell {
		return a.Cell < b.Cell
	}
	return a.Order > b.Order
}

// CellKeyAscCompare is the three-way form of CellKeyAscLess, used by the
// map-side sort so each comparison is one comparator call.
func CellKeyAscCompare(a, b CellKey) int {
	if a.Cell != b.Cell {
		if a.Cell < b.Cell {
			return -1
		}
		return 1
	}
	switch {
	case a.Order < b.Order:
		return -1
	case a.Order > b.Order:
		return 1
	}
	return 0
}

// CellKeyDescCompare is the three-way form of CellKeyDescLess.
func CellKeyDescCompare(a, b CellKey) int {
	if a.Cell != b.Cell {
		if a.Cell < b.Cell {
			return -1
		}
		return 1
	}
	switch {
	case a.Order > b.Order:
		return -1
	case a.Order < b.Order:
		return 1
	}
	return 0
}

// CellKeyGroup groups records of the same cell into one reduce group.
func CellKeyGroup(a, b CellKey) bool { return a.Cell == b.Cell }

// CellKeyPartition routes a key to the reduce task owning its cell. With
// NumReducers equal to the number of cells (the paper's configuration)
// this is the identity on cell ids; with fewer reducers, cells are
// distributed round-robin and one reduce task processes multiple cells as
// separate groups (footnote 1 of Section 6.3).
func CellKeyPartition(k CellKey, numReducers int) int {
	return int(k.Cell) % numReducers
}

// CellKeyCodec serializes CellKeys for spill files.
func CellKeyCodec() *mapreduce.Codec[CellKey] {
	return &mapreduce.Codec[CellKey]{
		Encode: func(w *bufio.Writer, k CellKey) error {
			var buf [12]byte
			binary.LittleEndian.PutUint32(buf[:4], uint32(k.Cell))
			binary.LittleEndian.PutUint64(buf[4:], math.Float64bits(k.Order))
			_, err := w.Write(buf[:])
			return err
		},
		Decode: func(r *bufio.Reader) (CellKey, error) {
			var buf [12]byte
			if _, err := io.ReadFull(r, buf[:]); err != nil {
				return CellKey{}, err
			}
			return CellKey{
				Cell:  grid.CellID(int32(binary.LittleEndian.Uint32(buf[:4]))),
				Order: math.Float64frombits(binary.LittleEndian.Uint64(buf[4:])),
			}, nil
		},
	}
}
