package core

import (
	"spq/internal/data"
	"spq/internal/geo"
	"spq/internal/grid"
)

// scoreAccum accumulates the score of one data object across all modes.
type scoreAccum struct {
	best float64 // range/influence: best contribution so far
	nnD2 float64 // nearest: squared distance of nearest relevant feature
	nnW  float64 // nearest: its textual score
	any  bool
}

func (a *scoreAccum) add(q Query, w, d2 float64) {
	switch q.Mode {
	case ScoreNearest:
		if w == 0 {
			return
		}
		if !a.any || d2 < a.nnD2 || (d2 == a.nnD2 && w > a.nnW) {
			a.nnD2, a.nnW, a.any = d2, w, true
		}
	default:
		if c := q.contribution(w, d2); c > a.best {
			a.best = c
			a.any = true
		}
	}
}

func (a *scoreAccum) score(q Query) float64 {
	if q.Mode == ScoreNearest {
		return a.nnW
	}
	return a.best
}

// NaiveCentralized answers the query by scoring every (data, feature) pair
// — the O(|O|·|F|) reference implementation of Definition 2 (and of the
// influence and nearest-neighbor scoring extensions). It exists to
// cross-validate every other algorithm; its output is the ground truth in
// the test suite.
func NaiveCentralized(objs []data.Object, q Query) []ResultItem {
	var dataObjs, feats []data.Object
	for _, o := range objs {
		if o.Kind == data.DataObject {
			dataObjs = append(dataObjs, o)
		} else {
			feats = append(feats, o)
		}
	}
	r2 := q.Radius * q.Radius
	topk := NewTopK(q.K)
	for _, p := range dataObjs {
		var acc scoreAccum
		for _, f := range feats {
			d2 := geo.Dist2(p.Loc, f.Loc)
			if d2 > r2 {
				continue
			}
			acc.add(q, q.Score(f), d2)
		}
		topk.Update(ResultItem{ID: p.ID, Loc: p.Loc, Score: acc.score(q)})
	}
	return topk.Items()
}

// GridCentralized answers the query with a single-machine grid index over
// the feature objects: for every data object only the feature cells within
// distance r are probed. It is exact and serves both as a faster oracle
// for larger tests and as the "what a centralized system could do" point
// of comparison in the experiment harness.
func GridCentralized(objs []data.Object, q Query, bounds geo.Rect, gridN int) []ResultItem {
	g := grid.New(bounds, gridN, gridN)
	buckets := make([][]data.Object, g.NumCells())
	var dataObjs []data.Object
	for _, o := range objs {
		if o.Kind == data.DataObject {
			dataObjs = append(dataObjs, o)
			continue
		}
		// Map-side pruning: features sharing no keyword with the query
		// cannot contribute to any score (Algorithm 1, line 9).
		if !o.Keywords.Intersects(q.Keywords) {
			continue
		}
		c := g.CellOf(o.Loc)
		buckets[c] = append(buckets[c], o)
	}
	r2 := q.Radius * q.Radius
	topk := NewTopK(q.K)
	var cells []grid.CellID
	for _, p := range dataObjs {
		var acc scoreAccum
		cells = g.CellsWithinDist(p.Loc, q.Radius, cells[:0])
		for _, c := range cells {
			for _, f := range buckets[c] {
				d2 := geo.Dist2(p.Loc, f.Loc)
				if d2 > r2 {
					continue
				}
				acc.add(q, q.Score(f), d2)
			}
		}
		topk.Update(ResultItem{ID: p.ID, Loc: p.Loc, Score: acc.score(q)})
	}
	return topk.Items()
}
