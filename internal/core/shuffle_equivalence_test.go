package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"spq/internal/data"
	"spq/internal/geo"
	"spq/internal/mapreduce"
	"spq/internal/text"
)

// synthCorpus builds a clustered corpus with enough objects per cell that
// the reduce-side bucket index engages (groups larger than objGridMinObjs).
func synthCorpus(n int, seed int64) ([]data.Object, *text.Dict) {
	rng := rand.New(rand.NewSource(seed))
	dict := text.NewDict()
	centers := [][2]float64{{0.2, 0.3}, {0.7, 0.6}, {0.5, 0.85}}
	var objs []data.Object
	for i := 0; i < n; i++ {
		c := centers[i%len(centers)]
		loc := geo.Point{
			X: math.Min(0.999, math.Max(0.001, c[0]+rng.NormFloat64()*0.08)),
			Y: math.Min(0.999, math.Max(0.001, c[1]+rng.NormFloat64()*0.08)),
		}
		if i%2 == 0 {
			objs = append(objs, data.Object{Kind: data.DataObject, ID: uint64(i + 1), Loc: loc})
		} else {
			objs = append(objs, data.Object{
				Kind: data.FeatureObject, ID: uint64(i + 1), Loc: loc,
				Keywords: dict.InternAll([]string{
					fmt.Sprintf("kw%d", rng.Intn(40)),
					fmt.Sprintf("kw%d", rng.Intn(40)),
				}),
			})
		}
	}
	return objs, dict
}

// TestReportResultsInvariantUnderShuffleConfig is the sorted-chunk publish
// property test: Report.Results must be byte-identical across SpillEvery
// in {0, 64} and MapSlots in {1, 4} for all three algorithms, because the
// shuffle configuration only changes how the sorted stream is chunked and
// merged, never which records a reduce group sees or the canonical top-k
// it selects.
func TestReportResultsInvariantUnderShuffleConfig(t *testing.T) {
	objs, dict := synthCorpus(4000, 5)
	queries := []Query{
		{K: 5, Radius: 0.05, Keywords: dict.LookupAll([]string{"kw3", "kw17"})},
		{K: 10, Radius: 0.12, Keywords: dict.LookupAll([]string{"kw7"})},
		{K: 3, Radius: 0.02, Keywords: dict.LookupAll([]string{"kw21", "kw5", "kw9"})},
	}
	for qi, q := range queries {
		for _, alg := range Algorithms() {
			var want []ResultItem
			var wantCfg string
			for _, mapSlots := range []int{1, 4} {
				for _, spillEvery := range []int{0, 64} {
					cfg := fmt.Sprintf("maps=%d/spill=%d", mapSlots, spillEvery)
					rep, err := Run(alg, mapreduce.NewMemorySource(objs, 5), q, Options{
						Cluster:    mapreduce.NewCluster(nil, mapSlots, 3),
						Bounds:     unitBounds,
						GridN:      6,
						SpillEvery: spillEvery,
					})
					if err != nil {
						t.Fatalf("q%d %v %s: %v", qi, alg, cfg, err)
					}
					if want == nil {
						want, wantCfg = rep.Results, cfg
						continue
					}
					if len(rep.Results) != len(want) {
						t.Fatalf("q%d %v: %s returned %d results, %s returned %d",
							qi, alg, cfg, len(rep.Results), wantCfg, len(want))
					}
					for i := range want {
						if rep.Results[i] != want[i] {
							t.Errorf("q%d %v: results diverge at %d between %s and %s:\n %+v\n %+v",
								qi, alg, i, wantCfg, cfg, want[i], rep.Results[i])
							break
						}
					}
				}
			}
		}
	}
}

// TestObjGridMatchesLinearScan cross-checks the bucket index against the
// plain scan it replaces: for random probe points and radii, the candidate
// set restricted to exact distance must be identical.
func TestObjGridMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := objGridMinObjs + rng.Intn(500)
		objs := make([]data.Object, n)
		for i := range objs {
			objs[i] = data.Object{
				Kind: data.DataObject, ID: uint64(i),
				Loc: geo.Point{X: rng.Float64(), Y: rng.Float64()},
			}
		}
		// Degenerate layouts: occasionally collapse one axis.
		if trial%5 == 4 {
			for i := range objs {
				objs[i].Loc.Y = 0.5
			}
		}
		b := buildObjGrid(objs)
		if b == nil {
			t.Fatalf("trial %d: index not built for %d objects", trial, n)
		}
		for probe := 0; probe < 50; probe++ {
			p := geo.Point{X: rng.Float64()*1.4 - 0.2, Y: rng.Float64()*1.4 - 0.2}
			r := rng.Float64() * 0.3
			r2 := r * r
			want := make(map[int32]bool)
			for i := range objs {
				if geo.Dist2(objs[i].Loc, p) <= r2 {
					want[int32(i)] = true
				}
			}
			got := make(map[int32]bool)
			b.each(p, r, func(i int32) {
				if geo.Dist2(objs[i].Loc, p) <= r2 {
					got[i] = true
				}
			})
			if len(got) != len(want) {
				t.Fatalf("trial %d probe %d: index found %d in-range objects, scan found %d",
					trial, probe, len(got), len(want))
			}
			for i := range want {
				if !got[i] {
					t.Fatalf("trial %d probe %d: object %d missed by index", trial, probe, i)
				}
			}
		}
	}
}

// buildScanGroup lays out one reduce group in pSPQ order: nData data
// objects (Order 0) followed by nFeat features (Order 1), all in one cell.
func buildScanGroup(nData, nFeat int, dict *text.Dict, seed int64) []mapreduce.Pair[CellKey, data.Object] {
	rng := rand.New(rand.NewSource(seed))
	pairs := make([]mapreduce.Pair[CellKey, data.Object], 0, nData+nFeat)
	for i := 0; i < nData; i++ {
		pairs = append(pairs, mapreduce.Pair[CellKey, data.Object]{
			Key: CellKey{Cell: 0, Order: 0},
			Value: data.Object{Kind: data.DataObject, ID: uint64(i + 1),
				Loc: geo.Point{X: rng.Float64(), Y: rng.Float64()}},
		})
	}
	for i := 0; i < nFeat; i++ {
		pairs = append(pairs, mapreduce.Pair[CellKey, data.Object]{
			Key: CellKey{Cell: 0, Order: 1},
			Value: data.Object{Kind: data.FeatureObject, ID: uint64(nData + i + 1),
				Loc:      geo.Point{X: rng.Float64(), Y: rng.Float64()},
				Keywords: dict.InternAll([]string{fmt.Sprintf("kw%d", rng.Intn(8))}),
			},
		})
	}
	return pairs
}

// BenchmarkReduceScan measures the Algorithm-2 reduce over one populous
// cell — the loop the bucket index accelerates. The radius keeps each
// feature's neighborhood at a few percent of the cell, the regime of the
// paper's default queries.
func BenchmarkReduceScan(b *testing.B) {
	dict := text.NewDict()
	q := Query{K: 10, Radius: 0.05, Keywords: dict.InternAll([]string{"kw1", "kw3", "kw5"})}
	for _, size := range []struct{ nData, nFeat int }{
		{1000, 200},
		{8000, 400},
	} {
		pairs := buildScanGroup(size.nData, size.nFeat, dict, 3)
		b.Run(fmt.Sprintf("objs=%d/feats=%d", size.nData, size.nFeat), func(b *testing.B) {
			reduce := reduceScan(q, scanOpts{}, nil)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				values, more, err := mapreduce.ValuesFromPairs(pairs, CellKeyGroup)
				if err != nil || !more {
					b.Fatalf("values: more=%v err=%v", more, err)
				}
				ctx := mapreduce.NewTaskContextForTest(mapreduce.ReduceTask)
				var out int
				if err := reduce(ctx, values, func(cellResult) { out++ }); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
