package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDist(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want float64
	}{
		{"same point", Point{1, 1}, Point{1, 1}, 0},
		{"unit x", Point{0, 0}, Point{1, 0}, 1},
		{"unit y", Point{0, 0}, Point{0, 1}, 1},
		{"3-4-5", Point{0, 0}, Point{3, 4}, 5},
		{"negative coords", Point{-1, -1}, Point{2, 3}, 5},
		{"paper p1-f4", Point{4.6, 4.8}, Point{3.8, 5.5}, math.Hypot(0.8, 0.7)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Dist(tt.p, tt.q); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("Dist(%v, %v) = %v, want %v", tt.p, tt.q, got, tt.want)
			}
		})
	}
}

// norm maps an arbitrary quick-generated float64 into [-1000, 1000] so that
// squared distances stay far from float64 overflow.
func norm(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 1000)
}

func TestDist2MatchesDist(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		p, q := Point{norm(ax), norm(ay)}, Point{norm(bx), norm(by)}
		d := Dist(p, q)
		return math.Abs(Dist2(p, q)-d*d) <= 1e-9*math.Max(1, d*d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistSymmetric(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		p, q := Point{ax, ay}, Point{bx, by}
		return Dist(p, q) == Dist(q, p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRectContains(t *testing.T) {
	r := Rect{MinX: 0, MinY: 0, MaxX: 2, MaxY: 3}
	tests := []struct {
		name string
		p    Point
		want bool
	}{
		{"center", Point{1, 1.5}, true},
		{"min corner", Point{0, 0}, true},
		{"max corner", Point{2, 3}, true},
		{"on edge", Point{0, 1}, true},
		{"left of", Point{-0.1, 1}, false},
		{"right of", Point{2.1, 1}, false},
		{"below", Point{1, -0.1}, false},
		{"above", Point{1, 3.1}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := r.Contains(tt.p); got != tt.want {
				t.Errorf("Contains(%v) = %v, want %v", tt.p, got, tt.want)
			}
		})
	}
}

func TestRectEmptyAndArea(t *testing.T) {
	if (Rect{MinX: 1, MaxX: 0, MinY: 0, MaxY: 1}).Empty() != true {
		t.Error("inverted rect should be empty")
	}
	if (Rect{}).Empty() {
		t.Error("zero rect is a single point, not empty")
	}
	r := Rect{MinX: 1, MinY: 2, MaxX: 4, MaxY: 6}
	if got := r.Area(); got != 12 {
		t.Errorf("Area = %v, want 12", got)
	}
	if got := r.Width(); got != 3 {
		t.Errorf("Width = %v, want 3", got)
	}
	if got := r.Height(); got != 4 {
		t.Errorf("Height = %v, want 4", got)
	}
}

func TestNewRectNormalizes(t *testing.T) {
	r := NewRect(Point{5, 1}, Point{2, 7})
	want := Rect{MinX: 2, MinY: 1, MaxX: 5, MaxY: 7}
	if r != want {
		t.Errorf("NewRect = %+v, want %+v", r, want)
	}
}

func TestRectIntersects(t *testing.T) {
	a := Rect{0, 0, 2, 2}
	tests := []struct {
		name string
		b    Rect
		want bool
	}{
		{"overlap", Rect{1, 1, 3, 3}, true},
		{"touch edge", Rect{2, 0, 4, 2}, true},
		{"touch corner", Rect{2, 2, 3, 3}, true},
		{"disjoint x", Rect{2.1, 0, 3, 2}, false},
		{"disjoint y", Rect{0, 2.1, 2, 3}, false},
		{"contained", Rect{0.5, 0.5, 1.5, 1.5}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := a.Intersects(tt.b); got != tt.want {
				t.Errorf("Intersects = %v, want %v", got, tt.want)
			}
			if got := tt.b.Intersects(a); got != tt.want {
				t.Errorf("Intersects (flipped) = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestRectUnion(t *testing.T) {
	a := Rect{0, 0, 1, 1}
	b := Rect{2, 2, 3, 3}
	got := a.Union(b)
	want := Rect{0, 0, 3, 3}
	if got != want {
		t.Errorf("Union = %+v, want %+v", got, want)
	}
	empty := Rect{MinX: 1, MaxX: 0}
	if a.Union(empty) != a {
		t.Error("union with empty should return receiver")
	}
	if empty.Union(b) != b {
		t.Error("empty union with rect should return the rect")
	}
}

func TestRectExpand(t *testing.T) {
	r := Rect{1, 1, 2, 2}
	got := r.Expand(0.5)
	want := Rect{0.5, 0.5, 2.5, 2.5}
	if got != want {
		t.Errorf("Expand = %+v, want %+v", got, want)
	}
	if !r.Expand(-1).Empty() {
		t.Error("over-shrunk rect should be empty")
	}
}

func TestMinDist(t *testing.T) {
	r := Rect{MinX: 1, MinY: 1, MaxX: 3, MaxY: 2}
	tests := []struct {
		name string
		p    Point
		want float64
	}{
		{"inside", Point{2, 1.5}, 0},
		{"on boundary", Point{1, 1}, 0},
		{"left", Point{0, 1.5}, 1},
		{"right", Point{5, 1.5}, 2},
		{"below", Point{2, 0}, 1},
		{"above", Point{2, 4}, 2},
		{"corner diag", Point{0, 0}, math.Sqrt2},
		{"far corner", Point{6, 6}, 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := MinDist(tt.p, r); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("MinDist(%v) = %v, want %v", tt.p, got, tt.want)
			}
		})
	}
}

// MINDIST must lower-bound the distance from p to every point inside r.
func TestMinDistIsLowerBound(t *testing.T) {
	f := func(px, py, ax, ay, bx, by, u, v float64) bool {
		p := Point{norm(px), norm(py)}
		r := NewRect(Point{norm(ax), norm(ay)}, Point{norm(bx), norm(by)})
		// Map (u,v) into [0,1]^2 to pick a point inside r.
		fu := math.Abs(math.Mod(u, 1))
		fv := math.Abs(math.Mod(v, 1))
		in := Point{r.MinX + fu*r.Width(), r.MinY + fv*r.Height()}
		return MinDist(p, r) <= Dist(p, in)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// MINDIST equals the distance to the clamped (nearest) point.
func TestMinDistEqualsClampDist(t *testing.T) {
	f := func(px, py, ax, ay, bx, by float64) bool {
		p := Point{norm(px), norm(py)}
		r := NewRect(Point{norm(ax), norm(ay)}, Point{norm(bx), norm(by)})
		got := MinDist(p, r)
		want := Dist(p, Clamp(p, r))
		return math.Abs(got-want) <= 1e-9*math.Max(1, want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMaxDist(t *testing.T) {
	r := Rect{0, 0, 2, 2}
	tests := []struct {
		name string
		p    Point
		want float64
	}{
		{"center", Point{1, 1}, math.Sqrt2},
		{"at corner", Point{0, 0}, 2 * math.Sqrt2},
		{"outside", Point{-1, -1}, 3 * math.Sqrt2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := MaxDist(tt.p, r); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("MaxDist(%v) = %v, want %v", tt.p, got, tt.want)
			}
		})
	}
}

func TestMaxDistDominatesMinDist(t *testing.T) {
	f := func(px, py, ax, ay, bx, by float64) bool {
		p := Point{norm(px), norm(py)}
		r := NewRect(Point{norm(ax), norm(ay)}, Point{norm(bx), norm(by)})
		return MaxDist(p, r) >= MinDist(p, r)-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClampInsideRect(t *testing.T) {
	f := func(px, py, ax, ay, bx, by float64) bool {
		p := Point{norm(px), norm(py)}
		r := NewRect(Point{norm(ax), norm(ay)}, Point{norm(bx), norm(by)})
		return r.Contains(Clamp(p, r))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCenter(t *testing.T) {
	r := Rect{0, 0, 4, 2}
	if got := r.Center(); got != (Point{2, 1}) {
		t.Errorf("Center = %v, want (2,1)", got)
	}
}

func TestRectMinDist2(t *testing.T) {
	cases := []struct {
		a, b Rect
		want float64
	}{
		{Rect{0, 0, 1, 1}, Rect{0.5, 0.5, 2, 2}, 0},     // overlapping
		{Rect{0, 0, 1, 1}, Rect{1, 1, 2, 2}, 0},         // touching corner
		{Rect{0, 0, 1, 1}, Rect{3, 0, 4, 1}, 4},         // horizontal gap 2
		{Rect{0, 0, 1, 1}, Rect{0, 4, 1, 5}, 9},         // vertical gap 3
		{Rect{0, 0, 1, 1}, Rect{4, 5, 6, 7}, 3*3 + 4*4}, // diagonal gap (3,4)
		{Rect{2, 2, 2, 2}, Rect{5, 2, 5, 2}, 9},         // degenerate points
	}
	for _, c := range cases {
		if got := RectMinDist2(c.a, c.b); got != c.want {
			t.Errorf("RectMinDist2(%v, %v) = %g, want %g", c.a, c.b, got, c.want)
		}
		if got := RectMinDist2(c.b, c.a); got != c.want {
			t.Errorf("RectMinDist2(%v, %v) = %g, want %g (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

// RectMinDist2 must lower-bound the point-to-rect MINDIST for any point of
// the first rectangle, which is the property the planner's pruning relies on.
func TestRectMinDist2LowerBoundsPointDist(t *testing.T) {
	f := func(px, py, ax, ay, bx, by float64) bool {
		p := Point{norm(px), norm(py)}
		a := NewRect(p, p)
		b := NewRect(Point{norm(ax), norm(ay)}, Point{norm(bx), norm(by)})
		return RectMinDist2(a, b) <= MinDist2(p, b)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
