// Package geo provides the 2-dimensional spatial primitives used by the
// SPQ algorithms: points, axis-aligned rectangles, Euclidean distance and
// the MINDIST lower bound between a point and a rectangle.
//
// All coordinates are float64 in an arbitrary, caller-defined coordinate
// system. The benchmark harness normalizes datasets to the unit square
// [0,1]x[0,1] as in Section 6.3 of the paper, but nothing in this package
// assumes it.
package geo

import (
	"fmt"
	"math"
)

// Point is a location in the 2-dimensional data space.
type Point struct {
	X, Y float64
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%g, %g)", p.X, p.Y) }

// Dist returns the Euclidean distance between p and q.
func Dist(p, q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Dist2 returns the squared Euclidean distance between p and q. It avoids
// the square root and is the preferred primitive on hot paths: comparing
// Dist2(p,q) <= r*r is equivalent to Dist(p,q) <= r for r >= 0.
func Dist2(p, q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return dx*dx + dy*dy
}

// Rect is a closed axis-aligned rectangle [MinX,MaxX] x [MinY,MaxY].
// A Rect with MinX > MaxX or MinY > MaxY is empty.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// NewRect returns the rectangle spanning the two corner points in any order.
func NewRect(a, b Point) Rect {
	return Rect{
		MinX: math.Min(a.X, b.X),
		MinY: math.Min(a.Y, b.Y),
		MaxX: math.Max(a.X, b.X),
		MaxY: math.Max(a.Y, b.Y),
	}
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%g,%g]x[%g,%g]", r.MinX, r.MaxX, r.MinY, r.MaxY)
}

// Empty reports whether the rectangle contains no points.
func (r Rect) Empty() bool { return r.MinX > r.MaxX || r.MinY > r.MaxY }

// Width returns the extent of r along the x axis (0 for empty rects).
func (r Rect) Width() float64 {
	if r.Empty() {
		return 0
	}
	return r.MaxX - r.MinX
}

// Height returns the extent of r along the y axis (0 for empty rects).
func (r Rect) Height() float64 {
	if r.Empty() {
		return 0
	}
	return r.MaxY - r.MinY
}

// Area returns the area of r (0 for empty rects).
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Contains reports whether p lies inside the closed rectangle.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// Center returns the center point of r.
func (r Rect) Center() Point {
	return Point{X: (r.MinX + r.MaxX) / 2, Y: (r.MinY + r.MaxY) / 2}
}

// Intersects reports whether the two closed rectangles share at least one
// point.
func (r Rect) Intersects(s Rect) bool {
	if r.Empty() || s.Empty() {
		return false
	}
	return r.MinX <= s.MaxX && s.MinX <= r.MaxX && r.MinY <= s.MaxY && s.MinY <= r.MaxY
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	switch {
	case r.Empty():
		return s
	case s.Empty():
		return r
	}
	return Rect{
		MinX: math.Min(r.MinX, s.MinX),
		MinY: math.Min(r.MinY, s.MinY),
		MaxX: math.Max(r.MaxX, s.MaxX),
		MaxY: math.Max(r.MaxY, s.MaxY),
	}
}

// Expand returns r grown by d on every side. A negative d shrinks the
// rectangle and may produce an empty one.
func (r Rect) Expand(d float64) Rect {
	return Rect{MinX: r.MinX - d, MinY: r.MinY - d, MaxX: r.MaxX + d, MaxY: r.MaxY + d}
}

// MinDist returns MINDIST(p, r): the minimum Euclidean distance from p to
// any point of the closed rectangle r. It is 0 when p lies inside r.
//
// This is the bound used by Lemma 1 of the paper: a feature object f in
// cell Cj must be duplicated to cell Ci iff MinDist(f, Ci) <= query radius.
func MinDist(p Point, r Rect) float64 {
	return math.Sqrt(MinDist2(p, r))
}

// MinDist2 returns the squared MINDIST between p and r. Prefer it on hot
// paths: MinDist2(p,r) <= rad*rad is equivalent to MinDist(p,r) <= rad.
func MinDist2(p Point, r Rect) float64 {
	var dx, dy float64
	switch {
	case p.X < r.MinX:
		dx = r.MinX - p.X
	case p.X > r.MaxX:
		dx = p.X - r.MaxX
	}
	switch {
	case p.Y < r.MinY:
		dy = r.MinY - p.Y
	case p.Y > r.MaxY:
		dy = p.Y - r.MaxY
	}
	return dx*dx + dy*dy
}

// RectMinDist2 returns the squared MINDIST between the closed rectangles a
// and b: the smallest squared distance between any point of a and any point
// of b, 0 when they intersect. It is the cell-level pruning bound of the
// query planner: if RectMinDist2 of a data cell's and a feature cell's
// bounding rectangles exceeds r², no object pair across the two cells can
// be within distance r.
func RectMinDist2(a, b Rect) float64 {
	var dx, dy float64
	switch {
	case a.MaxX < b.MinX:
		dx = b.MinX - a.MaxX
	case b.MaxX < a.MinX:
		dx = a.MinX - b.MaxX
	}
	switch {
	case a.MaxY < b.MinY:
		dy = b.MinY - a.MaxY
	case b.MaxY < a.MinY:
		dy = a.MinY - b.MaxY
	}
	return dx*dx + dy*dy
}

// MaxDist returns the maximum Euclidean distance from p to any point of the
// closed rectangle r (the distance to the farthest corner). It is an upper
// bound counterpart of MinDist, useful for pruning in index traversals.
func MaxDist(p Point, r Rect) float64 {
	dx := math.Max(math.Abs(p.X-r.MinX), math.Abs(p.X-r.MaxX))
	dy := math.Max(math.Abs(p.Y-r.MinY), math.Abs(p.Y-r.MaxY))
	return math.Hypot(dx, dy)
}

// Clamp returns the point of the closed rectangle r nearest to p.
func Clamp(p Point, r Rect) Point {
	q := p
	if q.X < r.MinX {
		q.X = r.MinX
	} else if q.X > r.MaxX {
		q.X = r.MaxX
	}
	if q.Y < r.MinY {
		q.Y = r.MinY
	} else if q.Y > r.MaxY {
		q.Y = r.MaxY
	}
	return q
}
