package bench

import (
	"bytes"
	"strings"
	"testing"

	"spq/internal/core"
)

func quickHarness() *Harness {
	return New(Config{
		SizeReal:      4000,
		SizeSynthetic: 6000,
		ScaleUnit:     30,
		Quick:         true,
	})
}

func TestFigureIDsAllRunnable(t *testing.T) {
	h := quickHarness()
	for _, id := range FigureIDs() {
		fig, err := h.Run(id)
		if err != nil {
			t.Fatalf("figure %s: %v", id, err)
		}
		if fig.ID != id {
			t.Errorf("figure id = %s, want %s", fig.ID, id)
		}
		if len(fig.XVals) < 2 || len(fig.Series) < 2 {
			t.Errorf("figure %s: %d x-values, %d series", id, len(fig.XVals), len(fig.Series))
		}
		for _, s := range fig.Series {
			for _, x := range fig.XVals {
				if _, ok := fig.Data[s][x]; !ok {
					t.Errorf("figure %s: missing cell %s/%s", id, s, x)
				}
			}
		}
	}
}

func TestUnknownFigure(t *testing.T) {
	if _, err := quickHarness().Run("nope"); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestWriteTable(t *testing.T) {
	h := quickHarness()
	fig, err := h.Run("7b")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	fig.WriteTable(&buf)
	out := buf.String()
	for _, want := range []string{"7b", "keywords", "pSPQ", "eSPQlen", "eSPQsco"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	var cbuf bytes.Buffer
	fig.WriteCounters(&cbuf)
	if !strings.Contains(cbuf.String(), "features examined") {
		t.Errorf("counter output: %s", cbuf.String())
	}
}

// On every panel, early termination never examines more feature objects
// than pSPQ.
func TestEarlyTerminationNeverWorse(t *testing.T) {
	h := New(Config{SizeReal: 8000, SizeSynthetic: 8000, Quick: true})
	for _, id := range []string{"5a", "6b", "7c"} {
		fig, err := h.Run(id)
		if err != nil {
			t.Fatal(err)
		}
		for _, x := range fig.XVals {
			p := fig.Data[core.PSPQ.String()][x]
			lenC := fig.Data[core.ESPQLen.String()][x]
			sco := fig.Data[core.ESPQSco.String()][x]
			if sco.FeaturesExamined > p.FeaturesExamined {
				t.Errorf("%s x=%s: eSPQsco examined %d > pSPQ %d",
					id, x, sco.FeaturesExamined, p.FeaturesExamined)
			}
			if lenC.FeaturesExamined > p.FeaturesExamined {
				t.Errorf("%s x=%s: eSPQlen examined %d > pSPQ %d",
					id, x, lenC.FeaturesExamined, p.FeaturesExamined)
			}
		}
	}
}

// The paper's headline claim needs cells dense in relevant features (the
// paper's cells hold thousands of objects). On a dense configuration,
// eSPQsco must examine only a small fraction of what pSPQ examines.
func TestEarlyTerminationLargeGainWhenDense(t *testing.T) {
	h := New(Config{})
	ds := h.dataset("UN", 30000)
	gridN := 8 // 64 cells over 15k features: ~2300 relevant features/query
	q := h.defaultQuery(ds, gridN, defaultKeywords, defaultRadiusPc, defaultK, 42)
	examined := map[core.Algorithm]int64{}
	for _, alg := range core.Algorithms() {
		cell, err := h.runOne(ds, alg, q, gridN)
		if err != nil {
			t.Fatal(err)
		}
		examined[alg] = cell.FeaturesExamined
	}
	p, sco := examined[core.PSPQ], examined[core.ESPQSco]
	if p == 0 {
		t.Fatal("pSPQ examined no features")
	}
	if sco*5 > p {
		t.Errorf("dense config: eSPQsco examined %d, pSPQ %d — want >5x reduction", sco, p)
	}
	if examined[core.ESPQLen] > p {
		t.Errorf("eSPQlen examined %d > pSPQ %d", examined[core.ESPQLen], p)
	}
}

// Figure 8 shape: pSPQ work grows roughly linearly with dataset size; the
// early-termination algorithms grow much slower in examined features.
func TestScalabilityShape(t *testing.T) {
	h := New(Config{ScaleUnit: 150, Quick: true}) // sizes 9,600 and 76,800
	fig, err := h.Run("8")
	if err != nil {
		t.Fatal(err)
	}
	small, large := fig.XVals[0], fig.XVals[len(fig.XVals)-1]
	pGrowth := ratio(fig.Data["pSPQ"][large].FeaturesExamined, fig.Data["pSPQ"][small].FeaturesExamined)
	scoGrowth := ratio(fig.Data["eSPQsco"][large].FeaturesExamined, fig.Data["eSPQsco"][small].FeaturesExamined)
	if pGrowth < 4 {
		t.Errorf("pSPQ examined features grew only %.1fx for 8x data", pGrowth)
	}
	if scoGrowth > pGrowth/2 {
		t.Errorf("eSPQsco grew %.1fx vs pSPQ %.1fx — expected much slower growth", scoGrowth, pGrowth)
	}
}

func ratio(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// The df experiment must match the analytical model closely on uniform
// features.
func TestDuplicationFactorFigure(t *testing.T) {
	h := New(Config{SizeSynthetic: 20000})
	fig, err := h.Run("df")
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range fig.XVals {
		m := fig.Data["measured"][x].Millis
		mod := fig.Data["model"][x].Millis
		// Boundary cells lower the measurement; allow 15%.
		if m > mod*1.01 || m < mod*0.85 {
			t.Errorf("df at %s%%: measured %.3f vs model %.3f", x, m, mod)
		}
	}
}

func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	h := New(Config{SizeReal: 2000, SizeSynthetic: 2000, ScaleUnit: 10, Quick: true})
	figs, err := h.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != len(FigureIDs()) {
		t.Errorf("RunAll returned %d figures, want %d", len(figs), len(FigureIDs()))
	}
}

func TestSortedCounterNames(t *testing.T) {
	names := SortedCounterNames(map[string]int64{"b": 1, "a": 2})
	if len(names) != 2 || names[0] != "a" {
		t.Errorf("names = %v", names)
	}
}
