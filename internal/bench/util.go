package bench

import (
	"math/rand"

	"spq/internal/grid"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func dupModel(cellEdge, radius float64) float64 {
	return grid.DuplicationFactorModel(cellEdge, radius)
}
