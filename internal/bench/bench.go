// Package bench is the experiment harness that regenerates every figure of
// the paper's evaluation (Section 7) on the simulated cluster. Each figure
// panel — Figures 5(a)–(d), 6(a)–(d), 7(a)–(d), 8, 9(a)–(d), plus the
// Section 6.2 duplication-factor model — has a runner that sweeps the same
// parameter the paper sweeps and reports one series per algorithm.
//
// Scale: the paper runs 40–512 million objects on 16 physical machines;
// the harness defaults to tens of thousands of objects in-process. The
// parameter grids (grid sizes, radius as a fraction of the cell edge,
// query keyword counts, k) are the paper's, so the relative behaviour of
// the algorithms — who wins, how gaps grow with load — is preserved even
// though absolute times are not comparable. See EXPERIMENTS.md.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"

	"spq/internal/core"
	"spq/internal/data"
	"spq/internal/grid"
	"spq/internal/mapreduce"
	"spq/internal/plan"
	"spq/internal/text"
)

// Config scales and parallelizes the harness.
type Config struct {
	// SizeReal is the total object count for the FL and TW surrogates
	// (default 150,000). Large enough that the paper's 50x50 default grid
	// still gets tens of objects per cell — the regime where early
	// termination matters; see EXPERIMENTS.md on scale.
	SizeReal int
	// SizeSynthetic is the total object count for UN and CL (default
	// 100,000).
	SizeSynthetic int
	// ScaleUnit is the per-step object count of the Figure 8 scalability
	// sweep: sizes are {64, 128, 256, 512} x ScaleUnit (default 400,
	// mirroring the paper's millions with thousands).
	ScaleUnit int
	// MapSlots and ReduceSlots bound cluster concurrency (default: number
	// of CPUs).
	MapSlots    int
	ReduceSlots int
	// Quick trims each sweep to its first and last point; used by smoke
	// tests.
	Quick bool
	// Repeat runs every measured cell this many times and keeps the
	// fastest (default 1). Use 3+ when comparing against a committed
	// BENCH_*.json trajectory file, to factor out scheduler and GC noise.
	Repeat int
	// Legacy routes the query figures through the pre-SPQ2 path: an
	// unplanned full scan of the in-memory object slice, the measurement
	// every BENCH_*.json up to PR 2 recorded. The default (false) measures
	// the modern serving path instead: datasets sealed once as SPQ2
	// columnar segments, each query planned against the block zone maps
	// and executed over the surviving blocks through the decoded-segment
	// cache.
	Legacy bool
	// Verify proves result identity for every measured figure cell: the
	// planned columnar execution is re-run against the legacy full-scan
	// reference and the ranked results must match exactly. Rows carry
	// "verified": true in the JSON output. No-op under Legacy.
	Verify bool
	// Segment selects the columnar segment format datasets are sealed in:
	// data.FormatCompressed (SPQ3, the default) or data.FormatColumnar
	// (SPQ2). Running the same sweep under both formats compares their
	// latency and seg_bytes_* counters on identical workloads.
	Segment string
}

func (c Config) withDefaults() Config {
	if c.SizeReal <= 0 {
		c.SizeReal = 150000
	}
	if c.SizeSynthetic <= 0 {
		c.SizeSynthetic = 100000
	}
	if c.ScaleUnit <= 0 {
		c.ScaleUnit = 400
	}
	if c.MapSlots <= 0 {
		c.MapSlots = runtime.NumCPU()
	}
	if c.ReduceSlots <= 0 {
		c.ReduceSlots = runtime.NumCPU()
	}
	if c.Segment == "" {
		c.Segment = data.FormatCompressed
	}
	return c
}

// Defaults of Table 3 (default values in bold there): 3 query keywords,
// radius 10% of the cell edge, k = 10, grid 50x50 for the real datasets
// and 15x15 for the synthetic ones.
const (
	defaultKeywords = 3
	defaultRadiusPc = 10
	defaultK        = 10
	defaultGridReal = 50
	defaultGridSyn  = 15
)

// Cell is one measured point of a figure: one algorithm at one x-value.
type Cell struct {
	Millis            float64
	FeaturesExamined  int64
	ScoreComputations int64
	Duplicates        int64
	ShuffledRecords   int64
	// Per-phase breakdown: read/decode and map work happens inside the map
	// phase, merge and scoring inside the reduce phase. Their sum can be
	// under Millis (scheduling gaps) but attributes where a format change
	// lands.
	MapMillis    float64
	ReduceMillis float64
	// Planner and decoded-segment-cache activity of the planned columnar
	// path; all zero under Config.Legacy.
	BlocksScanned      int64
	BlocksPruned       int64
	PlanRecordsSkipped int64
	SegCacheHits       int64
	SegCacheMisses     int64
	// Segment I/O of the planned columnar path: SegBytesSelected is the
	// stored size of the blocks the plan selected (deterministic);
	// SegBytesRead/SegBytesDecoded are the cold-pass storage reads and
	// their decoded size (the maximum across repeats — warm repeats read
	// nothing). All zero under Config.Legacy.
	SegBytesRead     int64
	SegBytesDecoded  int64
	SegBytesSelected int64
	// Verified records that this cell's results were proven identical to
	// the legacy full-scan reference (Config.Verify).
	Verified bool
}

// Figure is one reproduced figure panel: a table of series (one per
// algorithm) over the swept x-values.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	XVals  []string
	Series []string // series labels, usually algorithm names
	Data   map[string]map[string]Cell
}

func newFigure(id, title, xlabel string) *Figure {
	return &Figure{ID: id, Title: title, XLabel: xlabel, Data: make(map[string]map[string]Cell)}
}

func (f *Figure) add(series, x string, c Cell) {
	if f.Data[series] == nil {
		f.Data[series] = make(map[string]Cell)
		f.Series = append(f.Series, series)
	}
	if _, seen := f.Data[series][x]; !seen {
		found := false
		for _, v := range f.XVals {
			if v == x {
				found = true
				break
			}
		}
		if !found {
			f.XVals = append(f.XVals, x)
		}
	}
	f.Data[series][x] = c
}

// WriteTable renders the figure as an aligned text table of milliseconds,
// one row per x-value and one column per series — the same rows/series the
// paper plots.
func (f *Figure) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "# %s — %s\n", f.ID, f.Title)
	cols := []string{f.XLabel}
	cols = append(cols, f.Series...)
	widths := make([]int, len(cols))
	rows := [][]string{cols}
	for _, x := range f.XVals {
		row := []string{x}
		for _, s := range f.Series {
			c, ok := f.Data[s][x]
			if !ok {
				row = append(row, "-")
				continue
			}
			row = append(row, fmt.Sprintf("%.2f", c.Millis))
		}
		rows = append(rows, row)
	}
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for ri, row := range rows {
		var sb strings.Builder
		for i, cell := range row {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(pad(cell, widths[i]))
		}
		fmt.Fprintln(w, sb.String())
		if ri == 0 {
			fmt.Fprintln(w, strings.Repeat("-", len(sb.String())))
		}
	}
}

// WriteCounters renders the work counters behind the timings: feature
// objects examined per algorithm and x-value. This is the machine-
// independent signature of early termination.
func (f *Figure) WriteCounters(w io.Writer) {
	fmt.Fprintf(w, "# %s — features examined in Reduce (early-termination effect)\n", f.ID)
	for _, s := range f.Series {
		fmt.Fprintf(w, "%-10s", s)
		for _, x := range f.XVals {
			if c, ok := f.Data[s][x]; ok {
				fmt.Fprintf(w, "  %s=%d", x, c.FeaturesExamined)
			}
		}
		fmt.Fprintln(w)
	}
}

// Row is one measured point in the machine-readable output: one series
// (algorithm) at one swept x-value of one figure. MapMillis/ReduceMillis
// break the latency into its phases — read+decode+map+sort versus
// merge+reduce — so a storage-format win is attributable: a format change
// moves map_millis (and the seg_cache_* / blocks_* counters), a scoring
// change moves reduce_millis. Verified marks rows whose results were
// proven identical to the legacy full-scan reference.
type Row struct {
	Figure       string           `json:"figure"`
	Series       string           `json:"series"`
	X            string           `json:"x"`
	Millis       float64          `json:"millis"`
	MapMillis    float64          `json:"map_millis"`
	ReduceMillis float64          `json:"reduce_millis"`
	Verified     bool             `json:"verified,omitempty"`
	Counters     map[string]int64 `json:"counters"`
}

// Rows flattens the figure into machine-readable rows, in sweep order.
func (f *Figure) Rows() []Row {
	var out []Row
	for _, x := range f.XVals {
		for _, s := range f.Series {
			c, ok := f.Data[s][x]
			if !ok {
				continue
			}
			out = append(out, Row{
				Figure:       f.ID,
				Series:       s,
				X:            x,
				Millis:       c.Millis,
				MapMillis:    c.MapMillis,
				ReduceMillis: c.ReduceMillis,
				Verified:     c.Verified,
				Counters: map[string]int64{
					"features_examined":    c.FeaturesExamined,
					"score_computations":   c.ScoreComputations,
					"duplicates":           c.Duplicates,
					"shuffled_records":     c.ShuffledRecords,
					"blocks_scanned":       c.BlocksScanned,
					"blocks_pruned":        c.BlocksPruned,
					"plan_records_skipped": c.PlanRecordsSkipped,
					"seg_cache_hits":       c.SegCacheHits,
					"seg_cache_misses":     c.SegCacheMisses,
					"seg_bytes_read":       c.SegBytesRead,
					"seg_bytes_decoded":    c.SegBytesDecoded,
					"seg_bytes_selected":   c.SegBytesSelected,
				},
			})
		}
	}
	return out
}

// WriteJSON emits the flattened rows of the figures as one indented JSON
// array — the format the perf-trajectory tooling diffs across PRs
// (BENCH_*.json).
func WriteJSON(w io.Writer, figures []*Figure) error {
	rows := []Row{}
	for _, f := range figures {
		rows = append(rows, f.Rows()...)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Harness caches generated datasets across figures and owns the simulated
// cluster the experiments run on.
type Harness struct {
	cfg     Config
	cluster *mapreduce.Cluster
	cache   map[string]*data.Dataset
	// objCache memoizes Dataset.Objects per dataset: the merged slice is
	// read-only for jobs, and materializing 100k+ objects per measured run
	// would charge allocation and GC time to every figure point.
	objCache map[*data.Dataset][]data.Object
	// segCache memoizes the columnar seal of each (dataset, segment
	// format) — segment store, manifest with block zone maps, decoded-
	// segment cache — built once, exactly as an engine seals once and
	// serves many queries. It is a tiny LRU (most recent first): figures
	// sweep one
	// dataset at a time, and retaining every family's segments, decoded
	// blocks and views for the whole 20-figure run would tax the later
	// figures with GC scans over hundreds of megabytes they never touch.
	segCache []*segStore
}

// maxSegStores bounds the harness's resident columnar seals. Three covers
// every sweep's reuse pattern (consecutive figures share a dataset);
// rebuilding an evicted store happens outside the measured window.
const maxSegStores = 3

// benchSealGridN is the seal grid the harness partitions datasets over,
// matching the engine's default.
const benchSealGridN = 32

// segStore is one dataset sealed as columnar segments (SPQ2 or SPQ3),
// with the two read-path caches an engine would hold: decoded column
// blocks and per-grid data views.
type segStore struct {
	ds     *data.Dataset
	format string
	store  data.MemSegStore
	man    *data.Manifest
	cache  *data.BlockCache
	views  *core.ViewCache
}

// New creates a harness.
func New(cfg Config) *Harness {
	cfg = cfg.withDefaults()
	return &Harness{
		cfg:      cfg,
		cluster:  mapreduce.NewCluster(nil, cfg.MapSlots, cfg.ReduceSlots),
		cache:    make(map[string]*data.Dataset),
		objCache: make(map[*data.Dataset][]data.Object),
	}
}

// segStore returns the dataset's cached columnar seal in the configured
// segment format, sealing on first use. The block cache budget comfortably
// holds every decoded block of a bench dataset — the steady serving state
// of an engine whose working set fits its cache.
func (h *Harness) segStore(ds *data.Dataset) (*segStore, error) {
	format := h.cfg.Segment
	for i, st := range h.segCache {
		if st.ds == ds && st.format == format {
			if i != 0 {
				copy(h.segCache[1:i+1], h.segCache[:i])
				h.segCache[0] = st
			}
			return st, nil
		}
	}
	g := grid.New(ds.Bounds(), benchSealGridN, benchSealGridN)
	store := data.MemSegStore{}
	man, err := data.PartitionObjects(g, h.objects(ds)).SealSegments(store, "bench", ds.Dict, 0, format)
	if err != nil {
		return nil, fmt.Errorf("bench: seal %s: %w", ds.Spec.Name, err)
	}
	st := &segStore{ds: ds, format: format, store: store, man: man,
		cache: data.NewBlockCache(1 << 30), views: core.NewViewCache(0)}
	h.segCache = append([]*segStore{st}, h.segCache...)
	if len(h.segCache) > maxSegStores {
		h.segCache = h.segCache[:maxSegStores]
	}
	return st, nil
}

// objects returns the cached merged object slice of ds.
func (h *Harness) objects(ds *data.Dataset) []data.Object {
	if objs, ok := h.objCache[ds]; ok {
		return objs
	}
	objs := ds.Objects()
	h.objCache[ds] = objs
	return objs
}

// dataset returns the (cached) scaled dataset of a family. Vocabulary
// sizes are scaled with the object count so that query selectivity — the
// fraction of features surviving the Map-side keyword prune — stays in the
// paper's regime despite the ~1000x smaller corpora (see EXPERIMENTS.md).
func (h *Harness) dataset(family string, n int) *data.Dataset {
	key := fmt.Sprintf("%s/%d", family, n)
	if ds, ok := h.cache[key]; ok {
		return ds
	}
	var spec data.Spec
	switch family {
	case "FL":
		spec = data.FlickrSpec(n)
		spec.VocabSize = scaledVocab(n, 20)
	case "TW":
		spec = data.TwitterSpec(n)
		spec.VocabSize = scaledVocab(n, 15)
	case "UN":
		spec = data.UniformSpec(n)
	case "CL":
		spec = data.ClusteredSpec(n)
	default:
		panic("bench: unknown dataset family " + family)
	}
	ds := data.Generate(spec)
	h.cache[key] = ds
	return ds
}

func scaledVocab(n, div int) int {
	v := n / div
	if v < 500 {
		v = 500
	}
	return v
}

// queryKeywords samples nk distinct keywords token-weighted from the
// feature corpus: a random feature's random keyword, retried until
// distinct. This guarantees the query matches the corpus the way user
// queries match the text people actually write, while remaining seeded and
// reproducible.
func queryKeywords(ds *data.Dataset, nk int, seed int64) text.KeywordSet {
	r := newRand(seed)
	seen := make(map[uint32]bool, nk)
	ids := make([]uint32, 0, nk)
	for tries := 0; len(ids) < nk && tries < 10000; tries++ {
		f := ds.Features[r.Intn(len(ds.Features))]
		kw := f.Keywords[r.Intn(len(f.Keywords))]
		if !seen[kw] {
			seen[kw] = true
			ids = append(ids, kw)
		}
	}
	return text.NewKeywordSet(ids...)
}

// Decoded-segment-cache deltas and segment I/O of one measured run,
// surfaced next to the job counters in the JSON rows.
const (
	counterSegHits          = "bench.seg.cache.hits"
	counterSegMisses        = "bench.seg.cache.misses"
	counterSegBytesRead     = "bench.seg.bytes.read"
	counterSegBytesDecoded  = "bench.seg.bytes.decoded"
	counterSegBytesSelected = "bench.seg.bytes.selected"
)

// selBytes sums the stored frame bytes of a block selection — the
// deterministic seg_bytes_selected row counter.
func selBytes(sels []data.ColSel) int64 {
	var n int64
	for _, sel := range sels {
		if sel.Blocks == nil {
			for _, bs := range sel.Cell.Blocks {
				n += int64(bs.Length)
			}
			continue
		}
		for _, i := range sel.Blocks {
			n += int64(sel.Cell.Blocks[i].Length)
		}
	}
	return n
}

// runOne executes one algorithm on one workload configuration and collects
// the measured cell: the planned columnar serving path by default, the
// pre-SPQ2 full scan under Config.Legacy.
func (h *Harness) runOne(ds *data.Dataset, alg core.Algorithm, q core.Query, gridN int) (Cell, error) {
	if h.cfg.Legacy {
		return h.runLegacy(ds, alg, q, gridN)
	}
	return h.runPlanned(ds, alg, q, gridN)
}

// runLegacy measures the unplanned full scan over the in-memory object
// slice — the measurement every BENCH_*.json up to PR 2 recorded, and the
// reference results Verify compares against.
func (h *Harness) runLegacy(ds *data.Dataset, alg core.Algorithm, q core.Query, gridN int) (Cell, error) {
	cell, _, err := h.measure(func() (*core.Report, error) {
		return h.runReference(ds, alg, q, gridN)
	})
	return cell, err
}

// runReference executes one unplanned full-scan job.
func (h *Harness) runReference(ds *data.Dataset, alg core.Algorithm, q core.Query, gridN int) (*core.Report, error) {
	src := mapreduce.NewMemorySource(h.objects(ds), h.cfg.MapSlots*2)
	return core.Run(alg, src, q, core.Options{
		Cluster: h.cluster,
		Bounds:  ds.Bounds(),
		GridN:   gridN,
	})
}

// runPlanned measures the modern serving path: the query is planned
// against the dataset's SPQ2 block zone maps, executed over the surviving
// blocks through the decoded-segment cache, with the planner's reducer
// choice. The figure's swept grid still overrides the query-time grid, so
// the x-axis keeps its meaning.
func (h *Harness) runPlanned(ds *data.Dataset, alg core.Algorithm, q core.Query, gridN int) (Cell, error) {
	st, err := h.segStore(ds)
	if err != nil {
		return Cell{}, err
	}
	dec := plan.Plan(st.man, plan.Input{
		Radius:      q.Radius,
		Keywords:    ds.Dict.Words(q.Keywords),
		ReduceSlots: h.cfg.ReduceSlots,
		GridN:       gridN,
	})
	if dec.Empty() {
		// Figure queries draw keywords from the corpus, so a provably
		// empty plan means the harness itself is broken.
		return Cell{}, fmt.Errorf("bench: plan proved figure query empty (k=%d r=%g)", q.K, q.Radius)
	}
	dataSel := make([]data.ColSel, 0, len(dec.Data))
	for _, cs := range dec.Data {
		dataSel = append(dataSel, data.ColSel{Cell: cs, Blocks: dec.Blocks[cs.File]})
	}
	featSel := make([]data.ColSel, 0, len(dec.Features))
	for _, cs := range dec.Features {
		featSel = append(featSel, data.ColSel{Cell: cs, Blocks: dec.Blocks[cs.File]})
	}
	bytesSelected := selBytes(dataSel) + selBytes(featSel)
	cell, rep, err := h.measure(func() (*core.Report, error) {
		before := st.cache.Stats()
		io := &data.SegIOStats{}
		// The surviving data blocks become (or reuse) the per-grid data
		// view: the job shuffles feature records only, and reduce tasks
		// score against the view's dense per-cell columns.
		view, err := st.dataView(ds, dataSel, gridN, io)
		if err != nil {
			return nil, err
		}
		in := data.NewColInput(st.store, featSel, st.cache, st.man.Generation)
		in.IO = io
		in.Keywords = q.Keywords
		src := mapreduce.Coalesce[data.Object](in, h.cfg.MapSlots*4)
		r, err := core.Run(alg, src, q, core.Options{
			Cluster:       h.cluster,
			Bounds:        ds.Bounds(),
			GridN:         gridN,
			NumReducers:   dec.NumReducers,
			ExtraCounters: dec.Counters(),
			DataView:      view,
		})
		if err != nil {
			return nil, err
		}
		after := st.cache.Stats()
		r.Counters[counterSegHits] = after.Hits - before.Hits
		r.Counters[counterSegMisses] = after.Misses - before.Misses
		r.Counters[counterSegBytesRead] = io.BytesRead.Load()
		r.Counters[counterSegBytesDecoded] = io.BytesDecoded.Load()
		r.Counters[counterSegBytesSelected] = bytesSelected
		return r, nil
	})
	if err != nil {
		return Cell{}, err
	}
	if h.cfg.Verify {
		ref, err := h.runReference(ds, alg, q, gridN)
		if err != nil {
			return Cell{}, fmt.Errorf("bench: verify reference: %w", err)
		}
		if !sameResults(rep.Results, ref.Results) {
			return Cell{}, fmt.Errorf("bench: %v k=%d r=%g grid %d: planned columnar results differ from the full-scan reference",
				alg, q.K, q.Radius, gridN)
		}
		cell.Verified = true
	}
	return cell, nil
}

// dataView returns the cached data view for this grid and pruned data
// selection, building it from the (cache-resident) data blocks on first
// use. Keyed by core.ViewKey, the same canonical identity the engine
// uses, so the harness measures the cache behaviour the engine ships.
func (st *segStore) dataView(ds *data.Dataset, dataSel []data.ColSel, gridN int, io *data.SegIOStats) (*core.DataView, error) {
	key := core.ViewKey(st.man.Generation, gridN, ds.Bounds(), dataSel)
	return st.views.GetOrBuild(key, func() (*core.DataView, error) {
		g := grid.New(ds.Bounds(), gridN, gridN)
		in := data.NewColInput(st.store, dataSel, st.cache, st.man.Generation)
		in.IO = io
		return core.BuildDataView(g, in)
	})
}

// sameResults compares two ranked result lists exactly (ids, locations
// and bitwise scores): pruning and storage format may never change them.
func sameResults(a, b []core.ResultItem) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// measure runs the job cfg.Repeat times and reports the cell (and report)
// with the minimum wall time — the standard way to factor scheduler and
// GC noise out of a single-machine measurement. Job counters are
// deterministic across repeats; the segment-cache deltas are not (the
// first repeat decodes cold, later ones hit), so the cell always carries
// the LAST repeat's cache deltas — the steady serving state the minimum
// wall time corresponds to — regardless of which repeat was fastest.
func (h *Harness) measure(run func() (*core.Report, error)) (Cell, *core.Report, error) {
	repeat := h.cfg.Repeat
	if repeat < 1 {
		repeat = 1
	}
	var best Cell
	var bestRep *core.Report
	for i := 0; i < repeat; i++ {
		rep, err := run()
		if err != nil {
			return Cell{}, nil, err
		}
		cell := Cell{
			Millis:             float64(rep.Stats.Duration.Microseconds()) / 1000,
			FeaturesExamined:   rep.Counters[core.CounterFeaturesExamined],
			ScoreComputations:  rep.Counters[core.CounterScoreComputations],
			Duplicates:         rep.Counters[core.CounterDuplicates],
			ShuffledRecords:    rep.Counters[mapreduce.CounterMapRecordsOut],
			MapMillis:          float64(rep.Stats.MapDuration.Microseconds()) / 1000,
			ReduceMillis:       float64(rep.Stats.ReduceDuration.Microseconds()) / 1000,
			BlocksScanned:      rep.Counters[plan.CounterBlocksScanned],
			BlocksPruned:       rep.Counters[plan.CounterBlocksPruned],
			PlanRecordsSkipped: rep.Counters[plan.CounterRecordsSkipped],
			SegCacheHits:       rep.Counters[counterSegHits],
			SegCacheMisses:     rep.Counters[counterSegMisses],
			SegBytesRead:       rep.Counters[counterSegBytesRead],
			SegBytesDecoded:    rep.Counters[counterSegBytesDecoded],
			SegBytesSelected:   rep.Counters[counterSegBytesSelected],
		}
		if i == 0 || cell.Millis < best.Millis {
			bytesRead, bytesDecoded := best.SegBytesRead, best.SegBytesDecoded
			best = cell
			bestRep = rep
			best.SegBytesRead, best.SegBytesDecoded = bytesRead, bytesDecoded
		}
		// Last repeat's cache deltas win regardless of which repeat was
		// fastest (see doc comment), while bytes read/decoded keep their
		// maximum across repeats — the cold pass, wherever it landed.
		best.SegCacheHits, best.SegCacheMisses = cell.SegCacheHits, cell.SegCacheMisses
		best.SegBytesRead = max(best.SegBytesRead, cell.SegBytesRead)
		best.SegBytesDecoded = max(best.SegBytesDecoded, cell.SegBytesDecoded)
	}
	return best, bestRep, nil
}

// trim reduces a sweep to its endpoints in Quick mode.
func (h *Harness) trim(xs []int) []int {
	if !h.cfg.Quick || len(xs) <= 2 {
		return xs
	}
	return []int{xs[0], xs[len(xs)-1]}
}

// FigureIDs lists every figure the harness can reproduce, in paper order.
func FigureIDs() []string {
	ids := []string{
		"5a", "5b", "5c", "5d",
		"6a", "6b", "6c", "6d",
		"7a", "7b", "7c", "7d",
		"8",
		"9a", "9b", "9c", "9d",
		"df", "lb", "sh",
	}
	return ids
}

// Run reproduces one figure panel by id (see FigureIDs).
func (h *Harness) Run(id string) (*Figure, error) {
	switch id {
	case "5a":
		return h.gridSweep(id, "FL", h.cfg.SizeReal, []int{35, 50, 75, 100}, core.Algorithms())
	case "5b":
		return h.keywordSweep(id, "FL", h.cfg.SizeReal, defaultGridReal, []int{1, 3, 5, 10}, core.Algorithms())
	case "5c":
		return h.radiusSweep(id, "FL", h.cfg.SizeReal, defaultGridReal, []int{10, 25, 50, 100}, core.Algorithms())
	case "5d":
		return h.topkSweep(id, "FL", h.cfg.SizeReal, defaultGridReal, []int{5, 10, 50, 100}, core.Algorithms())
	case "6a":
		return h.gridSweep(id, "TW", h.cfg.SizeReal, []int{35, 50, 75, 100}, core.Algorithms())
	case "6b":
		return h.keywordSweep(id, "TW", h.cfg.SizeReal, defaultGridReal, []int{1, 3, 5, 10}, core.Algorithms())
	case "6c":
		return h.radiusSweep(id, "TW", h.cfg.SizeReal, defaultGridReal, []int{10, 25, 50, 100}, core.Algorithms())
	case "6d":
		return h.topkSweep(id, "TW", h.cfg.SizeReal, defaultGridReal, []int{5, 10, 50, 100}, core.Algorithms())
	case "7a":
		return h.gridSweep(id, "UN", h.cfg.SizeSynthetic, []int{10, 15, 50, 100}, core.Algorithms())
	case "7b":
		return h.keywordSweep(id, "UN", h.cfg.SizeSynthetic, defaultGridSyn, []int{1, 3, 5, 10}, core.Algorithms())
	case "7c":
		return h.radiusSweep(id, "UN", h.cfg.SizeSynthetic, defaultGridSyn, []int{5, 10, 15, 50, 100}, core.Algorithms())
	case "7d":
		return h.topkSweep(id, "UN", h.cfg.SizeSynthetic, defaultGridSyn, []int{5, 10, 50, 100}, core.Algorithms())
	case "8":
		return h.scalability(id)
	case "9a":
		// The paper omits pSPQ on CL: with the default setup it takes ~48
		// hours on their cluster (Section 7.2.4). Same omission here.
		return h.gridSweep(id, "CL", h.cfg.SizeSynthetic, []int{10, 15, 50, 100}, earlyOnly())
	case "9b":
		return h.keywordSweep(id, "CL", h.cfg.SizeSynthetic, defaultGridSyn, []int{1, 3, 5, 10}, earlyOnly())
	case "9c":
		return h.radiusSweep(id, "CL", h.cfg.SizeSynthetic, defaultGridSyn, []int{5, 10, 15, 50, 100}, earlyOnly())
	case "9d":
		return h.topkSweep(id, "CL", h.cfg.SizeSynthetic, defaultGridSyn, []int{5, 10, 50, 100}, earlyOnly())
	case "df":
		return h.duplicationFactor(id)
	case "lb":
		return h.loadBalance(id)
	case "sh":
		return h.shuffleScaling(id)
	default:
		return nil, fmt.Errorf("bench: unknown figure %q (known: %s)", id, strings.Join(FigureIDs(), ", "))
	}
}

// RunAll reproduces every figure.
func (h *Harness) RunAll() ([]*Figure, error) {
	var out []*Figure
	for _, id := range FigureIDs() {
		f, err := h.Run(id)
		if err != nil {
			return nil, fmt.Errorf("bench: figure %s: %w", id, err)
		}
		out = append(out, f)
	}
	return out, nil
}

func earlyOnly() []core.Algorithm { return []core.Algorithm{core.ESPQLen, core.ESPQSco} }

func datasetTitle(family string) string {
	switch family {
	case "FL":
		return "Flickr surrogate"
	case "TW":
		return "Twitter surrogate"
	case "UN":
		return "Uniform"
	case "CL":
		return "Clustered"
	}
	return family
}

// defaultQuery builds the Table-3 default query for a dataset and grid.
func (h *Harness) defaultQuery(ds *data.Dataset, gridN, numKw, radiusPc, k int, seed int64) core.Query {
	cellEdge := ds.Bounds().Width() / float64(gridN)
	return core.Query{
		K:        k,
		Radius:   float64(radiusPc) / 100 * cellEdge,
		Keywords: queryKeywords(ds, numKw, seed),
	}
}

func (h *Harness) gridSweep(id, family string, size int, grids []int, algs []core.Algorithm) (*Figure, error) {
	fig := newFigure(id, fmt.Sprintf("%s: varying grid size (|q.W|=%d, r=%d%% of cell, k=%d)",
		datasetTitle(family), defaultKeywords, defaultRadiusPc, defaultK), "grid")
	ds := h.dataset(family, size)
	for _, g := range h.trim(grids) {
		q := h.defaultQuery(ds, g, defaultKeywords, defaultRadiusPc, defaultK, 42)
		for _, alg := range algs {
			cell, err := h.runOne(ds, alg, q, g)
			if err != nil {
				return nil, err
			}
			fig.add(alg.String(), fmt.Sprint(g), cell)
		}
	}
	return fig, nil
}

func (h *Harness) keywordSweep(id, family string, size, gridN int, kws []int, algs []core.Algorithm) (*Figure, error) {
	fig := newFigure(id, fmt.Sprintf("%s: varying query keywords (grid %d, r=%d%%, k=%d)",
		datasetTitle(family), gridN, defaultRadiusPc, defaultK), "keywords")
	ds := h.dataset(family, size)
	for _, nk := range h.trim(kws) {
		q := h.defaultQuery(ds, gridN, nk, defaultRadiusPc, defaultK, 42)
		for _, alg := range algs {
			cell, err := h.runOne(ds, alg, q, gridN)
			if err != nil {
				return nil, err
			}
			fig.add(alg.String(), fmt.Sprint(nk), cell)
		}
	}
	return fig, nil
}

func (h *Harness) radiusSweep(id, family string, size, gridN int, pcts []int, algs []core.Algorithm) (*Figure, error) {
	fig := newFigure(id, fmt.Sprintf("%s: varying query radius (grid %d, |q.W|=%d, k=%d)",
		datasetTitle(family), gridN, defaultKeywords, defaultK), "radius%")
	ds := h.dataset(family, size)
	for _, pc := range h.trim(pcts) {
		q := h.defaultQuery(ds, gridN, defaultKeywords, pc, defaultK, 42)
		for _, alg := range algs {
			cell, err := h.runOne(ds, alg, q, gridN)
			if err != nil {
				return nil, err
			}
			fig.add(alg.String(), fmt.Sprint(pc), cell)
		}
	}
	return fig, nil
}

func (h *Harness) topkSweep(id, family string, size, gridN int, ks []int, algs []core.Algorithm) (*Figure, error) {
	fig := newFigure(id, fmt.Sprintf("%s: varying k (grid %d, |q.W|=%d, r=%d%%)",
		datasetTitle(family), gridN, defaultKeywords, defaultRadiusPc), "k")
	ds := h.dataset(family, size)
	for _, k := range h.trim(ks) {
		q := h.defaultQuery(ds, gridN, defaultKeywords, defaultRadiusPc, k, 42)
		for _, alg := range algs {
			cell, err := h.runOne(ds, alg, q, gridN)
			if err != nil {
				return nil, err
			}
			fig.add(alg.String(), fmt.Sprint(k), cell)
		}
	}
	return fig, nil
}

// scalability is Figure 8: execution time vs dataset size for all three
// algorithms on uniform data.
func (h *Harness) scalability(id string) (*Figure, error) {
	fig := newFigure(id, fmt.Sprintf("Scalability: dataset size x%d objects (grid %d, |q.W|=%d, r=%d%%, k=%d)",
		h.cfg.ScaleUnit, defaultGridSyn, defaultKeywords, defaultRadiusPc, defaultK), "size")
	for _, mult := range h.trim([]int{64, 128, 256, 512}) {
		ds := h.dataset("UN", mult*h.cfg.ScaleUnit)
		q := h.defaultQuery(ds, defaultGridSyn, defaultKeywords, defaultRadiusPc, defaultK, 42)
		for _, alg := range core.Algorithms() {
			cell, err := h.runOne(ds, alg, q, defaultGridSyn)
			if err != nil {
				return nil, err
			}
			fig.add(alg.String(), fmt.Sprint(mult), cell)
		}
	}
	return fig, nil
}

// duplicationFactor validates the Section 6.2 analytical model against the
// measured duplication of uniform features, across radius fractions.
func (h *Harness) duplicationFactor(id string) (*Figure, error) {
	fig := newFigure(id, "Duplication factor: measured vs model df = πr²/α² + 4r/α + 1 (uniform features)", "r/α%")
	ds := h.dataset("UN", h.cfg.SizeSynthetic)
	g := defaultGridSyn
	for _, pc := range h.trim([]int{5, 10, 25, 50}) {
		q := h.defaultQuery(ds, g, defaultKeywords, pc, defaultK, 42)
		// The duplication-factor model validates against the full unpruned
		// map input; pruning would change the measured duplicates.
		cell, err := h.runLegacy(ds, core.PSPQ, q, g)
		if err != nil {
			return nil, err
		}
		// Measured df: (relevant features + duplicates) / relevant features.
		relevant := int64(0)
		for _, f := range ds.Features {
			if f.Keywords.Intersects(q.Keywords) {
				relevant++
			}
		}
		measured := 1.0
		if relevant > 0 {
			measured = float64(relevant+cell.Duplicates) / float64(relevant)
		}
		cellEdge := ds.Bounds().Width() / float64(g)
		model := dupModel(cellEdge, q.Radius)
		x := fmt.Sprint(pc)
		fig.add("measured", x, Cell{Millis: measured})
		fig.add("model", x, Cell{Millis: model})
	}
	return fig, nil
}

// loadBalance is the extension experiment for the Section 7.2.4
// observation: with fewer reduce tasks than cells on clustered data, the
// default cell%R assignment overloads some reducers. It sweeps the reducer
// count and reports job time under round-robin vs the cost-based LPT
// assignment, plus the max/ideal load imbalance of each assignment in the
// counter column.
func (h *Harness) loadBalance(id string) (*Figure, error) {
	fig := newFigure(id, "Reducer load balancing on clustered data: round-robin vs cost-based LPT (grid 15)", "reducers")
	ds := h.dataset("CL", h.cfg.SizeSynthetic)
	gridN := defaultGridSyn
	q := h.defaultQuery(ds, gridN, defaultKeywords, defaultRadiusPc, defaultK, 42)
	g := grid.New(ds.Bounds(), gridN, gridN)
	weights, err := core.CellWeights(mapreduce.NewMemorySource(h.objects(ds), h.cfg.MapSlots*2), g, q, 0)
	if err != nil {
		return nil, err
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	for _, reducers := range h.trim([]int{2, 4, 8, 16}) {
		ideal := total / float64(reducers)
		for _, balance := range []bool{false, true} {
			cell, _, err := h.measure(func() (*core.Report, error) {
				src := mapreduce.NewMemorySource(h.objects(ds), h.cfg.MapSlots*2)
				return core.Run(core.ESPQSco, src, q, core.Options{
					Cluster:     h.cluster,
					Bounds:      ds.Bounds(),
					GridN:       gridN,
					NumReducers: reducers,
					LoadBalance: balance,
				})
			})
			if err != nil {
				return nil, err
			}
			var assign []int32
			series := "round-robin"
			if balance {
				series = "balanced-lpt"
				assign = core.BalanceCells(weights, reducers)
			} else {
				assign = core.RoundRobinAssign(len(weights), reducers)
			}
			imbalance := core.MaxLoad(weights, assign, reducers) / ideal
			fig.add(series, fmt.Sprint(reducers), Cell{
				Millis: cell.Millis,
				// Imbalance x1000 stored in the counter column so
				// WriteCounters surfaces it (max load / ideal load).
				FeaturesExamined: int64(imbalance * 1000),
			})
		}
	}
	return fig, nil
}

// shuffleScaling is the extension experiment behind the map-side sort
// shuffle: on clustered data (the most shuffle- and reduce-heavy
// workload), it sweeps the worker slot count with sorting done inside the
// map tasks and merging inside the reduce tasks, in-memory and with
// external spill runs. Added slots should translate into lower wall time
// because no shuffle work is serialized between the phases.
func (h *Harness) shuffleScaling(id string) (*Figure, error) {
	fig := newFigure(id, fmt.Sprintf("Shuffle scaling on clustered data: map-side sort + per-reduce merge (grid %d, eSPQsco)",
		defaultGridSyn), "slots")
	ds := h.dataset("CL", h.cfg.SizeSynthetic)
	q := h.defaultQuery(ds, defaultGridSyn, defaultKeywords, defaultRadiusPc, defaultK, 42)
	for _, slots := range h.trim([]int{1, 2, 4, 8}) {
		cluster := mapreduce.NewCluster(nil, slots, slots)
		for _, spill := range []int{0, 4096} {
			cell, _, err := h.measure(func() (*core.Report, error) {
				src := mapreduce.NewMemorySource(h.objects(ds), slots*2)
				return core.Run(core.ESPQSco, src, q, core.Options{
					Cluster:    cluster,
					Bounds:     ds.Bounds(),
					GridN:      defaultGridSyn,
					SpillEvery: spill,
				})
			})
			if err != nil {
				return nil, err
			}
			series := "in-memory"
			if spill > 0 {
				series = fmt.Sprintf("spill-%d", spill)
			}
			fig.add(series, fmt.Sprint(slots), cell)
		}
	}
	return fig, nil
}

// SortedCounterNames returns the counter names of a report sorted, for
// stable textual output in the CLI.
func SortedCounterNames(c map[string]int64) []string {
	names := make([]string, 0, len(c))
	for n := range c {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
