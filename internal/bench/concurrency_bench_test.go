// Concurrent-serving benchmarks. They live in the external test package:
// package bench itself must not import the public spq package (the root
// package's own tests import bench), but its test binary may.
package bench_test

import (
	"runtime"
	"sync/atomic"
	"testing"

	"spq"
	"spq/internal/bench"
)

// servingWorkload builds a sealed engine plus a distinct-query generator,
// the workload of cmd/spqbench -concurrency at benchmark scale.
func servingWorkload(b *testing.B, cfg spq.Config) (*spq.Engine, func(i int) spq.Query) {
	b.Helper()
	eng := spq.NewEngine(cfg)
	if err := eng.LoadSynthetic("uniform", 20000); err != nil {
		b.Fatal(err)
	}
	if err := eng.Seal(); err != nil {
		b.Fatal(err)
	}
	kws := eng.FrequentKeywords(64)
	if len(kws) < 16 {
		b.Fatalf("only %d keywords", len(kws))
	}
	return eng, func(i int) spq.Query {
		return spq.Query{K: 10, Radius: 0.02, Keywords: bench.RotatingKeywords(kws, i)}
	}
}

func benchConcurrentQuery(b *testing.B, opts ...spq.QueryOption) {
	slots := runtime.NumCPU()
	eng, query := servingWorkload(b, spq.Config{Storage: spq.StorageMemory, MapSlots: slots, ReduceSlots: slots})
	var next atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := int(next.Add(1) - 1)
			if _, err := eng.Query(query(i), opts...); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(b.N)/s, "qps")
	}
}

// BenchmarkConcurrentQuery measures aggregate QPS with GOMAXPROCS
// concurrent clients issuing distinct queries against one shared sealed
// engine — snapshot reads plus shared-slot admission, no cache.
func BenchmarkConcurrentQuery(b *testing.B) {
	benchConcurrentQuery(b, spq.WithAutoPlan(), spq.WithCache(false))
}

// BenchmarkConcurrentQueryCached is the steady serving state: the same
// rotating workload with the query cache on, so warm queries are hits.
func BenchmarkConcurrentQueryCached(b *testing.B) {
	slots := runtime.NumCPU()
	eng, query := servingWorkload(b, spq.Config{Storage: spq.StorageMemory, MapSlots: slots, ReduceSlots: slots})
	// Warm a fixed mix, then serve only warm queries.
	const mix = 64
	for i := 0; i < mix; i++ {
		if _, err := eng.Query(query(i), spq.WithAutoPlan()); err != nil {
			b.Fatal(err)
		}
	}
	var next atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := int(next.Add(1)-1) % mix
			if _, err := eng.Query(query(i), spq.WithAutoPlan()); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(b.N)/s, "qps")
	}
	if hits := eng.CacheStats().Hits; b.N > 0 && hits == 0 {
		b.Fatal("no cache hits on warm workload")
	}
}

// BenchmarkRunConcurrentHarness exercises the harness itself on a tiny
// workload, so regressions in the measurement loop show up here rather
// than polluting the serving numbers.
func BenchmarkRunConcurrentHarness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _, err := bench.RunConcurrent(64, 8, func(int) (string, error) { return "", nil })
		if err != nil {
			b.Fatal(err)
		}
	}
}
