package bench

import (
	"testing"

	"spq/internal/core"
)

// BenchmarkPlannedClusteredQuery measures one fig-9c-style point (CL
// dataset, grid 15, 3 keywords, r=10% of cell) end to end on the planned
// columnar path. It is the profiling anchor for the storage read path.
func BenchmarkPlannedClusteredQuery(b *testing.B) {
	h := New(Config{MapSlots: 4, ReduceSlots: 4})
	ds := h.dataset("CL", h.cfg.SizeSynthetic)
	q := h.defaultQuery(ds, defaultGridSyn, defaultKeywords, defaultRadiusPc, defaultK, 42)
	if _, err := h.runPlanned(ds, core.ESPQSco, q, defaultGridSyn); err != nil { // warm cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.runPlanned(ds, core.ESPQSco, q, defaultGridSyn); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLegacyClusteredQuery is the same point on the legacy full-scan
// path, for comparison.
func BenchmarkLegacyClusteredQuery(b *testing.B) {
	h := New(Config{MapSlots: 4, ReduceSlots: 4, Legacy: true})
	ds := h.dataset("CL", h.cfg.SizeSynthetic)
	q := h.defaultQuery(ds, defaultGridSyn, defaultKeywords, defaultRadiusPc, defaultK, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.runLegacy(ds, core.ESPQSco, q, defaultGridSyn); err != nil {
			b.Fatal(err)
		}
	}
}
