package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Concurrency harness: measures aggregate query throughput (QPS) when N
// clients issue queries against one shared engine — the serving scenario
// the admission controller and query cache exist for. The harness is
// engine-agnostic (it drives any QueryFunc), so it lives here without
// importing the public package; cmd/spqbench and the package benchmarks
// supply the engine closure.

// QueryFunc executes one query of a workload, identified by its index in
// [0, queries), and returns a deterministic fingerprint of its results.
// Fingerprints let the harness prove that a concurrent execution returned
// exactly the results of the serial one, query by query.
type QueryFunc func(i int) (fingerprint string, err error)

// ConcurrencyPoint is one measured throughput level.
type ConcurrencyPoint struct {
	// Clients is the number of concurrent client goroutines.
	Clients int
	// Queries is the number of queries executed in total.
	Queries int
	// Millis is the wall time for the whole workload.
	Millis float64
	// QPS is the aggregate throughput: Queries / wall seconds.
	QPS float64
}

// RunConcurrent executes queries 0..queries-1 across the given number of
// client goroutines (1 = the serial baseline) pulling from a shared
// index, and returns the measured throughput plus the per-query result
// fingerprints. The first query error aborts the run.
func RunConcurrent(queries, clients int, run QueryFunc) (ConcurrencyPoint, []string, error) {
	if clients < 1 {
		clients = 1
	}
	if clients > queries {
		clients = queries
	}
	fps := make([]string, queries)
	var (
		next     atomic.Int64
		failed   atomic.Bool
		firstErr atomic.Value
		wg       sync.WaitGroup
	)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= queries || failed.Load() {
					return
				}
				fp, err := run(i)
				if err != nil {
					if failed.CompareAndSwap(false, true) {
						firstErr.Store(err)
					}
					return
				}
				fps[i] = fp
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err, ok := firstErr.Load().(error); ok {
		return ConcurrencyPoint{}, nil, err
	}
	p := ConcurrencyPoint{
		Clients: clients,
		Queries: queries,
		Millis:  float64(elapsed.Microseconds()) / 1000,
	}
	if s := elapsed.Seconds(); s > 0 {
		p.QPS = float64(queries) / s
	}
	return p, fps, nil
}

// DiffFingerprints compares two fingerprint sets of the same workload and
// returns the index of the first query whose results differ, or -1 when
// the executions are identical.
func DiffFingerprints(a, b []string) int {
	if len(a) != len(b) {
		return 0
	}
	for i := range a {
		if a[i] != b[i] {
			return i
		}
	}
	return -1
}

// RotatingKeywords returns the i-th keyword triple of the serving
// workload shared by cmd/spqbench -concurrency and the package's
// concurrent benchmarks. The three rotation moduli are pairwise coprime
// for the workload sizes in use (len(kws), len(kws)-3, len(kws)-5 with
// len(kws) >= 16), so the combination period far exceeds any pass and no
// query repeats — a repeat would let the query cache flatter the
// no-cache phases. Callers must supply at least 16 keywords.
func RotatingKeywords(kws []string, i int) []string {
	m1, m2, m3 := len(kws), len(kws)-3, len(kws)-5
	return []string{kws[i%m1], kws[(i*7+3)%m2], kws[(i*13+5)%m3]}
}

// Speedup returns b.QPS / a.QPS (0 when a is unmeasurable).
func Speedup(a, b ConcurrencyPoint) float64 {
	if a.QPS == 0 {
		return 0
	}
	return b.QPS / a.QPS
}

// FormatConcurrencyPoint renders one measured level as a table row.
func FormatConcurrencyPoint(label string, p ConcurrencyPoint, baseline ConcurrencyPoint) string {
	return fmt.Sprintf("%-28s  clients=%-3d queries=%-5d %9.1f ms  %8.1f qps  %5.2fx",
		label, p.Clients, p.Queries, p.Millis, p.QPS, Speedup(baseline, p))
}
