package bench

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestWriteJSONRows(t *testing.T) {
	f := newFigure("5a", "t", "grid")
	f.add("pSPQ", "35", Cell{Millis: 1.5, FeaturesExamined: 7})
	f.add("eSPQsco", "35", Cell{Millis: 0.5, ShuffledRecords: 3})
	f.add("pSPQ", "50", Cell{Millis: 2.5})

	var buf bytes.Buffer
	if err := WriteJSON(&buf, []*Figure{f}); err != nil {
		t.Fatal(err)
	}
	var rows []Row
	if err := json.Unmarshal(buf.Bytes(), &rows); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	if rows[0].Figure != "5a" || rows[0].Series != "pSPQ" || rows[0].X != "35" || rows[0].Millis != 1.5 {
		t.Errorf("rows[0] = %+v", rows[0])
	}
	if rows[0].Counters["features_examined"] != 7 {
		t.Errorf("counters = %v", rows[0].Counters)
	}
	if rows[1].Counters["shuffled_records"] != 3 {
		t.Errorf("rows[1] = %+v", rows[1])
	}
	if rows[2].X != "50" {
		t.Errorf("rows ordered %+v, want sweep order", rows[2])
	}

	// No figures still emits a valid (empty) array.
	buf.Reset()
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf.Bytes(), &rows); err != nil || len(rows) != 0 {
		t.Errorf("empty output = %q", buf.String())
	}
}
