// Package plan is the cost- and pruning-based query planner over
// partition-aware sealed storage. The paper builds its grid at query time
// and therefore streams the entire dataset through every MapReduce job;
// this package consumes the seal-time manifest (package data) and the
// query q(k, r, W) to discard whole cell files before the job starts:
//
//  1. Keyword pruning: a feature cell whose keyword summary is disjoint
//     from W contains only features with w(f,q) = 0, which the Map phase
//     would drop anyway (Algorithm 1 line 9) — skip the file instead of
//     reading it.
//  2. Distance pruning of data cells: a data cell with no surviving
//     feature cell within MINDIST r holds only objects with τ(p) = 0,
//     which are never reported — skip it.
//  3. Distance pruning of feature cells: a surviving feature cell with no
//     surviving data cell within MINDIST r cannot influence any reported
//     object — skip it. (This cannot re-orphan a data cell: if the
//     feature cell were within r of a data cell, that data cell would
//     have survived step 2.)
//
// Both distance tests use the tight per-cell bounding rectangles from the
// manifest, not the full cell rectangles. The planner then picks the
// query-time grid size and reducer count from the surviving statistics
// instead of a hardcoded default. Pruning never changes results: survivor
// files feed the unmodified query-time grid algorithms, so the top-k is
// identical to the unpruned path.
package plan

import (
	"math"
	"sort"

	"spq/internal/data"
	"spq/internal/geo"
)

// Planner counter names, merged into the job counters of a planned query
// so callers can observe pruning effectiveness next to the MapReduce
// counters they already read.
const (
	// CounterDataCellsPruned counts data cells skipped by distance pruning.
	CounterDataCellsPruned = "spq.plan.cells.data.pruned"
	// CounterFeatureCellsPruned counts feature cells skipped by keyword or
	// distance pruning.
	CounterFeatureCellsPruned = "spq.plan.cells.features.pruned"
	// CounterRecordsSkipped counts input records the job never read thanks
	// to pruning.
	CounterRecordsSkipped = "spq.plan.records.skipped"
	// CounterBlocksScanned and CounterBlocksPruned count column blocks of
	// SPQ2 cells (cells carrying block-level zone maps) the job read and
	// skipped. Both are 0 on storage without block metadata, where pruning
	// stops at cell granularity.
	CounterBlocksScanned = "spq.plan.blocks.scanned"
	CounterBlocksPruned  = "spq.plan.blocks.pruned"
)

// Input is what the planner knows about one query execution.
type Input struct {
	// Radius is the query radius r.
	Radius float64
	// Keywords is the query keyword set W, as strings (the manifest's
	// keyword summaries hash strings, not interned ids).
	Keywords []string
	// ReduceSlots is the cluster's reduce-task concurrency, used to cap
	// the chosen reducer count.
	ReduceSlots int
	// GridN and NumReducers, when positive, are caller overrides the
	// planner must respect (it still prunes).
	GridN       int
	NumReducers int
}

// Stats describes what the planner did, for reporting.
type Stats struct {
	// SealGridN is the seal grid edge size of the manifest.
	SealGridN int
	// DataCells and FeatureCells count the manifest's non-empty cells;
	// the *Pruned counts say how many of each the planner discarded.
	// Under PlanGenerations they count base and delta cells together.
	DataCells          int
	FeatureCells       int
	DataCellsPruned    int
	FeatureCellsPruned int
	// RecordsTotal and RecordsSelected count input records — base plus
	// delta — before and after pruning. With block zone maps available,
	// RecordsSelected counts only the records of surviving blocks.
	RecordsTotal    int64
	RecordsSelected int64
	// Blocks counts the column-block zone maps the planner considered
	// (cells without block metadata contribute none); BlocksPruned says
	// how many it discarded — inside surviving cells and as whole pruned
	// cells alike. Blocks - BlocksPruned blocks are actually read.
	Blocks       int
	BlocksPruned int
	// DeltaCells, DeltaCellsPruned, DeltaRecords and DeltaRecordsSelected
	// break out the delta's share of the counts above (all zero when the
	// plan had no delta).
	DeltaCells           int
	DeltaCellsPruned     int
	DeltaRecords         int64
	DeltaRecordsSelected int64
}

// Decision is the planner's output: the surviving cell files and the
// execution parameters for the MapReduce job.
type Decision struct {
	// Data and Features are the surviving sealed-base manifest entries.
	Data     []data.CellStats
	Features []data.CellStats
	// DeltaData and DeltaFeatures are the surviving delta cells (see
	// PlanGenerations). Their File names are the synthetic per-cell names
	// the caller handed in, resolvable against its in-memory delta layout.
	DeltaData     []data.CellStats
	DeltaFeatures []data.CellStats
	// Files is the surviving sealed cell file set, data cells first. Delta
	// cells are not files; they are returned separately above.
	Files []string
	// Blocks maps each surviving sealed cell file that carries block-level
	// zone maps to the ascending indices of its surviving blocks: the
	// planner prunes individual column blocks of SPQ2 segments the same
	// three ways it prunes cells, so a surviving cell is often read only
	// partially. Cells without block metadata have no entry and are read
	// whole.
	Blocks map[string][]int
	// GridN and NumReducers are the chosen execution parameters.
	GridN       int
	NumReducers int
	// Stats describes the pruning outcome.
	Stats Stats
}

// Empty reports whether the plan proves the query returns no results
// (every data cell or every feature cell pruned, across base and delta):
// the job can be skipped entirely.
func (d *Decision) Empty() bool {
	return len(d.Data)+len(d.DeltaData) == 0 || len(d.Features)+len(d.DeltaFeatures) == 0
}

// Counters renders the pruning outcome as job-counter deltas.
func (d *Decision) Counters() map[string]int64 {
	return map[string]int64{
		CounterDataCellsPruned:    int64(d.Stats.DataCellsPruned),
		CounterFeatureCellsPruned: int64(d.Stats.FeatureCellsPruned),
		CounterRecordsSkipped:     d.Stats.RecordsTotal - d.Stats.RecordsSelected,
		CounterBlocksScanned:      int64(d.Stats.Blocks - d.Stats.BlocksPruned),
		CounterBlocksPruned:       int64(d.Stats.BlocksPruned),
	}
}

// Plan prunes the manifest's cells against the query and picks the
// execution parameters.
func Plan(m *data.Manifest, in Input) *Decision {
	return PlanGenerations(m, nil, nil, in)
}

// unit is the planner's granule: one column block of an SPQ2 cell, or one
// whole cell where no block zone maps exist (SPQ1, text, memory and delta
// cells). Every unit carries its own tight bounds, record count and — for
// feature units — keyword summary, so the three pruning steps apply to a
// mixed block/cell population uniformly: the correctness argument is the
// cell-level one verbatim, with "cell" read as "unit".
type unit struct {
	cellIdx  int // index into its category's CellStats slice
	blockIdx int // block index within the cell, or -1 for a whole cell
	records  int
	bounds   geo.Rect
	bloom    data.KeywordBloom
	delta    bool
}

// explode turns one category's cells into pruning units: one per block
// where zone maps exist, one per cell otherwise.
func explode(cells []data.CellStats, delta bool) []unit {
	out := make([]unit, 0, len(cells))
	for i, cs := range cells {
		if len(cs.Blocks) == 0 {
			out = append(out, unit{cellIdx: i, blockIdx: -1, records: cs.Records,
				bounds: cs.Bounds, bloom: cs.Keywords, delta: delta})
			continue
		}
		for bi, bs := range cs.Blocks {
			out = append(out, unit{cellIdx: i, blockIdx: bi, records: bs.Records,
				bounds: bs.Bounds, bloom: bs.Keywords, delta: delta})
		}
	}
	return out
}

// regroup folds one category's surviving units back into per-cell
// selections: the surviving CellStats in manifest order and, for cells
// pruned at block granularity, the ascending surviving block indices.
// blocks may be nil when the caller does not track block selections
// (delta cells, which never have blocks).
func regroup(cells []data.CellStats, surv []unit, delta bool, blocks map[string][]int) (kept []data.CellStats, records int64) {
	sel := make(map[int][]int, len(cells))
	for _, u := range surv {
		if u.delta != delta {
			continue
		}
		if u.blockIdx < 0 {
			sel[u.cellIdx] = nil
		} else {
			sel[u.cellIdx] = append(sel[u.cellIdx], u.blockIdx)
		}
		records += int64(u.records)
	}
	for i, cs := range cells {
		bi, ok := sel[i]
		if !ok {
			continue
		}
		kept = append(kept, cs)
		if bi != nil && blocks != nil {
			sort.Ints(bi)
			blocks[cs.File] = bi
		}
	}
	return kept, records
}

// PlanGenerations prunes the union of the sealed base manifest and the
// in-memory delta cell sets against the query. The delta cells describe
// records appended after the base generation sealed, partitioned over the
// same seal grid with statistics mirroring the manifest's (the engine
// computes them on the fly). Pruning is performed jointly — a base data
// unit survives if any feature unit of either generation is within reach,
// and vice versa — so results over base+delta are identical to a
// hypothetical re-seal of everything. Where the manifest carries block
// zone maps (SPQ2 columnar storage), the granule is the column block, not
// the cell: a surviving cell may be read only partially.
func PlanGenerations(m *data.Manifest, deltaData, deltaFeatures []data.CellStats, in Input) *Decision {
	d := &Decision{Stats: Stats{
		SealGridN:    m.Grid.N,
		DataCells:    len(m.Data) + len(deltaData),
		FeatureCells: len(m.Features) + len(deltaFeatures),
		RecordsTotal: m.TotalRecords(),
		DeltaCells:   len(deltaData) + len(deltaFeatures),
	}}
	for _, cs := range deltaData {
		d.Stats.DeltaRecords += int64(cs.Records)
	}
	for _, cs := range deltaFeatures {
		d.Stats.DeltaRecords += int64(cs.Records)
	}
	d.Stats.RecordsTotal += d.Stats.DeltaRecords

	allD := append(explode(m.Data, false), explode(deltaData, true)...)
	allF := append(explode(m.Features, false), explode(deltaFeatures, true)...)
	countBlocks := func(us []unit) (n int) {
		for _, u := range us {
			if u.blockIdx >= 0 {
				n++
			}
		}
		return n
	}
	d.Stats.Blocks = countBlocks(allD) + countBlocks(allF)

	// 1. Keyword pruning of feature units.
	survF := make([]unit, 0, len(allF))
	for _, fu := range allF {
		if fu.bloom.MayContainAny(in.Keywords) {
			survF = append(survF, fu)
		}
	}

	// 2. Distance pruning of data units against surviving feature units.
	r2 := in.Radius * in.Radius
	survD := make([]unit, 0, len(allD))
	for _, du := range allD {
		if withinAny(du.bounds, survF, r2) {
			survD = append(survD, du)
		}
	}

	// 3. Distance pruning of feature units against surviving data units.
	// (This cannot re-orphan a data unit: had the feature unit been within
	// r of a data unit, that data unit would have survived step 2.)
	finalF := survF[:0]
	for _, fu := range survF {
		if withinAny(fu.bounds, survD, r2) {
			finalF = append(finalF, fu)
		}
	}

	d.Blocks = make(map[string][]int)
	var selected int64
	d.Data, selected = regroup(m.Data, survD, false, d.Blocks)
	d.Stats.RecordsSelected += selected
	d.Features, selected = regroup(m.Features, finalF, false, d.Blocks)
	d.Stats.RecordsSelected += selected
	d.DeltaData, selected = regroup(deltaData, survD, true, nil)
	d.Stats.RecordsSelected += selected
	d.Stats.DeltaRecordsSelected += selected
	d.DeltaFeatures, selected = regroup(deltaFeatures, finalF, true, nil)
	d.Stats.RecordsSelected += selected
	d.Stats.DeltaRecordsSelected += selected
	for _, cs := range d.Data {
		d.Files = append(d.Files, cs.File)
	}
	for _, cs := range d.Features {
		d.Files = append(d.Files, cs.File)
	}
	d.Stats.BlocksPruned = d.Stats.Blocks - countBlocks(survD) - countBlocks(finalF)
	d.Stats.DataCellsPruned = d.Stats.DataCells - len(d.Data) - len(d.DeltaData)
	d.Stats.FeatureCellsPruned = d.Stats.FeatureCells - len(d.Features) - len(d.DeltaFeatures)
	d.Stats.DeltaCellsPruned = d.Stats.DeltaCells - len(d.DeltaData) - len(d.DeltaFeatures)

	d.GridN = in.GridN
	if d.GridN <= 0 {
		d.GridN = chooseGridN(d.Stats.RecordsSelected)
	}
	d.NumReducers = in.NumReducers
	if d.NumReducers <= 0 {
		d.NumReducers = chooseReducers(d.GridN, in.ReduceSlots)
	}
	return d
}

// withinAny reports whether any unit in units has MINDIST <= r from b.
func withinAny(b geo.Rect, units []unit, r2 float64) bool {
	for _, u := range units {
		if geo.RectMinDist2(b, u.bounds) <= r2 {
			return true
		}
	}
	return false
}

// Grid-size heuristic bounds. The paper's optimum (Section 6.3) trades
// per-reducer work df·α⁴ against duplication and task overhead; across its
// experiments the best grid tracks the square root of the input size
// (grid 50 at 150k objects, 15 at 100k synthetic). gridN = sqrt(records)/8
// lands in that band and is clamped to keep degenerate inputs sane.
const (
	minGridN = 4
	maxGridN = 128
)

// chooseGridN picks the query-time grid edge from the surviving record
// count.
func chooseGridN(records int64) int {
	if records <= 0 {
		return minGridN
	}
	n := int(math.Round(math.Sqrt(float64(records)) / 8))
	if n < minGridN {
		return minGridN
	}
	if n > maxGridN {
		return maxGridN
	}
	return n
}

// chooseReducers caps the paper's one-reducer-per-cell default at a small
// multiple of the available reduce slots: beyond that, extra reduce tasks
// only add scheduling overhead (cells are then assigned round-robin).
func chooseReducers(gridN, reduceSlots int) int {
	cells := gridN * gridN
	if reduceSlots <= 0 {
		return cells
	}
	limit := 4 * reduceSlots
	if cells < limit {
		return cells
	}
	return limit
}
