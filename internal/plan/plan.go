// Package plan is the cost- and pruning-based query planner over
// partition-aware sealed storage. The paper builds its grid at query time
// and therefore streams the entire dataset through every MapReduce job;
// this package consumes the seal-time manifest (package data) and the
// query q(k, r, W) to discard whole cell files before the job starts:
//
//  1. Keyword pruning: a feature cell whose keyword summary is disjoint
//     from W contains only features with w(f,q) = 0, which the Map phase
//     would drop anyway (Algorithm 1 line 9) — skip the file instead of
//     reading it.
//  2. Distance pruning of data cells: a data cell with no surviving
//     feature cell within MINDIST r holds only objects with τ(p) = 0,
//     which are never reported — skip it.
//  3. Distance pruning of feature cells: a surviving feature cell with no
//     surviving data cell within MINDIST r cannot influence any reported
//     object — skip it. (This cannot re-orphan a data cell: if the
//     feature cell were within r of a data cell, that data cell would
//     have survived step 2.)
//
// Both distance tests use the tight per-cell bounding rectangles from the
// manifest, not the full cell rectangles. The planner then picks the
// query-time grid size and reducer count from the surviving statistics
// instead of a hardcoded default. Pruning never changes results: survivor
// files feed the unmodified query-time grid algorithms, so the top-k is
// identical to the unpruned path.
package plan

import (
	"math"

	"spq/internal/data"
	"spq/internal/geo"
)

// Planner counter names, merged into the job counters of a planned query
// so callers can observe pruning effectiveness next to the MapReduce
// counters they already read.
const (
	// CounterDataCellsPruned counts data cells skipped by distance pruning.
	CounterDataCellsPruned = "spq.plan.cells.data.pruned"
	// CounterFeatureCellsPruned counts feature cells skipped by keyword or
	// distance pruning.
	CounterFeatureCellsPruned = "spq.plan.cells.features.pruned"
	// CounterRecordsSkipped counts input records the job never read thanks
	// to pruning.
	CounterRecordsSkipped = "spq.plan.records.skipped"
)

// Input is what the planner knows about one query execution.
type Input struct {
	// Radius is the query radius r.
	Radius float64
	// Keywords is the query keyword set W, as strings (the manifest's
	// keyword summaries hash strings, not interned ids).
	Keywords []string
	// ReduceSlots is the cluster's reduce-task concurrency, used to cap
	// the chosen reducer count.
	ReduceSlots int
	// GridN and NumReducers, when positive, are caller overrides the
	// planner must respect (it still prunes).
	GridN       int
	NumReducers int
}

// Stats describes what the planner did, for reporting.
type Stats struct {
	// SealGridN is the seal grid edge size of the manifest.
	SealGridN int
	// DataCells and FeatureCells count the manifest's non-empty cells;
	// the *Pruned counts say how many of each the planner discarded.
	DataCells          int
	FeatureCells       int
	DataCellsPruned    int
	FeatureCellsPruned int
	// RecordsTotal and RecordsSelected count input records before and
	// after pruning.
	RecordsTotal    int64
	RecordsSelected int64
}

// Decision is the planner's output: the surviving cell files and the
// execution parameters for the MapReduce job.
type Decision struct {
	// Data and Features are the surviving manifest entries.
	Data     []data.CellStats
	Features []data.CellStats
	// Files is the surviving cell file set, data cells first.
	Files []string
	// GridN and NumReducers are the chosen execution parameters.
	GridN       int
	NumReducers int
	// Stats describes the pruning outcome.
	Stats Stats
}

// Empty reports whether the plan proves the query returns no results
// (every data cell or every feature cell pruned): the job can be skipped
// entirely.
func (d *Decision) Empty() bool { return len(d.Data) == 0 || len(d.Features) == 0 }

// Counters renders the pruning outcome as job-counter deltas.
func (d *Decision) Counters() map[string]int64 {
	return map[string]int64{
		CounterDataCellsPruned:    int64(d.Stats.DataCellsPruned),
		CounterFeatureCellsPruned: int64(d.Stats.FeatureCellsPruned),
		CounterRecordsSkipped:     d.Stats.RecordsTotal - d.Stats.RecordsSelected,
	}
}

// Plan prunes the manifest's cells against the query and picks the
// execution parameters.
func Plan(m *data.Manifest, in Input) *Decision {
	d := &Decision{Stats: Stats{
		SealGridN:    m.Grid.N,
		DataCells:    len(m.Data),
		FeatureCells: len(m.Features),
		RecordsTotal: m.TotalRecords(),
	}}

	// 1. Keyword pruning of feature cells.
	survF := make([]data.CellStats, 0, len(m.Features))
	for _, cs := range m.Features {
		if cs.Keywords.MayContainAny(in.Keywords) {
			survF = append(survF, cs)
		}
	}

	// 2. Distance pruning of data cells against surviving feature cells.
	r2 := in.Radius * in.Radius
	survD := make([]data.CellStats, 0, len(m.Data))
	for _, dc := range m.Data {
		if withinAny(dc.Bounds, survF, r2) {
			survD = append(survD, dc)
		}
	}

	// 3. Distance pruning of feature cells against surviving data cells.
	d.Features = survF[:0]
	for _, fc := range survF {
		if withinAny(fc.Bounds, survD, r2) {
			d.Features = append(d.Features, fc)
		}
	}
	d.Data = survD

	for _, cs := range d.Data {
		d.Files = append(d.Files, cs.File)
		d.Stats.RecordsSelected += int64(cs.Records)
	}
	for _, cs := range d.Features {
		d.Files = append(d.Files, cs.File)
		d.Stats.RecordsSelected += int64(cs.Records)
	}
	d.Stats.DataCellsPruned = len(m.Data) - len(d.Data)
	d.Stats.FeatureCellsPruned = len(m.Features) - len(d.Features)

	d.GridN = in.GridN
	if d.GridN <= 0 {
		d.GridN = chooseGridN(d.Stats.RecordsSelected)
	}
	d.NumReducers = in.NumReducers
	if d.NumReducers <= 0 {
		d.NumReducers = chooseReducers(d.GridN, in.ReduceSlots)
	}
	return d
}

// withinAny reports whether any cell in cells has MINDIST <= r from b.
func withinAny(b geo.Rect, cells []data.CellStats, r2 float64) bool {
	for _, c := range cells {
		if geo.RectMinDist2(b, c.Bounds) <= r2 {
			return true
		}
	}
	return false
}

// Grid-size heuristic bounds. The paper's optimum (Section 6.3) trades
// per-reducer work df·α⁴ against duplication and task overhead; across its
// experiments the best grid tracks the square root of the input size
// (grid 50 at 150k objects, 15 at 100k synthetic). gridN = sqrt(records)/8
// lands in that band and is clamped to keep degenerate inputs sane.
const (
	minGridN = 4
	maxGridN = 128
)

// chooseGridN picks the query-time grid edge from the surviving record
// count.
func chooseGridN(records int64) int {
	if records <= 0 {
		return minGridN
	}
	n := int(math.Round(math.Sqrt(float64(records)) / 8))
	if n < minGridN {
		return minGridN
	}
	if n > maxGridN {
		return maxGridN
	}
	return n
}

// chooseReducers caps the paper's one-reducer-per-cell default at a small
// multiple of the available reduce slots: beyond that, extra reduce tasks
// only add scheduling overhead (cells are then assigned round-robin).
func chooseReducers(gridN, reduceSlots int) int {
	cells := gridN * gridN
	if reduceSlots <= 0 {
		return cells
	}
	limit := 4 * reduceSlots
	if cells < limit {
		return cells
	}
	return limit
}
